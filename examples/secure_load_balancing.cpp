// Secure load balancing end to end (§7): measure a network with FlashFlow
// and with TorFlow, feed both weight sets to the performance simulation,
// and compare client experience.
//
//   ./examples/secure_load_balancing
#include <iostream>

#include "metrics/stats.h"
#include "net/units.h"
#include "shadowsim/experiment.h"

using namespace flashflow;

int main() {
  shadowsim::ShadowNetParams net_params;
  net_params.relays = 150;  // keep the example quick
  const auto network = shadowsim::make_shadow_net(net_params, 21);

  std::cout << "Measuring " << network.relays.size()
            << " relays with FlashFlow (3x1 Gbit/s team) and TorFlow...\n";
  const auto cmp = shadowsim::run_measurement_comparison(network, 22);
  std::cout << "  network weight error: FlashFlow "
            << cmp.ff_network_weight_error * 100 << "%, TorFlow "
            << cmp.tf_network_weight_error * 100 << "%\n";

  shadowsim::PerfConfig config;
  config.sim_seconds = 600;
  std::cout << "\nRunning benchmark clients under each weight set...\n";
  const auto ff = shadowsim::run_performance(network, cmp.flashflow_file,
                                             config, 23);
  const auto tf = shadowsim::run_performance(network, cmp.torflow_file,
                                             config, 23);

  for (std::size_t s = 0; s < 3; ++s) {
    const auto size = static_cast<trafficgen::TransferSize>(s);
    const auto ff_ttlb = ff.bench.ttlb_for(size);
    const auto tf_ttlb = tf.bench.ttlb_for(size);
    if (ff_ttlb.empty() || tf_ttlb.empty()) continue;
    const double ff_med = metrics::median(metrics::as_span(ff_ttlb));
    const double tf_med = metrics::median(metrics::as_span(tf_ttlb));
    std::cout << "  " << trafficgen::kTransferNames[s]
              << " median TTLB: TorFlow " << tf_med << " s -> FlashFlow "
              << ff_med << " s (" << (ff_med / tf_med - 1.0) * 100
              << "%)\n";
  }
  std::cout << "  timeout rate: TorFlow " << tf.bench.error_rate() * 100
            << "% -> FlashFlow " << ff.bench.error_rate() * 100 << "%\n";
  std::cout << "\nFlashFlow's accurate capacities balance the same client "
               "load with fewer congested relays (paper Fig 9).\n";
  return 0;
}
