// Quickstart: measure a single Tor relay with FlashFlow.
//
// Sets up the paper's Internet vantage points, estimates measurer capacity
// with the iPerf mesh, and runs the full BWAuth pipeline (allocation, slot,
// verification, acceptance) against one 250 Mbit/s relay.
//
//   ./examples/quickstart
#include <iostream>

#include "core/bwauth.h"
#include "net/units.h"
#include "tor/cpu_model.h"

using namespace flashflow;

int main() {
  // 1. The network: Table 1 hosts (US-SW hosts the target relay).
  const auto topo = net::make_table1_hosts();

  // 2. The measurement team: everyone except US-SW. Team::measure_measurers
  //    runs the §4.2 concurrent bidirectional UDP mesh.
  core::Team team(topo, {topo.find("US-NW"), topo.find("US-E"),
                         topo.find("IN"), topo.find("NL")});
  team.measure_measurers(/*seed=*/1);
  std::cout << "Measurer capacities (from the iPerf mesh):\n";
  for (const auto& m : team.measurers())
    std::cout << "  " << topo.host(m.host).name << ": "
              << net::to_mbit(m.capacity_bits) << " Mbit/s\n";

  // 3. The target: a 250 Mbit/s relay carrying 50 Mbit/s of client traffic.
  core::RelayTarget target;
  target.model.name = "example-relay";
  target.model.nic_up_bits = target.model.nic_down_bits = net::mbit(954);
  target.model.rate_limit_bits = net::mbit(250);
  target.model.cpu = tor::CpuModel::us_sw();
  target.model.background_demand_bits = net::mbit(50);
  target.host = topo.find("US-SW");
  target.previous_estimate_bits = 0;  // new relay: 75th-percentile prior

  // 4. Measure. The BWAuth allocates f * z0 across the team, runs 30-second
  //    slots, verifies echoes, and doubles the guess until acceptance.
  core::Params params;  // paper defaults: m=2.25, t=30s, s=160, r=0.25
  core::BWAuth bwauth(topo, params, std::move(team), net::mbit(51),
                      /*seed=*/2);
  const auto result = bwauth.measure_relay(target);

  std::cout << "\nMeasured " << target.model.name << " in "
            << result.rounds << " slot(s):\n"
            << "  estimate : " << net::to_mbit(result.estimate_bits)
            << " Mbit/s\n"
            << "  accepted : " << (result.accepted ? "yes" : "no") << "\n"
            << "  verified : "
            << (result.verification_failed ? "FAILED" : "ok") << "\n"
            << "  ground truth ~ "
            << net::to_mbit(target.model.ground_truth(params.sockets))
            << " Mbit/s\n";
  return 0;
}
