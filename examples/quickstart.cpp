// Quickstart: measure a Tor relay with FlashFlow's Scenario API.
//
// A scenario declares *what* to measure — population, measurer team,
// protocol parameters — and the engine does the wiring: the §4.2 iPerf
// measurer mesh, greedy capacity allocation, the 30-second §4.1 slot, and
// verification. Here the paper's Table 1 vantage points measure one
// 250 Mbit/s relay carrying 50 Mbit/s of client traffic.
//
//   ./examples/example_quickstart [scenario-file]
#include <iostream>

#include "net/units.h"
#include "scenario/scenario.h"
#include "scenario/serialize.h"

using namespace flashflow;

int main(int argc, char** argv) {
  // The experiment is declared in scenarios/quickstart.yaml: one
  // 250 Mbit/s relay on US-SW with 50 Mbit/s of background client
  // traffic, measured by the four remaining Table 1 hosts (their
  // capacities estimated by the §4.2 iPerf mesh). Pass a path to run a
  // different scenario file.
  const std::string path =
      argc > 1 ? argv[1]
               : scenario::default_scenario_dir() + "/quickstart.yaml";
  const scenario::Scenario scenario(scenario::load_scenario_file(path));

  // The measurer team, resolved from the mesh.
  const auto& mat = scenario.materialized();
  std::cout << "Measurer capacities (from the iPerf mesh):\n";
  const auto& caps = scenario.runner().measurer_capacities();
  for (std::size_t i = 0; i < mat.measurer_hosts.size(); ++i)
    std::cout << "  " << mat.topology.host(mat.measurer_hosts[i]).name
              << ": " << net::to_mbit(caps[i]) << " Mbit/s\n";

  // Measure. One period: allocation f * z0 across the team, a 30-second
  // slot, echo verification, estimate = median per-second throughput.
  const auto result = scenario.run();
  const auto& est = result.relays.front();

  std::cout << "\nMeasured " << mat.fingerprints.front() << " in slot "
            << est.slot << ":\n"
            << "  estimate     : " << net::to_mbit(est.estimate_bits)
            << " Mbit/s\n"
            << "  ground truth : " << net::to_mbit(est.ground_truth_bits)
            << " Mbit/s\n"
            << "  error        : " << est.relative_error * 100 << "%\n"
            << "  verified     : "
            << (est.verification_failed ? "FAILED" : "ok") << "\n";
  return 0;
}
