// Security analysis walk-through (§5): what does a malicious relay gain
// against FlashFlow?
//
// Demonstrates (1) the background-traffic lie and its 1/(1-r) bound,
// (2) echo forgery being caught by the probabilistic spot check, and
// (3) the futility of part-time capacity provisioning against the secret
// randomized schedule and the multi-BWAuth median.
//
//   ./examples/attack_analysis
#include <iostream>

#include "core/attack.h"
#include "core/verification.h"
#include "net/units.h"
#include "tor/cpu_model.h"

using namespace flashflow;

int main() {
  const auto topo = net::make_table1_hosts();
  core::Params params;

  // --- Attack 1: lie about background traffic. ---------------------------
  core::Team team(topo, {topo.find("NL")});
  team.set_capacity(0, net::gbit(1.5));
  core::RelayTarget target;
  target.model.name = "malicious-relay";
  target.model.nic_up_bits = target.model.nic_down_bits = net::mbit(954);
  target.model.rate_limit_bits = net::mbit(250);
  target.model.cpu = tor::CpuModel::us_sw();
  target.model.background_demand_bits = net::mbit(200);
  target.host = topo.find("US-SW");
  target.previous_estimate_bits = net::mbit(239);

  const auto lie =
      core::background_lie_advantage(topo, params, target, team, 31);
  std::cout << "Attack 1 - report maximal background while sending none:\n"
            << "  honest estimate : " << net::to_mbit(lie.honest_estimate_bits)
            << " Mbit/s\n"
            << "  lying estimate  : " << net::to_mbit(lie.lying_estimate_bits)
            << " Mbit/s\n"
            << "  advantage       : " << lie.advantage << "x (bound: "
            << params.max_inflation() << "x; TorFlow's equivalent: 177x)\n";

  // --- Attack 2: forge echo cells to save decryption CPU. ----------------
  std::cout << "\nAttack 2 - forge echoes (skip decryption):\n";
  for (const auto cells : {1000ULL, 100000ULL, 1700000ULL}) {
    std::cout << "  forging " << cells << " cells -> evasion probability "
              << core::evasion_probability(params.check_probability, cells)
              << "\n";
  }
  std::cout << "  (a full 30 s slot at 250 Mbit/s is ~1.8M cells: caught "
               "with overwhelming probability)\n";

  // --- Attack 3: provide capacity only part-time. ------------------------
  std::cout << "\nAttack 3 - part-time capacity vs the secret schedule:\n";
  for (const double q : {0.1, 0.25, 0.4, 0.49}) {
    std::cout << "  provisioned fraction q=" << q
              << ": attack fails w.p. "
              << core::part_time_failure_probability(3, q) << " (analytic), "
              << core::simulate_part_time_attack(3, q, 20000, 32)
              << " (simulated)\n";
  }

  // --- Attack 4: Sybil-flood the new-relay queue. -------------------------
  std::cout << "\nAttack 4 - flood the new-relay queue:\n";
  for (const int sybils : {10, 100, 1000}) {
    const int delay = core::sybil_queue_delay_slots(
        sybils, net::mbit(51), net::mbit(51), net::gbit(1), params);
    std::cout << "  " << sybils
              << " sybils ahead: benign relay measured after " << delay
              << " spare slots (" << delay * params.slot_seconds
              << " s) - FCFS guarantees progress\n";
  }
  return 0;
}
