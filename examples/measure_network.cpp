// Whole-network, multi-period measurement campaign (§4.3, §7).
//
// Declares a 5%-scale Tor network scenario, then runs three measurement
// periods through scenario::Experiment: each period derives a fresh secret
// randomized schedule, measures every relay with the campaign engine, and
// feeds its estimates forward as the next period's scheduling priors —
// the §4.3 feedback loop. The first period starts from the relays'
// (underestimating, §3) advertised bandwidths, so accuracy visibly
// improves period over period. At the end the final period is emitted as
// a Tor bandwidth file.
//
//   ./examples/example_measure_network [scenario-file]
#include <iostream>
#include <sstream>

#include "net/units.h"
#include "scenario/experiment.h"
#include "scenario/scenario.h"
#include "scenario/serialize.h"

using namespace flashflow;

int main(int argc, char** argv) {
  // The campaign is declared in scenarios/measure_network.yaml: a
  // 5%-scale Tor network (328 relays) measured by the three built-in
  // 1 Gbit/s measurers over three 24-hour periods. Pass a path to run a
  // different scenario file.
  const std::string path =
      argc > 1 ? argv[1]
               : scenario::default_scenario_dir() + "/measure_network.yaml";
  scenario::Experiment experiment(scenario::load_scenario_file(path));

  std::cout << "Period | slots used | est. capacity (Gbit/s) | "
               "median |err| | mean |err|\n";
  const auto result = experiment.run(
      nullptr, [](const scenario::Experiment::PeriodRecord& record,
                  const campaign::CampaignResult& period) {
        std::cout << "     " << record.period << " | "
                  << record.stats.slots_executed << " of "
                  << record.stats.slots_in_period << " | "
                  << net::to_gbit(period.summary.total_estimated_bits)
                  << " (true "
                  << net::to_gbit(period.summary.total_true_bits) << ") | "
                  << period.summary.median_abs_relative_error * 100
                  << "% | "
                  << period.summary.mean_abs_relative_error * 100 << "%\n";
      });

  const auto& final_summary = result.final_period.summary;
  std::cout << "\nMeasured " << final_summary.relays_measured
            << " relays/period; final-period capacity estimate "
            << net::to_gbit(final_summary.total_estimated_bits)
            << " Gbit/s vs " << net::to_gbit(final_summary.total_true_bits)
            << " true.\n";

  // The per-period artifact a production BWAuth hands to the DirAuths.
  const std::string file = experiment.bandwidth_file_text(
      static_cast<int>(result.periods.size()) - 1, result.final_period);
  std::istringstream lines(file);
  std::string line;
  std::cout << "\nFirst lines of the period-end bandwidth file:\n";
  for (int i = 0; i < 8 && std::getline(lines, line); ++i)
    std::cout << "  " << line << "\n";
  return 0;
}
