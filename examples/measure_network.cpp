// Whole-network measurement campaign (§4.3, §7).
//
// Builds a synthetic relay network, derives the secret randomized schedule
// for a 24-hour period, measures every relay with the BWAuth pipeline, and
// prints the resulting bandwidth file summary plus schedule statistics.
//
//   ./examples/measure_network
#include <algorithm>
#include <iostream>

#include "analysis/population.h"
#include "core/bwauth.h"
#include "core/schedule.h"
#include "metrics/stats.h"
#include "net/units.h"
#include "shadowsim/shadow_net.h"

using namespace flashflow;

int main() {
  // A 5%-scale Tor network (328 relays).
  shadowsim::ShadowNetParams net_params;
  const auto network = shadowsim::make_shadow_net(net_params, 11);
  const auto topo = shadowsim::shadow_topology(network);

  core::Params params;
  core::Team team(topo, {0, 1, 2});  // the three 1 Gbit/s measurers
  for (std::size_t i = 0; i < 3; ++i) team.set_capacity(i, net::gbit(1));

  // Derive the period schedule from the shared secret seed (§4.3): old
  // relays first at random slots, then report spare capacity.
  std::vector<double> estimates;
  for (const auto& r : network.relays)
    estimates.push_back(r.advertised_bits);
  core::PeriodSchedule schedule(params, team.total_capacity(),
                                /*shared seed=*/0x5EED);
  const auto slots = schedule.schedule_old_relays(estimates);
  std::cout << "Scheduled " << slots.size() << " relays into "
            << schedule.slots_in_period() << " slots; busiest slot carries "
            << net::to_mbit(schedule.slot_load_bits(
                   *std::max_element(slots.begin(), slots.end())))
            << " Mbit/s of allocation\n";

  // Measure everything.
  core::BWAuth bwauth(topo, params, std::move(team), net::mbit(51), 12);
  std::vector<core::RelayTarget> targets;
  for (std::size_t i = 0; i < network.relays.size(); ++i) {
    core::RelayTarget t;
    const auto& r = network.relays[i];
    t.model.name = r.fingerprint;
    t.model.nic_up_bits = t.model.nic_down_bits = r.capacity_bits * 1.2;
    t.model.cpu.base_bits =
        r.capacity_bits *
        (1.0 + t.model.cpu.per_socket_overhead * params.sockets);
    t.model.background_demand_bits = r.capacity_bits * r.utilization;
    t.host = 3 + i;
    t.previous_estimate_bits = r.advertised_bits;
    targets.push_back(std::move(t));
  }
  const auto file = bwauth.measure_network(targets);

  // Summaries.
  std::vector<double> errors;
  double est_total = 0, cap_total = 0;
  for (std::size_t i = 0; i < file.size(); ++i) {
    const double cap = network.relays[i].capacity_bits;
    errors.push_back(std::abs(1.0 - file[i].capacity_bits / cap));
    est_total += file[i].capacity_bits;
    cap_total += cap;
  }
  std::cout << "Measured " << file.size() << " relays\n"
            << "  total estimated capacity : " << net::to_gbit(est_total)
            << " Gbit/s (true " << net::to_gbit(cap_total) << ")\n"
            << "  median relay error       : "
            << metrics::median(metrics::as_span(errors)) * 100 << "%\n";
  std::cout << "\nFirst relays of the bandwidth file:\n";
  for (std::size_t i = 0; i < 5 && i < file.size(); ++i)
    std::cout << "  " << file[i].fingerprint << " capacity="
              << net::to_mbit(file[i].capacity_bits) << " Mbit/s weight="
              << net::to_mbit(file[i].weight) << "\n";
  return 0;
}
