// Fig 10 (Appendix A): variation of relay capacities and weights.
//
// Paper: median mean-RSD of advertised bandwidth 32% (day), 55% (week),
// 62% (month), 65% (year); for normalized weights 14/31/43/50%; p75 of the
// week window >= 27%, p25 >= 82%.
#include <iostream>

#include "analysis/archive.h"
#include "analysis/error_analysis.h"
#include "analysis/population.h"
#include "bench_util.h"
#include "metrics/cdf.h"

using namespace flashflow;

int main() {
  bench::header("Figure 10 - relay capacity and weight variation (RSD)",
                "median advertised-bw RSD: 32/55/62/65% by window; weight "
                "RSD: 14/31/43/50%");

  analysis::PopulationParams pop;
  analysis::SyntheticArchive archive(
      analysis::generate_population(pop, 2 * 365, 20210619), 11);
  analysis::VariationAnalysis variation(6);
  while (!archive.done()) variation.observe(archive.step_hour());

  metrics::Table adv_table(
      {"window", "median RSD", "p75 RSD", "paper median"});
  const std::vector<std::string> paper_adv = {"32%", "55%", "62%", "65%"};
  for (std::size_t w = 0; w < 4; ++w) {
    const auto rsd = variation.mean_advertised_rsd_per_relay(
        static_cast<analysis::Window>(w));
    metrics::Cdf cdf{metrics::as_span(rsd)};
    adv_table.add_row({analysis::kWindowNames[w],
                       metrics::Table::pct(cdf.quantile(0.5)),
                       metrics::Table::pct(cdf.quantile(0.75)),
                       paper_adv[w]});
  }
  std::cout << "(a) Advertised bandwidth RSD per relay:\n";
  adv_table.print(std::cout);

  metrics::Table w_table(
      {"window", "median RSD", "p75 RSD", "paper median"});
  const std::vector<std::string> paper_w = {"14%", "31%", "43%", "50%"};
  for (std::size_t w = 0; w < 4; ++w) {
    const auto rsd = variation.mean_weight_rsd_per_relay(
        static_cast<analysis::Window>(w));
    metrics::Cdf cdf{metrics::as_span(rsd)};
    w_table.add_row({analysis::kWindowNames[w],
                     metrics::Table::pct(cdf.quantile(0.5)),
                     metrics::Table::pct(cdf.quantile(0.75)),
                     paper_w[w]});
  }
  std::cout << "\n(b) Normalized consensus weight RSD per relay:\n";
  w_table.print(std::cout);
  return 0;
}
