// Fig 8 (§7): measurement error in the Shadow-style full-network
// simulation.
//
// Paper: (a) FlashFlow relay capacity error has median and IQR ~16%, with
// network capacity error (Eq 3) of 14%; (b) FlashFlow's network weight
// error (Eq 6) is 4% vs TorFlow's 29%, with >80% of relays under-weighted
// by TorFlow.
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "metrics/cdf.h"
#include "shadowsim/experiment.h"

using namespace flashflow;

int main() {
  bench::header("Figure 8 - Shadow-network measurement error",
                "FF capacity error median/IQR ~16%, NCE 14%; NWE 4% (FF) "
                "vs 29% (TF)");

  const auto net = shadowsim::make_shadow_net({}, 20210615);
  const auto cmp = shadowsim::run_measurement_comparison(net, 20210616);

  metrics::Cdf cap_err{metrics::as_span(cmp.ff_capacity_error)};
  metrics::Table table({"quantity", "ours", "paper"});
  table.add_row({"FF relay capacity error, median",
                 metrics::Table::pct(cap_err.quantile(0.5)), "16%"});
  table.add_row({"FF relay capacity error, IQR",
                 metrics::Table::pct(cap_err.quantile(0.75) -
                                     cap_err.quantile(0.25)),
                 "16%"});
  table.add_row({"FF network capacity error (Eq 3)",
                 metrics::Table::pct(cmp.ff_network_capacity_error), "14%"});
  table.add_row({"FF network weight error (Eq 6)",
                 metrics::Table::pct(cmp.ff_network_weight_error), "4%"});
  table.add_row({"TF network weight error (Eq 6)",
                 metrics::Table::pct(cmp.tf_network_weight_error), "29%"});

  int tf_under = 0;
  for (const double e : cmp.tf_relay_weight_error)
    if (e < 1.0) ++tf_under;
  table.add_row({"TF relays under-weighted",
                 metrics::Table::pct(static_cast<double>(tf_under) /
                                     cmp.tf_relay_weight_error.size()),
                 ">80%"});
  table.print(std::cout);

  std::cout << "\nFig 8b-style log10(RWE) quantiles:\n";
  for (const auto& [name, errors] :
       {std::pair<const char*, const std::vector<double>&>{
            "FlashFlow", cmp.ff_relay_weight_error},
        {"TorFlow", cmp.tf_relay_weight_error}}) {
    std::vector<double> logs;
    for (const double e : errors)
      if (e > 0) logs.push_back(std::log10(e));
    metrics::Cdf cdf{metrics::as_span(logs)};
    std::cout << "  " << name << ": p10=" << metrics::Table::num(
                     cdf.quantile(0.1), 2)
              << " p50=" << metrics::Table::num(cdf.quantile(0.5), 2)
              << " p90=" << metrics::Table::num(cdf.quantile(0.9), 2)
              << "\n";
  }
  return 0;
}
