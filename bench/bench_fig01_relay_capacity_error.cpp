// Fig 1: CDF of per-relay mean capacity error (Eq 2) over the synthetic
// metrics archive, for windows of a day, week, month, and year.
//
// Paper: median mean-RCE grows from 7% (day) to 28% (year); >=85% of relays
// have non-zero error; 75th percentile >= 18% (day) and >= 49% (year).
#include <iostream>

#include "analysis/archive.h"
#include "analysis/error_analysis.h"
#include "analysis/population.h"
#include "bench_util.h"
#include "metrics/cdf.h"

using namespace flashflow;

int main() {
  bench::header("Figure 1 - relay capacity error CDF",
                "median mean-RCE: day 7%, year 28%; p75: day >=18%, year "
                ">=49%; >85% of relays have non-zero error");

  // Three simulated years at 5% network scale (the full 11-year archive
  // shape stabilizes well before that).
  analysis::PopulationParams pop;
  analysis::SyntheticArchive archive(
      analysis::generate_population(pop, 3 * 365, /*seed=*/20210601), 7);
  analysis::CapacityErrorAnalysis cap_analysis(/*sample_stride_hours=*/6);
  while (!archive.done()) cap_analysis.observe(archive.step_hour());

  metrics::Table table({"window", "median mean-RCE", "p75", "frac >0",
                        "paper median", "paper p75"});
  const std::vector<std::string> paper_median = {"7%", "-", "-", "28%"};
  const std::vector<std::string> paper_p75 = {">=18%", "-", "-", ">=49%"};
  for (std::size_t w = 0; w < 4; ++w) {
    const auto errors = cap_analysis.mean_rce_per_relay(
        static_cast<analysis::Window>(w));
    metrics::Cdf cdf(metrics::as_span(errors));
    table.add_row({analysis::kWindowNames[w],
                   metrics::Table::pct(cdf.quantile(0.5)),
                   metrics::Table::pct(cdf.quantile(0.75)),
                   metrics::Table::pct(1.0 - cdf.fraction_at_most(1e-9)),
                   paper_median[w], paper_p75[w]});
  }
  table.print(std::cout);

  std::cout << "\nYear-window CDF series (x = mean RCE, y = cumulative "
               "fraction):\n";
  const auto errors =
      cap_analysis.mean_rce_per_relay(analysis::Window::kYear);
  metrics::Cdf cdf(metrics::as_span(errors));
  for (const auto& pt : cdf.series(11))
    std::cout << "  " << metrics::Table::pct(pt.x) << " -> "
              << metrics::Table::num(pt.fraction) << "\n";
  return 0;
}
