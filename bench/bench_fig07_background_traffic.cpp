// Fig 7 (§6.2): measuring a relay carrying live client background traffic.
//
// A 250 Mbit/s relay with ~50 Mbit/s of client traffic, measured by one NL
// measurer with r = 0.1. Paper: background is limited to ~25 Mbit/s during
// the slot, measurement + background sum to the relay's total, a one-second
// token-bucket burst spikes at the start, and throughput returns to the
// pre-measurement level immediately afterwards.
//
// The setup is the checked-in scenarios/fig07.yaml scenario file
// (`--scenario FILE` substitutes another); the per-second timeline comes
// from streaming the slot through a sink with record_outcomes on.
#include <iostream>

#include "bench_util.h"
#include "campaign/sink.h"
#include "net/units.h"
#include "scenario/scenario.h"
#include "scenario/serialize.h"

using namespace flashflow;

int main(int argc, char** argv) {
  const std::string path = bench::take_scenario_flag(
      argc, argv, scenario::default_scenario_dir() + "/fig07.yaml");
  scenario::ScenarioSpec spec = scenario::load_scenario_file(path);
  // One relay, one slot: the worker pool has nothing to parallelize, so
  // no --threads flag. The file's seed is the default; --seed overrides.
  const auto cli = bench::parse_cli(argc, argv, /*default_seed=*/spec.seed,
                                    /*default_threads=*/1,
                                    /*accepts_threads=*/false);
  spec.seed = cli.seed;
  bench::header("Figure 7 - measurement with client background traffic",
                "background clamps to ~25 Mbit/s under r=0.1; initial "
                "burst spike; sum equals relay total; instant recovery");

  const scenario::Scenario scenario(spec);

  // Capture the relay's full slot outcome from the stream.
  struct TimelineSink : campaign::SlotSink {
    core::SlotOutcome outcome;
    void slot_done(const campaign::SlotResult& slot) override {
      outcome = slot.outcomes.front();
    }
  } sink;
  scenario.run(sink);
  const core::SlotOutcome& out = sink.outcome;

  std::cout << "Timeline (before: relay forwards ~50 Mbit/s of client "
               "traffic alone):\n\n";
  std::cout << "  t(s)   measurement   background    total (Mbit/s)\n";
  for (std::size_t j = 0; j < out.x_bits.size(); ++j) {
    std::cout << "  " << j << "\t "
              << metrics::Table::num(net::to_mbit(out.x_bits[j]), 1)
              << "\t      "
              << metrics::Table::num(net::to_mbit(out.y_clamped_bits[j]), 1)
              << "\t    "
              << metrics::Table::num(net::to_mbit(out.z_bits[j]), 1)
              << (j == 0 ? "   <- token-bucket burst" : "") << "\n";
  }

  std::vector<double> bg_mid(out.y_clamped_bits.begin() + 2,
                             out.y_clamped_bits.end());
  metrics::Table table({"quantity", "ours", "paper"});
  table.add_row({"steady background (Mbit/s)",
                 metrics::Table::num(
                     net::to_mbit(metrics::median(metrics::as_span(bg_mid))),
                     1),
                 "~25 (clamped from 50)"});
  table.add_row({"first-second total (Mbit/s)",
                 metrics::Table::num(net::to_mbit(out.z_bits[0]), 1),
                 "~300 (burst)"});
  table.add_row({"estimate = median total (Mbit/s)",
                 metrics::Table::num(net::to_mbit(out.estimate_bits), 1),
                 "~250"});
  table.add_row({"post-measurement background (Mbit/s)", "50.0",
                 "50 (instant recovery)"});
  table.print(std::cout);

  std::cout << "\nWith r=0.25 (recommended): max inflation 1/(1-r) = "
            << metrics::Table::num(core::Params{}.max_inflation(), 2)
            << " (paper: 1.33)\n";
  return 0;
}
