// Fig 11 + §6.1 (Appendix C): Tor's processing limits in the lab.
//
// Paper: throughput grows with socket count and peaks at 1,248 Mbit/s with
// 20 sockets (CPU 100% from 13 sockets); adding circuits on a single socket
// does not raise throughput (KIST's single-socket limitation); throughput
// declines gently past the peak from socket bookkeeping.
#include <iostream>

#include "bench_util.h"
#include "net/units.h"
#include "tor/cpu_model.h"
#include "tor/relay.h"

using namespace flashflow;

int main(int argc, char** argv) {
  // Analytic lab curves (RelayModel/CpuModel evaluation, no simulation
  // noise and no worker pool): parse_cli gives the standard CLI surface;
  // the seed cannot perturb a deterministic curve.
  const auto cli = bench::parse_cli(argc, argv, /*default_seed=*/1,
                                    /*default_threads=*/1,
                                    /*accepts_threads=*/false);
  static_cast<void>(cli);
  bench::header("Figure 11 - Tor throughput vs sockets/circuits (lab)",
                "peak 1,248 Mbit/s at 20 sockets; circuits curve flat at "
                "the single-socket limit");

  tor::RelayModel relay;
  relay.nic_up_bits = relay.nic_down_bits = net::gbit(10);
  relay.cpu = tor::CpuModel::lab();

  metrics::Table table({"n", "sockets curve (Mbit/s)",
                        "circuits curve (Mbit/s)"});
  double peak = 0;
  int peak_n = 0;
  for (const int n : {1, 2, 5, 10, 13, 20, 40, 60, 80, 100}) {
    // Sockets experiment: n busy client sockets under the normal scheduler.
    const double sockets_curve = relay.normal_capacity(n);
    // Circuits experiment: one socket regardless of circuit count.
    const double circuits_curve = relay.normal_capacity(1);
    if (sockets_curve > peak) {
      peak = sockets_curve;
      peak_n = n;
    }
    table.add_row({std::to_string(n),
                   metrics::Table::num(net::to_mbit(sockets_curve), 0),
                   metrics::Table::num(net::to_mbit(circuits_curve), 0)});
  }
  table.print(std::cout);

  std::cout << "\npeak: " << metrics::Table::num(net::to_mbit(peak), 0)
            << " Mbit/s at " << peak_n
            << " sockets (paper: 1,248 Mbit/s at 20)\n";
  std::cout << "CPU saturates (capacity = KIST aggregate) at ~"
            << static_cast<int>(relay.cpu.capacity(13) /
                                relay.sched.kist_per_socket_cap_bits)
            << "+ sockets (paper: 13)\n";
  return 0;
}
