// Fig 14 (Appendix E.1): Tor throughput at the US-SW target as each host
// measures it alone, sweeping the number of measurement sockets.
//
// Paper: every host's curve rises, peaks, and gently declines (socket
// bookkeeping); IN is the slowest to peak and does so at s = 160, which is
// why the paper sets s = 160.
#include <iostream>

#include "bench_util.h"
#include "core/measurement.h"
#include "net/units.h"
#include "tor/cpu_model.h"

using namespace flashflow;

int main() {
  bench::header("Figure 14 - target throughput vs measurement sockets",
                "all hosts saturate the ~890 Mbit/s target; IN is the "
                "slowest to peak (s = 160)");

  const auto topo = net::make_table1_hosts();
  core::Params params;
  tor::RelayModel relay;
  relay.name = "target";
  relay.nic_up_bits = relay.nic_down_bits = net::mbit(954);
  relay.cpu = tor::CpuModel::us_sw();

  const std::vector<std::string> names = {"US-NW", "US-E", "IN", "NL"};
  const std::vector<int> socket_counts = {10, 20, 40, 80, 120, 160, 200,
                                          250, 300};

  metrics::Table table({"sockets", "US-NW", "US-E", "IN", "NL"});
  std::vector<double> in_curve;
  for (const int s : socket_counts) {
    std::vector<std::string> row = {std::to_string(s)};
    for (const auto& name : names) {
      core::SlotRunner runner(topo, params,
                              sim::Rng(777 + static_cast<unsigned>(s)));
      const core::MeasurerSlot m{topo.find(name), net::gbit(2), s};
      const auto out = runner.run(relay, topo.find("US-SW"), {&m, 1});
      row.push_back(
          metrics::Table::num(net::to_mbit(out.estimate_bits), 0));
      if (name == "IN") in_curve.push_back(out.estimate_bits);
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  // Where does IN peak?
  std::size_t best = 0;
  for (std::size_t i = 1; i < in_curve.size(); ++i)
    if (in_curve[i] > in_curve[best]) best = i;
  std::cout << "\nIN peaks at s = " << socket_counts[best]
            << " (paper: 160) with "
            << metrics::Table::num(net::to_mbit(in_curve[best]), 0)
            << " Mbit/s\n";
  return 0;
}
