// Fig 4: network weight error (Eq 6) over time.
//
// Paper: median NWE 21% (day), 22% (week), 24% (month), 30% (year);
// 15-25% over the latest year of data.
#include <iostream>

#include "analysis/archive.h"
#include "analysis/error_analysis.h"
#include "analysis/population.h"
#include "bench_util.h"

using namespace flashflow;

int main() {
  bench::header("Figure 4 - network weight error over time",
                "median NWE: day 21%, week 22%, month 24%, year 30%");

  analysis::PopulationParams pop;
  analysis::SyntheticArchive archive(
      analysis::generate_population(pop, 2 * 365, 20210604), 10);
  analysis::WeightErrorAnalysis weight_analysis(6);
  while (!archive.done()) weight_analysis.observe(archive.step_hour());

  metrics::Table table(
      {"window", "median NWE", "p90 NWE", "paper median"});
  const std::vector<std::string> paper = {"21%", "22%", "24%", "30%"};
  for (std::size_t w = 0; w < 4; ++w) {
    const auto& all =
        weight_analysis.nwe_series(static_cast<analysis::Window>(w));
    // Skip warm-up while trailing maxima fill.
    const std::vector<double> series(all.begin() + 180 * 24, all.end());
    table.add_row({analysis::kWindowNames[w],
                   metrics::Table::pct(
                       metrics::median(metrics::as_span(series))),
                   metrics::Table::pct(
                       metrics::percentile(metrics::as_span(series), 90)),
                   paper[w]});
  }
  table.print(std::cout);
  return 0;
}
