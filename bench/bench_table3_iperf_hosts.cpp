// Table 3 (Appendix B): pairwise bidirectional TCP/UDP iPerf between each
// host and US-SW, plus the saturating UDP column.
//
// Paper ranges (Mbit/s): US-NW TCP 176-787 / UDP 740-945; US-E TCP 874-919
// / UDP 943-944; IN TCP 677-819 / UDP 925-955; NL TCP 827-880 / UDP
// 952-956. (Our TCP column is window-model-limited; see EXPERIMENTS.md.)
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "net/iperf.h"
#include "net/units.h"

using namespace flashflow;

int main() {
  bench::header("Table 3 - pairwise iPerf throughput vs US-SW",
                "UDP > TCP everywhere; US-NW highly variable; saturating "
                "UDP reproduces Table 1");

  const auto topo = net::make_table1_hosts();
  net::IperfRunner iperf(topo, 20210611);
  const net::HostId us_sw = topo.find("US-SW");

  metrics::Table table({"host", "TCP (Mbit/s)", "UDP (Mbit/s)",
                        "UDP many (Mbit/s)", "paper TCP", "paper UDP"});
  const std::vector<std::string> paper_tcp = {"176-787", "874-919",
                                              "677-819", "827-880"};
  const std::vector<std::string> paper_udp = {"740-945", "943-944",
                                              "925-955", "952-956"};
  const std::vector<std::string> names = {"US-NW", "US-E", "IN", "NL"};
  for (std::size_t i = 0; i < names.size(); ++i) {
    const net::HostId h = topo.find(names[i]);
    // 24 daily runs as in the paper; report min-max of medians.
    double tcp_lo = 1e18, tcp_hi = 0, udp_lo = 1e18, udp_hi = 0;
    for (int run = 0; run < 24; ++run) {
      const double tcp =
          iperf.run_bidirectional(h, us_sw, 60, /*udp=*/false).median_bits();
      const double udp =
          iperf.run_bidirectional(h, us_sw, 60, /*udp=*/true).median_bits();
      tcp_lo = std::min(tcp_lo, tcp);
      tcp_hi = std::max(tcp_hi, tcp);
      udp_lo = std::min(udp_lo, udp);
      udp_hi = std::max(udp_hi, udp);
    }
    const double many =
        iperf.run_saturate_udp(h, 60).median_bits();
    table.add_row({names[i],
                   metrics::Table::num(net::to_mbit(tcp_lo), 0) + "-" +
                       metrics::Table::num(net::to_mbit(tcp_hi), 0),
                   metrics::Table::num(net::to_mbit(udp_lo), 0) + "-" +
                       metrics::Table::num(net::to_mbit(udp_hi), 0),
                   metrics::Table::num(net::to_mbit(many), 0),
                   paper_tcp[i], paper_udp[i]});
  }
  table.print(std::cout);
  return 0;
}
