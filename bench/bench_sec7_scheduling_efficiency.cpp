// §7 "Network Measurement Efficiency": how fast can FlashFlow measure the
// whole Tor network?
//
// Paper: a team of 3 x 1 Gbit/s measurers covers the July-2019 network
// (median 6,419 relays, 608 Gbit/s) in ~599 30-second slots = ~5 hours;
// new relays (median 3/consensus, prior 51 Mbit/s) are measured within
// 30 s median (max 13 minutes for a 98-relay burst).
//
// The whole-network layout is the checked-in scenarios/sec7.yaml
// scenario file (`--scenario FILE` substitutes another);
// Scenario::plan() computes the packing without materializing a
// topology (6,419 relays would need a ~1 GB path matrix).
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "core/schedule.h"
#include "net/units.h"
#include "scenario/scenario.h"
#include "scenario/serialize.h"

using namespace flashflow;

int main(int argc, char** argv) {
  const std::string path = bench::take_scenario_flag(
      argc, argv, scenario::default_scenario_dir() + "/sec7.yaml");
  // July-2019-like capacity sample: 6,419 relays, largest 998 Mbit/s,
  // total ~608 Gbit/s, measured by three 1 Gbit/s measurers.
  scenario::ScenarioSpec spec = scenario::load_scenario_file(path);
  // Schedule-only analysis (Scenario::plan()); no worker pool, so no
  // --threads flag. The file's seed is the default; --seed overrides.
  const auto cli = bench::parse_cli(argc, argv, /*default_seed=*/spec.seed,
                                    /*default_threads=*/1,
                                    /*accepts_threads=*/false);
  spec.seed = cli.seed;
  bench::header("§7 - network measurement efficiency",
                "whole network in ~5 h (599 slots) with 3x1 Gbit/s; new "
                "relays within ~30 s median");

  const scenario::Scenario scenario(spec);
  const auto plan = scenario.plan();
  const double hours = plan.simulated_seconds / 3600.0;

  metrics::Table table({"quantity", "ours", "paper"});
  table.add_row({"relays", std::to_string(plan.relays),
                 "6,419 (median day)"});
  table.add_row({"total capacity (Gbit/s)",
                 metrics::Table::num(net::to_gbit(plan.total_prior_bits), 0),
                 "608"});
  table.add_row({"excess factor f",
                 metrics::Table::num(spec.params.excess_factor(), 2),
                 "2.84-2.95"});
  table.add_row({"slots needed", std::to_string(plan.slots_used), "599"});
  table.add_row({"hours", metrics::Table::num(hours, 1), "~5"});
  table.print(std::cout);

  // New relays: FCFS into the randomized schedule's leftover capacity,
  // on top of the same priors the plan above packed.
  const auto capacities = scenario.prior_capacities();
  std::vector<double> delays_s;
  for (int burst : {1, 3, 10, 98}) {
    core::PeriodSchedule fresh(spec.params, plan.team_capacity_bits,
                               cli.seed + 100 + burst);
    fresh.schedule_old_relays(capacities);
    int worst_slot = 0;
    for (int i = 0; i < burst; ++i)
      worst_slot =
          std::max(worst_slot, fresh.schedule_new_relay(net::mbit(51)));
    delays_s.push_back(worst_slot * spec.params.slot_seconds);
    std::cout << "  burst of " << burst
              << " new relays: last measured after slot " << worst_slot
              << " (" << worst_slot * spec.params.slot_seconds << " s)\n";
  }
  std::cout << "\nPaper: median time-to-measure for new relays 30 s; max "
               "13 minutes for the largest burst (98 relays).\n";
  return 0;
}
