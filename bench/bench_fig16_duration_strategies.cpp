// Fig 16 (Appendix E.3): measurement duration strategies.
//
// Taking the median of the first 10/20/30/60 seconds of m = 2.25 runs.
// Paper: ranges widen as durations shrink; the 30-second median is the
// tightest, with all results in [0.84, 1.01] of ground truth.
#include <iostream>

#include "bench_util.h"
#include "core/measurement.h"
#include "metrics/cdf.h"
#include "net/units.h"
#include "tor/cpu_model.h"

using namespace flashflow;

int main() {
  bench::header("Figure 16 - duration strategies",
                "30 s median tightest: all runs within [0.84, 1.01] of "
                "ground truth");

  const auto topo = net::make_table1_hosts();
  core::Params params;
  params.slot_seconds = 60;  // collect 60 s, emulate shorter medians

  const std::vector<double> limits = {10, 250, 500, 750, 0};
  const std::vector<int> strategy_seconds = {10, 20, 30, 60};
  std::vector<std::vector<double>> fracs(strategy_seconds.size());

  std::uint64_t seed = 9000;
  for (const double limit : limits) {
    tor::RelayModel relay;
    relay.name = "target";
    relay.nic_up_bits = relay.nic_down_bits = net::mbit(954);
    relay.rate_limit_bits = limit > 0 ? net::mbit(limit) : 0.0;
    relay.cpu = tor::CpuModel::us_sw();
    const double gt = relay.ground_truth(params.sockets);

    for (int rep = 0; rep < 40; ++rep) {
      core::SlotRunner runner(topo, params, sim::Rng(seed++));
      const core::MeasurerSlot m{topo.find("NL"),
                                 params.excess_factor() * gt, 160};
      const auto out = runner.run(relay, topo.find("US-SW"), {&m, 1});
      for (std::size_t s = 0; s < strategy_seconds.size(); ++s) {
        const std::vector<double> prefix(
            out.z_bits.begin(),
            out.z_bits.begin() + strategy_seconds[s]);
        fracs[s].push_back(
            metrics::median(metrics::as_span(prefix)) / gt);
      }
    }
  }

  metrics::Table table({"strategy", "min", "p5", "median", "p95", "max",
                        "paper"});
  for (std::size_t s = 0; s < strategy_seconds.size(); ++s) {
    metrics::Cdf cdf{metrics::as_span(fracs[s])};
    table.add_row({std::to_string(strategy_seconds[s]) + "s median",
                   metrics::Table::num(cdf.quantile(0.0), 3),
                   metrics::Table::num(cdf.quantile(0.05), 3),
                   metrics::Table::num(cdf.quantile(0.5), 3),
                   metrics::Table::num(cdf.quantile(0.95), 3),
                   metrics::Table::num(cdf.quantile(1.0), 3),
                   strategy_seconds[s] == 30 ? "[0.84, 1.01]" : "-"});
  }
  table.print(std::cout);
  std::cout << "\nNote: the first-second token-bucket burst makes very "
               "short strategies noisier, matching the paper's widening "
               "ranges.\n";
  return 0;
}
