// Table 2: comparison of Tor load-balancing systems.
//
// Runs each system's published attack against our implementation of it:
//   TorFlow     - advertised-bandwidth lie (demonstrated 177x)
//   EigenSpeed  - colluding clique inflation (21.5x)
//   PeerFlow    - trusted-traffic redirection, bound 2/tau = 10x at tau=0.2
//   FlashFlow   - background-traffic lie, bound 1/(1-r) = 1.33x
// and reports measurement speed for the whole network.
#include <algorithm>
#include <iostream>
#include <numeric>

#include "bench_util.h"
#include "core/attack.h"
#include "core/verification.h"
#include "core/schedule.h"
#include "eigenspeed/eigenspeed.h"
#include "net/units.h"
#include "peerflow/peerflow.h"
#include "tor/cpu_model.h"
#include "torflow/torflow.h"

using namespace flashflow;

int main() {
  bench::header("Table 2 - Tor load-balancing system comparison",
                "attack advantage 177x / 21.5x / 10x / 1.33x; speed 2 d / "
                "1 d / 14 d / 5 h");

  sim::Rng rng(20210612);

  // A July-2019-like relay capacity sample shared by all systems.
  const int n_relays = 300;
  std::vector<double> capacities;
  for (int i = 0; i < n_relays; ++i)
    capacities.push_back(
        std::clamp(rng.log_normal(17.5, 1.3), 1e6, 998e6));

  // --- TorFlow: self-report lie of 177x. --------------------------------
  std::vector<torflow::TorFlowRelay> tf_relays;
  for (int i = 0; i < n_relays; ++i) {
    std::string fp = "r";
    fp += std::to_string(i);
    tf_relays.push_back({std::move(fp),
                         capacities[static_cast<std::size_t>(i)],
                         capacities[static_cast<std::size_t>(i)] *
                             rng.uniform(0.4, 0.9),
                         rng.uniform(0.3, 0.7)});
  }
  const double tf_advantage = torflow::advertised_bandwidth_attack_advantage(
      tf_relays, 5, 177.0, {}, 1);
  torflow::TorFlow tf_scanner({}, 2);
  // Scale the 300-relay scan time to the full 6,500-relay network.
  const double tf_days =
      tf_scanner.scan_duration_days(tf_relays) * 6500.0 / n_relays;

  // --- EigenSpeed: colluding clique. ------------------------------------
  std::vector<std::size_t> colluders;
  for (std::size_t i = 0; i < 6; ++i) colluders.push_back(294 + i);
  const double es_advantage = eigenspeed::collusion_advantage(
      capacities, colluders, 42.0, 0.2, {}, 3);

  // --- PeerFlow: tau = 0.2. ----------------------------------------------
  std::vector<peerflow::PeerFlowRelay> pf_relays;
  for (int i = 0; i < n_relays; ++i) {
    peerflow::PeerFlowRelay r;
    r.fingerprint = "r";
    r.fingerprint += std::to_string(i);
    r.true_capacity_bits = capacities[static_cast<std::size_t>(i)];
    r.utilization = rng.uniform(0.3, 0.7);
    r.trusted = i < 60;        // 20% trusted
    r.malicious = i >= 295;    // small coalition
    pf_relays.push_back(std::move(r));
  }
  const double pf_advantage =
      peerflow::inflation_advantage(pf_relays, {}, 4);

  // --- FlashFlow: background lie, bounded 1.33x; speed via greedy pack. --
  core::Params params;
  const double ff_bound = params.max_inflation();
  const auto packing =
      core::greedy_pack(capacities, net::gbit(3), params);
  const double ff_hours =
      packing.slots_used * 6500.0 / n_relays * 30.0 / 3600.0;

  metrics::Table table({"system", "server BW", "attack advantage",
                        "paper", "capacity values?", "speed", "paper speed"});
  table.add_row({"TorFlow", "1 Gbit/s",
                 metrics::Table::num(tf_advantage, 0) + "x", "177x",
                 "inferable", metrics::Table::num(tf_days, 1) + " d",
                 "2 days"});
  table.add_row({"EigenSpeed", "0 (peer obs.)",
                 metrics::Table::num(es_advantage, 1) + "x", "21.5x", "no",
                 "1 d (per-period)", "1 day"});
  table.add_row({"PeerFlow", "0 (peer obs.)",
                 metrics::Table::num(pf_advantage, 1) + "x",
                 "10x (2/tau)", "inferable", "14 d (period)", "14 days+"});
  table.add_row({"FlashFlow", "3 Gbit/s",
                 metrics::Table::num(ff_bound, 2) + "x (bound)", "1.33x",
                 "yes", metrics::Table::num(ff_hours, 1) + " h",
                 "5 hours"});
  table.print(std::cout);

  std::cout << "\nFlashFlow residual defenses:\n"
            << "  part-time capacity (q=0.4, 3 BWAuths) fails w.p. "
            << metrics::Table::pct(core::part_time_failure_probability(3, 0.4))
            << " (paper: >= 50% for q < 1/2)\n"
            << "  forging one slot of echoes at p=1e-5 evades w.p. "
            << core::evasion_probability(1e-5, 1'700'000) << "\n";
  return 0;
}
