// Shared helpers for the experiment-reproduction binaries.
//
// Each bench binary regenerates one table or figure from the paper and
// prints the paper's reported values next to ours. These are experiment
// harnesses (they print table rows, not ns/op); microbenchmarks live in
// bench_micro.cpp.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "metrics/stats.h"
#include "metrics/table.h"

namespace flashflow::bench {

inline void header(const std::string& artifact, const std::string& claim) {
  metrics::print_banner(std::cout, artifact);
  std::cout << "Paper claim: " << claim << "\n\n";
}

/// Formats a boxplot summary on one line.
inline std::string box_summary(const std::vector<double>& xs) {
  if (xs.empty()) return "(no data)";
  const auto b = metrics::box_stats(metrics::as_span(xs));
  return "p5=" + metrics::Table::num(b.p5) + " q1=" +
         metrics::Table::num(b.q1) + " med=" + metrics::Table::num(b.median) +
         " q3=" + metrics::Table::num(b.q3) + " p95=" +
         metrics::Table::num(b.p95) + " mean=" + metrics::Table::num(b.mean);
}

}  // namespace flashflow::bench
