// Shared helpers for the experiment-reproduction binaries.
//
// Each bench binary regenerates one table or figure from the paper and
// prints the paper's reported values next to ours. These are experiment
// harnesses (they print table rows, not ns/op); microbenchmarks live in
// bench_micro.cpp.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "metrics/stats.h"
#include "metrics/table.h"

namespace flashflow::bench {

/// Shared CLI options for the experiment binaries. Every binary has a
/// deterministic default seed (the figures reproduce out of the box) that
/// `--seed` overrides for sensitivity runs; `--threads` sizes the campaign
/// engine's worker pool (0 = hardware concurrency).
struct CliOptions {
  std::uint64_t seed = 1;
  int threads = 1;
};

/// Strict whole-token integer flag parse shared by the bench binaries.
/// std::atoi cannot distinguish 0 from an error and accepts trailing
/// garbage ("2k" runs as 2); this rejects partial tokens, empty values and
/// out-of-range numbers, exiting 2 with a message naming the flag.
inline long parse_int_flag(const char* value, long min, long max,
                           const char* flag, const char* argv0) {
  char* end = nullptr;
  errno = 0;
  const long n = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE || n < min || n > max) {
    std::cerr << argv0 << ": " << flag << " needs an integer in [" << min
              << ", " << max << "], got '" << value << "'\n";
    std::exit(2);
  }
  return n;
}

/// Peels `--scenario FILE` / `--scenario=FILE` out of argv (so a later
/// parse_cli never sees it) and returns the file to load, or
/// `fallback` — the binary's checked-in scenario file — when the flag is
/// absent. Mutates argc/argv in place, shifting later arguments down.
inline std::string take_scenario_flag(int& argc, char** argv,
                                      std::string fallback) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string path;
    int consumed = 0;
    if (arg == "--scenario") {
      if (i + 1 >= argc) {
        std::cerr << argv[0] << ": --scenario needs a file\n";
        std::exit(2);
      }
      path = argv[i + 1];
      consumed = 2;
    } else if (arg.rfind("--scenario=", 0) == 0) {
      path = arg.substr(std::string("--scenario=").size());
      consumed = 1;
    } else {
      continue;
    }
    for (int j = i; j + consumed < argc; ++j) argv[j] = argv[j + consumed];
    argc -= consumed;
    return path;
  }
  return fallback;
}

/// Parses `--seed=N`/`--seed N` and (when the binary uses the campaign
/// worker pool — `accepts_threads`) `--threads=N`/`--threads N`;
/// `--help` prints usage and exits. Unknown or malformed arguments abort
/// with an error so typos do not silently run the default experiment.
inline CliOptions parse_cli(int argc, char** argv,
                            std::uint64_t default_seed,
                            int default_threads = 1,
                            bool accepts_threads = true) {
  CliOptions options;
  options.seed = default_seed;
  options.threads = default_threads;
  const auto value_of = [&](const std::string& arg, const char* name,
                            int& i) -> const char* {
    const std::string flag = std::string("--") + name;
    if (arg == flag) {
      if (i + 1 >= argc) {
        std::cerr << argv[0] << ": " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    }
    if (arg.rfind(flag + "=", 0) == 0)
      return argv[i] + flag.size() + 1;  // skip past "--name="
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0] << " [--seed N]"
                << (accepts_threads ? " [--threads N]" : "")
                << "\n  --seed     experiment seed (default " << default_seed
                << ")\n";
      if (accepts_threads)
        std::cout << "  --threads  campaign worker threads, 0 = all cores "
                     "(default "
                  << default_threads << ")\n";
      std::exit(0);
    } else if (const char* v = value_of(arg, "seed", i)) {
      char* end = nullptr;
      errno = 0;
      options.seed = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0' || v[0] == '-' || errno == ERANGE) {
        std::cerr << argv[0] << ": --seed needs a non-negative 64-bit "
                  << "integer, got '" << v << "'\n";
        std::exit(2);
      }
    } else if (const char* v2 =
                   accepts_threads ? value_of(arg, "threads", i) : nullptr) {
      options.threads = static_cast<int>(
          parse_int_flag(v2, 0, 4096, "--threads (0 = all cores)", argv[0]));
    } else {
      std::cerr << argv[0] << ": unknown argument '" << arg
                << "' (try --help)\n";
      std::exit(2);
    }
  }
  return options;
}

inline void header(const std::string& artifact, const std::string& claim) {
  metrics::print_banner(std::cout, artifact);
  std::cout << "Paper claim: " << claim << "\n\n";
}

/// Formats a boxplot summary on one line.
inline std::string box_summary(const std::vector<double>& xs) {
  if (xs.empty()) return "(no data)";
  const auto b = metrics::box_stats(metrics::as_span(xs));
  return "p5=" + metrics::Table::num(b.p5) + " q1=" +
         metrics::Table::num(b.q1) + " med=" + metrics::Table::num(b.median) +
         " q3=" + metrics::Table::num(b.q3) + " p95=" +
         metrics::Table::num(b.p95) + " mean=" + metrics::Table::num(b.mean);
}

}  // namespace flashflow::bench
