// Shared helpers for the experiment-reproduction binaries.
//
// Each bench binary regenerates one table or figure from the paper and
// prints the paper's reported values next to ours. These are experiment
// harnesses (they print table rows, not ns/op); microbenchmarks live in
// bench_micro.cpp.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "metrics/stats.h"
#include "metrics/table.h"

namespace flashflow::bench {

/// Shared CLI options for the experiment binaries. Every binary has a
/// deterministic default seed (the figures reproduce out of the box) that
/// `--seed` overrides for sensitivity runs; `--threads` sizes the campaign
/// engine's worker pool (0 = hardware concurrency).
struct CliOptions {
  std::uint64_t seed = 1;
  int threads = 1;
};

/// Parses `--seed=N`/`--seed N` and (when the binary uses the campaign
/// worker pool — `accepts_threads`) `--threads=N`/`--threads N`;
/// `--help` prints usage and exits. Unknown or malformed arguments abort
/// with an error so typos do not silently run the default experiment.
inline CliOptions parse_cli(int argc, char** argv,
                            std::uint64_t default_seed,
                            int default_threads = 1,
                            bool accepts_threads = true) {
  CliOptions options;
  options.seed = default_seed;
  options.threads = default_threads;
  const auto value_of = [&](const std::string& arg, const char* name,
                            int& i) -> const char* {
    const std::string flag = std::string("--") + name;
    if (arg == flag) {
      if (i + 1 >= argc) {
        std::cerr << argv[0] << ": " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    }
    if (arg.rfind(flag + "=", 0) == 0)
      return argv[i] + flag.size() + 1;  // skip past "--name="
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0] << " [--seed N]"
                << (accepts_threads ? " [--threads N]" : "")
                << "\n  --seed     experiment seed (default " << default_seed
                << ")\n";
      if (accepts_threads)
        std::cout << "  --threads  campaign worker threads, 0 = all cores "
                     "(default "
                  << default_threads << ")\n";
      std::exit(0);
    } else if (const char* v = value_of(arg, "seed", i)) {
      char* end = nullptr;
      errno = 0;
      options.seed = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0' || v[0] == '-' || errno == ERANGE) {
        std::cerr << argv[0] << ": --seed needs a non-negative 64-bit "
                  << "integer, got '" << v << "'\n";
        std::exit(2);
      }
    } else if (const char* v2 =
                   accepts_threads ? value_of(arg, "threads", i) : nullptr) {
      char* end = nullptr;
      errno = 0;
      const long threads = std::strtol(v2, &end, 10);
      if (end == v2 || *end != '\0' || errno == ERANGE || threads < 0 ||
          threads > 4096) {
        std::cerr << argv[0] << ": --threads needs an integer in [0, 4096] "
                  << "(0 = all cores), got '" << v2 << "'\n";
        std::exit(2);
      }
      options.threads = static_cast<int>(threads);
    } else {
      std::cerr << argv[0] << ": unknown argument '" << arg
                << "' (try --help)\n";
      std::exit(2);
    }
  }
  return options;
}

inline void header(const std::string& artifact, const std::string& claim) {
  metrics::print_banner(std::cout, artifact);
  std::cout << "Paper claim: " << claim << "\n\n";
}

/// Formats a boxplot summary on one line.
inline std::string box_summary(const std::vector<double>& xs) {
  if (xs.empty()) return "(no data)";
  const auto b = metrics::box_stats(metrics::as_span(xs));
  return "p5=" + metrics::Table::num(b.p5) + " q1=" +
         metrics::Table::num(b.q1) + " med=" + metrics::Table::num(b.median) +
         " q3=" + metrics::Table::num(b.q3) + " p95=" +
         metrics::Table::num(b.p95) + " mean=" + metrics::Table::num(b.mean);
}

}  // namespace flashflow::bench
