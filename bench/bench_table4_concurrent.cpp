// Table 4 (Appendix F): concurrent measurement accuracy.
//
// US-E and NL together (the smallest pair with enough capacity) measure
// eight 100 Mbit/s relays, four 200 Mbit/s relays, or two 400 Mbit/s relays
// hosted on US-SW at once. Paper: estimates within (-20%, +5%) of ground
// truth in all but one case; ground truths 94.2 / 191 / 393 Mbit/s.
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "core/measurement.h"
#include "net/units.h"
#include "tor/cpu_model.h"

using namespace flashflow;

int main() {
  bench::header("Table 4 - concurrent measurements",
                "8x100 / 4x200 / 2x400 Mbit/s relays measured at once; "
                "relative accuracy ~[0.78, 1.05]");

  const auto topo = net::make_table1_hosts();
  core::Params params;

  struct Config {
    double limit_mbit;
    int count;
    const char* paper_gt;
    const char* paper_range;
  };
  const std::vector<Config> configs = {
      {100, 8, "94.2", "[93%, 105%]"},
      {200, 4, "191", "[85%, 97%]"},
      {400, 2, "393", "[78%, 100%]"},
  };

  metrics::Table table({"limit", "relays", "ground truth (Mbit/s)",
                        "paper gt", "estimates (Mbit/s)", "relative",
                        "paper relative"});
  for (const auto& config : configs) {
    std::vector<core::SlotRunner::ConcurrentTarget> targets(
        static_cast<std::size_t>(config.count));
    const double total_gt_need =
        params.excess_factor() * config.limit_mbit * config.count * 1e6;
    for (int i = 0; i < config.count; ++i) {
      auto& t = targets[static_cast<std::size_t>(i)];
      t.relay.name = "relay-";
      t.relay.name += std::to_string(i);
      t.relay.nic_up_bits = t.relay.nic_down_bits = net::mbit(954);
      t.relay.rate_limit_bits = net::mbit(config.limit_mbit);
      t.relay.cpu = tor::CpuModel::us_sw();
      t.host = topo.find("US-SW");
      // Split the required capacity evenly across US-E and NL, and the
      // socket budget across the concurrent relays.
      const double per_measurer = total_gt_need / config.count / 2.0;
      const int sockets = params.sockets / config.count / 2;
      t.team = {{topo.find("US-E"), per_measurer, sockets},
                {topo.find("NL"), per_measurer, sockets}};
    }
    core::SlotRunner runner(topo, params, sim::Rng(20210614));
    const auto outs = runner.run_concurrent(targets);

    const double gt = targets[0].relay.ground_truth(
        params.sockets / config.count);
    std::string estimates, relative;
    double lo = 1e18, hi = 0;
    for (const auto& out : outs) {
      lo = std::min(lo, out.estimate_bits);
      hi = std::max(hi, out.estimate_bits);
    }
    estimates = "[";
    estimates += metrics::Table::num(net::to_mbit(lo), 0);
    estimates += ", ";
    estimates += metrics::Table::num(net::to_mbit(hi), 0);
    estimates += "]";
    relative = "[";
    relative += metrics::Table::pct(lo / gt, 0);
    relative += ", ";
    relative += metrics::Table::pct(hi / gt, 0);
    relative += "]";
    table.add_row({metrics::Table::num(config.limit_mbit, 0) + " Mbit/s",
                   std::to_string(config.count),
                   metrics::Table::num(net::to_mbit(gt), 1), config.paper_gt,
                   estimates, relative, config.paper_range});
  }
  table.print(std::cout);
  std::cout << "\nConclusion matches Appendix F: measuring relays "
               "concurrently does not degrade accuracy.\n";
  return 0;
}
