// Table 4 (Appendix F): concurrent measurement accuracy.
//
// US-E and NL together (the smallest pair with enough capacity) measure
// eight 100 Mbit/s relays, four 200 Mbit/s relays, or two 400 Mbit/s relays
// hosted on US-SW at once. Paper: estimates within (-20%, +5%) of ground
// truth in all but one case; ground truths 94.2 / 191 / 393 Mbit/s.
//
// Each batch is a declarative scenario whose team capacity is sized so the
// §7 packer lays every relay into one slot — the campaign engine then runs
// them concurrently, sharing measurer and target-host NICs (Appendix F).
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "net/units.h"
#include "scenario/scenario.h"

using namespace flashflow;

int main(int argc, char** argv) {
  const auto cli = bench::parse_cli(argc, argv, /*default_seed=*/20210614);
  bench::header("Table 4 - concurrent measurements",
                "8x100 / 4x200 / 2x400 Mbit/s relays measured at once; "
                "relative accuracy ~[0.78, 1.05]");

  struct Config {
    double limit_mbit;
    int count;
    const char* paper_gt;
    const char* paper_range;
  };
  const std::vector<Config> configs = {
      {100, 8, "94.2", "[93%, 105%]"},
      {200, 4, "191", "[85%, 97%]"},
      {400, 2, "393", "[78%, 100%]"},
  };
  const core::Params params;

  metrics::Table table({"limit", "relays", "slots", "ground truth (Mbit/s)",
                        "paper gt", "estimates (Mbit/s)", "relative",
                        "paper relative"});
  for (const auto& config : configs) {
    // Give the pair exactly the Appendix F budget, f * limit * count,
    // split evenly — enough for the packer to schedule the whole batch
    // into a single concurrent slot.
    const double per_measurer =
        params.excess_factor() * net::mbit(config.limit_mbit) *
        config.count / 2.0;
    const scenario::Scenario scenario(
        scenario::ScenarioBuilder("table4")
            .table1_relays(std::vector<double>(
                static_cast<std::size_t>(config.count), config.limit_mbit))
            .measurers({"US-E", "NL"})
            .measurer_capacities({per_measurer, per_measurer})
            .threads(cli.threads)
            .seed(cli.seed)
            .build());
    const auto result = scenario.run();

    const double gt = result.relays.front().ground_truth_bits;
    double lo = 1e18, hi = 0;
    for (const auto& est : result.relays) {
      lo = std::min(lo, est.estimate_bits);
      hi = std::max(hi, est.estimate_bits);
    }
    std::string estimates = "[";
    estimates += metrics::Table::num(net::to_mbit(lo), 0);
    estimates += ", ";
    estimates += metrics::Table::num(net::to_mbit(hi), 0);
    estimates += "]";
    std::string relative = "[";
    relative += metrics::Table::pct(lo / gt, 0);
    relative += ", ";
    relative += metrics::Table::pct(hi / gt, 0);
    relative += "]";
    table.add_row({metrics::Table::num(config.limit_mbit, 0) + " Mbit/s",
                   std::to_string(config.count),
                   std::to_string(result.summary.slots_executed),
                   metrics::Table::num(net::to_mbit(gt), 1), config.paper_gt,
                   estimates, relative, config.paper_range});
  }
  table.print(std::cout);
  std::cout << "\nConclusion matches Appendix F: measuring relays "
               "concurrently does not degrade accuracy.\n";
  return 0;
}
