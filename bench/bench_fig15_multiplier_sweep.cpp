// Fig 15 (Appendix E.2): choosing the multiplier m.
//
// For m in {1.5, 1.75, 2.0, 2.25, 2.5} and target limits of
// 10/250/500/750/unlimited Mbit/s, all measurer subsets with enough
// capacity measure the target with allocation m * ground-truth. Paper:
// m = 2.25 is the smallest multiplier with no outliers below 0.8 of ground
// truth.
#include <iostream>

#include "bench_util.h"
#include "core/allocation.h"
#include "core/measurement.h"
#include "metrics/cdf.h"
#include "net/units.h"
#include "tor/cpu_model.h"

using namespace flashflow;

int main() {
  bench::header("Figure 15 - multiplier sweep",
                "m = 2.25 is the smallest multiplier avoiding outliers "
                "below 0.8x ground truth");

  const auto topo = net::make_table1_hosts();
  const std::vector<std::string> names = {"US-NW", "US-E", "IN", "NL"};
  const std::vector<double> caps = {net::mbit(946), net::mbit(941),
                                    net::mbit(1076), net::mbit(1611)};
  const std::vector<double> limits = {10, 250, 500, 750, 0};
  const std::vector<double> multipliers = {1.5, 1.75, 2.0, 2.25, 2.5};

  metrics::Table table({"m", "runs", "min frac", "p5", "median",
                        "% below 0.8"});
  std::uint64_t seed = 5000;
  for (const double m : multipliers) {
    std::vector<double> fracs;
    for (const double limit : limits) {
      tor::RelayModel relay;
      relay.name = "target";
      relay.nic_up_bits = relay.nic_down_bits = net::mbit(954);
      relay.rate_limit_bits = limit > 0 ? net::mbit(limit) : 0.0;
      relay.cpu = tor::CpuModel::us_sw();
      core::Params params;
      params.multiplier = m;
      const double gt = relay.ground_truth(params.sockets);

      for (unsigned mask = 1; mask < 16; ++mask) {
        std::vector<double> subset_caps;
        std::vector<net::HostId> hosts;
        for (std::size_t i = 0; i < 4; ++i)
          if (mask & (1u << i)) {
            subset_caps.push_back(caps[i]);
            hosts.push_back(topo.find(names[i]));
          }
        // Appendix E.2 divides the capacity assignment *evenly* across the
        // subset ("configure both to limit their throughput to
        // 494*1.5/2"), so every member must afford its share.
        const double share_bits =
            m * gt / static_cast<double>(hosts.size());
        bool feasible = true;
        for (const double c : subset_caps)
          if (c < share_bits) feasible = false;
        if (!feasible) continue;
        std::vector<core::MeasurerSlot> team;
        const int socket_share =
            core::Params{}.sockets / static_cast<int>(hosts.size());
        for (const auto host : hosts)
          team.push_back({host, share_bits, socket_share});
        for (int rep = 0; rep < 4; ++rep) {
          core::SlotRunner runner(topo, params, sim::Rng(seed++));
          const auto out = runner.run(relay, topo.find("US-SW"), team);
          fracs.push_back(out.estimate_bits / gt);
        }
      }
    }
    metrics::Cdf cdf{metrics::as_span(fracs)};
    const double below = cdf.fraction_at_most(0.7999);
    table.add_row({metrics::Table::num(m, 2), std::to_string(fracs.size()),
                   metrics::Table::num(cdf.quantile(0.0), 3),
                   metrics::Table::num(cdf.quantile(0.05), 3),
                   metrics::Table::num(cdf.quantile(0.5), 3),
                   metrics::Table::pct(below)});
  }
  table.print(std::cout);
  std::cout << "\nThe paper picks the smallest m with (essentially) no "
               "runs below 0.8x ground truth — 2.25. With our larger "
               "sample the same rule applies to the sub-0.8 rate: it must "
               "fall to the Fig 6 background level (~0.2-0.5%), which "
               "happens at m = 2.25.\n";
  return 0;
}
