// Fig 2: network capacity error (Eq 3) over time for the four windows.
//
// Paper: median NCE 5% (day), 14% (week), 22% (month), 36% (year);
// maximum observed 60%.
#include <iostream>

#include "analysis/archive.h"
#include "analysis/error_analysis.h"
#include "analysis/population.h"
#include "bench_util.h"

using namespace flashflow;

int main() {
  bench::header("Figure 2 - network capacity error over time",
                "median NCE: day 5%, week 14%, month 22%, year 36%; "
                "max ~60%");

  analysis::PopulationParams pop;
  analysis::SyntheticArchive archive(
      analysis::generate_population(pop, 3 * 365, 20210602), 8);
  analysis::CapacityErrorAnalysis cap_analysis(6);
  while (!archive.done()) cap_analysis.observe(archive.step_hour());

  metrics::Table table(
      {"window", "median NCE", "p95 NCE", "max NCE", "paper median"});
  const std::vector<std::string> paper = {"5%", "14%", "22%", "36%"};
  for (std::size_t w = 0; w < 4; ++w) {
    // Skip the first year: year-window maxima need history to fill.
    const auto& all = cap_analysis.nce_series(
        static_cast<analysis::Window>(w));
    const std::vector<double> series(all.begin() + 365 * 24, all.end());
    table.add_row({analysis::kWindowNames[w],
                   metrics::Table::pct(metrics::median(
                       metrics::as_span(series))),
                   metrics::Table::pct(metrics::percentile(
                       metrics::as_span(series), 95)),
                   metrics::Table::pct(metrics::max_value(
                       metrics::as_span(series))),
                   paper[w]});
  }
  table.print(std::cout);
  return 0;
}
