// Fig 12 (Appendix D): single-socket FlashFlow throughput, default vs
// tuned kernel, at netem RTTs of 28/120/340 ms in the lab.
//
// Paper: the tuned kernel beats the default at every RTT; throughput
// decreases with RTT for both; max observed 1,269 Mbit/s (consistent with
// Tor's CPU capacity).
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "net/tcp_model.h"
#include "net/units.h"
#include "tor/cpu_model.h"

using namespace flashflow;

int main(int argc, char** argv) {
  // Analytic lab curves (tcp_model/CpuModel evaluation, no simulation
  // noise and no worker pool): parse_cli gives the standard CLI surface;
  // the seed cannot perturb a deterministic curve.
  const auto cli = bench::parse_cli(argc, argv, /*default_seed=*/1,
                                    /*default_threads=*/1,
                                    /*accepts_threads=*/false);
  static_cast<void>(cli);
  bench::header("Figure 12 - single-socket throughput vs kernel tuning",
                "tuned > default at all RTTs; both decline in RTT; max "
                "~1,269 Mbit/s");

  const tor::CpuModel cpu = tor::CpuModel::lab();
  metrics::Table table({"RTT", "default (Mbit/s)", "tuned (Mbit/s)",
                        "paper default", "paper tuned"});
  const std::vector<std::string> paper_default = {"~1100", "~280", "~98"};
  const std::vector<std::string> paper_tuned = {"~1269", "~1100", "~600"};
  const std::vector<double> rtts = {0.028, 0.120, 0.340};
  double max_seen = 0;
  for (std::size_t i = 0; i < rtts.size(); ++i) {
    // Measurement scheduler: no KIST cap; the socket is limited by the
    // kernel window / RTT and by the relay CPU (one busy socket).
    const double def = std::min(
        net::tcp_socket_throughput(net::KernelProfile::default_profile(),
                                   rtts[i], 0.0),
        cpu.capacity(1));
    const double tuned = std::min(
        net::tcp_socket_throughput(net::KernelProfile::tuned_profile(),
                                   rtts[i], 0.0),
        cpu.capacity(1));
    max_seen = std::max({max_seen, def, tuned});
    table.add_row({metrics::Table::num(rtts[i] * 1000, 0) + " ms",
                   metrics::Table::num(net::to_mbit(def), 0),
                   metrics::Table::num(net::to_mbit(tuned), 0),
                   paper_default[i], paper_tuned[i]});
  }
  table.print(std::cout);
  std::cout << "\nmax single-socket throughput: "
            << metrics::Table::num(net::to_mbit(max_seen), 0)
            << " Mbit/s (paper: 1,269)\n";
  return 0;
}
