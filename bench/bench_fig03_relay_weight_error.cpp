// Fig 3: CDF of log10 per-relay mean weight error (Eq 5).
//
// Paper: more than 85% of relays are under-weighted relative to their
// capacity (log10 RWE < 0); few are ideally weighted.
#include <cmath>
#include <iostream>

#include "analysis/archive.h"
#include "analysis/error_analysis.h"
#include "analysis/population.h"
#include "bench_util.h"
#include "metrics/cdf.h"

using namespace flashflow;

int main() {
  bench::header("Figure 3 - relay weight error CDF (log10)",
                ">85% of relays under-weighted (log10 RWE < 0)");

  analysis::PopulationParams pop;
  analysis::SyntheticArchive archive(
      analysis::generate_population(pop, 2 * 365, 20210603), 9);
  analysis::WeightErrorAnalysis weight_analysis(6);
  while (!archive.done()) weight_analysis.observe(archive.step_hour());

  metrics::Table table({"window", "frac under-weighted", "median log10 RWE",
                        "paper"});
  for (std::size_t w = 0; w < 4; ++w) {
    const auto rwe = weight_analysis.mean_rwe_per_relay(
        static_cast<analysis::Window>(w));
    std::vector<double> log_rwe;
    for (const double e : rwe)
      if (e > 0) log_rwe.push_back(std::log10(e));
    metrics::Cdf cdf(metrics::as_span(log_rwe));
    table.add_row({analysis::kWindowNames[w],
                   metrics::Table::pct(cdf.fraction_at_most(0.0)),
                   metrics::Table::num(cdf.quantile(0.5), 3),
                   w == 3 ? ">85% under" : "-"});
  }
  table.print(std::cout);

  std::cout << "\nYear-window log10(RWE) CDF:\n";
  const auto rwe =
      weight_analysis.mean_rwe_per_relay(analysis::Window::kYear);
  std::vector<double> log_rwe;
  for (const double e : rwe)
    if (e > 0) log_rwe.push_back(std::log10(e));
  metrics::Cdf cdf(metrics::as_span(log_rwe));
  for (const auto& pt : cdf.series(11))
    std::cout << "  " << metrics::Table::num(pt.x, 2) << " -> "
              << metrics::Table::num(pt.fraction) << "\n";
  return 0;
}
