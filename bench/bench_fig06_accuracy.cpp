// Fig 6 (§6.2): FlashFlow measurement accuracy without background traffic.
//
// All non-empty subsets of {US-NW, US-E, IN, NL} measure a relay on US-SW
// limited to 10/250/500/750/unlimited Mbit/s, 7 repetitions each, m = 2.25,
// t = 30 s. Paper: 95% of runs within 11% of ground truth (0.89-1.11);
// 99.8% within (-eps1, +eps2) = (0.80, 1.05).
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/allocation.h"
#include "core/measurement.h"
#include "metrics/cdf.h"
#include "net/units.h"
#include "tor/cpu_model.h"

using namespace flashflow;

namespace {

tor::RelayModel make_relay(double limit_mbit) {
  tor::RelayModel r;
  r.name = "target";
  r.nic_up_bits = r.nic_down_bits = net::mbit(954);
  r.rate_limit_bits = limit_mbit > 0 ? net::mbit(limit_mbit) : 0.0;
  r.cpu = tor::CpuModel::us_sw();
  return r;
}

}  // namespace

int main() {
  bench::header("Figure 6 - measurement accuracy (no background traffic)",
                "95% of runs within 0.89-1.11 of capacity; 99.8% within "
                "0.80-1.05");

  const auto topo = net::make_table1_hosts();
  core::Params params;
  const std::vector<std::string> measurer_names = {"US-NW", "US-E", "IN",
                                                   "NL"};
  const std::vector<double> measurer_caps = {
      net::mbit(946), net::mbit(941), net::mbit(1076), net::mbit(1611)};
  const std::vector<double> limits = {10, 250, 500, 750, 0};

  metrics::Cdf all_fracs;
  metrics::Table table({"target", "runs", "p5", "p50", "p95",
                        "min", "max"});
  std::uint64_t seed = 1000;
  for (const double limit : limits) {
    const auto relay = make_relay(limit);
    const double gt = relay.ground_truth(params.sockets);
    std::vector<double> fracs;

    // All 15 non-empty measurer subsets with sufficient capacity.
    for (unsigned mask = 1; mask < 16; ++mask) {
      std::vector<double> caps;
      std::vector<net::HostId> hosts;
      std::vector<int> cores;
      for (std::size_t i = 0; i < 4; ++i) {
        if (mask & (1u << i)) {
          caps.push_back(measurer_caps[i]);
          hosts.push_back(topo.find(measurer_names[i]));
          cores.push_back(topo.host(hosts.back()).cpu_cores);
        }
      }
      const double required = params.excess_factor() * gt;
      double total = 0;
      for (const double c : caps) total += c;
      if (total < required) continue;  // subset lacks capacity

      const auto alloc = core::allocate_greedy(caps, required);
      const auto shares = core::make_shares(alloc, cores, params);
      std::vector<core::MeasurerSlot> team;
      for (const auto& s : shares) {
        if (s.allocated_bits <= 0) continue;
        team.push_back({hosts[s.measurer_index], s.allocated_bits,
                        s.sockets});
      }
      for (int rep = 0; rep < 7; ++rep) {
        core::SlotRunner runner(topo, params, sim::Rng(seed++));
        const auto out =
            runner.run(relay, topo.find("US-SW"), team);
        const double frac = out.estimate_bits / gt;
        fracs.push_back(frac);
        all_fracs.add(frac);
      }
    }
    metrics::Cdf cdf{metrics::as_span(fracs)};
    table.add_row(
        {limit > 0 ? metrics::Table::num(limit, 0) + " Mbit/s" : "unlimited",
         std::to_string(fracs.size()), metrics::Table::num(cdf.quantile(0.05), 3),
         metrics::Table::num(cdf.quantile(0.5), 3),
         metrics::Table::num(cdf.quantile(0.95), 3),
         metrics::Table::num(cdf.quantile(0.0), 3),
         metrics::Table::num(cdf.quantile(1.0), 3)});
  }
  table.print(std::cout);

  std::cout << "\nAggregate accuracy (" << all_fracs.size() << " runs):\n"
            << "  within 0.89-1.11 of capacity : "
            << metrics::Table::pct(all_fracs.fraction_within(0.89, 1.11))
            << "   (paper: 95%)\n"
            << "  within 0.80-1.05 of capacity : "
            << metrics::Table::pct(all_fracs.fraction_within(0.80, 1.05))
            << "   (paper: 99.8%)\n";
  return 0;
}
