// Microbenchmarks (google-benchmark) for the hot paths under every
// experiment: cell crypto, the event queue, the max-min fair solver, the
// fluid network, and the statistics kernels.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "metrics/stats.h"
#include "metrics/timeseries.h"
#include "net/fairshare.h"
#include "net/flownet.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "tor/circuit.h"

namespace {

using namespace flashflow;

void BM_CellCipherApply(benchmark::State& state) {
  tor::CellCipher cipher(0x1234);
  std::array<std::uint8_t, tor::kCellPayloadSize> payload{};
  std::uint64_t counter = 0;
  for (auto _ : state) {
    cipher.apply(counter++, payload);
    benchmark::DoNotOptimize(payload);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          tor::kCellPayloadSize);
}
BENCHMARK(BM_CellCipherApply);

void BM_MeasurementEchoRoundTrip(benchmark::State& state) {
  tor::MeasurementSender sender(42, 1e-5, sim::Rng(1));
  tor::MeasurementTarget target(42, tor::MeasurementTarget::Behavior::kHonest);
  for (auto _ : state) {
    const auto cell = sender.next_cell(7);
    const auto echo = target.handle(cell);
    benchmark::DoNotOptimize(sender.check_echo(echo));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          tor::kCellSize);
}
BENCHMARK(BM_MeasurementEchoRoundTrip);

void BM_EventQueueScheduleCancel(benchmark::State& state) {
  sim::EventQueue queue;
  for (auto _ : state) {
    const auto id = queue.schedule(100, [] {});
    queue.cancel(id);
  }
}
BENCHMARK(BM_EventQueueScheduleCancel);

void BM_SimulatorEventChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simu;
    for (int i = 0; i < 1000; ++i)
      simu.schedule_at(i, [] {});
    simu.run();
    benchmark::DoNotOptimize(simu.events_dispatched());
  }
}
BENCHMARK(BM_SimulatorEventChurn);

void BM_MaxMinFair(benchmark::State& state) {
  const auto flows_n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng(7);
  std::vector<net::FairShareResource> resources(32);
  for (auto& r : resources) r.capacity = rng.uniform(1e6, 1e9);
  std::vector<net::FairShareFlow> flows(flows_n);
  for (auto& f : flows) {
    for (int u = 0; u < 3; ++u)
      f.resources.push_back(
          static_cast<std::size_t>(rng.uniform_int(0, 31)));
    f.weight = rng.uniform(0.5, 4.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::max_min_fair_rates(resources, flows));
  }
}
BENCHMARK(BM_MaxMinFair)->Arg(16)->Arg(64)->Arg(256);

void BM_FlowNetAddRemove(benchmark::State& state) {
  sim::Simulator simu;
  net::FlowNet netw(simu);
  std::vector<net::ResourceId> resources;
  for (int i = 0; i < 16; ++i) {
    std::string name = "r";
    name += std::to_string(i);
    resources.push_back(netw.add_resource(name, 1e9));
  }
  sim::Rng rng(9);
  for (auto _ : state) {
    net::FlowNet::FlowSpec spec;
    spec.resources = {
        resources[static_cast<std::size_t>(rng.uniform_int(0, 15))],
        resources[static_cast<std::size_t>(rng.uniform_int(0, 15))]};
    const auto id = netw.add_flow(std::move(spec));
    netw.remove_flow(id);
  }
}
BENCHMARK(BM_FlowNetAddRemove);

void BM_MedianOf30(benchmark::State& state) {
  sim::Rng rng(11);
  std::vector<double> xs(30);
  for (auto& x : xs) x = rng.uniform(0.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::median(metrics::as_span(xs)));
  }
}
BENCHMARK(BM_MedianOf30);

void BM_TrailingMaxPush(benchmark::State& state) {
  metrics::TrailingMax max(8760);
  sim::Rng rng(13);
  for (auto _ : state) {
    max.push(rng.uniform(0.0, 1.0));
    benchmark::DoNotOptimize(max.max());
  }
}
BENCHMARK(BM_TrailingMaxPush);

void BM_RngUniform(benchmark::State& state) {
  sim::Rng rng(17);
  for (auto _ : state) benchmark::DoNotOptimize(rng.uniform());
}
BENCHMARK(BM_RngUniform);

}  // namespace

BENCHMARK_MAIN();
