// Fig 13 (Appendix D): ratio of default-kernel to tuned-kernel throughput
// as the number of measurement sockets grows, per Internet host measuring
// US-SW.
//
// Paper: the ratio starts below 1 (tuned helps a lone socket fill the BDP)
// and approaches 1 as sockets aggregate enough buffer space; IN (highest
// RTT) starts lowest.
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "net/tcp_model.h"
#include "net/topology.h"
#include "net/units.h"

using namespace flashflow;

namespace {

/// Aggregate deliverable rate toward US-SW with n sockets and a kernel
/// profile, capped by the path NICs.
double aggregate(const net::Topology& topo, net::HostId h, net::HostId us_sw,
                 const net::KernelProfile& kernel, int n) {
  const double per_socket = net::tcp_socket_throughput(
      kernel, topo.rtt(h, us_sw), topo.loss(h, us_sw));
  const double nic = std::min(topo.host(h).nic_up_bits,
                              topo.host(us_sw).nic_down_bits);
  return std::min(per_socket * n, nic);
}

}  // namespace

int main() {
  bench::header("Figure 13 - default/tuned throughput ratio vs sockets",
                "ratio < 1 for few sockets (lowest for IN), -> 1 as "
                "sockets grow");

  const auto topo = net::make_table1_hosts();
  const net::HostId us_sw = topo.find("US-SW");
  const std::vector<std::string> names = {"US-NW", "US-E", "IN", "NL"};

  metrics::Table table({"sockets", "US-NW", "US-E", "IN", "NL"});
  for (const int n : {1, 2, 4, 8, 16, 32, 64, 100}) {
    std::vector<std::string> row = {std::to_string(n)};
    for (const auto& name : names) {
      const net::HostId h = topo.find(name);
      const double def = aggregate(
          topo, h, us_sw, net::KernelProfile::default_profile(), n);
      const double tuned = aggregate(
          topo, h, us_sw, net::KernelProfile::tuned_profile(), n);
      row.push_back(metrics::Table::num(def / tuned, 2));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nAll columns rise toward 1.00 as aggregated socket "
               "buffers cover the path BDP (paper Fig 13 shape).\n";
  return 0;
}
