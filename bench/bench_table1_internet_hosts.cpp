// Table 1: the Internet vantage points, with measured bandwidth from the
// saturating many-to-one UDP iPerf methodology (§6.1).
#include <iostream>

#include "bench_util.h"
#include "net/iperf.h"
#include "net/units.h"

using namespace flashflow;

int main() {
  bench::header("Table 1 - Internet experiment hosts",
                "BW (measured): 954 / 946 / 941 / 1076 / 1611 Mbit/s");

  const auto topo = net::make_table1_hosts();
  net::IperfRunner iperf(topo, 20210610);

  metrics::Table table({"host", "virtual", "type", "cores",
                        "BW measured (Mbit/s)", "paper", "RTT to US-SW"});
  const std::vector<std::string> paper = {"954", "946", "941", "1076",
                                          "1611"};
  const net::HostId us_sw = topo.find("US-SW");
  for (std::size_t i = 0; i < net::table1_host_names().size(); ++i) {
    const auto& name = net::table1_host_names()[i];
    const net::HostId h = topo.find(name);
    const auto report = iperf.run_saturate_udp(h, 60);
    const auto& host = topo.host(h);
    table.add_row(
        {name, host.virtual_host ? "Yes" : "No",
         host.datacenter ? "D.C." : "Res.", std::to_string(host.cpu_cores),
         metrics::Table::num(net::to_mbit(report.median_bits()), 0), paper[i],
         h == us_sw ? "0 ms"
                    : metrics::Table::num(topo.rtt(us_sw, h) * 1000, 0) +
                          " ms"});
  }
  table.print(std::cout);
  return 0;
}
