// Fig 9 (§7): client performance under TorFlow vs FlashFlow weights at
// 100% / 115% / 130% client load.
//
// Paper headlines at 100% load: median TTLB decreases 15% / 29% / 37% for
// 50 KiB / 1 MiB / 5 MiB; stdev decreases 55% / 61% / 41%; median timeout
// rate decreases 100% (TF rates 5/10/23% across loads); network throughput
// scales 15%/29% for FF vs 12%/18% for TF.
#include <iostream>

#include "bench_util.h"
#include "net/units.h"
#include "shadowsim/experiment.h"

using namespace flashflow;

int main() {
  bench::header("Figure 9 - load balancing performance (FF vs TF)",
                "median TTLB -15/-29/-37%; stdev -55/-61/-41%; timeouts "
                "-100%; better throughput scaling");

  const auto net = shadowsim::make_shadow_net({}, 20210617);
  const auto cmp = shadowsim::run_measurement_comparison(net, 20210618);

  const std::vector<double> loads = {1.0, 1.15, 1.30};
  const std::vector<std::string> load_names = {"100%", "115%", "130%"};

  struct RunResult {
    shadowsim::PerfResult perf;
  };
  std::vector<RunResult> ff_runs, tf_runs;
  for (const double load : loads) {
    shadowsim::PerfConfig config;
    config.load_scale = load;
    ff_runs.push_back(
        {shadowsim::run_performance(net, cmp.flashflow_file, config, 7)});
    tf_runs.push_back(
        {shadowsim::run_performance(net, cmp.torflow_file, config, 7)});
  }

  using trafficgen::TransferSize;
  for (std::size_t s = 0; s < 3; ++s) {
    const auto size = static_cast<TransferSize>(s);
    metrics::Table table({"load", "TF median (s)", "FF median (s)",
                          "median change", "TF stdev", "FF stdev",
                          "stdev change"});
    for (std::size_t l = 0; l < loads.size(); ++l) {
      const auto tf = tf_runs[l].perf.bench.ttlb_for(size);
      const auto ff = ff_runs[l].perf.bench.ttlb_for(size);
      if (tf.empty() || ff.empty()) continue;
      const double tf_med = metrics::median(metrics::as_span(tf));
      const double ff_med = metrics::median(metrics::as_span(ff));
      const double tf_sd = metrics::stdev(metrics::as_span(tf));
      const double ff_sd = metrics::stdev(metrics::as_span(ff));
      table.add_row({load_names[l], metrics::Table::num(tf_med),
                     metrics::Table::num(ff_med),
                     metrics::Table::pct(ff_med / tf_med - 1.0),
                     metrics::Table::num(tf_sd), metrics::Table::num(ff_sd),
                     metrics::Table::pct(tf_sd > 0 ? ff_sd / tf_sd - 1.0
                                                   : 0.0)});
    }
    std::cout << "\nTTLB " << trafficgen::kTransferNames[s]
              << " (paper medians at 100%: -15%/-29%/-37% by size):\n";
    table.print(std::cout);
  }

  std::cout << "\nTransfer error (timeout) rates (paper: TF 5/10/23%, FF "
               "0%):\n";
  metrics::Table err({"load", "TorFlow", "FlashFlow"});
  for (std::size_t l = 0; l < loads.size(); ++l)
    err.add_row({load_names[l],
                 metrics::Table::pct(tf_runs[l].perf.bench.error_rate()),
                 metrics::Table::pct(ff_runs[l].perf.bench.error_rate())});
  err.print(std::cout);

  std::cout << "\nMedian network throughput (Gbit/s; paper: FF scales "
               "+15%/+29%, TF +12%/+18%):\n";
  metrics::Table thr({"load", "TorFlow", "FlashFlow", "FF scaling",
                      "TF scaling"});
  const double ff_base = metrics::median(
      metrics::as_span(ff_runs[0].perf.throughput_series_bits));
  const double tf_base = metrics::median(
      metrics::as_span(tf_runs[0].perf.throughput_series_bits));
  for (std::size_t l = 0; l < loads.size(); ++l) {
    const double ff_med = metrics::median(
        metrics::as_span(ff_runs[l].perf.throughput_series_bits));
    const double tf_med = metrics::median(
        metrics::as_span(tf_runs[l].perf.throughput_series_bits));
    thr.add_row({load_names[l],
                 metrics::Table::num(net::to_gbit(tf_med), 2),
                 metrics::Table::num(net::to_gbit(ff_med), 2),
                 metrics::Table::pct(ff_med / ff_base - 1.0),
                 metrics::Table::pct(tf_med / tf_base - 1.0)});
  }
  thr.print(std::cout);

  // TTFB across all transfers (Fig 9a leftmost panel).
  std::cout << "\nTTFB all transfers:\n";
  metrics::Table ttfb({"load", "TF median (s)", "FF median (s)"});
  for (std::size_t l = 0; l < loads.size(); ++l) {
    const auto tf = tf_runs[l].perf.bench.ttfb_all();
    const auto ff = ff_runs[l].perf.bench.ttfb_all();
    ttfb.add_row({load_names[l],
                  metrics::Table::num(metrics::median(metrics::as_span(tf))),
                  metrics::Table::num(
                      metrics::median(metrics::as_span(ff)))});
  }
  ttfb.print(std::cout);
  return 0;
}
