// Fig 5 (§3.4): the live relay speed-test experiment.
//
// Paper: flooding every relay for 20 s over 51 hours raised the estimated
// network capacity by ~200 Gbit/s (~50%), and network weight error rose by
// 5-10 percentage points (to a max of 23%) before recovering.
//
// The experiment is the checked-in scenarios/fig05.yaml scenario file
// (`--scenario FILE` substitutes another), run through
// scenario::run_speed_test — the speedtest.* window keys carry the
// §3.4 warmup/flood/cooldown timing.
#include <iostream>

#include "bench_util.h"
#include "net/units.h"
#include "scenario/scenario.h"
#include "scenario/serialize.h"

using namespace flashflow;

int main(int argc, char** argv) {
  const std::string path = bench::take_scenario_flag(
      argc, argv, scenario::default_scenario_dir() + "/fig05.yaml");
  scenario::ScenarioSpec spec = scenario::load_scenario_file(path);
  // The archive experiment is single-threaded; no --threads flag. The
  // file's seed is the default; --seed overrides.
  const auto cli = bench::parse_cli(argc, argv, /*default_seed=*/spec.seed,
                                    /*default_threads=*/1,
                                    /*accepts_threads=*/false);
  spec.seed = cli.seed;
  bench::header("Figure 5 - relay speed test experiment (§3.4)",
                "network capacity estimate +~50% during test; weight error "
                "+5-10 points, then recovery");

  const auto result = scenario::run_speed_test(spec);

  const double rise = result.peak_capacity_bits /
                          result.baseline_capacity_bits -
                      1.0;
  const double err_rise =
      result.peak_weight_error - result.baseline_weight_error;

  metrics::Table table({"quantity", "ours", "paper"});
  table.add_row({"baseline capacity (Gbit/s, 5% scale)",
                 metrics::Table::num(
                     net::to_gbit(result.baseline_capacity_bits), 2),
                 "~20 (400 full-scale)"});
  table.add_row({"peak capacity (Gbit/s, 5% scale)",
                 metrics::Table::num(
                     net::to_gbit(result.peak_capacity_bits), 2),
                 "~30 (600 full-scale)"});
  table.add_row({"capacity rise", metrics::Table::pct(rise), "~50%"});
  table.add_row({"baseline weight error",
                 metrics::Table::pct(result.baseline_weight_error),
                 "~13-15%"});
  table.add_row({"peak weight error",
                 metrics::Table::pct(result.peak_weight_error),
                 "up to 23%"});
  table.add_row({"weight error rise (points)",
                 metrics::Table::num(err_rise * 100, 1), "5-10"});
  table.print(std::cout);

  // Hourly capacity series around the test window (every 6 hours).
  std::cout << "\nCapacity series (Gbit/s at 5% scale; test at hour "
            << result.test_start_hour << "-" << result.test_end_hour
            << "):\n";
  for (std::size_t h = 0; h < result.capacity_series_bits.size(); h += 6) {
    if (static_cast<std::int64_t>(h) <
        result.test_start_hour - 72)
      continue;
    std::cout << "  h" << h << ": "
              << metrics::Table::num(
                     net::to_gbit(result.capacity_series_bits[h]), 2)
              << "  NWE="
              << metrics::Table::pct(result.weight_error_series[h])
              << (static_cast<std::int64_t>(h) >= result.test_start_hour &&
                          static_cast<std::int64_t>(h) <
                              result.test_end_hour
                      ? "   <- speed test active"
                      : "")
              << "\n";
  }
  return 0;
}
