// Campaign-scale throughput benchmark: how fast does the measurement
// engine chew through a full-network population on this machine?
//
// Runs the §7-style synthetic population (lognormal capacity mixture,
// 3 x 1 Gbit/s measurers, greedy packing) at ~500 / 2,000 / 6,419 relays
// through the streaming campaign engine and reports, per size:
//
//   slots/sec                 executed slots per wall-clock second,
//   sim-seconds/wall-second   simulated measurement time per wall second,
//   peak RSS                  ru_maxrss after the run (process-wide, so it
//                             is monotone across the sizes of one invocation).
//
// --thread-sweep 1,2,4,8 repeats every size at each worker-thread count
// and reports scaling efficiency (speedup over the sweep's own 1-thread
// run); that is the number the sharded dispatch tentpole is judged by.
//
// Results append the perf trajectory in BENCH_campaign.json (see README
// "Performance"); CI runs the small size as a smoke test (with a 1,2
// sweep) and uploads the JSON as an artifact.
//
// This is a throughput harness, not a figure reproduction: the sink only
// counts slots, record_outcomes stays off, and the population/seed are
// fixed so numbers compare across commits run on the same machine.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "bench_util.h"
#include "campaign/campaign.h"
#include "net/units.h"
#include "scenario/scenario.h"
#include "telemetry/perf_counters.h"
#include "telemetry/telemetry.h"

using namespace flashflow;

namespace {

/// Resident-set high-water mark in MiB (0 where unsupported).
double peak_rss_mib() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KiB
#endif
#else
  return 0.0;
#endif
}

/// Slot counter with no aggregation: the sink must not show up in the
/// profile, the campaign engine should.
struct CountingSink : campaign::SlotSink {
  int slots = 0;
  std::size_t relays = 0;
  void slot_done(const campaign::SlotResult& slot) override {
    ++slots;
    relays += slot.estimates.size();
  }
};

struct SizeResult {
  int relays = 0;
  int threads = 1;
  bool tiered = false;
  /// A telemetry::Recorder was attached for this run (overhead probing;
  /// the engine output is byte-identical either way).
  bool telemetry = false;
  campaign::RunStats stats;
  double slots_per_second = 0.0;
  double sim_per_wall = 0.0;
  double rss_mib = 0.0;
  /// slots/sec over the same invocation's 1-thread run of this size;
  /// 0 when the sweep has no 1-thread baseline.
  double speedup_vs_1t = 0.0;
  /// Hardware counters over the run (--perf-counters); invalid (all zero)
  /// when not requested or when perf_event_open is denied.
  telemetry::PerfSampler::Sample perf;
};

SizeResult run_size_once(int relays, std::uint64_t seed, int threads,
                         bool tiered, bool perf, bool telemetry_on) {
  // July-2019-like capacity mixture (bench_sec7): largest 998 Mbit/s,
  // whole-network total ~608 Gbit/s at 6,419 relays.
  analysis::PopulationParams pop;
  pop.lognormal_mu = 17.42;
  pop.lognormal_sigma = 1.45;
  pop.max_capacity_bits = 998e6;
  // --path-model tiered swaps the dense n x n flat mesh for the implicit
  // 1-tier model (same 0.05 s / loss constants, so per-pair values are
  // identical); it is what makes the 50k-relay row fit in memory.
  scenario::ScenarioBuilder builder("campaign-scale");
  builder.synthetic(pop, relays)
      .measurer_capacities({net::gbit(1), net::gbit(1), net::gbit(1)})
      .threads(threads)
      .seed(seed);
  if (tiered) builder.tiered_topology();
  scenario::Scenario scenario(builder.build());

  // The recorder exists only to measure instrumentation overhead: with
  // telemetry on the engine takes the guarded branches, with it off the
  // pre-telemetry instruction stream — results are identical either way.
  telemetry::Recorder recorder;
  if (telemetry_on) scenario.set_telemetry(&recorder);

  CountingSink sink;
  SizeResult result;
  result.relays = relays;
  result.threads = threads;
  result.tiered = tiered;
  result.telemetry = telemetry_on;
  std::optional<telemetry::PerfSampler> sampler;
  if (perf) sampler.emplace();
  if (sampler) sampler->start();
  result.stats = scenario.run(sink);
  if (sampler) {
    sampler->stop();
    result.perf = sampler->read();
  }
  if (result.stats.wall_seconds > 0.0) {
    result.slots_per_second =
        static_cast<double>(result.stats.slots_executed) /
        result.stats.wall_seconds;
    result.sim_per_wall =
        result.stats.simulated_seconds / result.stats.wall_seconds;
  }
  result.rss_mib = peak_rss_mib();
  return result;
}

/// Best-of-N (highest slots/sec): individual runs are short enough that a
/// scheduler hiccup visibly dents one sample, and the fastest run is the
/// least-interfered measurement of the engine itself.
SizeResult run_size(int relays, std::uint64_t seed, int threads,
                    int repeats, bool tiered, bool perf, bool telemetry_on) {
  SizeResult best =
      run_size_once(relays, seed, threads, tiered, perf, telemetry_on);
  for (int rep = 1; rep < repeats; ++rep) {
    SizeResult next =
        run_size_once(relays, seed, threads, tiered, perf, telemetry_on);
    if (next.slots_per_second > best.slots_per_second) best = next;
  }
  return best;
}

void write_json(const std::string& path, std::uint64_t seed,
                const std::vector<int>& thread_counts, int repeats,
                const std::vector<SizeResult>& results) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench_campaign_scale: cannot write " << path << "\n";
    std::exit(1);
  }
  out.precision(6);
  out << "{\n"
      << "  \"bench\": \"bench_campaign_scale\",\n"
      << "  \"schema\": 4,\n"
      << "  \"seed\": " << seed << ",\n"
      << "  \"thread_counts\": [";
  for (std::size_t i = 0; i < thread_counts.size(); ++i)
    out << thread_counts[i] << (i + 1 < thread_counts.size() ? ", " : "");
  out << "],\n"
      << "  \"repeats\": " << repeats << ",\n"
      << "  \"runs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    out << "    {\"relays\": " << r.relays << ", \"threads\": " << r.threads
        << ", \"path_model\": \"" << (r.tiered ? "tiered" : "dense") << "\""
        << ", \"slots_in_period\": " << r.stats.slots_in_period
        << ", \"slots_executed\": " << r.stats.slots_executed
        << ", \"wall_seconds\": " << r.stats.wall_seconds
        << ", \"slots_per_second\": " << r.slots_per_second
        << ", \"speedup_vs_1t\": " << r.speedup_vs_1t
        << ", \"simulated_seconds\": " << r.stats.simulated_seconds
        << ", \"sim_seconds_per_wall_second\": " << r.sim_per_wall
        << ", \"peak_rss_mib\": " << r.rss_mib
        << ", \"telemetry\": " << (r.telemetry ? "true" : "false");
    // Schema 4: per-slot hardware-counter rates. All zero when
    // --perf-counters was absent or perf_event_open was denied (the
    // sampler degrades to an inert no-op; see telemetry/perf_counters.h).
    const double slots = r.stats.slots_executed > 0
                             ? static_cast<double>(r.stats.slots_executed)
                             : 1.0;
    out << ", \"instructions_per_slot\": "
        << (r.perf.valid ? static_cast<double>(r.perf.instructions) / slots
                         : 0.0)
        << ", \"cycles_per_slot\": "
        << (r.perf.valid ? static_cast<double>(r.perf.cycles) / slots : 0.0)
        << ", \"cache_misses_per_slot\": "
        << (r.perf.valid ? static_cast<double>(r.perf.cache_misses) / slots
                         : 0.0)
        << ", \"ipc\": " << r.perf.ipc() << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

/// Parses "1,2,4" into thread counts; exits on junk (including trailing
/// garbage inside a token — "2x4" is a typo, not a 2).
std::vector<int> parse_thread_list(const char* arg, const char* flag) {
  std::vector<int> counts;
  std::string list = arg;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const std::size_t comma = std::min(list.find(',', pos), list.size());
    const std::string token = list.substr(pos, comma - pos);
    char* end = nullptr;
    const long n = std::strtol(token.c_str(), &end, 10);
    if (token.empty() || *end != '\0' || n <= 0 || n > 256) {
      std::cerr << "bench_campaign_scale: " << flag
                << " needs comma-separated thread counts in [1, 256], got '"
                << arg << "'\n";
      std::exit(2);
    }
    counts.push_back(static_cast<int>(n));
    pos = comma + 1;
  }
  return counts;
}

/// Worker threads the engine will actually use for a <= 0 flag value
/// (mirrors campaign::ThreadPool's hardware-concurrency fallback), so the
/// recorded JSON rows carry comparable real counts, never a raw 0.
int resolved_threads(int threads) {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Bench-specific flags are peeled off before the shared parse_cli pass
  // (which owns --seed/--threads and rejects anything it does not know).
  std::vector<int> sizes = {500, 2000, 6419};
  std::string out_path = "BENCH_campaign.json";
  int repeats = 3;
  bool tiered = false;
  bool perf = false;
  bool telemetry_on = false;
  std::vector<int> sweep;  // empty: single thread count from --threads
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> const char* {
      const std::string name = flag;
      if (arg == name) {
        if (i + 1 >= argc) {
          std::cerr << argv[0] << ": " << name << " needs a value\n";
          std::exit(2);
        }
        return argv[++i];
      }
      if (arg.rfind(name + "=", 0) == 0) return argv[i] + name.size() + 1;
      return nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0]
                << " [--seed N] [--threads N] [--thread-sweep LIST]"
                   " [--relays N] [--path-model dense|tiered]"
                   " [--repeat N] [--out FILE]\n"
                   "       [--perf-counters] [--telemetry]\n"
                   "  --seed         population/campaign seed (default "
                   "20210613)\n"
                   "  --threads      campaign worker threads, 0 = all cores "
                   "(default 1)\n"
                   "  --thread-sweep comma-separated thread counts (e.g. "
                   "1,2,4,8); runs every\n"
                   "                 size at each count and reports speedup "
                   "over the sweep's\n"
                   "                 1-thread run (overrides --threads)\n"
                   "  --relays       run a single population size instead "
                   "of 500/2000/6419\n"
                   "  --path-model   topology path model: dense (n x n "
                   "matrices, default) or\n"
                   "                 tiered (implicit O(N) model; same "
                   "per-pair values for the\n"
                   "                 flat mesh, required for the 50k-relay "
                   "row)\n"
                   "  --repeat       samples per size, best kept (default "
                   "3)\n"
                   "  --out          JSON output path (default "
                   "BENCH_campaign.json)\n"
                   "  --perf-counters sample hardware counters per run "
                   "(instructions,\n"
                   "                 cycles, cache misses via "
                   "perf_event_open; columns are 0\n"
                   "                 when the kernel denies access)\n"
                   "  --telemetry    attach an engine telemetry recorder "
                   "during runs\n"
                   "                 (measures instrumentation overhead; "
                   "results are\n"
                   "                 byte-identical either way)\n";
      return 0;
    } else if (arg == "--perf-counters") {
      perf = true;
    } else if (arg == "--telemetry") {
      telemetry_on = true;
    } else if (const char* vs = value("--thread-sweep")) {
      sweep = parse_thread_list(vs, "--thread-sweep");
    } else if (const char* vr = value("--repeat")) {
      // Strict parse (bench::parse_int_flag): atoi would run "1O0" as 1
      // and could not tell 0 from garbage.
      repeats = static_cast<int>(
          bench::parse_int_flag(vr, 1, 100, "--repeat", argv[0]));
    } else if (const char* v = value("--relays")) {
      sizes = {static_cast<int>(
          bench::parse_int_flag(v, 1, 1000000, "--relays", argv[0]))};
    } else if (const char* vp = value("--path-model")) {
      const std::string model = vp;
      if (model == "dense") {
        tiered = false;
      } else if (model == "tiered") {
        tiered = true;
      } else {
        std::cerr << argv[0]
                  << ": --path-model needs dense or tiered, got '" << model
                  << "'\n";
        std::exit(2);
      }
    } else if (const char* v2 = value("--out")) {
      out_path = v2;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  const auto cli =
      bench::parse_cli(static_cast<int>(passthrough.size()),
                       passthrough.data(), /*default_seed=*/20210613,
                       /*default_threads=*/1);

  bench::header("Campaign-scale throughput",
                "engine throughput trajectory: slots/sec, simulated seconds "
                "per wall second, and thread scaling at full-network scale");

  const std::vector<int> thread_counts =
      sweep.empty() ? std::vector<int>{resolved_threads(cli.threads)} : sweep;

  std::vector<SizeResult> results;
  for (const int relays : sizes) {
    const std::size_t size_begin = results.size();
    for (const int threads : thread_counts) {
      const auto r = run_size(relays, cli.seed, threads, repeats, tiered,
                              perf, telemetry_on);
      results.push_back(r);
      std::cout << "  " << r.relays << " relays @ " << r.threads
                << " threads: " << metrics::Table::num(r.slots_per_second, 1)
                << " slots/sec (" << r.stats.slots_executed << " slots in "
                << metrics::Table::num(r.stats.wall_seconds, 2) << " s)\n";
    }
    // Scaling efficiency once the whole size is in, so a sweep that lists
    // 1 anywhere (not just first) yields a baseline for every row.
    double one_thread_slots_per_sec = 0.0;
    for (std::size_t i = size_begin; i < results.size(); ++i)
      if (results[i].threads == 1)
        one_thread_slots_per_sec = results[i].slots_per_second;
    if (one_thread_slots_per_sec > 0.0)
      for (std::size_t i = size_begin; i < results.size(); ++i)
        results[i].speedup_vs_1t =
            results[i].slots_per_second / one_thread_slots_per_sec;
  }

  metrics::Table table({"relays", "threads", "slots", "wall (s)", "slots/sec",
                        "speedup", "sim-s/wall-s", "peak RSS (MiB)"});
  for (const auto& r : results) {
    table.add_row({std::to_string(r.relays), std::to_string(r.threads),
                   std::to_string(r.stats.slots_executed),
                   metrics::Table::num(r.stats.wall_seconds, 2),
                   metrics::Table::num(r.slots_per_second, 1),
                   r.speedup_vs_1t > 0.0
                       ? metrics::Table::num(r.speedup_vs_1t, 2) + "x"
                       : "-",
                   metrics::Table::num(r.sim_per_wall, 0),
                   metrics::Table::num(r.rss_mib, 0)});
  }
  std::cout << "\n";
  table.print(std::cout);

  write_json(out_path, cli.seed, thread_counts, repeats, results);
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}
