#include "peerflow/peerflow.h"

#include <gtest/gtest.h>

#include "net/units.h"

namespace flashflow::peerflow {
namespace {

std::vector<PeerFlowRelay> make_network(int n, int trusted, int malicious,
                                        std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<PeerFlowRelay> relays;
  for (int i = 0; i < n; ++i) {
    PeerFlowRelay r;
    r.fingerprint = "r";
    r.fingerprint += std::to_string(i);
    r.true_capacity_bits = rng.uniform(net::mbit(20), net::mbit(200));
    r.utilization = rng.uniform(0.3, 0.7);
    r.trusted = i < trusted;
    r.malicious = i >= n - malicious;
    relays.push_back(std::move(r));
  }
  return relays;
}

TEST(PeerFlow, HonestTrafficSymmetricAndPositive) {
  const auto relays = make_network(20, 4, 0, 1);
  sim::Rng rng(2);
  const auto traffic = honest_traffic(relays, 3600.0, rng);
  ASSERT_EQ(traffic.n, relays.size());
  for (std::size_t i = 0; i < traffic.n; ++i) {
    EXPECT_DOUBLE_EQ(traffic.at(i, i), 0.0);
    for (std::size_t j = 0; j < traffic.n; ++j)
      if (i != j) {
        EXPECT_GT(traffic.at(i, j), 0.0);
      }
  }
}

TEST(PeerFlow, HonestWeightsTrackUtilizedCapacity) {
  auto relays = make_network(30, 6, 0, 3);
  // Make one relay dramatically larger.
  relays[10].true_capacity_bits = net::mbit(800);
  relays[10].utilization = 0.6;
  sim::Rng rng(4);
  const auto traffic = honest_traffic(relays, 3600.0, rng);
  const auto weights = compute_weights(traffic, relays, {});
  double max_w = 0;
  std::size_t max_i = 0;
  for (std::size_t i = 0; i < weights.size(); ++i)
    if (weights[i] > max_w) {
      max_w = weights[i];
      max_i = i;
    }
  EXPECT_EQ(max_i, 10u);
}

TEST(PeerFlow, InflationAdvantageNearTwoOverTau) {
  // The malicious strategy yields at most ~2/tau (§8, Table 2: 10x at
  // tau=0.2).
  const auto relays = make_network(50, 10, 2, 5);
  PeerFlowParams params;  // tau = 0.2
  const double advantage = inflation_advantage(relays, params, 6);
  EXPECT_GT(advantage, 3.0);
  EXPECT_LT(advantage, 2.0 / params.trusted_weight_fraction * 1.3);
}

TEST(PeerFlow, SmallerTauMoreAdvantage) {
  // A smaller trusted set (tau) means honest relays get less of their
  // traffic witnessed, so redirecting everything at the trusted relays
  // pays off more (the 2/tau bound).
  const auto many_trusted = make_network(50, 20, 2, 7);
  PeerFlowParams tight;
  tight.trusted_weight_fraction = 0.4;
  const auto few_trusted = make_network(50, 5, 2, 7);
  PeerFlowParams loose;
  loose.trusted_weight_fraction = 0.1;
  EXPECT_GT(inflation_advantage(few_trusted, loose, 8),
            inflation_advantage(many_trusted, tight, 8));
}

TEST(PeerFlow, GrowthCapLimitsPeriodJump) {
  PeerFlowParams params;  // 4.5x
  const std::vector<double> old_w = {10.0, 10.0};
  const std::vector<double> new_w = {100.0, 20.0};
  const auto capped = apply_growth_cap(new_w, old_w, params);
  EXPECT_DOUBLE_EQ(capped[0], 45.0);  // clipped
  EXPECT_DOUBLE_EQ(capped[1], 20.0);  // within bound
}

TEST(PeerFlow, GrowthCapSkipsNewRelays) {
  PeerFlowParams params;
  const std::vector<double> old_w = {0.0};
  const std::vector<double> new_w = {100.0};
  EXPECT_DOUBLE_EQ(apply_growth_cap(new_w, old_w, params)[0], 100.0);
}

TEST(PeerFlow, BandwidthFileHasCapacities) {
  const auto relays = make_network(5, 1, 0, 9);
  const std::vector<double> weights = {1, 2, 3, 4, 5};
  const auto file = to_bandwidth_file(relays, weights);
  ASSERT_EQ(file.size(), 5u);
  // Table 2: PeerFlow yields inferable capacity values.
  EXPECT_DOUBLE_EQ(file[2].capacity_bits, 3.0);
}

TEST(PeerFlow, SizeMismatchesThrow) {
  const auto relays = make_network(5, 1, 0, 10);
  const std::vector<double> wrong = {1.0};
  EXPECT_THROW(to_bandwidth_file(relays, wrong), std::invalid_argument);
  EXPECT_THROW(apply_growth_cap(wrong, {}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace flashflow::peerflow
