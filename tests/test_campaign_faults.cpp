// Campaign-level fault injection: deterministic faulted output, retry and
// quarantine accounting, graceful degradation of the error distribution,
// and cancellation invariants with retry rounds in flight.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/sink.h"
#include "net/topology.h"
#include "net/units.h"
#include "tor/cpu_model.h"

namespace flashflow::campaign {
namespace {

CampaignRelay make_relay(const net::Topology& topo, double limit_mbit) {
  CampaignRelay r;
  r.model.name = "relay-" + std::to_string(static_cast<int>(limit_mbit));
  r.model.nic_up_bits = r.model.nic_down_bits = net::mbit(954);
  r.model.rate_limit_bits = net::mbit(limit_mbit);
  r.model.cpu = tor::CpuModel::us_sw();
  r.host = topo.find("US-SW");
  return r;
}

CampaignConfig lab_config(const net::Topology& topo) {
  CampaignConfig config;
  config.measurer_hosts = {topo.find("US-E"), topo.find("NL")};
  config.measurer_capacity_bits = {net::mbit(900), net::mbit(900)};
  config.seed = 20210613;
  return config;
}

std::vector<CampaignRelay> small_population(const net::Topology& topo) {
  std::vector<CampaignRelay> relays;
  for (const double limit : {10, 25, 50, 75, 100, 150, 200, 250, 40, 120})
    relays.push_back(make_relay(topo, limit));
  return relays;
}

fault::FaultSpec all_channels(double rate) {
  fault::FaultSpec faults;
  faults.measurer_crash = rate;
  faults.relay_disconnect = rate;
  faults.report_drop = rate;
  faults.report_truncate = rate;
  faults.slot_timeout = rate / 2;
  return faults;
}

// The acceptance bar of the fault layer: with faults armed, the streamed
// bytes — retry rounds, fault columns and all — are identical for every
// (threads, shard) combination.
TEST(CampaignFaults, FaultedBytesIdenticalAcrossThreadsAndShards) {
  const auto topo = net::make_table1_hosts();
  const auto relays = small_population(topo);

  const auto stream_csv = [&](int threads, int shard) {
    auto config = lab_config(topo);
    config.threads = threads;
    config.shard_slots = shard;
    config.faults = all_channels(0.3);
    std::ostringstream out;
    CsvSink sink(out);
    CampaignRunner(topo, config).run(relays, sink);
    return out.str();
  };

  const std::string baseline = stream_csv(/*threads=*/1, /*shard=*/1);
  for (const int threads : {1, 2, 8})
    for (const int shard : {1, 5})
      EXPECT_EQ(baseline, stream_csv(threads, shard))
          << "threads=" << threads << " shard=" << shard;
}

// Fault columns appear in serialized output only when faults are armed:
// a fault-free run's byte stream is identical to a pre-fault build's.
TEST(CampaignFaults, FaultColumnsGatedOnFaultsEnabled) {
  const auto topo = net::make_table1_hosts();
  const auto relays = small_population(topo);

  const auto stream_csv = [&](const fault::FaultSpec& faults) {
    auto config = lab_config(topo);
    config.faults = faults;
    std::ostringstream out;
    CsvSink sink(out);
    CampaignRunner(topo, config).run(relays, sink);
    return out.str();
  };

  const std::string clean = stream_csv(fault::FaultSpec{});
  EXPECT_EQ(clean.find("quality"), std::string::npos);
  EXPECT_EQ(clean.find("quarantined"), std::string::npos);

  const std::string faulted = stream_csv(all_channels(0.3));
  EXPECT_NE(faulted.find(",quality,attempt,slot_failed,quarantined"),
            std::string::npos);
}

// §4.2-style graceful degradation: as fault rates rise the error
// distribution of the surviving estimates worsens smoothly — no cliff
// where a small rate wrecks every estimate.
TEST(CampaignFaults, ErrorDegradesSmoothlyWithFaultRate) {
  const auto topo = net::make_table1_hosts();
  const auto relays = small_population(topo);

  const auto median_error = [&](double rate) {
    auto config = lab_config(topo);
    config.faults = all_channels(rate);
    config.faults.slot_timeout = 0.0;  // isolate degradation from loss
    const auto result = CampaignRunner(topo, config).run(relays);
    return result.summary.median_abs_relative_error;
  };

  const double e0 = median_error(0.0);
  const double e1 = median_error(0.1);
  const double e2 = median_error(0.3);
  // Fault-free baseline is tight (Appendix E.5 error model).
  EXPECT_LT(e0, 0.10);
  // Each step in fault rate moves the median by a bounded amount, and
  // even the heavily faulted run keeps the median within the paper's
  // useful range — degraded evidence is rescaled, not discarded.
  EXPECT_LT(e1, e0 + 0.10);
  EXPECT_LT(e2, e0 + 0.20);
}

TEST(CampaignFaults, RetryAndQuarantineAccountingIsConsistent) {
  const auto topo = net::make_table1_hosts();
  const auto relays = small_population(topo);

  auto config = lab_config(topo);
  config.faults = all_channels(0.0);
  config.faults.slot_timeout = 0.6;  // many first attempts fail
  config.faults.max_retries = 2;

  AggregatingSink aggregate;
  const auto stats = CampaignRunner(topo, config).run(relays, aggregate);
  const auto result = std::move(aggregate).result(stats);

  // Everything scheduled was executed (no cancellation), and the retry
  // rounds added executed slots beyond the scheduler's layout.
  EXPECT_FALSE(stats.cancelled);
  EXPECT_EQ(stats.slots_skipped, 0);
  EXPECT_GT(stats.slots_failed, 0);
  EXPECT_GT(stats.slots_retried, 0);
  EXPECT_GT(stats.slots_executed, stats.slots_retried);

  int retried = 0;
  int failed = 0;
  int quarantined = 0;
  for (const auto& est : result.relays) {
    retried += est.attempt > 0;
    failed += est.slot_failed;
    quarantined += est.quarantined;
    // Quarantine only after the retry budget is spent.
    if (est.quarantined) {
      EXPECT_TRUE(est.slot_failed);
      EXPECT_EQ(est.attempt, config.faults.max_retries);
    }
    // A successful estimate is never marked failed.
    if (est.estimate_bits > 0.0) {
      EXPECT_FALSE(est.slot_failed);
    }
  }
  EXPECT_GT(retried, 0);
  EXPECT_EQ(result.summary.relays_retried, retried);
  EXPECT_EQ(result.summary.relays_failed, failed);
  EXPECT_EQ(result.summary.relays_quarantined, quarantined);
  EXPECT_LE(result.summary.relays_quarantined, result.summary.relays_failed);
}

// With no retry budget, every failure is final: failed == quarantined and
// the failed relays report no estimate.
TEST(CampaignFaults, ZeroRetryBudgetQuarantinesImmediately) {
  const auto topo = net::make_table1_hosts();
  const auto relays = small_population(topo);

  auto config = lab_config(topo);
  config.faults.slot_timeout = 0.6;
  config.faults.max_retries = 0;
  const auto result = CampaignRunner(topo, config).run(relays);

  EXPECT_GT(result.summary.relays_failed, 0);
  EXPECT_EQ(result.summary.relays_quarantined, result.summary.relays_failed);
  EXPECT_EQ(result.summary.relays_retried, 0);
  for (const auto& est : result.relays) {
    if (est.quarantined) {
      EXPECT_EQ(est.attempt, 0);
      EXPECT_EQ(est.estimate_bits, 0.0);
    }
  }
}

TEST(CampaignFaults, DegradedRelaysCountedInSummary) {
  const auto topo = net::make_table1_hosts();
  const auto relays = small_population(topo);

  auto config = lab_config(topo);
  config.faults.report_truncate = 0.5;  // degrades evidence, rarely fails
  const auto result = CampaignRunner(topo, config).run(relays);

  int degraded = 0;
  for (const auto& est : result.relays)
    degraded += !est.slot_failed && !est.verification_failed &&
                est.quality < 1.0;
  EXPECT_GT(degraded, 0);
  EXPECT_EQ(result.summary.relays_degraded, degraded);
  // Degraded-but-usable estimates still track the truth reasonably.
  for (const auto& est : result.relays) {
    if (est.quality < 1.0 && !est.slot_failed) {
      EXPECT_GT(est.estimate_bits, 0.0);
    }
  }
}

// Deliveries are in increasing slot order within each retry round
// (SlotReorderBuffer accounting holds per round), and each relay's
// attempt numbers step by one across its deliveries.
TEST(CampaignFaults, DeliveryOrderedWithinEachRetryRound) {
  const auto topo = net::make_table1_hosts();
  const auto relays = small_population(topo);

  struct OrderSink : SlotSink {
    std::vector<std::pair<int, int>> deliveries;  // (attempt, slot)
    void slot_done(const SlotResult& slot) override {
      ASSERT_FALSE(slot.estimates.empty());
      // All estimates in one delivery share the slot's retry round.
      for (const auto& est : slot.estimates)
        ASSERT_EQ(est.attempt, slot.estimates.front().attempt);
      deliveries.emplace_back(slot.estimates.front().attempt, slot.slot);
    }
  } sink;

  auto config = lab_config(topo);
  config.threads = 4;
  config.faults.slot_timeout = 0.6;
  config.faults.max_retries = 3;
  CampaignRunner(topo, config).run(relays, sink);

  int max_attempt = 0;
  int last_attempt = 0;
  int last_slot = -1;
  for (const auto& [attempt, slot] : sink.deliveries) {
    // Rounds are delivered one after the other, slots increasing within
    // each round.
    ASSERT_GE(attempt, last_attempt);
    if (attempt > last_attempt) last_slot = -1;
    EXPECT_GT(slot, last_slot);
    last_attempt = attempt;
    last_slot = slot;
    max_attempt = std::max(max_attempt, attempt);
  }
  EXPECT_GT(max_attempt, 0);  // retries actually happened
  EXPECT_LE(max_attempt, config.faults.max_retries);
}

// Cancellation invariants with faults armed, across thread and shard
// combinations: executed + skipped covers everything scheduled, no
// delivery after the cancel, and the partial aggregate stays coherent.
TEST(CampaignFaults, CancellationInvariantsAcrossThreadsAndShards) {
  const auto topo = net::make_table1_hosts();
  const auto relays = small_population(topo);

  for (const int threads : {1, 8}) {
    for (const int shard : {1, 4}) {
      AggregatingSink aggregate;
      int deliveries = 0;
      ProgressSink cancel_after_three(
          [&deliveries](int done, int total) {
            EXPECT_LE(done, total);
            deliveries = done;
            return done < 3;
          },
          &aggregate);

      auto config = lab_config(topo);
      config.threads = threads;
      config.shard_slots = shard;
      // Randomized layout: one relay per slot, so plenty of occupied
      // slots remain to be skipped after the third delivery.
      config.schedule = ScheduleMode::kRandomized;
      config.faults = all_channels(0.2);
      const auto stats =
          CampaignRunner(topo, config).run(relays, cancel_after_three);

      EXPECT_TRUE(stats.cancelled) << "threads=" << threads;
      EXPECT_EQ(stats.slots_executed, 3) << "threads=" << threads;
      EXPECT_EQ(stats.slots_executed, deliveries);
      EXPECT_GT(stats.slots_skipped, 0) << "threads=" << threads;

      const auto partial = std::move(aggregate).result(stats);
      EXPECT_LE(partial.summary.relays_measured,
                static_cast<int>(relays.size()));
      EXPECT_GT(partial.summary.relays_measured, 0);
    }
  }
}

// Cancelling *during a retry round* must uphold the same invariants: the
// sink stops being called, and retry slots that never ran count as
// skipped, not executed.
TEST(CampaignFaults, CancelDuringRetryRoundStopsCleanly) {
  const auto topo = net::make_table1_hosts();
  const auto relays = small_population(topo);

  struct CancelInRetrySink : SlotSink {
    int first_round_slots = 0;
    int deliveries = 0;
    int deliveries_after_cancel = 0;
    bool cancelled = false;
    void begin(const RunPlan& plan) override {
      first_round_slots = plan.slots_to_execute;
    }
    void slot_done(const SlotResult&) override {
      if (cancelled) ++deliveries_after_cancel;
      ++deliveries;
    }
    bool on_progress(int done, int) override {
      // Cancel on the first delivery past the first round, i.e. while a
      // retry round is in flight.
      if (done > first_round_slots) cancelled = true;
      return !cancelled;
    }
  };

  for (const int threads : {1, 8}) {
    CancelInRetrySink sink;
    auto config = lab_config(topo);
    config.threads = threads;
    config.faults = all_channels(0.0);
    config.faults.slot_timeout = 0.6;  // guarantees a retry round
    config.faults.max_retries = 3;
    const auto stats = CampaignRunner(topo, config).run(relays, sink);

    ASSERT_TRUE(sink.cancelled) << "threads=" << threads
                                << ": no retry round was entered";
    EXPECT_TRUE(stats.cancelled);
    EXPECT_EQ(sink.deliveries_after_cancel, 0);
    EXPECT_EQ(stats.slots_executed, sink.deliveries);
    EXPECT_EQ(stats.slots_executed, sink.first_round_slots + 1);
    EXPECT_GT(stats.slots_retried, 0);
  }
}

// An inert FaultSpec leaves results identical to a config without one —
// the fault layer is invisible until armed.
TEST(CampaignFaults, InertSpecChangesNothing) {
  const auto topo = net::make_table1_hosts();
  const auto relays = small_population(topo);

  const auto baseline = CampaignRunner(topo, lab_config(topo)).run(relays);

  auto config = lab_config(topo);
  config.faults.max_retries = 7;        // policy knobs alone don't arm it
  config.faults.min_usable_seconds = 3;
  const auto with_policy = CampaignRunner(topo, config).run(relays);

  EXPECT_TRUE(baseline == with_policy);
  EXPECT_EQ(baseline.summary.relays_failed, 0);
  EXPECT_EQ(baseline.summary.relays_retried, 0);
  EXPECT_EQ(baseline.summary.relays_quarantined, 0);
  EXPECT_EQ(baseline.summary.relays_degraded, 0);
}

}  // namespace
}  // namespace flashflow::campaign
