// Output-directory guard (util/out_dir.h): `flashflow run`/`sweep` refuse
// to write into a non-empty directory unless --force is passed, so a slow
// sweep cannot silently clobber last week's results.
#include "util/out_dir.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

namespace flashflow::util {
namespace {

namespace fs = std::filesystem;

class OutDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "ff_out_dir_test";
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(OutDirTest, MissingDirectoryPasses) {
  EXPECT_FALSE(dir_has_entries(dir_.string()));
  EXPECT_NO_THROW(require_empty_dir(dir_.string(), /*force=*/false));
}

TEST_F(OutDirTest, EmptyDirectoryPasses) {
  fs::create_directories(dir_);
  EXPECT_FALSE(dir_has_entries(dir_.string()));
  EXPECT_NO_THROW(require_empty_dir(dir_.string(), /*force=*/false));
}

TEST_F(OutDirTest, NonEmptyDirectoryThrowsWithoutForce) {
  fs::create_directories(dir_);
  std::ofstream(dir_ / "results.csv") << "period,relay,slot\n";
  EXPECT_TRUE(dir_has_entries(dir_.string()));
  try {
    require_empty_dir(dir_.string(), /*force=*/false);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    // The message names the directory and the way out.
    EXPECT_NE(what.find(dir_.string()), std::string::npos);
    EXPECT_NE(what.find("--force"), std::string::npos);
  }
}

TEST_F(OutDirTest, ForceOverridesNonEmptyDirectory) {
  fs::create_directories(dir_);
  std::ofstream(dir_ / "results.csv") << "stale\n";
  EXPECT_NO_THROW(require_empty_dir(dir_.string(), /*force=*/true));
}

TEST_F(OutDirTest, PathThatIsAFileThrowsEvenWithForce) {
  std::ofstream(dir_) << "not a directory\n";
  EXPECT_THROW(require_empty_dir(dir_.string(), /*force=*/false),
               std::invalid_argument);
  EXPECT_THROW(require_empty_dir(dir_.string(), /*force=*/true),
               std::invalid_argument);
}

}  // namespace
}  // namespace flashflow::util
