// Telemetry determinism suite (docs/determinism.md clause T1).
//
// The observability layer promises: attaching a Recorder (and the trace
// sink) never changes a result byte, the merged totals of every
// deterministic metric are identical across thread counts and shard
// sizes, and the per-slot trace's non-timing prefix is byte-identical
// too. The perf_event_open sampler must degrade to an inert no-op where
// the syscall is denied (most CI containers) instead of failing.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/sink.h"
#include "net/units.h"
#include "scenario/scenario.h"
#include "sim/random.h"
#include "telemetry/perf_counters.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "tor/cpu_model.h"

namespace flashflow {
namespace {

// Same pinned constants as tests/test_golden_determinism.cpp: a run with
// telemetry attached must reproduce the exact golden bytes.
constexpr std::uint64_t kCampaignCsvHash = 0xfa6d28d9b29064c3ULL;
constexpr std::uint64_t kScenarioCsvHash = 0x841c72e6038a41a5ULL;

std::vector<campaign::CampaignRelay> golden_relays(
    const net::Topology& topo) {
  std::vector<campaign::CampaignRelay> relays;
  for (const double limit : {10, 25, 50, 75, 100, 150, 200, 250, 40, 120}) {
    campaign::CampaignRelay r;
    r.model.name = "relay-" + std::to_string(static_cast<int>(limit));
    r.model.nic_up_bits = r.model.nic_down_bits = net::mbit(954);
    r.model.rate_limit_bits = net::mbit(limit);
    r.model.cpu = tor::CpuModel::us_sw();
    r.host = topo.find("US-SW");
    relays.push_back(std::move(r));
  }
  return relays;
}

campaign::CampaignConfig golden_config(const net::Topology& topo,
                                       int threads, int shard) {
  campaign::CampaignConfig config;
  config.measurer_hosts = {topo.find("US-E"), topo.find("NL")};
  config.measurer_capacity_bits = {net::mbit(900), net::mbit(900)};
  config.seed = 20210613;
  config.threads = threads;
  config.shard_slots = shard;
  return config;
}

/// Runs the golden campaign with a recorder (trace armed) attached and
/// returns the streamed CSV plus the merged telemetry snapshot.
std::pair<std::string, telemetry::Snapshot> run_with_recorder(int threads,
                                                             int shard) {
  const auto topo = net::make_table1_hosts();
  telemetry::Recorder recorder;
  recorder.enable_trace();
  campaign::CampaignConfig config = golden_config(topo, threads, shard);
  config.telemetry = &recorder;

  std::ostringstream out;
  campaign::CsvSink sink(out);
  campaign::CampaignRunner(topo, config).run(golden_relays(topo), sink);
  return {out.str(), recorder.snapshot()};
}

std::string run_trace(int threads, int shard) {
  const auto topo = net::make_table1_hosts();
  telemetry::Recorder recorder;
  recorder.enable_trace();
  campaign::CampaignConfig config = golden_config(topo, threads, shard);
  config.telemetry = &recorder;

  std::ostringstream out;
  telemetry::TraceJsonlSink sink(out);
  campaign::CampaignRunner(topo, config).run(golden_relays(topo), sink);
  return out.str();
}

/// The deterministic prefix of one trace line: everything before the
/// execution-dependent lane/shard/timing fields (the format contract in
/// telemetry/trace.h pins the field order).
std::string deterministic_prefix(const std::string& line) {
  const std::size_t cut = line.find(",\"lane\":");
  EXPECT_NE(cut, std::string::npos) << "trace line lost its lane field: "
                                    << line;
  return line.substr(0, cut);
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = std::min(text.find('\n', pos), text.size());
    lines.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

TEST(TelemetryUnit, HistogramBucketsAreBitWidths) {
  EXPECT_EQ(telemetry::histogram_bucket(0), 0u);
  EXPECT_EQ(telemetry::histogram_bucket(1), 1u);
  EXPECT_EQ(telemetry::histogram_bucket(2), 2u);
  EXPECT_EQ(telemetry::histogram_bucket(3), 2u);
  EXPECT_EQ(telemetry::histogram_bucket(4), 3u);
  EXPECT_EQ(telemetry::histogram_bucket((1u << 14) - 1), 14u);
  // Everything at or beyond 2^14 lands in the last bucket.
  EXPECT_EQ(telemetry::histogram_bucket(1u << 14),
            telemetry::kHistogramBuckets - 1);
  EXPECT_EQ(telemetry::histogram_bucket(~std::uint64_t{0}),
            telemetry::kHistogramBuckets - 1);
}

TEST(TelemetryUnit, RegistryInternIsIdempotent) {
  telemetry::Registry registry;
  const telemetry::MetricId a = registry.counter("campaign/slots");
  const telemetry::MetricId b = registry.counter("campaign/slots");
  EXPECT_EQ(a, b);
  EXPECT_NE(registry.counter("campaign/relays"), a);
  // Counters, gauges and histograms are separate namespaces.
  EXPECT_EQ(registry.gauge("campaign/slots"), 0u);
  EXPECT_EQ(registry.counter_names().size(), 2u);
}

TEST(TelemetryDeterminism, GoldenBytesUnchangedWithRecorderAttached) {
  // Clause T1, half one: telemetry observes the golden campaign without
  // moving a single byte — same pinned hash as the no-recorder suite.
  const std::string csv = run_with_recorder(/*threads=*/1, /*shard=*/0).first;
  EXPECT_EQ(sim::hash_tag(csv), kCampaignCsvHash)
      << "attaching a telemetry recorder changed the campaign bytes";
}

TEST(TelemetryDeterminism, GoldenScenarioBytesUnchangedWithRecorder) {
  // Same check through the scenario layer (Scenario::set_telemetry).
  analysis::PopulationParams pop;
  pop.lognormal_mu = 17.0;
  pop.lognormal_sigma = 1.2;
  pop.max_capacity_bits = 900e6;
  const scenario::ScenarioSpec spec =
      scenario::ScenarioBuilder("golden")
          .synthetic(pop, 40, /*prior_fraction=*/0.8)
          .measurer_capacities({net::mbit(800), net::mbit(800),
                                net::mbit(800)})
          .liars(0.10)
          .forgers(0.10)
          .background_utilization(0.2, 0.1)
          .schedule(campaign::ScheduleMode::kRandomized)
          .threads(1)
          .seed(20210613)
          .build();

  telemetry::Recorder recorder;
  scenario::Scenario scenario(spec);
  scenario.set_telemetry(&recorder);
  std::ostringstream out;
  campaign::CsvSink sink(out);
  scenario.run(sink);
  EXPECT_EQ(sim::hash_tag(out.str()), kScenarioCsvHash)
      << "attaching a telemetry recorder changed the scenario bytes";

  // The recorder actually observed the run.
  const telemetry::Snapshot snap = recorder.snapshot();
  std::uint64_t slots = 0, relays = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name == "campaign/slots") slots = value;
    if (name == "campaign/relays") relays = value;
  }
  EXPECT_GT(slots, 0u);
  EXPECT_EQ(relays, 40u);
}

TEST(TelemetryDeterminism, MergedTotalsIdenticalAcrossThreadsAndShards) {
  // Per-lane shards merge in lane-index order, so every deterministic
  // metric must agree exactly across the threads x shard matrix. Stage
  // timing histograms hold wall micros (machine-dependent buckets) but
  // their observation *counts* are deterministic.
  const auto [base_csv, base] = run_with_recorder(/*threads=*/1,
                                                 /*shard=*/1);
  const struct {
    int threads;
    int shard;
  } configs[] = {{1, 5}, {8, 1}, {8, 5}};

  for (const auto& config : configs) {
    const auto [csv, snap] = run_with_recorder(config.threads,
                                               config.shard);
    SCOPED_TRACE("threads=" + std::to_string(config.threads) +
                 " shard=" + std::to_string(config.shard));
    EXPECT_EQ(csv, base_csv);
    EXPECT_EQ(snap.counters, base.counters);
    EXPECT_EQ(snap.gauges, base.gauges);

    ASSERT_EQ(snap.histograms.size(), base.histograms.size());
    for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
      const auto& [name, hist] = snap.histograms[i];
      const auto& [base_name, base_hist] = base.histograms[i];
      ASSERT_EQ(name, base_name);
      if (name.rfind("stage/", 0) == 0) {
        EXPECT_EQ(hist.count, base_hist.count) << name;
      } else {
        EXPECT_EQ(hist, base_hist) << name;
      }
    }
  }
}

TEST(TelemetryDeterminism, TraceNonTimingFieldsByteIdenticalAcrossThreads) {
  // The trace sink receives slots in slot order through the reorder
  // buffer, so everything before the lane field — slot, relay, segments,
  // attempt, failure flags, quality — is byte-identical at any thread
  // count or shard size.
  const std::vector<std::string> base = split_lines(run_trace(1, 1));
  ASSERT_FALSE(base.empty());
  std::vector<std::string> base_prefix;
  for (const auto& line : base)
    base_prefix.push_back(deterministic_prefix(line));

  for (const auto& [threads, shard] :
       std::vector<std::pair<int, int>>{{1, 5}, {8, 1}, {8, 5}}) {
    const std::vector<std::string> lines =
        split_lines(run_trace(threads, shard));
    SCOPED_TRACE("threads=" + std::to_string(threads) +
                 " shard=" + std::to_string(shard));
    ASSERT_EQ(lines.size(), base_prefix.size());
    for (std::size_t i = 0; i < lines.size(); ++i)
      EXPECT_EQ(deterministic_prefix(lines[i]), base_prefix[i]);
  }
}

TEST(TelemetryDeterminism, MetricsJsonIsStableAcrossThreadCounts) {
  // write_metrics emits sorted names and deterministic counter values;
  // with the stage histograms' wall-time numbers being the only moving
  // part, the counters block must match byte for byte.
  const auto run1 = run_with_recorder(1, 0);
  const auto run8 = run_with_recorder(8, 0);
  EXPECT_EQ(run1.second.counters, run8.second.counters);

  telemetry::Recorder empty;
  std::ostringstream out;
  empty.write_metrics(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"flashflow_metrics\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"campaign/slots\""), std::string::npos);
  EXPECT_NE(json.find("\"stage/solver_solve\""), std::string::npos);
}

TEST(PerfCounters, DegradesToInertSamplerWhereUnavailable) {
  // Containers and CI runners routinely deny perf_event_open; the
  // sampler must construct, run and read without error either way, and
  // an invalid sample is all zeros (0 means "not sampled", never
  // "free") — see docs/performance.md.
  telemetry::PerfSampler sampler;
  sampler.start();
  // A little work so an *available* sampler has something to count.
  std::uint64_t work = 0;
  for (std::uint64_t i = 0; i < 10000; ++i) work += i * i;
  sampler.stop();
  EXPECT_GT(work, 0u);

  const telemetry::PerfSampler::Sample sample = sampler.read();
  EXPECT_EQ(sample.valid, sampler.available());
  if (!sample.valid) {
    EXPECT_EQ(sample.instructions, 0u);
    EXPECT_EQ(sample.cycles, 0u);
    EXPECT_EQ(sample.cache_misses, 0u);
    EXPECT_EQ(sample.ipc(), 0.0);
  } else {
    EXPECT_GT(sample.instructions, 0u);
  }
}

}  // namespace
}  // namespace flashflow
