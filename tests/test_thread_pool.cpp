// Sharded-dispatch and reorder-buffer coverage for the campaign engine's
// threading layer.
//
// ThreadPool::parallel_for claims contiguous index shards through a shared
// counter; the campaign's ordering guarantee is built on two invariants
// tested here: every index runs exactly once, and each lane observes its
// indices in strictly increasing order (SlotReorderBuffer's deadlock
// freedom depends on the latter). The reorder-buffer tests drive
// adversarial completion orders — including workers parked beyond the
// bounded window — and the cancellation/exception paths the campaign
// runner relies on.
#include "campaign/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "campaign/sink.h"

namespace flashflow::campaign {
namespace {

SlotResult make_result(std::size_t slot) {
  SlotResult result;
  result.slot = static_cast<int>(slot);
  return result;
}

TEST(ThreadPoolShard, CoversEveryIndexOnceAcrossShardSizes) {
  for (const int threads : {1, 4, 8}) {
    ThreadPool pool(threads);
    for (const std::size_t shard : {std::size_t{1}, std::size_t{3},
                                    std::size_t{64}, std::size_t{1000}}) {
      std::vector<std::atomic<int>> hits(257);
      pool.parallel_for(hits.size(), shard,
                        [&](std::size_t, std::size_t i) { hits[i] += 1; });
      for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    }
  }
}

TEST(ThreadPoolShard, ShardSizeOneMatchesIndexAtATimeClaiming) {
  // Shard size 1 degenerates to the pre-shard index-at-a-time dispatch:
  // same coverage, same lane bounds, one counter trip per index.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  std::atomic<std::size_t> max_lane{0};
  pool.parallel_for(hits.size(), /*shard_size=*/1,
                    [&](std::size_t lane, std::size_t i) {
                      hits[i] += 1;
                      std::size_t seen = max_lane.load();
                      while (lane > seen &&
                             !max_lane.compare_exchange_weak(seen, lane)) {
                      }
                    });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_LT(max_lane.load(), pool.lanes(hits.size()));
}

TEST(ThreadPoolShard, LanesExceedSlots) {
  // More workers than indices: lanes() collapses to n, every index still
  // runs exactly once and lane ids stay within [0, n).
  ThreadPool pool(8);
  EXPECT_EQ(pool.lanes(3), 3u);
  std::vector<std::atomic<int>> hits(3);
  std::atomic<bool> lane_in_range{true};
  pool.parallel_for(hits.size(), /*shard_size=*/2,
                    [&](std::size_t lane, std::size_t i) {
                      hits[i] += 1;
                      if (lane >= 3) lane_in_range = false;
                    });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_TRUE(lane_in_range.load());
}

TEST(ThreadPoolShard, PerLaneIndexSequenceIsStrictlyIncreasing) {
  // The reorder buffer's deadlock-freedom proof requires each lane to
  // hand over its indices monotonically; pin the invariant for shard
  // sizes on both sides of the auto heuristic.
  for (const std::size_t shard : {std::size_t{0}, std::size_t{1},
                                  std::size_t{7}, std::size_t{50}}) {
    ThreadPool pool(4);
    const std::size_t n = 200;
    std::mutex mutex;
    std::vector<std::vector<std::size_t>> per_lane(pool.lanes(n));
    pool.parallel_for(n, shard, [&](std::size_t lane, std::size_t i) {
      std::lock_guard<std::mutex> lock(mutex);
      per_lane[lane].push_back(i);
    });
    std::size_t total = 0;
    for (const auto& seq : per_lane) {
      total += seq.size();
      EXPECT_TRUE(std::is_sorted(seq.begin(), seq.end()));
      EXPECT_EQ(std::adjacent_find(seq.begin(), seq.end()), seq.end());
    }
    EXPECT_EQ(total, n);
  }
}

TEST(ThreadPoolShard, ExceptionDuringShardRethrowsFirstError) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(128, /*shard_size=*/8,
                        [](std::size_t, std::size_t i) {
                          if (i % 13 == 5) throw std::runtime_error("boom");
                        }),
      std::runtime_error);

  // The pool survives a failed loop: the next parallel_for runs clean.
  std::atomic<int> count{0};
  pool.parallel_for(32, /*shard_size=*/4,
                    [&](std::size_t, std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPoolShard, ExceptionStopsFurtherClaims) {
  // After a throw, lanes stop claiming new shards and skip the rest of
  // the current shard; with a single worker the cut-off is deterministic.
  ThreadPool pool(1);
  std::atomic<int> executed{0};
  EXPECT_THROW(pool.parallel_for(1000, /*shard_size=*/10,
                                 [&](std::size_t, std::size_t i) {
                                   ++executed;
                                   if (i == 3) throw std::logic_error("stop");
                                 }),
               std::logic_error);
  EXPECT_EQ(executed.load(), 4);  // indices 0..3; 4..9 skipped, no new shard
}

TEST(ThreadPoolShard, DefaultShardBalancesClaimsAndCaps) {
  EXPECT_EQ(ThreadPool::default_shard(0, 4), 1u);
  EXPECT_EQ(ThreadPool::default_shard(100, 0), 1u);
  // Small n: shard collapses to 1 (keep the tail balanced).
  EXPECT_EQ(ThreadPool::default_shard(10, 8), 1u);
  // ~8 claims per lane in the middle range.
  EXPECT_EQ(ThreadPool::default_shard(640, 8), 10u);
  // Capped so reorder windows stay small for huge periods.
  EXPECT_EQ(ThreadPool::default_shard(1 << 20, 1), 64u);
}

TEST(SlotReorderBuffer, DeliversInOrderUnderAdversarialParkOrder) {
  // Park in a worst-case order (all high slots first) with a window big
  // enough not to block: nothing may be delivered until slot 0 lands,
  // then everything flushes in increasing order from one park call.
  const std::size_t n = 16;
  std::vector<int> delivered;
  SlotReorderBuffer buffer(n, /*window=*/n, [&](SlotResult&& slot) {
    delivered.push_back(slot.slot);
    return true;
  });
  for (std::size_t i = n - 1; i > 0; --i) {
    EXPECT_TRUE(buffer.park(i, make_result(i)));
    EXPECT_TRUE(delivered.empty());
  }
  EXPECT_TRUE(buffer.park(0, make_result(0)));
  ASSERT_EQ(delivered.size(), n);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(delivered[i], static_cast<int>(i));
  EXPECT_EQ(buffer.delivered(), n);
  EXPECT_FALSE(buffer.aborted());
}

TEST(SlotReorderBuffer, ParkBeyondWindowBlocksUntilPrefixDelivered) {
  std::vector<int> delivered;
  SlotReorderBuffer buffer(4, /*window=*/2, [&](SlotResult&& slot) {
    delivered.push_back(slot.slot);
    return true;
  });

  // Index 2 is outside [0, 0 + 2): the parking thread must block.
  std::atomic<bool> parked{false};
  std::thread blocked([&] {
    EXPECT_TRUE(buffer.park(2, make_result(2)));
    parked = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(parked.load());
  EXPECT_TRUE(delivered.empty());

  // Delivering the prefix advances the window and unblocks the parker.
  EXPECT_TRUE(buffer.park(0, make_result(0)));
  EXPECT_TRUE(buffer.park(1, make_result(1)));
  blocked.join();
  EXPECT_TRUE(parked.load());
  EXPECT_TRUE(buffer.park(3, make_result(3)));
  ASSERT_EQ(delivered.size(), 4u);
  EXPECT_TRUE(std::is_sorted(delivered.begin(), delivered.end()));
}

TEST(SlotReorderBuffer, AbortUnblocksParkedWorkers) {
  SlotReorderBuffer buffer(8, /*window=*/1,
                           [](SlotResult&&) { return true; });
  auto blocked = std::async(std::launch::async, [&] {
    return buffer.park(5, make_result(5));
  });
  EXPECT_EQ(blocked.wait_for(std::chrono::milliseconds(50)),
            std::future_status::timeout);
  buffer.abort();
  EXPECT_FALSE(blocked.get());  // woken, result dropped
  EXPECT_TRUE(buffer.aborted());
  EXPECT_FALSE(buffer.park(0, make_result(0)));  // aborted: no-op
  EXPECT_EQ(buffer.delivered(), 0u);
}

TEST(SlotReorderBuffer, DeliverReturningFalseCancelsRemaining) {
  std::vector<int> delivered;
  SlotReorderBuffer buffer(4, /*window=*/4, [&](SlotResult&& slot) {
    delivered.push_back(slot.slot);
    return false;  // cancel after the first delivery
  });
  EXPECT_TRUE(buffer.park(1, make_result(1)));
  EXPECT_TRUE(buffer.park(0, make_result(0)));  // delivers 0, then aborts
  EXPECT_TRUE(buffer.aborted());
  EXPECT_EQ(buffer.delivered(), 1u);
  EXPECT_FALSE(buffer.park(2, make_result(2)));
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], 0);
}

TEST(SlotReorderBuffer, DeliverExceptionPropagatesToFlushingParker) {
  SlotReorderBuffer buffer(4, /*window=*/4, [](SlotResult&&) -> bool {
    throw std::runtime_error("sink failed");
  });
  EXPECT_THROW(buffer.park(0, make_result(0)), std::runtime_error);
  EXPECT_TRUE(buffer.aborted());
  // The failed slot was consumed, not redelivered; later parks are no-ops.
  EXPECT_FALSE(buffer.park(1, make_result(1)));
  EXPECT_EQ(buffer.delivered(), 0u);
}

TEST(SlotReorderBuffer, WorkerThrowBeforeParkMustAbortOrPeersDeadlock) {
  // Mirrors CampaignRunner's worker pattern: the slot computation can
  // throw before park(), in which case the delivery cursor would never
  // reach indices parked behind the dead slot — the worker must abort the
  // buffer on the way out or peers blocked beyond the bounded window wait
  // forever (regression test: the campaign worker wraps compute + park in
  // one try/catch that aborts before rethrowing).
  ThreadPool pool(2);
  const std::size_t n = 64;
  SlotReorderBuffer buffer(n, /*window=*/2,
                           [](SlotResult&&) { return true; });
  EXPECT_THROW(
      pool.parallel_for(n, /*shard_size=*/1,
                        [&](std::size_t, std::size_t i) {
                          try {
                            if (i == 0) {
                              // Let the other lane race ahead and block
                              // on the window before the throw.
                              std::this_thread::sleep_for(
                                  std::chrono::milliseconds(20));
                              throw std::runtime_error("compute failed");
                            }
                            buffer.park(i, make_result(i));
                          } catch (...) {
                            buffer.abort();
                            throw;
                          }
                        }),
      std::runtime_error);
  EXPECT_TRUE(buffer.aborted());
  EXPECT_EQ(buffer.delivered(), 0u);  // slot 0 died, nothing flushed
}

TEST(SlotReorderBuffer, ManyThreadsRandomOrderStaysOrderedAndBounded) {
  // Threaded smoke over the whole machinery: workers complete slots in
  // scrambled order through a tight window; delivery must still be the
  // identity permutation and in-flight results can never exceed the
  // window (checked indirectly: delivery index gaps would break sorting).
  const std::size_t n = 200;
  std::vector<int> delivered;
  SlotReorderBuffer buffer(n, /*window=*/8, [&](SlotResult&& slot) {
    delivered.push_back(slot.slot);
    return true;
  });
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  // Deterministic scramble with bounded displacement: a worker lane never
  // runs more than `window` slots ahead, matching parallel_for's monotone
  // per-lane hand-off (unbounded displacement could deadlock a window
  // this tight, by design).
  for (std::size_t i = 0; i + 1 < n; i += 2) std::swap(order[i], order[i + 1]);
  std::atomic<std::size_t> cursor{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&] {
      for (std::size_t k = cursor++; k < n; k = cursor++)
        EXPECT_TRUE(buffer.park(order[k], make_result(order[k])));
    });
  }
  for (auto& t : workers) t.join();
  ASSERT_EQ(delivered.size(), n);
  EXPECT_TRUE(std::is_sorted(delivered.begin(), delivered.end()));
  EXPECT_EQ(buffer.delivered(), n);
}

}  // namespace
}  // namespace flashflow::campaign
