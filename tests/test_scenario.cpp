#include "scenario/scenario.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/sink.h"
#include "net/units.h"
#include "scenario/experiment.h"
#include "tor/bandwidth_file.h"

namespace flashflow::scenario {
namespace {

ScenarioSpec lab_spec(std::vector<double> limits_mbit,
                      std::uint64_t seed = 20210613) {
  return ScenarioBuilder("lab")
      .table1_relays(std::move(limits_mbit))
      .measurers({"US-E", "NL"})
      .measurer_capacities({net::mbit(900), net::mbit(900)})
      .seed(seed)
      .build();
}

TEST(ScenarioBuilder, RejectsInvalidSpecs) {
  // Empty table1 population.
  EXPECT_THROW(ScenarioBuilder().table1_relays({}).build(),
               std::invalid_argument);
  // Adversary fractions outside [0, 1] or summing above 1.
  EXPECT_THROW(ScenarioBuilder().table1_relays({100}).liars(-0.1).build(),
               std::invalid_argument);
  EXPECT_THROW(
      ScenarioBuilder().table1_relays({100}).liars(0.6).forgers(0.6).build(),
      std::invalid_argument);
  // Bad protocol params propagate through Params::validate.
  core::Params bad;
  bad.epsilon1 = 1.0;
  EXPECT_THROW(ScenarioBuilder().table1_relays({100}).params(bad).build(),
               std::invalid_argument);
  // Synthetic population with no relays.
  EXPECT_THROW(ScenarioBuilder().synthetic({}, 0).build(),
               std::invalid_argument);
  // Team capacity overrides misaligned with named measurers.
  EXPECT_THROW(ScenarioBuilder()
                   .table1_relays({100})
                   .measurers({"US-E", "NL"})
                   .measurer_capacities({net::mbit(900)})
                   .build(),
               std::invalid_argument);
  // ...and with the population's *default* team (table1: 4 hosts).
  EXPECT_THROW(ScenarioBuilder()
                   .table1_relays({100})
                   .measurer_capacities({net::mbit(900)})
                   .build(),
               std::invalid_argument);
  EXPECT_THROW(ScenarioBuilder()
                   .shadow_net({}, 1)
                   .measurer_capacities({net::gbit(1)})
                   .build(),
               std::invalid_argument);
  // Periods below 1.
  EXPECT_THROW(ScenarioBuilder().table1_relays({100}).periods(0).build(),
               std::invalid_argument);
  // Synthetic populations need capacity overrides at materialization time
  // (no real topology to mesh-measure).
  auto spec = ScenarioBuilder().synthetic({}, 10).build();
  EXPECT_THROW(materialize(spec), std::invalid_argument);
}

TEST(Scenario, Table1RunTracksGroundTruth) {
  const Scenario scenario(
      lab_spec({10, 25, 50, 75, 100, 150, 200, 250, 40, 120}));
  const auto result = scenario.run();

  ASSERT_EQ(result.relays.size(), 10u);
  EXPECT_EQ(result.summary.verification_failures, 0);
  for (const auto& est : result.relays) {
    ASSERT_GT(est.ground_truth_bits, 0.0);
    const double ratio = est.estimate_bits / est.ground_truth_bits;
    EXPECT_GT(ratio, 0.70);
    EXPECT_LT(ratio, 1.15);
  }
  EXPECT_LT(result.summary.mean_abs_relative_error, 0.15);
}

TEST(Scenario, DefaultTeamIsEveryOtherTable1Host) {
  const auto spec = ScenarioBuilder().table1_relays({100}).build();
  const auto mat = materialize(spec);
  // US-SW hosts the relay; the other four Table 1 hosts measure.
  EXPECT_EQ(mat.measurer_hosts.size(), 4u);
  EXPECT_EQ(mat.relays.size(), 1u);
  EXPECT_EQ(mat.fingerprints.size(), 1u);
}

TEST(Scenario, PlanMatchesRunLayout) {
  const Scenario scenario(lab_spec({10, 25, 50, 75, 100, 150, 200, 250}));
  const auto plan = scenario.plan();
  const auto result = scenario.run();

  EXPECT_EQ(plan.relays, 8);
  EXPECT_EQ(plan.team_capacity_bits, net::mbit(1800));
  EXPECT_EQ(plan.slots_in_period, result.summary.slots_in_period);
  EXPECT_GT(plan.total_requirement_bits, plan.total_prior_bits);
}

TEST(Scenario, SyntheticPlanCoversWholePopulationWithoutTopology) {
  analysis::PopulationParams pop;
  pop.lognormal_mu = 17.42;
  pop.lognormal_sigma = 1.45;
  pop.max_capacity_bits = 998e6;
  // §7 scale: thousands of relays. plan() must not materialize a topology
  // (whose dense path matrices would dwarf the schedule itself).
  const Scenario scenario(ScenarioBuilder("sec7")
                              .synthetic(pop, 6419)
                              .measurer_capacities({net::gbit(1),
                                                    net::gbit(1),
                                                    net::gbit(1)})
                              .seed(20210613)
                              .build());
  const auto plan = scenario.plan();
  EXPECT_EQ(plan.relays, 6419);
  EXPECT_EQ(plan.team_capacity_bits, net::gbit(3));
  // The paper needs ~599 slots (~5 h) for the July 2019 network.
  EXPECT_GT(plan.slots_used, 300);
  EXPECT_LT(plan.slots_used, 1200);
  EXPECT_DOUBLE_EQ(plan.simulated_seconds, plan.slots_used * 30.0);
}

TEST(Scenario, SyntheticPlanAgreesWithRun) {
  // plan() derives priors without a topology; run() materializes relays
  // whose oracle ground truth must reproduce exactly the same layout.
  analysis::PopulationParams pop;
  pop.lognormal_mu = 16.0;
  pop.max_capacity_bits = 200e6;
  const Scenario scenario(ScenarioBuilder("syn")
                              .synthetic(pop, 40)
                              .measurer_capacities({net::mbit(900),
                                                    net::mbit(900)})
                              .seed(13)
                              .build());
  const auto plan = scenario.plan();
  const auto result = scenario.run();
  EXPECT_EQ(plan.slots_in_period, result.summary.slots_in_period);
  EXPECT_EQ(plan.slots_used, result.summary.slots_executed);
  EXPECT_EQ(plan.relays, result.summary.relays_measured);
}

TEST(Scenario, ShadowPlanAgreesWithRun) {
  // Same layout-agreement pin as the synthetic case: plan() derives
  // advertised-bandwidth priors without building the topology; run() must
  // land on the same slot layout.
  shadowsim::ShadowNetParams net_params;
  net_params.relays = 25;
  const Scenario scenario(ScenarioBuilder("shadow-plan")
                              .shadow_net(net_params, 3)
                              .measurer_capacities({net::gbit(1),
                                                    net::gbit(1),
                                                    net::gbit(1)})
                              .seed(17)
                              .build());
  const auto plan = scenario.plan();
  const auto result = scenario.run();
  EXPECT_EQ(plan.slots_in_period, result.summary.slots_in_period);
  EXPECT_EQ(plan.slots_used, result.summary.slots_executed);
  EXPECT_EQ(plan.relays, result.summary.relays_measured);
}

TEST(ScenarioBuilder, RejectsNegativeTable1Fields) {
  EXPECT_THROW(ScenarioBuilder().table1_relays({-100}).build(),
               std::invalid_argument);
  EXPECT_THROW(ScenarioBuilder().table1_relays({100}, -50).build(),
               std::invalid_argument);
  // 0 stays valid: the §6 "unlimited" configuration.
  EXPECT_NO_THROW(ScenarioBuilder().table1_relays({0}).build());
}

TEST(Scenario, RecordOutcomesStreamsPerSecondTimeline) {
  auto spec = ScenarioBuilder("fig7-like")
                  .table1_relays({250}, /*background_mbit=*/50,
                                 /*prior_mbit=*/250)
                  .measurers({"NL"})
                  .measurer_capacities({net::mbit(1600)})
                  .record_outcomes()
                  .seed(20210607)
                  .build();
  const Scenario scenario(std::move(spec));

  struct TimelineSink : campaign::SlotSink {
    std::vector<core::SlotOutcome> outcomes;
    void slot_done(const campaign::SlotResult& slot) override {
      for (const auto& out : slot.outcomes) outcomes.push_back(out);
    }
  } sink;
  scenario.run(sink);

  ASSERT_EQ(sink.outcomes.size(), 1u);
  EXPECT_EQ(sink.outcomes[0].x_bits.size(), 30u);
  EXPECT_EQ(sink.outcomes[0].y_clamped_bits.size(), 30u);
  EXPECT_GT(sink.outcomes[0].estimate_bits, 0.0);
}

TEST(Experiment, StreamedSinkOutputIdenticalAcrossThreadCounts) {
  // Acceptance criterion: a >= 3 period randomized-schedule experiment is
  // bit-identical between 1 and 8 threads at the sink level.
  const auto stream = [&](int threads) {
    auto spec = ScenarioBuilder("determinism")
                    .table1_relays({10, 25, 50, 75, 100, 150, 200, 250},
                                   /*background_mbit=*/0,
                                   /*prior_mbit=*/40)
                    .measurers({"US-E", "NL"})
                    .measurer_capacities({net::mbit(900), net::mbit(900)})
                    .schedule(campaign::ScheduleMode::kRandomized)
                    .periods(3)
                    .threads(threads)
                    .seed(77)
                    .build();
    Experiment experiment(std::move(spec));
    std::ostringstream out;
    campaign::CsvSink sink(out);
    const auto result = experiment.run(&sink);
    EXPECT_EQ(result.periods.size(), 3u);
    return out.str();
  };

  const std::string serial = stream(1);
  const std::string parallel = stream(8);
  EXPECT_EQ(serial, parallel);
  // All three periods streamed through the one sink.
  EXPECT_NE(serial.find("\n2,"), std::string::npos);
}

TEST(Experiment, PriorFeedbackConvergesOnHonestPopulation) {
  // Priors start at 10 Mbit for relays up to 25x larger; the f ~ 2.95
  // allocation lets estimates grow geometrically, so the period-over-
  // period error must shrink (or hold once converged).
  auto spec = ScenarioBuilder("feedback")
                  .table1_relays({50, 100, 150, 250},
                                 /*background_mbit=*/0,
                                 /*prior_mbit=*/10)
                  .measurers({"US-E", "NL"})
                  .measurer_capacities({net::mbit(900), net::mbit(900)})
                  .periods(5)
                  .seed(20210618)
                  .build();
  Experiment experiment(std::move(spec));
  const auto result = experiment.run();

  ASSERT_EQ(result.periods.size(), 5u);
  const auto err = [&](int p) {
    return result.periods[static_cast<std::size_t>(p)]
        .summary.mean_abs_relative_error;
  };
  // Severely under-allocated at first...
  EXPECT_GT(err(0), 0.5);
  // ...monotonically improving (2% tolerance for converged-state noise)...
  for (int p = 1; p < 5; ++p) EXPECT_LE(err(p), err(p - 1) + 0.02);
  // ...and accurate once priors have caught up.
  EXPECT_LT(err(4), 0.10);
  EXPECT_LT(result.final_period.summary.mean_abs_relative_error, 0.10);
}

TEST(Experiment, LiarInflationBoundedByMaxInflation) {
  const std::vector<double> limits(10, 100.0);
  auto honest_spec = lab_spec(limits, 31);
  auto liar_spec = ScenarioBuilder("liars")
                       .table1_relays(limits)
                       .measurers({"US-E", "NL"})
                       .measurer_capacities({net::mbit(900), net::mbit(900)})
                       .liars(0.5)
                       .seed(31)
                       .build();

  const Scenario honest(std::move(honest_spec));
  const Scenario lying(std::move(liar_spec));
  const auto honest_result = honest.run();
  const auto liar_result = lying.run();

  const double bound = core::Params{}.max_inflation();  // 1/(1-r) = 1.33
  int liars_seen = 0;
  for (std::size_t i = 0; i < limits.size(); ++i) {
    const auto& est = liar_result.relays[i];
    ASSERT_GT(est.ground_truth_bits, 0.0);
    if (lying.materialized().relays[i].behavior ==
        core::TargetBehavior::kLieAboutBackground) {
      ++liars_seen;
      // §5: lying about background traffic inflates the estimate, but
      // never beyond 1/(1-r) of capacity (modulo per-slot noise).
      const double inflation = est.estimate_bits / est.ground_truth_bits;
      EXPECT_GT(inflation, 1.05);
      EXPECT_LT(inflation, bound * 1.08);
    } else {
      EXPECT_LT(std::fabs(est.relative_error), 0.20);
    }
    EXPECT_FALSE(est.verification_failed);
  }
  EXPECT_GT(liars_seen, 1);
  EXPECT_LT(liars_seen, 9);
  // Network-wide the liars buy less than the per-relay bound.
  EXPECT_LT(liar_result.summary.total_estimated_bits,
            honest_result.summary.total_true_bits * bound);
}

TEST(Experiment, ForgersFailVerification) {
  auto spec = ScenarioBuilder("forgers")
                  .table1_relays(std::vector<double>(8, 100.0))
                  .measurers({"US-E", "NL"})
                  .measurer_capacities({net::mbit(900), net::mbit(900)})
                  .forgers(0.4)
                  .seed(7)
                  .build();
  const Scenario scenario(std::move(spec));
  const auto result = scenario.run();

  int forgers = 0;
  for (std::size_t i = 0; i < result.relays.size(); ++i) {
    const bool is_forger = scenario.materialized().relays[i].behavior ==
                           core::TargetBehavior::kForgeEchoes;
    forgers += is_forger;
    // The sampled spot check catches a 100 Mbit/s forger in a 30 s slot
    // with probability ~1 - e^-7 per slot.
    EXPECT_EQ(result.relays[i].verification_failed, is_forger);
  }
  EXPECT_GT(forgers, 0);
  EXPECT_EQ(result.summary.verification_failures, forgers);
}

TEST(Experiment, EmitsParsableBandwidthFile) {
  shadowsim::ShadowNetParams net_params;
  net_params.relays = 30;
  auto spec = ScenarioBuilder("shadow")
                  .shadow_net(net_params, 11)
                  .measurer_capacities(
                      {net::gbit(1), net::gbit(1), net::gbit(1)})
                  .periods(2)
                  .seed(5)
                  .build();
  Experiment experiment(std::move(spec));
  const auto result = experiment.run();

  ASSERT_EQ(result.periods.size(), 2u);
  const std::string text =
      experiment.bandwidth_file_text(1, result.final_period);
  const auto parsed = tor::parse_bandwidth_file(text);
  EXPECT_EQ(parsed.header.timestamp, 2 * 24 * 3600);
  EXPECT_EQ(parsed.entries.size(),
            result.final_period.relays.size() -
                static_cast<std::size_t>(
                    result.final_period.summary.verification_failures));
  for (const auto& entry : parsed.entries) EXPECT_GT(entry.weight, 0.0);
}

TEST(Experiment, OnePeriodAgreesWithScenarioRun) {
  // Both entry points must resolve the iPerf mesh with the same seed, so
  // a 1-period Experiment and Scenario::run() are interchangeable.
  const auto spec = ScenarioBuilder("mesh")
                        .table1_relays({50, 100, 250})
                        .seed(99)
                        .build();  // no capacity overrides: mesh runs
  const Scenario scenario{ScenarioSpec{spec}};
  Experiment experiment{ScenarioSpec{spec}};
  const auto direct = scenario.run();
  const auto looped = experiment.run();
  EXPECT_TRUE(direct == looped.final_period);
}

TEST(SpeedTest, RejectsSpecsItCannotHonor) {
  const analysis::PopulationParams pop;
  // Non-synthetic population.
  EXPECT_THROW(run_speed_test(ScenarioBuilder().table1_relays({100}).build()),
               std::invalid_argument);
  // Fields the archive experiment cannot apply are rejected, not dropped.
  EXPECT_THROW(
      run_speed_test(ScenarioBuilder().synthetic(pop, 10).liars(0.5).build()),
      std::invalid_argument);
  EXPECT_THROW(run_speed_test(
                   ScenarioBuilder().synthetic(pop, 10).periods(3).build()),
               std::invalid_argument);
  // Tiered topologies do not apply to the archive experiment either.
  EXPECT_THROW(run_speed_test(ScenarioBuilder()
                                  .synthetic(pop, 10)
                                  .tiered_topology()
                                  .build()),
               std::invalid_argument);
  EXPECT_NO_THROW(run_speed_test(
      ScenarioBuilder()
          .synthetic(pop, pop.initial_relays)
          .seed(20210605)
          .speedtest(SpeedTestWindow{/*warmup_days=*/2,
                                     /*test_duration_hours=*/6,
                                     /*cooldown_days=*/1})
          .build()));
}

TEST(Experiment, PeriodHookObservesEveryPeriod) {
  auto spec = lab_spec({50, 100});
  spec.periods = 3;
  Experiment experiment(std::move(spec));
  std::vector<int> seen;
  const auto result = experiment.run(
      nullptr, [&](const Experiment::PeriodRecord& record,
                   const campaign::CampaignResult& period_result) {
        seen.push_back(record.period);
        EXPECT_EQ(period_result.relays.size(), 2u);
        EXPECT_GT(record.stats.wall_seconds, 0.0);
      });
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2}));
  EXPECT_FALSE(result.cancelled);
}

}  // namespace
}  // namespace flashflow::scenario
