#include "net/tcp_model.h"

#include <gtest/gtest.h>

#include "net/units.h"

namespace flashflow::net {
namespace {

TEST(KernelProfile, DefaultBuffers) {
  const auto k = KernelProfile::default_profile();
  EXPECT_DOUBLE_EQ(k.read_buffer_bytes, 4.0 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(k.write_buffer_bytes, 6.0 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(k.usable_window_bytes(), 4.0 * 1024 * 1024);
}

TEST(KernelProfile, TunedBuffers) {
  const auto k = KernelProfile::tuned_profile();
  EXPECT_DOUBLE_EQ(k.usable_window_bytes(), 64.0 * 1024 * 1024);
}

TEST(TcpModel, WindowBoundDominatesOnCleanPath) {
  // 4 MiB window at 340 ms RTT: ~98 Mbit/s, exactly window/RTT — window-
  // limited flows are ACK-clocked and stable (the paper's Fig 12
  // default-kernel data point).
  const double rate = tcp_socket_throughput(KernelProfile::default_profile(),
                                            0.340, 0.0);
  const double window_only = 4.0 * 1024 * 1024 * 8 / 0.340;
  EXPECT_DOUBLE_EQ(rate, window_only);
}

TEST(TcpModel, TunedBeatsDefaultOnHighBdpPath) {
  const double d = tcp_socket_throughput(KernelProfile::default_profile(),
                                         0.120, 0.0);
  const double t = tcp_socket_throughput(KernelProfile::tuned_profile(),
                                         0.120, 0.0);
  // Fig 12: ~280 vs ~1100 Mbit/s at 120 ms.
  EXPECT_GT(t, d * 3.0);
}

TEST(TcpModel, LongFatPipePenalty) {
  // When the window is NOT binding, rates degrade with RTT (loss recovery
  // on large cwnds): the tuned-kernel curve of Fig 12.
  const auto k = KernelProfile::tuned_profile();
  const double r120 = tcp_socket_throughput(k, 0.120, 0.0);
  const double window_cap = 64.0 * 1024 * 1024 * 8 / 0.120;
  EXPECT_LT(r120, window_cap * 0.5);  // penalty, not window, binds
}

TEST(TcpModel, ThroughputDecreasesWithRtt) {
  const auto k = KernelProfile::tuned_profile();
  const double r28 = tcp_socket_throughput(k, 0.028, 0.0);
  const double r120 = tcp_socket_throughput(k, 0.120, 0.0);
  const double r340 = tcp_socket_throughput(k, 0.340, 0.0);
  EXPECT_GT(r28, r120);
  EXPECT_GT(r120, r340);
}

TEST(TcpModel, MathisBoundDominatesOnLossyPath) {
  // IN-like path: 210 ms, loaded loss 1.6e-4 -> a few Mbit/s per socket.
  const double rate = tcp_socket_throughput(KernelProfile::default_profile(),
                                            0.210, 1.6e-4);
  EXPECT_LT(rate, mbit(8));
  EXPECT_GT(rate, mbit(2));
}

TEST(TcpModel, ZeroLossDisablesMathis) {
  const double clean = tcp_socket_throughput(
      KernelProfile::default_profile(), 0.05, 0.0);
  const double lossy = tcp_socket_throughput(
      KernelProfile::default_profile(), 0.05, 1e-3);
  EXPECT_GT(clean, lossy);
}

TEST(TcpModel, RejectsNonPositiveRtt) {
  EXPECT_THROW(
      tcp_socket_throughput(KernelProfile::default_profile(), 0.0, 0.0),
      std::invalid_argument);
}

TEST(TcpModel, AggregateScalesWithSockets) {
  const auto k = KernelProfile::default_profile();
  const double one = tcp_aggregate_cap(k, 0.1, 1e-4, 1);
  const double ten = tcp_aggregate_cap(k, 0.1, 1e-4, 10);
  EXPECT_DOUBLE_EQ(ten, one * 10.0);
  EXPECT_DOUBLE_EQ(tcp_aggregate_cap(k, 0.1, 1e-4, 0), 0.0);
}

// Parameterized sweep: throughput must be monotonically non-increasing in
// loss for a fixed RTT (property of the Mathis term).
class LossMonotoneTest : public ::testing::TestWithParam<double> {};

TEST_P(LossMonotoneTest, MonotoneInLoss) {
  const double rtt = GetParam();
  const auto k = KernelProfile::default_profile();
  double prev = tcp_socket_throughput(k, rtt, 0.0);
  for (const double loss : {1e-6, 1e-5, 1e-4, 1e-3, 1e-2}) {
    const double cur = tcp_socket_throughput(k, rtt, loss);
    EXPECT_LE(cur, prev * (1.0 + 1e-12));
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(RttSweep, LossMonotoneTest,
                         ::testing::Values(0.01, 0.04, 0.12, 0.21, 0.34));

}  // namespace
}  // namespace flashflow::net
