#include "metrics/timeseries.h"

#include <gtest/gtest.h>

#include "sim/time.h"

namespace flashflow::metrics {
namespace {

TEST(PerSecondSeries, BinsBySecond) {
  PerSecondSeries s;
  s.add(0, 100.0);
  s.add(sim::kSecond / 2, 50.0);
  s.add(2 * sim::kSecond, 10.0);
  const auto bins = s.bins();
  ASSERT_EQ(bins.size(), 3u);
  EXPECT_DOUBLE_EQ(bins[0], 150.0);
  EXPECT_DOUBLE_EQ(bins[1], 0.0);
  EXPECT_DOUBLE_EQ(bins[2], 10.0);
}

TEST(PerSecondSeries, BitsConversion) {
  PerSecondSeries s;
  s.add(0, 100.0);
  EXPECT_DOUBLE_EQ(s.bins_bits_per_second()[0], 800.0);
}

TEST(PerSecondSeries, FirstSecondOffset) {
  PerSecondSeries s;
  s.add(10 * sim::kSecond, 5.0);
  EXPECT_EQ(s.first_second(), 10);
  EXPECT_EQ(s.bins().size(), 1u);
}

TEST(PerSecondSeries, RejectsTimeTravel) {
  PerSecondSeries s;
  s.add(5 * sim::kSecond, 1.0);
  EXPECT_THROW(s.add(2 * sim::kSecond, 1.0), std::invalid_argument);
}

TEST(TrailingMax, TracksWindow) {
  TrailingMax m(3);
  m.push(5.0);
  EXPECT_DOUBLE_EQ(m.max(), 5.0);
  m.push(3.0);
  m.push(1.0);
  EXPECT_DOUBLE_EQ(m.max(), 5.0);
  m.push(2.0);  // 5 falls out of the window of 3
  EXPECT_DOUBLE_EQ(m.max(), 3.0);
  m.push(0.5);
  EXPECT_DOUBLE_EQ(m.max(), 2.0);
}

TEST(TrailingMax, RisingSequence) {
  TrailingMax m(2);
  for (int i = 1; i <= 10; ++i) {
    m.push(i);
    EXPECT_DOUBLE_EQ(m.max(), i);
  }
}

TEST(TrailingMax, NoSamplesThrows) {
  TrailingMax m(4);
  EXPECT_THROW(m.max(), std::logic_error);
  EXPECT_THROW(TrailingMax(0), std::invalid_argument);
}

TEST(RollingWindowStats, MeanAndStdev) {
  RollingWindowStats s(3);
  s.push(1.0);
  s.push(2.0);
  s.push(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_NEAR(s.stdev(), 0.81649658, 1e-6);
  s.push(5.0);  // window now {2,3,5}
  EXPECT_NEAR(s.mean(), 10.0 / 3.0, 1e-12);
}

TEST(RollingWindowStats, RelativeStdevZeroMean) {
  RollingWindowStats s(2);
  s.push(1.0);
  s.push(-1.0);
  EXPECT_DOUBLE_EQ(s.relative_stdev(), 0.0);
}

TEST(RollingWindowStats, CountSaturatesAtWindow) {
  RollingWindowStats s(2);
  s.push(1.0);
  EXPECT_EQ(s.count(), 1u);
  s.push(1.0);
  s.push(1.0);
  EXPECT_EQ(s.count(), 2u);
}

TEST(SlidingWindowMax, ObservedBandwidthSemantics) {
  // 2-sample windows over a history of 3 window means.
  SlidingWindowMax m(2, 3);
  EXPECT_DOUBLE_EQ(m.max(), 0.0);  // no complete window yet
  m.push(10.0);
  EXPECT_DOUBLE_EQ(m.max(), 0.0);
  m.push(20.0);  // window mean 15
  EXPECT_DOUBLE_EQ(m.max(), 15.0);
  m.push(2.0);  // window mean 11
  EXPECT_DOUBLE_EQ(m.max(), 15.0);
  m.push(0.0);
  m.push(0.0);
  m.push(0.0);  // history now {1, 0, 0}: the 15 expired
  EXPECT_DOUBLE_EQ(m.max(), 1.0);
}

TEST(SlidingWindowMax, RejectsZeroConfig) {
  EXPECT_THROW(SlidingWindowMax(0, 1), std::invalid_argument);
  EXPECT_THROW(SlidingWindowMax(1, 0), std::invalid_argument);
}

}  // namespace
}  // namespace flashflow::metrics
