#include "core/allocation.h"

#include <gtest/gtest.h>

#include <numeric>

#include "net/units.h"

namespace flashflow::core {
namespace {

TEST(Params, PaperDefaults) {
  const Params p;
  EXPECT_EQ(p.sockets, 160);
  EXPECT_DOUBLE_EQ(p.multiplier, 2.25);
  EXPECT_EQ(p.slot_seconds, 30);
  EXPECT_DOUBLE_EQ(p.epsilon1, 0.20);
  EXPECT_DOUBLE_EQ(p.epsilon2, 0.05);
  EXPECT_DOUBLE_EQ(p.ratio, 0.25);
  EXPECT_EQ(p.period, sim::kDay);
}

TEST(Params, ExcessFactorFormula) {
  const Params p;
  // f = m(1 + eps2)/(1 - eps1) = 2.25 * 1.05 / 0.80
  EXPECT_NEAR(p.excess_factor(), 2.953, 0.001);
}

TEST(Params, MaxInflationIs133) {
  const Params p;
  EXPECT_NEAR(p.max_inflation(), 1.0 / 0.75, 1e-12);  // 1.33x (§5)
}

TEST(AllocateGreedy, SingleMeasurerTakesAll) {
  const std::vector<double> caps = {net::gbit(1)};
  const auto a = allocate_greedy(caps, net::mbit(700));
  EXPECT_DOUBLE_EQ(a[0], net::mbit(700));
}

TEST(AllocateGreedy, PrefersLargestResidual) {
  const std::vector<double> caps = {net::mbit(500), net::gbit(1.6)};
  const auto a = allocate_greedy(caps, net::mbit(800));
  // The 1.6G measurer has the most residual capacity: it serves everything.
  EXPECT_DOUBLE_EQ(a[0], 0.0);
  EXPECT_DOUBLE_EQ(a[1], net::mbit(800));
}

TEST(AllocateGreedy, SpillsOverWhenNeeded) {
  const std::vector<double> caps = {net::mbit(500), net::mbit(900)};
  const auto a = allocate_greedy(caps, net::mbit(1200));
  EXPECT_DOUBLE_EQ(a[1], net::mbit(900));
  EXPECT_DOUBLE_EQ(a[0], net::mbit(300));
}

TEST(AllocateGreedy, ExactSumProperty) {
  const std::vector<double> caps = {100.0, 200.0, 300.0};
  for (const double need : {50.0, 150.0, 599.0}) {
    const auto a = allocate_greedy(caps, need);
    EXPECT_NEAR(std::accumulate(a.begin(), a.end(), 0.0), need, 1e-6);
    for (std::size_t i = 0; i < caps.size(); ++i)
      EXPECT_LE(a[i], caps[i] + 1e-9);
  }
}

TEST(AllocateGreedy, InsufficientCapacityThrows) {
  const std::vector<double> caps = {100.0};
  EXPECT_THROW(allocate_greedy(caps, 101.0), std::runtime_error);
  EXPECT_THROW(allocate_greedy(caps, -1.0), std::invalid_argument);
}

TEST(MakeShares, SocketSplitEvenAcrossParticipants) {
  Params p;  // 160 sockets
  const std::vector<double> alloc = {net::mbit(100), 0.0, net::mbit(100),
                                     net::mbit(100), net::mbit(100)};
  const std::vector<int> cores = {8, 8, 12, 2, 2};
  const auto shares = make_shares(alloc, cores, p);
  ASSERT_EQ(shares.size(), 5u);
  EXPECT_EQ(shares[0].sockets, 40);  // s/m with 4 participants
  EXPECT_EQ(shares[1].sockets, 0);
  EXPECT_EQ(shares[1].processes, 0);
  EXPECT_EQ(shares[2].sockets, 40);
  EXPECT_EQ(shares[2].processes, 12);  // one process per core
}

TEST(MakeShares, AtLeastOneProcess) {
  Params p;
  const std::vector<double> alloc = {net::mbit(10)};
  const std::vector<int> cores = {0};
  const auto shares = make_shares(alloc, cores, p);
  EXPECT_EQ(shares[0].processes, 1);
}

TEST(MakeShares, SizeMismatchThrows) {
  Params p;
  const std::vector<double> alloc = {1.0};
  const std::vector<int> cores = {1, 2};
  EXPECT_THROW(make_shares(alloc, cores, p), std::invalid_argument);
}

TEST(AllocationScratch, ScratchVariantsMatchAllocatingAPI) {
  // The campaign hot path chains both scratch calls on one
  // AllocationScratch; results must match the allocating API exactly.
  Params p;
  const std::vector<double> caps = {net::mbit(900), net::mbit(500),
                                    net::mbit(700)};
  const std::vector<int> cores = {2, 1, 4};
  AllocationScratch scratch;
  for (const double need_mbit : {100, 600, 1400, 2000}) {
    const auto expected_alloc = allocate_greedy(caps, net::mbit(need_mbit));
    const auto alloc =
        allocate_greedy(caps, net::mbit(need_mbit), scratch);
    ASSERT_EQ(alloc.size(), expected_alloc.size());
    for (std::size_t i = 0; i < alloc.size(); ++i)
      EXPECT_DOUBLE_EQ(alloc[i], expected_alloc[i]);

    const auto expected_shares = make_shares(expected_alloc, cores, p);
    // `alloc` aliases scratch.alloc while make_shares writes
    // scratch.shares — the documented chaining pattern.
    const auto shares = make_shares(alloc, cores, p, scratch);
    ASSERT_EQ(shares.size(), expected_shares.size());
    for (std::size_t i = 0; i < shares.size(); ++i) {
      EXPECT_EQ(shares[i].measurer_index, expected_shares[i].measurer_index);
      EXPECT_DOUBLE_EQ(shares[i].allocated_bits,
                       expected_shares[i].allocated_bits);
      EXPECT_EQ(shares[i].processes, expected_shares[i].processes);
      EXPECT_EQ(shares[i].sockets, expected_shares[i].sockets);
    }
  }
}

TEST(AllocationScratch, ReuseAcrossShrinkingAndGrowingTeams) {
  // Reusing one scratch across differently sized teams must re-size the
  // outputs correctly (stale capacity may remain, stale values must not).
  AllocationScratch scratch;
  const std::vector<double> big = {net::mbit(900), net::mbit(900),
                                   net::mbit(900), net::mbit(900)};
  const std::vector<double> small = {net::mbit(900)};
  EXPECT_EQ(allocate_greedy(big, net::mbit(1800), scratch).size(), 4u);
  EXPECT_EQ(allocate_greedy(small, net::mbit(100), scratch).size(), 1u);
  EXPECT_DOUBLE_EQ(scratch.alloc[0], net::mbit(100));
  EXPECT_EQ(allocate_greedy(big, net::mbit(100), scratch).size(), 4u);
  // Only the largest-residual measurer participates again.
  EXPECT_DOUBLE_EQ(scratch.alloc[0], net::mbit(100));
  EXPECT_DOUBLE_EQ(scratch.alloc[1], 0.0);
}

TEST(AllocationScratch, ScratchVariantStillValidates) {
  AllocationScratch scratch;
  const std::vector<double> caps = {net::mbit(100)};
  EXPECT_THROW(allocate_greedy(caps, -1.0, scratch), std::invalid_argument);
  EXPECT_THROW(allocate_greedy(caps, net::mbit(200), scratch),
               std::runtime_error);
  Params p;
  const std::vector<int> cores = {1, 2};
  EXPECT_THROW(make_shares(caps, cores, p, scratch), std::invalid_argument);
}

}  // namespace
}  // namespace flashflow::core
