// Golden-hash regression tests for the measurement hot path.
//
// The campaign engine promises bit-identical output for a fixed (population,
// config, seed) regardless of thread count — and the hot-path code
// (core::SlotRunner, net::FairShareSolver, the campaign worker loop) is
// explicitly required to preserve results when it is restructured for
// speed. These tests pin the full streamed CsvSink byte stream of two fixed
// scenarios to FNV-1a hashes recorded from the pre-workspace-refactor
// implementation, so any future hot-path change that silently shifts
// results (an extra RNG draw, a reordered flow, a float reassociation)
// fails loudly here rather than drifting the paper reproductions.
//
// If a change *intends* to alter results, re-record the constants from a
// trusted build (the failure message prints the new hash) and justify the
// shift in the commit message.
// The CI determinism gate drives these tests through two environment
// variables: FLASHFLOW_GOLDEN_THREADS forces a single worker thread count
// and FLASHFLOW_GOLDEN_SHARD forces a dispatch shard size. Because every
// run — whatever the thread count or shard size — must match the same
// pinned hashes, running the suite once per configuration proves the
// byte-identical-across-threads claim as a gate, not a dev-box habit.
// Unset (the default), the suite exercises 1 and 8 threads itself.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/sink.h"
#include "net/units.h"
#include "scenario/scenario.h"
#include "scenario/serialize.h"
#include "sim/random.h"
#include "tor/cpu_model.h"

namespace flashflow {
namespace {

// Recorded from the pre-refactor hot path (PR 3 state) with seed 20210613.
constexpr std::uint64_t kCampaignCsvHash = 0xfa6d28d9b29064c3ULL;
constexpr std::uint64_t kScenarioCsvHash = 0x841c72e6038a41a5ULL;

int env_int(const char* name) {
  const char* value = std::getenv(name);
  return value ? std::atoi(value) : 0;
}

/// Thread count forced by the CI matrix; 0 = unset (test both 1 and 8).
int forced_threads() { return env_int("FLASHFLOW_GOLDEN_THREADS"); }
/// Dispatch shard size forced by the CI matrix; 0 = auto.
int forced_shard() { return env_int("FLASHFLOW_GOLDEN_SHARD"); }

std::string campaign_csv(int threads) {
  const auto topo = net::make_table1_hosts();
  std::vector<campaign::CampaignRelay> relays;
  for (const double limit : {10, 25, 50, 75, 100, 150, 200, 250, 40, 120}) {
    campaign::CampaignRelay r;
    r.model.name = "relay-" + std::to_string(static_cast<int>(limit));
    r.model.nic_up_bits = r.model.nic_down_bits = net::mbit(954);
    r.model.rate_limit_bits = net::mbit(limit);
    r.model.cpu = tor::CpuModel::us_sw();
    r.host = topo.find("US-SW");
    relays.push_back(std::move(r));
  }

  campaign::CampaignConfig config;
  config.measurer_hosts = {topo.find("US-E"), topo.find("NL")};
  config.measurer_capacity_bits = {net::mbit(900), net::mbit(900)};
  config.seed = 20210613;
  config.threads = threads;
  config.shard_slots = forced_shard();

  std::ostringstream out;
  campaign::CsvSink sink(out);
  campaign::CampaignRunner(topo, config).run(relays, sink);
  return out.str();
}

/// The golden scenario as a ScenarioBuilder program. scenario_file_spec()
/// must parse to exactly this spec.
scenario::ScenarioSpec golden_builder_spec(int threads) {
  // Covers the scenario materialization path on top of the campaign
  // engine: synthetic population, adversary mix, background model, and the
  // randomized §4.3 schedule.
  analysis::PopulationParams pop;
  pop.lognormal_mu = 17.0;
  pop.lognormal_sigma = 1.2;
  pop.max_capacity_bits = 900e6;
  return scenario::ScenarioBuilder("golden")
      .synthetic(pop, 40, /*prior_fraction=*/0.8)
      .measurer_capacities({net::mbit(800), net::mbit(800),
                            net::mbit(800)})
      .liars(0.10)
      .forgers(0.10)
      .background_utilization(0.2, 0.1)
      .schedule(campaign::ScheduleMode::kRandomized)
      .threads(threads)
      .shard_slots(forced_shard())
      .seed(20210613)
      .build();
}

/// The same scenario loaded from the checked-in scenario file (what
/// `flashflow run scenarios/golden_smoke.yaml` executes), with the
/// thread/shard knobs applied the way the CLI's flags would.
scenario::ScenarioSpec scenario_file_spec(int threads) {
  scenario::ScenarioSpec spec = scenario::load_scenario_file(
      scenario::default_scenario_dir() + "/golden_smoke.yaml");
  spec.threads = threads;
  spec.shard_slots = forced_shard();
  return spec;
}

std::string spec_csv(const scenario::ScenarioSpec& spec) {
  const scenario::Scenario scenario(spec);
  std::ostringstream out;
  campaign::CsvSink sink(out);
  scenario.run(sink);
  return out.str();
}

std::string scenario_csv(int threads) {
  return spec_csv(golden_builder_spec(threads));
}

TEST(GoldenDeterminism, CampaignCsvBytesMatchRecordedBaseline) {
  const int forced = forced_threads();
  const std::string csv = campaign_csv(forced > 0 ? forced : 1);
  EXPECT_EQ(sim::hash_tag(csv), kCampaignCsvHash)
      << "campaign CSV bytes shifted (threads=" << (forced > 0 ? forced : 1)
      << ", shard=" << forced_shard() << "); new hash 0x" << std::hex
      << sim::hash_tag(csv) << " over " << std::dec << csv.size()
      << " bytes. Hot-path changes must be bit-identical.";
  // The golden bytes are also thread-count independent.
  if (forced <= 0) {
    EXPECT_EQ(csv, campaign_csv(/*threads=*/8));
  }
}

TEST(GoldenDeterminism, ScenarioFileMatchesBuilderSpecAndGoldenBytes) {
  const int forced = forced_threads();
  const int threads = forced > 0 ? forced : 1;

  // The checked-in file and the builder program describe the same
  // experiment, field for field...
  const scenario::ScenarioSpec from_file = scenario_file_spec(threads);
  EXPECT_EQ(from_file, golden_builder_spec(threads))
      << "scenarios/golden_smoke.yaml drifted from the builder program";

  // ...and running the file-loaded spec produces the same pinned bytes,
  // so `flashflow run scenarios/golden_smoke.yaml` is covered by the
  // golden hash too.
  const std::string csv = spec_csv(from_file);
  EXPECT_EQ(sim::hash_tag(csv), kScenarioCsvHash)
      << "scenario-file CSV bytes shifted (threads=" << threads
      << ", shard=" << forced_shard() << "); new hash 0x" << std::hex
      << sim::hash_tag(csv);

  // The file also survives a serialize/parse round trip unchanged.
  EXPECT_EQ(scenario::parse_scenario(scenario::serialize_scenario(from_file)),
            from_file);
}

TEST(GoldenDeterminism, ScenarioCsvBytesMatchRecordedBaseline) {
  const int forced = forced_threads();
  const std::string csv = scenario_csv(forced > 0 ? forced : 1);
  EXPECT_EQ(sim::hash_tag(csv), kScenarioCsvHash)
      << "scenario CSV bytes shifted (threads=" << (forced > 0 ? forced : 1)
      << ", shard=" << forced_shard() << "); new hash 0x" << std::hex
      << sim::hash_tag(csv) << " over " << std::dec << csv.size()
      << " bytes. Hot-path changes must be bit-identical.";
  if (forced <= 0) {
    EXPECT_EQ(csv, scenario_csv(/*threads=*/8));
  }
}

}  // namespace
}  // namespace flashflow
