#include "net/topology.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "net/units.h"

namespace flashflow::net {
namespace {

Host make_host(std::string name, double up_bits = 0.0,
               double down_bits = 0.0) {
  Host h;
  h.name = std::move(name);
  h.nic_up_bits = up_bits;
  h.nic_down_bits = down_bits;
  return h;
}

TEST(Topology, AddHostAndLookup) {
  Topology t;
  const HostId a = t.add_host(make_host("a", mbit(100), mbit(100)));
  const HostId b = t.add_host(make_host("b", mbit(200), mbit(200)));
  EXPECT_EQ(t.host_count(), 2u);
  EXPECT_EQ(t.find("a"), a);
  EXPECT_EQ(t.find("b"), b);
  EXPECT_THROW(t.find("c"), std::invalid_argument);
  EXPECT_THROW(t.host(5), std::out_of_range);
}

TEST(Topology, FindResolvesEveryNameInALargePopulation) {
  // find() is backed by a name index maintained by add_host (it used to
  // be an O(N) scan per lookup, quadratic across a campaign's relay
  // resolution); every host must stay findable as the index grows.
  Topology t;
  std::vector<HostId> ids;
  for (int i = 0; i < 500; ++i)
    ids.push_back(t.add_host(make_host("relay-" + std::to_string(i))));
  for (int i = 0; i < 500; ++i)
    EXPECT_EQ(t.find("relay-" + std::to_string(i)), ids[i]);
}

TEST(Topology, FindReturnsFirstAddedOnDuplicateNames) {
  Topology t;
  const HostId first = t.add_host(make_host("twin"));
  t.add_host(make_host("twin"));
  EXPECT_EQ(t.find("twin"), first);
}

TEST(Topology, PathIsSymmetric) {
  Topology t;
  const HostId a = t.add_host(make_host("a"));
  const HostId b = t.add_host(make_host("b"));
  t.set_path(a, b, 0.05, 1e-5, 2e-4);
  EXPECT_DOUBLE_EQ(t.rtt(a, b), 0.05);
  EXPECT_DOUBLE_EQ(t.rtt(b, a), 0.05);
  EXPECT_DOUBLE_EQ(t.loss(a, b), 1e-5);
  EXPECT_DOUBLE_EQ(t.loaded_loss(b, a), 2e-4);
}

TEST(Topology, LoadedLossDefaultsToCleanLoss) {
  Topology t;
  const HostId a = t.add_host(make_host("a"));
  const HostId b = t.add_host(make_host("b"));
  t.set_path(a, b, 0.05, 3e-5);
  EXPECT_DOUBLE_EQ(t.loaded_loss(a, b), 3e-5);
}

TEST(Topology, GrowingPreservesPaths) {
  Topology t;
  const HostId a = t.add_host(make_host("a"));
  const HostId b = t.add_host(make_host("b"));
  t.set_path(a, b, 0.1, 0.0);
  const HostId c = t.add_host(make_host("c"));
  EXPECT_DOUBLE_EQ(t.rtt(a, b), 0.1);  // survived the matrix growth
  EXPECT_DOUBLE_EQ(t.rtt(a, c), 0.0);  // unset defaults to zero
}

TEST(Topology, ReserveHostsMatchesIncrementalGrowth) {
  // reserve_hosts presizes the dense matrices so large materializations
  // are not quadratic per insertion; paths and lookups must behave
  // identically with and without the reservation, including growth past
  // the reserved dimension.
  Topology reserved;
  reserved.reserve_hosts(3);
  Topology grown;
  for (auto* t : {&reserved, &grown}) {
    const HostId a = t->add_host(make_host("a", mbit(10), mbit(10)));
    const HostId b = t->add_host(make_host("b", mbit(20), mbit(20)));
    const HostId c = t->add_host(make_host("c", mbit(30), mbit(30)));
    t->set_path(a, b, 0.1, 1e-6, 2e-5);
    t->set_path(b, c, 0.2, 2e-6);
    const HostId d = t->add_host(make_host("d"));  // beyond the reservation
    t->set_path(a, d, 0.3, 0.0);
  }
  for (HostId x = 0; x < reserved.host_count(); ++x)
    for (HostId y = 0; y < reserved.host_count(); ++y) {
      EXPECT_DOUBLE_EQ(reserved.rtt(x, y), grown.rtt(x, y));
      EXPECT_DOUBLE_EQ(reserved.loss(x, y), grown.loss(x, y));
      EXPECT_DOUBLE_EQ(reserved.loaded_loss(x, y), grown.loaded_loss(x, y));
    }
  EXPECT_THROW(reserved.rtt(0, 5), std::out_of_range);
}

TEST(Topology, RejectsBadPathParams) {
  Topology t;
  const HostId a = t.add_host(make_host("a"));
  const HostId b = t.add_host(make_host("b"));
  EXPECT_THROW(t.set_path(a, b, -1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(t.set_path(a, b, 1.0, 1.0), std::invalid_argument);
}

TEST(Table1Hosts, MatchesPaperInventory) {
  const Topology t = make_table1_hosts();
  ASSERT_EQ(t.host_count(), 5u);
  // Table 1 "BW (measured)" row.
  EXPECT_NEAR(to_mbit(t.host(t.find("US-SW")).nic_down_bits), 954, 1);
  EXPECT_NEAR(to_mbit(t.host(t.find("US-NW")).nic_down_bits), 946, 1);
  EXPECT_NEAR(to_mbit(t.host(t.find("US-E")).nic_down_bits), 941, 1);
  EXPECT_NEAR(to_mbit(t.host(t.find("IN")).nic_down_bits), 1076, 1);
  EXPECT_NEAR(to_mbit(t.host(t.find("NL")).nic_down_bits), 1611, 1);
  // Table 1 RTT row (seconds).
  const HostId us_sw = t.find("US-SW");
  EXPECT_DOUBLE_EQ(t.rtt(us_sw, t.find("US-NW")), 0.040);
  EXPECT_DOUBLE_EQ(t.rtt(us_sw, t.find("US-E")), 0.062);
  EXPECT_DOUBLE_EQ(t.rtt(us_sw, t.find("IN")), 0.210);
  EXPECT_DOUBLE_EQ(t.rtt(us_sw, t.find("NL")), 0.137);
  // Table 1 CPU cores and virtualization.
  EXPECT_EQ(t.host(t.find("US-E")).cpu_cores, 12);
  EXPECT_FALSE(t.host(t.find("US-E")).virtual_host);
  EXPECT_TRUE(t.host(t.find("IN")).virtual_host);
  EXPECT_FALSE(t.host(t.find("US-E")).datacenter);  // residential
}

TEST(Table1Hosts, LoadedLossExceedsCleanLoss) {
  const Topology t = make_table1_hosts();
  const HostId us_sw = t.find("US-SW");
  for (const auto& name : {"US-NW", "US-E", "IN", "NL"}) {
    const HostId h = t.find(name);
    EXPECT_GT(t.loaded_loss(us_sw, h), t.loss(us_sw, h));
  }
}

TEST(LabPair, TenGigLowLatency) {
  const Topology t = make_lab_pair();
  ASSERT_EQ(t.host_count(), 2u);
  EXPECT_DOUBLE_EQ(t.host(0).nic_up_bits, gbit(10));
  EXPECT_DOUBLE_EQ(t.rtt(0, 1), 0.00013);
  EXPECT_DOUBLE_EQ(t.loss(0, 1), 0.0);
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(mbit(250), 250e6);
  EXPECT_DOUBLE_EQ(gbit(1), 1e9);
  EXPECT_DOUBLE_EQ(to_mbit(5e8), 500);
  EXPECT_DOUBLE_EQ(kib(50), 51200);
  EXPECT_DOUBLE_EQ(mib(1), 1048576);
  EXPECT_DOUBLE_EQ(bytes_from_bits(80), 10);
  EXPECT_DOUBLE_EQ(bits_from_bytes(10), 80);
}

}  // namespace
}  // namespace flashflow::net
