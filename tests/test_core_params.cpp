#include "core/params.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace flashflow::core {
namespace {

TEST(Params, DefaultsValidate) {
  EXPECT_NO_THROW(Params{}.validate());
}

TEST(Params, RejectsNonPositiveSockets) {
  Params p;
  p.sockets = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.sockets = -160;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Params, RejectsNonPositiveMultiplier) {
  Params p;
  p.multiplier = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.multiplier = -2.25;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Params, RejectsNonPositiveSlotSeconds) {
  Params p;
  p.slot_seconds = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.slot_seconds = -30;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Params, RejectsEpsilon1AtOrAboveOne) {
  Params p;
  p.epsilon1 = 1.0;  // excess factor divides by 1 - eps1
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.epsilon1 = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.epsilon1 = -0.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.epsilon1 = 0.999;
  EXPECT_NO_THROW(p.validate());
}

TEST(Params, RejectsNegativeEpsilon2) {
  Params p;
  p.epsilon2 = -0.05;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Params, RejectsRatioAtOrAboveOne) {
  Params p;
  p.ratio = 1.0;  // background clamp divides by 1 - r
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.ratio = -0.25;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.ratio = 0.0;
  EXPECT_NO_THROW(p.validate());
}

TEST(Params, RejectsBadCheckProbabilityAndPeriod) {
  Params p;
  p.check_probability = -1e-5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.check_probability = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = Params{};
  p.period = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace flashflow::core
