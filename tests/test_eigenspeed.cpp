#include "eigenspeed/eigenspeed.h"

#include <gtest/gtest.h>

#include <numeric>

#include "net/units.h"

namespace flashflow::eigenspeed {
namespace {

std::vector<double> make_caps(int n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<double> caps;
  for (int i = 0; i < n; ++i)
    caps.push_back(rng.uniform(net::mbit(10), net::mbit(400)));
  return caps;
}

TEST(ObservationMatrix, BoundsChecked) {
  ObservationMatrix m(3);
  m.set(1, 2, 5.0);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 5.0);
  EXPECT_THROW(m.at(3, 0), std::out_of_range);
  EXPECT_THROW(m.set(0, 3, 1.0), std::out_of_range);
  EXPECT_THROW(ObservationMatrix(0), std::invalid_argument);
}

TEST(EigenSpeed, HonestWeightsCorrelateWithCapacity) {
  const auto caps = make_caps(40, 1);
  sim::Rng rng(2);
  const auto obs = honest_observations(caps, 0.1, rng);
  std::vector<bool> trusted(caps.size(), false);
  for (int i = 0; i < 8; ++i) trusted[static_cast<std::size_t>(i)] = true;
  const auto w = compute_weights(obs, trusted, {});
  // Weights sum to 1 and the largest-capacity relay outranks the smallest.
  EXPECT_NEAR(std::accumulate(w.begin(), w.end(), 0.0), 1.0, 1e-9);
  const auto max_cap =
      std::max_element(caps.begin(), caps.end()) - caps.begin();
  const auto min_cap =
      std::min_element(caps.begin(), caps.end()) - caps.begin();
  EXPECT_GT(w[static_cast<std::size_t>(max_cap)],
            w[static_cast<std::size_t>(min_cap)]);
}

TEST(EigenSpeed, RequiresTrustedRelays) {
  const auto caps = make_caps(10, 3);
  sim::Rng rng(4);
  const auto obs = honest_observations(caps, 0.1, rng);
  const std::vector<bool> none(caps.size(), false);
  EXPECT_THROW(compute_weights(obs, none, {}), std::invalid_argument);
}

TEST(EigenSpeed, CollusionInflatesWeights) {
  const auto caps = make_caps(50, 5);
  const std::vector<std::size_t> colluders = {45, 46, 47, 48, 49};
  const double advantage =
      collusion_advantage(caps, colluders, 100.0, 0.2, {}, 6);
  EXPECT_GT(advantage, 2.0);   // the attack pays off
  EXPECT_LT(advantage, 60.0);  // but row normalization bounds it
}

TEST(EigenSpeed, MoreInflationMoreAdvantage) {
  const auto caps = make_caps(50, 7);
  const std::vector<std::size_t> colluders = {0, 1};
  const double low = collusion_advantage(caps, colluders, 5.0, 0.2, {}, 8);
  const double high =
      collusion_advantage(caps, colluders, 200.0, 0.2, {}, 8);
  EXPECT_GT(high, low);
}

TEST(EigenSpeed, LiarDetectionFlagsColluders) {
  const auto caps = make_caps(40, 9);
  sim::Rng rng(10);
  auto obs = honest_observations(caps, 0.1, rng);
  const std::vector<std::size_t> colluders = {35, 36, 37};
  apply_collusion(obs, colluders, 500.0);
  std::vector<bool> trusted(caps.size(), false);
  for (int i = 0; i < 8; ++i) trusted[static_cast<std::size_t>(i)] = true;
  const auto w = compute_weights(obs, trusted, {});
  const auto liars = detect_liars(obs, w, trusted, {});
  int flagged_colluders = 0;
  int flagged_honest = 0;
  for (std::size_t i = 0; i < caps.size(); ++i) {
    const bool is_colluder =
        std::find(colluders.begin(), colluders.end(), i) != colluders.end();
    if (liars[i] && is_colluder) ++flagged_colluders;
    if (liars[i] && !is_colluder) ++flagged_honest;
  }
  EXPECT_GE(flagged_colluders, 2);  // most colluders caught
  EXPECT_LE(flagged_honest, 2);     // few false positives
}

TEST(EigenSpeed, HonestNetworkNoLiarsFlagged) {
  const auto caps = make_caps(30, 11);
  sim::Rng rng(12);
  const auto obs = honest_observations(caps, 0.1, rng);
  std::vector<bool> trusted(caps.size(), false);
  for (int i = 0; i < 6; ++i) trusted[static_cast<std::size_t>(i)] = true;
  const auto w = compute_weights(obs, trusted, {});
  const auto liars = detect_liars(obs, w, trusted, {});
  int flagged = 0;
  for (const bool f : liars)
    if (f) ++flagged;
  EXPECT_LE(flagged, 1);
}

}  // namespace
}  // namespace flashflow::eigenspeed
