// Documentation staleness tests.
//
// docs/scenario-reference.md claims to document every scenario-file key.
// That claim is only worth something if it is enforced: this suite
// serializes fully-populated specs for all three population variants
// (plus every optional section) and fails if any emitted key is missing
// from the page — so adding a key without documenting it breaks the
// build, not a user. A second test keeps the relative links inside
// docs/ and README.md pointing at files that exist.
//
// FLASHFLOW_REPO_DIR is injected by CMake so the suite finds the
// checked-in markdown from any build directory.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/scenario.h"
#include "scenario/serialize.h"

namespace flashflow {
namespace {

namespace fs = std::filesystem;

fs::path repo_dir() { return fs::path(FLASHFLOW_REPO_DIR); }

std::string read_file(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Specs that together exercise every branch of serialize_scenario():
/// all three populations, topology, speedtest, faults, team,
/// adversaries, background and params sections.
std::vector<scenario::ScenarioSpec> fully_populated_specs() {
  std::vector<scenario::ScenarioSpec> specs;

  {
    scenario::ScenarioSpec spec;
    scenario::Table1PopulationSpec table1;
    table1.rate_limit_mbit = {10, 25};
    table1.background_mbit = 5;
    table1.prior_mbit = 20;
    spec.population = table1;
    spec.name = "docs-table1";
    specs.push_back(std::move(spec));
  }
  {
    scenario::ScenarioSpec spec;
    spec.population = scenario::ShadowPopulationSpec{};
    spec.name = "docs-shadow";
    specs.push_back(std::move(spec));
  }
  {
    scenario::ScenarioSpec spec;
    scenario::SyntheticPopulationSpec synthetic;
    synthetic.relays = 40;
    synthetic.prior_fraction = 0.8;
    spec.population = synthetic;
    spec.team.capacity_bits = {8e8, 8e8, 8e8};
    spec.topology.path_model = scenario::TopologySpec::PathModelKind::kTiered;
    spec.topology.tiers = 2;
    spec.topology.tier_rtt_s = {0.02, 0.065, 0.02};
    spec.topology.rtt_jitter = 0.1;
    spec.speedtest = scenario::SpeedTestWindow{};
    spec.faults.measurer_crash = 0.01;
    spec.faults.relay_disconnect = 0.01;
    spec.faults.report_drop = 0.01;
    spec.faults.report_truncate = 0.01;
    spec.faults.slot_timeout = 0.01;
    spec.adversaries.liar_fraction = 0.1;
    spec.adversaries.forger_fraction = 0.1;
    spec.background.enabled = true;
    spec.background.utilization_mean = 0.2;
    spec.background.utilization_sd = 0.1;
    spec.name = "docs-synthetic";
    specs.push_back(std::move(spec));
  }
  return specs;
}

/// Keys a serialized scenario file emits: the text before ':' on every
/// non-comment, non-empty line.
void serialized_keys(const scenario::ScenarioSpec& spec,
                     std::vector<std::string>& keys) {
  std::istringstream lines(scenario::serialize_scenario(spec));
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t colon = line.find(':');
    ASSERT_NE(colon, std::string::npos) << "key-less line: " << line;
    keys.push_back(line.substr(0, colon));
  }
}

TEST(DocsStaleness, ScenarioReferenceDocumentsEverySerializedKey) {
  const std::string doc =
      read_file(repo_dir() / "docs" / "scenario-reference.md");
  ASSERT_FALSE(doc.empty());

  int checked = 0;
  for (const scenario::ScenarioSpec& spec : fully_populated_specs()) {
    std::vector<std::string> keys;
    serialized_keys(spec, keys);
    ASSERT_FALSE(keys.empty());
    for (const std::string& key : keys) {
      // Keys are referenced in backticks so a prose mention of a word
      // like "name" cannot mask an undocumented `faults.name`.
      EXPECT_NE(doc.find("`" + key + "`"), std::string::npos)
          << "scenario key '" << key
          << "' is serialized by src/scenario/serialize.cpp but not "
             "documented in docs/scenario-reference.md";
      ++checked;
    }
  }
  // All three populations plus the optional sections: a meaningful sweep,
  // not an accidentally-empty loop.
  EXPECT_GE(checked, 50);
}

TEST(DocsStaleness, RelativeLinksInDocsResolve) {
  std::vector<fs::path> pages = {repo_dir() / "README.md"};
  for (const fs::directory_entry& entry :
       fs::directory_iterator(repo_dir() / "docs"))
    if (entry.path().extension() == ".md") pages.push_back(entry.path());
  ASSERT_GE(pages.size(), 5u) << "docs/ tree is missing pages";

  const std::regex link("\\]\\(([^)]+)\\)");
  int checked = 0;
  for (const fs::path& page : pages) {
    const std::string text = read_file(page);
    for (std::sregex_iterator it(text.begin(), text.end(), link), end;
         it != end; ++it) {
      std::string target = (*it)[1].str();
      if (target.rfind("http", 0) == 0) continue;  // external
      const std::size_t fragment = target.find('#');
      if (fragment != std::string::npos) target.resize(fragment);
      if (target.empty()) continue;  // same-page anchor
      EXPECT_TRUE(fs::exists(page.parent_path() / target))
          << page.filename() << " links to missing " << target;
      ++checked;
    }
  }
  EXPECT_GE(checked, 10);
}

TEST(DocsStaleness, DeterminismPageNamesTheSuppressionRules) {
  // ffcheck's FF02 message points readers at docs/determinism.md; the
  // page must keep explaining the suppression format and the single
  // sanctioned ND03 site.
  const std::string doc = read_file(repo_dir() / "docs" / "determinism.md");
  EXPECT_NE(doc.find("FFCHECK(ND03)"), std::string::npos);
  EXPECT_NE(doc.find("telemetry/clock.cpp"), std::string::npos);
  EXPECT_NE(doc.find("FF02"), std::string::npos);
}

}  // namespace
}  // namespace flashflow
