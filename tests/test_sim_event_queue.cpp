#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace flashflow::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(30, [&] { fired.push_back(3); });
  q.schedule(10, [&] { fired.push_back(1); });
  q.schedule(20, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoForEqualTimes) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) q.schedule(5, [&fired, i] { fired.push_back(i); });
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(10, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelUnknownIdIsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(42));
}

TEST(EventQueue, CancelTwiceIsFalse) {
  EventQueue q;
  const EventId id = q.schedule(10, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(1, [] {});
  q.schedule(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.schedule(1, [] {});
  q.schedule(5, [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), 5);
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), std::logic_error);
  EXPECT_THROW(q.next_time(), std::logic_error);
}

TEST(EventQueue, PopReturnsTimeAndId) {
  EventQueue q;
  const EventId id = q.schedule(17, [] {});
  const auto ev = q.pop();
  EXPECT_EQ(ev.time, 17);
  EXPECT_EQ(ev.id, id);
}

TEST(EventQueue, ManyEventsStressOrder) {
  EventQueue q;
  std::vector<SimTime> fired;
  for (int i = 1000; i > 0; --i)
    q.schedule(i, [&fired, i] { fired.push_back(i); });
  while (!q.empty()) q.pop().fn();
  for (std::size_t i = 1; i < fired.size(); ++i)
    EXPECT_LE(fired[i - 1], fired[i]);
}

}  // namespace
}  // namespace flashflow::sim
