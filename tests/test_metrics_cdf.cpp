#include "metrics/cdf.h"

#include <gtest/gtest.h>

#include <vector>

namespace flashflow::metrics {
namespace {

Cdf make_cdf() {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 5.0};
  return Cdf({v.data(), v.size()});
}

TEST(Cdf, FractionAtMost) {
  Cdf c = make_cdf();
  EXPECT_DOUBLE_EQ(c.fraction_at_most(0.5), 0.0);
  EXPECT_DOUBLE_EQ(c.fraction_at_most(1.0), 0.2);
  EXPECT_DOUBLE_EQ(c.fraction_at_most(3.5), 0.6);
  EXPECT_DOUBLE_EQ(c.fraction_at_most(5.0), 1.0);
}

TEST(Cdf, QuantileEndpoints) {
  Cdf c = make_cdf();
  EXPECT_DOUBLE_EQ(c.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(c.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(c.quantile(0.5), 3.0);
}

TEST(Cdf, QuantileRejectsOutOfRange) {
  Cdf c = make_cdf();
  EXPECT_THROW(c.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(c.quantile(1.1), std::invalid_argument);
}

TEST(Cdf, FractionWithin) {
  Cdf c = make_cdf();
  EXPECT_DOUBLE_EQ(c.fraction_within(2.0, 4.0), 0.6);
  EXPECT_DOUBLE_EQ(c.fraction_within(0.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(c.fraction_within(6.0, 7.0), 0.0);
}

TEST(Cdf, AddThenQuery) {
  Cdf c;
  c.add(10.0);
  c.add(20.0);
  EXPECT_DOUBLE_EQ(c.fraction_at_most(15.0), 0.5);
  c.add(12.0);  // unsorted insert re-finalizes
  EXPECT_NEAR(c.fraction_at_most(15.0), 2.0 / 3.0, 1e-12);
}

TEST(Cdf, SeriesSpansRangeAndIsMonotone) {
  Cdf c = make_cdf();
  const auto pts = c.series(9);
  ASSERT_EQ(pts.size(), 9u);
  EXPECT_DOUBLE_EQ(pts.front().x, 1.0);
  EXPECT_DOUBLE_EQ(pts.back().x, 5.0);
  EXPECT_DOUBLE_EQ(pts.back().fraction, 1.0);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LE(pts[i - 1].x, pts[i].x);
    EXPECT_LE(pts[i - 1].fraction, pts[i].fraction);
  }
}

TEST(Cdf, EmptyThrows) {
  Cdf c;
  EXPECT_THROW(c.fraction_at_most(1.0), std::logic_error);
  EXPECT_THROW(c.quantile(0.5), std::logic_error);
  EXPECT_THROW(c.series(3), std::logic_error);
}

TEST(Cdf, SummaryMentionsCount) {
  Cdf c = make_cdf();
  EXPECT_NE(c.summary().find("n=5"), std::string::npos);
}

}  // namespace
}  // namespace flashflow::metrics
