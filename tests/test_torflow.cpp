#include "torflow/torflow.h"

#include <gtest/gtest.h>

#include <cmath>

#include "net/units.h"

namespace flashflow::torflow {
namespace {

std::vector<TorFlowRelay> make_network(int n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<TorFlowRelay> relays;
  for (int i = 0; i < n; ++i) {
    TorFlowRelay r;
    r.fingerprint = "r";
    r.fingerprint += std::to_string(i);
    r.true_capacity_bits = rng.uniform(net::mbit(5), net::mbit(500));
    r.advertised_bits = r.true_capacity_bits * rng.uniform(0.4, 0.9);
    r.utilization = rng.uniform(0.2, 0.8);
    relays.push_back(std::move(r));
  }
  return relays;
}

TEST(TorFlow, ScanProducesWeightsOnly) {
  TorFlow tf({}, 1);
  const auto relays = make_network(20, 2);
  const auto file = tf.scan(relays);
  ASSERT_EQ(file.size(), relays.size());
  for (const auto& e : file) {
    EXPECT_GT(e.weight, 0.0);
    EXPECT_DOUBLE_EQ(e.capacity_bits, 0.0);  // Table 2: no capacity values
  }
}

TEST(TorFlow, EmptyScan) {
  TorFlow tf({}, 1);
  EXPECT_TRUE(tf.scan({}).empty());
}

TEST(TorFlow, WeightsTrackAdvertisedTimesRatio) {
  // With noise suppressed, weight = advertised * speed/mean_speed.
  TorFlowParams params;
  params.speed_noise_sigma = 1e-6;
  TorFlow tf(params, 3);
  std::vector<TorFlowRelay> relays = {
      {"a", net::mbit(100), net::mbit(80), 0.5},
      {"b", net::mbit(100), net::mbit(80), 0.5},
  };
  const auto file = tf.scan(relays);
  // Identical relays: ratios ~1, weights ~advertised.
  EXPECT_NEAR(file[0].weight, net::mbit(80), net::mbit(2));
  EXPECT_NEAR(file[1].weight, net::mbit(80), net::mbit(2));
}

TEST(TorFlow, PickFileBytesIsPowerOfTwoKiB) {
  TorFlow tf({}, 4);
  const double bytes = tf.pick_file_bytes(net::mbit(10));
  const double kib = bytes / 1024.0;
  EXPECT_GE(kib, 16.0);
  EXPECT_LE(kib, 65536.0);
  double e = std::log2(kib);
  EXPECT_NEAR(e, std::round(e), 1e-9);
}

TEST(TorFlow, FasterRelaysGetBiggerFiles) {
  TorFlow tf({}, 5);
  EXPECT_GT(tf.pick_file_bytes(net::mbit(100)),
            tf.pick_file_bytes(net::mbit(1)));
}

TEST(TorFlow, ScanDurationDaysScale) {
  // Table 2: a single 1 Gbit/s scanner needs >= 2 days for ~6500 relays.
  TorFlow tf({}, 6);
  const auto relays = make_network(6500, 7);
  const double days = tf.scan_duration_days(relays);
  EXPECT_GT(days, 1.5);
  EXPECT_LT(days, 6.0);
}

TEST(TorFlow, InflationAttackScalesWithLie) {
  // The headline vulnerability: self-reported bandwidth lets a relay
  // inflate its weight by roughly the lie factor (89x-177x demonstrated).
  // On a large network the attacker's honest share is tiny, so the
  // normalized advantage approaches the lie factor itself.
  const auto relays = make_network(1000, 8);
  const double adv177 =
      advertised_bandwidth_attack_advantage(relays, 0, 177.0, {}, 9);
  EXPECT_GT(adv177, 80.0);
  const double adv10 =
      advertised_bandwidth_attack_advantage(relays, 0, 10.0, {}, 9);
  EXPECT_GT(adv10, 5.0);
  EXPECT_LT(adv10, adv177);
}

TEST(TorFlow, AttackIndexValidated) {
  const auto relays = make_network(5, 10);
  EXPECT_THROW(
      advertised_bandwidth_attack_advantage(relays, 99, 2.0, {}, 1),
      std::out_of_range);
}

}  // namespace
}  // namespace flashflow::torflow
