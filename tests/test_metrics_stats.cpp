#include "metrics/stats.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace flashflow::metrics {
namespace {

const std::vector<double> kSample = {4.0, 1.0, 3.0, 2.0, 5.0};

TEST(Stats, Mean) { EXPECT_DOUBLE_EQ(mean(as_span(kSample)), 3.0); }

TEST(Stats, MedianOdd) { EXPECT_DOUBLE_EQ(median(as_span(kSample)), 3.0); }

TEST(Stats, MedianEvenAveragesMiddle) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 10.0};
  EXPECT_DOUBLE_EQ(median(as_span(v)), 2.5);
}

TEST(Stats, MedianSingleton) {
  const std::vector<double> v = {7.5};
  EXPECT_DOUBLE_EQ(median(as_span(v)), 7.5);
}

TEST(Stats, StdevOfConstantIsZero) {
  const std::vector<double> v = {2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(stdev(as_span(v)), 0.0);
}

TEST(Stats, StdevKnownValue) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(stdev(as_span(v)), 2.0);  // classic example
}

TEST(Stats, RelativeStdev) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(relative_stdev(as_span(v)), 2.0 / 5.0);
}

TEST(Stats, RelativeStdevRejectsZeroMean) {
  const std::vector<double> v = {-1.0, 1.0};
  EXPECT_THROW(relative_stdev(as_span(v)), std::invalid_argument);
}

TEST(Stats, PercentileEndpoints) {
  EXPECT_DOUBLE_EQ(percentile(as_span(kSample), 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(as_span(kSample), 100.0), 5.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(as_span(v), 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(as_span(v), 50.0), 5.0);
}

TEST(Stats, PercentileRejectsBadQ) {
  EXPECT_THROW(percentile(as_span(kSample), -1.0), std::invalid_argument);
  EXPECT_THROW(percentile(as_span(kSample), 101.0), std::invalid_argument);
}

TEST(Stats, MinMax) {
  EXPECT_DOUBLE_EQ(min_value(as_span(kSample)), 1.0);
  EXPECT_DOUBLE_EQ(max_value(as_span(kSample)), 5.0);
}

TEST(Stats, EmptyThrows) {
  const std::vector<double> empty;
  EXPECT_THROW(mean(as_span(empty)), std::invalid_argument);
  EXPECT_THROW(median(as_span(empty)), std::invalid_argument);
  EXPECT_THROW(stdev(as_span(empty)), std::invalid_argument);
  EXPECT_THROW(min_value(as_span(empty)), std::invalid_argument);
  EXPECT_THROW(max_value(as_span(empty)), std::invalid_argument);
  EXPECT_THROW(box_stats(as_span(empty)), std::invalid_argument);
}

TEST(Stats, BoxStatsOrdering) {
  std::vector<double> v;
  for (int i = 0; i <= 100; ++i) v.push_back(static_cast<double>(i));
  const BoxStats b = box_stats(as_span(v));
  EXPECT_DOUBLE_EQ(b.p5, 5.0);
  EXPECT_DOUBLE_EQ(b.q1, 25.0);
  EXPECT_DOUBLE_EQ(b.median, 50.0);
  EXPECT_DOUBLE_EQ(b.q3, 75.0);
  EXPECT_DOUBLE_EQ(b.p95, 95.0);
  EXPECT_DOUBLE_EQ(b.mean, 50.0);
  EXPECT_LE(b.p5, b.q1);
  EXPECT_LE(b.q1, b.median);
  EXPECT_LE(b.median, b.q3);
  EXPECT_LE(b.q3, b.p95);
}

}  // namespace
}  // namespace flashflow::metrics
