// Tests for the extension modules: measurement strategies (App E.3/E.4),
// dynamic weights (§9), family/Sybil handling (§5), and multi-BWAuth
// deployment (§4.3).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/deployment.h"
#include "core/dynamic_weights.h"
#include "core/family.h"
#include "core/strategies.h"
#include "net/units.h"
#include "tor/cpu_model.h"

namespace flashflow::core {
namespace {

// ------------------------------------------------------------- strategies

TEST(Strategies, MedianOfPrefix) {
  const std::vector<double> samples = {1, 2, 3, 4, 100, 100};
  EXPECT_DOUBLE_EQ(median_strategy(samples, 3), 2.0);
  EXPECT_DOUBLE_EQ(median_strategy(samples, 6), 3.5);
  EXPECT_THROW(median_strategy(samples, 0), std::invalid_argument);
  EXPECT_THROW(median_strategy(samples, 7), std::invalid_argument);
}

TEST(Strategies, LeadTimeSkipsSlowStart) {
  // A slow first two seconds then steady 10s.
  const std::vector<double> samples = {1, 2, 10, 10, 10, 10};
  EXPECT_DOUBLE_EQ(lead_time_strategy(samples, 2, 6), 10.0);
  // Appendix E.4: equivalent to a shorter simple median of the tail.
  EXPECT_DOUBLE_EQ(lead_time_strategy(samples, 0, 6),
                   median_strategy(samples, 6));
  EXPECT_THROW(lead_time_strategy(samples, 3, 3), std::invalid_argument);
}

TEST(Strategies, DynamicStopsOnStableWindows) {
  // Windows of 5: medians 10, 10 -> converges after 10 seconds.
  std::vector<double> samples(20, 10.0);
  const auto r = dynamic_strategy(samples, 5, 0.05);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.seconds_used, 10);
  EXPECT_DOUBLE_EQ(r.estimate_bits, 10.0);
}

TEST(Strategies, DynamicRunsOutWithoutConvergence) {
  // Monotone growth never stabilizes within tolerance.
  std::vector<double> samples;
  for (int i = 0; i < 20; ++i) samples.push_back(std::pow(2.0, i));
  const auto r = dynamic_strategy(samples, 5, 0.01);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.seconds_used, 20);
  EXPECT_THROW(dynamic_strategy(samples, 0, 0.1), std::invalid_argument);
}

// --------------------------------------------------------- dynamic weights

tor::BandwidthFile ff_file() {
  return {{"a", net::mbit(100), net::mbit(100)},
          {"b", net::mbit(200), net::mbit(200)},
          {"c", net::mbit(50), net::mbit(50)}};
}

TEST(DynamicWeights, UtilizationReducesWeight) {
  const std::vector<DynamicSignal> signals = {{"a", 0.5}};
  const auto adjusted = apply_dynamic_adjustments(ff_file(), signals);
  // w = cap * (1 - 0.8*0.5) = 0.6 * cap
  EXPECT_NEAR(adjusted[0].weight, net::mbit(60), 1.0);
  EXPECT_DOUBLE_EQ(adjusted[1].weight, net::mbit(200));  // no signal
  EXPECT_TRUE(adjustment_is_sound(ff_file(), adjusted));
}

TEST(DynamicWeights, FloorPreventsStarvation) {
  const std::vector<DynamicSignal> signals = {{"a", 1.0}};
  const auto adjusted = apply_dynamic_adjustments(ff_file(), signals);
  EXPECT_NEAR(adjusted[0].weight, net::mbit(20), 1.0);  // 0.2 floor
}

TEST(DynamicWeights, LyingCannotInflate) {
  // §9's security property: reported utilization outside [0,1] (or any
  // value at all) can only reduce the weight below the secure ceiling.
  for (const double lie : {-5.0, 0.0, 0.3, 2.0, 1e9}) {
    const std::vector<DynamicSignal> signals = {{"b", lie}};
    const auto adjusted = apply_dynamic_adjustments(ff_file(), signals);
    EXPECT_LE(adjusted[1].weight, net::mbit(200) + 1e-9);
    EXPECT_TRUE(adjustment_is_sound(ff_file(), adjusted));
  }
}

TEST(DynamicWeights, CapacitiesUntouched) {
  const std::vector<DynamicSignal> signals = {{"a", 0.9}, {"c", 0.2}};
  const auto adjusted = apply_dynamic_adjustments(ff_file(), signals);
  for (std::size_t i = 0; i < adjusted.size(); ++i)
    EXPECT_DOUBLE_EQ(adjusted[i].capacity_bits, ff_file()[i].capacity_bits);
}

TEST(DynamicWeights, RejectsBadParams) {
  DynamicWeightParams bad;
  bad.beta = 1.5;
  EXPECT_THROW(apply_dynamic_adjustments(ff_file(), {}, bad),
               std::invalid_argument);
}

// ------------------------------------------------------------------ family

tor::RelayModel family_relay(const std::string& name, double machine_mbit) {
  tor::RelayModel relay;
  relay.name = name;
  // The relay's own software could forward the whole machine capacity.
  relay.nic_up_bits = relay.nic_down_bits = net::mbit(machine_mbit);
  relay.cpu.base_bits =
      net::mbit(machine_mbit) * (1.0 + relay.cpu.per_socket_overhead * 80);
  return relay;
}

// ConcurrentTarget borrows its RelayModel: `relay` must outlive the target.
SlotRunner::ConcurrentTarget family_member(const net::Topology& topo,
                                           const tor::RelayModel& relay) {
  SlotRunner::ConcurrentTarget t;
  t.relay = &relay;
  t.host = topo.find("US-SW");  // same machine: shared host NIC
  t.team = {{topo.find("US-E"), net::mbit(700), 40},
            {topo.find("NL"), net::mbit(700), 40}};
  return t;
}

TEST(Family, CoLocatedSybilsDetected) {
  const auto topo = net::make_table1_hosts();
  Params params;
  // Two Sybils on one 954 Mbit/s machine; measured separately, each had
  // demonstrated (nearly) the full machine: individual estimates ~850.
  const tor::RelayModel sybil_a = family_relay("sybil-a", 950);
  const tor::RelayModel sybil_b = family_relay("sybil-b", 950);
  std::vector<SlotRunner::ConcurrentTarget> members = {
      family_member(topo, sybil_a), family_member(topo, sybil_b)};
  const std::vector<double> individual = {net::mbit(850), net::mbit(850)};
  const auto result =
      measure_family(topo, params, members, individual, {}, 5);
  // Simultaneously they share the host NIC: the combined estimate is the
  // machine capacity, far below 1700.
  EXPECT_TRUE(result.co_located);
  EXPECT_LT(result.combined_bits, net::mbit(1100));
  EXPECT_NEAR(result.per_member_capacity_bits, result.combined_bits / 2,
              1.0);
}

TEST(Family, IndependentRelaysNotFlagged) {
  const auto topo = net::make_table1_hosts();
  Params params;
  // Two genuinely separate machines (different hosts).
  const tor::RelayModel relay_a = family_relay("relay-a", 400);
  const tor::RelayModel relay_b = family_relay("relay-b", 400);
  std::vector<SlotRunner::ConcurrentTarget> members = {
      family_member(topo, relay_a), family_member(topo, relay_b)};
  members[1].host = topo.find("US-NW");  // different machine
  const std::vector<double> individual = {net::mbit(380), net::mbit(380)};
  const auto result =
      measure_family(topo, params, members, individual, {}, 6);
  EXPECT_FALSE(result.co_located);
  EXPECT_DOUBLE_EQ(result.per_member_capacity_bits, 0.0);
}

TEST(Family, RejectsBadInputs) {
  const auto topo = net::make_table1_hosts();
  Params params;
  const std::vector<double> one = {1.0};
  EXPECT_THROW(measure_family(topo, params, {}, one, {}, 1),
               std::invalid_argument);
}

// -------------------------------------------------------------- deployment

TEST(Deployment, MedianAggregationAcrossBWAuths) {
  const auto topo = net::make_table1_hosts();
  Params params;
  std::vector<net::HostId> team_hosts = {topo.find("US-E"),
                                         topo.find("NL")};
  std::vector<RelayTarget> targets;
  for (const double cap : {60.0, 150.0}) {
    RelayTarget t;
    t.model.name = "relay-" + std::to_string(static_cast<int>(cap));
    t.model.nic_up_bits = t.model.nic_down_bits = net::mbit(954);
    t.model.rate_limit_bits = net::mbit(cap);
    t.model.cpu = tor::CpuModel::us_sw();
    t.host = topo.find("US-SW");
    t.previous_estimate_bits = net::mbit(cap);
    targets.push_back(std::move(t));
  }

  const auto result = run_deployment(topo, params, team_hosts, targets,
                                     /*n_bwauths=*/3, /*seed=*/0xFEED);
  ASSERT_EQ(result.per_bwauth_files.size(), 3u);
  ASSERT_EQ(result.consensus.entries.size(), 2u);
  ASSERT_EQ(result.median_capacities_bits.size(), 2u);
  // Median capacities approximate the (shaved) ground truths.
  EXPECT_NEAR(net::to_mbit(result.median_capacities_bits[0]),
              net::to_mbit(targets[0].model.ground_truth(params.sockets)),
              12);
  EXPECT_NEAR(net::to_mbit(result.median_capacities_bits[1]),
              net::to_mbit(targets[1].model.ground_truth(params.sockets)),
              25);
  // The consensus weight for each relay is the median of the three files.
  for (const auto& entry : result.consensus.entries) {
    std::vector<double> weights;
    for (const auto& file : result.per_bwauth_files)
      for (const auto& e : file)
        if (e.fingerprint == entry.fingerprint)
          weights.push_back(e.weight);
    std::sort(weights.begin(), weights.end());
    EXPECT_DOUBLE_EQ(entry.weight, weights[1]);
  }
}

TEST(Deployment, BWAuthsDrawIndependentSubstreams) {
  const auto topo = net::make_table1_hosts();
  Params params;
  std::vector<net::HostId> team_hosts = {topo.find("NL")};
  std::vector<RelayTarget> targets;
  RelayTarget t;
  t.model.name = "relay";
  t.model.nic_up_bits = t.model.nic_down_bits = net::mbit(954);
  t.model.rate_limit_bits = net::mbit(100);
  t.model.cpu = tor::CpuModel::us_sw();
  t.host = topo.find("US-SW");
  t.previous_estimate_bits = net::mbit(100);
  targets.push_back(std::move(t));

  const auto result =
      run_deployment(topo, params, team_hosts, targets, 3, 0xFACE);
  // Different BWAuths see different noise: estimates differ.
  const double a = result.per_bwauth_files[0][0].capacity_bits;
  const double b = result.per_bwauth_files[1][0].capacity_bits;
  EXPECT_NE(a, b);
  EXPECT_THROW(run_deployment(topo, params, team_hosts, targets, 0, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace flashflow::core
