// flashflow CLI usage-drift audit.
//
// The --help text and the argument parsers live in the same file but
// drift independently (PR 10 found `diff --quiet` parsed but
// undocumented). This suite pins them together from both directions
// using one flag table as the source of truth:
//
//   - every flag in the table appears in --help (documented),
//   - every `--flag` token printed by --help is in the table (no
//     documented-but-fictional flags),
//   - every value flag in the table is *recognized* by its subcommand:
//     invoked without a value it must die with "needs a value" — an
//     unknown flag dies with "unknown argument" instead — and every
//     switch must be consumed without an "unknown argument" complaint.
//
// Spawns the real binary (FLASHFLOW_CLI_BIN from CMake) via popen; no
// test touches the filesystem, so every invocation fails fast before
// any scenario is loaded or directory created.
#include <gtest/gtest.h>

#include <array>
#include <cctype>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include <sys/wait.h>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

RunResult run_cli(const std::string& args) {
  const std::string command =
      std::string(FLASHFLOW_CLI_BIN) + " " + args + " 2>&1";
  RunResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) {
    ADD_FAILURE() << "popen failed for: " << command;
    return result;
  }
  std::array<char, 4096> buffer;
  std::size_t n = 0;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0)
    result.output.append(buffer.data(), n);
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

struct SubcommandFlags {
  const char* name;
  std::vector<const char*> value_flags;  // --flag VALUE
  std::vector<const char*> switches;     // bare --flag
};

/// The source of truth both directions are checked against. A new CLI
/// flag must be added here (and to the usage text) or this suite fails.
const std::vector<SubcommandFlags>& cli_flags() {
  static const std::vector<SubcommandFlags> table = {
      {"run",
       {"--out", "--threads", "--seed", "--trace", "--metrics"},
       {"--force", "--quiet"}},
      {"plan", {}, {}},
      {"validate", {}, {}},
      {"sweep",
       {"--out", "--seeds", "--liars", "--forgers", "--team-sizes",
        "--jobs"},
       {"--force", "--quiet"}},
      {"diff", {}, {"--quiet"}},
  };
  return table;
}

TEST(CliUsage, HelpExitsZeroAndDocumentsEveryFlag) {
  const RunResult help = run_cli("--help");
  EXPECT_EQ(help.exit_code, 0);
  for (const SubcommandFlags& sub : cli_flags()) {
    EXPECT_NE(help.output.find(sub.name), std::string::npos)
        << "subcommand '" << sub.name << "' missing from --help";
    for (const char* flag : sub.value_flags)
      EXPECT_NE(help.output.find(flag), std::string::npos)
          << sub.name << " flag " << flag << " undocumented in --help";
    for (const char* flag : sub.switches)
      EXPECT_NE(help.output.find(flag), std::string::npos)
          << sub.name << " switch " << flag << " undocumented in --help";
  }
}

TEST(CliUsage, EveryDocumentedFlagIsKnown) {
  // The inverse direction: --help must not advertise flags the parsers
  // don't implement. Collect every --token from the usage text and
  // check it against the table.
  std::set<std::string> known = {"--help"};
  for (const SubcommandFlags& sub : cli_flags()) {
    for (const char* flag : sub.value_flags) known.insert(flag);
    for (const char* flag : sub.switches) known.insert(flag);
  }

  const RunResult help = run_cli("--help");
  const std::string& text = help.output;
  for (std::size_t pos = text.find("--"); pos != std::string::npos;
       pos = text.find("--", pos + 1)) {
    std::size_t end = pos + 2;
    while (end < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[end])) != 0 ||
            text[end] == '-'))
      ++end;
    const std::string flag = text.substr(pos, end - pos);
    if (flag == "--") continue;  // prose dashes
    EXPECT_TRUE(known.count(flag) > 0)
        << "--help documents " << flag
        << " but tests/test_cli_usage.cpp does not know it — either the "
           "usage text is stale or the flag table needs updating";
  }
}

TEST(CliUsage, NoArgumentsPrintsUsageAndExitsTwo) {
  const RunResult result = run_cli("");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("usage: flashflow"), std::string::npos);
}

TEST(CliUsage, UnknownCommandExitsTwo) {
  const RunResult result = run_cli("frobnicate");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("unknown command"), std::string::npos);
}

TEST(CliUsage, UnknownFlagsAreRejectedPerSubcommand) {
  // reject_leftovers() runs before any file or directory is touched, so
  // these invocations fail fast with "unknown argument".
  const std::vector<std::string> invocations = {
      "run scenario.yaml --out out --bogus",
      "plan scenario.yaml --bogus",
      "validate scenario.yaml --bogus",
      "sweep scenario.yaml --out out --bogus",
      "diff a b --bogus",
  };
  for (const std::string& invocation : invocations) {
    const RunResult result = run_cli(invocation);
    EXPECT_EQ(result.exit_code, 2) << invocation;
    EXPECT_NE(result.output.find("unknown argument '--bogus'"),
              std::string::npos)
        << invocation << " produced: " << result.output;
  }
}

TEST(CliUsage, EveryTableValueFlagIsRecognized) {
  // A recognized value flag with no value dies "needs a value"; an
  // unrecognized one would fall through to "unknown argument". One
  // death per (subcommand, flag) pair.
  for (const SubcommandFlags& sub : cli_flags()) {
    for (const char* flag : sub.value_flags) {
      // --out parses before the other flags and its absence is fatal, so
      // the probes for later flags carry a well-formed --out.
      const std::string prefix =
          std::string(flag) == "--out" ? " scenario.yaml "
                                       : " scenario.yaml --out outdir ";
      const RunResult result = run_cli(sub.name + prefix + flag);
      SCOPED_TRACE(std::string(sub.name) + " " + flag);
      EXPECT_EQ(result.exit_code, 2);
      EXPECT_NE(result.output.find(std::string(flag) + " needs a value"),
                std::string::npos)
          << "parser did not recognize " << flag << ": " << result.output;
    }
  }
}

TEST(CliUsage, EveryTableSwitchIsConsumed) {
  // Switches have no value to omit, so recognition is proven by the
  // *absence* of an "unknown argument" complaint: the invocation still
  // fails (missing/unreadable inputs) but for a reason past argument
  // parsing.
  const std::vector<std::string> invocations = {
      "run missing-scenario.yaml --out out --force --quiet",
      "sweep missing-scenario.yaml --out out --force --quiet",
      "diff missing-dir-a missing-dir-b --quiet",
  };
  for (const std::string& invocation : invocations) {
    const RunResult result = run_cli(invocation);
    SCOPED_TRACE(invocation);
    EXPECT_NE(result.exit_code, 0);
    EXPECT_EQ(result.output.find("unknown argument"), std::string::npos)
        << "a documented switch was not consumed: " << result.output;
  }
}

}  // namespace
