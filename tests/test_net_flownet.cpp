#include "net/flownet.h"

#include <gtest/gtest.h>

#include "net/units.h"
#include "sim/simulator.h"

namespace flashflow::net {
namespace {

struct FlowNetTest : ::testing::Test {
  sim::Simulator simu;
  FlowNet netw{simu};
};

TEST_F(FlowNetTest, SingleFlowUsesCapacity) {
  const ResourceId r = netw.add_resource("link", mbit(100));
  FlowNet::FlowSpec spec;
  spec.resources = {r};
  const FlowId f = netw.add_flow(std::move(spec));
  EXPECT_DOUBLE_EQ(netw.rate(f), mbit(100));
  simu.run_until(10 * sim::kSecond);
  // 100 Mbit/s for 10 s = 125 MB.
  EXPECT_NEAR(netw.bytes_transferred(f), 125e6, 1.0);
}

TEST_F(FlowNetTest, TwoFlowsShareFairly) {
  const ResourceId r = netw.add_resource("link", mbit(100));
  FlowNet::FlowSpec a, b;
  a.resources = {r};
  b.resources = {r};
  const FlowId fa = netw.add_flow(std::move(a));
  const FlowId fb = netw.add_flow(std::move(b));
  EXPECT_NEAR(netw.rate(fa), mbit(50), 1.0);
  EXPECT_NEAR(netw.rate(fb), mbit(50), 1.0);
}

TEST_F(FlowNetTest, RemovalRestoresRates) {
  const ResourceId r = netw.add_resource("link", mbit(100));
  FlowNet::FlowSpec a, b;
  a.resources = {r};
  b.resources = {r};
  const FlowId fa = netw.add_flow(std::move(a));
  const FlowId fb = netw.add_flow(std::move(b));
  netw.remove_flow(fb);
  EXPECT_DOUBLE_EQ(netw.rate(fa), mbit(100));
  EXPECT_FALSE(netw.is_live(fb));
  // Retired flow stats remain queryable.
  EXPECT_NO_THROW(netw.bytes_transferred(fb));
}

TEST_F(FlowNetTest, VolumeCompletesAtExactTime) {
  const ResourceId r = netw.add_resource("link", mbit(8));  // 1 MB/s
  FlowNet::FlowSpec spec;
  spec.resources = {r};
  spec.volume_bytes = 5e6;  // 5 seconds
  sim::SimTime completed_at = -1;
  spec.on_complete = [&](FlowId) { completed_at = simu.now(); };
  netw.add_flow(std::move(spec));
  simu.run();
  EXPECT_NEAR(sim::to_seconds(completed_at), 5.0, 0.001);
}

TEST_F(FlowNetTest, CompletionFreesCapacity) {
  const ResourceId r = netw.add_resource("link", mbit(8));
  FlowNet::FlowSpec finite, infinite;
  finite.resources = {r};
  finite.volume_bytes = 1e6;  // 2 s at half rate
  infinite.resources = {r};
  netw.add_flow(std::move(finite));
  const FlowId inf_flow = netw.add_flow(std::move(infinite));
  simu.run_until(10 * sim::kSecond);
  // First 2 s at 0.5 MB/s, remaining 8 s at 1 MB/s = 9 MB.
  EXPECT_NEAR(netw.bytes_transferred(inf_flow), 9e6, 1e4);
}

TEST_F(FlowNetTest, CompletionCallbackCanAddFlows) {
  const ResourceId r = netw.add_resource("link", mbit(8));
  FlowNet::FlowSpec first;
  first.resources = {r};
  first.volume_bytes = 1e6;
  int completions = 0;
  first.on_complete = [&](FlowId) {
    ++completions;
    FlowNet::FlowSpec second;
    second.resources = {r};
    second.volume_bytes = 1e6;
    second.on_complete = [&](FlowId) { ++completions; };
    netw.add_flow(std::move(second));
  };
  netw.add_flow(std::move(first));
  simu.run();
  EXPECT_EQ(completions, 2);
  EXPECT_NEAR(sim::to_seconds(simu.now()), 2.0, 0.01);
}

TEST_F(FlowNetTest, PerSecondSeriesRecordsRate) {
  const ResourceId r = netw.add_resource("link", mbit(80));
  FlowNet::FlowSpec spec;
  spec.resources = {r};
  spec.record_per_second = true;
  const FlowId f = netw.add_flow(std::move(spec));
  simu.run_until(5 * sim::kSecond);
  netw.sync();
  const auto bins = netw.series(f).bins_bits_per_second();
  ASSERT_GE(bins.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(bins[i], mbit(80), 1e3);
}

TEST_F(FlowNetTest, CapacityChangeTakesEffect) {
  const ResourceId r = netw.add_resource("link", mbit(100));
  FlowNet::FlowSpec spec;
  spec.resources = {r};
  const FlowId f = netw.add_flow(std::move(spec));
  simu.run_until(1 * sim::kSecond);
  netw.set_capacity(r, mbit(10));
  EXPECT_DOUBLE_EQ(netw.rate(f), mbit(10));
  EXPECT_DOUBLE_EQ(netw.capacity(r), mbit(10));
}

TEST_F(FlowNetTest, WeightedContention) {
  const ResourceId r = netw.add_resource("link", mbit(100));
  FlowNet::FlowSpec heavy, light;
  heavy.resources = {r};
  heavy.weight = 4.0;
  light.resources = {r};
  const FlowId fh = netw.add_flow(std::move(heavy));
  const FlowId fl = netw.add_flow(std::move(light));
  EXPECT_NEAR(netw.rate(fh), mbit(80), 1.0);
  EXPECT_NEAR(netw.rate(fl), mbit(20), 1.0);
}

TEST_F(FlowNetTest, ResourceUsageSumsRates) {
  const ResourceId r = netw.add_resource("link", mbit(100));
  FlowNet::FlowSpec a, b;
  a.resources = {r};
  b.resources = {r};
  netw.add_flow(std::move(a));
  netw.add_flow(std::move(b));
  EXPECT_NEAR(netw.resource_usage(r), mbit(100), 1.0);
}

TEST_F(FlowNetTest, FlowCapRespected) {
  const ResourceId r = netw.add_resource("link", mbit(100));
  FlowNet::FlowSpec spec;
  spec.resources = {r};
  spec.cap_bits = mbit(30);
  const FlowId f = netw.add_flow(std::move(spec));
  EXPECT_DOUBLE_EQ(netw.rate(f), mbit(30));
}

TEST_F(FlowNetTest, RejectsBadSpecs) {
  FlowNet::FlowSpec bad_resource;
  bad_resource.resources = {99};
  EXPECT_THROW(netw.add_flow(std::move(bad_resource)), std::out_of_range);
  FlowNet::FlowSpec bad_weight;
  bad_weight.weight = 0.0;
  EXPECT_THROW(netw.add_flow(std::move(bad_weight)),
               std::invalid_argument);
  EXPECT_THROW(netw.bytes_transferred(1234), std::invalid_argument);
}

TEST_F(FlowNetTest, RemainingBytesTracksProgress) {
  const ResourceId r = netw.add_resource("link", mbit(8));
  FlowNet::FlowSpec spec;
  spec.resources = {r};
  spec.volume_bytes = 4e6;
  const FlowId f = netw.add_flow(std::move(spec));
  simu.run_until(1 * sim::kSecond);
  EXPECT_NEAR(netw.remaining_bytes(f), 3e6, 1e3);
}

}  // namespace
}  // namespace flashflow::net
