#include "sim/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace flashflow::sim {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng r(0);
  EXPECT_NE(r(), 0ULL);  // SplitMix expansion avoids the all-zero state
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng r(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= v == 2;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSinglePoint) {
  Rng r(17);
  EXPECT_EQ(r.uniform_int(4, 4), 4);
}

TEST(Rng, UniformIntThrowsOnBadRange) {
  Rng r(17);
  EXPECT_THROW(r.uniform_int(5, 4), std::invalid_argument);
}

TEST(Rng, ChanceEdges) {
  Rng r(19);
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_TRUE(r.chance(1.0));
  EXPECT_FALSE(r.chance(-0.5));
  EXPECT_TRUE(r.chance(1.5));
}

TEST(Rng, ChanceFrequency) {
  Rng r(23);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (r.chance(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng r(29);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, ExponentialRejectsBadMean) {
  Rng r(29);
  EXPECT_THROW(r.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(r.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng r(31);
  double sum = 0, sum_sq = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(2.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(Rng, LogNormalIsPositive) {
  Rng r(37);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(r.log_normal(0.0, 1.0), 0.0);
}

TEST(Rng, ParetoRespectsScale) {
  Rng r(41);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(r.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, ParetoRejectsBadParams) {
  Rng r(41);
  EXPECT_THROW(r.pareto(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(r.pareto(1.0, 0.0), std::invalid_argument);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng r(43);
  std::vector<double> weights = {1.0, 3.0};
  int ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (r.weighted_index(weights) == 1) ++ones;
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.02);
}

TEST(Rng, WeightedIndexSkipsZeroWeights) {
  Rng r(47);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) EXPECT_EQ(r.weighted_index(weights), 1u);
}

TEST(Rng, WeightedIndexRejectsBadInput) {
  Rng r(47);
  std::vector<double> empty;
  std::vector<double> negative = {1.0, -1.0};
  std::vector<double> zeros = {0.0, 0.0};
  EXPECT_THROW(r.weighted_index(empty), std::invalid_argument);
  EXPECT_THROW(r.weighted_index(negative), std::invalid_argument);
  EXPECT_THROW(r.weighted_index(zeros), std::invalid_argument);
}

TEST(Rng, ForkIndependentStreams) {
  Rng parent(99);
  Rng a = parent.fork("a");
  Rng b = parent.fork("b");
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkDeterministic) {
  Rng p1(99), p2(99);
  Rng a1 = p1.fork("x");
  Rng a2 = p2.fork("x");
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a1(), a2());
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(53);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto shuffled = v;
  r.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, HashForkMatchesStringFork) {
  // The hot-path overload must derive the identical substream: forking on
  // a precomputed hash is a pure optimization, never a behavior change.
  Rng p1(20210613), p2(20210613);
  Rng by_string = p1.fork("relay-7/noise");
  Rng by_hash = p2.fork(hash_tag("relay-7/noise"));
  for (int i = 0; i < 64; ++i) EXPECT_EQ(by_string(), by_hash());
}

TEST(HashTag, StableAndDistinct) {
  EXPECT_EQ(hash_tag("abc"), hash_tag("abc"));
  EXPECT_NE(hash_tag("abc"), hash_tag("abd"));
}

TEST(HashTag, BasisOverloadComposesConcatenation) {
  // hash_tag(b, hash_tag(a)) == hash_tag(a + b): lets hot loops hash a
  // stable prefix once and append per-use suffixes without building
  // strings (SlotRunner's per-target "/noise" fork).
  EXPECT_EQ(hash_tag("/noise", hash_tag("relay-42")),
            hash_tag("relay-42/noise"));
  EXPECT_EQ(hash_tag("", hash_tag("x")), hash_tag("x"));
  EXPECT_EQ(hash_tag("xyz", hash_tag("")), hash_tag("xyz"));
}

TEST(Rng, NormalFillMatchesSequentialNormalCalls) {
  // The batched gaussian path must be bit-identical to call-at-a-time
  // normal(): same values, same raw-draw consumption, including the
  // Box-Muller pair cache carrying across batch boundaries. Odd sizes
  // exercise the cache-in/cache-out edges.
  for (const std::size_t count : {0u, 1u, 2u, 5u, 8u, 33u}) {
    Rng sequential(77);
    Rng batched(77);
    std::vector<double> expected(count);
    for (double& v : expected) v = sequential.normal();
    std::vector<double> filled(count);
    batched.normal_fill(filled);
    for (std::size_t i = 0; i < count; ++i)
      EXPECT_EQ(filled[i], expected[i]) << "count=" << count << " i=" << i;
    // Both generators must resume in lockstep (same cache, same state).
    EXPECT_EQ(batched.normal(), sequential.normal());
    EXPECT_EQ(batched(), sequential());
  }
}

TEST(Rng, NormalFillConsumesPrimedCacheFirst) {
  Rng sequential(123);
  Rng batched(123);
  // Prime both pair caches, then batch on one and iterate on the other.
  EXPECT_EQ(batched.normal(), sequential.normal());
  std::vector<double> expected(7);
  for (double& v : expected) v = sequential.normal();
  std::vector<double> filled(7);
  batched.normal_fill(filled);
  for (std::size_t i = 0; i < filled.size(); ++i)
    EXPECT_EQ(filled[i], expected[i]);
  EXPECT_EQ(batched.uniform(), sequential.uniform());
}

TEST(Rng, NormalFillInterleavesWithOtherDraws) {
  // Mixed workloads (the slot pipeline interleaves uniforms, chance and
  // gaussian batches on one stream) must see the same stream either way.
  Rng a(9), b(9);
  std::vector<double> batch(3);
  a.normal_fill(batch);
  EXPECT_EQ(a.uniform(), [&] {
    b.normal();
    b.normal();
    b.normal();
    return b.uniform();
  }());
}

}  // namespace
}  // namespace flashflow::sim
