// ffcheck unit tests: the lexer's literal/comment handling and every rule
// family, driven by inline source snippets. The snippets live in raw
// strings, which doubles as a regression test of the self-lint: banned
// tokens inside string literals must never fire, so this very file passes
// `ffcheck tests/` clean while containing every violation in the book.

#include "lint/ffcheck.h"
#include "lint/lexer.h"
#include "lint/rules.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace lint = flashflow::lint;

namespace {

std::vector<std::string> rules_found(const lint::FileReport& report) {
  std::vector<std::string> ids;
  for (const auto& d : report.diagnostics) ids.push_back(d.rule);
  return ids;
}

bool has_rule(const lint::FileReport& report, const std::string& id) {
  const auto ids = rules_found(report);
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}

int line_of(const lint::FileReport& report, const std::string& id) {
  for (const auto& d : report.diagnostics)
    if (d.rule == id) return d.line;
  return -1;
}

}  // namespace

// ----------------------------------------------------------------- lexer ---

TEST(Lexer, ClassifiesTokenKinds) {
  const auto lexed = lint::lex("int x = 42; foo(\"str\", 'c');");
  ASSERT_GE(lexed.tokens.size(), 8u);
  EXPECT_EQ(lexed.tokens[0].kind, lint::TokKind::kIdent);
  EXPECT_EQ(lexed.tokens[0].text, "int");
  EXPECT_EQ(lexed.tokens[3].kind, lint::TokKind::kNumber);
  EXPECT_EQ(lexed.tokens[3].text, "42");
  bool saw_string = false;
  bool saw_char = false;
  for (const auto& t : lexed.tokens) {
    if (t.kind == lint::TokKind::kString) {
      saw_string = true;
      EXPECT_EQ(t.text, "str");
    }
    if (t.kind == lint::TokKind::kChar) saw_char = true;
  }
  EXPECT_TRUE(saw_string);
  EXPECT_TRUE(saw_char);
}

TEST(Lexer, TracksLineNumbers) {
  const auto lexed = lint::lex("a\nb\n\nc\n");
  ASSERT_EQ(lexed.tokens.size(), 3u);
  EXPECT_EQ(lexed.tokens[0].line, 1);
  EXPECT_EQ(lexed.tokens[1].line, 2);
  EXPECT_EQ(lexed.tokens[2].line, 4);
}

TEST(Lexer, CapturesLineAndBlockComments) {
  const auto lexed =
      lint::lex("int a; // trailing note\n/* block\n   spans lines */\n");
  ASSERT_EQ(lexed.comments.size(), 2u);
  EXPECT_FALSE(lexed.comments[0].block);
  EXPECT_EQ(lexed.comments[0].text, "trailing note");
  EXPECT_EQ(lexed.comments[0].line, 1);
  EXPECT_TRUE(lexed.comments[1].block);
  EXPECT_EQ(lexed.comments[1].line, 2);
  EXPECT_EQ(lexed.comments[1].end_line, 3);
}

TEST(Lexer, BannedTokensInsideLiteralsAreInvisible) {
  const auto report = lint::analyze_source("src/x.cpp", R"SRC(
const char* a = "std::rand() and random_device";
const char* b = R"x(getenv("HOME") and )" inside a raw string)x";
// a comment mentioning std::rand() never fires either
/* nor does a block comment with random_device */
)SRC");
  EXPECT_TRUE(report.diagnostics.empty()) << lint::format_report(report);
}

TEST(Lexer, RawStringDelimitersHonored) {
  // The )" inside the delimited raw string must not end it early; the
  // rand() after the real terminator must still be seen as code.
  const auto report = lint::analyze_source(
      "src/x.cpp",
      "auto s = R\"q(fake end )\" still string)q\"; int y = rand();\n");
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].rule, "ND01");
}

TEST(Lexer, BlockCommentsDoNotNest) {
  // C++ block comments end at the first */ — the code after it is live,
  // so the rand() call must be reported.
  const auto report =
      lint::analyze_source("src/x.cpp", "/* /* */ int x = rand();\n");
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].rule, "ND01");
}

TEST(Lexer, PreprocessorDirectivesSkipped) {
  // #include <unordered_map> must not read as an unordered_map mention,
  // across continuation lines too.
  const auto report = lint::analyze_source("src/x.cpp", R"SRC(
#include <unordered_map>
#include <random>
#define WIDE(x) \
  rand(x)
int y = 0;
)SRC");
  EXPECT_TRUE(report.diagnostics.empty()) << lint::format_report(report);
}

// -------------------------------------------------------------- ND rules ---

TEST(NdRules, BansAmbientRngInSrc) {
  const auto report = lint::analyze_source(
      "src/x.cpp", "int a = rand(); srand(1);\nstd::random_device rd;\n");
  EXPECT_TRUE(has_rule(report, "ND01"));
  EXPECT_TRUE(has_rule(report, "ND02"));
}

TEST(NdRules, SrcOnlyRulesDoNotBindTestsOrTools) {
  const std::string src = "int a = rand(); std::random_device rd;\n";
  EXPECT_TRUE(lint::analyze_source("tests/t.cpp", src).diagnostics.empty());
  EXPECT_TRUE(lint::analyze_source("tools/t.cpp", src).diagnostics.empty());
  EXPECT_FALSE(lint::analyze_source("src/t.cpp", src).diagnostics.empty());
}

TEST(NdRules, WallClockReads) {
  EXPECT_TRUE(has_rule(
      lint::analyze_source(
          "src/x.cpp", "auto t = std::chrono::system_clock::now();\n"),
      "ND03"));
  EXPECT_TRUE(has_rule(
      lint::analyze_source("src/x.cpp", "time_t t = time(nullptr);\n"),
      "ND03"));
  EXPECT_TRUE(has_rule(
      lint::analyze_source("src/x.cpp", "time_t t = std::time(nullptr);\n"),
      "ND03"));
  // Member calls and unrelated identifiers that merely end in "time" are
  // not wall-clock reads.
  EXPECT_TRUE(lint::analyze_source("src/x.cpp",
                                   "auto t = sim.time(); queue.next_time();\n")
                  .diagnostics.empty());
}

TEST(NdRules, GetenvBindsOutsideTestsOnly) {
  const std::string src = "const char* home = getenv(\"HOME\");\n";
  EXPECT_TRUE(has_rule(lint::analyze_source("src/x.cpp", src), "ND04"));
  EXPECT_TRUE(has_rule(lint::analyze_source("tools/x.cpp", src), "ND04"));
  EXPECT_TRUE(has_rule(lint::analyze_source("bench/x.cpp", src), "ND04"));
  EXPECT_FALSE(has_rule(lint::analyze_source("tests/x.cpp", src), "ND04"));
}

TEST(NdRules, RangeForOverUnorderedContainer) {
  const auto report = lint::analyze_source("src/x.cpp", R"SRC(
std::unordered_map<int, double> m;
void f() {
  for (const auto& [k, v] : m) use(k, v);
}
)SRC");
  EXPECT_TRUE(has_rule(report, "ND05"));
  // Range-for over a vector is fine.
  const auto ok = lint::analyze_source("src/x.cpp", R"SRC(
std::vector<double> v;
void f() {
  for (double d : v) use(d);
}
)SRC");
  EXPECT_TRUE(ok.diagnostics.empty()) << lint::format_report(ok);
}

TEST(NdRules, UnorderedDeclNeedsJustification) {
  const auto report = lint::analyze_source(
      "src/x.cpp", "std::unordered_set<int> seen;\n");
  ASSERT_TRUE(has_rule(report, "ND06"));
  EXPECT_EQ(line_of(report, "ND06"), 1);
}

// -------------------------------------------------------------- FL rules ---

TEST(FlRules, AccumulationInsideUnorderedIteration) {
  const auto report = lint::analyze_source("src/x.cpp", R"SRC(
std::unordered_map<int, double> weights;
double total() {
  double sum = 0.0;
  for (const auto& [k, w] : weights) sum += w;
  return sum;
}
)SRC");
  EXPECT_TRUE(has_rule(report, "FL01"));
}

TEST(FlRules, AccumulateOverUnorderedBeginEnd) {
  const auto report = lint::analyze_source("src/x.cpp", R"SRC(
std::unordered_map<int, double> m;
double f() { return std::accumulate(m.begin(), m.end(), 0.0, add); }
)SRC");
  EXPECT_TRUE(has_rule(report, "FL01"));
  // accumulate over an ordered container is fine.
  const auto ok = lint::analyze_source(
      "src/x.cpp",
      "std::vector<double> v;\n"
      "double f() { return std::accumulate(v.begin(), v.end(), 0.0); }\n");
  EXPECT_FALSE(has_rule(ok, "FL01"));
}

// -------------------------------------------------------------- HP rules ---

namespace {

// Builds a snippet with `body` inside an annotated hot region.
std::string hot(const std::string& body) {
  return "// FF_HOT_BEGIN: test region\n" + body + "\n// FF_HOT_END: test\n";
}

}  // namespace

TEST(HpRules, AllocationShapedCallsInHotRegion) {
  EXPECT_TRUE(has_rule(
      lint::analyze_source("src/x.cpp", hot("int* p = new int(3);")),
      "HP01"));
  EXPECT_TRUE(has_rule(
      lint::analyze_source("src/x.cpp",
                           hot("auto p = std::make_shared<int>(3);")),
      "HP02"));
  EXPECT_TRUE(has_rule(
      lint::analyze_source("src/x.cpp", hot("v.push_back(1);")), "HP03"));
  EXPECT_TRUE(has_rule(
      lint::analyze_source("src/x.cpp", hot("v.emplace_back(1);")), "HP03"));
  EXPECT_TRUE(has_rule(
      lint::analyze_source("src/x.cpp",
                           hot("std::string s = std::to_string(4);")),
      "HP04"));
  EXPECT_TRUE(has_rule(
      lint::analyze_source("src/x.cpp", hot("name = name + \"suffix\";")),
      "HP04"));
}

TEST(HpRules, SameCallsOutsideRegionAreFine) {
  const auto report = lint::analyze_source(
      "src/x.cpp",
      "void f(std::vector<int>& v) { v.push_back(1); int* p = new int; }\n");
  EXPECT_TRUE(report.diagnostics.empty()) << lint::format_report(report);
}

TEST(HpRules, HotRegionsBindByLineRange) {
  const auto report = lint::analyze_source("src/x.cpp", R"SRC(
void before(std::vector<int>& v) { v.push_back(0); }
// FF_HOT_BEGIN: inner
void inner(std::vector<int>& v) { v.push_back(1); }
// FF_HOT_END: inner
void after(std::vector<int>& v) { v.push_back(2); }
)SRC");
  ASSERT_EQ(report.diagnostics.size(), 1u) << lint::format_report(report);
  EXPECT_EQ(report.diagnostics[0].rule, "HP03");
  EXPECT_EQ(report.diagnostics[0].line, 4);
}

TEST(HpRules, UnbalancedAnnotationsAreFindings) {
  EXPECT_TRUE(has_rule(
      lint::analyze_source("src/x.cpp", "// FF_HOT_BEGIN: never closed\n"),
      "FF04"));
  EXPECT_TRUE(has_rule(
      lint::analyze_source("src/x.cpp", "// FF_HOT_END: never opened\n"),
      "FF04"));
  EXPECT_TRUE(has_rule(lint::analyze_source("src/x.cpp",
                                            "// FF_HOT_BEGIN: one\n"
                                            "// FF_HOT_BEGIN: two\n"
                                            "// FF_HOT_END: one\n"),
                       "FF04"));
}

TEST(HpRules, DocCommentMentioningAnnotationIsNotARegion) {
  const auto report = lint::analyze_source(
      "src/x.cpp",
      "// regions use FF_HOT_BEGIN / FF_HOT_END markers\n"
      "void f(std::vector<int>& v) { v.push_back(1); }\n");
  EXPECT_TRUE(report.diagnostics.empty()) << lint::format_report(report);
}

// ---------------------------------------------------------- suppressions ---

TEST(Suppressions, TrailingCommentCoversItsLine) {
  const auto report = lint::analyze_source(
      "src/x.cpp",
      "int a = rand();  // FFCHECK(ND01): fixture value, result-free\n");
  EXPECT_TRUE(report.diagnostics.empty()) << lint::format_report(report);
}

TEST(Suppressions, CommentAboveCoversNextLine) {
  const auto report = lint::analyze_source(
      "src/x.cpp",
      "// FFCHECK(ND01): fixture value, result-free\n"
      "int a = rand();\n");
  EXPECT_TRUE(report.diagnostics.empty()) << lint::format_report(report);
}

TEST(Suppressions, MultiLineJustificationCoversCodeBelow) {
  const auto report = lint::analyze_source(
      "src/x.cpp",
      "// FFCHECK(ND01): a justification long enough to need a second\n"
      "// line, which still covers the code right under the block.\n"
      "int a = rand();\n");
  EXPECT_TRUE(report.diagnostics.empty()) << lint::format_report(report);
}

TEST(Suppressions, AnchorBelowDocTextStillCovers) {
  const auto report = lint::analyze_source(
      "src/x.cpp",
      "// Doc text about this member, directly above the suppression.\n"
      "// FFCHECK(ND06): lookup-only; never iterated.\n"
      "std::unordered_map<int, int> index_;\n");
  EXPECT_TRUE(report.diagnostics.empty()) << lint::format_report(report);
}

TEST(Suppressions, ListedRulesAllApply) {
  const auto report = lint::analyze_source("src/x.cpp", R"SRC(
std::unordered_map<int, double> m;
void f() {
  // FFCHECK(ND05, FL01): order-insensitive: integer count, summed into
  // an exact accumulator for a diagnostic counter only.
  for (const auto& [k, v] : m) counter += 1;
}
)SRC");
  // The ND06 on the declaration is the only remaining finding.
  ASSERT_EQ(report.diagnostics.size(), 1u) << lint::format_report(report);
  EXPECT_EQ(report.diagnostics[0].rule, "ND06");
}

TEST(Suppressions, UnusedSuppressionIsAFinding) {
  const auto report = lint::analyze_source(
      "src/x.cpp",
      "// FFCHECK(ND01): nothing on the next line matches this rule\n"
      "int a = 3;\n");
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].rule, "FF01");
  EXPECT_EQ(report.diagnostics[0].line, 1);
}

TEST(Suppressions, PartiallyUsedListStillFlagsStaleRule) {
  const auto report = lint::analyze_source(
      "src/x.cpp",
      "// FFCHECK(ND01, ND02): only the rand() below actually matches\n"
      "int a = rand();\n");
  ASSERT_EQ(report.diagnostics.size(), 1u) << lint::format_report(report);
  EXPECT_EQ(report.diagnostics[0].rule, "FF01");
}

TEST(Suppressions, MissingReasonIsAFinding) {
  const auto report = lint::analyze_source(
      "src/x.cpp", "int a = rand();  // FFCHECK(ND01):\n");
  EXPECT_TRUE(has_rule(report, "FF02"));
  // The underlying finding is NOT silenced by a reasonless marker.
  EXPECT_TRUE(has_rule(report, "ND01"));
}

TEST(Suppressions, UnknownRuleIsAFinding) {
  const auto report = lint::analyze_source(
      "src/x.cpp", "int a = rand();  // FFCHECK(ND99): no such rule\n");
  EXPECT_TRUE(has_rule(report, "FF03"));
  EXPECT_TRUE(has_rule(report, "ND01"));
}

TEST(Suppressions, MalformedMarkerIsAFinding) {
  EXPECT_TRUE(has_rule(
      lint::analyze_source("src/x.cpp", "// FFCHECK ND01: lost parens\n"),
      "FF03"));
  EXPECT_TRUE(has_rule(
      lint::analyze_source("src/x.cpp", "// FFCHECK(ND01) forgot colon\n"),
      "FF03"));
}

TEST(Suppressions, DocMentionMidCommentIsNotASuppression) {
  // A sentence mentioning the syntax must neither suppress nor trip FF03.
  const auto report = lint::analyze_source(
      "src/x.cpp",
      "// silence it with a FFCHECK(ND01): reason comment\n"
      "int a = 3;\n");
  EXPECT_TRUE(report.diagnostics.empty()) << lint::format_report(report);
}

TEST(Suppressions, SuppressionInsideRawStringIsInvisible) {
  const auto report = lint::analyze_source(
      "src/x.cpp",
      "const char* doc = R\"(// FFCHECK(ND01): not a real comment)\";\n"
      "int a = rand();\n");
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].rule, "ND01");
}

// ----------------------------------------------------------------- driver ---

TEST(Driver, ContextForPath) {
  EXPECT_TRUE(lint::context_for_path("src/core/x.cpp").nd_rules);
  EXPECT_TRUE(lint::context_for_path("/abs/repo/src/x.h").nd_rules);
  EXPECT_FALSE(lint::context_for_path("tools/x.cpp").nd_rules);
  EXPECT_TRUE(lint::context_for_path("tools/x.cpp").getenv_rule);
  EXPECT_FALSE(lint::context_for_path("tests/x.cpp").getenv_rule);
}

TEST(Driver, FormatReportShape) {
  const auto report =
      lint::analyze_source("src/dir/x.cpp", "int a = rand();\n");
  const std::string text = lint::format_report(report);
  EXPECT_EQ(text.rfind("src/dir/x.cpp:1: ND01: ", 0), 0u) << text;
  EXPECT_EQ(text.back(), '\n');
}

TEST(Driver, DiagnosticsSortedByLine) {
  const auto report = lint::analyze_source(
      "src/x.cpp", "std::random_device rd;\nint a = rand();\n");
  ASSERT_EQ(report.diagnostics.size(), 2u);
  EXPECT_LT(report.diagnostics[0].line, report.diagnostics[1].line);
}

TEST(Driver, KnownRuleTable) {
  EXPECT_TRUE(lint::known_rule("ND01"));
  EXPECT_TRUE(lint::known_rule("HP04"));
  EXPECT_TRUE(lint::known_rule("FF01"));
  EXPECT_FALSE(lint::known_rule("ZZ99"));
  EXPECT_FALSE(lint::all_rules().empty());
}
