#include <gtest/gtest.h>

#include <cmath>

#include "net/units.h"
#include "tor/cpu_model.h"
#include "tor/observed_bandwidth.h"
#include "tor/relay.h"
#include "tor/scheduler.h"
#include "tor/token_bucket.h"

namespace flashflow::tor {
namespace {

TEST(TokenBucket, StartsFullAndDrains) {
  TokenBucket b(100.0, 250.0);
  EXPECT_DOUBLE_EQ(b.available(), 250.0);
  EXPECT_DOUBLE_EQ(b.take(100.0), 100.0);
  EXPECT_DOUBLE_EQ(b.available(), 150.0);
  EXPECT_DOUBLE_EQ(b.take(500.0), 150.0);  // partial grant
  EXPECT_DOUBLE_EQ(b.available(), 0.0);
}

TEST(TokenBucket, RefillCapsAtBurst) {
  TokenBucket b(100.0, 250.0);
  b.take(250.0);
  b.refill(1.0);
  EXPECT_DOUBLE_EQ(b.available(), 100.0);
  b.refill(10.0);
  EXPECT_DOUBLE_EQ(b.available(), 250.0);
}

TEST(TokenBucket, Conservation) {
  // Granted bytes never exceed burst + rate * time.
  TokenBucket b(50.0, 100.0);
  double granted = 0.0;
  for (int s = 0; s < 20; ++s) {
    granted += b.take(80.0);
    b.refill(1.0);
  }
  EXPECT_LE(granted, 100.0 + 50.0 * 20 + 1e-9);
}

TEST(TokenBucket, RejectsNegativeArgs) {
  EXPECT_THROW(TokenBucket(-1.0, 1.0), std::invalid_argument);
  TokenBucket b(1.0, 1.0);
  EXPECT_THROW(b.take(-1.0), std::invalid_argument);
  EXPECT_THROW(b.refill(-1.0), std::invalid_argument);
}

TEST(ObservedBandwidth, MaxOverWindows) {
  ObservedBandwidth obs(2, 10);
  obs.record(10.0);
  EXPECT_DOUBLE_EQ(obs.observed_bits(), 0.0);  // no full window yet
  obs.record(20.0);
  EXPECT_DOUBLE_EQ(obs.observed_bits(), 15.0);
  obs.record(30.0);  // window {20,30} = 25
  EXPECT_DOUBLE_EQ(obs.observed_bits(), 25.0);
  for (int i = 0; i < 20; ++i) obs.record(1.0);
  EXPECT_DOUBLE_EQ(obs.observed_bits(), 1.0);  // history expired the peak
}

TEST(ObservedBandwidth, AdvertisedIsMinWithRateLimit) {
  EXPECT_DOUBLE_EQ(advertised_bandwidth(100.0, 50.0), 50.0);
  EXPECT_DOUBLE_EQ(advertised_bandwidth(100.0, 200.0), 100.0);
  EXPECT_DOUBLE_EQ(advertised_bandwidth(100.0, 0.0), 100.0);  // unlimited
}

TEST(CpuModel, PaperCalibration) {
  // Appendix C: 1.248 Gbit/s peak at 20 sockets on lab hardware.
  EXPECT_NEAR(net::to_mbit(CpuModel::lab().capacity(20)), 1248, 5);
  // §6.1: 890 Mbit/s ground truth on US-SW with 160 measurement sockets.
  EXPECT_NEAR(net::to_mbit(CpuModel::us_sw().capacity(160)), 890, 5);
}

TEST(CpuModel, MonotoneDecreasingInSockets) {
  const CpuModel cpu = CpuModel::lab();
  double prev = cpu.capacity(0);
  for (int n = 1; n <= 300; n += 10) {
    EXPECT_LT(cpu.capacity(n), prev);
    prev = cpu.capacity(n);
  }
  EXPECT_THROW(cpu.capacity(-1), std::invalid_argument);
}

TEST(Scheduler, KistCapsScaleWithSockets) {
  SchedulerModel s;
  EXPECT_DOUBLE_EQ(s.normal_aggregate_cap(1), s.kist_per_socket_cap_bits);
  EXPECT_DOUBLE_EQ(s.normal_aggregate_cap(10),
                   10 * s.kist_per_socket_cap_bits);
  EXPECT_TRUE(std::isinf(s.measurement_aggregate_cap()));
  EXPECT_THROW(s.normal_aggregate_cap(-1), std::invalid_argument);
}

TEST(RelayModel, GroundTruthMatchesPaperAppendixE2) {
  // Paper: limits 10/250/500/750 Mbit/s -> ground truths 9.58/239/494/741.
  RelayModel r;
  r.nic_up_bits = r.nic_down_bits = net::mbit(954);
  r.cpu = CpuModel::us_sw();
  const auto gt = [&](double limit) {
    r.rate_limit_bits = net::mbit(limit);
    return net::to_mbit(r.ground_truth(160));
  };
  EXPECT_NEAR(gt(10), 9.58, 0.2);
  EXPECT_NEAR(gt(250), 239, 3);
  EXPECT_NEAR(gt(500), 494, 6);
  EXPECT_NEAR(gt(750), 741, 4);
  r.rate_limit_bits = 0;
  EXPECT_NEAR(net::to_mbit(r.ground_truth(160)), 890, 5);
}

TEST(RelayModel, MeasurementCapacityComposesLimits) {
  RelayModel r;
  r.nic_up_bits = net::mbit(100);
  r.nic_down_bits = net::mbit(200);
  r.cpu.base_bits = net::mbit(500);
  EXPECT_DOUBLE_EQ(r.measurement_capacity(0), net::mbit(100));  // NIC bound
  r.rate_limit_bits = net::mbit(50);
  EXPECT_DOUBLE_EQ(r.measurement_capacity(0), net::mbit(50));
}

TEST(RelayModel, NormalCapacityKistBound) {
  RelayModel r;
  r.cpu = CpuModel::lab();
  // One socket under the normal scheduler: KIST per-socket cap binds.
  EXPECT_DOUBLE_EQ(r.normal_capacity(1), r.sched.kist_per_socket_cap_bits);
  // Twenty sockets: CPU binds (Fig 11 peak).
  EXPECT_NEAR(net::to_mbit(r.normal_capacity(20)), 1248, 5);
}

TEST(SplitSecond, RatioRuleHonored) {
  RelayModel r;
  r.ratio_r = 0.25;
  r.background_demand_bits = net::mbit(500);
  // Capacity 100, offered measurement 100: y <= x*r/(1-r) = x/3.
  const auto s = split_measurement_second(r, net::mbit(100), net::mbit(100));
  EXPECT_LE(s.background_bits,
            s.measurement_bits * 0.25 / 0.75 + 1.0);
  EXPECT_LE(s.measurement_bits + s.background_bits, net::mbit(100) + 1.0);
}

TEST(SplitSecond, LowBackgroundPassesThrough) {
  RelayModel r;
  r.ratio_r = 0.25;
  r.background_demand_bits = net::mbit(5);
  const auto s = split_measurement_second(r, net::mbit(100), net::mbit(60));
  EXPECT_NEAR(s.background_bits, net::mbit(5), 1.0);
  EXPECT_NEAR(s.measurement_bits, net::mbit(60), 1.0);
}

TEST(RelayNoise, FactorsBoundedAndVarying) {
  RelayNoise noise({}, sim::Rng(9));
  double lo = 10, hi = 0;
  for (int i = 0; i < 1000; ++i) {
    const double f = noise.next_factor();
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.04);
    lo = std::min(lo, f);
    hi = std::max(hi, f);
  }
  EXPECT_LT(lo, hi);  // the process actually varies
}

TEST(RelayNoise, FillFactorsMatchesSequentialCalls) {
  // The batched slot-setup path must reproduce the call-at-a-time series
  // exactly — same draws in the same order — and leave the process in the
  // same state (a reused workspace alternates batch sizes across slots).
  RelayNoise sequential({}, sim::Rng(42));
  RelayNoise batched({}, sim::Rng(42));
  for (const std::size_t count : {std::size_t{30}, std::size_t{1},
                                  std::size_t{7}, std::size_t{64}}) {
    std::vector<double> expected(count);
    for (double& f : expected) f = sequential.next_factor();
    std::vector<double> filled(count);
    batched.fill_factors(filled);
    for (std::size_t i = 0; i < count; ++i)
      EXPECT_EQ(filled[i], expected[i]) << "count=" << count << " i=" << i;
  }
}

}  // namespace
}  // namespace flashflow::tor
