// Scenario-file serialization (scenario/serialize.h).
//
// Two contracts under test. Round-trip fidelity: parse(serialize(spec))
// must reproduce the spec *exactly* (operator== over every field —
// doubles are emitted in shortest-round-trip form, so no precision is
// shed). Diagnostics: a malformed file must throw std::invalid_argument
// naming the offending key and line, because scenario files are the
// user-facing input surface and "parse error" without a location is
// useless at 30 lines.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/units.h"
#include "scenario/scenario.h"
#include "scenario/serialize.h"

namespace flashflow::scenario {
namespace {

/// Expects parse_scenario(text) to throw with a message containing every
/// fragment (key names, line numbers, the bad value).
void expect_parse_error(const std::string& text,
                        std::initializer_list<const char*> fragments) {
  try {
    parse_scenario(text, "test.yaml");
    FAIL() << "expected std::invalid_argument for:\n" << text;
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    for (const char* fragment : fragments)
      EXPECT_NE(what.find(fragment), std::string::npos)
          << "message '" << what << "' missing '" << fragment << "'";
  }
}

ScenarioSpec synthetic_spec() {
  analysis::PopulationParams pop;
  pop.lognormal_mu = 17.42;
  pop.lognormal_sigma = 1.45;
  pop.max_capacity_bits = 998e6;
  return ScenarioBuilder("synthetic-rt")
      .synthetic(pop, 6419, /*prior_fraction=*/0.37)
      .measurer_capacities({net::gbit(1), net::gbit(1.5)})
      .liars(0.03)
      .forgers(0.07)
      .background_utilization(0.21, 0.092)
      .schedule(campaign::ScheduleMode::kRandomized)
      .periods(4)
      .threads(8)
      .shard_slots(16)
      .seed(0xDEADBEEFCAFEF00DULL)
      .record_outcomes()
      .build();
}

TEST(ScenarioSerialize, SyntheticRoundTripsExactly) {
  const ScenarioSpec spec = synthetic_spec();
  const ScenarioSpec back = parse_scenario(serialize_scenario(spec));
  EXPECT_EQ(spec, back);
}

TEST(ScenarioSerialize, Table1RoundTripsExactly) {
  core::Params params;
  params.ratio = 0.1;
  params.check_probability = 0.85;
  const ScenarioSpec spec =
      ScenarioBuilder("table1-rt")
          .table1_relays({250, 0, 33.5}, /*background_mbit=*/50,
                         /*prior_mbit=*/250)
          .measurers({"NL", "US-E"})
          .measurer_capacities({net::mbit(1611), net::mbit(900)})
          .params(params)
          .seed(20210607)
          .build();
  const ScenarioSpec back = parse_scenario(serialize_scenario(spec));
  EXPECT_EQ(spec, back);
}

TEST(ScenarioSerialize, ShadowRoundTripsExactly) {
  shadowsim::ShadowNetParams net_params;
  net_params.relays = 123;
  net_params.capacity_mu = 16.9;
  const ScenarioSpec spec =
      ScenarioBuilder("shadow-rt")
          .shadow_net(net_params, /*seed=*/17)
          .measurer_capacities({net::gbit(1), net::gbit(1), net::gbit(1)})
          .periods(2)
          .seed(0x5EED)
          .build();
  const ScenarioSpec back = parse_scenario(serialize_scenario(spec));
  EXPECT_EQ(spec, back);
}

TEST(ScenarioSerialize, TieredTopologyRoundTripsExactly) {
  TopologySpec topo;
  topo.path_model = TopologySpec::PathModelKind::kTiered;
  topo.tiers = 3;
  topo.tier_rtt_s = {0.010, 0.065, 0.090, 0.020, 0.150, 0.025};
  topo.loss = 2.0e-6;
  topo.loaded_loss = 7.0e-5;
  topo.rtt_jitter = 0.25;
  ScenarioSpec spec = synthetic_spec();
  spec.topology = topo;
  const ScenarioSpec back = parse_scenario(serialize_scenario(spec));
  EXPECT_EQ(spec, back);
  EXPECT_EQ(back.topology.tier_rtt_s, topo.tier_rtt_s);
}

TEST(ScenarioSerialize, SpeedTestWindowRoundTripsExactly) {
  analysis::PopulationParams pop;
  const ScenarioSpec spec = ScenarioBuilder("fig5-rt")
                                .synthetic(pop, 220)
                                .speedtest(SpeedTestWindow{30, 51, 10})
                                .seed(20210605)
                                .build();
  const ScenarioSpec back = parse_scenario(serialize_scenario(spec));
  EXPECT_EQ(spec, back);
  ASSERT_TRUE(back.speedtest.has_value());
  EXPECT_EQ(back.speedtest->test_duration_hours, 51);
}

TEST(ScenarioSerialize, FaultsRoundTripExactly) {
  fault::FaultSpec faults;
  faults.measurer_crash = 0.031;
  faults.relay_disconnect = 0.052;
  faults.report_drop = 0.07;
  faults.report_truncate = 0.011;
  faults.slot_timeout = 0.0225;
  faults.max_retries = 4;
  faults.min_usable_seconds = 9;
  ScenarioSpec spec = synthetic_spec();
  spec.faults = faults;
  const ScenarioSpec back = parse_scenario(serialize_scenario(spec));
  EXPECT_EQ(spec, back);
  EXPECT_EQ(back.faults, faults);
}

TEST(ScenarioSerialize, DefaultTopologyWindowAndFaultsStayOffTheWire) {
  // Specs without the optional sections must serialize without emitting
  // them, so files written before those keys existed stay byte-stable.
  const std::string text = serialize_scenario(synthetic_spec());
  EXPECT_EQ(text.find("topology."), std::string::npos);
  EXPECT_EQ(text.find("speedtest."), std::string::npos);
  // Line-anchored: the header comment's word "defaults." is not a key.
  EXPECT_EQ(text.find("\nfaults."), std::string::npos);
}

TEST(ScenarioSerialize, AbsentFaultsSectionKeepsDefaults) {
  const ScenarioSpec spec = parse_scenario(
      "population: table1\n"
      "table1.rate_limits_mbit: [250]\n");
  EXPECT_EQ(spec.faults, fault::FaultSpec{});
  EXPECT_FALSE(spec.faults.enabled());
}

TEST(ScenarioSerialize, QuotedNameSurvivesRoundTrip) {
  ScenarioSpec spec = synthetic_spec();
  spec.name = "has spaces: and #punctuation";
  EXPECT_EQ(parse_scenario(serialize_scenario(spec)).name, spec.name);
}

TEST(ScenarioSerialize, AbsentKeysKeepDefaults) {
  // A minimal file — everything else must come out as the struct
  // defaults, which is what makes checked-in scenarios this terse.
  const ScenarioSpec spec = parse_scenario(
      "population: table1\n"
      "table1.rate_limits_mbit: [250]\n");
  EXPECT_EQ(spec, ScenarioBuilder().table1_relays({250}).build());
}

TEST(ScenarioSerialize, CommentsAndBlankLinesAreIgnored) {
  const ScenarioSpec spec = parse_scenario(
      "# header comment\n"
      "\n"
      "seed: 7   # trailing comment\n"
      "population: table1\n"
      "table1.rate_limits_mbit: [250]   # one relay\n");
  EXPECT_EQ(spec.seed, 7u);
  // '#' only opens a comment after whitespace, so host names with '#'
  // survive.
  const ScenarioSpec host = parse_scenario(
      "population: table1\n"
      "table1.rate_limits_mbit: [250]\n"
      "table1.relay_host: US-SW#3\n");
  EXPECT_EQ(std::get<Table1PopulationSpec>(host.population).relay_host,
            "US-SW#3");
}

// ------------------------------------------------------- malformed input ---

TEST(ScenarioSerialize, UnknownKeyNamesKeyAndLine) {
  expect_parse_error(
      "population: table1\n"
      "table1.rate_limits_mbit: [250]\n"
      "table1.rate_limit_mbit: [100]\n",  // near-miss typo
      {"test.yaml:3", "unknown key 'table1.rate_limit_mbit'"});
}

TEST(ScenarioSerialize, WrongTypeNamesKeyLineAndValue) {
  expect_parse_error(
      "seed: banana\n"
      "population: table1\n"
      "table1.rate_limits_mbit: [250]\n",
      {"test.yaml:1", "key 'seed'", "banana"});
  expect_parse_error(
      "periods: 2.5\n"
      "population: table1\n"
      "table1.rate_limits_mbit: [250]\n",
      {"test.yaml:1", "key 'periods'", "2.5"});
  expect_parse_error(
      "record_outcomes: yes\n"
      "population: table1\n"
      "table1.rate_limits_mbit: [250]\n",
      {"test.yaml:1", "key 'record_outcomes'", "yes"});
}

TEST(ScenarioSerialize, TrailingGarbageInNumberRejected) {
  expect_parse_error(
      "population: synthetic\n"
      "synthetic.relays: 40k\n"
      "team.capacity_bits: [8e8]\n",
      {"test.yaml:2", "key 'synthetic.relays'", "40k"});
}

TEST(ScenarioSerialize, MissingRequiredPopulation) {
  expect_parse_error("seed: 1\n", {"missing required key 'population'"});
}

TEST(ScenarioSerialize, UnknownPopulationValue) {
  expect_parse_error("population: labnet\n",
                     {"test.yaml:1", "key 'population'", "labnet"});
}

TEST(ScenarioSerialize, DuplicateKeyNamesBothLines) {
  expect_parse_error(
      "seed: 1\n"
      "population: table1\n"
      "table1.rate_limits_mbit: [250]\n"
      "seed: 2\n",
      {"test.yaml:4", "duplicate key 'seed'", "line 1"});
}

TEST(ScenarioSerialize, WrongPopulationSectionGetsTargetedMessage) {
  // A valid shadow key under a table1 population should say *why* it is
  // rejected, not just "unknown key".
  expect_parse_error(
      "population: table1\n"
      "table1.rate_limits_mbit: [250]\n"
      "shadow.relays: 100\n",
      {"test.yaml:3", "shadow.relays", "does not apply",
       "population is 'table1'"});
}

TEST(ScenarioSerialize, MalformedListRejected) {
  expect_parse_error(
      "population: table1\n"
      "table1.rate_limits_mbit: 250\n",  // missing brackets
      {"test.yaml:2", "expected a list"});
  expect_parse_error(
      "population: table1\n"
      "table1.rate_limits_mbit: [250, , 100]\n",
      {"test.yaml:2", "empty list element"});
}

TEST(ScenarioSerialize, BadScheduleAndVersionRejected) {
  expect_parse_error(
      "schedule: fastest\n"
      "population: table1\n"
      "table1.rate_limits_mbit: [250]\n",
      {"test.yaml:1", "key 'schedule'", "fastest"});
  expect_parse_error(
      "flashflow_scenario: 2\n"
      "population: table1\n"
      "table1.rate_limits_mbit: [250]\n",
      {"test.yaml:1", "version 2"});
}

TEST(ScenarioSerialize, UnknownPathModelValueNamesKeyAndLine) {
  expect_parse_error(
      "population: synthetic\n"
      "synthetic.relays: 40\n"
      "team.capacity_bits: [8e8]\n"
      "topology.path_model: mesh\n",
      {"test.yaml:4", "key 'topology.path_model'", "expected dense or tiered",
       "mesh"});
}

TEST(ScenarioSerialize, TierParamsWithoutTieredModelRejected) {
  // The tier keys parse fine but spec validation must refuse to silently
  // drop them under the default dense model.
  expect_parse_error(
      "population: synthetic\n"
      "synthetic.relays: 40\n"
      "team.capacity_bits: [8e8]\n"
      "topology.tiers: 3\n",
      {"tier parameters apply only to path_model 'tiered'"});
}

TEST(ScenarioSerialize, TieredModelRequiresSyntheticPopulation) {
  expect_parse_error(
      "population: table1\n"
      "table1.rate_limits_mbit: [250]\n"
      "topology.path_model: tiered\n",
      {"tiered path model applies only to synthetic populations"});
}

TEST(ScenarioSerialize, WrongTierTableLengthRejected) {
  // 3 tiers need 6 upper-triangle entries.
  expect_parse_error(
      "population: synthetic\n"
      "synthetic.relays: 40\n"
      "team.capacity_bits: [8e8]\n"
      "topology.path_model: tiered\n"
      "topology.tiers: 3\n"
      "topology.tier_rtt_s: [0.01, 0.05, 0.09]\n",
      {"tier_rtt_s needs tiers*(tiers+1)/2 entries"});
}

TEST(ScenarioSerialize, JitterOutOfRangeRejected) {
  expect_parse_error(
      "population: synthetic\n"
      "synthetic.relays: 40\n"
      "team.capacity_bits: [8e8]\n"
      "topology.path_model: tiered\n"
      "topology.rtt_jitter: 1.5\n",
      {"rtt_jitter must be in [0, 1)"});
}

TEST(ScenarioSerialize, SpeedTestWindowRequiresSyntheticAndPositiveTest) {
  expect_parse_error(
      "population: table1\n"
      "table1.rate_limits_mbit: [250]\n"
      "speedtest.warmup_days: 5\n",
      {"speedtest window requires a synthetic population"});
  expect_parse_error(
      "population: synthetic\n"
      "synthetic.relays: 40\n"
      "team.capacity_bits: [8e8]\n"
      "speedtest.test_duration_hours: 0\n",
      {"positive test duration"});
}

TEST(ScenarioSerialize, MalformedFaultValuesNameKeyAndLine) {
  expect_parse_error(
      "population: table1\n"
      "table1.rate_limits_mbit: [250]\n"
      "faults.slot_timeout: often\n",
      {"test.yaml:3", "key 'faults.slot_timeout'", "often"});
  expect_parse_error(
      "population: table1\n"
      "table1.rate_limits_mbit: [250]\n"
      "faults.max_retries: 1.5\n",
      {"test.yaml:3", "key 'faults.max_retries'", "1.5"});
  // Syntactically valid, semantically out of range: FaultSpec::validate
  // fires through spec validation.
  expect_parse_error(
      "population: table1\n"
      "table1.rate_limits_mbit: [250]\n"
      "faults.report_drop: 1.7\n",
      {"report_drop must be in [0, 1]"});
}

TEST(ScenarioSerialize, LineWithoutColonRejected) {
  expect_parse_error("just some text\n", {"test.yaml:1", "key: value"});
}

TEST(ScenarioSerialize, SemanticValidationStillRuns) {
  // Syntactically fine, semantically invalid — spec.validate() fires
  // (adversary fractions must sum to <= 1).
  EXPECT_THROW(parse_scenario("population: table1\n"
                              "table1.rate_limits_mbit: [250]\n"
                              "adversaries.liar_fraction: 0.7\n"
                              "adversaries.forger_fraction: 0.6\n"),
               std::invalid_argument);
}

TEST(ScenarioSerialize, LoadFileReportsUnopenablePath) {
  try {
    load_scenario_file("/nonexistent/nope.yaml");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/nope.yaml"),
              std::string::npos);
  }
}

TEST(ScenarioSerialize, CheckedInScenariosAllParse) {
  // The files the examples, benches and CI smoke job rely on.
  for (const char* name : {"quickstart", "measure_network", "fig05", "fig07",
                           "sec7", "golden_smoke", "fault_smoke"}) {
    const std::string path =
        default_scenario_dir() + "/" + name + ".yaml";
    EXPECT_NO_THROW(load_scenario_file(path)) << path;
  }
}

// ------------------------------------------------- check_scenario_files ---

TEST(ScenarioSerialize, CheckScenarioFilesReportsEveryFile) {
  // `flashflow validate` must not stop at the first bad file: every path
  // gets its own verdict, bad ones carrying the full diagnostic.
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "ff_check_scenarios_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  const auto write = [&](const char* name, const std::string& text) {
    std::ofstream(dir / name) << text;
    return (dir / name).string();
  };
  const std::string good = write("good.yaml",
                                 "name: good-one\n"
                                 "population: table1\n"
                                 "table1.rate_limits_mbit: [250]\n");
  const std::string bad_key = write("bad_key.yaml",
                                    "population: table1\n"
                                    "table1.rate_limits_mbit: [250]\n"
                                    "bogus_key: 1\n");
  const std::string bad_fault = write("bad_fault.yaml",
                                      "population: table1\n"
                                      "table1.rate_limits_mbit: [250]\n"
                                      "faults.slot_timeout: 2\n");

  const auto checks = check_scenario_files({good, bad_key, bad_fault});
  ASSERT_EQ(checks.size(), 3u);

  EXPECT_TRUE(checks[0].ok);
  EXPECT_EQ(checks[0].path, good);
  EXPECT_EQ(checks[0].name, "good-one");

  EXPECT_FALSE(checks[1].ok);
  EXPECT_NE(checks[1].detail.find("bogus_key"), std::string::npos);
  EXPECT_NE(checks[1].detail.find(":3"), std::string::npos);

  EXPECT_FALSE(checks[2].ok);
  EXPECT_NE(checks[2].detail.find("slot_timeout"), std::string::npos);

  fs::remove_all(dir);
}

TEST(ScenarioSerialize, CheckScenarioFilesHandlesMissingFile) {
  const auto checks = check_scenario_files({"/nonexistent/nope.yaml"});
  ASSERT_EQ(checks.size(), 1u);
  EXPECT_FALSE(checks[0].ok);
  EXPECT_NE(checks[0].detail.find("/nonexistent/nope.yaml"),
            std::string::npos);
}

}  // namespace
}  // namespace flashflow::scenario
