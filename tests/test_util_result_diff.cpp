// diff_result_dirs (util/result_diff.h), the engine behind
// `flashflow diff`. What matters is that a determinism break points at
// the first differing line *and the slot it belongs to*, per artifact,
// instead of cmp's byte offset.
#include "util/result_diff.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

namespace fs = std::filesystem;

namespace flashflow::util {
namespace {

class ResultDiffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = fs::path(::testing::TempDir()) / "result_diff" / info->name();
    fs::remove_all(root_);
    dir_a_ = (root_ / "a").string();
    dir_b_ = (root_ / "b").string();
    fs::create_directories(dir_a_);
    fs::create_directories(dir_b_);
  }
  void TearDown() override { fs::remove_all(root_); }

  void write(const std::string& dir, const std::string& file,
             const std::string& content) {
    std::ofstream out(fs::path(dir) / file);
    out << content;
  }

  fs::path root_;
  std::string dir_a_;
  std::string dir_b_;
};

TEST_F(ResultDiffTest, IdenticalDirsHaveNoDifferences) {
  const std::string csv = "period,relay,slot,bits\n0,relay-1,3,1e6\n";
  write(dir_a_, "results.csv", csv);
  write(dir_b_, "results.csv", csv);
  write(dir_a_, "bandwidth.txt", "ts relay-1 1000\n");
  write(dir_b_, "bandwidth.txt", "ts relay-1 1000\n");
  const DiffResult result = diff_result_dirs(dir_a_, dir_b_);
  EXPECT_TRUE(result.identical);
  EXPECT_TRUE(result.differences.empty());
}

TEST_F(ResultDiffTest, ArtifactMissingFromBothDirsIsSkipped) {
  // Two runs that only wrote bandwidth files: the csv/jsonl artifacts are
  // absent on both sides, which is agreement, not a difference.
  write(dir_a_, "bandwidth.txt", "x\n");
  write(dir_b_, "bandwidth.txt", "x\n");
  EXPECT_TRUE(diff_result_dirs(dir_a_, dir_b_).identical);
}

TEST_F(ResultDiffTest, CsvDifferenceReportsLineAndSlot) {
  write(dir_a_, "results.csv",
        "period,relay,slot,bits\n0,relay-1,23,1e6\n0,relay-2,24,2e6\n");
  write(dir_b_, "results.csv",
        "period,relay,slot,bits\n0,relay-1,23,9e6\n0,relay-2,24,2e6\n");
  const DiffResult result = diff_result_dirs(dir_a_, dir_b_);
  ASSERT_EQ(result.differences.size(), 1u);
  const FileDiff& diff = result.differences[0];
  EXPECT_FALSE(result.identical);
  EXPECT_EQ(diff.file, "results.csv");
  EXPECT_EQ(diff.line, 2);  // first differing line, not the later match
  EXPECT_EQ(diff.slot, 23);
  EXPECT_NE(diff.message.find("line 2"), std::string::npos);
  EXPECT_NE(diff.message.find("slot 23"), std::string::npos);
  EXPECT_NE(diff.message.find("1e6"), std::string::npos);
  EXPECT_NE(diff.message.find("9e6"), std::string::npos);
}

TEST_F(ResultDiffTest, JsonlDifferenceExtractsSlotMember) {
  write(dir_a_, "results.jsonl", "{\"relay\":\"r\",\"slot\":7,\"bits\":1}\n");
  write(dir_b_, "results.jsonl", "{\"relay\":\"r\",\"slot\":7,\"bits\":2}\n");
  const DiffResult result = diff_result_dirs(dir_a_, dir_b_);
  ASSERT_EQ(result.differences.size(), 1u);
  EXPECT_EQ(result.differences[0].slot, 7);
  EXPECT_EQ(result.differences[0].line, 1);
}

TEST_F(ResultDiffTest, HeaderDifferenceHasNoSlot) {
  write(dir_a_, "bandwidth.txt", "946684801 relay-1 1000\n");
  write(dir_b_, "bandwidth.txt", "946684801 relay-1 2000\n");
  const DiffResult result = diff_result_dirs(dir_a_, dir_b_);
  ASSERT_EQ(result.differences.size(), 1u);
  EXPECT_EQ(result.differences[0].slot, -1);
  EXPECT_EQ(result.differences[0].message.find("slot"), std::string::npos);
}

TEST_F(ResultDiffTest, FileMissingFromOneSideIsReported) {
  write(dir_a_, "results.csv", "period,relay,slot,bits\n");
  const DiffResult result = diff_result_dirs(dir_a_, dir_b_);
  ASSERT_EQ(result.differences.size(), 1u);
  EXPECT_EQ(result.differences[0].line, 0);
  EXPECT_NE(result.differences[0].message.find("present only in " + dir_a_),
            std::string::npos);
}

TEST_F(ResultDiffTest, LengthMismatchNamesTheLongerDir) {
  write(dir_a_, "results.csv", "period,relay,slot,bits\n0,r,1,1\n");
  write(dir_b_, "results.csv", "period,relay,slot,bits\n0,r,1,1\n0,r,2,1\n");
  const DiffResult result = diff_result_dirs(dir_a_, dir_b_);
  ASSERT_EQ(result.differences.size(), 1u);
  EXPECT_EQ(result.differences[0].line, 3);
  EXPECT_NE(result.differences[0].message.find(
                dir_b_ + " continues past line 2"),
            std::string::npos);
}

TEST_F(ResultDiffTest, EachDifferingArtifactGetsOneEntry) {
  write(dir_a_, "results.csv", "h\na\n");
  write(dir_b_, "results.csv", "h\nb\n");
  write(dir_a_, "bandwidth.txt", "1\n");
  write(dir_b_, "bandwidth.txt", "2\n");
  const DiffResult result = diff_result_dirs(dir_a_, dir_b_);
  ASSERT_EQ(result.differences.size(), 2u);
  EXPECT_EQ(result.differences[0].file, "results.csv");
  EXPECT_EQ(result.differences[1].file, "bandwidth.txt");
}

TEST_F(ResultDiffTest, NonDirectoryThrows) {
  EXPECT_THROW(diff_result_dirs(dir_a_, (root_ / "missing").string()),
               std::invalid_argument);
  const std::string file = (root_ / "plain.txt").string();
  std::ofstream(file) << "not a dir\n";
  EXPECT_THROW(diff_result_dirs(file, dir_b_), std::invalid_argument);
}

}  // namespace
}  // namespace flashflow::util
