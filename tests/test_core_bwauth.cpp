#include "core/bwauth.h"

#include <gtest/gtest.h>

#include "core/attack.h"
#include "net/units.h"
#include "tor/cpu_model.h"

namespace flashflow::core {
namespace {

net::Topology topo() { return net::make_table1_hosts(); }

Team make_team(const net::Topology& t) {
  Team team(t, {t.find("US-NW"), t.find("US-E"), t.find("IN"),
                t.find("NL")});
  team.measure_measurers(99);
  return team;
}

RelayTarget make_target(const net::Topology& t, double limit_mbit,
                        double prev_mbit) {
  RelayTarget target;
  target.model.name = "relay";
  target.model.nic_up_bits = target.model.nic_down_bits = net::mbit(954);
  target.model.rate_limit_bits =
      limit_mbit > 0 ? net::mbit(limit_mbit) : 0.0;
  target.model.cpu = tor::CpuModel::us_sw();
  target.host = t.find("US-SW");
  target.previous_estimate_bits =
      prev_mbit > 0 ? net::mbit(prev_mbit) : 0.0;
  return target;
}

TEST(Team, MeshEstimatesApproachNics) {
  const auto t = topo();
  const Team team = make_team(t);
  ASSERT_EQ(team.measurers().size(), 4u);
  // Each measurer's estimate is bounded by (and close to) its NIC.
  for (const auto& m : team.measurers()) {
    EXPECT_LE(m.capacity_bits, t.host(m.host).nic_down_bits * 1.01);
    EXPECT_GE(m.capacity_bits, t.host(m.host).nic_down_bits * 0.55);
  }
  EXPECT_GT(team.total_capacity(), net::gbit(3));
}

TEST(Team, SufficiencyCheck) {
  const auto t = topo();
  Team team(t, {t.find("NL")});
  team.set_capacity(0, net::gbit(1));
  Params p;
  EXPECT_TRUE(team.sufficient_for(net::mbit(300), p.excess_factor()));
  EXPECT_FALSE(team.sufficient_for(net::mbit(500), p.excess_factor()));
}

TEST(Team, RejectsEmptyAndBadIndex) {
  const auto t = topo();
  EXPECT_THROW(Team(t, {}), std::invalid_argument);
  Team team(t, {0});
  EXPECT_THROW(team.set_capacity(5, 1.0), std::out_of_range);
}

TEST(BWAuth, AcceptsAccurateGuessInOneRound) {
  const auto t = topo();
  BWAuth auth(t, Params{}, make_team(t), net::mbit(51), 7);
  // Previous estimate equals the true capacity: one slot suffices (§4.2).
  const auto target = make_target(t, 250, 239);
  const auto result = auth.measure_relay(target);
  EXPECT_EQ(result.rounds, 1);
  EXPECT_TRUE(result.accepted);
  EXPECT_NEAR(net::to_mbit(result.estimate_bits), 239, 40);
}

TEST(BWAuth, DoublesGuessForUnderestimatedRelay) {
  const auto t = topo();
  BWAuth auth(t, Params{}, make_team(t), net::mbit(51), 8);
  // True capacity 500 Mbit/s but the old estimate says 30: FlashFlow must
  // escalate z0 (at least doubling each round) until acceptance.
  const auto target = make_target(t, 500, 30);
  const auto result = auth.measure_relay(target);
  EXPECT_GE(result.rounds, 2);
  EXPECT_TRUE(result.accepted);
  EXPECT_NEAR(net::to_mbit(result.estimate_bits), 494, 80);
}

TEST(BWAuth, NewRelayUsesPrior) {
  const auto t = topo();
  BWAuth auth(t, Params{}, make_team(t), net::mbit(51), 9);
  const auto target = make_target(t, 40, /*prev=*/0);  // new relay
  const auto result = auth.measure_relay(target);
  EXPECT_TRUE(result.accepted);
  // 40 Mbit/s < 51 Mbit/s prior: a single round is expected.
  EXPECT_EQ(result.rounds, 1);
}

TEST(BWAuth, VerificationFailureAborts) {
  const auto t = topo();
  BWAuth auth(t, Params{}, make_team(t), net::mbit(51), 10);
  auto target = make_target(t, 250, 239);
  target.behavior = TargetBehavior::kForgeEchoes;
  const auto result = auth.measure_relay(target);
  EXPECT_TRUE(result.verification_failed);
  EXPECT_DOUBLE_EQ(result.estimate_bits, 0.0);
}

TEST(BWAuth, NetworkFileCoversAllRelays) {
  const auto t = topo();
  BWAuth auth(t, Params{}, make_team(t), net::mbit(51), 11);
  std::vector<RelayTarget> targets;
  for (const double cap : {50.0, 100.0, 250.0}) {
    auto target = make_target(t, cap, cap);
    target.model.name = "relay-" + std::to_string(static_cast<int>(cap));
    targets.push_back(std::move(target));
  }
  const auto file = auth.measure_network(targets);
  ASSERT_EQ(file.size(), 3u);
  for (std::size_t i = 0; i < file.size(); ++i) {
    EXPECT_EQ(file[i].fingerprint, targets[i].model.name);
    EXPECT_GT(file[i].capacity_bits, 0.0);
    EXPECT_DOUBLE_EQ(file[i].weight, file[i].capacity_bits);
  }
}

TEST(Attack, PartTimeFailureProbabilityMath) {
  // q < 1/2 fails with probability > 0.5 (§5).
  EXPECT_GT(part_time_failure_probability(3, 0.4), 0.5);
  EXPECT_GT(part_time_failure_probability(5, 0.49), 0.5);
  // Full-time provisioning never fails.
  EXPECT_NEAR(part_time_failure_probability(5, 1.0), 0.0, 1e-12);
  // Never provisioning always fails.
  EXPECT_NEAR(part_time_failure_probability(5, 0.0), 1.0, 1e-12);
  EXPECT_THROW(part_time_failure_probability(0, 0.5),
               std::invalid_argument);
  EXPECT_THROW(part_time_failure_probability(3, 1.5),
               std::invalid_argument);
}

TEST(Attack, MonteCarloMatchesAnalytic) {
  const double analytic = part_time_failure_probability(5, 0.3);
  const double empirical = simulate_part_time_attack(5, 0.3, 20000, 3);
  EXPECT_NEAR(empirical, analytic, 0.02);
}

TEST(Attack, BackgroundLieBoundedBy133) {
  const auto t = topo();
  Params p;
  Team team(t, {t.find("NL")});
  team.set_capacity(0, net::gbit(1.5));
  RelayTarget target = make_target(t, 250, 239);
  target.model.background_demand_bits = net::mbit(200);
  const auto result = background_lie_advantage(t, p, target, team, 13);
  EXPECT_GT(result.advantage, 1.1);
  EXPECT_LE(result.advantage, p.max_inflation() + 0.03);
}

TEST(Attack, SybilQueueDelayGrowsWithFlood) {
  Params p;
  const double spare = net::gbit(1);
  const int d0 = sybil_queue_delay_slots(0, net::mbit(51), net::mbit(51),
                                         spare, p);
  const int d100 = sybil_queue_delay_slots(100, net::mbit(51),
                                           net::mbit(51), spare, p);
  EXPECT_EQ(d0, 0);
  EXPECT_GT(d100, d0);
  // Benign relays are still measured eventually (§5): bounded delay.
  EXPECT_LT(d100, 100);
}

}  // namespace
}  // namespace flashflow::core
