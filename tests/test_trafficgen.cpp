#include <gtest/gtest.h>

#include "trafficgen/benchmark.h"
#include "trafficgen/markov.h"

namespace flashflow::trafficgen {
namespace {

TEST(Markov, StreamsWithinHorizon) {
  MarkovParams params;
  sim::Rng rng(1);
  const auto streams =
      generate_user_streams(params, 3600 * sim::kSecond, rng);
  ASSERT_FALSE(streams.empty());
  for (const auto& s : streams) {
    EXPECT_GE(s.start, 0);
    EXPECT_LT(s.start, 3600 * sim::kSecond);
    EXPECT_GT(s.bytes, 0.0);
  }
}

TEST(Markov, StartsAreNondecreasing) {
  MarkovParams params;
  sim::Rng rng(2);
  const auto streams =
      generate_user_streams(params, 1800 * sim::kSecond, rng);
  for (std::size_t i = 1; i < streams.size(); ++i)
    EXPECT_LE(streams[i - 1].start, streams[i].start);
}

TEST(Markov, EmpiricalLoadMatchesAnalytic) {
  MarkovParams params;
  sim::Rng rng(3);
  double total_bytes = 0;
  const double horizon_s = 40000.0;
  for (int u = 0; u < 30; ++u) {
    const auto streams = generate_user_streams(
        params, sim::from_seconds(horizon_s), rng);
    for (const auto& s : streams) total_bytes += s.bytes;
  }
  const double empirical = total_bytes / (horizon_s * 30);
  const double analytic = expected_user_load_bytes_per_s(params);
  // Heavy-tailed sizes: generous tolerance.
  EXPECT_GT(empirical, analytic * 0.5);
  EXPECT_LT(empirical, analytic * 2.0);
}

TEST(Markov, AggregateScalesWithUsers) {
  MarkovParams params;
  EXPECT_NEAR(aggregate_offered_bits(params, 100),
              100 * aggregate_offered_bits(params, 1), 1.0);
}

TEST(Benchmark, ConstantsMatchPaper) {
  EXPECT_DOUBLE_EQ(kTransferBytes[0], 50.0 * 1024);
  EXPECT_DOUBLE_EQ(kTransferBytes[1], 1024.0 * 1024);
  EXPECT_DOUBLE_EQ(kTransferBytes[2], 5.0 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(kTransferTimeoutS[0], 15.0);
  EXPECT_DOUBLE_EQ(kTransferTimeoutS[1], 60.0);
  EXPECT_DOUBLE_EQ(kTransferTimeoutS[2], 120.0);
}

TEST(Benchmark, ResultsFilterBySizeAndTimeout) {
  BenchmarkResults results;
  results.records.push_back(
      {TransferSize::k50KiB, 0, 0.5, 1.0, false});
  results.records.push_back(
      {TransferSize::k50KiB, 0, 0.5, 15.0, true});
  results.records.push_back({TransferSize::k1MiB, 0, 0.7, 4.0, false});

  EXPECT_EQ(results.ttfb_all().size(), 2u);  // timeouts excluded
  EXPECT_EQ(results.ttlb_for(TransferSize::k50KiB).size(), 1u);
  EXPECT_DOUBLE_EQ(results.ttlb_for(TransferSize::k1MiB)[0], 4.0);
  EXPECT_NEAR(results.error_rate(), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(results.error_rate_for(TransferSize::k50KiB), 0.5);
  EXPECT_DOUBLE_EQ(results.error_rate_for(TransferSize::k1MiB), 0.0);
  EXPECT_DOUBLE_EQ(results.error_rate_for(TransferSize::k5MiB), 0.0);
}

TEST(Benchmark, EmptyResults) {
  BenchmarkResults results;
  EXPECT_DOUBLE_EQ(results.error_rate(), 0.0);
  EXPECT_TRUE(results.ttfb_all().empty());
}

}  // namespace
}  // namespace flashflow::trafficgen
