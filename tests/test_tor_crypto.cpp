#include "tor/crypto.h"

#include <gtest/gtest.h>

#include <array>

#include "tor/cell.h"

namespace flashflow::tor {
namespace {

TEST(CellCipher, RoundTrips) {
  CellCipher cipher(0x1234);
  std::array<std::uint8_t, 64> data{};
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i);
  auto encrypted = data;
  cipher.apply(7, encrypted);
  EXPECT_NE(encrypted, data);
  cipher.apply(7, encrypted);  // symmetric
  EXPECT_EQ(encrypted, data);
}

TEST(CellCipher, CounterChangesKeystream) {
  CellCipher cipher(0x1234);
  std::array<std::uint8_t, 32> a{}, b{};
  cipher.apply(1, a);
  cipher.apply(2, b);
  EXPECT_NE(a, b);
}

TEST(CellCipher, KeyChangesKeystream) {
  std::array<std::uint8_t, 32> a{}, b{};
  CellCipher(1).apply(0, a);
  CellCipher(2).apply(0, b);
  EXPECT_NE(a, b);
}

TEST(DeriveKey, LabelSeparation) {
  const auto fwd = derive_key(42, "forward");
  const auto bwd = derive_key(42, "backward");
  EXPECT_NE(fwd, bwd);
  EXPECT_EQ(fwd, derive_key(42, "forward"));  // deterministic
}

TEST(KeyedDigest, DetectsTampering) {
  std::array<std::uint8_t, 16> data{};
  const auto d1 = keyed_digest(5, data);
  data[3] ^= 1;
  const auto d2 = keyed_digest(5, data);
  EXPECT_NE(d1, d2);
}

TEST(KeyedDigest, KeyMatters) {
  std::array<std::uint8_t, 16> data{};
  EXPECT_NE(keyed_digest(1, data), keyed_digest(2, data));
}

TEST(Handshake, SymmetricKeyAgreement) {
  EXPECT_EQ(handshake(111, 222), handshake(222, 111));
  EXPECT_NE(handshake(111, 222), handshake(111, 333));
}

TEST(Cell, SizesMatchTor) {
  EXPECT_EQ(kCellSize, 514u);
  EXPECT_EQ(kCellPayloadSize, 509u);
  Cell c;
  EXPECT_EQ(c.payload_span().size(), kCellPayloadSize);
}

TEST(Cell, MeasurementCellPredicate) {
  EXPECT_TRUE(is_measurement_cell(CellCommand::kMeasure));
  EXPECT_TRUE(is_measurement_cell(CellCommand::kMeasureEcho));
  EXPECT_FALSE(is_measurement_cell(CellCommand::kRelayData));
  EXPECT_FALSE(is_measurement_cell(CellCommand::kSpeedtest));
}

}  // namespace
}  // namespace flashflow::tor
