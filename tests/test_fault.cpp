#include "fault/fault.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "sim/random.h"

namespace flashflow::fault {
namespace {

FaultSpec all_channels(double rate) {
  FaultSpec spec;
  spec.measurer_crash = rate;
  spec.relay_disconnect = rate;
  spec.report_drop = rate;
  spec.report_truncate = rate;
  spec.slot_timeout = rate;
  return spec;
}

TEST(FaultSpec, DefaultIsInert) {
  const FaultSpec spec;
  EXPECT_FALSE(spec.enabled());
  spec.validate();  // must not throw
  EXPECT_FALSE(FaultPlan().enabled());
  EXPECT_FALSE(FaultPlan(spec, 42).enabled());
}

TEST(FaultSpec, AnyPositiveRateEnables) {
  for (const auto field :
       {&FaultSpec::measurer_crash, &FaultSpec::relay_disconnect,
        &FaultSpec::report_drop, &FaultSpec::report_truncate,
        &FaultSpec::slot_timeout}) {
    FaultSpec spec;
    spec.*field = 0.01;
    EXPECT_TRUE(spec.enabled());
    EXPECT_TRUE(FaultPlan(spec, 42).enabled());
  }
}

TEST(FaultSpec, ValidateRejectsOutOfRange) {
  for (const auto field :
       {&FaultSpec::measurer_crash, &FaultSpec::relay_disconnect,
        &FaultSpec::report_drop, &FaultSpec::report_truncate,
        &FaultSpec::slot_timeout}) {
    FaultSpec low;
    low.*field = -0.1;
    EXPECT_THROW(low.validate(), std::invalid_argument);
    FaultSpec high;
    high.*field = 1.5;
    EXPECT_THROW(high.validate(), std::invalid_argument);
  }
  FaultSpec retries;
  retries.max_retries = -1;
  EXPECT_THROW(retries.validate(), std::invalid_argument);
  FaultSpec usable;
  usable.min_usable_seconds = 0;
  EXPECT_THROW(usable.validate(), std::invalid_argument);
}

// Fault occurrence is a pure function of (seed, slot, entity): asking the
// same question twice — or from a plan built twice — gives the same
// answer. This is what makes retry scheduling and multi-threaded
// execution reproducible.
TEST(FaultPlan, QueriesArePureFunctions) {
  const FaultSpec spec = all_channels(0.3);
  const FaultPlan a(spec, 20210613);
  const FaultPlan b(spec, 20210613);
  const std::uint64_t relay = sim::hash_tag("relay/alpha");
  const std::uint64_t host = sim::hash_tag("host/US-E");
  for (std::uint64_t slot = 0; slot < 64; ++slot) {
    EXPECT_EQ(a.slot_timeout(slot), b.slot_timeout(slot));
    EXPECT_EQ(a.slot_timeout(slot), a.slot_timeout(slot));
    EXPECT_EQ(a.relay_disconnect_second(slot, relay, 30),
              b.relay_disconnect_second(slot, relay, 30));
    EXPECT_EQ(a.measurer_crash_second(slot, host, 30),
              b.measurer_crash_second(slot, host, 30));
    EXPECT_EQ(a.report_seconds(slot, relay, host, 30),
              b.report_seconds(slot, relay, host, 30));
  }
}

TEST(FaultPlan, SeedChangesOutcomes) {
  const FaultSpec spec = all_channels(0.5);
  const FaultPlan a(spec, 1);
  const FaultPlan b(spec, 2);
  const std::uint64_t relay = sim::hash_tag("relay/alpha");
  int differing = 0;
  for (std::uint64_t slot = 0; slot < 256; ++slot)
    differing += a.relay_disconnect_second(slot, relay, 30) !=
                 b.relay_disconnect_second(slot, relay, 30);
  EXPECT_GT(differing, 0);
}

TEST(FaultPlan, ZeroRateChannelNeverFires) {
  FaultSpec spec;
  spec.relay_disconnect = 1.0;  // other channels stay zero
  const FaultPlan plan(spec, 20210613);
  const std::uint64_t relay = sim::hash_tag("relay/alpha");
  const std::uint64_t host = sim::hash_tag("host/US-E");
  for (std::uint64_t slot = 0; slot < 128; ++slot) {
    EXPECT_FALSE(plan.slot_timeout(slot));
    EXPECT_EQ(plan.measurer_crash_second(slot, host, 30), -1);
    EXPECT_EQ(plan.report_seconds(slot, relay, host, 30), 30);
    // ... while the armed channel fires every time at rate 1.
    EXPECT_NE(plan.relay_disconnect_second(slot, relay, 30), -1);
  }
}

TEST(FaultPlan, HigherRateFiresMoreOften) {
  const std::uint64_t relay = sim::hash_tag("relay/alpha");
  const auto disconnects = [&](double rate) {
    FaultSpec spec;
    spec.relay_disconnect = rate;
    const FaultPlan plan(spec, 20210613);
    int fired = 0;
    for (std::uint64_t slot = 0; slot < 1000; ++slot)
      fired += plan.relay_disconnect_second(slot, relay, 30) != -1;
    return fired;
  };
  const int low = disconnects(0.05);
  const int high = disconnects(0.5);
  // ~50 vs ~500 expected; wide margins keep this robust to RNG detail.
  EXPECT_GT(low, 0);
  EXPECT_LT(low, 200);
  EXPECT_GT(high, 300);
  EXPECT_GT(high, 2 * low);
}

// Crash/disconnect seconds land strictly inside the slot: second 0 would
// be indistinguishable from a whole-slot timeout, and slot_seconds would
// be no fault at all. Truncated reports keep at least one second.
TEST(FaultPlan, FaultSecondsLandInsideTheSlot) {
  const FaultSpec spec = all_channels(1.0);
  const FaultPlan plan(spec, 7);
  const std::uint64_t relay = sim::hash_tag("relay/alpha");
  const std::uint64_t host = sim::hash_tag("host/US-E");
  for (std::uint64_t slot = 0; slot < 500; ++slot) {
    const int down = plan.relay_disconnect_second(slot, relay, 30);
    ASSERT_GE(down, 1);
    ASSERT_LT(down, 30);
    const int crash = plan.measurer_crash_second(slot, host, 30);
    ASSERT_GE(crash, 1);
    ASSERT_LT(crash, 30);
    const int reported = plan.report_seconds(slot, relay, host, 30);
    ASSERT_GE(reported, 0);
    ASSERT_LE(reported, 30);
  }
}

// Distinct entities in the same slot draw independent faults — a
// disconnect for one relay must not imply one for its slot-mates.
TEST(FaultPlan, EntitiesDrawIndependently) {
  FaultSpec spec;
  spec.relay_disconnect = 0.5;
  const FaultPlan plan(spec, 20210613);
  const std::uint64_t a = sim::hash_tag("relay/alpha");
  const std::uint64_t b = sim::hash_tag("relay/beta");
  int differing = 0;
  for (std::uint64_t slot = 0; slot < 256; ++slot)
    differing += (plan.relay_disconnect_second(slot, a, 30) == -1) !=
                 (plan.relay_disconnect_second(slot, b, 30) == -1);
  EXPECT_GT(differing, 0);
}

}  // namespace
}  // namespace flashflow::fault
