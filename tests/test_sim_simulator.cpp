#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace flashflow::sim {
namespace {

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator s;
  std::vector<SimTime> seen;
  s.schedule_at(5 * kSecond, [&] { seen.push_back(s.now()); });
  s.schedule_at(2 * kSecond, [&] { seen.push_back(s.now()); });
  s.run();
  EXPECT_EQ(seen, (std::vector<SimTime>{2 * kSecond, 5 * kSecond}));
  EXPECT_EQ(s.now(), 5 * kSecond);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator s;
  SimTime fired_at = -1;
  s.schedule_in(3 * kSecond, [&] {
    s.schedule_in(2 * kSecond, [&] { fired_at = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired_at, 5 * kSecond);
}

TEST(Simulator, SchedulePastThrows) {
  Simulator s;
  s.schedule_at(10, [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(5, [] {}), std::invalid_argument);
  EXPECT_THROW(s.schedule_in(-1, [] {}), std::invalid_argument);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator s;
  int fired = 0;
  s.schedule_at(1 * kSecond, [&] { ++fired; });
  s.schedule_at(10 * kSecond, [&] { ++fired; });
  s.run_until(5 * kSecond);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), 5 * kSecond);  // clock lands exactly on the deadline
  s.run_until(20 * kSecond);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, PeriodicTaskRunsUntilFalse) {
  Simulator s;
  int count = 0;
  s.schedule_every(kSecond, [&] {
    ++count;
    return count < 5;
  });
  s.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(s.now(), 5 * kSecond);
}

TEST(Simulator, PeriodicRejectsNonPositiveInterval) {
  Simulator s;
  EXPECT_THROW(s.schedule_every(0, [] { return false; }),
               std::invalid_argument);
}

TEST(Simulator, StopHaltsRun) {
  Simulator s;
  int fired = 0;
  s.schedule_at(1, [&] {
    ++fired;
    s.stop();
  });
  s.schedule_at(2, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.stopped());
}

TEST(Simulator, CancelScheduledEvent) {
  Simulator s;
  bool fired = false;
  const EventId id = s.schedule_at(5, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, EventsDispatchedCounter) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.schedule_at(i, [] {});
  s.run();
  EXPECT_EQ(s.events_dispatched(), 7u);
}

TEST(TimeHelpers, SecondsRoundTrip) {
  EXPECT_EQ(from_seconds(1.5), 1'500'000);
  EXPECT_DOUBLE_EQ(to_seconds(2'500'000), 2.5);
  EXPECT_EQ(from_seconds(0.0000004), 0);  // rounds to nearest microsecond
  EXPECT_EQ(kDay, 86'400'000'000LL);
}

}  // namespace
}  // namespace flashflow::sim
