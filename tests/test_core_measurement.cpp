#include "core/measurement.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include <numeric>

#include "core/verification.h"
#include "net/units.h"
#include "tor/cell.h"
#include "tor/cpu_model.h"

namespace flashflow::core {
namespace {

net::Topology table1() { return net::make_table1_hosts(); }

tor::RelayModel us_sw_relay(double limit_mbit, double background_mbit = 0) {
  tor::RelayModel r;
  r.name = "target";
  r.nic_up_bits = r.nic_down_bits = net::mbit(954);
  r.rate_limit_bits = limit_mbit > 0 ? net::mbit(limit_mbit) : 0.0;
  r.cpu = tor::CpuModel::us_sw();
  r.background_demand_bits = net::mbit(background_mbit);
  return r;
}

TEST(ClampBackground, Formula) {
  // y <= x * r / (1 - r)
  EXPECT_DOUBLE_EQ(clamp_background(100.0, 300.0, 0.25), 100.0);
  EXPECT_DOUBLE_EQ(clamp_background(200.0, 300.0, 0.25), 100.0);
  EXPECT_DOUBLE_EQ(clamp_background(1e9, 300.0, 0.25), 100.0);
  EXPECT_DOUBLE_EQ(clamp_background(50.0, 0.0, 0.25), 0.0);
  EXPECT_THROW(clamp_background(1.0, 1.0, 1.0), std::invalid_argument);
}

TEST(SlotRunner, MeasuresRateLimitedRelayAccurately) {
  const auto topo = table1();
  Params params;
  SlotRunner runner(topo, params, sim::Rng(1));
  const auto relay = us_sw_relay(250);
  const MeasurerSlot m{topo.find("NL"),
                       params.excess_factor() * net::mbit(250), 160};
  const auto out = runner.run(relay, topo.find("US-SW"), {&m, 1});
  ASSERT_EQ(out.z_bits.size(), 30u);
  EXPECT_NEAR(out.estimate_bits, relay.ground_truth(160),
              relay.ground_truth(160) * 0.15);
  EXPECT_FALSE(out.verification_failed);
}

TEST(SlotRunner, EstimateIsMedianOfZ) {
  const auto topo = table1();
  Params params;
  SlotRunner runner(topo, params, sim::Rng(2));
  const auto relay = us_sw_relay(100);
  const MeasurerSlot m{topo.find("NL"),
                       params.excess_factor() * net::mbit(100), 160};
  const auto out = runner.run(relay, topo.find("US-SW"), {&m, 1});
  auto z = out.z_bits;
  std::nth_element(z.begin(), z.begin() + z.size() / 2, z.end());
  // Median of 30 (even count averages the pair, but nth gives a bound).
  EXPECT_NEAR(out.estimate_bits, z[z.size() / 2],
              out.estimate_bits * 0.05);
}

TEST(SlotRunner, BurstSpikeInFirstSecond) {
  const auto topo = table1();
  Params params;
  SlotRunner runner(topo, params, sim::Rng(3));
  auto relay = us_sw_relay(250);
  relay.burst_seconds = 0.25;
  const MeasurerSlot m{topo.find("NL"), net::mbit(900), 160};
  const auto out = runner.run(relay, topo.find("US-SW"), {&m, 1});
  // Fig 7: the first second spends the accumulated bucket.
  const double later_mean =
      std::accumulate(out.z_bits.begin() + 5, out.z_bits.end(), 0.0) /
      static_cast<double>(out.z_bits.size() - 5);
  EXPECT_GT(out.z_bits[0], later_mean * 1.1);
}

TEST(SlotRunner, BackgroundClampedToRatio) {
  const auto topo = table1();
  Params params;  // r = 0.25
  SlotRunner runner(topo, params, sim::Rng(4));
  const auto relay = us_sw_relay(250, /*background=*/50);
  const MeasurerSlot m{topo.find("NL"),
                       params.excess_factor() * net::mbit(250), 160};
  const auto out = runner.run(relay, topo.find("US-SW"), {&m, 1});
  for (std::size_t j = 1; j < out.y_clamped_bits.size(); ++j) {
    EXPECT_LE(out.y_clamped_bits[j],
              out.x_bits[j] * 0.25 / 0.75 + 1.0);
  }
  // Honest relay's reported background equals what it forwarded (50 Mbit/s
  // fits within the allowance at 250 Mbit/s capacity).
  const double mid_y = out.y_reported_bits[15];
  EXPECT_NEAR(net::to_mbit(mid_y), 50, 10);
}

TEST(SlotRunner, LyingRelayGainsAtMostOneThird) {
  const auto topo = table1();
  Params params;
  // A relay with plenty of real background that it *withholds* while
  // reporting the maximum: §5 bounds the gain by 1/(1-r) = 1.33.
  const auto relay = us_sw_relay(250, /*background=*/200);
  const MeasurerSlot m{topo.find("NL"),
                       params.excess_factor() * net::mbit(250), 160};

  SlotRunner honest_runner(topo, params, sim::Rng(5));
  const auto honest =
      honest_runner.run(relay, topo.find("US-SW"), {&m, 1});
  SlotRunner lying_runner(topo, params, sim::Rng(5));
  const auto lying = lying_runner.run(relay, topo.find("US-SW"), {&m, 1},
                                      TargetBehavior::kLieAboutBackground);
  const double advantage = lying.estimate_bits / honest.estimate_bits;
  EXPECT_LE(advantage, 1.0 / (1.0 - params.ratio) + 0.02);
  EXPECT_GT(advantage, 1.05);  // the lie does help, up to the clamp
}

TEST(SlotRunner, ForgedEchoesDetected) {
  const auto topo = table1();
  Params params;  // p_check = 1e-5, ~megabytes of cells -> certain catch
  SlotRunner runner(topo, params, sim::Rng(6));
  const auto relay = us_sw_relay(250);
  const MeasurerSlot m{topo.find("NL"),
                       params.excess_factor() * net::mbit(250), 160};
  const auto out = runner.run(relay, topo.find("US-SW"), {&m, 1},
                              TargetBehavior::kForgeEchoes);
  EXPECT_TRUE(out.verification_failed);
  EXPECT_DOUBLE_EQ(out.estimate_bits, 0.0);
}

TEST(SlotRunner, PerMeasurerReportsSumToTotal) {
  const auto topo = table1();
  Params params;
  SlotRunner runner(topo, params, sim::Rng(7));
  const auto relay = us_sw_relay(500);
  std::vector<MeasurerSlot> team = {
      {topo.find("US-E"), net::mbit(800), 80},
      {topo.find("NL"), net::mbit(800), 80},
  };
  const auto out = runner.run(relay, topo.find("US-SW"), team);
  ASSERT_EQ(out.x_by_measurer.size(), 2u);
  for (std::size_t j = 0; j < out.x_bits.size(); ++j) {
    const double sum =
        out.x_by_measurer[0][j] + out.x_by_measurer[1][j];
    EXPECT_NEAR(sum, out.x_bits[j], out.x_bits[j] * 1e-6 + 1.0);
  }
}

TEST(SlotRunner, ConcurrentTargetsShareMeasurers) {
  const auto topo = table1();
  Params params;
  SlotRunner runner(topo, params, sim::Rng(8));
  // Appendix F: two 400 Mbit/s relays on US-SW measured by US-E + NL.
  // ConcurrentTarget borrows the relay model, so the models live here.
  std::vector<tor::RelayModel> models(2, us_sw_relay(400));
  models[0].name = "r0";
  models[1].name = "r1";
  std::vector<SlotRunner::ConcurrentTarget> targets(2);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    targets[i].relay = &models[i];
    targets[i].host = topo.find("US-SW");
    targets[i].team = {{topo.find("US-E"), net::mbit(600), 40},
                       {topo.find("NL"), net::mbit(600), 40}};
  }
  const auto outs = runner.run_concurrent(targets);
  ASSERT_EQ(outs.size(), 2u);
  for (const auto& out : outs) {
    const double gt = models[0].ground_truth(80);
    EXPECT_GT(out.estimate_bits, gt * 0.75);
    EXPECT_LT(out.estimate_bits, gt * 1.06);
  }
}

TEST(SlotRunner, OfferedRateBoundedByAllocation) {
  const auto topo = table1();
  Params params;
  SlotRunner runner(topo, params, sim::Rng(9));
  MeasurerSlot m{topo.find("NL"), net::mbit(100), 160};
  EXPECT_LE(runner.offered_rate(m, topo.find("US-SW")),
            net::mbit(100) + 1.0);
  m.sockets = 0;
  EXPECT_DOUBLE_EQ(runner.offered_rate(m, topo.find("US-SW")), 0.0);
}

TEST(SlotRunner, SocketCountLimitsOfferedRate) {
  const auto topo = table1();
  Params params;
  SlotRunner runner(topo, params, sim::Rng(10));
  // IN's loaded path: few sockets cannot deliver much (Appendix E.1).
  MeasurerSlot few{topo.find("IN"), net::gbit(1), 10};
  MeasurerSlot many{topo.find("IN"), net::gbit(1), 160};
  EXPECT_LT(runner.offered_rate(few, topo.find("US-SW")),
            runner.offered_rate(many, topo.find("US-SW")) * 0.2);
}

TEST(ClampBackgroundProperty, NeverExceedsRatioBound) {
  // For any reported y, the clamp admits at most x*r/(1-r) and never more
  // than the report itself.
  sim::Rng rng(101);
  for (int trial = 0; trial < 2000; ++trial) {
    const double x = rng.uniform(0.0, net::gbit(2));
    const double y = rng.uniform(0.0, net::gbit(4));
    const double r = rng.uniform(0.0, 0.95);
    const double clamped = clamp_background(y, x, r);
    EXPECT_LE(clamped, x * r / (1.0 - r) + 1e-6);
    EXPECT_LE(clamped, y);
    EXPECT_GE(clamped, 0.0);
  }
}

TEST(ClampBackgroundProperty, MonotoneInBothArguments) {
  sim::Rng rng(102);
  for (int trial = 0; trial < 500; ++trial) {
    const double r = rng.uniform(0.0, 0.95);
    const double x = rng.uniform(0.0, net::gbit(1));
    const double y = rng.uniform(0.0, net::gbit(2));
    const double dx = rng.uniform(0.0, net::mbit(500));
    const double dy = rng.uniform(0.0, net::mbit(500));
    // Raising the report can only raise what the clamp admits...
    EXPECT_LE(clamp_background(y, x, r), clamp_background(y + dy, x, r));
    // ...and so can raising the measured traffic.
    EXPECT_LE(clamp_background(y, x, r), clamp_background(y, x + dx, r));
  }
}

TEST(SlotRunnerRegression, ForgeDetectionMatchesEvasionFormula) {
  // §5: a relay forging k cell echoes in a slot evades the sampled spot
  // check with probability (1-p)^k. Drive many independently seeded slots
  // against a small relay with p scaled down so detection is a coin flip,
  // and compare the empirical failure rate with 1-(1-p)^k predicted from
  // each slot's actual traffic volume.
  const auto topo = table1();
  Params params;
  params.check_probability = 3e-6;
  const auto relay = us_sw_relay(10);
  const MeasurerSlot m{topo.find("NL"),
                       params.excess_factor() * net::mbit(10), 160};

  const int kRuns = 300;
  int failures = 0;
  double predicted_sum = 0.0;
  for (int run = 0; run < kRuns; ++run) {
    SlotRunner runner(topo, params, sim::Rng(9000 + run));
    const auto out = runner.run(relay, topo.find("US-SW"), {&m, 1},
                                TargetBehavior::kForgeEchoes);
    failures += out.verification_failed ? 1 : 0;
    const double total_bits =
        std::accumulate(out.x_bits.begin(), out.x_bits.end(), 0.0);
    const auto forged_cells = static_cast<std::uint64_t>(
        net::bytes_from_bits(total_bits) / tor::kCellSize);
    predicted_sum +=
        1.0 - evasion_probability(params.check_probability, forged_cells);
  }
  const double empirical = static_cast<double>(failures) / kRuns;
  const double predicted = predicted_sum / kRuns;
  // The prediction should sit in coin-flip territory, and the empirical
  // rate within ~4 binomial standard deviations of it.
  EXPECT_GT(predicted, 0.05);
  EXPECT_LT(predicted, 0.95);
  const double sigma =
      std::sqrt(predicted * (1.0 - predicted) / kRuns);
  EXPECT_NEAR(empirical, predicted, 4.0 * sigma + 0.01);
}

TEST(SlotRunnerRegression, LiarNeverTripsVerification) {
  // Lying about background is neutralized by the clamp, not the spot
  // check: across seeds the liar must never fail verification, and its
  // inflated estimate stays within the 1/(1-r) bound of the honest run.
  const auto topo = table1();
  Params params;
  const auto relay = us_sw_relay(100, /*background=*/80);
  const MeasurerSlot m{topo.find("NL"),
                       params.excess_factor() * net::mbit(100), 160};
  for (int run = 0; run < 25; ++run) {
    SlotRunner honest_runner(topo, params, sim::Rng(500 + run));
    const auto honest =
        honest_runner.run(relay, topo.find("US-SW"), {&m, 1});
    SlotRunner lying_runner(topo, params, sim::Rng(500 + run));
    const auto lying =
        lying_runner.run(relay, topo.find("US-SW"), {&m, 1},
                         TargetBehavior::kLieAboutBackground);
    EXPECT_FALSE(lying.verification_failed);
    EXPECT_GT(lying.estimate_bits, 0.0);
    EXPECT_LE(lying.estimate_bits / honest.estimate_bits,
              params.max_inflation() + 0.02);
  }
}

}  // namespace
}  // namespace flashflow::core
