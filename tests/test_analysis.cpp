#include <gtest/gtest.h>

#include <set>

#include "analysis/archive.h"
#include "analysis/error_analysis.h"
#include "analysis/population.h"
#include "analysis/speedtest.h"
#include "metrics/stats.h"
#include "net/units.h"

namespace flashflow::analysis {
namespace {

PopulationParams small_params() {
  PopulationParams p;
  p.initial_relays = 60;
  return p;
}

TEST(Population, CapacitiesWithinBounds) {
  const auto pop = generate_population(small_params(), 30, 1);
  ASSERT_GE(pop.size(), 60u);
  for (const auto& r : pop) {
    EXPECT_GE(r.capacity_bits, small_params().min_capacity_bits);
    EXPECT_LE(r.capacity_bits, small_params().max_capacity_bits);
    EXPECT_LT(r.join_hour, r.leave_hour);
    if (r.rate_limit_bits > 0) {
      EXPECT_LE(r.rate_limit_bits, r.capacity_bits);
    }
  }
}

TEST(Population, FingerprintsUnique) {
  const auto pop = generate_population(small_params(), 60, 2);
  std::set<std::string> names;
  for (const auto& r : pop) names.insert(r.fingerprint);
  EXPECT_EQ(names.size(), pop.size());
}

TEST(Population, ChurnCreatesArrivals) {
  const auto pop = generate_population(small_params(), 365, 3);
  int late_joiners = 0;
  for (const auto& r : pop)
    if (r.join_hour > 0) ++late_joiners;
  EXPECT_GT(late_joiners, 50);  // ~0.45%/day churn over a year
}

TEST(Population, DeterministicInSeed) {
  const auto a = generate_population(small_params(), 30, 7);
  const auto b = generate_population(small_params(), 30, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_DOUBLE_EQ(a[i].capacity_bits, b[i].capacity_bits);
}

TEST(Archive, AdvertisedNeverExceedsCapacity) {
  SyntheticArchive archive(generate_population(small_params(), 20, 4), 5);
  for (int h = 0; h < 20 * 24; ++h) {
    const auto snap = archive.step_hour();
    for (const auto& r : snap.relays) {
      EXPECT_LE(r.advertised_bits, r.true_capacity_bits * 1.0 + 1.0);
      EXPECT_GT(r.advertised_bits, 0.0);
    }
  }
}

TEST(Archive, UnderutilizationCausesUnderestimates) {
  SyntheticArchive archive(generate_population(small_params(), 30, 5), 6);
  Snapshot last;
  for (int h = 0; h < 30 * 24; ++h) last = archive.step_hour();
  double total_adv = 0, total_cap = 0;
  for (const auto& r : last.relays) {
    total_adv += r.advertised_bits;
    total_cap += r.true_capacity_bits;
  }
  // The §3 phenomenon: the network's advertised total underestimates
  // its true capacity.
  EXPECT_LT(total_adv, total_cap);
  EXPECT_GT(total_adv, total_cap * 0.2);
}

TEST(Archive, SpeedTestRaisesAdvertised) {
  auto pop = generate_population(small_params(), 20, 7);
  SyntheticArchive archive(std::move(pop), 8);
  archive.set_speed_test(10 * 24, 10 * 24 + 51);
  // Compare advertised/capacity ratios so relay churn in the short test
  // window does not confound the totals.
  double before_ratio = 0, during_ratio = 0;
  for (int h = 0; h < 14 * 24; ++h) {
    const auto snap = archive.step_hour();
    double adv = 0, cap = 0;
    for (const auto& r : snap.relays) {
      adv += r.advertised_bits;
      cap += r.true_capacity_bits;
    }
    if (h == 10 * 24 - 1) before_ratio = adv / cap;
    if (h == 12 * 24 - 1) during_ratio = adv / cap;  // post publish interval
  }
  EXPECT_GT(during_ratio, before_ratio * 1.15);
  EXPECT_GT(during_ratio, 0.85);  // flood pins estimates near capacity
}

TEST(ErrorAnalysis, LongerWindowsLargerCapacityError) {
  SyntheticArchive archive(generate_population(small_params(), 90, 9), 10);
  CapacityErrorAnalysis analysis(/*stride=*/6);
  for (int h = 0; h < 90 * 24; ++h) analysis.observe(archive.step_hour());
  const auto day = analysis.mean_rce_per_relay(Window::kDay);
  const auto month = analysis.mean_rce_per_relay(Window::kMonth);
  ASSERT_FALSE(day.empty());
  ASSERT_FALSE(month.empty());
  // Fig 1: errors grow with the window length.
  EXPECT_GT(metrics::median(metrics::as_span(month)),
            metrics::median(metrics::as_span(day)));
  // All errors are valid fractions.
  for (const double e : month) {
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, 1.0);
  }
}

TEST(ErrorAnalysis, NceSeriesBounded) {
  SyntheticArchive archive(generate_population(small_params(), 40, 11), 12);
  CapacityErrorAnalysis analysis(6);
  for (int h = 0; h < 40 * 24; ++h) analysis.observe(archive.step_hour());
  const auto& series = analysis.nce_series(Window::kWeek);
  ASSERT_EQ(series.size(), 40u * 24u);
  for (const double e : series) {
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, 1.0);
  }
}

TEST(ErrorAnalysis, WeightErrorsMostlyUnderweighted) {
  SyntheticArchive archive(generate_population(small_params(), 60, 13), 14);
  WeightErrorAnalysis analysis(6);
  for (int h = 0; h < 60 * 24; ++h) analysis.observe(archive.step_hour());
  const auto rwe = analysis.mean_rwe_per_relay(Window::kMonth);
  ASSERT_FALSE(rwe.empty());
  int under = 0;
  for (const double e : rwe)
    if (e < 1.0) ++under;
  // Fig 3: the majority of relays are under-weighted.
  EXPECT_GT(static_cast<double>(under) / rwe.size(), 0.5);
  const auto& nwe = analysis.nwe_series(Window::kMonth);
  for (const double e : nwe) {
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, 1.0);
  }
}

TEST(ErrorAnalysis, VariationGrowsWithWindow) {
  SyntheticArchive archive(generate_population(small_params(), 60, 15), 16);
  VariationAnalysis analysis(6);
  for (int h = 0; h < 60 * 24; ++h) analysis.observe(archive.step_hour());
  const auto day = analysis.mean_advertised_rsd_per_relay(Window::kDay);
  const auto month = analysis.mean_advertised_rsd_per_relay(Window::kMonth);
  ASSERT_FALSE(day.empty());
  // Fig 10a: RSD increases with window length.
  EXPECT_GT(metrics::median(metrics::as_span(month)),
            metrics::median(metrics::as_span(day)));
  const auto weights = analysis.mean_weight_rsd_per_relay(Window::kMonth);
  for (const double v : weights) EXPECT_GE(v, 0.0);
}

TEST(SpeedTest, CapacityRisesAndWeightErrorSpikes) {
  SpeedTestConfig config;
  config.population = small_params();
  config.warmup_days = 15;
  config.cooldown_days = 6;
  const auto result = run_speed_test_experiment(config, 17);
  // Fig 5: capacity estimates rise substantially during the flood...
  EXPECT_GT(result.peak_capacity_bits, result.baseline_capacity_bits * 1.2);
  // ...and weight error rises while the lagging weights disagree.
  EXPECT_GT(result.peak_weight_error, result.baseline_weight_error);
  EXPECT_EQ(result.capacity_series_bits.size(),
            result.weight_error_series.size());
}

TEST(ErrorAnalysis, RejectsBadStride) {
  EXPECT_THROW(CapacityErrorAnalysis(0), std::invalid_argument);
  EXPECT_THROW(WeightErrorAnalysis(-1), std::invalid_argument);
  EXPECT_THROW(VariationAnalysis(0), std::invalid_argument);
}

}  // namespace
}  // namespace flashflow::analysis
