#include "tor/bandwidth_file.h"

#include <gtest/gtest.h>

#include "net/units.h"

namespace flashflow::tor {
namespace {

BandwidthFile sample_entries() {
  return {{"AAAA", net::mbit(80), net::mbit(100)},
          {"BBBB", net::mbit(8), 0.0}};
}

TEST(BandwidthFileFormat, RoundTrip) {
  BandwidthFileHeader header;
  header.timestamp = 1234567890;
  const auto text = serialize_bandwidth_file(header, sample_entries());
  const auto parsed = parse_bandwidth_file(text);
  EXPECT_EQ(parsed.header.timestamp, 1234567890);
  EXPECT_EQ(parsed.header.software, "flashflow");
  ASSERT_EQ(parsed.entries.size(), 2u);
  EXPECT_EQ(parsed.entries[0].fingerprint, "AAAA");
  // bw= is rounded to KB/s: 80 Mbit/s = 10000 KB/s.
  EXPECT_NEAR(parsed.entries[0].weight, net::mbit(80), 8000.0);
  EXPECT_NEAR(parsed.entries[0].capacity_bits, net::mbit(100),
              net::mbit(0.01));
  EXPECT_DOUBLE_EQ(parsed.entries[1].capacity_bits, 0.0);
}

TEST(BandwidthFileFormat, SerializedShape) {
  BandwidthFileHeader header;
  header.timestamp = 42;
  const auto text = serialize_bandwidth_file(header, sample_entries());
  EXPECT_EQ(text.find("42\n"), 0u);
  EXPECT_NE(text.find("version=1.4.0"), std::string::npos);
  EXPECT_NE(text.find("=====\n"), std::string::npos);
  EXPECT_NE(text.find("node_id=$AAAA bw=10000"), std::string::npos);
  EXPECT_NE(text.find("flashflow_capacity_mbits=100.000"),
            std::string::npos);
}

TEST(BandwidthFileFormat, TinyWeightsGetFloorOfOne) {
  BandwidthFileHeader header;
  const BandwidthFile entries = {{"CCCC", 10.0, 0.0}};  // ~0 KB/s
  const auto parsed =
      parse_bandwidth_file(serialize_bandwidth_file(header, entries));
  EXPECT_GE(parsed.entries[0].weight, 8000.0);  // bw=1
}

TEST(BandwidthFileFormat, ParserRejectsMalformedInput) {
  EXPECT_THROW(parse_bandwidth_file(""), std::invalid_argument);
  EXPECT_THROW(parse_bandwidth_file("not-a-timestamp\n=====\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_bandwidth_file("42\nversion=1.4.0\n"),  // no =====
               std::invalid_argument);
  EXPECT_THROW(
      parse_bandwidth_file("42\n=====\nnode_id=$AAAA\n"),  // missing bw
      std::invalid_argument);
  EXPECT_THROW(
      parse_bandwidth_file("42\n=====\nbw=10\n"),  // missing node_id
      std::invalid_argument);
  EXPECT_THROW(
      parse_bandwidth_file("42\n=====\nnode_id=$A bw=-5\n"),
      std::invalid_argument);
}

TEST(BandwidthFileFormat, RejectsTrailingGarbageInNumbers) {
  // Regression: the stoll/stod-era parser accepted "123abc" as timestamp
  // 123 and "bw=12junk" as a 12 KB/s relay — corruption silently
  // truncated into plausible values. The strict parser must reject the
  // whole token and name what it was parsing.
  try {
    parse_bandwidth_file("123abc\n=====\nnode_id=$A bw=10\n");
    FAIL() << "trailing garbage in timestamp accepted";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("timestamp"), std::string::npos) << what;
    EXPECT_NE(what.find("123abc"), std::string::npos) << what;
  }
  try {
    parse_bandwidth_file("42\n=====\nnode_id=$A bw=12junk\n");
    FAIL() << "trailing garbage in bw accepted";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bw"), std::string::npos) << what;
    EXPECT_NE(what.find("12junk"), std::string::npos) << what;
  }
  EXPECT_THROW(
      parse_bandwidth_file(
          "42\n=====\nnode_id=$A bw=10 flashflow_capacity_mbits=1.5x\n"),
      std::invalid_argument);
  // Overflow reports the offending value instead of a bare
  // std::out_of_range from stoll.
  EXPECT_THROW(parse_bandwidth_file("99999999999999999999999\n=====\n"
                                    "node_id=$A bw=10\n"),
               std::invalid_argument);
}

TEST(BandwidthFileFormat, IgnoresUnknownKeys) {
  const auto parsed = parse_bandwidth_file(
      "42\nversion=9.9\nfuture_header=yes\n=====\n"
      "node_id=$AAAA bw=100 nick=foo unmeasured=0\n");
  EXPECT_EQ(parsed.header.version, "9.9");
  ASSERT_EQ(parsed.entries.size(), 1u);
  EXPECT_EQ(parsed.entries[0].fingerprint, "AAAA");
}

}  // namespace
}  // namespace flashflow::tor
