#include "tor/circuit.h"

#include <gtest/gtest.h>

namespace flashflow::tor {
namespace {

constexpr std::uint64_t kCircuitKey = 0xABCDEF;

TEST(MeasurementCircuit, HonestEchoPassesAllChecks) {
  MeasurementSender sender(kCircuitKey, /*check_probability=*/1.0,
                           sim::Rng(1));
  MeasurementTarget target(kCircuitKey, MeasurementTarget::Behavior::kHonest);
  for (int i = 0; i < 200; ++i) {
    const Cell cell = sender.next_cell(7);
    EXPECT_EQ(cell.command, CellCommand::kMeasure);
    const Cell echo = target.handle(cell);
    EXPECT_EQ(echo.command, CellCommand::kMeasureEcho);
    EXPECT_TRUE(sender.check_echo(echo));
  }
  EXPECT_EQ(sender.cells_sent(), 200u);
  EXPECT_EQ(sender.cells_checked(), 200u);
  EXPECT_EQ(sender.failures(), 0u);
  EXPECT_EQ(target.cells_handled(), 200u);
}

TEST(MeasurementCircuit, SkipDecryptionCaughtWhenChecked) {
  MeasurementSender sender(kCircuitKey, 1.0, sim::Rng(2));
  MeasurementTarget target(kCircuitKey,
                           MeasurementTarget::Behavior::kSkipDecryption);
  const Cell cell = sender.next_cell(7);
  const Cell echo = target.handle(cell);
  EXPECT_FALSE(sender.check_echo(echo));
  EXPECT_EQ(sender.failures(), 1u);
}

TEST(MeasurementCircuit, ForgedEchoCaughtWhenChecked) {
  MeasurementSender sender(kCircuitKey, 1.0, sim::Rng(3));
  MeasurementTarget target(kCircuitKey,
                           MeasurementTarget::Behavior::kForgeEarly);
  const Cell cell = sender.next_cell(7);
  const Cell echo = target.handle(cell);
  EXPECT_FALSE(sender.check_echo(echo));
}

TEST(MeasurementCircuit, UncheckedCellsPassEvenIfForged) {
  // With p = 0 nothing is recorded, so forgery goes unnoticed — this is
  // exactly why p must be positive (§5).
  MeasurementSender sender(kCircuitKey, 0.0, sim::Rng(4));
  MeasurementTarget target(kCircuitKey,
                           MeasurementTarget::Behavior::kForgeEarly);
  for (int i = 0; i < 50; ++i)
    EXPECT_TRUE(sender.check_echo(target.handle(sender.next_cell(7))));
  EXPECT_EQ(sender.cells_checked(), 0u);
}

TEST(MeasurementCircuit, SamplingRateApproximatesP) {
  MeasurementSender sender(kCircuitKey, 0.1, sim::Rng(5));
  MeasurementTarget target(kCircuitKey, MeasurementTarget::Behavior::kHonest);
  for (int i = 0; i < 5000; ++i)
    sender.check_echo(target.handle(sender.next_cell(7)));
  const double rate =
      static_cast<double>(sender.cells_checked()) / 5000.0;
  EXPECT_NEAR(rate, 0.1, 0.02);
  EXPECT_EQ(sender.failures(), 0u);
}

TEST(MeasurementCircuit, MismatchedKeysFailChecks) {
  MeasurementSender sender(kCircuitKey, 1.0, sim::Rng(6));
  MeasurementTarget target(kCircuitKey + 1,
                           MeasurementTarget::Behavior::kHonest);
  const Cell echo = target.handle(sender.next_cell(7));
  EXPECT_FALSE(sender.check_echo(echo));
}

TEST(MeasurementCircuit, WindowConstantsMatchTor) {
  EXPECT_EQ(kCircuitWindowCells, 1000);
  EXPECT_EQ(kStreamWindowCells, 500);
}

}  // namespace
}  // namespace flashflow::tor
