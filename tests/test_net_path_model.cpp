// The PathModel seam (net/path_model.h).
//
// The contract under test is equivalence: a TieredPathModel with jitter 0
// must be bit-identical to a DensePathModel materialized from the same
// tier table, and with jitter on, pair resolution must be a pure function
// of (seed, lo, hi) — symmetric, query-order independent, and identical
// across instances — because the golden determinism suite hashes bytes
// produced through this interface.
#include "net/path_model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "campaign/sink.h"
#include "net/topology.h"
#include "net/units.h"
#include "scenario/scenario.h"

namespace flashflow::net {
namespace {

/// 3-tier params with a distinct RTT per tier pair:
///   (0,0)=10ms (0,1)=65ms (0,2)=90ms (1,1)=20ms (1,2)=150ms (2,2)=25ms
TieredPathParams three_tier_params() {
  TieredPathParams params;
  params.tiers = 3;
  params.tier_rtt_s = {0.010, 0.065, 0.090, 0.020, 0.150, 0.025};
  params.loss = 2.0e-6;
  params.loaded_loss = 7.0e-5;
  return params;
}

/// A topology of `hosts` unnamed-ish hosts on the given model, tiers
/// assigned round-robin (the model's default, made explicit).
Topology tiered_topology(int hosts, TieredPathParams params) {
  Topology topo;
  topo.use_path_model(std::make_unique<TieredPathModel>(std::move(params)));
  for (int i = 0; i < hosts; ++i) {
    Host h;
    h.name = std::to_string(i);
    topo.add_host(std::move(h));
  }
  return topo;
}

TEST(PathModel, TieredMatchesDenseBuiltFromSameTable) {
  const TieredPathParams params = three_tier_params();
  const int kHosts = 9;  // three hosts per tier
  const Topology tiered = tiered_topology(kHosts, params);

  // Dense twin: the same tier table written out pair by pair.
  Topology dense;
  const auto table_rtt = [&](int ta, int tb) {
    if (ta > tb) std::swap(ta, tb);
    // Upper-triangle row-major: row ta starts after ta rows of
    // decreasing length.
    int index = 0;
    for (int row = 0; row < ta; ++row) index += params.tiers - row;
    return params.tier_rtt_s[index + (tb - ta)];
  };
  for (int i = 0; i < kHosts; ++i) {
    Host h;
    h.name = std::to_string(i);
    dense.add_host(std::move(h));
  }
  for (HostId a = 0; a < kHosts; ++a)
    for (HostId b = a + 1; b < kHosts; ++b)
      dense.set_path(a, b, table_rtt(a % 3, b % 3), params.loss,
                     params.loaded_loss);

  for (HostId a = 0; a < kHosts; ++a)
    for (HostId b = 0; b < kHosts; ++b) {
      if (a == b) continue;
      // EXPECT_EQ, not NEAR: the equivalence must be bit-exact.
      EXPECT_EQ(tiered.rtt(a, b), dense.rtt(a, b)) << a << "," << b;
      EXPECT_EQ(tiered.loss(a, b), dense.loss(a, b));
      EXPECT_EQ(tiered.loaded_loss(a, b), dense.loaded_loss(a, b));
    }
}

TEST(PathModel, SelfPathsAreZeroInBothModels) {
  const Topology tiered = tiered_topology(3, three_tier_params());
  Topology dense;
  dense.add_host(Host{});
  const Topology* models[] = {&tiered, &dense};
  for (const Topology* t : models) {
    EXPECT_EQ(t->rtt(0, 0), 0.0);
    EXPECT_EQ(t->loss(0, 0), 0.0);
    EXPECT_EQ(t->loaded_loss(0, 0), 0.0);
  }
}

TEST(PathModel, EmptyTierTableMeansFlatFiftyMillisecondMesh) {
  // The synthetic flat-mesh default: an empty table is 0.05 s everywhere,
  // which is what makes a 1-tier tiered scenario reproduce the dense
  // synthetic mesh bit-exactly.
  TieredPathParams params;
  params.tiers = 4;
  const Topology topo = tiered_topology(6, params);
  for (HostId a = 0; a < 6; ++a)
    for (HostId b = 0; b < 6; ++b) {
      if (a == b) continue;
      EXPECT_EQ(topo.rtt(a, b), 0.05);
      EXPECT_EQ(topo.loss(a, b), 1.0e-6);
      EXPECT_EQ(topo.loaded_loss(a, b), 5.0e-5);
    }
}

TEST(PathModel, JitteredPairsAreDeterministicAndQueryOrderIndependent) {
  TieredPathParams params = three_tier_params();
  params.rtt_jitter = 0.3;
  params.seed = 0xFEEDFACEULL;
  const int kHosts = 12;
  const Topology forward = tiered_topology(kHosts, params);
  const Topology backward = tiered_topology(kHosts, params);

  // Query one instance low-to-high and the other high-to-low: on-demand
  // resolution must not depend on what was asked before.
  std::vector<double> seen_forward;
  for (HostId a = 0; a < kHosts; ++a)
    for (HostId b = a + 1; b < kHosts; ++b)
      seen_forward.push_back(forward.rtt(a, b));
  std::vector<double> seen_backward;
  for (int a = kHosts - 1; a >= 0; --a)
    for (int b = kHosts - 1; b > a; --b)
      seen_backward.push_back(
          backward.rtt(static_cast<HostId>(a), static_cast<HostId>(b)));
  std::reverse(seen_backward.begin(), seen_backward.end());
  EXPECT_EQ(seen_forward, seen_backward);

  // Symmetric, and actually jittered: same-tier pairs must not collapse
  // to one value.
  EXPECT_EQ(forward.rtt(2, 9), forward.rtt(9, 2));
  EXPECT_NE(forward.rtt(0, 3), forward.rtt(0, 6));  // both tier 0 <-> 0
  // Jittered RTTs scale the table value by 1 + 0.3*u, u in [-1, 1), so
  // they stay positive.
  for (const double rtt : seen_forward) EXPECT_GT(rtt, 0.0);
}

TEST(PathModel, ZeroJitterReadsExactTableValues) {
  TieredPathParams params = three_tier_params();
  params.seed = 0x12345;  // seed must be irrelevant when jitter is off
  const Topology topo = tiered_topology(6, params);
  EXPECT_EQ(topo.rtt(0, 3), 0.010);  // tier 0 <-> 0
  EXPECT_EQ(topo.rtt(0, 1), 0.065);  // tier 0 <-> 1
  EXPECT_EQ(topo.rtt(1, 2), 0.150);  // tier 1 <-> 2
  EXPECT_EQ(topo.rtt(2, 5), 0.025);  // tier 2 <-> 2
}

TEST(PathModel, FillPathsMatchesScalarGetters) {
  TieredPathParams params = three_tier_params();
  params.rtt_jitter = 0.1;
  params.seed = 77;
  const Topology tiered = tiered_topology(8, params);

  Topology dense;
  for (int i = 0; i < 8; ++i) {
    Host h;
    h.name = std::to_string(i);
    dense.add_host(std::move(h));
  }
  for (HostId a = 0; a < 8; ++a)
    for (HostId b = a + 1; b < 8; ++b)
      dense.set_path(a, b, 0.001 * static_cast<double>(a + b), 1e-6, 5e-5);

  const Topology* models[] = {&tiered, &dense};
  for (const Topology* t : models) {
    const std::vector<HostId> to = {3, 1, 7, 0, 0, 5};
    std::vector<PathCharacteristics> out(to.size());
    t->fill_paths(0, to, out);
    for (std::size_t i = 0; i < to.size(); ++i) {
      EXPECT_EQ(out[i].rtt_s, t->rtt(0, to[i]));
      EXPECT_EQ(out[i].loss, t->loss(0, to[i]));
      EXPECT_EQ(out[i].loaded_loss, t->loaded_loss(0, to[i]));
    }
  }
}

TEST(PathModel, HostTierOverridesAndDefaults) {
  TieredPathParams params = three_tier_params();
  Topology topo = tiered_topology(5, params);
  const auto* model = dynamic_cast<const TieredPathModel*>(&topo.path_model());
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->host_tier(4), 1);  // 4 % 3, the round-robin default
  topo.set_host_tier(4, 2);
  EXPECT_EQ(model->host_tier(4), 2);
  EXPECT_EQ(topo.rtt(1, 4), 0.150);  // tier 1 <-> 2 now
  EXPECT_THROW(topo.set_host_tier(4, 3), std::invalid_argument);
  EXPECT_THROW(topo.set_host_tier(99, 0), std::out_of_range);
}

TEST(PathModel, MutatorsRejectTheWrongModel) {
  Topology tiered = tiered_topology(2, TieredPathParams{});
  EXPECT_THROW(tiered.set_path(0, 1, 0.05, 0.0), std::logic_error);
  Topology dense;
  dense.add_host(Host{});
  EXPECT_THROW(dense.set_host_tier(0, 0), std::logic_error);
}

TEST(PathModel, RejectsBadParams) {
  TieredPathParams params;
  params.tiers = 0;
  EXPECT_THROW(TieredPathModel{params}, std::invalid_argument);
  params = three_tier_params();
  params.tier_rtt_s.pop_back();  // 5 entries, triangle needs 6
  EXPECT_THROW(TieredPathModel{params}, std::invalid_argument);
  params = three_tier_params();
  params.tier_rtt_s[2] = -0.01;
  EXPECT_THROW(TieredPathModel{params}, std::invalid_argument);
  params = three_tier_params();
  params.loss = 1.0;
  EXPECT_THROW(TieredPathModel{params}, std::invalid_argument);
  params = three_tier_params();
  params.rtt_jitter = 1.0;
  EXPECT_THROW(TieredPathModel{params}, std::invalid_argument);
}

TEST(PathModel, CopiedTopologyOwnsAnIndependentModel) {
  // Topology is a value type; copying must deep-clone the model so
  // mutating one side never shows through the other.
  Topology dense;
  Host a;
  a.name = "a";
  Host b;
  b.name = "b";
  dense.add_host(std::move(a));
  dense.add_host(std::move(b));
  dense.set_path(0, 1, 0.1, 1e-6);
  Topology copy = dense;
  dense.set_path(0, 1, 0.9, 1e-6);
  EXPECT_EQ(copy.rtt(0, 1), 0.1);
  EXPECT_EQ(dense.rtt(0, 1), 0.9);

  Topology tiered = tiered_topology(4, three_tier_params());
  Topology tiered_copy = tiered;
  tiered.set_host_tier(0, 2);
  EXPECT_EQ(tiered_copy.rtt(0, 3), 0.010);  // still tier 0 <-> 0
  EXPECT_EQ(tiered.rtt(0, 3), 0.090);       // tier 2 <-> 0
}

TEST(PathModel, ScenarioBytesAreIdenticalUnderDenseAndOneTierTiered) {
  // End-to-end over the campaign engine: the golden 40-relay synthetic
  // scenario must stream byte-identical CSV whichever model resolves the
  // flat mesh. This is the equivalence the golden-hash suite relies on
  // when large scenarios switch to 'topology.path_model: tiered'.
  analysis::PopulationParams pop;
  pop.lognormal_mu = 17.0;
  pop.lognormal_sigma = 1.2;
  pop.max_capacity_bits = 900e6;
  const auto run = [&](bool tiered) {
    scenario::ScenarioBuilder builder("seam");
    builder.synthetic(pop, 40, /*prior_fraction=*/0.8)
        .measurer_capacities({mbit(800), mbit(800), mbit(800)})
        .seed(20210613);
    if (tiered) builder.tiered_topology();
    const scenario::Scenario scenario(builder.build());
    std::ostringstream out;
    campaign::CsvSink sink(out);
    scenario.run(sink);
    return out.str();
  };
  const std::string dense_csv = run(false);
  EXPECT_FALSE(dense_csv.empty());
  EXPECT_EQ(dense_csv, run(true));
}

}  // namespace
}  // namespace flashflow::net
