#include <gtest/gtest.h>

#include "metrics/stats.h"
#include "net/units.h"
#include "shadowsim/experiment.h"
#include "shadowsim/shadow_net.h"

namespace flashflow::shadowsim {
namespace {

ShadowNetParams small_net() {
  ShadowNetParams p;
  p.relays = 60;  // keep unit tests fast; benches run the full 328
  return p;
}

TEST(ShadowNet, BuildsRequestedRelays) {
  const auto net = make_shadow_net(small_net(), 1);
  ASSERT_EQ(net.relays.size(), 60u);
  for (const auto& r : net.relays) {
    EXPECT_GT(r.capacity_bits, 0.0);
    EXPECT_LE(r.capacity_bits, 1.0e9);
    EXPECT_LE(r.advertised_bits, r.capacity_bits);
    EXPECT_GT(r.contention, 0.0);
    EXPECT_LE(r.contention, 1.0);
  }
  EXPECT_GT(net.total_capacity_bits, 0.0);
}

TEST(ShadowNet, RegionRttSymmetric) {
  for (int a = 0; a < kRegionCount; ++a)
    for (int b = 0; b < kRegionCount; ++b)
      EXPECT_DOUBLE_EQ(region_rtt(static_cast<Region>(a),
                                  static_cast<Region>(b)),
                       region_rtt(static_cast<Region>(b),
                                  static_cast<Region>(a)));
}

TEST(ShadowNet, TopologyHasMeasurersAndRelays) {
  const auto net = make_shadow_net(small_net(), 2);
  const auto topo = shadow_topology(net);
  EXPECT_EQ(topo.host_count(), 3u + 60u);
  EXPECT_DOUBLE_EQ(topo.host(0).nic_up_bits, net::gbit(1));
  // Relay host NICs comfortably exceed relay capacity.
  EXPECT_GE(topo.host(3).nic_up_bits, net.relays[0].capacity_bits);
}

TEST(MeasurementComparison, FlashFlowBeatsTorFlow) {
  const auto net = make_shadow_net(small_net(), 3);
  const auto cmp = run_measurement_comparison(net, 4);
  ASSERT_EQ(cmp.flashflow_file.size(), net.relays.size());
  ASSERT_EQ(cmp.torflow_file.size(), net.relays.size());
  // Fig 8b's headline: FlashFlow's network weight error is far below
  // TorFlow's.
  EXPECT_LT(cmp.ff_network_weight_error, cmp.tf_network_weight_error);
  EXPECT_LT(cmp.ff_network_weight_error, 0.15);
  EXPECT_GT(cmp.tf_network_weight_error, 0.15);
  // Capacity error is moderate (Fig 8a: median 16%).
  const double median_err = metrics::median(
      metrics::as_span(cmp.ff_capacity_error));
  EXPECT_LT(median_err, 0.35);
  EXPECT_GT(cmp.ff_network_capacity_error, 0.0);
  EXPECT_LT(cmp.ff_network_capacity_error, 0.4);
}

TEST(Performance, ProducesTransfersAndThroughput) {
  const auto net = make_shadow_net(small_net(), 5);
  const auto cmp = run_measurement_comparison(net, 6);
  PerfConfig config;
  config.sim_seconds = 300;
  config.bench_clients = 10;
  const auto perf = run_performance(net, cmp.flashflow_file, config, 7);
  EXPECT_GT(perf.bench.records.size(), 20u);
  EXPECT_GE(perf.throughput_series_bits.size(), 290u);
  for (const double t : perf.throughput_series_bits) EXPECT_GT(t, 0.0);
}

TEST(Performance, FlashFlowFewerTimeoutsThanTorFlow) {
  const auto net = make_shadow_net(small_net(), 8);
  const auto cmp = run_measurement_comparison(net, 9);
  PerfConfig config;
  config.sim_seconds = 400;
  config.bench_clients = 12;
  const auto ff = run_performance(net, cmp.flashflow_file, config, 10);
  const auto tf = run_performance(net, cmp.torflow_file, config, 10);
  EXPECT_LE(ff.bench.error_rate(), tf.bench.error_rate() + 0.01);
}

TEST(Performance, HigherLoadSlowerTransfers) {
  const auto net = make_shadow_net(small_net(), 11);
  const auto cmp = run_measurement_comparison(net, 12);
  PerfConfig base;
  base.sim_seconds = 300;
  base.bench_clients = 10;
  PerfConfig loaded = base;
  loaded.load_scale = 1.5;
  const auto fast = run_performance(net, cmp.flashflow_file, base, 13);
  const auto slow = run_performance(net, cmp.flashflow_file, loaded, 13);
  const auto fast_ttlb =
      fast.bench.ttlb_for(trafficgen::TransferSize::k1MiB);
  const auto slow_ttlb =
      slow.bench.ttlb_for(trafficgen::TransferSize::k1MiB);
  ASSERT_FALSE(fast_ttlb.empty());
  ASSERT_FALSE(slow_ttlb.empty());
  EXPECT_LE(metrics::median(metrics::as_span(fast_ttlb)),
            metrics::median(metrics::as_span(slow_ttlb)) * 1.2);
}

}  // namespace
}  // namespace flashflow::shadowsim
