#include "net/fairshare.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "sim/random.h"

namespace flashflow::net {
namespace {

TEST(FairShare, SingleFlowGetsFullCapacity) {
  const std::vector<FairShareResource> res = {{100.0}};
  std::vector<FairShareFlow> flows(1);
  flows[0].resources = {0};
  const auto rates = max_min_fair_rates(res, flows);
  EXPECT_DOUBLE_EQ(rates[0], 100.0);
}

TEST(FairShare, EqualSplit) {
  const std::vector<FairShareResource> res = {{90.0}};
  std::vector<FairShareFlow> flows(3);
  for (auto& f : flows) f.resources = {0};
  const auto rates = max_min_fair_rates(res, flows);
  for (const double r : rates) EXPECT_NEAR(r, 30.0, 1e-9);
}

TEST(FairShare, WeightedSplit) {
  const std::vector<FairShareResource> res = {{100.0}};
  std::vector<FairShareFlow> flows(2);
  flows[0].resources = {0};
  flows[0].weight = 3.0;
  flows[1].resources = {0};
  flows[1].weight = 1.0;
  const auto rates = max_min_fair_rates(res, flows);
  EXPECT_NEAR(rates[0], 75.0, 1e-9);
  EXPECT_NEAR(rates[1], 25.0, 1e-9);
}

TEST(FairShare, CapFreesCapacityForOthers) {
  const std::vector<FairShareResource> res = {{100.0}};
  std::vector<FairShareFlow> flows(2);
  flows[0].resources = {0};
  flows[0].cap = 10.0;
  flows[1].resources = {0};
  const auto rates = max_min_fair_rates(res, flows);
  EXPECT_NEAR(rates[0], 10.0, 1e-9);
  EXPECT_NEAR(rates[1], 90.0, 1e-9);
}

TEST(FairShare, ClassicTriangle) {
  // Two resources; flow A uses both, B uses first, C uses second.
  const std::vector<FairShareResource> res = {{100.0}, {100.0}};
  std::vector<FairShareFlow> flows(3);
  flows[0].resources = {0, 1};
  flows[1].resources = {0};
  flows[2].resources = {1};
  const auto rates = max_min_fair_rates(res, flows);
  EXPECT_NEAR(rates[0], 50.0, 1e-9);
  EXPECT_NEAR(rates[1], 50.0, 1e-9);
  EXPECT_NEAR(rates[2], 50.0, 1e-9);
}

TEST(FairShare, BottleneckChain) {
  // Tight first link limits the shared flow; second link's leftover goes to
  // the local flow.
  const std::vector<FairShareResource> res = {{10.0}, {100.0}};
  std::vector<FairShareFlow> flows(2);
  flows[0].resources = {0, 1};
  flows[1].resources = {1};
  const auto rates = max_min_fair_rates(res, flows);
  EXPECT_NEAR(rates[0], 10.0, 1e-9);
  EXPECT_NEAR(rates[1], 90.0, 1e-9);
}

TEST(FairShare, UnconstrainedFlowGetsInfinity) {
  const std::vector<FairShareResource> res = {{0.0}};  // capacity <= 0
  std::vector<FairShareFlow> flows(1);
  flows[0].resources = {0};
  const auto rates = max_min_fair_rates(res, flows);
  EXPECT_TRUE(std::isinf(rates[0]));
}

TEST(FairShare, ZeroCapFlowFrozenImmediately) {
  const std::vector<FairShareResource> res = {{100.0}};
  std::vector<FairShareFlow> flows(2);
  flows[0].resources = {0};
  flows[0].cap = 0.0;
  flows[1].resources = {0};
  const auto rates = max_min_fair_rates(res, flows);
  EXPECT_DOUBLE_EQ(rates[0], 0.0);
  EXPECT_NEAR(rates[1], 100.0, 1e-9);
}

TEST(FairShare, RejectsBadInput) {
  const std::vector<FairShareResource> res = {{10.0}};
  std::vector<FairShareFlow> bad_weight(1);
  bad_weight[0].resources = {0};
  bad_weight[0].weight = 0.0;
  EXPECT_THROW(max_min_fair_rates(res, bad_weight), std::invalid_argument);

  std::vector<FairShareFlow> bad_resource(1);
  bad_resource[0].resources = {5};
  EXPECT_THROW(max_min_fair_rates(res, bad_resource), std::out_of_range);
}

TEST(FairShare, EmptyFlowsOk) {
  const std::vector<FairShareResource> res = {{10.0}};
  EXPECT_TRUE(max_min_fair_rates(res, {}).empty());
}

// ------------------------- property-based sweep ---------------------------

struct RandomCase {
  int resources;
  int flows;
  std::uint64_t seed;
};

class FairShareProperty : public ::testing::TestWithParam<RandomCase> {};

TEST_P(FairShareProperty, InvariantsHold) {
  const auto param = GetParam();
  sim::Rng rng(param.seed);
  std::vector<FairShareResource> res(
      static_cast<std::size_t>(param.resources));
  for (auto& r : res) r.capacity = rng.uniform(10.0, 1000.0);

  std::vector<FairShareFlow> flows(static_cast<std::size_t>(param.flows));
  for (auto& f : flows) {
    const int uses = static_cast<int>(rng.uniform_int(1, 3));
    for (int u = 0; u < uses; ++u)
      f.resources.push_back(static_cast<std::size_t>(
          rng.uniform_int(0, param.resources - 1)));
    f.weight = rng.uniform(0.5, 4.0);
    if (rng.chance(0.3)) f.cap = rng.uniform(5.0, 500.0);
  }

  const auto rates = max_min_fair_rates(res, flows);

  // 1. No flow exceeds its cap.
  for (std::size_t i = 0; i < flows.size(); ++i)
    EXPECT_LE(rates[i], flows[i].cap + 1e-6);

  // 2. No resource is over capacity.
  std::vector<double> usage(res.size(), 0.0);
  for (std::size_t i = 0; i < flows.size(); ++i)
    for (const auto r : flows[i].resources) usage[r] += rates[i];
  for (std::size_t r = 0; r < res.size(); ++r)
    EXPECT_LE(usage[r], res[r].capacity + 1e-5);

  // 3. Work conservation: every flow is bottlenecked somewhere — either at
  // its cap or at a saturated resource.
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (rates[i] >= flows[i].cap - 1e-6) continue;
    bool saturated = false;
    for (const auto r : flows[i].resources)
      if (usage[r] >= res[r].capacity - 1e-5) saturated = true;
    EXPECT_TRUE(saturated) << "flow " << i << " is not bottlenecked";
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomTopologies, FairShareProperty,
    ::testing::Values(RandomCase{1, 2, 1}, RandomCase{2, 5, 2},
                      RandomCase{3, 10, 3}, RandomCase{5, 20, 4},
                      RandomCase{8, 40, 5}, RandomCase{4, 4, 6},
                      RandomCase{10, 80, 7}, RandomCase{6, 30, 8}));

}  // namespace
}  // namespace flashflow::net
