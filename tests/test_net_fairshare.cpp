#include "net/fairshare.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "sim/random.h"

namespace flashflow::net {
namespace {

TEST(FairShare, SingleFlowGetsFullCapacity) {
  const std::vector<FairShareResource> res = {{100.0}};
  std::vector<FairShareFlow> flows(1);
  flows[0].resources = {0};
  const auto rates = max_min_fair_rates(res, flows);
  EXPECT_DOUBLE_EQ(rates[0], 100.0);
}

TEST(FairShare, EqualSplit) {
  const std::vector<FairShareResource> res = {{90.0}};
  std::vector<FairShareFlow> flows(3);
  for (auto& f : flows) f.resources = {0};
  const auto rates = max_min_fair_rates(res, flows);
  for (const double r : rates) EXPECT_NEAR(r, 30.0, 1e-9);
}

TEST(FairShare, WeightedSplit) {
  const std::vector<FairShareResource> res = {{100.0}};
  std::vector<FairShareFlow> flows(2);
  flows[0].resources = {0};
  flows[0].weight = 3.0;
  flows[1].resources = {0};
  flows[1].weight = 1.0;
  const auto rates = max_min_fair_rates(res, flows);
  EXPECT_NEAR(rates[0], 75.0, 1e-9);
  EXPECT_NEAR(rates[1], 25.0, 1e-9);
}

TEST(FairShare, CapFreesCapacityForOthers) {
  const std::vector<FairShareResource> res = {{100.0}};
  std::vector<FairShareFlow> flows(2);
  flows[0].resources = {0};
  flows[0].cap = 10.0;
  flows[1].resources = {0};
  const auto rates = max_min_fair_rates(res, flows);
  EXPECT_NEAR(rates[0], 10.0, 1e-9);
  EXPECT_NEAR(rates[1], 90.0, 1e-9);
}

TEST(FairShare, ClassicTriangle) {
  // Two resources; flow A uses both, B uses first, C uses second.
  const std::vector<FairShareResource> res = {{100.0}, {100.0}};
  std::vector<FairShareFlow> flows(3);
  flows[0].resources = {0, 1};
  flows[1].resources = {0};
  flows[2].resources = {1};
  const auto rates = max_min_fair_rates(res, flows);
  EXPECT_NEAR(rates[0], 50.0, 1e-9);
  EXPECT_NEAR(rates[1], 50.0, 1e-9);
  EXPECT_NEAR(rates[2], 50.0, 1e-9);
}

TEST(FairShare, BottleneckChain) {
  // Tight first link limits the shared flow; second link's leftover goes to
  // the local flow.
  const std::vector<FairShareResource> res = {{10.0}, {100.0}};
  std::vector<FairShareFlow> flows(2);
  flows[0].resources = {0, 1};
  flows[1].resources = {1};
  const auto rates = max_min_fair_rates(res, flows);
  EXPECT_NEAR(rates[0], 10.0, 1e-9);
  EXPECT_NEAR(rates[1], 90.0, 1e-9);
}

TEST(FairShare, UnconstrainedFlowGetsInfinity) {
  const std::vector<FairShareResource> res = {{0.0}};  // capacity <= 0
  std::vector<FairShareFlow> flows(1);
  flows[0].resources = {0};
  const auto rates = max_min_fair_rates(res, flows);
  EXPECT_TRUE(std::isinf(rates[0]));
}

TEST(FairShare, ZeroCapFlowFrozenImmediately) {
  const std::vector<FairShareResource> res = {{100.0}};
  std::vector<FairShareFlow> flows(2);
  flows[0].resources = {0};
  flows[0].cap = 0.0;
  flows[1].resources = {0};
  const auto rates = max_min_fair_rates(res, flows);
  EXPECT_DOUBLE_EQ(rates[0], 0.0);
  EXPECT_NEAR(rates[1], 100.0, 1e-9);
}

TEST(FairShare, RejectsBadInput) {
  const std::vector<FairShareResource> res = {{10.0}};
  std::vector<FairShareFlow> bad_weight(1);
  bad_weight[0].resources = {0};
  bad_weight[0].weight = 0.0;
  EXPECT_THROW(max_min_fair_rates(res, bad_weight), std::invalid_argument);

  std::vector<FairShareFlow> bad_resource(1);
  bad_resource[0].resources = {5};
  EXPECT_THROW(max_min_fair_rates(res, bad_resource), std::out_of_range);
}

TEST(FairShare, EmptyFlowsOk) {
  const std::vector<FairShareResource> res = {{10.0}};
  EXPECT_TRUE(max_min_fair_rates(res, {}).empty());
}

// --------------------------- solver reuse ---------------------------------

TEST(FairShareSolver, ReusedSolverMatchesFreshSolves) {
  // Two successive solves on one solver must equal two fresh solves: the
  // scratch (frozen/remaining/active_weight/saturation epochs) never leaks
  // state between calls. The second problem is shaped to stress stale
  // state: more flows and resources than the first, then fewer.
  const std::vector<FairShareResource> res_a = {{100.0}, {60.0}};
  std::vector<FairShareFlow> flows_a(3);
  flows_a[0].resources = {0, 1};
  flows_a[1].resources = {0};
  flows_a[1].cap = 12.0;
  flows_a[2].resources = {1};
  flows_a[2].weight = 2.0;

  const std::vector<FairShareResource> res_b = {{50.0}, {80.0}, {10.0}};
  std::vector<FairShareFlow> flows_b(5);
  for (std::size_t f = 0; f < flows_b.size(); ++f)
    flows_b[f].resources = {f % 3};
  flows_b[4].resources = {0, 1, 2};
  flows_b[1].cap = 0.0;  // frozen immediately

  const std::vector<FairShareResource> res_c = {{7.0}};
  std::vector<FairShareFlow> flows_c(1);
  flows_c[0].resources = {0};

  FairShareSolver reused;
  for (int round = 0; round < 2; ++round) {
    for (const auto& [res, flows] :
         {std::pair(&res_a, &flows_a), std::pair(&res_b, &flows_b),
          std::pair(&res_c, &flows_c)}) {
      const auto from_reused = reused.solve(*res, *flows);
      const auto fresh = max_min_fair_rates(*res, *flows);
      ASSERT_EQ(from_reused.size(), fresh.size());
      for (std::size_t f = 0; f < fresh.size(); ++f)
        EXPECT_DOUBLE_EQ(from_reused[f], fresh[f]) << "flow " << f;
    }
  }
}

TEST(FairShareSolver, PreparedSolvesMatchOneShot) {
  // prepare() + repeated solve_prepared() against varying capacities (the
  // per-second slot pattern) must equal a fresh solve per capacity set.
  std::vector<FairShareFlow> flows(4);
  flows[0].resources = {0, 2};
  flows[0].weight = 2.0;
  flows[1].resources = {0, 1};
  flows[1].cap = 15.0;
  flows[2].resources = {1, 2};
  flows[2].cap = 0.0;  // frozen at prepare time
  flows[3].resources = {2};

  FairShareSolver solver;
  solver.prepare(flows, 3);
  for (const double relay_cap : {40.0, 5.0, 0.0, 123.456}) {
    const std::vector<FairShareResource> res = {
        {100.0}, {30.0}, {relay_cap}};
    const auto prepared = solver.solve_prepared(res);
    const auto fresh = max_min_fair_rates(res, flows);
    ASSERT_EQ(prepared.size(), fresh.size());
    for (std::size_t f = 0; f < fresh.size(); ++f)
      EXPECT_DOUBLE_EQ(prepared[f], fresh[f])
          << "flow " << f << " at relay_cap " << relay_cap;
  }
  // A mismatched resource count is a caller bug, not a silent misread.
  const std::vector<FairShareResource> wrong = {{1.0}};
  EXPECT_THROW(solver.solve_prepared(wrong), std::invalid_argument);
}

TEST(FairShareSolver, FailedPrepareInvalidatesPreparedState) {
  // A prepare() that throws mid-validation must not leave a half-built
  // flow set behind: solve_prepared afterwards fails cleanly instead of
  // indexing stale state, and solve_prepared before any prepare at all is
  // rejected too.
  FairShareSolver solver;
  const std::vector<FairShareResource> res = {{10.0}, {20.0}};
  EXPECT_THROW(solver.solve_prepared(res), std::logic_error);

  std::vector<FairShareFlow> good(5);
  for (auto& f : good) f.resources = {0};
  solver.prepare(good, res.size());

  std::vector<FairShareFlow> bad(2);
  bad[0].resources = {0};
  bad[1].resources = {7};  // out of range: throws mid-prepare
  EXPECT_THROW(solver.prepare(bad, res.size()), std::out_of_range);
  EXPECT_THROW(solver.solve_prepared(res), std::logic_error);

  // A clean prepare restores service.
  solver.prepare(good, res.size());
  const auto rates = solver.solve_prepared(res);
  for (const double r : rates) EXPECT_NEAR(r, 2.0, 1e-9);
}

TEST(FairShareSolver, ReuseAfterInvalidInputStillSolves) {
  FairShareSolver solver;
  const std::vector<FairShareResource> res = {{10.0}};
  std::vector<FairShareFlow> bad(1);
  bad[0].resources = {5};  // out of range
  EXPECT_THROW(solver.solve(res, bad), std::out_of_range);

  std::vector<FairShareFlow> good(2);
  good[0].resources = {0};
  good[1].resources = {0};
  const auto rates = solver.solve(res, good);
  EXPECT_NEAR(rates[0], 5.0, 1e-9);
  EXPECT_NEAR(rates[1], 5.0, 1e-9);
}

TEST(FairShareSolver, ResultSpanInvalidatedByNextSolveByCopy) {
  // The returned span aliases solver storage; callers that need the values
  // across solves must copy. Verify a copy taken before the next solve
  // stays intact (i.e. the documented usage pattern works).
  FairShareSolver solver;
  const std::vector<FairShareResource> res = {{30.0}};
  std::vector<FairShareFlow> three(3);
  for (auto& f : three) f.resources = {0};
  const auto first = solver.solve(res, three);
  const std::vector<double> copy(first.begin(), first.end());
  std::vector<FairShareFlow> one(1);
  one[0].resources = {0};
  solver.solve(res, one);
  for (const double r : copy) EXPECT_NEAR(r, 10.0, 1e-9);
}

// ------------------------- property-based sweep ---------------------------

struct RandomCase {
  int resources;
  int flows;
  std::uint64_t seed;
};

class FairShareProperty : public ::testing::TestWithParam<RandomCase> {};

TEST_P(FairShareProperty, InvariantsHold) {
  const auto param = GetParam();
  sim::Rng rng(param.seed);
  std::vector<FairShareResource> res(
      static_cast<std::size_t>(param.resources));
  for (auto& r : res) r.capacity = rng.uniform(10.0, 1000.0);

  std::vector<FairShareFlow> flows(static_cast<std::size_t>(param.flows));
  for (auto& f : flows) {
    const int uses = static_cast<int>(rng.uniform_int(1, 3));
    for (int u = 0; u < uses; ++u)
      f.resources.push_back(static_cast<std::size_t>(
          rng.uniform_int(0, param.resources - 1)));
    f.weight = rng.uniform(0.5, 4.0);
    if (rng.chance(0.3)) f.cap = rng.uniform(5.0, 500.0);
  }

  const auto rates = max_min_fair_rates(res, flows);

  // A solver instance reused across all the parameterized topologies must
  // agree exactly with the one-shot path.
  static FairShareSolver reused;
  const auto reused_rates = reused.solve(res, flows);
  ASSERT_EQ(reused_rates.size(), rates.size());
  for (std::size_t i = 0; i < rates.size(); ++i)
    EXPECT_DOUBLE_EQ(reused_rates[i], rates[i]);

  // 1. No flow exceeds its cap.
  for (std::size_t i = 0; i < flows.size(); ++i)
    EXPECT_LE(rates[i], flows[i].cap + 1e-6);

  // 2. No resource is over capacity.
  std::vector<double> usage(res.size(), 0.0);
  for (std::size_t i = 0; i < flows.size(); ++i)
    for (const auto r : flows[i].resources) usage[r] += rates[i];
  for (std::size_t r = 0; r < res.size(); ++r)
    EXPECT_LE(usage[r], res[r].capacity + 1e-5);

  // 3. Work conservation: every flow is bottlenecked somewhere — either at
  // its cap or at a saturated resource.
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (rates[i] >= flows[i].cap - 1e-6) continue;
    bool saturated = false;
    for (const auto r : flows[i].resources)
      if (usage[r] >= res[r].capacity - 1e-5) saturated = true;
    EXPECT_TRUE(saturated) << "flow " << i << " is not bottlenecked";
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomTopologies, FairShareProperty,
    ::testing::Values(RandomCase{1, 2, 1}, RandomCase{2, 5, 2},
                      RandomCase{3, 10, 3}, RandomCase{5, 20, 4},
                      RandomCase{8, 40, 5}, RandomCase{4, 4, 6},
                      RandomCase{10, 80, 7}, RandomCase{6, 30, 8}));

}  // namespace
}  // namespace flashflow::net
