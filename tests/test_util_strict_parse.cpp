// Strict whole-token parsing (util/strict_parse.h).
//
// These helpers exist because the stoll/stod/atoi family accepts trailing
// garbage and loses the offending input on overflow — the exact failure
// modes behind the bandwidth-file and bench-CLI parsing bugs this suite
// regression-tests at their call sites. Here the contract itself is
// pinned: whole-token or throw, with the caller's label and the bad text
// in the message.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

#include "util/strict_parse.h"

namespace flashflow::util {
namespace {

/// Expects `fn` to throw std::invalid_argument whose message contains
/// every fragment — the label, so a failure names its field, and the
/// offending text, so the user sees what was rejected.
template <typename Fn>
void expect_throws_containing(Fn fn,
                              std::initializer_list<const char*> fragments) {
  try {
    fn();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    for (const char* fragment : fragments)
      EXPECT_NE(what.find(fragment), std::string::npos)
          << "message '" << what << "' missing '" << fragment << "'";
  }
}

TEST(StrictParse, I64AcceptsWholeTokens) {
  EXPECT_EQ(parse_i64("0", "t"), 0);
  EXPECT_EQ(parse_i64("-42", "t"), -42);
  EXPECT_EQ(parse_i64("9223372036854775807", "t"),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(parse_i64("-9223372036854775808", "t"),
            std::numeric_limits<std::int64_t>::min());
}

TEST(StrictParse, I64RejectsTrailingGarbage) {
  // The motivating bug class: stoll("12junk") == 12.
  expect_throws_containing([] { parse_i64("12junk", "timestamp"); },
                           {"timestamp", "12junk"});
  expect_throws_containing([] { parse_i64("1 ", "t"); }, {"'1 '"});
  expect_throws_containing([] { parse_i64(" 1", "t"); }, {"' 1'"});
  expect_throws_containing([] { parse_i64("", "t"); }, {"t:"});
  expect_throws_containing([] { parse_i64("1.5", "t"); }, {"1.5"});
}

TEST(StrictParse, I64ReportsOverflowAsRange) {
  expect_throws_containing([] { parse_i64("9223372036854775808", "t"); },
                           {"out of range", "9223372036854775808"});
}

TEST(StrictParse, U64RejectsSigns) {
  EXPECT_EQ(parse_u64("18446744073709551615", "t"),
            std::numeric_limits<std::uint64_t>::max());
  expect_throws_containing([] { parse_u64("-1", "t"); }, {"-1"});
  expect_throws_containing([] { parse_u64("+1", "t"); }, {"+1"});
  expect_throws_containing([] { parse_u64("18446744073709551616", "t"); },
                           {"out of range"});
}

TEST(StrictParse, DoubleAcceptsUsualForms) {
  EXPECT_DOUBLE_EQ(parse_double("2.25", "t"), 2.25);
  EXPECT_DOUBLE_EQ(parse_double("1e-5", "t"), 1e-5);
  EXPECT_DOUBLE_EQ(parse_double("998e6", "t"), 998e6);
  EXPECT_DOUBLE_EQ(parse_double("-0.5", "t"), -0.5);
}

TEST(StrictParse, DoubleRejectsGarbageAndNonFinite) {
  expect_throws_containing([] { parse_double("12junk", "bw"); },
                           {"bw", "12junk"});
  expect_throws_containing([] { parse_double("", "t"); }, {"t:"});
  expect_throws_containing([] { parse_double("nan", "t"); }, {"nan"});
  expect_throws_containing([] { parse_double("inf", "t"); }, {"inf"});
  expect_throws_containing([] { parse_double("1e999", "t"); },
                           {"out of range", "1e999"});
}

TEST(StrictParse, IntEnforcesIntRange) {
  EXPECT_EQ(parse_int("-2147483648", "t"),
            std::numeric_limits<int>::min());
  EXPECT_EQ(parse_int("2147483647", "t"), std::numeric_limits<int>::max());
  // The bench-CLI bug class: atoi("2k") == 2.
  expect_throws_containing([] { parse_int("2k", "--relays"); },
                           {"--relays", "2k"});
  expect_throws_containing([] { parse_int("2147483648", "t"); },
                           {"out of range"});
}

TEST(StrictParse, BoolIsExact) {
  EXPECT_TRUE(parse_bool("true", "t"));
  EXPECT_FALSE(parse_bool("false", "t"));
  expect_throws_containing([] { parse_bool("True", "flag"); },
                           {"flag", "True"});
  expect_throws_containing([] { parse_bool("1", "t"); }, {"'1'"});
}

}  // namespace
}  // namespace flashflow::util
