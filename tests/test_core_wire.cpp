#include "core/wire.h"

#include <gtest/gtest.h>

namespace flashflow::core {
namespace {

ControlMessage sample_message() {
  ControlMessage m;
  m.type = MessageType::kMeasureRequest;
  m.sender = 0xB0A;
  m.period_index = 7;
  m.target_fingerprint = "relay-1";
  m.measurer_keys = {11, 22, 33};
  m.value = 123.5;
  m.second = 4;
  return m;
}

TEST(Wire, SignVerifyRoundTrip) {
  auto m = sample_message();
  sign_message(m, /*secret=*/999);
  EXPECT_TRUE(verify_message(m, 999));
}

TEST(Wire, WrongKeyFails) {
  auto m = sample_message();
  sign_message(m, 999);
  EXPECT_FALSE(verify_message(m, 1000));
}

TEST(Wire, TamperedFieldsFail) {
  auto m = sample_message();
  sign_message(m, 999);

  auto tampered = m;
  tampered.value = 9999.0;
  EXPECT_FALSE(verify_message(tampered, 999));

  tampered = m;
  tampered.target_fingerprint = "relay-2";
  EXPECT_FALSE(verify_message(tampered, 999));

  tampered = m;
  tampered.measurer_keys.push_back(44);
  EXPECT_FALSE(verify_message(tampered, 999));

  tampered = m;
  tampered.period_index = 8;
  EXPECT_FALSE(verify_message(tampered, 999));

  tampered = m;
  tampered.second = 5;
  EXPECT_FALSE(verify_message(tampered, 999));
}

TEST(Gate, OncePerPeriodPerBWAuth) {
  MeasurementGate gate;
  EXPECT_TRUE(gate.admit(/*bwauth=*/1, /*period=*/10));
  EXPECT_FALSE(gate.admit(1, 10));  // §4.1: once per period
  EXPECT_TRUE(gate.admit(1, 11));   // next period ok
  EXPECT_TRUE(gate.admit(2, 10));   // different BWAuth ok
}

TEST(Gate, MeasurerAuthorization) {
  MeasurementGate gate;
  EXPECT_FALSE(gate.measurer_authorized(5));
  gate.authorize_measurers({5, 6});
  EXPECT_TRUE(gate.measurer_authorized(5));
  EXPECT_TRUE(gate.measurer_authorized(6));
  EXPECT_FALSE(gate.measurer_authorized(7));
  gate.clear_authorizations();
  EXPECT_FALSE(gate.measurer_authorized(5));
}

}  // namespace
}  // namespace flashflow::core
