#include "core/verification.h"

#include <gtest/gtest.h>

#include <cmath>

namespace flashflow::core {
namespace {

TEST(Verification, EvasionProbabilityFormula) {
  EXPECT_DOUBLE_EQ(evasion_probability(0.5, 0), 1.0);
  EXPECT_DOUBLE_EQ(evasion_probability(0.5, 1), 0.5);
  EXPECT_NEAR(evasion_probability(0.5, 2), 0.25, 1e-12);
  // Paper's p = 1e-5: forging a full 30 s slot at 250 Mbit/s (~1.8M cells)
  // evades with probability (1-1e-5)^1.8e6 ~ 1.5e-8.
  EXPECT_LT(evasion_probability(1e-5, 1'800'000), 1e-7);
}

TEST(Verification, EvasionRejectsBadP) {
  EXPECT_THROW(evasion_probability(-0.1, 1), std::invalid_argument);
  EXPECT_THROW(evasion_probability(1.1, 1), std::invalid_argument);
}

TEST(Verification, CellsForDetection) {
  // With p = 1e-5, ~2.3e5 forged cells give 90% detection.
  const auto k = cells_for_detection(1e-5, 0.9);
  EXPECT_NEAR(static_cast<double>(k), std::log(0.1) / std::log1p(-1e-5),
              2.0);
  EXPECT_EQ(cells_for_detection(0.5, 0.0), 0u);
  EXPECT_THROW(cells_for_detection(0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(cells_for_detection(0.5, 1.0), std::invalid_argument);
}

TEST(Verification, SampleDetectionHighVolumeAlwaysCaught) {
  sim::Rng rng(3);
  // 1 GB of forged traffic at p=1e-5: detection is essentially certain.
  int detected = 0;
  for (int i = 0; i < 50; ++i)
    if (sample_detection(1e-5, 1e9, 514.0, rng)) ++detected;
  EXPECT_EQ(detected, 50);
}

TEST(Verification, SampleDetectionZeroBytesNeverCaught) {
  sim::Rng rng(4);
  for (int i = 0; i < 50; ++i)
    EXPECT_FALSE(sample_detection(1e-5, 100.0, 514.0, rng));  // <1 cell
}

TEST(Verification, SampleDetectionRate) {
  sim::Rng rng(5);
  // ~693 cells at p=1e-3: detection probability = 1-(1-p)^693 ~ 0.5.
  const double bytes = 693 * 514.0;
  int detected = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i)
    if (sample_detection(1e-3, bytes, 514.0, rng)) ++detected;
  EXPECT_NEAR(static_cast<double>(detected) / trials, 0.5, 0.05);
}

TEST(Verification, SampleDetectionRejectsBadCellSize) {
  sim::Rng rng(6);
  EXPECT_THROW(sample_detection(0.5, 100.0, 0.0, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace flashflow::core
