#include "core/estimator.h"

#include <gtest/gtest.h>

#include "net/units.h"

namespace flashflow::core {
namespace {

TEST(Estimator, AcceptanceThresholdFormula) {
  Params p;
  const std::vector<double> alloc = {net::mbit(450), net::mbit(450)};
  const auto r = evaluate_estimate(net::mbit(100), alloc, p);
  // threshold = 900 * 0.8 / 2.25 = 320 Mbit/s
  EXPECT_NEAR(net::to_mbit(r.threshold_bits), 320, 0.1);
  EXPECT_TRUE(r.accepted);
}

TEST(Estimator, RejectsTooHighEstimate) {
  Params p;
  const std::vector<double> alloc = {net::mbit(450), net::mbit(450)};
  EXPECT_FALSE(evaluate_estimate(net::mbit(320), alloc, p).accepted);
  EXPECT_FALSE(evaluate_estimate(net::mbit(500), alloc, p).accepted);
}

TEST(Estimator, PaperIdentityCorrectGuessAccepted) {
  // §4.2: if z0 is the true capacity and z < z0(1+eps2), then z passes,
  // because z0(1+eps2) = z0 f (1-eps1)/m = sum(a)(1-eps1)/m.
  Params p;
  const double z0 = net::mbit(200);
  const double required = p.excess_factor() * z0;
  const std::vector<double> alloc = {required};
  const double z = z0 * (1.0 + p.epsilon2) - 1.0;  // just under the bound
  EXPECT_TRUE(evaluate_estimate(z, alloc, p).accepted);
}

TEST(Estimator, NextGuessDoublesAtLeast) {
  EXPECT_DOUBLE_EQ(next_guess(net::mbit(50), net::mbit(100)),
                   net::mbit(200));  // 2*z0 dominates
  EXPECT_DOUBLE_EQ(next_guess(net::mbit(500), net::mbit(100)),
                   net::mbit(500));  // z dominates
}

TEST(Estimator, NewRelayPriorIs75thPercentile) {
  std::vector<double> caps;
  for (int i = 1; i <= 100; ++i) caps.push_back(static_cast<double>(i));
  EXPECT_NEAR(new_relay_prior(caps), 75.25, 0.01);
  const std::vector<double> empty;
  EXPECT_THROW(new_relay_prior(empty), std::invalid_argument);
}

TEST(Estimator, ImpliedIntervalBracketsTruth) {
  Params p;
  const auto iv = implied_interval(net::mbit(100), p);
  EXPECT_NEAR(net::to_mbit(iv.low_bits), 100 / 1.05, 0.01);
  EXPECT_NEAR(net::to_mbit(iv.high_bits), 100 / 0.80, 0.01);
  EXPECT_LT(iv.low_bits, iv.high_bits);
}

// Property sweep: the acceptance rule is monotone — more allocation can
// only make acceptance easier for a fixed estimate.
class AcceptMonotone : public ::testing::TestWithParam<double> {};

TEST_P(AcceptMonotone, MonotoneInAllocation) {
  Params p;
  const double z = net::mbit(GetParam());
  bool was_accepted = false;
  for (double total = 100; total <= 4000; total += 100) {
    const std::vector<double> alloc = {net::mbit(total)};
    const bool now = evaluate_estimate(z, alloc, p).accepted;
    if (was_accepted) {
      EXPECT_TRUE(now);
    }
    was_accepted = now;
  }
}

INSTANTIATE_TEST_SUITE_P(EstimateSweep, AcceptMonotone,
                         ::testing::Values(10.0, 100.0, 250.0, 500.0, 890.0));

}  // namespace
}  // namespace flashflow::core
