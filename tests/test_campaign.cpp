#include "campaign/campaign.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <sstream>
#include <utility>
#include <vector>

#include "campaign/sink.h"
#include "campaign/thread_pool.h"
#include "net/units.h"
#include "tor/cpu_model.h"

namespace flashflow::campaign {
namespace {

// A US-SW-hosted relay with the given operator rate limit, as in the
// paper's Internet experiments.
CampaignRelay make_relay(const net::Topology& topo, double limit_mbit) {
  CampaignRelay r;
  r.model.name = "relay-" + std::to_string(static_cast<int>(limit_mbit));
  r.model.nic_up_bits = r.model.nic_down_bits = net::mbit(954);
  r.model.rate_limit_bits = net::mbit(limit_mbit);
  r.model.cpu = tor::CpuModel::us_sw();
  r.host = topo.find("US-SW");
  return r;
}

CampaignConfig lab_config(const net::Topology& topo) {
  CampaignConfig config;
  config.measurer_hosts = {topo.find("US-E"), topo.find("NL")};
  config.measurer_capacity_bits = {net::mbit(900), net::mbit(900)};
  config.seed = 20210613;
  return config;
}

std::vector<CampaignRelay> small_population(const net::Topology& topo) {
  std::vector<CampaignRelay> relays;
  for (const double limit : {10, 25, 50, 75, 100, 150, 200, 250, 40, 120})
    relays.push_back(make_relay(topo, limit));
  return relays;
}

TEST(ThreadPool, ParallelForCoversEveryIndex) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(64,
                                 [](std::size_t i) {
                                   if (i % 7 == 3)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(Campaign, EndToEndOverTable1Hosts) {
  const auto topo = net::make_table1_hosts();
  const auto relays = small_population(topo);
  const CampaignRunner runner(topo, lab_config(topo));
  const auto result = runner.run(relays);

  ASSERT_EQ(result.relays.size(), relays.size());
  EXPECT_EQ(result.summary.relays_measured,
            static_cast<int>(relays.size()));
  EXPECT_EQ(result.summary.verification_failures, 0);
  EXPECT_GE(result.summary.slots_in_period, 2);
  EXPECT_GT(result.summary.slots_executed, 0);
  EXPECT_DOUBLE_EQ(result.summary.simulated_seconds,
                   result.summary.slots_in_period * 30.0);
  EXPECT_GT(result.summary.total_estimated_bits, 0.0);
  for (const auto& est : result.relays) {
    EXPECT_GE(est.slot, 0);
    EXPECT_LT(est.slot, result.summary.slots_in_period);
    EXPECT_GT(est.estimate_bits, 0.0);
    EXPECT_FALSE(est.verification_failed);
  }
}

TEST(Campaign, DeterministicAcrossThreadCounts) {
  const auto topo = net::make_table1_hosts();
  const auto relays = small_population(topo);

  auto config1 = lab_config(topo);
  config1.threads = 1;
  auto config8 = lab_config(topo);
  config8.threads = 8;

  const auto serial = CampaignRunner(topo, config1).run(relays);
  const auto parallel = CampaignRunner(topo, config8).run(relays);

  // Bit-identical, not merely close: per-slot sub-seeding must make the
  // schedule of workers irrelevant. Whole-struct equality is possible
  // because CampaignSummary carries no wall-clock timing (that lives in
  // RunStats).
  EXPECT_TRUE(serial == parallel);
  EXPECT_EQ(serial.relays, parallel.relays);
  EXPECT_EQ(serial.summary, parallel.summary);
}

TEST(Campaign, StreamedSinkOutputIdenticalAcrossThreadCounts) {
  const auto topo = net::make_table1_hosts();
  const auto relays = small_population(topo);

  const auto stream_csv = [&](int threads) {
    auto config = lab_config(topo);
    config.threads = threads;
    std::ostringstream out;
    CsvSink sink(out);
    CampaignRunner(topo, config).run(relays, sink);
    return out.str();
  };
  const auto stream_jsonl = [&](int threads) {
    auto config = lab_config(topo);
    config.threads = threads;
    std::ostringstream out;
    JsonlSink sink(out);
    CampaignRunner(topo, config).run(relays, sink);
    return out.str();
  };

  // Slots are delivered in increasing slot order regardless of completion
  // order, so the streamed bytes — not just the aggregate — match.
  const std::string csv1 = stream_csv(1);
  EXPECT_EQ(csv1, stream_csv(8));
  EXPECT_NE(csv1.find("period,relay,slot"), std::string::npos);
  EXPECT_EQ(stream_jsonl(1), stream_jsonl(8));
}

TEST(Campaign, StreamedBytesIdenticalAcrossShardSizes) {
  // The dispatch shard size (and the reorder window derived from it) is a
  // pure perf knob: the streamed bytes must not move for any combination
  // of shard size and thread count.
  const auto topo = net::make_table1_hosts();
  const auto relays = small_population(topo);

  const auto stream_csv = [&](int threads, int shard) {
    auto config = lab_config(topo);
    config.threads = threads;
    config.shard_slots = shard;
    std::ostringstream out;
    CsvSink sink(out);
    CampaignRunner(topo, config).run(relays, sink);
    return out.str();
  };

  const std::string baseline = stream_csv(/*threads=*/1, /*shard=*/0);
  for (const int threads : {1, 8})
    for (const int shard : {1, 2, 1000})
      EXPECT_EQ(baseline, stream_csv(threads, shard))
          << "threads=" << threads << " shard=" << shard;
}

TEST(Campaign, SinkSeesEverySlotInOrderWithPlan) {
  const auto topo = net::make_table1_hosts();
  const auto relays = small_population(topo);

  struct RecordingSink : SlotSink {
    RunPlan plan;
    std::vector<int> slots;
    std::size_t relays_seen = 0;
    int progress_calls = 0;
    void begin(const RunPlan& p) override { plan = p; }
    void slot_done(const SlotResult& slot) override {
      slots.push_back(slot.slot);
      relays_seen += slot.relay_indices.size();
      ASSERT_EQ(slot.relay_indices.size(), slot.estimates.size());
      EXPECT_TRUE(slot.outcomes.empty());  // record_outcomes off
    }
    bool on_progress(int done, int total) override {
      ++progress_calls;
      EXPECT_LE(done, total);
      return true;
    }
  } sink;

  auto config = lab_config(topo);
  config.threads = 4;
  const auto stats = CampaignRunner(topo, config).run(relays, sink);

  EXPECT_EQ(sink.plan.relays, static_cast<int>(relays.size()));
  EXPECT_EQ(sink.plan.slots_to_execute, static_cast<int>(sink.slots.size()));
  EXPECT_EQ(sink.relays_seen, relays.size());
  EXPECT_EQ(sink.progress_calls, stats.slots_executed);
  EXPECT_FALSE(stats.cancelled);
  EXPECT_EQ(stats.slots_skipped, 0);
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_TRUE(std::is_sorted(sink.slots.begin(), sink.slots.end()));
}

TEST(Campaign, ProgressHookCancelsRemainingSlots) {
  const auto topo = net::make_table1_hosts();
  const auto relays = small_population(topo);

  AggregatingSink aggregate;
  ProgressSink cancel_after_first([](int done, int) { return done < 1; },
                                  &aggregate);
  auto config = lab_config(topo);
  config.threads = 2;
  const auto stats = CampaignRunner(topo, config).run(relays, cancel_after_first);

  EXPECT_TRUE(stats.cancelled);
  EXPECT_EQ(stats.slots_executed, 1);
  EXPECT_GT(stats.slots_skipped, 0);

  // A partial run's summary covers only the delivered relays: relays
  // whose slot never ran must not dilute the error statistics.
  const auto partial = std::move(aggregate).result(stats);
  int delivered = 0;
  for (const auto& est : partial.relays) delivered += est.slot >= 0;
  EXPECT_GT(delivered, 0);
  EXPECT_LT(delivered, static_cast<int>(relays.size()));
  EXPECT_EQ(partial.summary.relays_measured, delivered);
  EXPECT_GT(partial.summary.mean_abs_relative_error, 0.0);
}

TEST(Campaign, RecordOutcomesAttachesPerSecondSeries) {
  const auto topo = net::make_table1_hosts();
  const auto relays = small_population(topo);

  struct OutcomeSink : SlotSink {
    std::size_t outcomes = 0;
    std::size_t seconds = 0;
    void slot_done(const SlotResult& slot) override {
      ASSERT_EQ(slot.outcomes.size(), slot.relay_indices.size());
      outcomes += slot.outcomes.size();
      for (const auto& out : slot.outcomes) seconds += out.x_bits.size();
    }
  } sink;

  auto config = lab_config(topo);
  config.record_outcomes = true;
  CampaignRunner(topo, config).run(relays, sink);
  EXPECT_EQ(sink.outcomes, relays.size());
  // One per-second sample per slot second for every relay.
  EXPECT_EQ(sink.seconds, relays.size() * 30);
}

TEST(Campaign, EstimatesTrackKnownCapacities) {
  const auto topo = net::make_table1_hosts();
  const auto relays = small_population(topo);
  const CampaignRunner runner(topo, lab_config(topo));
  const auto result = runner.run(relays);

  // Appendix E.5 error model: accepted estimates land in
  // ((1-eps1)x, (1+eps2)x) = (0.80x, 1.05x); allow the simulator's noise
  // processes a little extra slack on individual relays.
  for (std::size_t i = 0; i < result.relays.size(); ++i) {
    const auto& est = result.relays[i];
    ASSERT_GT(est.ground_truth_bits, 0.0);
    const double ratio = est.estimate_bits / est.ground_truth_bits;
    EXPECT_GT(ratio, 0.70) << relays[i].model.name;
    EXPECT_LT(ratio, 1.15) << relays[i].model.name;
  }
  EXPECT_LT(result.summary.mean_abs_relative_error, 0.15);
  EXPECT_NEAR(result.summary.total_estimated_bits,
              result.summary.total_true_bits,
              0.15 * result.summary.total_true_bits);
}

TEST(Campaign, RandomizedScheduleSpreadsAcrossPeriod) {
  const auto topo = net::make_table1_hosts();
  const auto relays = small_population(topo);
  auto config = lab_config(topo);
  config.schedule = ScheduleMode::kRandomized;
  const auto result = CampaignRunner(topo, config).run(relays);

  // A day of 30-second slots.
  EXPECT_EQ(result.summary.slots_in_period, 2880);
  for (const auto& est : result.relays) {
    EXPECT_GE(est.slot, 0);
    EXPECT_LT(est.slot, 2880);
    EXPECT_GT(est.estimate_bits, 0.0);
  }
}

TEST(Campaign, RejectsBadConfig) {
  const auto topo = net::make_table1_hosts();
  CampaignConfig no_measurers;
  EXPECT_THROW(CampaignRunner(topo, no_measurers), std::invalid_argument);

  auto misaligned = lab_config(topo);
  misaligned.measurer_capacity_bits = {net::mbit(900)};
  EXPECT_THROW(CampaignRunner(topo, misaligned), std::invalid_argument);

  // Params are validated up front (core::Params::validate).
  auto bad_params = lab_config(topo);
  bad_params.params.ratio = 1.0;
  EXPECT_THROW(CampaignRunner(topo, bad_params), std::invalid_argument);
}

}  // namespace
}  // namespace flashflow::campaign
