#include "campaign/campaign.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "campaign/thread_pool.h"
#include "net/units.h"
#include "tor/cpu_model.h"

namespace flashflow::campaign {
namespace {

// A US-SW-hosted relay with the given operator rate limit, as in the
// paper's Internet experiments.
CampaignRelay make_relay(const net::Topology& topo, double limit_mbit) {
  CampaignRelay r;
  r.model.name = "relay-" + std::to_string(static_cast<int>(limit_mbit));
  r.model.nic_up_bits = r.model.nic_down_bits = net::mbit(954);
  r.model.rate_limit_bits = net::mbit(limit_mbit);
  r.model.cpu = tor::CpuModel::us_sw();
  r.host = topo.find("US-SW");
  return r;
}

CampaignConfig lab_config(const net::Topology& topo) {
  CampaignConfig config;
  config.measurer_hosts = {topo.find("US-E"), topo.find("NL")};
  config.measurer_capacity_bits = {net::mbit(900), net::mbit(900)};
  config.seed = 20210613;
  return config;
}

std::vector<CampaignRelay> small_population(const net::Topology& topo) {
  std::vector<CampaignRelay> relays;
  for (const double limit : {10, 25, 50, 75, 100, 150, 200, 250, 40, 120})
    relays.push_back(make_relay(topo, limit));
  return relays;
}

TEST(ThreadPool, ParallelForCoversEveryIndex) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(64,
                                 [](std::size_t i) {
                                   if (i % 7 == 3)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(Campaign, EndToEndOverTable1Hosts) {
  const auto topo = net::make_table1_hosts();
  const auto relays = small_population(topo);
  const CampaignRunner runner(topo, lab_config(topo));
  const auto result = runner.run(relays);

  ASSERT_EQ(result.relays.size(), relays.size());
  EXPECT_EQ(result.summary.relays_measured,
            static_cast<int>(relays.size()));
  EXPECT_EQ(result.summary.verification_failures, 0);
  EXPECT_GE(result.summary.slots_in_period, 2);
  EXPECT_GT(result.summary.slots_executed, 0);
  EXPECT_DOUBLE_EQ(result.summary.simulated_seconds,
                   result.summary.slots_in_period * 30.0);
  EXPECT_GT(result.summary.total_estimated_bits, 0.0);
  for (const auto& est : result.relays) {
    EXPECT_GE(est.slot, 0);
    EXPECT_LT(est.slot, result.summary.slots_in_period);
    EXPECT_GT(est.estimate_bits, 0.0);
    EXPECT_FALSE(est.verification_failed);
  }
}

TEST(Campaign, DeterministicAcrossThreadCounts) {
  const auto topo = net::make_table1_hosts();
  const auto relays = small_population(topo);

  auto config1 = lab_config(topo);
  config1.threads = 1;
  auto config8 = lab_config(topo);
  config8.threads = 8;

  const auto serial = CampaignRunner(topo, config1).run(relays);
  const auto parallel = CampaignRunner(topo, config8).run(relays);

  ASSERT_EQ(serial.relays.size(), parallel.relays.size());
  for (std::size_t i = 0; i < serial.relays.size(); ++i) {
    // Bit-identical, not merely close: per-slot sub-seeding must make the
    // schedule of workers irrelevant.
    EXPECT_EQ(serial.relays[i].estimate_bits,
              parallel.relays[i].estimate_bits);
    EXPECT_EQ(serial.relays[i].slot, parallel.relays[i].slot);
    EXPECT_EQ(serial.relays[i].ground_truth_bits,
              parallel.relays[i].ground_truth_bits);
  }
  EXPECT_EQ(serial.summary.mean_abs_relative_error,
            parallel.summary.mean_abs_relative_error);
  EXPECT_EQ(serial.summary.slots_executed, parallel.summary.slots_executed);
}

TEST(Campaign, EstimatesTrackKnownCapacities) {
  const auto topo = net::make_table1_hosts();
  const auto relays = small_population(topo);
  const CampaignRunner runner(topo, lab_config(topo));
  const auto result = runner.run(relays);

  // Appendix E.5 error model: accepted estimates land in
  // ((1-eps1)x, (1+eps2)x) = (0.80x, 1.05x); allow the simulator's noise
  // processes a little extra slack on individual relays.
  for (std::size_t i = 0; i < result.relays.size(); ++i) {
    const auto& est = result.relays[i];
    ASSERT_GT(est.ground_truth_bits, 0.0);
    const double ratio = est.estimate_bits / est.ground_truth_bits;
    EXPECT_GT(ratio, 0.70) << relays[i].model.name;
    EXPECT_LT(ratio, 1.15) << relays[i].model.name;
  }
  EXPECT_LT(result.summary.mean_abs_relative_error, 0.15);
  EXPECT_NEAR(result.summary.total_estimated_bits,
              result.summary.total_true_bits,
              0.15 * result.summary.total_true_bits);
}

TEST(Campaign, RandomizedScheduleSpreadsAcrossPeriod) {
  const auto topo = net::make_table1_hosts();
  const auto relays = small_population(topo);
  auto config = lab_config(topo);
  config.schedule = ScheduleMode::kRandomized;
  const auto result = CampaignRunner(topo, config).run(relays);

  // A day of 30-second slots.
  EXPECT_EQ(result.summary.slots_in_period, 2880);
  for (const auto& est : result.relays) {
    EXPECT_GE(est.slot, 0);
    EXPECT_LT(est.slot, 2880);
    EXPECT_GT(est.estimate_bits, 0.0);
  }
}

TEST(Campaign, RejectsBadConfig) {
  const auto topo = net::make_table1_hosts();
  CampaignConfig no_measurers;
  EXPECT_THROW(CampaignRunner(topo, no_measurers), std::invalid_argument);

  auto misaligned = lab_config(topo);
  misaligned.measurer_capacity_bits = {net::mbit(900)};
  EXPECT_THROW(CampaignRunner(topo, misaligned), std::invalid_argument);
}

}  // namespace
}  // namespace flashflow::campaign
