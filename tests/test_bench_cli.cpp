// Bench-binary CLI parsing (bench/bench_util.h).
//
// Regression suite for the atoi-era flag parsing: `--relays 2k` used to
// run a 2-relay campaign (atoi stops at the first non-digit), and
// `--repeat ''` ran once. The shared parse_int_flag helper must instead
// exit 2 with a message naming the flag — death tests, since the helper
// terminates the process by design.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace flashflow::bench {
namespace {

TEST(BenchCli, ParseIntFlagAcceptsWholeTokens) {
  EXPECT_EQ(parse_int_flag("200", 1, 1000000, "--relays", "bench"), 200);
  EXPECT_EQ(parse_int_flag("1", 1, 100, "--repeat", "bench"), 1);
  EXPECT_EQ(parse_int_flag("0", 0, 4096, "--threads", "bench"), 0);
}

TEST(BenchCliDeathTest, TrailingGarbageExits2) {
  // The motivating bug: atoi("2k") == 2 silently shrank the campaign.
  EXPECT_EXIT(parse_int_flag("2k", 1, 1000000, "--relays", "bench"),
              ::testing::ExitedWithCode(2), "--relays.*'2k'");
}

TEST(BenchCliDeathTest, EmptyValueExits2) {
  EXPECT_EXIT(parse_int_flag("", 1, 100, "--repeat", "bench"),
              ::testing::ExitedWithCode(2), "--repeat");
}

TEST(BenchCliDeathTest, OutOfRangeExits2) {
  EXPECT_EXIT(parse_int_flag("0", 1, 100, "--repeat", "bench"),
              ::testing::ExitedWithCode(2), "--repeat.*'0'");
  EXPECT_EXIT(
      parse_int_flag("99999999999999999999", 1, 1000000, "--relays", "bench"),
      ::testing::ExitedWithCode(2), "--relays");
}

/// Builds a mutable argv for parse_cli/take_scenario_flag.
struct Argv {
  explicit Argv(std::vector<std::string> args) : storage(std::move(args)) {
    for (auto& arg : storage) pointers.push_back(arg.data());
  }
  int argc() { return static_cast<int>(pointers.size()); }
  char** argv() { return pointers.data(); }
  std::vector<std::string> storage;
  std::vector<char*> pointers;
};

TEST(BenchCli, ParseCliReadsSeedAndThreads) {
  Argv args({"bench", "--seed=42", "--threads", "4"});
  const CliOptions options = parse_cli(args.argc(), args.argv(), 1);
  EXPECT_EQ(options.seed, 42u);
  EXPECT_EQ(options.threads, 4);
}

TEST(BenchCliDeathTest, ParseCliRejectsMalformedThreads) {
  Argv args({"bench", "--threads", "8x"});
  EXPECT_EXIT(parse_cli(args.argc(), args.argv(), 1),
              ::testing::ExitedWithCode(2), "--threads.*'8x'");
}

TEST(BenchCli, TakeScenarioFlagPeelsFlagAndShiftsArgv) {
  Argv args({"bench", "--scenario", "custom.yaml", "--seed=9"});
  int argc = args.argc();
  const std::string path =
      take_scenario_flag(argc, args.argv(), "default.yaml");
  EXPECT_EQ(path, "custom.yaml");
  ASSERT_EQ(argc, 2);
  // The remaining argv must still parse cleanly (parse_cli rejects
  // leftovers it does not know).
  EXPECT_EQ(std::string(args.argv()[1]), "--seed=9");
  EXPECT_EQ(parse_cli(argc, args.argv(), 1).seed, 9u);
}

TEST(BenchCli, TakeScenarioFlagFallsBack) {
  Argv args({"bench", "--seed=9"});
  int argc = args.argc();
  EXPECT_EQ(take_scenario_flag(argc, args.argv(), "default.yaml"),
            "default.yaml");
  EXPECT_EQ(argc, 2);
}

}  // namespace
}  // namespace flashflow::bench
