#include "metrics/error_metrics.h"

#include <gtest/gtest.h>

#include <vector>

namespace flashflow::metrics {
namespace {

TEST(ErrorMetrics, RelayCapacityErrorEq2) {
  EXPECT_DOUBLE_EQ(relay_capacity_error(50.0, 100.0), 0.5);
  EXPECT_DOUBLE_EQ(relay_capacity_error(100.0, 100.0), 0.0);
  // Over-advertising yields negative error, as the equation implies.
  EXPECT_DOUBLE_EQ(relay_capacity_error(150.0, 100.0), -0.5);
}

TEST(ErrorMetrics, RelayCapacityErrorRejectsBadCapacity) {
  EXPECT_THROW(relay_capacity_error(1.0, 0.0), std::invalid_argument);
}

TEST(ErrorMetrics, NetworkCapacityErrorEq3) {
  const std::vector<double> adv = {50.0, 100.0};
  const std::vector<double> cap = {100.0, 200.0};
  EXPECT_DOUBLE_EQ(network_capacity_error(adv, cap), 0.5);
}

TEST(ErrorMetrics, NetworkCapacityErrorWeighsBigRelays) {
  // A large accurate relay dominates a small inaccurate one.
  const std::vector<double> adv = {1.0, 1000.0};
  const std::vector<double> cap = {100.0, 1000.0};
  EXPECT_NEAR(network_capacity_error(adv, cap), 99.0 / 1100.0, 1e-12);
}

TEST(ErrorMetrics, NetworkCapacityErrorRejectsMismatch) {
  const std::vector<double> a = {1.0};
  const std::vector<double> c = {1.0, 2.0};
  EXPECT_THROW(network_capacity_error(a, c), std::invalid_argument);
}

TEST(ErrorMetrics, NormalizeSumsToOne) {
  const std::vector<double> v = {1.0, 3.0};
  const auto n = normalize(v);
  EXPECT_DOUBLE_EQ(n[0], 0.25);
  EXPECT_DOUBLE_EQ(n[1], 0.75);
}

TEST(ErrorMetrics, NormalizeRejectsZeroSum) {
  const std::vector<double> v = {0.0, 0.0};
  EXPECT_THROW(normalize(v), std::invalid_argument);
}

TEST(ErrorMetrics, RelayWeightErrorEq5) {
  EXPECT_DOUBLE_EQ(relay_weight_error(0.2, 0.1), 2.0);   // over-weighted
  EXPECT_DOUBLE_EQ(relay_weight_error(0.05, 0.1), 0.5);  // under-weighted
  EXPECT_THROW(relay_weight_error(0.1, 0.0), std::invalid_argument);
}

TEST(ErrorMetrics, NetworkWeightErrorIsTotalVariation) {
  const std::vector<double> w = {0.5, 0.5};
  const std::vector<double> c = {0.9, 0.1};
  EXPECT_DOUBLE_EQ(network_weight_error(w, c), 0.4);
}

TEST(ErrorMetrics, NetworkWeightErrorZeroWhenPerfect) {
  const std::vector<double> w = {0.3, 0.7};
  EXPECT_DOUBLE_EQ(network_weight_error(w, w), 0.0);
}

TEST(ErrorMetrics, NetworkWeightErrorBounds) {
  // Total variation distance lies in [0, 1].
  const std::vector<double> w = {1.0, 0.0};
  const std::vector<double> c = {0.0, 1.0};
  EXPECT_DOUBLE_EQ(network_weight_error(w, c), 1.0);
}

TEST(ErrorMetrics, RawVariantNormalizesFirst) {
  const std::vector<double> w = {5.0, 5.0};
  const std::vector<double> c = {90.0, 10.0};
  EXPECT_DOUBLE_EQ(network_weight_error_raw(w, c), 0.4);
}

}  // namespace
}  // namespace flashflow::metrics
