#include "core/schedule.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include <set>

#include "net/units.h"

namespace flashflow::core {
namespace {

TEST(GreedyPack, SingleRelayOneSlot) {
  Params p;
  const std::vector<double> caps = {net::mbit(100)};
  const auto r = greedy_pack(caps, net::gbit(3), p);
  EXPECT_EQ(r.slots_used, 1);
  EXPECT_EQ(r.relay_slot[0], 0);
}

TEST(GreedyPack, PacksLargestFirst) {
  Params p;
  // Team 3 Gbit/s; f ~ 2.953: a 998 Mbit/s relay consumes ~2.95 G alone,
  // leaving ~53 Mbit/s of slack for small relays.
  const std::vector<double> caps = {net::mbit(998), net::mbit(5),
                                    net::mbit(5)};
  const auto r = greedy_pack(caps, net::gbit(3), p);
  EXPECT_EQ(r.slots_used, 1);  // small relays fit in the leftover
}

TEST(GreedyPack, SlotCountTracksTotalRequirement) {
  Params p;
  std::vector<double> caps(100, net::mbit(100));
  const double team = net::gbit(3);
  const auto r = greedy_pack(caps, team, p);
  const int lower_bound = static_cast<int>(
      std::ceil(r.total_requirement_bits / team));
  EXPECT_GE(r.slots_used, lower_bound);
  EXPECT_LE(r.slots_used, lower_bound + 2);  // near-perfect packing
}

TEST(GreedyPack, EveryRelayAssignedExactlyOnce) {
  Params p;
  std::vector<double> caps;
  sim::Rng rng(3);
  for (int i = 0; i < 200; ++i) caps.push_back(rng.uniform(1e6, 9e8));
  const auto r = greedy_pack(caps, net::gbit(3), p);
  for (const int slot : r.relay_slot) {
    EXPECT_GE(slot, 0);
    EXPECT_LT(slot, r.slots_used);
  }
}

TEST(GreedyPack, SlotCapacityNeverExceeded) {
  Params p;
  std::vector<double> caps;
  sim::Rng rng(4);
  for (int i = 0; i < 300; ++i) caps.push_back(rng.uniform(1e6, 9e8));
  const double team = net::gbit(3);
  const auto r = greedy_pack(caps, team, p);
  std::vector<double> load(static_cast<std::size_t>(r.slots_used), 0.0);
  for (std::size_t i = 0; i < caps.size(); ++i)
    load[static_cast<std::size_t>(r.relay_slot[i])] +=
        p.excess_factor() * caps[i];
  for (const double l : load) EXPECT_LE(l, team + 1.0);
}

TEST(GreedyPack, OversizedRelayThrows) {
  Params p;
  const std::vector<double> caps = {net::gbit(2)};  // f*2G > 3G
  EXPECT_THROW(greedy_pack(caps, net::gbit(3), p), std::runtime_error);
}

TEST(PeriodSchedule, SlotsPerDay) {
  Params p;  // 24 h period, 30 s slots
  PeriodSchedule sched(p, net::gbit(3), 1);
  EXPECT_EQ(sched.slots_in_period(), 2880);
}

TEST(PeriodSchedule, OldRelaysGetFeasibleSlots) {
  Params p;
  PeriodSchedule sched(p, net::gbit(3), 2);
  std::vector<double> caps(500, net::mbit(100));
  const auto slots = sched.schedule_old_relays(caps);
  ASSERT_EQ(slots.size(), caps.size());
  for (const int s : slots) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, sched.slots_in_period());
    EXPECT_LE(sched.slot_load_bits(s), net::gbit(3) + 1.0);
  }
}

TEST(PeriodSchedule, DeterministicForSeed) {
  Params p;
  std::vector<double> caps(50, net::mbit(100));
  PeriodSchedule a(p, net::gbit(3), 42);
  PeriodSchedule b(p, net::gbit(3), 42);
  EXPECT_EQ(a.schedule_old_relays(caps), b.schedule_old_relays(caps));
}

TEST(PeriodSchedule, DifferentSeedsDifferentSchedules) {
  // §4.3: the schedule must be unpredictable without the seed.
  Params p;
  std::vector<double> caps(50, net::mbit(100));
  PeriodSchedule a(p, net::gbit(3), 1);
  PeriodSchedule b(p, net::gbit(3), 2);
  EXPECT_NE(a.schedule_old_relays(caps), b.schedule_old_relays(caps));
}

TEST(PeriodSchedule, SlotsSpreadAcrossPeriod) {
  Params p;
  PeriodSchedule sched(p, net::gbit(3), 3);
  std::vector<double> caps(200, net::mbit(50));
  const auto slots = sched.schedule_old_relays(caps);
  std::set<int> distinct(slots.begin(), slots.end());
  // Uniform choice over 2880 slots: 200 relays should land on many
  // distinct slots.
  EXPECT_GT(distinct.size(), 150u);
}

TEST(PeriodSchedule, NewRelaysFcfsEarliestFit) {
  Params p;
  PeriodSchedule sched(p, net::gbit(3), 4);
  const int s1 = sched.schedule_new_relay(net::mbit(51));
  const int s2 = sched.schedule_new_relay(net::mbit(51));
  EXPECT_EQ(s1, 0);
  EXPECT_EQ(s2, 0);  // both fit in the first slot
  // Fill slot 0 with a huge relay: next new relay goes to slot 1.
  PeriodSchedule tight(p, net::mbit(200), 5);
  tight.schedule_new_relay(net::mbit(60));  // ~177 of 200 Mbit used
  const int s3 = tight.schedule_new_relay(net::mbit(60));
  EXPECT_EQ(s3, 1);
}

TEST(PeriodSchedule, RejectsZeroCapacityTeam) {
  Params p;
  EXPECT_THROW(PeriodSchedule(p, 0.0, 1), std::invalid_argument);
}

TEST(GreedyPackProperty, RandomPopulationsPlaceEveryRelayWithinCapacity) {
  // Property sweep over random team sizes and heavy-ish populations:
  // every relay lands in exactly one valid slot, no slot's requirement sum
  // exceeds the team capacity, and the reported totals are consistent.
  Params p;
  sim::Rng rng(606);
  for (int trial = 0; trial < 40; ++trial) {
    const double team = rng.uniform(net::gbit(1), net::gbit(5));
    const double max_cap = team / p.excess_factor();
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 150));
    std::vector<double> caps;
    caps.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      caps.push_back(rng.uniform(net::kbit(100), max_cap));

    const auto r = greedy_pack(caps, team, p);
    ASSERT_EQ(r.relay_slot.size(), n);
    ASSERT_GE(r.slots_used, 1);
    std::vector<double> load(static_cast<std::size_t>(r.slots_used), 0.0);
    double requirement = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_GE(r.relay_slot[i], 0);          // placed...
      ASSERT_LT(r.relay_slot[i], r.slots_used);  // ...in a real slot
      load[static_cast<std::size_t>(r.relay_slot[i])] +=
          p.excess_factor() * caps[i];
      requirement += p.excess_factor() * caps[i];
    }
    for (const double l : load) EXPECT_LE(l, team + 1.0);
    EXPECT_NEAR(r.total_requirement_bits, requirement,
                1e-6 * requirement + 1.0);
    // No trailing empty slot: the last slot must hold someone.
    EXPECT_GT(load.back(), 0.0);
  }
}

TEST(GreedyPackProperty, ThrowsWheneverAnyRelayExceedsTeam) {
  Params p;
  sim::Rng rng(607);
  for (int trial = 0; trial < 40; ++trial) {
    const double team = rng.uniform(net::gbit(1), net::gbit(5));
    std::vector<double> caps;
    for (int i = 0; i < 10; ++i)
      caps.push_back(rng.uniform(net::mbit(1), team / p.excess_factor()));
    // One relay strictly over the single-slot budget poisons the packing.
    caps.push_back(team / p.excess_factor() * rng.uniform(1.01, 3.0));
    rng.shuffle(caps);
    EXPECT_THROW(greedy_pack(caps, team, p), std::runtime_error);
  }
}

}  // namespace
}  // namespace flashflow::core
