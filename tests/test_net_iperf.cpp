#include "net/iperf.h"

#include <gtest/gtest.h>

#include "net/units.h"

namespace flashflow::net {
namespace {

struct IperfTest : ::testing::Test {
  Topology topo = make_table1_hosts();
  IperfRunner runner{topo, 42};
};

TEST_F(IperfTest, SaturatingUdpMatchesNic) {
  // Table 1 "BW (measured)": the receiver NIC is the bottleneck.
  for (const auto& name : table1_host_names()) {
    const HostId h = topo.find(name);
    const auto report = runner.run_saturate_udp(h, 60);
    EXPECT_NEAR(report.median_bits(), topo.host(h).nic_down_bits,
                topo.host(h).nic_down_bits * 0.03)
        << name;
  }
}

TEST_F(IperfTest, UdpBeatsTcpOnHighRttPath) {
  const HostId us_sw = topo.find("US-SW");
  const HostId in = topo.find("IN");
  const auto tcp = runner.run_tcp(in, us_sw, 60);
  const auto udp = runner.run_udp(in, us_sw, 60);
  EXPECT_GT(udp.median_bits(), tcp.median_bits());
}

TEST_F(IperfTest, TcpSingleStreamIsWindowLimited) {
  const HostId us_sw = topo.find("US-SW");
  const HostId in = topo.find("IN");
  // 4 MiB window at 210 ms -> well under the NIC.
  const auto tcp = runner.run_tcp(us_sw, in, 60);
  EXPECT_LT(tcp.median_bits(), mbit(300));
  EXPECT_GT(tcp.median_bits(), mbit(25));
}

TEST_F(IperfTest, ParallelStreamsRaiseTcpThroughput) {
  const HostId us_sw = topo.find("US-SW");
  const HostId in = topo.find("IN");
  const auto one = runner.run_tcp(us_sw, in, 30, 1);
  const auto eight = runner.run_tcp(us_sw, in, 30, 8);
  EXPECT_GT(eight.median_bits(), one.median_bits() * 3.0);
}

TEST_F(IperfTest, BidirectionalTakesMin) {
  const HostId a = topo.find("US-E");
  const HostId b = topo.find("NL");
  const auto both = runner.run_bidirectional(a, b, 30, /*udp=*/true);
  const auto ab = runner.run_udp(a, b, 30);
  // min(sent, received) cannot exceed the one-way throughput by much
  // (only noise draws differ).
  EXPECT_LE(both.median_bits(), ab.median_bits() * 1.05);
  EXPECT_GT(both.median_bits(), 0.0);
}

TEST_F(IperfTest, ReportDurationMatches) {
  const auto r =
      runner.run_udp(topo.find("US-E"), topo.find("NL"), 15);
  EXPECT_EQ(r.per_second_bits.size(), 15u);
}

TEST_F(IperfTest, EmptyReportMedianIsZero) {
  IperfReport empty;
  EXPECT_DOUBLE_EQ(empty.median_bits(), 0.0);
}

TEST_F(IperfTest, VariableHostShowsSpread) {
  // US-NW's receive direction is configured flaky (Appendix B).
  const HostId us_sw = topo.find("US-SW");
  const HostId us_nw = topo.find("US-NW");
  IperfRunner r(topo, 7);
  double lo = 1e18, hi = 0;
  for (int i = 0; i < 12; ++i) {
    const double m = r.run_tcp(us_sw, us_nw, 30).median_bits();
    lo = std::min(lo, m);
    hi = std::max(hi, m);
  }
  EXPECT_LT(lo, hi * 0.7);  // wide range, like Table 3's 176-787
}

}  // namespace
}  // namespace flashflow::net
