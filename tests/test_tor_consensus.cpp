#include <gtest/gtest.h>

#include <map>

#include "tor/authority.h"
#include "tor/descriptor.h"
#include "tor/path_selection.h"

namespace flashflow::tor {
namespace {

TEST(Descriptor, AdvertisedBandwidth) {
  ServerDescriptor d;
  d.observed_bits = 100.0;
  d.rate_limit_bits = 60.0;
  EXPECT_DOUBLE_EQ(d.advertised_bits(), 60.0);
  d.rate_limit_bits = 0.0;
  EXPECT_DOUBLE_EQ(d.advertised_bits(), 100.0);
}

TEST(Descriptor, IntervalConstants) {
  EXPECT_EQ(kDescriptorInterval, 18 * sim::kHour);
  EXPECT_EQ(kConsensusInterval, sim::kHour);
}

Consensus make_consensus() {
  Consensus c;
  c.entries = {{"a", 10.0, false}, {"b", 30.0, false}, {"c", 60.0, false}};
  return c;
}

TEST(Consensus, NormalizedWeights) {
  const auto c = make_consensus();
  EXPECT_DOUBLE_EQ(c.total_weight(), 100.0);
  const auto w = c.normalized_weights();
  EXPECT_DOUBLE_EQ(w[0], 0.1);
  EXPECT_DOUBLE_EQ(w[2], 0.6);
}

TEST(Consensus, FindByFingerprint) {
  const auto c = make_consensus();
  EXPECT_EQ(c.find("b"), 1u);
  EXPECT_EQ(c.find("zzz"), Consensus::npos);
}

TEST(BuildConsensus, TakesMedianAcrossBWAuths) {
  BandwidthFile f1 = {{"a", 10.0, 0.0}};
  BandwidthFile f2 = {{"a", 20.0, 0.0}};
  BandwidthFile f3 = {{"a", 90.0, 0.0}};
  const std::vector<BandwidthFile> files = {f1, f2, f3};
  const auto c = build_consensus(0, files);
  ASSERT_EQ(c.entries.size(), 1u);
  EXPECT_DOUBLE_EQ(c.entries[0].weight, 20.0);  // median defeats outliers
}

TEST(BuildConsensus, RequiresMajority) {
  BandwidthFile f1 = {{"a", 10.0, 0.0}, {"b", 5.0, 0.0}};
  BandwidthFile f2 = {{"a", 20.0, 0.0}};
  BandwidthFile f3 = {{"a", 30.0, 0.0}};
  const std::vector<BandwidthFile> files = {f1, f2, f3};
  const auto c = build_consensus(0, files);
  // "b" appears in only 1 of 3 files: excluded.
  EXPECT_EQ(c.find("b"), Consensus::npos);
  EXPECT_NE(c.find("a"), Consensus::npos);
}

TEST(BuildConsensus, MedianCapacity) {
  BandwidthFile f1 = {{"a", 1.0, 100.0}};
  BandwidthFile f2 = {{"a", 1.0, 300.0}};
  const std::vector<BandwidthFile> files = {f1, f2};
  EXPECT_DOUBLE_EQ(median_capacity(files, "a"), 200.0);
  EXPECT_DOUBLE_EQ(median_capacity(files, "nope"), 0.0);
}

TEST(PathSelection, WeightedFrequency) {
  const auto c = make_consensus();
  sim::Rng rng(11);
  std::map<std::size_t, int> counts;
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[select_weighted(c, rng)];
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.6, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.1, 0.02);
}

TEST(PathSelection, PathHasDistinctRelays) {
  const auto c = make_consensus();
  sim::Rng rng(13);
  for (int i = 0; i < 500; ++i) {
    const auto path = select_path(c, rng);
    EXPECT_NE(path[0], path[1]);
    EXPECT_NE(path[1], path[2]);
    EXPECT_NE(path[0], path[2]);
  }
}

TEST(PathSelection, RequiresThreeUsableRelays) {
  Consensus tiny;
  tiny.entries = {{"a", 1.0, false}, {"b", 1.0, false}};
  sim::Rng rng(17);
  EXPECT_THROW(select_path(tiny, rng), std::invalid_argument);

  Consensus zeros;
  zeros.entries = {{"a", 1.0, false}, {"b", 0.0, false}, {"c", 0.0, false},
                   {"d", 1.0, false}};
  EXPECT_THROW(select_path(zeros, rng), std::invalid_argument);
}

}  // namespace
}  // namespace flashflow::tor
