#!/usr/bin/env bash
# Header self-sufficiency check: every header under src/ must compile as
# the *first* include of a translation unit, so no header silently leans
# on what a lucky include order dragged in before it. Run from the repo
# root (the check_headers CMake target does), or pass the repo root as $1.
#
# Exits nonzero listing every failing header with its first compiler error.
set -u

root="${1:-.}"
cxx="${CXX:-c++}"
std="${FLASHFLOW_STD:--std=c++20}"

if [ ! -d "$root/src" ]; then
  echo "check_headers: no src/ under '$root'" >&2
  exit 2
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

fails=0
total=0
while IFS= read -r header; do
  rel="${header#"$root"/src/}"
  total=$((total + 1))
  printf '#include "%s"\n#include "%s"\n' "$rel" "$rel" > "$tmpdir/tu.cpp"
  if ! "$cxx" "$std" -Wall -Wextra -fsyntax-only -I"$root/src" \
      "$tmpdir/tu.cpp" 2> "$tmpdir/err.txt"; then
    echo "FAIL: src/$rel"
    sed -n '1,6p' "$tmpdir/err.txt"
    fails=$((fails + 1))
  fi
done < <(find "$root/src" -name '*.h' | LC_ALL=C sort)

if [ "$fails" -ne 0 ]; then
  echo "check_headers: $fails of $total headers are not self-sufficient" >&2
  exit 1
fi
echo "check_headers: all $total headers compile standalone"
