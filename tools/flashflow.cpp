// flashflow — the scenario-file experiment runner.
//
// Turns a checked-in scenario file (src/scenario/serialize.h; see
// scenarios/ and README "Scenario files & CLI") into results on disk,
// without writing a line of C++:
//
//   flashflow run scenario.yaml --out dir/        stream one experiment
//   flashflow plan scenario.yaml                  schedule-only dry run
//   flashflow validate scenario.yaml [...]        parse + validate files
//   flashflow sweep scenario.yaml --out dir/ \    fan a template over a
//     --seeds 1,2 --liars 0,0.05,0.1              parameter grid
//
// `run` drives the multi-period scenario::Experiment and writes, per
// experiment directory: the normalized scenario (scenario.yaml), the
// streamed per-relay estimates (results.csv + results.jsonl), and the
// final period's Tor bandwidth file (bandwidth.txt). Everything written
// is deterministic in the scenario file alone — byte-identical across
// worker thread counts (the campaign engine's ordering guarantee) — so a
// result directory is a reproducible artifact of its scenario file.
//
// `sweep` expands the grid axes (seeds x liar fractions x forger
// fractions x team sizes) into one cell per combination, runs cells on a
// campaign::ThreadPool (cells force threads=1 internally when --jobs > 1;
// per-cell output is unaffected), and writes one result directory per
// cell named after its coordinates (e.g. seed7_liars0.05/). Cell results
// are byte-identical to `flashflow run` of the same expanded scenario:
// all randomness inside a cell derives from the cell spec's seed through
// the scenario/period_seed domain-separation scheme.
#include <algorithm>
#include <charconv>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "campaign/sink.h"
#include "campaign/thread_pool.h"
#include "net/units.h"
#include "scenario/experiment.h"
#include "scenario/scenario.h"
#include "scenario/serialize.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "util/out_dir.h"
#include "util/result_diff.h"
#include "util/strict_parse.h"

namespace fs = std::filesystem;
using namespace flashflow;

namespace {

int usage(std::ostream& out, int exit_code) {
  out << "usage: flashflow <command> [args]\n"
         "\n"
         "  run <scenario> --out DIR [--threads N] [--seed N] [--force]\n"
         "      [--quiet] [--trace DIR] [--metrics FILE]\n"
         "      Run the scenario's periods; write scenario.yaml,\n"
         "      results.csv, results.jsonl, bandwidth.txt and (with\n"
         "      faults.* enabled) faults.csv into DIR. A non-empty DIR is\n"
         "      refused unless --force is passed. --trace writes a per-\n"
         "      slot execution trace (trace.jsonl) into its own DIR;\n"
         "      --metrics writes the run's engine telemetry (counters,\n"
         "      gauges, stage histograms) as JSON to FILE. Neither\n"
         "      changes a byte of the result files.\n"
         "  plan <scenario>\n"
         "      Schedule-only dry run (no topology): slots, simulated\n"
         "      time, team requirement.\n"
         "  validate <scenario> [<scenario> ...]\n"
         "      Parse + validate every file, reporting all diagnostics;\n"
         "      exit 1 if any file is invalid.\n"
         "  sweep <scenario> --out DIR [--seeds LIST] [--liars LIST]\n"
         "        [--forgers LIST] [--team-sizes LIST] [--jobs N] "
         "[--force]\n"
         "        [--quiet]\n"
         "      Fan the scenario over the grid of the given axes; one\n"
         "      result directory per cell under DIR.\n"
         "  diff <dirA> <dirB> [--quiet]\n"
         "      Compare two result directories (results.csv,\n"
         "      results.jsonl, bandwidth.txt); report the first differing\n"
         "      slot per file and exit 1 when they differ. --quiet\n"
         "      suppresses the identical-directories message.\n"
         "\n"
         "Scenario files: flat YAML subset, one 'key: value' per line —\n"
         "see scenarios/ and README \"Scenario files & CLI\".\n";
  return exit_code;
}

[[noreturn]] void die(const std::string& message) {
  std::cerr << "flashflow: " << message << "\n";
  std::exit(2);
}

/// Shortest round-trip double formatting (matches the serializer), used
/// for sweep cell directory names: 0.05 -> "0.05", never "0.050000".
std::string fmt(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, ptr);
}

/// argv flag scanner: --flag VALUE or --flag=VALUE; strict about values.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  /// Consumes --name VALUE | --name=VALUE; nullopt when absent.
  std::optional<std::string> take(const std::string& name) {
    const std::string flag = "--" + name;
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (args_[i] == flag) {
        if (i + 1 >= args_.size()) die(flag + " needs a value");
        std::string value = args_[i + 1];
        args_.erase(args_.begin() + i, args_.begin() + i + 2);
        return value;
      }
      if (args_[i].rfind(flag + "=", 0) == 0) {
        std::string value = args_[i].substr(flag.size() + 1);
        args_.erase(args_.begin() + i);
        return value;
      }
    }
    return std::nullopt;
  }

  /// Consumes a bare --name switch.
  bool take_switch(const std::string& name) {
    const std::string flag = "--" + name;
    const auto it = std::find(args_.begin(), args_.end(), flag);
    if (it == args_.end()) return false;
    args_.erase(it);
    return true;
  }

  /// Consumes the one expected positional argument (the scenario path).
  std::string take_positional(const char* what) {
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (args_[i].rfind("--", 0) == 0) continue;
      std::string value = args_[i];
      args_.erase(args_.begin() + i);
      return value;
    }
    die(std::string("missing ") + what);
  }

  std::vector<std::string> take_all_positionals() {
    std::vector<std::string> out;
    for (const auto& a : args_)
      if (a.rfind("--", 0) != 0) out.push_back(a);
    args_.erase(std::remove_if(args_.begin(), args_.end(),
                               [](const std::string& a) {
                                 return a.rfind("--", 0) != 0;
                               }),
                args_.end());
    return out;
  }

  /// Anything left over is a typo; never run a half-understood command.
  void reject_leftovers() const {
    if (!args_.empty())
      die("unknown argument '" + args_.front() + "' (try flashflow --help)");
  }

 private:
  std::vector<std::string> args_;
};

std::vector<double> parse_double_list(const std::string& text,
                                      const std::string& flag) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = std::min(text.find(',', pos), text.size());
    out.push_back(
        util::parse_double(text.substr(pos, comma - pos), flag));
    pos = comma + 1;
  }
  return out;
}

std::vector<std::uint64_t> parse_u64_list(const std::string& text,
                                          const std::string& flag) {
  std::vector<std::uint64_t> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = std::min(text.find(',', pos), text.size());
    out.push_back(util::parse_u64(text.substr(pos, comma - pos), flag));
    pos = comma + 1;
  }
  return out;
}

/// Streams one slot delivery to every attached sink (CSV + JSONL files).
class FanoutSink : public campaign::SlotSink {
 public:
  void attach(campaign::SlotSink* sink) { sinks_.push_back(sink); }

  void begin(const campaign::RunPlan& plan) override {
    for (auto* sink : sinks_) sink->begin(plan);
  }
  void slot_done(const campaign::SlotResult& slot) override {
    for (auto* sink : sinks_) sink->slot_done(slot);
  }
  bool on_progress(int done, int total) override {
    bool keep = true;
    for (auto* sink : sinks_) keep = sink->on_progress(done, total) && keep;
    return keep;
  }

 private:
  std::vector<campaign::SlotSink*> sinks_;
};

/// Runs one scenario into `dir` (created if needed): normalized
/// scenario.yaml, streamed results.csv/results.jsonl, final-period
/// bandwidth.txt. Returns the experiment result for reporting.
scenario::Experiment::Result run_into_dir(
    const scenario::ScenarioSpec& spec, const fs::path& dir, bool quiet,
    telemetry::Recorder* recorder = nullptr,
    const std::string* trace_dir = nullptr) {
  fs::create_directories(dir);

  // The normalized spec first: the directory documents what produced it
  // even if the run is interrupted.
  {
    std::ofstream spec_out(dir / "scenario.yaml");
    if (!spec_out) die("cannot write " + (dir / "scenario.yaml").string());
    spec_out << scenario::serialize_scenario(spec);
  }

  std::ofstream csv_out(dir / "results.csv");
  std::ofstream jsonl_out(dir / "results.jsonl");
  if (!csv_out || !jsonl_out)
    die("cannot write results under " + dir.string());
  campaign::CsvSink csv(csv_out);
  campaign::JsonlSink jsonl(jsonl_out);
  FanoutSink fanout;
  fanout.attach(&csv);
  fanout.attach(&jsonl);

  // The fault ledger exists only for fault-armed scenarios, so fault-free
  // result directories keep their exact pre-fault file set.
  std::ofstream faults_out;
  std::optional<campaign::FaultLedgerSink> faults;
  if (spec.faults.enabled()) {
    faults_out.open(dir / "faults.csv");
    if (!faults_out) die("cannot write " + (dir / "faults.csv").string());
    faults.emplace(faults_out);
    fanout.attach(&*faults);
  }

  // The slot trace lives in its own directory so result directories stay
  // byte-comparable with `flashflow diff` (trace rows carry wall-clock
  // and lane fields that legitimately differ between runs).
  std::ofstream trace_out;
  std::optional<telemetry::TraceJsonlSink> trace;
  if (recorder && recorder->trace_enabled() && trace_dir) {
    fs::create_directories(*trace_dir);
    trace_out.open(fs::path(*trace_dir) / "trace.jsonl");
    if (!trace_out)
      die("cannot write " + (fs::path(*trace_dir) / "trace.jsonl").string());
    trace.emplace(trace_out);
    fanout.attach(&*trace);
  }

  scenario::Experiment experiment(spec);
  if (recorder) experiment.set_telemetry(recorder);
  const auto result = experiment.run(
      &fanout, [&](const scenario::Experiment::PeriodRecord& record,
                   const campaign::CampaignResult&) {
        if (quiet) return;
        std::cout << "  period " << record.period << ": "
                  << record.summary.relays_measured << " relays in "
                  << record.stats.slots_executed << " slots, total "
                  << net::to_gbit(record.summary.total_estimated_bits)
                  << " Gbit/s est (true "
                  << net::to_gbit(record.summary.total_true_bits)
                  << "), median |err| "
                  << record.summary.median_abs_relative_error * 100
                  << "%\n";
      });

  if (!result.cancelled && !result.periods.empty()) {
    std::ofstream bw_out(dir / "bandwidth.txt");
    bw_out << experiment.bandwidth_file_text(
        static_cast<int>(result.periods.size()) - 1, result.final_period);
  }
  return result;
}

// ---------------------------------------------------------------- commands ---

int cmd_run(Flags& flags) {
  const std::string path = flags.take_positional("scenario file");
  const auto out = flags.take("out");
  if (!out) die("run needs --out DIR");
  const auto threads = flags.take("threads");
  const auto seed = flags.take("seed");
  const auto trace_dir = flags.take("trace");
  const auto metrics_path = flags.take("metrics");
  const bool force = flags.take_switch("force");
  const bool quiet = flags.take_switch("quiet");
  flags.reject_leftovers();
  util::require_empty_dir(*out, force);

  scenario::ScenarioSpec spec = scenario::load_scenario_file(path);
  if (threads)
    spec.threads = util::parse_int(*threads, "flag '--threads'");
  if (seed) spec.seed = util::parse_u64(*seed, "flag '--seed'");

  // Telemetry is strictly additive: the recorder observes the run (and
  // --trace additionally attaches per-slot trace rows) without changing a
  // byte of the result files.
  std::optional<telemetry::Recorder> recorder;
  if (trace_dir || metrics_path) {
    recorder.emplace();
    if (trace_dir) recorder->enable_trace();
  }

  if (!quiet)
    std::cout << "running '" << spec.name << "' (" << spec.periods
              << " period" << (spec.periods == 1 ? "" : "s") << ") -> "
              << *out << "\n";
  const auto result =
      run_into_dir(spec, *out, quiet, recorder ? &*recorder : nullptr,
                   trace_dir ? &*trace_dir : nullptr);
  if (metrics_path) {
    std::ofstream metrics_out(*metrics_path);
    if (!metrics_out) die("cannot write " + *metrics_path);
    recorder->write_metrics(metrics_out);
  }
  if (result.cancelled) {
    std::cerr << "flashflow: run cancelled mid-experiment\n";
    return 1;
  }
  if (!quiet) std::cout << "wrote " << *out << "\n";
  return 0;
}

int cmd_plan(Flags& flags) {
  const std::string path = flags.take_positional("scenario file");
  flags.reject_leftovers();

  const scenario::ScenarioSpec spec = scenario::load_scenario_file(path);
  const scenario::Scenario scenario(spec);
  const auto plan = scenario.plan();
  std::cout << "scenario '" << spec.name << "':\n"
            << "  relays               : " << plan.relays << "\n"
            << "  total prior          : "
            << net::to_gbit(plan.total_prior_bits) << " Gbit/s\n"
            << "  team capacity        : "
            << net::to_gbit(plan.team_capacity_bits) << " Gbit/s\n"
            << "  requirement (f * z0) : "
            << net::to_gbit(plan.total_requirement_bits) << " Gbit/s\n"
            << "  slots in period      : " << plan.slots_in_period << "\n"
            << "  slots used           : " << plan.slots_used << "\n"
            << "  simulated time       : " << plan.simulated_seconds / 3600.0
            << " h (" << plan.simulated_seconds << " s)\n";
  return 0;
}

int cmd_validate(Flags& flags) {
  const std::vector<std::string> paths = flags.take_all_positionals();
  flags.reject_leftovers();
  if (paths.empty()) die("validate needs at least one scenario file");

  // Every file is checked regardless of earlier failures: one run
  // surfaces every diagnostic, and the exit code says whether any failed.
  int failures = 0;
  for (const auto& check : scenario::check_scenario_files(paths)) {
    if (check.ok) {
      std::cout << check.path << ": ok (scenario '" << check.name << "')\n";
    } else {
      std::cerr << check.detail << "\n";
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

/// One sweep cell: the expanded spec and its directory name, built from
/// the swept coordinates only (un-swept axes keep the template's values
/// and stay out of the name).
struct SweepCell {
  scenario::ScenarioSpec spec;
  std::string label;
};

int cmd_sweep(Flags& flags) {
  const std::string path = flags.take_positional("scenario file");
  const auto out = flags.take("out");
  if (!out) die("sweep needs --out DIR");
  const auto seeds_arg = flags.take("seeds");
  const auto liars_arg = flags.take("liars");
  const auto forgers_arg = flags.take("forgers");
  const auto teams_arg = flags.take("team-sizes");
  const auto jobs_arg = flags.take("jobs");
  const bool force = flags.take_switch("force");
  const bool quiet = flags.take_switch("quiet");
  flags.reject_leftovers();
  util::require_empty_dir(*out, force);

  const scenario::ScenarioSpec base = scenario::load_scenario_file(path);
  const int jobs =
      jobs_arg ? util::parse_int(*jobs_arg, "flag '--jobs'") : 1;
  if (jobs < 1 || jobs > 4096) die("--jobs needs an integer in [1, 4096]");

  // Absent axes collapse to the template's own value — the grid is always
  // the full cross product of what was asked for.
  const std::vector<std::uint64_t> seeds =
      seeds_arg ? parse_u64_list(*seeds_arg, "flag '--seeds'")
                : std::vector<std::uint64_t>{base.seed};
  const std::vector<double> liars =
      liars_arg ? parse_double_list(*liars_arg, "flag '--liars'")
                : std::vector<double>{base.adversaries.liar_fraction};
  const std::vector<double> forgers =
      forgers_arg ? parse_double_list(*forgers_arg, "flag '--forgers'")
                  : std::vector<double>{base.adversaries.forger_fraction};
  std::vector<int> team_sizes;
  if (teams_arg) {
    if (base.team.capacity_bits.empty())
      die("--team-sizes needs team capacity overrides in the template "
          "(the size axis replicates the first override)");
    for (const std::uint64_t n :
         parse_u64_list(*teams_arg, "flag '--team-sizes'")) {
      if (n < 1 || n > 4096)
        die("--team-sizes entries must be in [1, 4096]");
      team_sizes.push_back(static_cast<int>(n));
    }
  }

  std::vector<SweepCell> cells;
  for (const std::uint64_t seed : seeds) {
    for (const double liar : liars) {
      for (const double forger : forgers) {
        for (std::size_t t = 0; t < std::max<std::size_t>(
                                        1, team_sizes.size());
             ++t) {
          SweepCell cell;
          cell.spec = base;
          cell.spec.seed = seed;
          cell.spec.adversaries.liar_fraction = liar;
          cell.spec.adversaries.forger_fraction = forger;
          if (!team_sizes.empty()) {
            cell.spec.team.capacity_bits.assign(
                static_cast<std::size_t>(team_sizes[t]),
                base.team.capacity_bits.front());
          }
          if (seeds_arg) cell.label += "seed" + std::to_string(seed);
          if (liars_arg)
            cell.label += (cell.label.empty() ? "" : "_") + std::string(
                              "liars") + fmt(liar);
          if (forgers_arg)
            cell.label += (cell.label.empty() ? "" : "_") + std::string(
                              "forgers") + fmt(forger);
          if (!team_sizes.empty())
            cell.label += (cell.label.empty() ? "" : "_") + std::string(
                              "team") + std::to_string(team_sizes[t]);
          if (cell.label.empty()) cell.label = "cell";
          // Each cell validates up front so a bad grid value (liars 1.5)
          // fails before any cell has run.
          cell.spec.validate();
          cells.push_back(std::move(cell));
        }
      }
    }
  }

  if (!quiet)
    std::cout << "sweeping '" << base.name << "' over " << cells.size()
              << " cell" << (cells.size() == 1 ? "" : "s") << " ("
              << jobs << " job" << (jobs == 1 ? "" : "s") << ") -> "
              << *out << "\n";

  // Cells parallelize across the pool; inside a cell the campaign runs
  // single-threaded when jobs > 1 so a sweep never oversubscribes the
  // machine. Per-cell bytes are identical either way (the engine's
  // thread-count-independence guarantee).
  if (jobs > 1)
    for (auto& cell : cells) cell.spec.threads = 1;

  campaign::ThreadPool pool(jobs);
  pool.parallel_for(cells.size(), /*shard_size=*/1,
                    [&](std::size_t, std::size_t i) {
                      run_into_dir(cells[i].spec, fs::path(*out) /
                                                     cells[i].label,
                                   /*quiet=*/true);
                    });

  for (const auto& cell : cells)
    if (!quiet) std::cout << "  " << cell.label << "/\n";
  if (!quiet)
    std::cout << "wrote " << cells.size() << " result director"
              << (cells.size() == 1 ? "y" : "ies") << " under " << *out
              << "\n";
  return 0;
}

int cmd_diff(Flags& flags) {
  const std::string dir_a = flags.take_positional("first result directory");
  const std::string dir_b = flags.take_positional("second result directory");
  const bool quiet = flags.take_switch("quiet");
  flags.reject_leftovers();

  const auto result = util::diff_result_dirs(dir_a, dir_b);
  if (result.identical) {
    if (!quiet) std::cout << dir_a << " and " << dir_b << " are identical\n";
    return 0;
  }
  for (const auto& diff : result.differences)
    std::cerr << diff.file << ": " << diff.message << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(std::cerr, 2);
  const std::string command = argv[1];
  if (command == "--help" || command == "-h" || command == "help")
    return usage(std::cout, 0);

  Flags flags(argc, argv, 2);
  try {
    if (command == "run") return cmd_run(flags);
    if (command == "plan") return cmd_plan(flags);
    if (command == "validate") return cmd_validate(flags);
    if (command == "sweep") return cmd_sweep(flags);
    if (command == "diff") return cmd_diff(flags);
  } catch (const std::exception& e) {
    std::cerr << "flashflow: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "flashflow: unknown command '" << command
            << "' (try --help)\n";
  return 2;
}
