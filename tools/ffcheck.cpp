// ffcheck — FlashFlow's determinism & hot-path static-analysis pass.
//
// Usage:
//   ffcheck [--rules] [--quiet] PATH...
//
// Each PATH is a file or a directory walked recursively for C++ sources
// (.h/.hpp/.cpp/.cc); build trees (build*/, _deps/) and VCS metadata are
// skipped. Findings print as `file:line: RULE: message` and any finding —
// including an unused or malformed FFCHECK suppression — makes the exit
// status 1, so the CI lint job and the self-lint ctest entry gate on a
// clean repo. Exit 2 means a usage or I/O error.
//
// See src/lint/rules.h for the rule families and README.md ("Static
// analysis") for the suppression and FF_HOT annotation contracts.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/ffcheck.h"

namespace fs = std::filesystem;

namespace {

bool cpp_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

bool skip_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == ".git" || name == "_deps" ||
         name.rfind("build", 0) == 0;  // build, build-asan, ...
}

// Collects the files to scan under one CLI path argument, sorted so the
// report order (and therefore CI log diffs) is stable.
bool collect(const std::string& arg, std::vector<std::string>& files) {
  std::error_code ec;
  const fs::path root(arg);
  if (fs::is_regular_file(root, ec)) {
    files.push_back(arg);
    return true;
  }
  if (!fs::is_directory(root, ec)) {
    std::cerr << "ffcheck: no such file or directory: " << arg << "\n";
    return false;
  }
  fs::recursive_directory_iterator it(root, ec);
  const fs::recursive_directory_iterator end;
  if (ec) {
    std::cerr << "ffcheck: cannot walk " << arg << ": " << ec.message()
              << "\n";
    return false;
  }
  for (; it != end; it.increment(ec)) {
    if (ec) {
      std::cerr << "ffcheck: walk error under " << arg << ": "
                << ec.message() << "\n";
      return false;
    }
    if (it->is_directory() && skip_dir(it->path())) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && cpp_source(it->path()))
      files.push_back(it->path().generic_string());
  }
  return true;
}

int usage() {
  std::cerr << "usage: ffcheck [--rules] [--quiet] PATH...\n"
               "  --rules  list every rule id with a one-line summary\n"
               "  --quiet  suppress the summary line on success\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool quiet = false;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rules") {
      for (const auto& rule : flashflow::lint::all_rules())
        std::cout << rule.id << "  " << rule.summary << "\n";
      return 0;
    }
    if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "ffcheck: unknown flag " << arg << "\n";
      return usage();
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) return usage();

  std::vector<std::string> files;
  for (const std::string& root : roots)
    if (!collect(root, files)) return 2;
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::size_t findings = 0;
  std::size_t dirty_files = 0;
  for (const std::string& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "ffcheck: cannot read " << path << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const auto report = flashflow::lint::analyze_source(path, buf.str());
    if (!report.diagnostics.empty()) {
      std::cout << flashflow::lint::format_report(report);
      findings += report.diagnostics.size();
      ++dirty_files;
    }
  }
  if (findings > 0) {
    std::cerr << "ffcheck: " << findings << " finding"
              << (findings == 1 ? "" : "s") << " in " << dirty_files
              << " of " << files.size() << " files\n";
    return 1;
  }
  if (!quiet)
    std::cerr << "ffcheck: clean (" << files.size() << " files)\n";
  return 0;
}
