#include "tor/path_selection.h"

#include <stdexcept>
#include <vector>

namespace flashflow::tor {

std::size_t select_weighted(const Consensus& consensus, sim::Rng& rng) {
  std::vector<double> weights;
  weights.reserve(consensus.entries.size());
  for (const auto& e : consensus.entries) weights.push_back(e.weight);
  return rng.weighted_index(weights);
}

std::array<std::size_t, 3> select_path(const Consensus& consensus,
                                       sim::Rng& rng) {
  std::vector<double> weights;
  weights.reserve(consensus.entries.size());
  std::size_t positive = 0;
  for (const auto& e : consensus.entries) {
    weights.push_back(e.weight);
    if (e.weight > 0.0) ++positive;
  }
  if (positive < 3)
    throw std::invalid_argument("select_path: fewer than 3 usable relays");

  std::array<std::size_t, 3> path{};
  for (std::size_t hop = 0; hop < 3; ++hop) {
    const std::size_t pick = rng.weighted_index(weights);
    path[hop] = pick;
    weights[pick] = 0.0;  // without replacement
  }
  return path;
}

}  // namespace flashflow::tor
