// Tor bandwidth-file format (dir-spec / bandwidth-file-spec v1.x).
//
// BWAuths hand their results to the DirAuths as "bandwidth files": a
// timestamp header, `key=value` header lines, then one relay per line of
// space-separated key=value pairs. FlashFlow writes `bw=` (consensus weight
// units, kilobytes/s) plus its capacity estimate; this module serializes
// and parses that format so a deployment can interoperate with Tor's
// existing tooling.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "tor/authority.h"

namespace flashflow::tor {

struct BandwidthFileHeader {
  std::int64_t timestamp = 0;      // seconds since epoch (or sim start)
  std::string version = "1.4.0";
  std::string software = "flashflow";
  std::string software_version = "1.0";
};

/// Serializes a bandwidth file. Weights are emitted as `bw=` in KB/s
/// (rounded, minimum 1); capacities (when non-zero) as
/// `flashflow_capacity_mbits=`.
std::string serialize_bandwidth_file(const BandwidthFileHeader& header,
                                     const BandwidthFile& entries);

/// Parses the serialized form back. Throws std::invalid_argument on
/// malformed input (bad header, missing bw=, negative values).
struct ParsedBandwidthFile {
  BandwidthFileHeader header;
  BandwidthFile entries;
};
ParsedBandwidthFile parse_bandwidth_file(const std::string& text);

/// Builds FlashFlow-style entries — weight == capacity (Table 2: FlashFlow
/// publishes true capacity values) — from parallel fingerprint/capacity
/// spans. Relays with a non-positive capacity (e.g. failed verification)
/// are omitted, matching a BWAuth that refuses to vouch for them. Throws
/// std::invalid_argument on length mismatch.
BandwidthFile make_flashflow_entries(std::span<const std::string> fingerprints,
                                     std::span<const double> capacity_bits);

}  // namespace flashflow::tor
