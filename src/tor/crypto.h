// Lightweight cell cryptography.
//
// Real Tor uses AES-CTR per onion layer plus TLS on each connection. For
// this reproduction the cipher only needs to (a) actually transform bytes so
// the measurement-verification code path is real, and (b) be cheap and
// deterministic. We use a per-cell xoshiro keystream XOR keyed by
// (layer key, cell counter) — the counter plays the role of the CTR-mode
// block counter, keeping both endpoints synchronized without shared state.
//
// A keyed digest (FNV-1a over key || data) stands in for Tor's relay-cell
// digest; it is NOT cryptographically secure and must never be used outside
// simulation.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace flashflow::tor {

/// Symmetric per-cell stream cipher. apply() both encrypts and decrypts.
class CellCipher {
 public:
  explicit CellCipher(std::uint64_t key) : key_(key) {}

  /// XORs `data` with the keystream for cell number `cell_counter`.
  void apply(std::uint64_t cell_counter, std::span<std::uint8_t> data) const;

  std::uint64_t key() const { return key_; }

 private:
  std::uint64_t key_;
};

/// Derives a sub-key from a master secret and a label (simulation KDF).
std::uint64_t derive_key(std::uint64_t master_secret, std::string_view label);

/// Keyed digest of a byte span (FNV-1a over key || data).
std::uint64_t keyed_digest(std::uint64_t key,
                           std::span<const std::uint8_t> data);

/// Simulated Diffie-Hellman-style handshake: both sides derive the same
/// circuit key from their secrets. Deterministic and symmetric.
std::uint64_t handshake(std::uint64_t secret_a, std::uint64_t secret_b);

}  // namespace flashflow::tor
