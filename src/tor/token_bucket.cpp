#include "tor/token_bucket.h"

#include <algorithm>
#include <stdexcept>

namespace flashflow::tor {

TokenBucket::TokenBucket(double rate_bytes_per_sec, double burst_bytes)
    : rate_(rate_bytes_per_sec), burst_(burst_bytes), tokens_(burst_bytes) {
  if (rate_ < 0.0 || burst_ < 0.0)
    throw std::invalid_argument("TokenBucket: negative rate or burst");
}

void TokenBucket::refill(double seconds) {
  if (seconds < 0.0) throw std::invalid_argument("TokenBucket: negative time");
  tokens_ = std::min(burst_, tokens_ + rate_ * seconds);
}

double TokenBucket::take(double want_bytes) {
  if (want_bytes < 0.0)
    throw std::invalid_argument("TokenBucket: negative take");
  const double granted = std::min(tokens_, want_bytes);
  tokens_ -= granted;
  return granted;
}

}  // namespace flashflow::tor
