#include "tor/crypto.h"

#include "sim/random.h"

namespace flashflow::tor {

void CellCipher::apply(std::uint64_t cell_counter,
                       std::span<std::uint8_t> data) const {
  // Keystream seeded by (key, counter); 8 bytes per draw.
  std::uint64_t seed = key_ ^ (cell_counter * 0x9E3779B97F4A7C15ULL);
  std::uint64_t word = 0;
  int remaining = 0;
  for (std::uint8_t& byte : data) {
    if (remaining == 0) {
      word = sim::splitmix64(seed);
      remaining = 8;
    }
    byte ^= static_cast<std::uint8_t>(word & 0xFF);
    word >>= 8;
    --remaining;
  }
}

std::uint64_t derive_key(std::uint64_t master_secret, std::string_view label) {
  std::uint64_t state = master_secret ^ sim::hash_tag(label);
  return sim::splitmix64(state);
}

std::uint64_t keyed_digest(std::uint64_t key,
                           std::span<const std::uint8_t> data) {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ key;
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t handshake(std::uint64_t secret_a, std::uint64_t secret_b) {
  // Commutative combination so both sides compute the same key.
  std::uint64_t state = (secret_a ^ secret_b) + (secret_a + secret_b);
  return sim::splitmix64(state);
}

}  // namespace flashflow::tor
