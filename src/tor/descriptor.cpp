#include "tor/descriptor.h"

#include <numeric>
#include <stdexcept>

#include "tor/observed_bandwidth.h"

namespace flashflow::tor {

double ServerDescriptor::advertised_bits() const {
  return advertised_bandwidth(observed_bits, rate_limit_bits);
}

double Consensus::total_weight() const {
  double total = 0.0;
  for (const auto& e : entries) total += e.weight;
  return total;
}

std::vector<double> Consensus::normalized_weights() const {
  const double total = total_weight();
  if (total <= 0.0)
    throw std::logic_error("Consensus::normalized_weights: zero total");
  std::vector<double> out;
  out.reserve(entries.size());
  for (const auto& e : entries) out.push_back(e.weight / total);
  return out;
}

std::size_t Consensus::find(const std::string& fingerprint) const {
  for (std::size_t i = 0; i < entries.size(); ++i)
    if (entries[i].fingerprint == fingerprint) return i;
  return npos;
}

}  // namespace flashflow::tor
