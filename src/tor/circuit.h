// Cell-level measurement circuits (the §4.1 protocol, with real bytes).
//
// A FlashFlow measurement circuit is created over one TLS connection with a
// new circuit-creation cell; a key is exchanged but the circuit is never
// extended. Measurement cells carry random bytes; the target decrypts each
// with the circuit key and returns it. The measurer records sent contents
// with probability p_check and verifies returned cells, so a relay that
// skips decryption or forges responses early is detected with overwhelming
// probability (§5).
//
// Throughput experiments use the fluid model; this layer exists so that the
// measurement/verification *logic* is real and testable byte-for-byte.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "sim/random.h"
#include "tor/cell.h"
#include "tor/crypto.h"

namespace flashflow::tor {

/// Tor flow-control window sizes (cells); measurement circuits bypass these
/// via the separate scheduler but they bound normal circuits in shadowsim.
inline constexpr int kCircuitWindowCells = 1000;
inline constexpr int kStreamWindowCells = 500;

/// Relay-side endpoint of a measurement circuit.
class MeasurementTarget {
 public:
  /// What the relay does with measurement cells. The non-honest modes model
  /// the §5 adversary: kSkipDecryption echoes bytes without decrypting (to
  /// save CPU); kForgeEarly fabricates response cells without waiting for
  /// (or reading) the real ones.
  enum class Behavior { kHonest, kSkipDecryption, kForgeEarly };

  MeasurementTarget(std::uint64_t circuit_key, Behavior behavior,
                    std::uint64_t forge_seed = 1);

  /// Processes an incoming measurement cell and returns the echo cell.
  Cell handle(const Cell& incoming);

  std::uint64_t cells_handled() const { return recv_counter_; }

 private:
  CellCipher forward_;
  CellCipher backward_;
  Behavior behavior_;
  std::uint64_t recv_counter_ = 0;
  std::uint64_t send_counter_ = 0;
  sim::Rng forge_rng_;
};

/// Measurer-side endpoint: generates measurement cells and verifies echoes.
class MeasurementSender {
 public:
  MeasurementSender(std::uint64_t circuit_key, double check_probability,
                    sim::Rng rng);

  /// Produces the next measurement cell (random payload, onion-encrypted).
  /// Records the plaintext with probability p_check.
  Cell next_cell(std::uint32_t circuit_id);

  /// Verifies an echoed cell; returns false (and counts a failure) when a
  /// recorded cell comes back with the wrong contents.
  bool check_echo(const Cell& echo);

  std::uint64_t cells_sent() const { return send_counter_; }
  std::uint64_t cells_checked() const { return checked_; }
  std::uint64_t failures() const { return failures_; }

 private:
  CellCipher forward_;
  CellCipher backward_;
  double check_probability_;
  sim::Rng rng_;
  std::uint64_t send_counter_ = 0;
  std::uint64_t recv_counter_ = 0;
  std::uint64_t checked_ = 0;
  std::uint64_t failures_ = 0;
  // Recorded plaintexts by cell index (sparse: only ~p_check of cells).
  // FFCHECK(ND06): keyed lookups by echo index only (find/erase in
  // circuit.cpp); never iterated, so hash order cannot reach verification.
  std::unordered_map<std::uint64_t,
                     std::array<std::uint8_t, kCellPayloadSize>>
      recorded_;
};

}  // namespace flashflow::tor
