// Server descriptors and network consensus documents.
//
// Relays publish a server descriptor every 18 hours containing their
// observed bandwidth and any configured rate limit; the *advertised*
// bandwidth is the minimum of the two. The Directory Authorities publish an
// hourly consensus listing the relays and their load-balancing weights.
#pragma once

#include <string>
#include <vector>

#include "sim/time.h"

namespace flashflow::tor {

/// Tor publishes server descriptors every 18 hours.
inline constexpr sim::SimDuration kDescriptorInterval = 18 * sim::kHour;
/// A new consensus is produced every hour.
inline constexpr sim::SimDuration kConsensusInterval = sim::kHour;

struct ServerDescriptor {
  std::string fingerprint;
  double observed_bits = 0.0;    // self-measured observed bandwidth
  double rate_limit_bits = 0.0;  // operator limit; <= 0 means unlimited
  sim::SimTime published = 0;

  /// Advertised bandwidth: min(observed, rate limit).
  double advertised_bits() const;
};

struct ConsensusEntry {
  std::string fingerprint;
  double weight = 0.0;  // consensus weight (unitless, relative)
  bool is_new = false;  // first appearance within the last month
};

struct Consensus {
  sim::SimTime valid_after = 0;
  std::vector<ConsensusEntry> entries;

  double total_weight() const;
  /// Normalized weight vector aligned with `entries`; requires a positive
  /// total weight.
  std::vector<double> normalized_weights() const;
  /// Index of a fingerprint in `entries`, or npos.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t find(const std::string& fingerprint) const;
};

}  // namespace flashflow::tor
