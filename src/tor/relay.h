// Fluid model of a Tor relay as a measurement target.
//
// A relay's instantaneous forwarding capacity composes:
//   - NIC up/down limits of its host,
//   - the single-threaded CPU limit with per-socket overhead (cpu_model.h),
//   - any operator token-bucket limit (RelayBandwidthRate/Burst), including
//     Tor's one-second refill burst at measurement start (Fig 7's spike),
//   - the scheduler in use (KIST cap for normal traffic; uncapped for
//     measurement circuits),
//   - a stochastic per-second noise process standing in for cross traffic
//     and shared-host contention (drives the accuracy spread in Fig 6).
//
// During a FlashFlow measurement the relay enforces the ratio r between
// normal (background) traffic and total traffic (§4.1): it forwards as much
// background as possible subject to y <= r * (x + y).
#pragma once

#include <limits>
#include <span>
#include <string>

#include "sim/random.h"
#include "tor/cpu_model.h"
#include "tor/scheduler.h"

namespace flashflow::tor {

/// Per-second multiplicative throughput noise: a small Gaussian wobble plus
/// occasional multi-second congestion episodes (bursty cross traffic).
class RelayNoise {
 public:
  struct Params {
    double gauss_sigma = 0.012;        // per-second wobble
    double episode_rate_per_s = 0.010; // Poisson arrival of congestion dips
    double episode_mean_duration_s = 8.0;
    double episode_depth_min = 0.86;   // episode multiplies capacity by
    double episode_depth_max = 0.98;   //   U(min, max)
    double max_factor = 1.04;          // relays can run slightly "hot"
  };

  RelayNoise(Params params, sim::Rng rng);
  /// Noise factor for the next second (advances the process).
  double next_factor();
  /// Factors for the next out.size() seconds — the identical sequence
  /// next_factor() would return call by call (same draws, same order),
  /// batched so a slot's whole noise series is generated in one pass at
  /// slot setup instead of one transcendental-bearing call per simulated
  /// second inside the hot loop.
  void fill_factors(std::span<double> out);

 private:
  Params params_;
  sim::Rng rng_;
  double episode_seconds_left_ = 0.0;
  double episode_depth_ = 1.0;
};

struct RelayModel {
  std::string name = "relay";
  double nic_up_bits = std::numeric_limits<double>::infinity();
  double nic_down_bits = std::numeric_limits<double>::infinity();
  /// Operator rate limit on Tor throughput; <= 0 means unlimited.
  double rate_limit_bits = 0.0;
  /// Token-bucket depth in seconds-at-rate: the first second of a
  /// measurement can spend the accumulated bucket on top of the refill
  /// (the spike at measurement start in Fig 7).
  double burst_seconds = 0.25;
  CpuModel cpu;
  SchedulerModel sched;
  /// Max fraction r of total traffic that may be normal traffic during a
  /// measurement (§4.1); the paper recommends 0.25.
  double ratio_r = 0.25;
  /// Offered background (client) traffic demand, bits/s.
  double background_demand_bits = 0.0;

  /// Deterministic forwarding capacity with the measurement scheduler and
  /// `sockets` busy sockets, before noise and token-bucket burst:
  /// min(NICs, CPU(n), rate limit). This is the quantity the paper calls
  /// "Tor ground truth" when probed by saturating clients.
  double measurement_capacity(int sockets) const;

  /// Deterministic capacity under the normal KIST scheduler (Fig 11 "Sockets"
  /// curve): additionally capped by the per-socket KIST limit.
  double normal_capacity(int sockets) const;

  /// Tor ground truth of a rate-limited relay: the token bucket's refill
  /// quantization and cell framing shave a little off the configured limit
  /// (§E.2 measured 9.58/239/494/741 against limits of 10/250/500/750).
  double ground_truth(int sockets) const;
};

/// One second of relay forwarding during a measurement slot.
struct RelaySecond {
  double measurement_bits = 0;  // x_j: measurement traffic forwarded
  double background_bits = 0;   // y_j: normal traffic forwarded
};

/// Splits the relay's noisy per-second capacity between measurement traffic
/// and background traffic under the ratio-r rule. `offered_measurement_bits`
/// is what the team can deliver this second; `capacity_bits` the relay's
/// total forwarding capacity this second (already noise-scaled).
RelaySecond split_measurement_second(const RelayModel& relay,
                                     double capacity_bits,
                                     double offered_measurement_bits);

}  // namespace flashflow::tor
