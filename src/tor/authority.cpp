#include "tor/authority.h"

#include <algorithm>
#include <map>

#include "metrics/stats.h"

namespace flashflow::tor {

Consensus build_consensus(sim::SimTime valid_after,
                          std::span<const BandwidthFile> files) {
  // fingerprint -> weights reported by each BWAuth.
  std::map<std::string, std::vector<double>> weights;
  for (const auto& file : files)
    for (const auto& entry : file)
      weights[entry.fingerprint].push_back(entry.weight);

  const std::size_t majority = files.size() / 2 + 1;
  Consensus consensus;
  consensus.valid_after = valid_after;
  for (const auto& [fingerprint, values] : weights) {
    if (values.size() < majority) continue;
    ConsensusEntry entry;
    entry.fingerprint = fingerprint;
    entry.weight = metrics::median({values.data(), values.size()});
    consensus.entries.push_back(std::move(entry));
  }
  return consensus;
}

double median_capacity(std::span<const BandwidthFile> files,
                       const std::string& fingerprint) {
  std::vector<double> values;
  for (const auto& file : files)
    for (const auto& entry : file)
      if (entry.fingerprint == fingerprint && entry.capacity_bits > 0.0)
        values.push_back(entry.capacity_bits);
  if (values.empty()) return 0.0;
  return metrics::median({values.data(), values.size()});
}

}  // namespace flashflow::tor
