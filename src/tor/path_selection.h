// Weighted relay selection for client circuits.
//
// Clients choose relays with probability proportional to their normalized
// consensus weights (§2 "Load Balancing"). Paths use three distinct relays.
#pragma once

#include <array>
#include <cstddef>

#include "sim/random.h"
#include "tor/descriptor.h"

namespace flashflow::tor {

/// Picks one relay index proportional to consensus weight.
std::size_t select_weighted(const Consensus& consensus, sim::Rng& rng);

/// Picks three distinct relay indices (guard, middle, exit) proportional to
/// weight, without replacement. Requires >= 3 positively weighted entries.
std::array<std::size_t, 3> select_path(const Consensus& consensus,
                                       sim::Rng& rng);

}  // namespace flashflow::tor
