#include "tor/observed_bandwidth.h"

#include <algorithm>

namespace flashflow::tor {

ObservedBandwidth::ObservedBandwidth(std::size_t window_samples,
                                     std::size_t history_samples)
    : window_max_(window_samples, history_samples) {}

ObservedBandwidth ObservedBandwidth::tor_live() {
  return ObservedBandwidth(10, 5 * 24 * 60 * 60);
}

ObservedBandwidth ObservedBandwidth::archive_hourly() {
  return ObservedBandwidth(1, 5 * 24);
}

void ObservedBandwidth::record(double throughput_bits) {
  window_max_.push(throughput_bits);
}

double ObservedBandwidth::observed_bits() const { return window_max_.max(); }

double advertised_bandwidth(double observed_bits, double rate_limit_bits) {
  if (rate_limit_bits <= 0.0) return observed_bits;
  return std::min(observed_bits, rate_limit_bits);
}

}  // namespace flashflow::tor
