// Tor relay CPU forwarding model.
//
// Tor runs all cell scheduling on one thread, so a relay's forwarding
// capacity is CPU-bound: the paper measured 1.25 Gbit/s peak on lab hardware
// (Appendix C), with 100% of one core consumed from 13 sockets up. Managing
// more sockets costs bookkeeping time, which is why throughput *declines*
// past the peak in Figs 11 and 14. We model capacity as
//
//   capacity(n) = base / (1 + overhead * n)
//
// where n is the number of busy sockets.
#pragma once

namespace flashflow::tor {

struct CpuModel {
  /// Single-thread forwarding capacity with zero socket overhead, bits/s.
  double base_bits = 1.323e9;
  /// Fractional capacity cost per busy socket.
  double per_socket_overhead = 0.003;

  /// Forwarding capacity with `sockets` busy sockets (bits/s).
  double capacity(int sockets) const;

  /// Lab hardware from Appendix C (2x Xeon E5-2697V3): peaks at 1.248 Gbit/s
  /// with 20 busy sockets.
  static CpuModel lab();
  /// The US-SW Internet host (§6.1): Tor ground truth 890 Mbit/s under a
  /// 160-socket measurement.
  static CpuModel us_sw();
};

}  // namespace flashflow::tor
