#include "tor/circuit.h"

#include <algorithm>

namespace flashflow::tor {

MeasurementTarget::MeasurementTarget(std::uint64_t circuit_key,
                                     Behavior behavior,
                                     std::uint64_t forge_seed)
    : forward_(derive_key(circuit_key, "forward")),
      backward_(derive_key(circuit_key, "backward")),
      behavior_(behavior),
      forge_rng_(forge_seed) {}

Cell MeasurementTarget::handle(const Cell& incoming) {
  Cell echo = incoming;
  echo.command = CellCommand::kMeasureEcho;
  switch (behavior_) {
    case Behavior::kHonest:
      // Decrypt the measurer's layer, then apply the return-direction layer.
      forward_.apply(recv_counter_, echo.payload_span());
      backward_.apply(send_counter_, echo.payload_span());
      break;
    case Behavior::kSkipDecryption:
      // Saves the forward decryption; bytes returned are wrong once the
      // measurer strips the backward layer.
      backward_.apply(send_counter_, echo.payload_span());
      break;
    case Behavior::kForgeEarly:
      // Fabricates a response without reading the payload at all.
      for (auto& b : echo.payload)
        b = static_cast<std::uint8_t>(forge_rng_());
      break;
  }
  ++recv_counter_;
  ++send_counter_;
  return echo;
}

MeasurementSender::MeasurementSender(std::uint64_t circuit_key,
                                     double check_probability, sim::Rng rng)
    : forward_(derive_key(circuit_key, "forward")),
      backward_(derive_key(circuit_key, "backward")),
      check_probability_(check_probability),
      rng_(std::move(rng)) {}

Cell MeasurementSender::next_cell(std::uint32_t circuit_id) {
  Cell cell;
  cell.circuit_id = circuit_id;
  cell.command = CellCommand::kMeasure;
  for (auto& b : cell.payload) b = static_cast<std::uint8_t>(rng_());
  if (rng_.chance(check_probability_))
    recorded_.emplace(send_counter_, cell.payload);
  forward_.apply(send_counter_, cell.payload_span());
  ++send_counter_;
  return cell;
}

bool MeasurementSender::check_echo(const Cell& echo) {
  const std::uint64_t index = recv_counter_++;
  const auto it = recorded_.find(index);
  if (it == recorded_.end()) return true;  // not a spot-checked cell
  Cell plain = echo;
  backward_.apply(index, plain.payload_span());
  ++checked_;
  const bool ok = std::equal(plain.payload.begin(), plain.payload.end(),
                             it->second.begin());
  recorded_.erase(it);
  if (!ok) ++failures_;
  return ok;
}

}  // namespace flashflow::tor
