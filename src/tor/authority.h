// Directory Authorities: aggregating BWAuth measurements into a consensus.
//
// Each DirAuth trusts one BWAuth; the DirAuths place the *median* of the
// BWAuths' per-relay values into the consensus (§4 "Trust and Diversity").
// The median is what makes part-time capacity provisioning and single-
// BWAuth compromise ineffective (§5).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "tor/descriptor.h"

namespace flashflow::tor {

/// One BWAuth's output for one relay. TorFlow-style systems produce only
/// weights (capacity_bits == 0); FlashFlow produces true capacity estimates
/// as well (Table 2 "Capacity Values?" column).
struct BandwidthFileEntry {
  std::string fingerprint;
  double weight = 0.0;
  double capacity_bits = 0.0;
};

using BandwidthFile = std::vector<BandwidthFileEntry>;

/// Builds a consensus from several BWAuths' bandwidth files: for each relay
/// appearing in a majority of files, the consensus weight is the median of
/// the per-file weights. Relays in fewer than a majority of files are
/// excluded (unmeasured relays are not used by clients).
Consensus build_consensus(sim::SimTime valid_after,
                          std::span<const BandwidthFile> files);

/// Median capacity across bandwidth files for a relay; 0 if absent.
double median_capacity(std::span<const BandwidthFile> files,
                       const std::string& fingerprint);

}  // namespace flashflow::tor
