#include "tor/bandwidth_file.h"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "net/units.h"
#include "util/strict_parse.h"

namespace flashflow::tor {

namespace {
constexpr double kBitsPerKByte = 8000.0;  // bandwidth-file bw unit

/// Splits "key=value" and returns the pair; throws on missing '='.
std::pair<std::string, std::string> split_kv(const std::string& token) {
  const auto eq = token.find('=');
  if (eq == std::string::npos)
    throw std::invalid_argument("bandwidth file: token without '=': " +
                                token);
  return {token.substr(0, eq), token.substr(eq + 1)};
}
}  // namespace

std::string serialize_bandwidth_file(const BandwidthFileHeader& header,
                                     const BandwidthFile& entries) {
  std::ostringstream out;
  out << header.timestamp << "\n";
  out << "version=" << header.version << "\n";
  out << "software=" << header.software << "\n";
  out << "software_version=" << header.software_version << "\n";
  out << "=====\n";  // header terminator (spec: "=====")
  for (const auto& e : entries) {
    const auto bw_kb = static_cast<long long>(
        std::max(1.0, std::round(e.weight / kBitsPerKByte)));
    out << "node_id=$" << e.fingerprint << " bw=" << bw_kb;
    if (e.capacity_bits > 0.0) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.3f",
                    net::to_mbit(e.capacity_bits));
      out << " flashflow_capacity_mbits=" << buf;
    }
    out << "\n";
  }
  return out.str();
}

ParsedBandwidthFile parse_bandwidth_file(const std::string& text) {
  std::istringstream in(text);
  ParsedBandwidthFile parsed;
  std::string line;

  if (!std::getline(in, line))
    throw std::invalid_argument("bandwidth file: empty");
  // Strict whole-line parse: a corrupted timestamp line ("123abc") must be
  // rejected, not silently truncated to 123.
  parsed.header.timestamp =
      util::parse_i64(line, "bandwidth file: timestamp");

  bool in_header = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (in_header) {
      if (line == "=====") {
        in_header = false;
        continue;
      }
      const auto [key, value] = split_kv(line);
      if (key == "version") parsed.header.version = value;
      else if (key == "software") parsed.header.software = value;
      else if (key == "software_version")
        parsed.header.software_version = value;
      continue;  // unknown header keys are ignored per spec
    }

    BandwidthFileEntry entry;
    bool have_bw = false;
    std::istringstream tokens(line);
    std::string token;
    while (tokens >> token) {
      const auto [key, value] = split_kv(token);
      if (key == "node_id") {
        entry.fingerprint =
            !value.empty() && value[0] == '$' ? value.substr(1) : value;
      } else if (key == "bw") {
        // Whole-token parse naming the key: "bw=12junk" is corruption, not
        // a 12 KB/s relay; overflow reports the offending value too.
        const double kb = util::parse_double(value, "bandwidth file: "
                                                    "key 'bw'");
        if (kb < 0.0)
          throw std::invalid_argument("bandwidth file: negative bw");
        entry.weight = kb * kBitsPerKByte;
        have_bw = true;
      } else if (key == "flashflow_capacity_mbits") {
        const double mbits = util::parse_double(
            value, "bandwidth file: key 'flashflow_capacity_mbits'");
        if (mbits < 0.0)
          throw std::invalid_argument("bandwidth file: negative capacity");
        entry.capacity_bits = net::mbit(mbits);
      }
    }
    if (entry.fingerprint.empty())
      throw std::invalid_argument("bandwidth file: relay line w/o node_id");
    if (!have_bw)
      throw std::invalid_argument("bandwidth file: relay line w/o bw");
    parsed.entries.push_back(std::move(entry));
  }
  if (in_header)
    throw std::invalid_argument("bandwidth file: missing ===== terminator");
  return parsed;
}

BandwidthFile make_flashflow_entries(
    std::span<const std::string> fingerprints,
    std::span<const double> capacity_bits) {
  if (fingerprints.size() != capacity_bits.size())
    throw std::invalid_argument(
        "make_flashflow_entries: fingerprints/capacities misaligned");
  BandwidthFile entries;
  entries.reserve(fingerprints.size());
  for (std::size_t i = 0; i < fingerprints.size(); ++i) {
    if (capacity_bits[i] <= 0.0) continue;
    entries.push_back(
        {fingerprints[i], capacity_bits[i], capacity_bits[i]});
  }
  return entries;
}

}  // namespace flashflow::tor
