#include "tor/relay.h"

#include <algorithm>
#include <cmath>

#include "net/units.h"

namespace flashflow::tor {

RelayNoise::RelayNoise(Params params, sim::Rng rng)
    : params_(params), rng_(std::move(rng)) {}

double RelayNoise::next_factor() {
  // Congestion episodes arrive as a Poisson process and persist for an
  // exponentially distributed number of seconds.
  if (episode_seconds_left_ <= 0.0 &&
      rng_.chance(params_.episode_rate_per_s)) {
    episode_seconds_left_ =
        rng_.exponential(params_.episode_mean_duration_s);
    episode_depth_ =
        rng_.uniform(params_.episode_depth_min, params_.episode_depth_max);
  }
  double factor = 1.0 + rng_.normal(0.0, params_.gauss_sigma);
  if (episode_seconds_left_ > 0.0) {
    factor *= episode_depth_;
    episode_seconds_left_ -= 1.0;
  }
  return std::clamp(factor, 0.0, params_.max_factor);
}

void RelayNoise::fill_factors(std::span<double> out) {
  // The episode draws are data-dependent (a chance() draw gates each
  // second's episode sampling), so the per-second draw interleaving is
  // preserved verbatim; the batching win is hoisting the whole series out
  // of callers' per-second loops.
  for (double& factor : out) factor = next_factor();
}

double RelayModel::measurement_capacity(int sockets) const {
  double cap = std::min(nic_up_bits, nic_down_bits);
  cap = std::min(cap, cpu.capacity(sockets));
  if (rate_limit_bits > 0.0) cap = std::min(cap, rate_limit_bits);
  return cap;
}

double RelayModel::normal_capacity(int sockets) const {
  return std::min(measurement_capacity(sockets),
                  sched.normal_aggregate_cap(sockets));
}

double RelayModel::ground_truth(int sockets) const {
  const double cap = measurement_capacity(sockets);
  if (rate_limit_bits > 0.0 && cap >= rate_limit_bits) {
    // Token-bucket quantization overhead: about 4.5% for small limits,
    // flattening to ~11 Mbit/s for large ones (matches the paper's measured
    // ground truths of 9.58/239/494/741 Mbit/s).
    const double shave = std::min(0.045 * rate_limit_bits, net::mbit(11));
    return rate_limit_bits - shave;
  }
  return cap;
}

RelaySecond split_measurement_second(const RelayModel& relay,
                                     double capacity_bits,
                                     double offered_measurement_bits) {
  RelaySecond out;
  const double r = relay.ratio_r;
  // The relay forwards as much normal traffic as possible subject to
  // y <= r * (x + y), i.e. y <= x * r / (1 - r), while measurement traffic
  // takes the rest of the capacity.
  //
  // Solve for the split given total capacity C and offered demands.
  const double demand_y = relay.background_demand_bits;
  // First give measurement traffic its share assuming max background.
  // x + y <= C; y <= min(demand_y, x*r/(1-r)); x <= offered.
  // Greedy: try x = min(offered, C); then y fills the ratio allowance.
  double x = std::min(offered_measurement_bits, capacity_bits);
  double y = std::min(demand_y, x * r / (1.0 - r));
  if (x + y > capacity_bits) {
    // Capacity binds: background yields first (the relay prioritizes
    // achieving the measurement while keeping y within the ratio).
    y = std::max(0.0, capacity_bits - x);
    y = std::min(y, x * r / (1.0 - r));
    x = std::min(x, capacity_bits - y);
  }
  out.measurement_bits = std::max(0.0, x);
  out.background_bits = std::max(0.0, y);
  return out;
}

}  // namespace flashflow::tor
