// Cell scheduler models.
//
// Tor's KIST scheduler is designed for priority scheduling across *many*
// sockets and cannot fill a fast link through only a few (Tor ticket #29427;
// Appendix C: throughput grows roughly linearly with socket count until the
// CPU saturates, and extra circuits on one socket do not help). FlashFlow
// therefore adds a separate measurement-circuit scheduler with no per-socket
// write cap (§4.1), which is how a single measurement socket reaches
// 1.27 Gbit/s in Fig 12.
#pragma once

namespace flashflow::tor {

struct SchedulerModel {
  /// KIST-like per-socket write cap for normally scheduled traffic, bits/s.
  double kist_per_socket_cap_bits = 96e6;

  /// Aggregate cap of the normal scheduler over n busy sockets (bits/s).
  double normal_aggregate_cap(int sockets) const;

  /// The measurement scheduler imposes no per-socket cap; its throughput is
  /// limited only by CPU/NIC/path. Kept as a function for symmetry.
  double measurement_aggregate_cap() const;
};

}  // namespace flashflow::tor
