// Tor cells.
//
// Tor moves fixed-size 514-byte cells (circuit id + command + payload).
// FlashFlow adds a measurement cell type that a supporting relay decrypts
// and echoes back on the same circuit (§4.1), plus the SPEEDTEST cell used
// by the paper's §3.4 live-network experiment.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace flashflow::tor {

inline constexpr std::size_t kCellSize = 514;
inline constexpr std::size_t kCellHeaderSize = 5;  // 4B circ id + 1B command
inline constexpr std::size_t kCellPayloadSize = kCellSize - kCellHeaderSize;

enum class CellCommand : std::uint8_t {
  kCreate = 1,       // circuit creation (key exchange)
  kCreated = 2,      // creation acknowledgment
  kRelayData = 3,    // application data on a circuit
  kDestroy = 4,      // circuit teardown
  kMeasure = 10,     // FlashFlow measurement cell (random bytes)
  kMeasureEcho = 11, // decrypted measurement cell echoed by the target
  kSpeedtest = 12,   // §3.4 SPEEDTEST cell (forwarded straight back)
};

struct Cell {
  std::uint32_t circuit_id = 0;
  CellCommand command = CellCommand::kRelayData;
  std::array<std::uint8_t, kCellPayloadSize> payload{};

  std::span<std::uint8_t> payload_span() {
    return {payload.data(), payload.size()};
  }
  std::span<const std::uint8_t> payload_span() const {
    return {payload.data(), payload.size()};
  }
};

/// True for the cell types that participate in FlashFlow measurement.
constexpr bool is_measurement_cell(CellCommand c) {
  return c == CellCommand::kMeasure || c == CellCommand::kMeasureEcho;
}

}  // namespace flashflow::tor
