// Token bucket implementing Tor's BandwidthRate / BandwidthBurst semantics.
//
// The bucket holds up to `burst` bytes of credit and refills at `rate`
// bytes/second. Tor refills once per second, which is why Fig 7 shows a
// one-second burst above the configured rate at the start of a measurement:
// a full bucket plus a refill can be spent in the first second.
#pragma once

#include <cstdint>

namespace flashflow::tor {

class TokenBucket {
 public:
  /// rate/burst in bytes and bytes/second. burst >= rate is typical; the
  /// bucket starts full.
  TokenBucket(double rate_bytes_per_sec, double burst_bytes);

  /// Adds `seconds` worth of refill credit (capped at burst).
  void refill(double seconds);

  /// Takes up to `want_bytes`; returns the amount actually granted.
  double take(double want_bytes);

  double available() const { return tokens_; }
  double rate() const { return rate_; }
  double burst() const { return burst_; }

 private:
  double rate_;
  double burst_;
  double tokens_;
};

}  // namespace flashflow::tor
