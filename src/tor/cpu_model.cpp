#include "tor/cpu_model.h"

#include <algorithm>
#include <stdexcept>

namespace flashflow::tor {

double CpuModel::capacity(int sockets) const {
  if (sockets < 0) throw std::invalid_argument("CpuModel: negative sockets");
  return base_bits / (1.0 + per_socket_overhead * sockets);
}

CpuModel CpuModel::lab() {
  // capacity(20) = 1.323e9 / 1.06 = 1.248 Gbit/s (paper Appendix C).
  return CpuModel{1.323e9, 0.003};
}

CpuModel CpuModel::us_sw() {
  // capacity(160) = 1.317e9 / 1.48 = 890 Mbit/s (§6.1 ground truth).
  return CpuModel{1.317e9, 0.003};
}

}  // namespace flashflow::tor
