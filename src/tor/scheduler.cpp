#include "tor/scheduler.h"

#include <limits>
#include <stdexcept>

namespace flashflow::tor {

double SchedulerModel::normal_aggregate_cap(int sockets) const {
  if (sockets < 0)
    throw std::invalid_argument("SchedulerModel: negative sockets");
  return kist_per_socket_cap_bits * sockets;
}

double SchedulerModel::measurement_aggregate_cap() const {
  return std::numeric_limits<double>::infinity();
}

}  // namespace flashflow::tor
