// Tor's observed-bandwidth self-measurement (tor-spec §2.1.1).
//
// A relay's "observed bandwidth" is the highest throughput it sustained over
// any 10-second window during the last 5 days. The relay publishes
// min(observed, configured rate limit) as its *advertised bandwidth* in a
// server descriptor every 18 hours. This heuristic is the root cause of the
// underestimation the paper quantifies in §3: an underutilized relay never
// demonstrates its capacity.
//
// The estimator is generic over the sampling period so the 11-year archive
// generator can run at hourly granularity (each hourly sample being that
// hour's peak short-window throughput) while live-relay simulations run at
// one-second granularity exactly like Tor.
#pragma once

#include <cstddef>

#include "metrics/timeseries.h"

namespace flashflow::tor {

class ObservedBandwidth {
 public:
  /// window_samples: samples per max-window (Tor: 10 one-second samples);
  /// history_samples: windows retained (Tor: 5 days of seconds).
  ObservedBandwidth(std::size_t window_samples, std::size_t history_samples);

  /// Tor's live configuration: 10-second windows over 5 days of seconds.
  static ObservedBandwidth tor_live();

  /// Hourly-archive configuration: window of one sample, 5 days of hours.
  static ObservedBandwidth archive_hourly();

  /// Records a throughput sample (bits/s averaged over the sample period).
  void record(double throughput_bits);

  /// Current observed bandwidth (bits/s); 0 before the first full window.
  double observed_bits() const;

 private:
  metrics::SlidingWindowMax window_max_;
};

/// Advertised bandwidth: min(observed, rate limit); rate_limit <= 0 means
/// unlimited.
double advertised_bandwidth(double observed_bits, double rate_limit_bits);

}  // namespace flashflow::tor
