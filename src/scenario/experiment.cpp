#include "scenario/experiment.h"

#include <algorithm>
#include <utility>

#include "campaign/sink.h"
#include "sim/time.h"

namespace flashflow::scenario {

namespace {

/// Forwards one period's stream to both the aggregating sink and an
/// optional user sink. Cancellation from either side stops the run.
class TeeSink : public campaign::SlotSink {
 public:
  TeeSink(campaign::SlotSink& first, campaign::SlotSink* second)
      : first_(first), second_(second) {}

  void begin(const campaign::RunPlan& plan) override {
    first_.begin(plan);
    if (second_) second_->begin(plan);
  }
  void slot_done(const campaign::SlotResult& slot) override {
    first_.slot_done(slot);
    if (second_) second_->slot_done(slot);
  }
  bool on_progress(int slots_done, int slots_total) override {
    bool keep = first_.on_progress(slots_done, slots_total);
    if (second_) keep = second_->on_progress(slots_done, slots_total) && keep;
    return keep;
  }

 private:
  campaign::SlotSink& first_;
  campaign::SlotSink* second_;
};

}  // namespace

Experiment::Experiment(ScenarioSpec spec)
    : spec_(std::move(spec)),
      materialized_(materialize(spec_)),
      // Resolved once — §4.2 measures the measurers when the spec carries
      // no capacity overrides — so every period reuses the same estimates
      // instead of re-running the mesh with each period's seed, and a
      // 1-period Experiment agrees exactly with Scenario::run().
      measurer_caps_(resolve_team_capacities(spec_, materialized_)) {}

Experiment::Result Experiment::run(campaign::SlotSink* sink,
                                   const PeriodHook& hook) {
  Result result;
  std::vector<campaign::CampaignRelay> relays = materialized_.relays;

  // Largest prior the team can schedule: f * z0 must fit in one slot.
  // Estimates can overshoot true capacity by a few percent (per-slot
  // noise), so feeding them forward unclamped could make a maximal relay
  // unschedulable next period; a real BWAuth saturates its team instead
  // (§4.2 team_saturated).
  double team_capacity = 0.0;
  for (const double c : measurer_caps_) team_capacity += c;
  const double max_prior =
      team_capacity / spec_.params.excess_factor() * (1.0 - 1e-9);

  for (int period = 0; period < spec_.periods; ++period) {
    campaign::CampaignConfig config;
    config.params = spec_.params;
    config.measurer_hosts = materialized_.measurer_hosts;
    config.measurer_capacity_bits = measurer_caps_;
    config.schedule = spec_.schedule;
    config.threads = spec_.threads;
    config.shard_slots = spec_.shard_slots;
    config.seed = period_seed(spec_, period);
    config.record_outcomes = spec_.record_outcomes;
    config.faults = spec_.faults;
    config.telemetry = telemetry_;
    const campaign::CampaignRunner runner(materialized_.topology,
                                          std::move(config));

    campaign::AggregatingSink aggregate;
    TeeSink tee(aggregate, sink);
    const campaign::RunStats stats = runner.run(relays, tee);
    campaign::CampaignResult period_result =
        std::move(aggregate).result(stats);

    PeriodRecord record;
    record.period = period;
    record.summary = period_result.summary;
    record.stats = stats;
    result.periods.push_back(record);
    if (hook) hook(record, period_result);

    if (stats.cancelled) {
      // A cancelled period measured only part of the population: keep its
      // record (the hook already observed it; stats.cancelled marks it)
      // but don't feed partial estimates forward or overwrite
      // final_period, which stays at the last *completed* period.
      result.cancelled = true;
      break;
    }

    // §4.3 feedback: this period's accepted estimates become next
    // period's priors. Failed (including quarantined) and unmeasured
    // relays keep their old prior rather than dropping to zero — a relay
    // that missed a period through benign faults must stay schedulable
    // next period at its last known size.
    for (std::size_t i = 0; i < relays.size(); ++i) {
      const campaign::RelayEstimate& est = period_result.relays[i];
      if (!est.verification_failed && !est.slot_failed &&
          est.estimate_bits > 0.0)
        relays[i].prior_estimate_bits =
            std::min(est.estimate_bits, max_prior);
    }
    result.final_period = std::move(period_result);
  }
  return result;
}

tor::BandwidthFile Experiment::bandwidth_file(
    const campaign::CampaignResult& period_result) const {
  std::vector<double> capacities;
  capacities.reserve(period_result.relays.size());
  for (const campaign::RelayEstimate& est : period_result.relays)
    capacities.push_back(est.verification_failed ? 0.0 : est.estimate_bits);
  return tor::make_flashflow_entries(materialized_.fingerprints, capacities);
}

std::string Experiment::bandwidth_file_text(
    int period, const campaign::CampaignResult& period_result) const {
  tor::BandwidthFileHeader header;
  header.timestamp = static_cast<std::int64_t>(
      sim::to_seconds(spec_.params.period) * (period + 1));
  return tor::serialize_bandwidth_file(header,
                                       bandwidth_file(period_result));
}

}  // namespace flashflow::scenario
