#include "scenario/scenario.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <stdexcept>
#include <utility>

#include "core/schedule.h"
#include "core/team.h"
#include "net/units.h"
#include "sim/random.h"
#include "tor/cpu_model.h"

namespace flashflow::scenario {

namespace {

void reject(const std::string& what) {
  throw std::invalid_argument("ScenarioSpec: " + what);
}

/// Relay model for one Table 1 lab relay (the §6 experiment shape).
tor::RelayModel make_table1_relay(std::size_t index, double limit_mbit,
                                  double background_mbit, double ratio) {
  tor::RelayModel model;
  model.name = "relay-" + std::to_string(index) + "-" +
               std::to_string(static_cast<int>(limit_mbit));
  model.nic_up_bits = model.nic_down_bits = net::mbit(954);
  model.rate_limit_bits = limit_mbit > 0.0 ? net::mbit(limit_mbit) : 0.0;
  model.cpu = tor::CpuModel::us_sw();
  model.background_demand_bits = net::mbit(background_mbit);
  model.ratio_r = ratio;
  return model;
}

/// Relay model whose Tor ground truth at `sockets` equals `capacity_bits`:
/// NIC headroom above capacity and the CPU base scaled so the per-socket
/// overhead cancels (the mapping measure_network.cpp used to hand-roll).
tor::RelayModel make_capacity_relay(std::string name, double capacity_bits,
                                    double background_bits, double ratio,
                                    int sockets) {
  tor::RelayModel model;
  model.name = std::move(name);
  model.nic_up_bits = model.nic_down_bits = capacity_bits * 1.2;
  model.cpu.base_bits =
      capacity_bits * (1.0 + model.cpu.per_socket_overhead * sockets);
  model.background_demand_bits = background_bits;
  model.ratio_r = ratio;
  return model;
}

std::uint64_t sub_seed(const ScenarioSpec& spec, std::string_view tag) {
  return spec.seed ^ sim::hash_tag(tag);
}

/// Applies the adversary mix: a deterministic per-relay draw, in
/// population order, from the scenario seed.
void assign_behaviors(const ScenarioSpec& spec,
                      std::vector<campaign::CampaignRelay>& relays) {
  if (!spec.adversaries.any()) return;
  sim::Rng rng(sub_seed(spec, "scenario/adversaries"));
  for (auto& relay : relays) {
    const double u = rng.uniform();
    if (u < spec.adversaries.liar_fraction)
      relay.behavior = core::TargetBehavior::kLieAboutBackground;
    else if (u < spec.adversaries.liar_fraction +
                     spec.adversaries.forger_fraction)
      relay.behavior = core::TargetBehavior::kForgeEchoes;
  }
}

/// Applies the background model: per-relay utilization drawn from a
/// clamped normal, scaled by the relay's nominal capacity.
void assign_background(const ScenarioSpec& spec,
                       std::vector<campaign::CampaignRelay>& relays) {
  if (!spec.background.enabled) return;
  sim::Rng rng(sub_seed(spec, "scenario/background"));
  for (auto& relay : relays) {
    const double utilization =
        std::clamp(rng.normal(spec.background.utilization_mean,
                              spec.background.utilization_sd),
                   0.0, 0.95);
    relay.model.background_demand_bits =
        relay.model.ground_truth(spec.params.sockets) * utilization;
  }
}

}  // namespace

void ScenarioSpec::validate() const {
  params.validate();
  if (periods < 1) reject("periods must be >= 1");
  const auto bad_fraction = [](double f) { return f < 0.0 || f > 1.0; };
  if (bad_fraction(adversaries.liar_fraction) ||
      bad_fraction(adversaries.forger_fraction) ||
      adversaries.liar_fraction + adversaries.forger_fraction > 1.0)
    reject("adversary fractions must be in [0, 1] and sum to <= 1");
  if (background.enabled &&
      (background.utilization_mean < 0.0 || background.utilization_sd < 0.0))
    reject("background utilization mean/sd must be non-negative");
  if (!team.capacity_bits.empty()) {
    // Align overrides with the team — the explicit names, or the
    // population's default team (table1: the non-relay hosts; shadow: the
    // three built-in measurers; synthetic: one host per override).
    std::size_t team_size = team.measurer_names.size();
    if (team.measurer_names.empty()) {
      if (const auto* t1 = std::get_if<Table1PopulationSpec>(&population)) {
        team_size = 0;
        for (const auto& name : net::table1_host_names())
          if (name != t1->relay_host) ++team_size;
      } else if (std::holds_alternative<ShadowPopulationSpec>(population)) {
        team_size = 3;
      } else {
        team_size = team.capacity_bits.size();  // synthetic: always aligned
      }
    }
    if (team.capacity_bits.size() != team_size)
      reject("team capacity overrides misaligned with the measurer team");
  }
  if (topology.path_model == TopologySpec::PathModelKind::kDense) {
    if (topology != TopologySpec{})
      reject("topology tier parameters apply only to path_model 'tiered'");
  } else {
    if (!std::holds_alternative<SyntheticPopulationSpec>(population))
      reject("tiered path model applies only to synthetic populations "
             "(table1 paths are individually measured; shadow installs its "
             "own region-tiered model)");
    if (topology.tiers < 1) reject("topology tiers must be >= 1");
    const std::size_t tiers = static_cast<std::size_t>(topology.tiers);
    const std::size_t triangle = tiers * (tiers + 1) / 2;
    if (!topology.tier_rtt_s.empty() &&
        topology.tier_rtt_s.size() != triangle)
      reject("topology tier_rtt_s needs tiers*(tiers+1)/2 entries "
             "(upper triangle incl. diagonal)");
    for (const double rtt : topology.tier_rtt_s)
      if (rtt < 0.0) reject("topology tier RTTs must be >= 0");
    if (topology.loss < 0.0 || topology.loss >= 1.0 ||
        topology.loaded_loss < 0.0 || topology.loaded_loss >= 1.0)
      reject("topology loss rates must be in [0, 1)");
    if (topology.rtt_jitter < 0.0 || topology.rtt_jitter >= 1.0)
      reject("topology rtt_jitter must be in [0, 1)");
  }
  if (speedtest) {
    if (speedtest->warmup_days < 0 || speedtest->test_duration_hours <= 0 ||
        speedtest->cooldown_days < 0)
      reject("speedtest window must have warmup/cooldown >= 0 and a "
             "positive test duration");
    if (!std::holds_alternative<SyntheticPopulationSpec>(population))
      reject("speedtest window requires a synthetic population");
  }
  faults.validate();
  if (const auto* t1 = std::get_if<Table1PopulationSpec>(&population)) {
    if (t1->rate_limit_mbit.empty()) reject("table1 population is empty");
    for (const double limit : t1->rate_limit_mbit)
      if (limit < 0.0)
        reject("table1 rate limits must be >= 0 (0 = unlimited)");
    if (t1->background_mbit < 0.0 || t1->prior_mbit < 0.0)
      reject("table1 background/prior must be >= 0");
  } else if (const auto* syn =
                 std::get_if<SyntheticPopulationSpec>(&population)) {
    if (syn->relays <= 0) reject("synthetic population needs relays > 0");
    if (!team.measurer_names.empty())
      reject("synthetic populations create their own measurer hosts from "
             "the capacity overrides; named measurers do not apply");
  }
}

ScenarioBuilder::ScenarioBuilder(std::string name) {
  spec_.name = std::move(name);
}

ScenarioBuilder& ScenarioBuilder::table1_relays(
    std::vector<double> rate_limit_mbit, double background_mbit,
    double prior_mbit) {
  Table1PopulationSpec pop;
  pop.rate_limit_mbit = std::move(rate_limit_mbit);
  pop.background_mbit = background_mbit;
  pop.prior_mbit = prior_mbit;
  spec_.population = std::move(pop);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::shadow_net(shadowsim::ShadowNetParams params,
                                             std::uint64_t seed) {
  spec_.population = ShadowPopulationSpec{params, seed};
  return *this;
}

ScenarioBuilder& ScenarioBuilder::synthetic(analysis::PopulationParams params,
                                            int relays,
                                            double prior_fraction) {
  spec_.population = SyntheticPopulationSpec{params, relays, prior_fraction};
  return *this;
}

ScenarioBuilder& ScenarioBuilder::topology(TopologySpec topology) {
  spec_.topology = std::move(topology);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::tiered_topology(int tiers) {
  TopologySpec topo;
  topo.path_model = TopologySpec::PathModelKind::kTiered;
  topo.tiers = tiers;
  spec_.topology = std::move(topo);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::speedtest(SpeedTestWindow window) {
  spec_.speedtest = window;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::measurers(std::vector<std::string> names) {
  spec_.team.measurer_names = std::move(names);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::measurer_capacities(
    std::vector<double> capacity_bits) {
  spec_.team.capacity_bits = std::move(capacity_bits);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::liars(double fraction) {
  spec_.adversaries.liar_fraction = fraction;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::forgers(double fraction) {
  spec_.adversaries.forger_fraction = fraction;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::background_utilization(double mean,
                                                         double sd) {
  spec_.background = BackgroundModel{true, mean, sd};
  return *this;
}

ScenarioBuilder& ScenarioBuilder::params(core::Params params) {
  spec_.params = params;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::schedule(campaign::ScheduleMode mode) {
  spec_.schedule = mode;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::periods(int periods) {
  spec_.periods = periods;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::threads(int threads) {
  spec_.threads = threads;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::shard_slots(int shard_slots) {
  spec_.shard_slots = shard_slots;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::seed(std::uint64_t seed) {
  spec_.seed = seed;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::faults(fault::FaultSpec faults) {
  spec_.faults = faults;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::record_outcomes(bool on) {
  spec_.record_outcomes = on;
  return *this;
}

ScenarioSpec ScenarioBuilder::build() const {
  spec_.validate();
  return spec_;
}

std::uint64_t period_seed(const ScenarioSpec& spec, int period) {
  return spec.seed ^
         sim::hash_tag("scenario/period-" + std::to_string(period));
}

MaterializedScenario materialize(const ScenarioSpec& spec) {
  spec.validate();
  MaterializedScenario mat;

  if (const auto* t1 = std::get_if<Table1PopulationSpec>(&spec.population)) {
    mat.topology = net::make_table1_hosts();
    const net::HostId relay_host = mat.topology.find(t1->relay_host);
    for (std::size_t i = 0; i < t1->rate_limit_mbit.size(); ++i) {
      campaign::CampaignRelay relay;
      relay.model = make_table1_relay(i, t1->rate_limit_mbit[i],
                                      t1->background_mbit,
                                      spec.params.ratio);
      relay.host = relay_host;
      relay.prior_estimate_bits =
          t1->prior_mbit > 0.0 ? net::mbit(t1->prior_mbit) : 0.0;
      mat.relays.push_back(std::move(relay));
    }
    // Default team: every Table 1 host except the relay host.
    std::vector<std::string> names = spec.team.measurer_names;
    if (names.empty())
      for (const auto& name : net::table1_host_names())
        if (name != t1->relay_host) names.push_back(name);
    for (const auto& name : names)
      mat.measurer_hosts.push_back(mat.topology.find(name));
  } else if (const auto* shadow =
                 std::get_if<ShadowPopulationSpec>(&spec.population)) {
    const auto network = shadowsim::make_shadow_net(shadow->params,
                                                    shadow->seed);
    mat.topology = shadowsim::shadow_topology(network);
    for (std::size_t i = 0; i < network.relays.size(); ++i) {
      const auto& r = network.relays[i];
      campaign::CampaignRelay relay;
      relay.model = make_capacity_relay(
          r.fingerprint, r.capacity_bits, r.capacity_bits * r.utilization,
          spec.params.ratio, spec.params.sockets);
      relay.host = 3 + i;  // shadow_topology: hosts 0..2 are the measurers
      relay.prior_estimate_bits = r.advertised_bits;
      mat.relays.push_back(std::move(relay));
    }
    std::vector<std::string> names = spec.team.measurer_names;
    if (names.empty()) names = {"measurer-0", "measurer-1", "measurer-2"};
    for (const auto& name : names)
      mat.measurer_hosts.push_back(mat.topology.find(name));
  } else {
    const auto& syn = std::get<SyntheticPopulationSpec>(spec.population);
    if (spec.team.capacity_bits.empty())
      reject("synthetic population needs team capacity overrides "
             "(there is no real topology to run the iPerf mesh on)");
    const auto capacities = analysis::sample_capacities(
        syn.params, syn.relays, spec.seed ^ sim::hash_tag("scenario/synthetic"));
    // Measurer hosts first (ids 0..m-1), then one host per relay, all on a
    // flat low-latency mesh. Under the default dense path model the mesh
    // is materialized all-pairs, so very large populations are
    // memory-heavy (three n x n matrices); topology.path_model 'tiered'
    // resolves the same pairs implicitly in O(hosts) memory, and its
    // 1-tier default reproduces the dense flat mesh bit-exactly. The
    // reservation sizes the dense matrices once; without it every
    // add_host re-lays them out.
    if (spec.topology.path_model == TopologySpec::PathModelKind::kTiered) {
      net::TieredPathParams tier_params;
      tier_params.tiers = spec.topology.tiers;
      tier_params.tier_rtt_s = spec.topology.tier_rtt_s;
      tier_params.loss = spec.topology.loss;
      tier_params.loaded_loss = spec.topology.loaded_loss;
      tier_params.rtt_jitter = spec.topology.rtt_jitter;
      tier_params.seed = spec.seed ^ sim::hash_tag("scenario/tiered-path");
      mat.topology.use_path_model(
          std::make_unique<net::TieredPathModel>(std::move(tier_params)));
    }
    mat.topology.reserve_hosts(spec.team.capacity_bits.size() +
                               capacities.size());
    for (std::size_t i = 0; i < spec.team.capacity_bits.size(); ++i) {
      net::Host host;
      host.name = "measurer-" + std::to_string(i);
      host.nic_up_bits = host.nic_down_bits = spec.team.capacity_bits[i];
      host.cpu_cores = 4;
      mat.measurer_hosts.push_back(mat.topology.add_host(std::move(host)));
    }
    for (std::size_t i = 0; i < capacities.size(); ++i) {
      net::Host host;
      host.name = "synthetic-relay-" + std::to_string(i) + "-host";
      host.nic_up_bits = host.nic_down_bits = capacities[i] * 1.2;
      host.cpu_cores = 2;
      const net::HostId id = mat.topology.add_host(std::move(host));
      campaign::CampaignRelay relay;
      relay.model = make_capacity_relay(
          "synthetic-relay-" + std::to_string(i), capacities[i], 0.0,
          spec.params.ratio, spec.params.sockets);
      relay.host = id;
      relay.prior_estimate_bits =
          syn.prior_fraction > 0.0 ? capacities[i] * syn.prior_fraction : 0.0;
      mat.relays.push_back(std::move(relay));
    }
    if (spec.topology.path_model == TopologySpec::PathModelKind::kDense)
      for (net::HostId a = 0; a < mat.topology.host_count(); ++a)
        for (net::HostId b = a + 1; b < mat.topology.host_count(); ++b)
          mat.topology.set_path(a, b, 0.05, 1.0e-6, 5.0e-5);
  }

  mat.measurer_capacity_bits = spec.team.capacity_bits;
  assign_behaviors(spec, mat.relays);
  assign_background(spec, mat.relays);
  mat.fingerprints.reserve(mat.relays.size());
  for (const auto& relay : mat.relays)
    mat.fingerprints.push_back(relay.model.name);
  return mat;
}

Scenario::Scenario(ScenarioSpec spec) : spec_(std::move(spec)) {
  spec_.validate();
  if (spec_.speedtest)
    throw std::invalid_argument(
        "Scenario: the speedtest window applies only to run_speed_test, "
        "not to slot-based scenario runs");
}

const MaterializedScenario& Scenario::materialized() const {
  if (!materialized_)
    materialized_ = std::make_unique<MaterializedScenario>(materialize(spec_));
  return *materialized_;
}

std::vector<double> resolve_team_capacities(const ScenarioSpec& spec,
                                            const MaterializedScenario& mat) {
  if (!mat.measurer_capacity_bits.empty()) return mat.measurer_capacity_bits;
  core::Team team(mat.topology, mat.measurer_hosts);
  team.measure_measurers(spec.seed ^ sim::hash_tag("scenario/mesh"));
  return team.capacities();
}

const campaign::CampaignRunner& Scenario::runner() const {
  if (!runner_) {
    const MaterializedScenario& mat = materialized();
    campaign::CampaignConfig config;
    config.params = spec_.params;
    config.measurer_hosts = mat.measurer_hosts;
    config.measurer_capacity_bits = resolve_team_capacities(spec_, mat);
    config.schedule = spec_.schedule;
    config.threads = spec_.threads;
    config.shard_slots = spec_.shard_slots;
    config.seed = period_seed(spec_, 0);
    config.record_outcomes = spec_.record_outcomes;
    config.faults = spec_.faults;
    config.telemetry = telemetry_;
    runner_ = std::make_unique<campaign::CampaignRunner>(mat.topology,
                                                         std::move(config));
  }
  return *runner_;
}

const std::vector<double>& Scenario::prior_capacities() const {
  if (priors_) return *priors_;
  std::vector<double> priors;
  if (materialized_) {
    // The population is already built: read the priors off it (the same
    // rule CampaignRunner applies) instead of regenerating the source.
    for (const auto& relay : materialized_->relays)
      priors.push_back(relay.prior_estimate_bits > 0.0
                           ? relay.prior_estimate_bits
                           : relay.model.ground_truth(spec_.params.sockets));
  } else if (const auto* t1 =
                 std::get_if<Table1PopulationSpec>(&spec_.population)) {
    for (std::size_t i = 0; i < t1->rate_limit_mbit.size(); ++i) {
      const auto model = make_table1_relay(i, t1->rate_limit_mbit[i],
                                           t1->background_mbit,
                                           spec_.params.ratio);
      priors.push_back(t1->prior_mbit > 0.0
                           ? net::mbit(t1->prior_mbit)
                           : model.ground_truth(spec_.params.sockets));
    }
  } else if (const auto* shadow =
                 std::get_if<ShadowPopulationSpec>(&spec_.population)) {
    const auto network = shadowsim::make_shadow_net(shadow->params,
                                                    shadow->seed);
    // Same rule the runner applies: the advertised-bandwidth prior, or
    // the oracle (ground truth == capacity for shadow relays) if a relay
    // somehow advertises nothing.
    for (const auto& r : network.relays)
      priors.push_back(r.advertised_bits > 0.0 ? r.advertised_bits
                                               : r.capacity_bits);
  } else {
    const auto& syn = std::get<SyntheticPopulationSpec>(spec_.population);
    priors = analysis::sample_capacities(
        syn.params, syn.relays,
        spec_.seed ^ sim::hash_tag("scenario/synthetic"));
    if (syn.prior_fraction > 0.0)
      for (double& p : priors) p *= syn.prior_fraction;
  }
  priors_ = std::make_unique<std::vector<double>>(std::move(priors));
  return *priors_;
}

PlanResult Scenario::plan() const {
  const std::vector<double>& priors = prior_capacities();
  PlanResult plan;
  plan.relays = static_cast<int>(priors.size());
  plan.total_prior_bits =
      std::accumulate(priors.begin(), priors.end(), 0.0);
  plan.total_requirement_bits =
      plan.total_prior_bits * spec_.params.excess_factor();
  if (!spec_.team.capacity_bits.empty()) {
    plan.team_capacity_bits =
        std::accumulate(spec_.team.capacity_bits.begin(),
                        spec_.team.capacity_bits.end(), 0.0);
  } else {
    // No overrides: resolving the team runs the iPerf mesh, which needs
    // the materialized topology anyway.
    plan.team_capacity_bits = runner().team_capacity_bits();
  }

  if (spec_.schedule == campaign::ScheduleMode::kGreedyPack) {
    const auto packing = core::greedy_pack(priors, plan.team_capacity_bits,
                                           spec_.params);
    plan.slots_in_period = packing.slots_used;
    plan.slots_used = packing.slots_used;
    plan.simulated_seconds =
        static_cast<double>(packing.slots_used) * spec_.params.slot_seconds;
  } else {
    core::PeriodSchedule schedule(
        spec_.params, plan.team_capacity_bits,
        period_seed(spec_, 0) ^ sim::hash_tag("campaign/schedule"));
    const auto slots = schedule.schedule_old_relays(priors);
    plan.slots_in_period = schedule.slots_in_period();
    plan.slots_used = static_cast<int>(
        std::set<int>(slots.begin(), slots.end()).size());
    plan.simulated_seconds = static_cast<double>(plan.slots_in_period) *
                             spec_.params.slot_seconds;
  }
  return plan;
}

campaign::RunStats Scenario::run(campaign::SlotSink& sink) const {
  return runner().run(materialized().relays, sink);
}

campaign::CampaignResult Scenario::run() const {
  return runner().run(materialized().relays);
}

analysis::SpeedTestResult run_speed_test(const ScenarioSpec& spec) {
  spec.validate();
  const auto* syn = std::get_if<SyntheticPopulationSpec>(&spec.population);
  if (!syn)
    throw std::invalid_argument(
        "run_speed_test: requires a synthetic population source");
  // The §3.4 experiment runs on the archive machinery, not on measurement
  // slots: reject spec fields it cannot honor rather than drop them.
  if (spec.adversaries.any() || spec.background.enabled ||
      !spec.team.measurer_names.empty() || !spec.team.capacity_bits.empty() ||
      spec.periods != 1 || spec.record_outcomes ||
      spec.schedule != campaign::ScheduleMode::kGreedyPack ||
      spec.threads != 1 || spec.shard_slots != 0 ||
      spec.topology != TopologySpec{} || syn->prior_fraction > 0.0 ||
      spec.faults.enabled())
    throw std::invalid_argument(
        "run_speed_test: adversary mix, background model, team, topology, "
        "periods, schedule, threads, record_outcomes, prior_fraction and "
        "faults do not apply to the §3.4 archive experiment");
  const SpeedTestWindow window = spec.speedtest.value_or(SpeedTestWindow{});
  analysis::SpeedTestConfig config;
  config.population = syn->params;
  // The archive machinery grows and churns the population itself; the
  // spec's relay count seeds the initial live-relay population.
  config.population.initial_relays = syn->relays;
  config.warmup_days = window.warmup_days;
  config.test_duration_hours = window.test_duration_hours;
  config.cooldown_days = window.cooldown_days;
  return analysis::run_speed_test_experiment(config, spec.seed);
}

}  // namespace flashflow::scenario
