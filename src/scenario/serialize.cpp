#include "scenario/serialize.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "sim/time.h"
#include "util/strict_parse.h"

namespace flashflow::scenario {

namespace {

// ------------------------------------------------------------- formatting ---

/// Shortest text that parses back to exactly the same double
/// (std::to_chars round-trip guarantee) — the serializer half of the
/// format's round-trip fidelity promise.
std::string fmt(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, ptr);
}

bool plain_string(const std::string& s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isalnum(c) || c == '_' || c == '-' || c == '.' || c == '/';
  });
}

/// Bare when possible, double-quoted when the text would not survive the
/// line format (spaces, '#', ',', ...).
std::string fmt(const std::string& s) {
  return plain_string(s) ? s : "\"" + s + "\"";
}

std::string fmt_list(const std::vector<double>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i)
    out += (i ? ", " : "") + fmt(values[i]);
  return out + "]";
}

std::string fmt_list(const std::vector<std::string>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i)
    out += (i ? ", " : "") + fmt(values[i]);
  return out + "]";
}

// ---------------------------------------------------------------- parsing ---

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

/// Strips an optional matched pair of double quotes.
std::string unquote(std::string_view s) {
  if (s.size() >= 2 && s.front() == '"' && s.back() == '"')
    return std::string(s.substr(1, s.size() - 2));
  return std::string(s);
}

/// The `key: value` lines of one scenario file, with duplicate detection,
/// typed access, and unknown-key reporting. Every diagnostic is prefixed
/// "<source>:<line>:" so a malformed file points at itself.
class ScenarioText {
 public:
  ScenarioText(const std::string& text, std::string source)
      : source_(std::move(source)) {
    std::istringstream in(text);
    std::string raw;
    for (int line = 1; std::getline(in, raw); ++line) {
      std::string_view rest = strip_comment(raw);
      rest = trim(rest);
      if (rest.empty()) continue;
      const auto colon = rest.find(':');
      if (colon == std::string_view::npos)
        fail(line, "expected 'key: value', got '" + std::string(rest) + "'");
      const std::string key{trim(rest.substr(0, colon))};
      if (key.empty() || !plain_string(key))
        fail(line, "malformed key '" + key + "'");
      const std::string value{trim(rest.substr(colon + 1))};
      if (value.empty()) fail(line, "key '" + key + "' has no value");
      const auto [it, inserted] = entries_.emplace(key, Entry{value, line});
      if (!inserted)
        fail(line, "duplicate key '" + key + "' (first set on line " +
                       std::to_string(it->second.line) + ")");
    }
  }

  [[noreturn]] void fail(int line, const std::string& message) const {
    throw std::invalid_argument(source_ + ":" + std::to_string(line) + ": " +
                                message);
  }

  bool has(const std::string& key) const { return entries_.count(key) != 0; }

  std::string get_string(const std::string& key, std::string fallback) {
    const Entry* e = find(key);
    return e ? unquote(e->value) : std::move(fallback);
  }

  std::string require_string(const std::string& key) {
    const Entry* e = find(key);
    if (!e)
      throw std::invalid_argument(source_ + ": missing required key '" +
                                  key + "'");
    return unquote(e->value);
  }

  double get_double(const std::string& key, double fallback) {
    const Entry* e = find(key);
    return e ? util::parse_double(e->value, label(key, e)) : fallback;
  }

  int get_int(const std::string& key, int fallback) {
    const Entry* e = find(key);
    return e ? util::parse_int(e->value, label(key, e)) : fallback;
  }

  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) {
    const Entry* e = find(key);
    return e ? util::parse_u64(e->value, label(key, e)) : fallback;
  }

  bool get_bool(const std::string& key, bool fallback) {
    const Entry* e = find(key);
    return e ? util::parse_bool(e->value, label(key, e)) : fallback;
  }

  std::vector<double> get_double_list(const std::string& key) {
    std::vector<double> out;
    const Entry* e = find(key);
    if (!e) return out;
    for (const auto& item : split_list(key, e))
      out.push_back(util::parse_double(item, label(key, e)));
    return out;
  }

  std::vector<std::string> get_string_list(const std::string& key) {
    std::vector<std::string> out;
    const Entry* e = find(key);
    if (!e) return out;
    for (const auto& item : split_list(key, e)) out.push_back(unquote(item));
    return out;
  }

  /// The line an already-consumed key was set on (diagnostics).
  int line_of(const std::string& key) const {
    return entries_.at(key).line;
  }

  /// Fails on the first (lowest-line) key no getter consumed. `population`
  /// names the active population source so a valid-but-inapplicable
  /// section gets a better message than "unknown key".
  void reject_unused(const std::string& population) const {
    const Entry* first = nullptr;
    const std::string* first_key = nullptr;
    for (const auto& [key, entry] : entries_) {
      if (entry.used) continue;
      if (!first || entry.line < first->line) {
        first = &entry;
        first_key = &key;
      }
    }
    if (!first) return;
    for (const char* section : {"table1", "shadow", "synthetic"}) {
      if (first_key->rfind(std::string(section) + ".", 0) == 0 &&
          population != section)
        fail(first->line, "key '" + *first_key +
                              "' does not apply (population is '" +
                              population + "')");
    }
    fail(first->line, "unknown key '" + *first_key + "'");
  }

 private:
  struct Entry {
    std::string value;
    int line = 0;
    mutable bool used = false;
  };

  /// "<source>:<line>: key '<key>'" — the `what` handed to the strict
  /// numeric parsers, so their messages come out fully located.
  std::string label(const std::string& key, const Entry* e) const {
    return source_ + ":" + std::to_string(e->line) + ": key '" + key + "'";
  }

  const Entry* find(const std::string& key) {
    const auto it = entries_.find(key);
    if (it == entries_.end()) return nullptr;
    it->second.used = true;
    return &it->second;
  }

  std::vector<std::string> split_list(const std::string& key,
                                      const Entry* e) const {
    const std::string_view value = e->value;
    if (value.size() < 2 || value.front() != '[' || value.back() != ']')
      fail(e->line, "key '" + key + "': expected a list like [a, b], got '" +
                        e->value + "'");
    std::vector<std::string> items;
    std::string_view body = trim(value.substr(1, value.size() - 2));
    if (body.empty()) return items;  // []
    while (true) {
      const auto comma = body.find(',');
      const std::string_view item = trim(body.substr(0, comma));
      if (item.empty())
        fail(e->line, "key '" + key + "': empty list element");
      items.emplace_back(item);
      if (comma == std::string_view::npos) break;
      body = body.substr(comma + 1);
    }
    return items;
  }

  /// '#' opens a comment at the start of a line or after whitespace;
  /// "US-SW#3" stays intact, and nothing inside a double-quoted value
  /// ("a #tag") is a comment.
  static std::string_view strip_comment(std::string_view line) {
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '"') quoted = !quoted;
      if (!quoted && line[i] == '#' &&
          (i == 0 || line[i - 1] == ' ' || line[i - 1] == '\t'))
        return line.substr(0, i);
    }
    return line;
  }

  const std::string source_;
  std::map<std::string, Entry> entries_;
};

}  // namespace

// -------------------------------------------------------------- serialize ---

std::string serialize_scenario(const ScenarioSpec& spec) {
  spec.validate();
  std::ostringstream out;
  out << "# FlashFlow scenario (format version 1). One 'key: value' per\n"
         "# line, dotted keys for nesting, inline [a, b] lists; absent\n"
         "# keys keep their defaults. See README \"Scenario files\".\n"
      << "flashflow_scenario: 1\n"
      << "name: " << fmt(spec.name) << "\n"
      << "seed: " << spec.seed << "\n"
      << "periods: " << spec.periods << "\n"
      << "threads: " << spec.threads << "\n"
      << "shard_slots: " << spec.shard_slots << "\n"
      << "schedule: "
      << (spec.schedule == campaign::ScheduleMode::kGreedyPack
              ? "greedy_pack"
              : "randomized")
      << "\n"
      << "record_outcomes: "
      << (spec.record_outcomes ? "true" : "false") << "\n\n";

  if (const auto* t1 = std::get_if<Table1PopulationSpec>(&spec.population)) {
    out << "population: table1\n"
        << "table1.rate_limits_mbit: " << fmt_list(t1->rate_limit_mbit)
        << "\n"
        << "table1.relay_host: " << fmt(t1->relay_host) << "\n"
        << "table1.background_mbit: " << fmt(t1->background_mbit) << "\n"
        << "table1.prior_mbit: " << fmt(t1->prior_mbit) << "\n";
  } else if (const auto* shadow =
                 std::get_if<ShadowPopulationSpec>(&spec.population)) {
    const shadowsim::ShadowNetParams& p = shadow->params;
    out << "population: shadow\n"
        << "shadow.seed: " << shadow->seed << "\n"
        << "shadow.relays: " << p.relays << "\n"
        << "shadow.capacity_mu: " << fmt(p.capacity_mu) << "\n"
        << "shadow.capacity_sigma: " << fmt(p.capacity_sigma) << "\n"
        << "shadow.max_capacity_bits: " << fmt(p.max_capacity_bits) << "\n"
        << "shadow.min_capacity_bits: " << fmt(p.min_capacity_bits) << "\n"
        << "shadow.advertised_mean: " << fmt(p.advertised_mean) << "\n"
        << "shadow.advertised_sd: " << fmt(p.advertised_sd) << "\n"
        << "shadow.contention_mean: " << fmt(p.contention_mean) << "\n"
        << "shadow.contention_sd: " << fmt(p.contention_sd) << "\n";
  } else {
    const auto& syn = std::get<SyntheticPopulationSpec>(spec.population);
    const analysis::PopulationParams& p = syn.params;
    out << "population: synthetic\n"
        << "synthetic.relays: " << syn.relays << "\n"
        << "synthetic.prior_fraction: " << fmt(syn.prior_fraction) << "\n"
        << "synthetic.initial_relays: " << p.initial_relays << "\n"
        << "synthetic.growth_per_year: " << fmt(p.growth_per_year) << "\n"
        << "synthetic.churn_per_day: " << fmt(p.churn_per_day) << "\n"
        << "synthetic.lognormal_mu: " << fmt(p.lognormal_mu) << "\n"
        << "synthetic.lognormal_sigma: " << fmt(p.lognormal_sigma) << "\n"
        << "synthetic.max_capacity_bits: " << fmt(p.max_capacity_bits)
        << "\n"
        << "synthetic.min_capacity_bits: " << fmt(p.min_capacity_bits)
        << "\n"
        << "synthetic.rate_limited_fraction: "
        << fmt(p.rate_limited_fraction) << "\n";
  }

  // Optional sections: emitted only when engaged, so files written by
  // older builds and specs with all-default values stay byte-stable.
  if (spec.topology != TopologySpec{}) {
    out << "\ntopology.path_model: "
        << (spec.topology.path_model == TopologySpec::PathModelKind::kTiered
                ? "tiered"
                : "dense")
        << "\n"
        << "topology.tiers: " << spec.topology.tiers << "\n"
        << "topology.tier_rtt_s: " << fmt_list(spec.topology.tier_rtt_s)
        << "\n"
        << "topology.loss: " << fmt(spec.topology.loss) << "\n"
        << "topology.loaded_loss: " << fmt(spec.topology.loaded_loss) << "\n"
        << "topology.rtt_jitter: " << fmt(spec.topology.rtt_jitter) << "\n";
  }
  if (spec.speedtest) {
    out << "\nspeedtest.warmup_days: " << spec.speedtest->warmup_days << "\n"
        << "speedtest.test_duration_hours: "
        << spec.speedtest->test_duration_hours << "\n"
        << "speedtest.cooldown_days: " << spec.speedtest->cooldown_days
        << "\n";
  }
  if (spec.faults != fault::FaultSpec{}) {
    out << "\nfaults.measurer_crash: " << fmt(spec.faults.measurer_crash)
        << "\n"
        << "faults.relay_disconnect: " << fmt(spec.faults.relay_disconnect)
        << "\n"
        << "faults.report_drop: " << fmt(spec.faults.report_drop) << "\n"
        << "faults.report_truncate: " << fmt(spec.faults.report_truncate)
        << "\n"
        << "faults.slot_timeout: " << fmt(spec.faults.slot_timeout) << "\n"
        << "faults.max_retries: " << spec.faults.max_retries << "\n"
        << "faults.min_usable_seconds: " << spec.faults.min_usable_seconds
        << "\n";
  }

  out << "\nteam.measurers: " << fmt_list(spec.team.measurer_names) << "\n"
      << "team.capacity_bits: " << fmt_list(spec.team.capacity_bits)
      << "\n\n"
      << "adversaries.liar_fraction: "
      << fmt(spec.adversaries.liar_fraction) << "\n"
      << "adversaries.forger_fraction: "
      << fmt(spec.adversaries.forger_fraction) << "\n\n"
      << "background.enabled: "
      << (spec.background.enabled ? "true" : "false") << "\n"
      << "background.utilization_mean: "
      << fmt(spec.background.utilization_mean) << "\n"
      << "background.utilization_sd: "
      << fmt(spec.background.utilization_sd) << "\n\n"
      << "params.sockets: " << spec.params.sockets << "\n"
      << "params.multiplier: " << fmt(spec.params.multiplier) << "\n"
      << "params.slot_seconds: " << spec.params.slot_seconds << "\n"
      << "params.epsilon1: " << fmt(spec.params.epsilon1) << "\n"
      << "params.epsilon2: " << fmt(spec.params.epsilon2) << "\n"
      << "params.ratio: " << fmt(spec.params.ratio) << "\n"
      << "params.check_probability: " << fmt(spec.params.check_probability)
      << "\n"
      << "params.period_seconds: "
      << fmt(sim::to_seconds(spec.params.period)) << "\n";
  return out.str();
}

// ------------------------------------------------------------------ parse ---

ScenarioSpec parse_scenario(const std::string& text,
                            const std::string& source) {
  ScenarioText in(text, source);
  ScenarioSpec spec;

  if (in.has("flashflow_scenario")) {
    const int version = in.get_int("flashflow_scenario", 1);
    if (version != 1)
      in.fail(in.line_of("flashflow_scenario"),
              "unsupported scenario-format version " +
                  std::to_string(version) + " (this build reads version 1)");
  }

  spec.name = in.get_string("name", spec.name);
  spec.seed = in.get_u64("seed", spec.seed);
  spec.periods = in.get_int("periods", spec.periods);
  spec.threads = in.get_int("threads", spec.threads);
  spec.shard_slots = in.get_int("shard_slots", spec.shard_slots);
  spec.record_outcomes =
      in.get_bool("record_outcomes", spec.record_outcomes);

  const std::string schedule = in.get_string("schedule", "greedy_pack");
  if (schedule == "greedy_pack") {
    spec.schedule = campaign::ScheduleMode::kGreedyPack;
  } else if (schedule == "randomized") {
    spec.schedule = campaign::ScheduleMode::kRandomized;
  } else {
    in.fail(in.line_of("schedule"),
            "key 'schedule': expected greedy_pack or randomized, got '" +
                schedule + "'");
  }

  const std::string population = in.require_string("population");
  if (population == "table1") {
    Table1PopulationSpec t1;
    t1.rate_limit_mbit = in.get_double_list("table1.rate_limits_mbit");
    t1.relay_host = in.get_string("table1.relay_host", t1.relay_host);
    t1.background_mbit =
        in.get_double("table1.background_mbit", t1.background_mbit);
    t1.prior_mbit = in.get_double("table1.prior_mbit", t1.prior_mbit);
    spec.population = std::move(t1);
  } else if (population == "shadow") {
    ShadowPopulationSpec shadow;
    shadowsim::ShadowNetParams& p = shadow.params;
    shadow.seed = in.get_u64("shadow.seed", shadow.seed);
    p.relays = in.get_int("shadow.relays", p.relays);
    p.capacity_mu = in.get_double("shadow.capacity_mu", p.capacity_mu);
    p.capacity_sigma =
        in.get_double("shadow.capacity_sigma", p.capacity_sigma);
    p.max_capacity_bits =
        in.get_double("shadow.max_capacity_bits", p.max_capacity_bits);
    p.min_capacity_bits =
        in.get_double("shadow.min_capacity_bits", p.min_capacity_bits);
    p.advertised_mean =
        in.get_double("shadow.advertised_mean", p.advertised_mean);
    p.advertised_sd = in.get_double("shadow.advertised_sd", p.advertised_sd);
    p.contention_mean =
        in.get_double("shadow.contention_mean", p.contention_mean);
    p.contention_sd = in.get_double("shadow.contention_sd", p.contention_sd);
    spec.population = shadow;
  } else if (population == "synthetic") {
    SyntheticPopulationSpec syn;
    analysis::PopulationParams& p = syn.params;
    syn.relays = in.get_int("synthetic.relays", syn.relays);
    syn.prior_fraction =
        in.get_double("synthetic.prior_fraction", syn.prior_fraction);
    p.initial_relays = in.get_int("synthetic.initial_relays",
                                  p.initial_relays);
    p.growth_per_year =
        in.get_double("synthetic.growth_per_year", p.growth_per_year);
    p.churn_per_day =
        in.get_double("synthetic.churn_per_day", p.churn_per_day);
    p.lognormal_mu = in.get_double("synthetic.lognormal_mu", p.lognormal_mu);
    p.lognormal_sigma =
        in.get_double("synthetic.lognormal_sigma", p.lognormal_sigma);
    p.max_capacity_bits =
        in.get_double("synthetic.max_capacity_bits", p.max_capacity_bits);
    p.min_capacity_bits =
        in.get_double("synthetic.min_capacity_bits", p.min_capacity_bits);
    p.rate_limited_fraction = in.get_double(
        "synthetic.rate_limited_fraction", p.rate_limited_fraction);
    spec.population = syn;
  } else {
    in.fail(in.line_of("population"),
            "key 'population': expected table1, shadow or synthetic, "
            "got '" + population + "'");
  }

  if (in.has("topology.path_model")) {
    const std::string kind = in.get_string("topology.path_model", "dense");
    if (kind == "dense") {
      spec.topology.path_model = TopologySpec::PathModelKind::kDense;
    } else if (kind == "tiered") {
      spec.topology.path_model = TopologySpec::PathModelKind::kTiered;
    } else {
      in.fail(in.line_of("topology.path_model"),
              "key 'topology.path_model': expected dense or tiered, got '" +
                  kind + "'");
    }
  }
  // Tier parameters are read unconditionally so a file carrying them
  // without 'topology.path_model: tiered' fails spec validation instead
  // of being silently dropped.
  spec.topology.tiers = in.get_int("topology.tiers", spec.topology.tiers);
  spec.topology.tier_rtt_s = in.get_double_list("topology.tier_rtt_s");
  spec.topology.loss = in.get_double("topology.loss", spec.topology.loss);
  spec.topology.loaded_loss =
      in.get_double("topology.loaded_loss", spec.topology.loaded_loss);
  spec.topology.rtt_jitter =
      in.get_double("topology.rtt_jitter", spec.topology.rtt_jitter);

  if (in.has("speedtest.warmup_days") ||
      in.has("speedtest.test_duration_hours") ||
      in.has("speedtest.cooldown_days")) {
    SpeedTestWindow window;
    window.warmup_days =
        in.get_int("speedtest.warmup_days", window.warmup_days);
    window.test_duration_hours = in.get_int("speedtest.test_duration_hours",
                                            window.test_duration_hours);
    window.cooldown_days =
        in.get_int("speedtest.cooldown_days", window.cooldown_days);
    spec.speedtest = window;
  }

  spec.faults.measurer_crash =
      in.get_double("faults.measurer_crash", spec.faults.measurer_crash);
  spec.faults.relay_disconnect =
      in.get_double("faults.relay_disconnect", spec.faults.relay_disconnect);
  spec.faults.report_drop =
      in.get_double("faults.report_drop", spec.faults.report_drop);
  spec.faults.report_truncate =
      in.get_double("faults.report_truncate", spec.faults.report_truncate);
  spec.faults.slot_timeout =
      in.get_double("faults.slot_timeout", spec.faults.slot_timeout);
  spec.faults.max_retries =
      in.get_int("faults.max_retries", spec.faults.max_retries);
  spec.faults.min_usable_seconds =
      in.get_int("faults.min_usable_seconds", spec.faults.min_usable_seconds);

  spec.team.measurer_names = in.get_string_list("team.measurers");
  spec.team.capacity_bits = in.get_double_list("team.capacity_bits");

  spec.adversaries.liar_fraction =
      in.get_double("adversaries.liar_fraction", 0.0);
  spec.adversaries.forger_fraction =
      in.get_double("adversaries.forger_fraction", 0.0);

  spec.background.enabled = in.get_bool("background.enabled", false);
  spec.background.utilization_mean =
      in.get_double("background.utilization_mean", 0.0);
  spec.background.utilization_sd =
      in.get_double("background.utilization_sd", 0.0);

  spec.params.sockets = in.get_int("params.sockets", spec.params.sockets);
  spec.params.multiplier =
      in.get_double("params.multiplier", spec.params.multiplier);
  spec.params.slot_seconds =
      in.get_int("params.slot_seconds", spec.params.slot_seconds);
  spec.params.epsilon1 =
      in.get_double("params.epsilon1", spec.params.epsilon1);
  spec.params.epsilon2 =
      in.get_double("params.epsilon2", spec.params.epsilon2);
  spec.params.ratio = in.get_double("params.ratio", spec.params.ratio);
  spec.params.check_probability = in.get_double(
      "params.check_probability", spec.params.check_probability);
  if (in.has("params.period_seconds"))
    spec.params.period = sim::from_seconds(
        in.get_double("params.period_seconds", 0.0));

  in.reject_unused(population);
  spec.validate();
  return spec;
}

ScenarioSpec load_scenario_file(const std::string& path) {
  std::ifstream file(path);
  if (!file)
    throw std::invalid_argument("cannot open scenario file: " + path);
  std::ostringstream text;
  text << file.rdbuf();
  return parse_scenario(text.str(), path);
}

std::vector<FileCheck> check_scenario_files(
    const std::vector<std::string>& paths) {
  std::vector<FileCheck> checks;
  checks.reserve(paths.size());
  for (const std::string& path : paths) {
    FileCheck check;
    check.path = path;
    try {
      check.name = load_scenario_file(path).name;
      check.ok = true;
    } catch (const std::exception& e) {
      check.detail = e.what();
    }
    checks.push_back(std::move(check));
  }
  return checks;
}

std::string default_scenario_dir() {
#ifdef FLASHFLOW_SCENARIO_DIR
  return FLASHFLOW_SCENARIO_DIR;
#else
  return "scenarios";
#endif
}

}  // namespace flashflow::scenario
