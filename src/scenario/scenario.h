// Declarative experiment scenarios over the streaming campaign engine.
//
// A ScenarioSpec says *what* to measure — a relay population source, an
// adversary mix, a background-traffic model, a measurer team, a schedule
// mode and a period count — without any of the topology/allocation wiring
// the bench binaries used to hand-roll. ScenarioBuilder composes specs
// fluently; Scenario materializes one into a topology + campaign
// population and runs (or just plans) a single period through
// campaign::CampaignRunner; scenario::Experiment (experiment.h) drives the
// multi-period §4.3 feedback loop on top.
//
// Population sources:
//   - Table1PopulationSpec: lab relays on the paper's Table 1 Internet
//     hosts (the §6 accuracy experiments),
//   - ShadowPopulationSpec: the §7 5%-scale shadowsim network,
//   - SyntheticPopulationSpec: capacities sampled from the §3
//     analysis::population mixture (scale/scheduling studies).
//
// Everything is deterministic in (spec, seed) and independent of the
// worker thread count, inheriting the campaign engine's guarantee.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "analysis/population.h"
#include "analysis/speedtest.h"
#include "campaign/campaign.h"
#include "core/params.h"
#include "fault/fault.h"
#include "shadowsim/shadow_net.h"

namespace flashflow::scenario {

/// Lab relays hosted on one Table 1 vantage point (default US-SW), one
/// relay per rate limit, measured by the remaining Table 1 hosts.
struct Table1PopulationSpec {
  /// Operator rate limit per relay; 0 means unlimited (NIC/CPU-capped,
  /// the §6 "unlimited" configuration). Negative limits are rejected.
  std::vector<double> rate_limit_mbit;
  std::string relay_host = "US-SW";
  /// Offered client (background) traffic per relay.
  double background_mbit = 0.0;
  /// Scheduling prior z0 per relay; <= 0 means oracle prior.
  double prior_mbit = 0.0;

  friend bool operator==(const Table1PopulationSpec&,
                         const Table1PopulationSpec&) = default;
};

/// The §7 Shadow-style private Tor network: ~328 relays with advertised
/// bandwidths as scheduling priors and utilization-driven background.
struct ShadowPopulationSpec {
  shadowsim::ShadowNetParams params;
  std::uint64_t seed = 11;

  friend bool operator==(const ShadowPopulationSpec&,
                         const ShadowPopulationSpec&) = default;
};

/// Capacities sampled from the §3 population mixture; relays are placed on
/// synthetic hosts in a flat topology. Used for scale and scheduling
/// studies (e.g. the §7 efficiency numbers), where plan() needs no
/// topology at all.
struct SyntheticPopulationSpec {
  analysis::PopulationParams params;
  int relays = 0;
  /// Scheduling prior as a fraction of true capacity; <= 0 means oracle.
  double prior_fraction = 0.0;

  friend bool operator==(const SyntheticPopulationSpec&,
                         const SyntheticPopulationSpec&) = default;
};

using PopulationSpec = std::variant<Table1PopulationSpec, ShadowPopulationSpec,
                                    SyntheticPopulationSpec>;

/// Fractions of the population exhibiting the §5 adversarial behaviors;
/// assignment is a deterministic per-relay draw from the scenario seed.
struct AdversaryMix {
  /// TargetBehavior::kLieAboutBackground: report maximal background.
  double liar_fraction = 0.0;
  /// TargetBehavior::kForgeEchoes: fabricate echo responses.
  double forger_fraction = 0.0;

  bool any() const { return liar_fraction > 0.0 || forger_fraction > 0.0; }

  friend bool operator==(const AdversaryMix&, const AdversaryMix&) = default;
};

/// Background-traffic model: per-relay utilization (background demand as a
/// fraction of capacity) drawn from a clamped normal. Disabled by default,
/// keeping the population source's own background (shadow utilizations,
/// table1 background_mbit).
struct BackgroundModel {
  bool enabled = false;
  double utilization_mean = 0.0;
  double utilization_sd = 0.0;

  friend bool operator==(const BackgroundModel&,
                         const BackgroundModel&) = default;
};

/// The measurer team. Empty `measurer_names` selects the population's
/// default team (table1: every Table 1 host except the relay host; shadow:
/// the three built-in 1 Gbit/s measurers; synthetic: hosts created from
/// `capacity_bits`, which is then required).
struct TeamSpec {
  std::vector<std::string> measurer_names;
  /// Per-measurer capacity overrides; empty runs the §4.2 iPerf mesh.
  std::vector<double> capacity_bits;

  friend bool operator==(const TeamSpec&, const TeamSpec&) = default;
};

/// How the materialized topology answers path queries (net/path_model.h).
/// Dense is today's three n x n matrices — exact per-pair control,
/// O(N^2) memory. Tiered is the Shadow-style implicit model — per-host
/// tiers plus a tier x tier RTT table with optional deterministic
/// per-pair jitter — and is what makes 50k-relay synthetic campaigns fit
/// in memory. Tiered currently applies to synthetic populations only
/// (table1/lab paths are individually measured; shadow already installs
/// its own region-tiered model).
struct TopologySpec {
  enum class PathModelKind { kDense, kTiered };
  PathModelKind path_model = PathModelKind::kDense;
  /// Tier count; synthetic hosts default to tier (host id % tiers).
  int tiers = 1;
  /// Upper triangle (incl. diagonal) of the tier x tier RTT table,
  /// seconds; empty means 0.05 s everywhere (the flat-mesh default, so a
  /// 1-tier tiered topology reproduces the dense flat mesh bit-exactly).
  std::vector<double> tier_rtt_s;
  double loss = 1.0e-6;
  double loaded_loss = 5.0e-5;
  /// Per-pair RTT jitter fraction in [0, 1); 0 = exact table values.
  double rtt_jitter = 0.0;

  friend bool operator==(const TopologySpec&, const TopologySpec&) = default;
};

/// Timing window of the §3.4 live-network speed test (run_speed_test).
struct SpeedTestWindow {
  int warmup_days = 30;
  int test_duration_hours = 51;
  int cooldown_days = 10;

  friend bool operator==(const SpeedTestWindow&,
                         const SpeedTestWindow&) = default;
};

struct ScenarioSpec {
  std::string name = "scenario";
  PopulationSpec population;
  TopologySpec topology;
  TeamSpec team;
  AdversaryMix adversaries;
  BackgroundModel background;
  core::Params params;
  campaign::ScheduleMode schedule = campaign::ScheduleMode::kGreedyPack;
  /// Measurement periods for Experiment; Scenario::run executes one.
  int periods = 1;
  int threads = 1;
  /// Contiguous slots a worker lane claims per dispatch
  /// (campaign::CampaignConfig::shard_slots); <= 0 = auto. Perf knob
  /// only — results are bit-identical for every value.
  int shard_slots = 0;
  std::uint64_t seed = 1;
  /// Attach per-second core::SlotOutcomes to streamed SlotResults.
  bool record_outcomes = false;
  /// Deterministic fault injection (faults.* in scenario files). The
  /// default (all rates zero) keeps every fault path unentered and every
  /// output byte identical to a pre-fault build.
  fault::FaultSpec faults;
  /// Engages the §3.4 archive speed-test experiment (run_speed_test);
  /// slot-based Scenario/Experiment runs reject specs carrying it.
  std::optional<SpeedTestWindow> speedtest;

  /// Validates the spec (params + fractions + population/team coherence);
  /// throws std::invalid_argument.
  void validate() const;

  /// Whole-spec equality (scenario-file round-trip fidelity tests).
  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;
};

/// Fluent spec composition. Every setter returns *this; build() validates.
///
///   auto spec = ScenarioBuilder("fig7")
///                   .table1_relays({250}, /*background_mbit=*/50)
///                   .measurers({"NL"})
///                   .params(params)
///                   .seed(20210607)
///                   .build();
class ScenarioBuilder {
 public:
  explicit ScenarioBuilder(std::string name = "scenario");

  ScenarioBuilder& table1_relays(std::vector<double> rate_limit_mbit,
                                 double background_mbit = 0.0,
                                 double prior_mbit = 0.0);
  ScenarioBuilder& shadow_net(shadowsim::ShadowNetParams params,
                              std::uint64_t seed);
  ScenarioBuilder& synthetic(analysis::PopulationParams params, int relays,
                             double prior_fraction = 0.0);

  ScenarioBuilder& topology(TopologySpec topology);
  /// Shortcut: tiered path model with `tiers` tiers and default table.
  ScenarioBuilder& tiered_topology(int tiers = 1);
  ScenarioBuilder& speedtest(SpeedTestWindow window);

  ScenarioBuilder& measurers(std::vector<std::string> names);
  ScenarioBuilder& measurer_capacities(std::vector<double> capacity_bits);

  ScenarioBuilder& liars(double fraction);
  ScenarioBuilder& forgers(double fraction);
  ScenarioBuilder& background_utilization(double mean, double sd = 0.0);

  ScenarioBuilder& params(core::Params params);
  ScenarioBuilder& schedule(campaign::ScheduleMode mode);
  ScenarioBuilder& periods(int periods);
  ScenarioBuilder& threads(int threads);
  ScenarioBuilder& shard_slots(int shard_slots);
  ScenarioBuilder& seed(std::uint64_t seed);
  ScenarioBuilder& record_outcomes(bool on = true);
  ScenarioBuilder& faults(fault::FaultSpec faults);

  /// Validates and returns the spec; throws std::invalid_argument.
  ScenarioSpec build() const;

 private:
  ScenarioSpec spec_;
};

/// A spec turned into concrete simulation objects: an owned topology, the
/// campaign population (behaviors and priors applied), and the resolved
/// measurer hosts.
struct MaterializedScenario {
  net::Topology topology;
  std::vector<campaign::CampaignRelay> relays;
  std::vector<net::HostId> measurer_hosts;
  /// Capacity overrides aligned with measurer_hosts (empty: iPerf mesh).
  std::vector<double> measurer_capacity_bits;
  /// Relay fingerprints, aligned with `relays` (bandwidth-file emission).
  std::vector<std::string> fingerprints;
};

/// Schedule-only dry run: how would this population pack into a period?
/// Computed without materializing a topology, so it scales to full-network
/// populations (§7's 6,419 relays) whose dense path matrices would not fit
/// in memory. Requires team capacity overrides in the spec.
struct PlanResult {
  int relays = 0;
  double total_prior_bits = 0.0;
  double team_capacity_bits = 0.0;
  /// f * z0 summed over the population.
  double total_requirement_bits = 0.0;
  /// kGreedyPack: slots_used == slots_in_period == the packing length.
  /// kRandomized: slots_in_period is the whole period, slots_used the
  /// number of occupied slots.
  int slots_in_period = 0;
  int slots_used = 0;
  /// Back-to-back measurement time (greedy) or the full period span.
  double simulated_seconds = 0.0;
};

/// A materialized, runnable scenario: one measurement period.
/// Materialization and team resolution happen lazily, so plan() never
/// builds a topology. Not copyable (the campaign runner holds references
/// into the materialization).
class Scenario {
 public:
  explicit Scenario(ScenarioSpec spec);  // validates
  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  const ScenarioSpec& spec() const { return spec_; }

  /// Lays the population out into slots without running any measurement.
  PlanResult plan() const;

  /// Streams one period through `sink` (campaign::CampaignRunner::run).
  campaign::RunStats run(campaign::SlotSink& sink) const;
  /// Batch convenience: one period, aggregated in memory.
  campaign::CampaignResult run() const;

  const MaterializedScenario& materialized() const;
  const campaign::CampaignRunner& runner() const;

  /// Attaches a telemetry recorder (borrowed; must outlive every run).
  /// Call before the first run()/runner() — the campaign config is built
  /// lazily and snapshots the pointer. Null (the default) keeps every
  /// instrumentation site skipped.
  void set_telemetry(telemetry::Recorder* recorder) { telemetry_ = recorder; }

  /// The scheduling priors z0 this scenario starts from, aligned with the
  /// population (what plan() packs and period 0 allocates by). Computed
  /// once, without materializing a topology.
  const std::vector<double>& prior_capacities() const;

 private:
  ScenarioSpec spec_;
  mutable std::unique_ptr<MaterializedScenario> materialized_;
  mutable std::unique_ptr<campaign::CampaignRunner> runner_;
  mutable std::unique_ptr<std::vector<double>> priors_;
  telemetry::Recorder* telemetry_ = nullptr;
};

/// Materializes a spec into topology + population (exposed for callers
/// that drive the campaign engine directly).
MaterializedScenario materialize(const ScenarioSpec& spec);

/// Resolves the team's per-measurer capacities: the spec's overrides, or
/// the §4.2 iPerf mesh over the materialized topology. Deterministic in
/// the spec alone (the mesh seed is derived from spec.seed, not from any
/// period), so Scenario and Experiment agree on the team.
std::vector<double> resolve_team_capacities(const ScenarioSpec& spec,
                                            const MaterializedScenario& mat);

/// The campaign seed for one measurement period of a scenario: period 0 is
/// what Scenario::run uses; Experiment advances through periods 0..n-1.
/// Deterministic, and distinct across periods so every period draws a
/// fresh secret schedule (§4.3).
std::uint64_t period_seed(const ScenarioSpec& spec, int period);

/// The §3.4 relay speed-test experiment (Fig 5) over a scenario's
/// synthetic population: floods every live relay to capacity for the test
/// window and tracks the observed-bandwidth capacity proxy and TorFlow
/// weight error around it. The window comes from spec.speedtest
/// (defaults apply when absent). Requires a SyntheticPopulationSpec (the
/// experiment runs on the §3 archive machinery, not on measurement
/// slots); the spec's relay count seeds the initial live population.
/// Spec fields the archive experiment cannot honor (adversary mix,
/// background model, team, topology, periods, record_outcomes,
/// prior_fraction) are rejected with std::invalid_argument rather than
/// silently dropped.
analysis::SpeedTestResult run_speed_test(const ScenarioSpec& spec);

}  // namespace flashflow::scenario
