// Multi-period measurement experiments (§4.3's feedback loop).
//
// FlashFlow measures every relay once per period, and this period's
// estimates become next period's scheduling/allocation priors z0. The
// batch campaign engine runs one period; Experiment drives the loop:
//
//   priors(0) = population priors (advertised bandwidth, configured z0,
//               or the oracle)
//   for p in 0..periods-1:
//     result(p) = campaign over priors(p) with a fresh secret schedule
//     priors(p+1) = estimates from result(p) (accepted relays only)
//
// so a population whose priors start badly wrong converges: the §4.2
// allocation grants f * z0 ≈ 2.95 z0, which lets an underestimated relay's
// estimate grow geometrically period over period until it reaches true
// capacity.
//
// At each period end the results can be emitted as a Tor bandwidth file
// (tor/bandwidth_file.h) — the artifact a production BWAuth hands to the
// DirAuths once per period.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "scenario/scenario.h"
#include "tor/bandwidth_file.h"

namespace flashflow::scenario {

class Experiment {
 public:
  /// Validates and materializes the spec. spec.periods controls how many
  /// periods run() executes.
  explicit Experiment(ScenarioSpec spec);
  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  struct PeriodRecord {
    int period = 0;
    campaign::CampaignSummary summary;
    campaign::RunStats stats;
  };

  struct Result {
    /// One record per started period; a cancelled period's record is last
    /// (its stats.cancelled is set) and covers only the delivered slots.
    std::vector<PeriodRecord> periods;
    /// Full per-relay results of the last *completed* period. Default
    /// (empty relays) when the very first period was cancelled — check
    /// `cancelled` before relying on it.
    campaign::CampaignResult final_period;
    /// True when a sink cancelled mid-experiment; later periods were
    /// skipped.
    bool cancelled = false;
  };

  /// Observer called after each period with its record and full results.
  using PeriodHook = std::function<void(const PeriodRecord& record,
                                        const campaign::CampaignResult&)>;

  /// Runs every period, feeding estimates forward as priors. When `sink`
  /// is non-null each period's slots additionally stream through it (its
  /// begin() fires once per period; CsvSink/JsonlSink tag rows with the
  /// period index). Deterministic in the spec and independent of
  /// spec.threads, including the streamed bytes.
  Result run(campaign::SlotSink* sink = nullptr,
             const PeriodHook& hook = {});

  /// One period's results as a FlashFlow bandwidth file (weight ==
  /// capacity); relays that failed verification are omitted.
  tor::BandwidthFile bandwidth_file(
      const campaign::CampaignResult& period_result) const;

  /// Serialized bandwidth file, timestamped at the period's end.
  std::string bandwidth_file_text(
      int period, const campaign::CampaignResult& period_result) const;

  const ScenarioSpec& spec() const { return spec_; }
  const MaterializedScenario& materialized() const { return materialized_; }
  /// Resolved per-measurer capacities (override or iPerf mesh), shared by
  /// every period.
  const std::vector<double>& measurer_capacities() const {
    return measurer_caps_;
  }

  /// Attaches a telemetry recorder (borrowed; must outlive run()). Every
  /// period's campaign shares it: the recorder's shards accumulate across
  /// periods. Null (the default) keeps every instrumentation site skipped.
  void set_telemetry(telemetry::Recorder* recorder) { telemetry_ = recorder; }

 private:
  ScenarioSpec spec_;
  MaterializedScenario materialized_;
  std::vector<double> measurer_caps_;
  telemetry::Recorder* telemetry_ = nullptr;
};

}  // namespace flashflow::scenario
