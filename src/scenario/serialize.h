// Scenario files: ScenarioSpec <-> a flat YAML-subset text format.
//
// A scenario file is the declarative, checked-in form of a ScenarioSpec —
// the artifact `flashflow run scenario.yaml` executes (tools/flashflow).
// The format is a deliberate subset of YAML so files read naturally next
// to Shadow's experiment configs while the parser stays dependency-free
// and strict:
//
//   # comments run to end of line ('#' at start of line or after a space)
//   name: golden
//   population: synthetic          # table1 | shadow | synthetic
//   synthetic.relays: 40
//   synthetic.prior_fraction: 0.8
//   team.capacity_bits: [8e8, 8e8, 8e8]
//   adversaries.liar_fraction: 0.1
//   schedule: randomized           # greedy_pack | randomized
//   seed: 20210613
//
// One `key: value` per line; nesting is spelled with dotted keys; lists
// are inline `[a, b, c]`. Every diagnostic names the source, line, and key
// ("golden.yaml:7: key 'periods': expected an integer, got 'two'"), and
// the parser is strict end to end: unknown keys, duplicate keys, type
// mismatches, partial numeric tokens ("12junk"), and keys that do not
// apply to the declared population source are all errors, never warnings.
//
// Round-trip fidelity: parse(serialize(spec)) == spec for every valid
// spec. serialize() emits every field explicitly (doubles in shortest
// round-trip form), so the emitted file doubles as a normalized archival
// record of an experiment; parsing accepts any subset of keys, with
// absent keys keeping their ScenarioSpec defaults.
#pragma once

#include <string>
#include <vector>

#include "scenario/scenario.h"

namespace flashflow::scenario {

/// Serializes a validated spec to the scenario-file text form. The output
/// parses back to an equal spec (round-trip fidelity).
std::string serialize_scenario(const ScenarioSpec& spec);

/// Parses scenario-file text and validates the result
/// (ScenarioSpec::validate). `source` names the input in diagnostics
/// (a path, "<stdin>", ...). Throws std::invalid_argument with
/// "<source>:<line>: ..." messages on malformed input.
ScenarioSpec parse_scenario(const std::string& text,
                            const std::string& source = "scenario");

/// Reads and parses one scenario file; diagnostics carry the path.
ScenarioSpec load_scenario_file(const std::string& path);

/// One file's outcome from check_scenario_files.
struct FileCheck {
  std::string path;
  bool ok = false;
  /// The parsed spec's name when ok.
  std::string name;
  /// Empty when ok; otherwise the located diagnostic
  /// ("<path>:<line>: ..." or "cannot open scenario file: ...").
  std::string detail;
};

/// Parses and validates every listed file, never stopping at a failure,
/// so one run surfaces every broken file's diagnostic (`flashflow
/// validate a.yaml b.yaml`). Results align with `paths`.
std::vector<FileCheck> check_scenario_files(
    const std::vector<std::string>& paths);

/// The checked-in scenario directory (`scenarios/` in the source tree,
/// baked in at build time), for examples/benches/tests that load their
/// spec from a file by default.
std::string default_scenario_dir();

}  // namespace flashflow::scenario
