// TorFlow baseline (Perry 2009; paper §2, §3).
//
// TorFlow builds 2-hop circuits through each relay and downloads one of 13
// fixed-size files (2^i KiB, i in 4..16), producing a measured speed. Every
// hour it computes each relay's speed ratio (relay speed / network mean
// speed) and multiplies it by the relay's *self-reported* advertised
// bandwidth to obtain the consensus weight.
//
// Because the advertised bandwidth is self-reported, a malicious relay can
// inflate its weight essentially arbitrarily (89x-177x demonstrated in the
// literature); and because measured speeds ride on live circuits shared
// with client traffic and a random helper relay, the ratios are noisy.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/random.h"
#include "tor/authority.h"

namespace flashflow::torflow {

struct TorFlowRelay {
  std::string fingerprint;
  double true_capacity_bits = 0;
  /// Self-reported advertised bandwidth (min(observed, rate limit)); a
  /// malicious relay may report any value.
  double advertised_bits = 0;
  /// Fraction of capacity consumed by client traffic during measurement.
  double utilization = 0.5;
};

struct TorFlowParams {
  /// File sizes 2^i KiB for i in [min_file_exp, max_file_exp] (§2).
  int min_file_exp = 4;
  int max_file_exp = 16;
  /// Log-normal sigma of the per-measurement speed noise (helper relay,
  /// client cross traffic, TCP dynamics).
  double speed_noise_sigma = 0.35;
  /// Scanner download bandwidth (Table 2: 1 Gbit/s).
  double scanner_bw_bits = 1e9;
  /// Per-circuit download speed ceiling: measurement circuits ride a
  /// random helper relay and shared scanner circuits, so download speeds
  /// saturate well below fast relays' capacity.
  double circuit_speed_ceiling_bits = 100e6;
  /// Target download duration used to pick the file size for a relay.
  double target_download_s = 30.0;
};

class TorFlow {
 public:
  TorFlow(TorFlowParams params, std::uint64_t seed);

  /// Measured speed of one relay through a 2-hop circuit (bits/s).
  double measure_speed(const TorFlowRelay& relay);

  /// Picks the largest file size (bytes) downloadable within the target
  /// duration at the given speed, out of the 13 fixed sizes.
  double pick_file_bytes(double speed_bits) const;

  /// One full scan: measures every relay and produces a bandwidth file of
  /// weights (advertised * speed-ratio). No capacity values: TorFlow only
  /// infers them indirectly (Table 2).
  tor::BandwidthFile scan(std::span<const TorFlowRelay> relays);

  /// Time for one serial scanner to measure all relays (Table 2 "Speed").
  double scan_duration_days(std::span<const TorFlowRelay> relays);

 private:
  TorFlowParams params_;
  sim::Rng rng_;
};

/// Weight-inflation attack: the malicious relay self-reports
/// `lie_factor` times its honest advertised bandwidth. Returns the ratio of
/// its normalized consensus weight to the honest baseline.
double advertised_bandwidth_attack_advantage(
    std::span<const TorFlowRelay> honest_network, std::size_t attacker_index,
    double lie_factor, const TorFlowParams& params, std::uint64_t seed);

}  // namespace flashflow::torflow
