#include "torflow/torflow.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "metrics/stats.h"
#include "net/units.h"

namespace flashflow::torflow {

TorFlow::TorFlow(TorFlowParams params, std::uint64_t seed)
    : params_(params), rng_(seed) {}

double TorFlow::measure_speed(const TorFlowRelay& relay) {
  // The measurement circuit shares the relay with client traffic; the
  // available bandwidth for the download is roughly the uncongested share,
  // further multiplied by a heavy-tailed noise factor for the helper relay
  // and network conditions.
  const double available =
      relay.true_capacity_bits * std::max(0.05, 1.0 - relay.utilization);
  const double noise =
      rng_.log_normal(-0.5 * params_.speed_noise_sigma * params_.speed_noise_sigma,
                      params_.speed_noise_sigma);
  return std::min({available * noise, params_.circuit_speed_ceiling_bits,
                   params_.scanner_bw_bits});
}

double TorFlow::pick_file_bytes(double speed_bits) const {
  double best = net::kib(std::pow(2.0, params_.min_file_exp));
  for (int e = params_.min_file_exp; e <= params_.max_file_exp; ++e) {
    const double bytes = net::kib(std::pow(2.0, e));
    if (net::bits_from_bytes(bytes) / std::max(speed_bits, 1.0) <=
        params_.target_download_s)
      best = bytes;
  }
  return best;
}

tor::BandwidthFile TorFlow::scan(std::span<const TorFlowRelay> relays) {
  if (relays.empty()) return {};
  std::vector<double> speeds;
  speeds.reserve(relays.size());
  for (const auto& r : relays) speeds.push_back(measure_speed(r));
  const double mean_speed = metrics::mean(metrics::as_span(speeds));

  tor::BandwidthFile file;
  file.reserve(relays.size());
  for (std::size_t i = 0; i < relays.size(); ++i) {
    tor::BandwidthFileEntry e;
    e.fingerprint = relays[i].fingerprint;
    const double ratio = speeds[i] / mean_speed;
    e.weight = relays[i].advertised_bits * ratio;
    e.capacity_bits = 0.0;  // TorFlow produces no direct capacity values
    file.push_back(std::move(e));
  }
  return file;
}

double TorFlow::scan_duration_days(std::span<const TorFlowRelay> relays) {
  double total_s = 0.0;
  for (const auto& r : relays) {
    const double speed = measure_speed(r);
    const double bytes = pick_file_bytes(speed);
    // Circuit build + download; floor models per-measurement overhead
    // (circuit construction, slice bookkeeping, inter-measurement gaps).
    total_s +=
        std::max(20.0, net::bits_from_bytes(bytes) / std::max(speed, 1e3));
  }
  return total_s / (24.0 * 3600.0);
}

double advertised_bandwidth_attack_advantage(
    std::span<const TorFlowRelay> honest_network, std::size_t attacker_index,
    double lie_factor, const TorFlowParams& params, std::uint64_t seed) {
  if (attacker_index >= honest_network.size())
    throw std::out_of_range("attack: bad attacker index");

  const auto normalized_weight = [](const tor::BandwidthFile& file,
                                    std::size_t index) {
    double total = 0.0;
    for (const auto& e : file) total += e.weight;
    return file[index].weight / total;
  };

  // Same measurement noise in both scans so the advantage isolates the lie.
  TorFlow honest_scan(params, seed);
  const auto honest_file = honest_scan.scan(honest_network);

  std::vector<TorFlowRelay> attacked(honest_network.begin(),
                                     honest_network.end());
  attacked[attacker_index].advertised_bits *= lie_factor;
  TorFlow attacked_scan(params, seed);
  const auto attacked_file = attacked_scan.scan(attacked);

  return normalized_weight(attacked_file, attacker_index) /
         normalized_weight(honest_file, attacker_index);
}

}  // namespace flashflow::torflow
