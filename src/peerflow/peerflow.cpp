#include "peerflow/peerflow.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "net/units.h"

namespace flashflow::peerflow {

TrafficMatrix honest_traffic(std::span<const PeerFlowRelay> relays,
                             double period_seconds, sim::Rng& rng) {
  const std::size_t n = relays.size();
  TrafficMatrix m;
  m.n = n;
  m.bytes.assign(n * n, 0.0);

  // Utilized forwarding rate of each relay.
  std::vector<double> used(n);
  double total_used = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    used[i] = relays[i].true_capacity_bits * relays[i].utilization;
    total_used += used[i];
  }
  if (total_used <= 0.0) return m;

  // Pair (i, j) carries traffic proportional to used_i * used_j / total —
  // the expected co-occurrence of both relays on circuits.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double rate = used[i] * used[j] / total_used;
      const double noise = rng.uniform(0.9, 1.1);
      m.bytes[i * n + j] =
          net::bytes_from_bits(rate) * period_seconds * noise;
    }
  }
  return m;
}

void apply_inflation_strategy(TrafficMatrix& traffic,
                              std::span<const PeerFlowRelay> relays,
                              double period_seconds) {
  const std::size_t n = relays.size();
  std::vector<std::size_t> trusted_idx;
  for (std::size_t i = 0; i < n; ++i)
    if (relays[i].trusted) trusted_idx.push_back(i);
  if (trusted_idx.empty()) return;

  for (std::size_t i = 0; i < n; ++i) {
    if (!relays[i].malicious) continue;
    // The malicious relay redirects its full capacity to trusted peers for
    // the entire period; each direction is observed, doubling the credit.
    const double bytes_total =
        net::bytes_from_bits(relays[i].true_capacity_bits) * period_seconds;
    const double per_trusted =
        bytes_total / static_cast<double>(trusted_idx.size());
    for (const std::size_t t : trusted_idx) {
      // Trusted relays truthfully observe this traffic in both directions.
      traffic.bytes[i * n + t] = per_trusted;
      traffic.bytes[t * n + i] = per_trusted;
    }
  }
}

std::vector<double> compute_weights(const TrafficMatrix& traffic,
                                    std::span<const PeerFlowRelay> relays,
                                    const PeerFlowParams& params) {
  const std::size_t n = relays.size();
  if (traffic.n != n)
    throw std::invalid_argument("compute_weights: size mismatch");
  std::vector<double> weights(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double credited = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (i == j || !relays[i].trusted) continue;
      // Reports about j from trusted relays cannot be faked; both
      // directions are counted (send + receive).
      credited += traffic.at(i, j) + traffic.at(j, i);
    }
    weights[j] = credited / params.trusted_weight_fraction;
  }
  return weights;
}

std::vector<double> apply_growth_cap(std::span<const double> new_weights,
                                     std::span<const double> old_weights,
                                     const PeerFlowParams& params) {
  if (new_weights.size() != old_weights.size())
    throw std::invalid_argument("apply_growth_cap: size mismatch");
  std::vector<double> out(new_weights.begin(), new_weights.end());
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (old_weights[i] > 0.0)
      out[i] = std::min(out[i], old_weights[i] * params.max_growth_factor);
  }
  return out;
}

double inflation_advantage(std::span<const PeerFlowRelay> relays,
                           const PeerFlowParams& params, std::uint64_t seed) {
  sim::Rng rng(seed);
  const double period_s = params.period_days * 24 * 3600;
  TrafficMatrix traffic = honest_traffic(relays, period_s, rng);
  apply_inflation_strategy(traffic, relays, period_s);
  const auto weights = compute_weights(traffic, relays, params);

  double mal_weight = 0.0, total_weight = 0.0;
  double mal_cap = 0.0, total_cap = 0.0;
  for (std::size_t i = 0; i < relays.size(); ++i) {
    total_weight += weights[i];
    total_cap += relays[i].true_capacity_bits;
    if (relays[i].malicious) {
      mal_weight += weights[i];
      mal_cap += relays[i].true_capacity_bits;
    }
  }
  if (mal_cap <= 0.0 || total_weight <= 0.0)
    throw std::invalid_argument("inflation_advantage: no malicious capacity");
  return (mal_weight / total_weight) / (mal_cap / total_cap);
}

tor::BandwidthFile to_bandwidth_file(std::span<const PeerFlowRelay> relays,
                                     std::span<const double> weights) {
  if (relays.size() != weights.size())
    throw std::invalid_argument("to_bandwidth_file: size mismatch");
  tor::BandwidthFile file;
  file.reserve(relays.size());
  for (std::size_t i = 0; i < relays.size(); ++i) {
    tor::BandwidthFileEntry e;
    e.fingerprint = relays[i].fingerprint;
    e.weight = weights[i];
    e.capacity_bits = weights[i];  // lower-bound capacity estimate
    file.push_back(std::move(e));
  }
  return file;
}

}  // namespace flashflow::peerflow
