// PeerFlow baseline (Johnson et al., PoPETs 2017; paper §8).
//
// Relays periodically report the total bytes they exchanged with each other
// relay; the directory authorities securely aggregate the reports into
// weights. Security rests on a trusted fraction tau of relay weight whose
// reports cannot be faked: a malicious relay's credited traffic is capped by
// what *trusted* relays observed with it, so its weight inflation is
// bounded by roughly 2/tau (it can claim both directions of the traffic it
// actually pushed through trusted peers). PeerFlow additionally caps how
// fast any relay's weight can grow between periods (factor ~4.5 with the
// suggested parameters).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/random.h"
#include "tor/authority.h"

namespace flashflow::peerflow {

struct PeerFlowParams {
  /// Fraction of total weight held by trusted relays (tau).
  double trusted_weight_fraction = 0.2;
  /// Per-period weight growth cap (Theorem 1 of the PeerFlow paper: 4.5x
  /// with suggested parameters).
  double max_growth_factor = 4.5;
  /// Measurement period length in days (Table 2: 14+ days to cover the
  /// largest 96.8% of relays).
  double period_days = 14.0;
};

struct PeerFlowRelay {
  std::string fingerprint;
  double true_capacity_bits = 0;
  double utilization = 0.5;  // fraction of capacity carrying client traffic
  bool trusted = false;
  bool malicious = false;
};

/// Pairwise traffic tallies for one period; bytes[i*n+j] is the traffic
/// relay i reports having exchanged with relay j.
struct TrafficMatrix {
  std::size_t n = 0;
  std::vector<double> bytes;
  double at(std::size_t i, std::size_t j) const { return bytes[i * n + j]; }
};

/// Generates an honest period of traffic: relay pairs exchange traffic
/// proportional to the product of their utilized capacities.
TrafficMatrix honest_traffic(std::span<const PeerFlowRelay> relays,
                             double period_seconds, sim::Rng& rng);

/// The malicious strategy behind the 2/tau bound: each malicious relay
/// directs its entire real capacity at trusted peers for the whole period
/// (instead of the utilized fraction) and claims both directions.
void apply_inflation_strategy(TrafficMatrix& traffic,
                              std::span<const PeerFlowRelay> relays,
                              double period_seconds);

/// Computes per-relay weights: each relay is credited the traffic that
/// *trusted* relays report having exchanged with it, scaled by 1/tau
/// (trusted relays see approximately a tau fraction of everyone's traffic).
std::vector<double> compute_weights(const TrafficMatrix& traffic,
                                    std::span<const PeerFlowRelay> relays,
                                    const PeerFlowParams& params);

/// Applies the per-period growth cap against previous weights.
std::vector<double> apply_growth_cap(std::span<const double> new_weights,
                                     std::span<const double> old_weights,
                                     const PeerFlowParams& params);

/// Normalized-weight advantage of the malicious coalition relative to its
/// fair (capacity) share. Approaches 2/tau.
double inflation_advantage(std::span<const PeerFlowRelay> relays,
                           const PeerFlowParams& params, std::uint64_t seed);

/// Bandwidth file from weights (PeerFlow also yields capacity lower bounds:
/// the credited traffic itself — Table 2 half-filled circle).
tor::BandwidthFile to_bandwidth_file(std::span<const PeerFlowRelay> relays,
                                     std::span<const double> weights);

}  // namespace flashflow::peerflow
