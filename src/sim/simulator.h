// Discrete-event simulator: a clock plus an event queue.
//
// Components schedule callbacks; run() advances the clock to each event in
// order. There is no real-time element: a multi-hour "Tor day" simulates in
// milliseconds of wall time when event counts are modest.
#pragma once

#include <functional>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace flashflow::sim {

class Simulator {
 public:
  /// Current simulation time.
  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `when` (must be >= now()).
  EventId schedule_at(SimTime when, std::function<void()> fn);

  /// Schedules `fn` after `delay` (must be >= 0).
  EventId schedule_in(SimDuration delay, std::function<void()> fn);

  /// Schedules `fn` every `interval`, starting at now() + interval, until it
  /// returns false or stop() is called. Returns the id of the first firing.
  EventId schedule_every(SimDuration interval, std::function<bool()> fn);

  /// Cancels a pending event.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the queue drains or stop() is called.
  void run();

  /// Runs until the queue drains, stop() is called, or the clock would pass
  /// `deadline`; the clock finishes exactly at `deadline` if events remain.
  void run_until(SimTime deadline);

  /// Stops the run loop after the current event completes.
  void stop() { stopped_ = true; }

  /// True if a stop was requested during the last run.
  bool stopped() const { return stopped_; }

  /// Number of events dispatched so far (diagnostics/tests).
  std::uint64_t events_dispatched() const { return dispatched_; }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  bool stopped_ = false;
  std::uint64_t dispatched_ = 0;
};

}  // namespace flashflow::sim
