#include "sim/random.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace flashflow::sim {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_tag(std::string_view tag) {
  return hash_tag(tag, 0xcbf29ce484222325ULL);
}

std::uint64_t hash_tag(std::string_view tag, std::uint64_t basis) {
  std::uint64_t h = basis;
  for (const char c : tag) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // SplitMix64 expansion guarantees a non-zero state even for seed == 0.
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::fork(std::string_view tag) const { return fork(hash_tag(tag)); }

Rng Rng::fork(std::uint64_t tag_hash) const {
  // Combine current state with the tag hash; the copy advances so forks from
  // the same parent with different tags are independent.
  std::uint64_t seed = state_[0] ^ rotl(state_[3], 13) ^ tag_hash;
  return Rng(seed);
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~0ULL) - (~0ULL) % range;
  std::uint64_t draw{};
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % range);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) {
  if (mean <= 0.0) throw std::invalid_argument("exponential: mean <= 0");
  double u{};
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

std::pair<double, double> Rng::normal_pair() {
  double u1{};
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  // sin and cos of the same angle: the compiler fuses these into one
  // sincos call on libm targets (an exact transform, so the values stay
  // bit-identical to separate calls).
  return {radius * std::cos(theta), radius * std::sin(theta)};
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  const auto [first, second] = normal_pair();
  cached_normal_ = second;
  has_cached_normal_ = true;
  return first;
}

void Rng::normal_fill(std::span<double> out) {
  std::size_t i = 0;
  if (i < out.size() && has_cached_normal_) {
    has_cached_normal_ = false;
    out[i++] = cached_normal_;
  }
  while (i + 2 <= out.size()) {
    const auto [first, second] = normal_pair();
    out[i++] = first;
    out[i++] = second;
  }
  if (i < out.size()) {
    const auto [first, second] = normal_pair();
    out[i] = first;
    cached_normal_ = second;
    has_cached_normal_ = true;
  }
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::log_normal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto(double xm, double alpha) {
  if (xm <= 0.0 || alpha <= 0.0)
    throw std::invalid_argument("pareto: xm and alpha must be positive");
  double u{};
  do {
    u = uniform();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  if (weights.empty()) throw std::invalid_argument("weighted_index: empty");
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0) throw std::invalid_argument("weighted_index: negative");
    total += w;
  }
  if (total <= 0.0)
    throw std::invalid_argument("weighted_index: zero total weight");
  double draw = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point edge: last positive entry
}

}  // namespace flashflow::sim
