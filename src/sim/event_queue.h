// Priority event queue for the discrete-event simulator.
//
// Events fire in (time, insertion order) order, which makes simulations
// deterministic even when many events share a timestamp. Cancellation is
// O(1) amortized: cancelled entries are tombstoned and skipped on pop.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace flashflow::sim {

/// Opaque handle identifying a scheduled event; usable to cancel it.
using EventId = std::uint64_t;

/// Min-heap of timestamped callbacks with stable FIFO tie-breaking.
class EventQueue {
 public:
  /// Schedules `fn` to fire at absolute time `when`. Returns a handle that
  /// can be passed to cancel().
  EventId schedule(SimTime when, std::function<void()> fn);

  /// Cancels a pending event. Cancelling an already-fired or unknown id is a
  /// no-op (returns false).
  bool cancel(EventId id);

  /// True if no live events remain.
  bool empty() const { return live_count_ == 0; }

  /// Number of live (non-cancelled, non-fired) events.
  std::size_t size() const { return live_count_; }

  /// Timestamp of the earliest live event. Requires !empty().
  SimTime next_time() const;

  /// Pops and returns the earliest live event. Requires !empty().
  struct Event {
    SimTime time = 0;
    EventId id = 0;
    std::function<void()> fn;
  };
  Event pop();

 private:
  struct Entry {
    SimTime time = 0;
    std::uint64_t seq = 0;  // insertion order; breaks timestamp ties
    EventId id = 0;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void drop_dead_entries() const;

  // heap_ and cancelled_ are mutable so that lazily dropping tombstoned
  // entries (a pure cleanup) can happen from const observers.
  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  // FFCHECK(ND06): membership tests and erase-by-id only; firing order is
  // decided by heap_'s (time, seq) ordering, never by hash order.
  mutable std::unordered_set<EventId> cancelled_;
  // Callbacks live outside the heap so Entry stays trivially copyable.
  // FFCHECK(ND06): find/erase by EventId only; never iterated, so hash
  // order cannot influence which callback fires when.
  std::unordered_map<EventId, std::function<void()>> callbacks_;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::size_t live_count_ = 0;
};

}  // namespace flashflow::sim
