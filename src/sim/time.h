// Simulation time primitives.
//
// All simulation clocks in this project use integer microseconds so that
// event ordering is exact and runs are bit-for-bit reproducible. Helpers
// convert to/from floating-point seconds at the edges (reporting, rate
// computations) only.
#pragma once

#include <cstdint>

namespace flashflow::sim {

/// Absolute simulation time in microseconds since simulation start.
using SimTime = std::int64_t;

/// A span of simulation time in microseconds.
using SimDuration = std::int64_t;

inline constexpr SimDuration kMicrosecond = 1;
inline constexpr SimDuration kMillisecond = 1'000;
inline constexpr SimDuration kSecond = 1'000'000;
inline constexpr SimDuration kMinute = 60 * kSecond;
inline constexpr SimDuration kHour = 60 * kMinute;
inline constexpr SimDuration kDay = 24 * kHour;

/// Converts a floating-point second count to a SimDuration, rounding to the
/// nearest microsecond.
constexpr SimDuration from_seconds(double seconds) {
  return static_cast<SimDuration>(seconds * static_cast<double>(kSecond) +
                                  (seconds >= 0 ? 0.5 : -0.5));
}

/// Converts a SimTime/SimDuration to floating-point seconds.
constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

}  // namespace flashflow::sim
