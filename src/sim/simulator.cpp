#include "sim/simulator.h"

#include <memory>
#include <stdexcept>
#include <utility>

namespace flashflow::sim {

EventId Simulator::schedule_at(SimTime when, std::function<void()> fn) {
  if (when < now_)
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  return queue_.schedule(when, std::move(fn));
}

EventId Simulator::schedule_in(SimDuration delay, std::function<void()> fn) {
  if (delay < 0)
    throw std::invalid_argument("Simulator::schedule_in: negative delay");
  return queue_.schedule(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_every(SimDuration interval,
                                  std::function<bool()> fn) {
  if (interval <= 0)
    throw std::invalid_argument("Simulator::schedule_every: interval <= 0");
  // Each pending occurrence owns the task through the shared_ptr and, if
  // the task wants to continue, schedules a fresh copy of itself. Unlike
  // a self-referential heap closure (a shared_ptr cycle that LeakSanitizer
  // rightly flags), no object here strongly references itself, so the task
  // is freed as soon as its last pending occurrence is dispatched.
  struct Periodic {
    Simulator* sim;
    SimDuration interval;
    std::shared_ptr<std::function<bool()>> task;
    void operator()() const {
      if ((*task)()) sim->schedule_in(interval, *this);
    }
  };
  return queue_.schedule(
      now_ + interval,
      Periodic{this, interval,
               std::make_shared<std::function<bool()>>(std::move(fn))});
}

void Simulator::run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    auto ev = queue_.pop();
    now_ = ev.time;
    ++dispatched_;
    ev.fn();
  }
}

void Simulator::run_until(SimTime deadline) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.next_time() <= deadline) {
    auto ev = queue_.pop();
    now_ = ev.time;
    ++dispatched_;
    ev.fn();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace flashflow::sim
