#include "sim/simulator.h"

#include <memory>
#include <stdexcept>
#include <utility>

namespace flashflow::sim {

EventId Simulator::schedule_at(SimTime when, std::function<void()> fn) {
  if (when < now_)
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  return queue_.schedule(when, std::move(fn));
}

EventId Simulator::schedule_in(SimDuration delay, std::function<void()> fn) {
  if (delay < 0)
    throw std::invalid_argument("Simulator::schedule_in: negative delay");
  return queue_.schedule(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_every(SimDuration interval,
                                  std::function<bool()> fn) {
  if (interval <= 0)
    throw std::invalid_argument("Simulator::schedule_every: interval <= 0");
  // The periodic closure reschedules itself; shared_ptr lets it self-refer.
  auto task = std::make_shared<std::function<void()>>();
  auto body = [this, interval, fn = std::move(fn), task]() {
    if (fn()) queue_.schedule(now_ + interval, *task);
  };
  *task = body;
  return queue_.schedule(now_ + interval, *task);
}

void Simulator::run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    auto ev = queue_.pop();
    now_ = ev.time;
    ++dispatched_;
    ev.fn();
  }
}

void Simulator::run_until(SimTime deadline) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.next_time() <= deadline) {
    auto ev = queue_.pop();
    now_ = ev.time;
    ++dispatched_;
    ev.fn();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace flashflow::sim
