#include "sim/event_queue.h"

#include <stdexcept>
#include <utility>

namespace flashflow::sim {

EventId EventQueue::schedule(SimTime when, std::function<void()> fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{when, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  const auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  cancelled_.insert(id);
  --live_count_;
  return true;
}

void EventQueue::drop_dead_entries() const {
  while (!heap_.empty() && cancelled_.count(heap_.top().id) > 0) {
    cancelled_.erase(heap_.top().id);
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  drop_dead_entries();
  if (heap_.empty()) throw std::logic_error("EventQueue::next_time on empty");
  return heap_.top().time;
}

EventQueue::Event EventQueue::pop() {
  drop_dead_entries();
  if (heap_.empty()) throw std::logic_error("EventQueue::pop on empty");
  const Entry entry = heap_.top();
  heap_.pop();
  const auto it = callbacks_.find(entry.id);
  Event ev{entry.time, entry.id, std::move(it->second)};
  callbacks_.erase(it);
  --live_count_;
  return ev;
}

}  // namespace flashflow::sim
