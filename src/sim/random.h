// Deterministic random number generation for simulations.
//
// Every stochastic component takes an explicit Rng (or a seed) so that whole
// experiments replay identically. The generator is xoshiro256**, seeded via
// SplitMix64, which is fast, high quality, and trivially forkable into
// independent substreams.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

namespace flashflow::sim {

/// xoshiro256** pseudo-random generator with distribution helpers.
///
/// Satisfies UniformRandomBitGenerator so it can also be used with <random>
/// distributions, though the built-in helpers below are preferred for
/// reproducibility across standard-library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator deterministically from a 64-bit seed.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64 random bits.
  result_type operator()();

  /// Creates an independent substream; deterministic in (parent seed, tag).
  /// Use to give each simulated component its own stream so that adding a
  /// component does not perturb the draws seen by others.
  Rng fork(std::string_view tag) const;

  /// Hash-tag fork: identical to fork(tag) when `tag_hash == hash_tag(tag)`,
  /// but takes the precomputed hash so hot loops can fork per-component
  /// substreams without building a tag string (see hash_tag's basis
  /// overload for composing "name/suffix" tags incrementally).
  Rng fork(std::uint64_t tag_hash) const;

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);
  /// Exponential with given mean (mean > 0).
  double exponential(double mean);
  /// Standard normal via Box-Muller (cached pair).
  double normal();
  /// Normal with mean/stddev.
  double normal(double mean, double stddev);
  /// Fills `out` with standard normals: bit-identical values, in the same
  /// order and consuming the same raw draws, as out.size() successive
  /// normal() calls (the Box-Muller pair cache carries across batches).
  /// Hot loops that need a known number of gaussians — e.g. a slot's
  /// per-second jitter series — batch them here so the transcendentals
  /// (log/sqrt/sincos per pair) run back to back in one tight loop at
  /// setup instead of being scattered through the per-second simulation.
  void normal_fill(std::span<double> out);
  /// Log-normal: exp(N(mu, sigma)).
  double log_normal(double mu, double sigma);
  /// Pareto with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha);
  /// Picks an index in [0, weights.size()) proportionally to weights.
  /// Requires a non-empty vector with non-negative entries and positive sum.
  std::size_t weighted_index(const std::vector<double>& weights);
  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  /// One Box-Muller pair from two fresh uniforms (no cache interaction).
  std::pair<double, double> normal_pair();

  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// SplitMix64 step; exposed for seeding/hashing use in tests.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stable 64-bit FNV-1a hash of a string, for deriving substream seeds.
std::uint64_t hash_tag(std::string_view tag);

/// Continues an FNV-1a hash from `basis` (a previous hash_tag result), so
/// hash_tag(b, hash_tag(a)) == hash_tag(a + b) without concatenating. Lets
/// hot paths precompute the hash of a stable prefix (e.g. a relay name)
/// and append a suffix tag per use with no string allocation.
std::uint64_t hash_tag(std::string_view tag, std::uint64_t basis);

}  // namespace flashflow::sim
