#include "lint/rules.h"

#include <algorithm>
#include <set>

namespace flashflow::lint {

namespace {

const std::vector<RuleInfo> kRules = {
    {"ND01", "banned RNG call (std::rand family) — use sim::Rng"},
    {"ND02", "std::random_device reads ambient entropy"},
    {"ND03", "wall-clock read can reach results"},
    {"ND04", "getenv/setenv outside tests/"},
    {"ND05", "range-for over std::unordered_map/set (iteration order)"},
    {"ND06", "unordered container declaration needs a justification"},
    {"HP01", "new expression inside an FF_HOT region"},
    {"HP02", "allocation call inside an FF_HOT region"},
    {"HP03", "container growth call inside an FF_HOT region"},
    {"HP04", "string construction/concatenation inside an FF_HOT region"},
    {"FL01", "floating-point accumulation over an unordered container"},
    {"FF01", "unused FFCHECK suppression"},
    {"FF02", "FFCHECK suppression without a justification"},
    {"FF03", "malformed FFCHECK suppression or unknown rule"},
    {"FF04", "unbalanced FF_HOT_BEGIN/FF_HOT_END annotation"},
};

bool is_unordered_name(std::string_view s) {
  return s == "unordered_map" || s == "unordered_set" ||
         s == "unordered_multimap" || s == "unordered_multiset";
}

struct Runner {
  const std::vector<Token>& toks;
  const FileContext& ctx;
  std::vector<Diagnostic> diags;
  // Identifiers declared in this file with an unordered container type.
  std::set<std::string> unordered_vars;
  // Inclusive line ranges bracketed by FF_HOT_BEGIN/END comments.
  std::vector<std::pair<int, int>> hot_regions;

  const std::string& text(std::size_t i) const { return toks[i].text; }
  bool is_ident(std::size_t i, std::string_view s) const {
    return i < toks.size() && toks[i].kind == TokKind::kIdent &&
           toks[i].text == s;
  }
  bool is_punct(std::size_t i, std::string_view s) const {
    return i < toks.size() && toks[i].kind == TokKind::kPunct &&
           toks[i].text == s;
  }

  void report(int line, std::string_view rule, std::string message) {
    diags.push_back({line, std::string(rule), std::move(message)});
  }

  bool in_hot_region(int line) const {
    for (const auto& [b, e] : hot_regions)
      if (line >= b && line <= e) return true;
    return false;
  }

  // Skips a balanced <...> starting at the '<' at index i; returns the
  // index just past the closing '>'. ">>" closes two levels. Bails (returns
  // i + 1) if the angle bracket turns out to be a comparison.
  std::size_t skip_template_args(std::size_t i) const {
    int depth = 0;
    std::size_t j = i;
    while (j < toks.size()) {
      const Token& t = toks[j];
      if (t.kind == TokKind::kPunct) {
        if (t.text == "<") ++depth;
        else if (t.text == "<<") depth += 2;
        else if (t.text == ">") --depth;
        else if (t.text == ">>") depth -= 2;
        else if (t.text == ";" || t.text == "{") return i + 1;
      }
      ++j;
      if (depth <= 0) return j;
    }
    return j;
  }

  // Returns the index just past the ')' matching the '(' at index i.
  std::size_t skip_parens(std::size_t i) const {
    int depth = 0;
    std::size_t j = i;
    while (j < toks.size()) {
      if (is_punct(j, "(")) ++depth;
      else if (is_punct(j, ")")) --depth;
      ++j;
      if (depth <= 0) return j;
    }
    return j;
  }

  // Returns the index just past the '}' matching the '{' at index i.
  std::size_t skip_braces(std::size_t i) const {
    int depth = 0;
    std::size_t j = i;
    while (j < toks.size()) {
      if (is_punct(j, "{")) ++depth;
      else if (is_punct(j, "}")) --depth;
      ++j;
      if (depth <= 0) return j;
    }
    return j;
  }

  // True when the identifier at i is a bare (or std::-qualified) function
  // call — not a member access like `sim.time()` or `Foo::time()`.
  bool bare_call(std::size_t i) const {
    if (!is_punct(i + 1, "(")) return false;
    if (i == 0) return true;
    const Token& p = toks[i - 1];
    if (p.kind != TokKind::kPunct) return true;
    if (p.text == "." || p.text == "->") return false;
    if (p.text == "::")
      return i >= 2 && toks[i - 2].kind == TokKind::kIdent &&
             toks[i - 2].text == "std";
    return true;
  }

  // Region annotations must be the comment's first word, so a doc comment
  // that merely mentions FF_HOT_BEGIN never opens a phantom region.
  void collect_hot_regions(const std::vector<Comment>& comments) {
    int open_line = -1;
    for (const Comment& c : comments) {
      const bool begins = c.text.rfind("FF_HOT_BEGIN", 0) == 0;
      const bool ends = c.text.rfind("FF_HOT_END", 0) == 0;
      if (begins) {
        if (open_line >= 0)
          report(c.line, "FF04",
                 "FF_HOT_BEGIN while the region opened on line " +
                     std::to_string(open_line) + " is still open");
        else
          open_line = c.line;
      } else if (ends) {
        if (open_line < 0)
          report(c.line, "FF04", "FF_HOT_END without a matching BEGIN");
        else {
          hot_regions.emplace_back(open_line, c.end_line);
          open_line = -1;
        }
      }
    }
    if (open_line >= 0)
      report(open_line, "FF04", "FF_HOT_BEGIN never closed before EOF");
  }

  // Pass 1: find every unordered container mention. Each one is an ND06
  // finding (the declaration must justify why iteration order cannot reach
  // results), and the declared variable name — when one follows the
  // template arguments — feeds the ND05/FL01 iteration checks.
  void collect_unordered_decls() {
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdent || !is_unordered_name(text(i)))
        continue;
      if (ctx.nd_rules)
        report(toks[i].line, "ND06",
               "std::" + text(i) +
                   " declared; justify that its iteration order cannot "
                   "reach results (FFCHECK(ND06): ...)");
      std::size_t j = i + 1;
      if (is_punct(j, "<")) j = skip_template_args(j);
      while (is_punct(j, "&") || is_punct(j, "*") || is_punct(j, "&&") ||
             is_ident(j, "const"))
        ++j;
      if (j < toks.size() && toks[j].kind == TokKind::kIdent &&
          !is_punct(j + 1, "("))
        unordered_vars.insert(text(j));
    }
  }

  bool mentions_unordered(std::size_t begin, std::size_t end) const {
    for (std::size_t k = begin; k < end && k < toks.size(); ++k) {
      if (toks[k].kind != TokKind::kIdent) continue;
      if (is_unordered_name(text(k)) || unordered_vars.count(text(k)))
        return true;
    }
    return false;
  }

  // ND05 + FL01: range-for whose range names an unordered container, and
  // order-sensitive accumulation inside such a loop's body.
  void check_range_for(std::size_t i) {
    if (!is_punct(i + 1, "(")) return;
    const std::size_t close = skip_parens(i + 1);
    // Find the range-for ':' at parenthesis depth 1 (``::`` lexes as its
    // own token, so a qualified type never reads as the separator).
    int depth = 0;
    std::size_t colon = 0;
    for (std::size_t k = i + 1; k < close; ++k) {
      if (is_punct(k, "(")) ++depth;
      else if (is_punct(k, ")")) --depth;
      else if (depth == 1 && is_punct(k, ":")) {
        colon = k;
        break;
      }
    }
    if (colon == 0) return;  // classic for, not range-for
    if (!mentions_unordered(colon + 1, close - 1)) return;
    if (ctx.nd_rules)
      report(toks[i].line, "ND05",
             "range-for over an unordered container: iteration order is "
             "unspecified and can reach results");
    // Body: either a braced block or a single statement through ';'.
    std::size_t body_begin = close;
    std::size_t body_end = close;
    if (is_punct(close, "{")) {
      body_begin = close + 1;
      body_end = skip_braces(close) - 1;
    } else {
      while (body_end < toks.size() && !is_punct(body_end, ";")) ++body_end;
    }
    for (std::size_t k = body_begin; k < body_end; ++k) {
      if (is_punct(k, "+=") || is_punct(k, "-=") ||
          is_ident(k, "accumulate") || is_ident(k, "reduce"))
        report(toks[k].line, "FL01",
               "accumulation inside unordered-container iteration: "
               "floating-point sums depend on hash order");
    }
  }

  // FL01: std::accumulate/reduce fed from an unordered container outside a
  // range-for (e.g. accumulate(m.begin(), m.end(), 0.0)).
  void check_accumulate(std::size_t i) {
    if (!is_punct(i + 1, "(")) return;
    const std::size_t close = skip_parens(i + 1);
    for (std::size_t k = i + 2; k + 1 < close; ++k) {
      if (toks[k].kind == TokKind::kIdent && unordered_vars.count(text(k)) &&
          (is_punct(k + 1, ".") || is_punct(k + 1, "->"))) {
        report(toks[i].line, "FL01",
               "std::" + text(i) +
                   " over an unordered container: summation order depends "
                   "on hash layout");
        return;
      }
    }
  }

  void check_hot_token(std::size_t i) {
    const Token& t = toks[i];
    if (!in_hot_region(t.line)) return;
    if (t.kind == TokKind::kIdent) {
      const std::string& s = t.text;
      if (s == "new") {
        report(t.line, "HP01", "new expression in a zero-allocation region");
      } else if (s == "make_shared" || s == "make_unique" || s == "malloc" ||
                 s == "calloc" || s == "realloc" || s == "strdup" ||
                 s == "aligned_alloc") {
        report(t.line, "HP02", s + " allocates in a zero-allocation region");
      } else if (s == "push_back" || s == "emplace_back" || s == "emplace" ||
                 s == "push_front" || s == "insert") {
        report(t.line, "HP03",
               s + " may reallocate in a zero-allocation region");
      } else if (s == "to_string" || s == "stringstream" ||
                 s == "ostringstream" || s == "format" || s == "append") {
        report(t.line, "HP04",
               s + " builds strings in a zero-allocation region");
      } else if (s == "string" && i >= 2 && is_punct(i - 1, "::") &&
                 is_ident(i - 2, "std")) {
        report(t.line, "HP04",
               "std::string in a zero-allocation region");
      }
    } else if (t.kind == TokKind::kPunct &&
               (t.text == "+" || t.text == "+=")) {
      const bool lhs_str = i > 0 && toks[i - 1].kind == TokKind::kString;
      const bool rhs_str =
          i + 1 < toks.size() && toks[i + 1].kind == TokKind::kString;
      if (lhs_str || rhs_str)
        report(t.line, "HP04",
               "string concatenation in a zero-allocation region");
    }
  }

  void check_nd_token(std::size_t i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) return;
    const std::string& s = t.text;
    if (ctx.nd_rules) {
      if (s == "rand" || s == "srand" || s == "rand_r" || s == "drand48" ||
          s == "lrand48" || s == "mrand48" || s == "random_shuffle" ||
          (s == "random" && bare_call(i))) {
        report(t.line, "ND01",
               s + " is seeded ambiently; draw from sim::Rng instead");
      } else if (s == "random_device") {
        report(t.line, "ND02",
               "random_device reads ambient entropy; results must be a "
               "pure function of the configured seed");
      } else if (s == "system_clock" || s == "steady_clock" ||
                 s == "high_resolution_clock" || s == "gettimeofday" ||
                 s == "clock_gettime" || s == "timespec_get" ||
                 s == "localtime" || s == "gmtime" || s == "mktime" ||
                 s == "ctime" || s == "asctime" || s == "strftime" ||
                 ((s == "time" || s == "clock") && bare_call(i))) {
        report(t.line, "ND03",
               s + ": wall-clock reads must never feed result values "
                   "(justify timing-only uses with FFCHECK(ND03))");
      }
    }
    if (ctx.getenv_rule &&
        (s == "getenv" || s == "secure_getenv" || s == "putenv" ||
         s == "setenv" || s == "unsetenv")) {
      report(t.line, "ND04",
             s + ": environment reads belong in tests/, not in library or "
                 "tool code");
    }
  }

  void run(const LexResult& lexed) {
    collect_hot_regions(lexed.comments);
    collect_unordered_decls();
    for (std::size_t i = 0; i < toks.size(); ++i) {
      check_nd_token(i);
      check_hot_token(i);
      if (is_ident(i, "for")) check_range_for(i);
      if (is_ident(i, "accumulate") || is_ident(i, "reduce"))
        check_accumulate(i);
    }
    std::stable_sort(
        diags.begin(), diags.end(),
        [](const Diagnostic& a, const Diagnostic& b) { return a.line < b.line; });
  }
};

}  // namespace

const std::vector<RuleInfo>& all_rules() { return kRules; }

bool known_rule(std::string_view id) {
  for (const RuleInfo& r : kRules)
    if (r.id == id) return true;
  return false;
}

std::vector<Diagnostic> run_rules(const LexResult& lexed,
                                  const FileContext& ctx) {
  Runner runner{lexed.tokens, ctx, {}, {}, {}};
  runner.run(lexed);
  return std::move(runner.diags);
}

}  // namespace flashflow::lint
