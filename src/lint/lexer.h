// Minimal C++ lexer for the ffcheck static-analysis pass.
//
// ffcheck's rules operate on a token stream, never on raw text, so a
// banned identifier inside a string literal, a comment, or a raw string
// (R"(...)") can never produce a finding — and conversely a finding can
// never be hidden by creative spacing. The lexer is deliberately small:
// it classifies identifiers, numbers, string/char literals and
// punctuation, skips preprocessor directives (including backslash
// continuations), and records every comment verbatim so the driver can
// parse `// FFCHECK(RULE): reason` suppressions and `// FF_HOT_BEGIN` /
// `// FF_HOT_END` region annotations out of them.
//
// It follows the C++ phase-3 rules that matter for correctness here:
// block comments do not nest, raw-string delimiters are honoured
// (including u8R/uR/UR/LR prefixes), and '//' inside a string literal
// does not start a comment.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace flashflow::lint {

enum class TokKind {
  kIdent,   // identifiers and keywords
  kNumber,  // numeric literals (incl. hex/floats/digit separators)
  kString,  // string literals, raw or cooked, any encoding prefix
  kChar,    // character literals
  kPunct,   // operators and punctuation ("::", "+=", "(", ...)
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 0;  // 1-based line of the token's first character
};

struct Comment {
  int line = 0;      // 1-based line where the comment starts
  int end_line = 0;  // last line the comment touches (== line for //)
  bool block = false;
  std::string text;  // content without the // or /* */ markers, trimmed
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Tokenizes one translation unit's worth of source text. Never throws on
/// malformed input: an unterminated literal or comment simply ends at EOF,
/// which is the forgiving behaviour a linter wants.
LexResult lex(std::string_view source);

}  // namespace flashflow::lint
