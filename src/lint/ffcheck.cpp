#include "lint/ffcheck.h"

#include <algorithm>
#include <cctype>
#include <set>

namespace flashflow::lint {

namespace {

struct Suppression {
  int line = 0;      // line the comment starts on
  int end_line = 0;  // line the comment ends on (covers end_line + 1)
  std::string rule;
  bool used = false;
};

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

// Parses an FFCHECK suppression out of one comment. Only a comment whose
// text *starts* with the marker counts — a doc comment that merely
// mentions the syntax mid-sentence is never a suppression. Within a
// marker, malformed syntax and missing reasons surface as FF02/FF03
// diagnostics instead of being silently ignored: a typo'd suppression
// must never make a file look clean.
void parse_suppressions(const Comment& comment,
                        std::vector<Suppression>& out,
                        std::vector<Diagnostic>& diags) {
  const std::string& text = comment.text;  // already trimmed by the lexer
  if (text.rfind("FFCHECK", 0) != 0) return;
  std::size_t pos = 7;  // past "FFCHECK"
  if (pos >= text.size() || text[pos] != '(') {
    diags.push_back({comment.line, "FF03",
                     "malformed FFCHECK marker: expected "
                     "FFCHECK(RULE): reason"});
    return;
  }
  const std::size_t close = text.find(')', pos);
  if (close == std::string::npos) {
    diags.push_back(
        {comment.line, "FF03", "malformed FFCHECK marker: missing ')'"});
    return;
  }
  // Rule list between the parentheses, comma separated.
  std::vector<std::string> rules;
  std::size_t item = pos + 1;
  bool ok = true;
  while (item <= close) {
    std::size_t comma = text.find(',', item);
    if (comma == std::string::npos || comma > close) comma = close;
    const std::string id = trim(text.substr(item, comma - item));
    if (id.empty() || !known_rule(id)) {
      diags.push_back(
          {comment.line, "FF03",
           id.empty() ? "FFCHECK with an empty rule list"
                      : "FFCHECK names unknown rule '" + id + "'"});
      ok = false;
    } else {
      rules.push_back(id);
    }
    item = comma + 1;
  }
  if (close + 1 >= text.size() || text[close + 1] != ':') {
    diags.push_back({comment.line, "FF03",
                     "malformed FFCHECK marker: expected ':' after the "
                     "rule list"});
    return;
  }
  const std::string reason = trim(text.substr(close + 2));
  if (reason.empty()) {
    diags.push_back({comment.line, "FF02",
                     "FFCHECK suppression needs a written justification "
                     "after the ':' (see docs/determinism.md)"});
    return;
  }
  if (!ok) return;  // unknown rules already reported
  for (std::string& id : rules)
    out.push_back({comment.line, comment.end_line, std::move(id), false});
}

}  // namespace

FileContext context_for_path(std::string_view path) {
  FileContext ctx;
  // Walk the directory components; the first src/tests component wins so
  // "src/lint/x.cpp" and "/root/repo/src/lint/x.cpp" classify identically.
  std::size_t begin = 0;
  while (begin <= path.size()) {
    std::size_t end = path.find('/', begin);
    if (end == std::string_view::npos) end = path.size();
    const std::string_view part = path.substr(begin, end - begin);
    if (part == "src") {
      ctx.nd_rules = true;
      break;
    }
    if (part == "tests") {
      ctx.getenv_rule = false;
      break;
    }
    begin = end + 1;
  }
  return ctx;
}

FileReport analyze_source(std::string path, std::string_view source,
                          const FileContext& ctx) {
  const LexResult lexed = lex(source);
  std::vector<Diagnostic> diags = run_rules(lexed, ctx);

  // A justification often needs more than one line, and a suppression may
  // sit below doc text in the same run of `//` lines. Within each run of
  // adjacent standalone line comments, every line starting with FFCHECK
  // anchors a suppression whose reason continues through the following
  // non-anchor lines, and whose coverage extends to the code line right
  // under the whole run. A comment trailing code stays its own run, so a
  // stray note never swallows a suppression below it.
  std::set<int> code_lines;
  for (const Token& t : lexed.tokens) code_lines.insert(t.line);
  std::vector<std::vector<const Comment*>> runs;
  for (const Comment& c : lexed.comments) {
    const bool standalone = !code_lines.count(c.line);
    if (!c.block && standalone && !runs.empty() && !runs.back().back()->block &&
        runs.back().back()->end_line + 1 == c.line &&
        !code_lines.count(runs.back().back()->line)) {
      runs.back().push_back(&c);
    } else {
      runs.push_back({&c});
    }
  }

  std::vector<Suppression> suppressions;
  std::vector<Diagnostic> meta;
  for (const auto& run : runs) {
    const int run_end = run.back()->end_line;
    for (std::size_t i = 0; i < run.size(); ++i) {
      if (run[i]->text.rfind("FFCHECK", 0) != 0) continue;
      Comment merged = *run[i];
      merged.end_line = run_end;
      for (std::size_t j = i + 1;
           j < run.size() && run[j]->text.rfind("FFCHECK", 0) != 0; ++j) {
        merged.text += ' ';
        merged.text += run[j]->text;
      }
      parse_suppressions(merged, suppressions, meta);
    }
  }

  // A suppression covers its own lines plus the line right after the
  // comment ends (the standalone comment-above style).
  std::vector<Diagnostic> kept;
  for (Diagnostic& d : diags) {
    bool suppressed = false;
    for (Suppression& s : suppressions) {
      if (s.rule == d.rule && d.line >= s.line && d.line <= s.end_line + 1) {
        s.used = true;
        suppressed = true;
      }
    }
    if (!suppressed) kept.push_back(std::move(d));
  }
  // Every listed rule must still match something; stale entries are
  // findings so the baseline can only shrink.
  for (const Suppression& s : suppressions) {
    if (!s.used)
      kept.push_back({s.line, "FF01",
                      "suppression for " + s.rule +
                          " no longer matches any finding; delete it"});
  }
  kept.insert(kept.end(), meta.begin(), meta.end());
  std::stable_sort(
      kept.begin(), kept.end(),
      [](const Diagnostic& a, const Diagnostic& b) { return a.line < b.line; });
  return {std::move(path), std::move(kept)};
}

FileReport analyze_source(std::string path, std::string_view source) {
  const FileContext ctx = context_for_path(path);
  return analyze_source(std::move(path), source, ctx);
}

std::string format_report(const FileReport& report) {
  std::string out;
  for (const Diagnostic& d : report.diagnostics) {
    out += report.path;
    out += ':';
    out += std::to_string(d.line);
    out += ": ";
    out += d.rule;
    out += ": ";
    out += d.message;
    out += '\n';
  }
  return out;
}

}  // namespace flashflow::lint
