// ffcheck rule definitions and the per-file rule runner.
//
// Three rule families guard the two properties the repo's dynamic suites
// can only check after the fact:
//
//   ND — nondeterminism sources. FlashFlow's results must be bit-identical
//        for a fixed seed regardless of thread count, shard size, or path
//        model (tests/test_golden_determinism.cpp); anything that reads
//        ambient entropy or iterates a hash container can silently break
//        that. Enforced in src/ only: tests and harnesses may read clocks.
//   HP — hot-path allocation guards. Regions bracketed by the comments
//        `// FF_HOT_BEGIN` ... `// FF_HOT_END` (the per-second slot loop,
//        FairShareSolver::solve_prepared, TieredPathModel::fill_paths)
//        must stay free of allocation-shaped calls; PR 4 bought that
//        property and nothing should quietly spend it.
//   FL — floating-point accumulation over unordered containers, where the
//        summation order (and therefore the rounded result) is whatever
//        the hash table happens to produce.
//
// Every rule can be suppressed with `// FFCHECK(RULE): reason` on the
// offending line or the line directly above; the driver (ffcheck.h)
// rejects suppressions without a reason and flags ones that stopped
// matching, so the suppression baseline can only shrink.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lint/lexer.h"

namespace flashflow::lint {

struct Diagnostic {
  int line = 0;
  std::string rule;     // e.g. "ND01"
  std::string message;  // human-readable, no trailing newline
};

struct RuleInfo {
  std::string_view id;
  std::string_view summary;
};

/// Every rule ffcheck knows, in id order: ND01..ND06, HP01..HP04, FL01,
/// plus the FF0x meta-rules the driver emits (unused/malformed
/// suppressions, unbalanced hot-region annotations).
const std::vector<RuleInfo>& all_rules();

/// True if `id` names a known rule (suppressible or meta).
bool known_rule(std::string_view id);

/// Which rule families apply to a file, derived from its path by the
/// driver: ND rules bind src/ only, the getenv ban binds everything
/// outside tests/, HP and FL run wherever their triggers appear.
struct FileContext {
  bool nd_rules = false;
  bool getenv_rule = true;
};

/// Runs every applicable rule over a lexed file. Diagnostics come back in
/// line order; suppression filtering is the driver's job.
std::vector<Diagnostic> run_rules(const LexResult& lexed,
                                  const FileContext& ctx);

}  // namespace flashflow::lint
