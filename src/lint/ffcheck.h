// ffcheck per-file driver: lex, run rules, apply suppressions.
//
// A finding is silenced by a comment of the form
//
//   // FFCHECK(RULE): reason
//   // FFCHECK(RULE1,RULE2): reason
//
// placed on the offending line or the line directly above it. The reason
// is mandatory — a suppression without one is itself a finding (FF02), as
// is one naming an unknown rule (FF03) or one that no longer matches
// anything (FF01). That last property is the point: the suppression
// baseline can only shrink, never silently grow stale.
//
// File context is derived from the path: ND rules bind only under src/,
// the getenv ban (ND04) binds everywhere except tests/, and HP/FL rules
// run wherever their triggers appear.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lint/rules.h"

namespace flashflow::lint {

struct FileReport {
  std::string path;
  std::vector<Diagnostic> diagnostics;  // line order, post-suppression
};

/// Derives the rule context from a (relative or absolute) file path by its
/// directory components: "src" enables ND rules, "tests" disables ND04.
FileContext context_for_path(std::string_view path);

/// Analyzes one file's source text under the given context.
FileReport analyze_source(std::string path, std::string_view source,
                          const FileContext& ctx);

/// Convenience overload using context_for_path.
FileReport analyze_source(std::string path, std::string_view source);

/// Renders diagnostics as "path:line: RULE: message" lines, one per
/// finding, with a trailing newline after each.
std::string format_report(const FileReport& report);

}  // namespace flashflow::lint
