#include "lint/lexer.h"

#include <cctype>

namespace flashflow::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

// Two-character operators the rules care to see as one token. "::" in
// particular must stay whole so `std::rand` reads as std, ::, rand and a
// member access `obj.time` never looks like a bare call.
bool two_char_punct(char a, char b) {
  switch (a) {
    case ':':
      return b == ':';
    case '-':
      return b == '>' || b == '=' || b == '-';
    case '+':
      return b == '=' || b == '+';
    case '*':
    case '/':
    case '!':
    case '=':
    case '%':
    case '^':
      return b == '=';
    case '<':
      return b == '<' || b == '=';
    case '>':
      return b == '>' || b == '=';
    case '&':
      return b == '&' || b == '=';
    case '|':
      return b == '|' || b == '=';
    default:
      return false;
  }
}

// Encoding prefixes that can precede a raw string's R.
bool raw_string_prefix(std::string_view ident) {
  return ident == "R" || ident == "u8R" || ident == "uR" || ident == "UR" ||
         ident == "LR";
}

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  LexResult run() {
    while (pos_ < src_.size()) step();
    return std::move(out_);
  }

 private:
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  bool at_line_start_directive() const {
    // A '#' opens a preprocessor directive iff only whitespace precedes it
    // on its line.
    std::size_t i = pos_;
    while (i > 0) {
      const char c = src_[i - 1];
      if (c == '\n') break;
      if (c != ' ' && c != '\t') return false;
      --i;
    }
    return true;
  }

  void step() {
    const char c = peek();
    if (c == '\n' || c == ' ' || c == '\t' || c == '\r' || c == '\v' ||
        c == '\f') {
      advance();
      return;
    }
    if (c == '/' && peek(1) == '/') {
      line_comment();
      return;
    }
    if (c == '/' && peek(1) == '*') {
      block_comment();
      return;
    }
    if (c == '#' && at_line_start_directive()) {
      directive();
      return;
    }
    if (ident_start(c)) {
      identifier();
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      number();
      return;
    }
    if (c == '"') {
      cooked_string();
      return;
    }
    if (c == '\'') {
      char_literal();
      return;
    }
    punct();
  }

  void line_comment() {
    const int start = line_;
    advance();  // /
    advance();  // /
    const std::size_t begin = pos_;
    while (pos_ < src_.size() && peek() != '\n') advance();
    out_.comments.push_back(
        {start, start, false, trim(src_.substr(begin, pos_ - begin))});
  }

  void block_comment() {
    const int start = line_;
    advance();  // /
    advance();  // *
    const std::size_t begin = pos_;
    std::size_t end = src_.size();
    // Block comments end at the *first* */ — they do not nest.
    while (pos_ < src_.size()) {
      if (peek() == '*' && peek(1) == '/') {
        end = pos_;
        advance();
        advance();
        break;
      }
      advance();
    }
    out_.comments.push_back(
        {start, line_, true, trim(src_.substr(begin, end - begin))});
  }

  void directive() {
    // Swallow the directive, honouring backslash-newline continuations, so
    // `#include <unordered_map>` never reads as an unordered_map mention.
    while (pos_ < src_.size()) {
      const char c = peek();
      if (c == '\\' && peek(1) == '\n') {
        advance();
        advance();
        continue;
      }
      if (c == '\n') return;  // newline stays for the main loop
      if (c == '/' && peek(1) == '/') {
        line_comment();
        return;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      advance();
    }
  }

  void identifier() {
    const int start = line_;
    const std::size_t begin = pos_;
    while (pos_ < src_.size() && ident_char(peek())) advance();
    std::string text(src_.substr(begin, pos_ - begin));
    if (raw_string_prefix(text) && peek() == '"') {
      raw_string(start);
      return;
    }
    // Non-raw encoding prefixes (u8"x", L"x") glue to the literal.
    if ((text == "u8" || text == "u" || text == "U" || text == "L") &&
        (peek() == '"' || peek() == '\'')) {
      if (peek() == '"') {
        cooked_string();
      } else {
        char_literal();
      }
      return;
    }
    out_.tokens.push_back({TokKind::kIdent, std::move(text), start});
  }

  void number() {
    const int start = line_;
    const std::size_t begin = pos_;
    // pp-number: digits, letters (hex/suffixes), '.', digit separators,
    // and sign characters directly after an exponent letter.
    while (pos_ < src_.size()) {
      const char c = peek();
      if (ident_char(c) || c == '.' || c == '\'') {
        advance();
        continue;
      }
      if ((c == '+' || c == '-') && pos_ > begin) {
        const char prev = src_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          advance();
          continue;
        }
      }
      break;
    }
    out_.tokens.push_back(
        {TokKind::kNumber, std::string(src_.substr(begin, pos_ - begin)),
         start});
  }

  void cooked_string() {
    const int start = line_;
    advance();  // opening quote
    const std::size_t begin = pos_;
    std::size_t end = src_.size();
    while (pos_ < src_.size()) {
      const char c = peek();
      if (c == '\\' && pos_ + 1 < src_.size()) {
        advance();
        advance();
        continue;
      }
      // An unescaped newline means a malformed literal; stop at the line
      // end rather than swallowing the rest of the file.
      if (c == '"' || c == '\n') {
        end = pos_;
        if (c == '"') advance();
        break;
      }
      advance();
    }
    out_.tokens.push_back(
        {TokKind::kString, std::string(src_.substr(begin, end - begin)),
         start});
  }

  void raw_string(int start) {
    advance();  // opening quote
    // Delimiter: everything up to the '('.
    const std::size_t dbegin = pos_;
    while (pos_ < src_.size() && peek() != '(' && peek() != '\n') advance();
    const std::string delim(src_.substr(dbegin, pos_ - dbegin));
    if (peek() == '(') advance();
    const std::string closer = ")" + delim + "\"";
    const std::size_t begin = pos_;
    std::size_t end = src_.size();
    while (pos_ < src_.size()) {
      if (peek() == ')' && src_.compare(pos_, closer.size(), closer) == 0) {
        end = pos_;
        for (std::size_t i = 0; i < closer.size(); ++i) advance();
        break;
      }
      advance();
    }
    out_.tokens.push_back(
        {TokKind::kString, std::string(src_.substr(begin, end - begin)),
         start});
  }

  void char_literal() {
    const int start = line_;
    advance();  // opening quote
    const std::size_t begin = pos_;
    std::size_t end = src_.size();
    while (pos_ < src_.size()) {
      const char c = peek();
      if (c == '\\' && pos_ + 1 < src_.size()) {
        advance();
        advance();
        continue;
      }
      if (c == '\'' || c == '\n') {
        end = pos_;
        if (c == '\'') advance();
        break;
      }
      advance();
    }
    out_.tokens.push_back(
        {TokKind::kChar, std::string(src_.substr(begin, end - begin)),
         start});
  }

  void punct() {
    const int start = line_;
    const char a = advance();
    std::string text(1, a);
    if (pos_ < src_.size() && two_char_punct(a, peek())) {
      text.push_back(advance());
      // "->*" and "<<=" / ">>=" tails; irrelevant to rules, but keep the
      // stream faithful.
      if ((text == "->" && peek() == '*') ||
          ((text == "<<" || text == ">>") && peek() == '=')) {
        text.push_back(advance());
      }
    }
    out_.tokens.push_back({TokKind::kPunct, std::move(text), start});
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  LexResult out_;
};

}  // namespace

LexResult lex(std::string_view source) { return Lexer(source).run(); }

}  // namespace flashflow::lint
