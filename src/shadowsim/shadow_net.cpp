#include "shadowsim/shadow_net.h"

#include <algorithm>

#include "net/units.h"

namespace flashflow::shadowsim {

double region_rtt(Region a, Region b) {
  // Symmetric city-level RTT matrix (seconds), loosely following Shadow's
  // Internet map medians.
  static constexpr double kRtt[kRegionCount][kRegionCount] = {
      //        NaE     NaW     EU      AS
      /*NaE*/ {0.020, 0.065, 0.090, 0.200},
      /*NaW*/ {0.065, 0.020, 0.150, 0.160},
      /*EU */ {0.090, 0.150, 0.025, 0.180},
      /*AS */ {0.200, 0.160, 0.180, 0.030},
  };
  return kRtt[static_cast<int>(a)][static_cast<int>(b)];
}

ShadowNet make_shadow_net(const ShadowNetParams& params, std::uint64_t seed) {
  sim::Rng rng(seed);
  ShadowNet net;
  net.relays.reserve(static_cast<std::size_t>(params.relays));
  // Region mix roughly matching Tor: half Europe, a third North America.
  const std::vector<double> region_weights = {0.22, 0.12, 0.54, 0.12};

  for (int i = 0; i < params.relays; ++i) {
    ShadowRelay r;
    r.fingerprint = "shadow-relay-" + std::to_string(i);
    r.capacity_bits =
        std::clamp(rng.log_normal(params.capacity_mu, params.capacity_sigma),
                   params.min_capacity_bits, params.max_capacity_bits);
    r.region = static_cast<Region>(rng.weighted_index(region_weights));
    r.advertised_bits =
        r.capacity_bits *
        std::clamp(rng.normal(params.advertised_mean, params.advertised_sd),
                   0.15, 1.0);
    r.utilization = std::clamp(rng.normal(0.45, 0.15), 0.05, 0.9);
    r.contention = std::clamp(
        rng.normal(params.contention_mean, params.contention_sd), 0.5, 1.0);
    net.total_capacity_bits += r.capacity_bits;
    net.relays.push_back(std::move(r));
  }
  return net;
}

net::Topology shadow_topology(const ShadowNet& net) {
  net::Topology topo;
  // Regions map 1:1 onto path-model tiers: the tier table below is the
  // upper triangle of the region_rtt matrix, so every pair reads exactly
  // the value the old all-pairs set_path mesh stored — but in O(hosts)
  // memory instead of three n x n matrices.
  net::TieredPathParams params;
  params.tiers = kRegionCount;
  for (int a = 0; a < kRegionCount; ++a)
    for (int b = a; b < kRegionCount; ++b)
      params.tier_rtt_s.push_back(
          region_rtt(static_cast<Region>(a), static_cast<Region>(b)));
  // Modest loaded loss on the shared simulated internet.
  params.loss = 1.0e-6;
  params.loaded_loss = 5.0e-5;
  topo.use_path_model(std::make_unique<net::TieredPathModel>(params));
  topo.reserve_hosts(3 + net.relays.size());
  // Three 1 Gbit/s measurers (§7), placed in distinct regions.
  const std::array<Region, 3> measurer_regions = {
      Region::kNaEast, Region::kEurope, Region::kNaWest};
  std::vector<net::HostId> measurers;
  for (int i = 0; i < 3; ++i) {
    measurers.push_back(topo.add_host(
        {.name = "measurer-" + std::to_string(i),
         .nic_up_bits = net::gbit(1), .nic_down_bits = net::gbit(1),
         .cpu_cores = 4, .virtual_host = false, .datacenter = true,
         .kernel = net::KernelProfile::default_profile()}));
  }
  std::vector<net::HostId> relay_hosts;
  for (const auto& relay : net.relays) {
    relay_hosts.push_back(topo.add_host(
        {.name = relay.fingerprint + "-host",
         .nic_up_bits = relay.capacity_bits * 1.2,
         .nic_down_bits = relay.capacity_bits * 1.2, .cpu_cores = 2,
         .virtual_host = false, .datacenter = true,
         .kernel = net::KernelProfile::default_profile()}));
  }

  for (std::size_t i = 0; i < measurers.size(); ++i)
    topo.set_host_tier(measurers[i],
                       static_cast<int>(measurer_regions[i]));
  for (std::size_t i = 0; i < net.relays.size(); ++i)
    topo.set_host_tier(relay_hosts[i],
                       static_cast<int>(net.relays[i].region));
  return topo;
}

}  // namespace flashflow::shadowsim
