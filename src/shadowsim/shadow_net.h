// Shadow-style private Tor network (paper §7).
//
// A 5%-scale network: ~328 relays sampled from a January-2019-like capacity
// distribution, placed in geographic regions with a city-level RTT matrix.
// The network carries the aggregate Markov client load plus 40 benchmark
// clients. shadow_topology() additionally exposes the network as a
// net::Topology (3 measurer hosts + one host per relay) so the real
// FlashFlow BWAuth machinery can measure it.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "net/topology.h"
#include "sim/random.h"

namespace flashflow::shadowsim {

enum class Region : int { kNaEast = 0, kNaWest = 1, kEurope = 2, kAsia = 3 };
inline constexpr int kRegionCount = 4;

/// Inter-region RTT in seconds (symmetric; diagonal = intra-region).
double region_rtt(Region a, Region b);

struct ShadowRelay {
  std::string fingerprint;
  double capacity_bits = 0;   // ground-truth Tor capacity
  Region region = Region::kEurope;
  /// Self-reported advertised bandwidth (underestimates capacity, per §3).
  double advertised_bits = 0;
  /// Long-run utilization (fraction of capacity carrying client traffic).
  double utilization = 0.5;
  /// Shadow shared-internet contention factor: the fraction of capacity a
  /// measurement can actually drive through the simulated internet
  /// (models the Fig 8a capacity error the paper observes in Shadow).
  double contention = 1.0;
};

struct ShadowNetParams {
  int relays = 328;
  double capacity_mu = 17.5;       // log-normal; mean ~93 Mbit/s
  double capacity_sigma = 1.3;
  double max_capacity_bits = 1.0e9;
  double min_capacity_bits = 1.0e6;
  // Advertised = capacity * clamp(N(mean, sd), lo, hi): the §3
  // underestimation distribution.
  double advertised_mean = 0.62;
  double advertised_sd = 0.18;
  // Shadow contention factor distribution (Fig 8a: median error 16%).
  double contention_mean = 0.84;
  double contention_sd = 0.12;

  friend bool operator==(const ShadowNetParams&,
                         const ShadowNetParams&) = default;
};

struct ShadowNet {
  std::vector<ShadowRelay> relays;
  double total_capacity_bits = 0;
};

ShadowNet make_shadow_net(const ShadowNetParams& params, std::uint64_t seed);

/// Topology for FlashFlow measurement: hosts[0..2] are the three 1 Gbit/s
/// measurers (§7), hosts[3..] are the relays in relay order.
net::Topology shadow_topology(const ShadowNet& net);

}  // namespace flashflow::shadowsim
