// Shadow-style experiments (paper §7, Figs 8 & 9).
//
// run_measurement_comparison(): measures the shadow network once with the
// real FlashFlow BWAuth machinery (3 x 1 Gbit/s measurers) and once with
// the TorFlow baseline, then computes the paper's error metrics against
// ground-truth capacities (Fig 8).
//
// run_performance(): load-balances client traffic with a given weight set
// and measures benchmark-client transfer times, timeout rates, and total
// relay throughput at a given load level (Fig 9). Background client load
// uses a mean-field assignment (expected weight-proportional load per
// relay); benchmark transfers run as individual fluid flows through their
// 3-hop paths.
#pragma once

#include <cstdint>
#include <vector>

#include "shadowsim/shadow_net.h"
#include "tor/authority.h"
#include "trafficgen/benchmark.h"

namespace flashflow::shadowsim {

struct MeasurementComparison {
  tor::BandwidthFile flashflow_file;
  tor::BandwidthFile torflow_file;
  /// Fig 8a: per-relay capacity error |1 - estimate/capacity| (FlashFlow).
  std::vector<double> ff_capacity_error;
  double ff_network_capacity_error = 0;  // Eq 3
  /// Fig 8b: per-relay weight error W/Cbar for both systems.
  std::vector<double> ff_relay_weight_error;
  std::vector<double> tf_relay_weight_error;
  double ff_network_weight_error = 0;  // Eq 6
  double tf_network_weight_error = 0;
};

MeasurementComparison run_measurement_comparison(const ShadowNet& net,
                                                 std::uint64_t seed);

struct PerfConfig {
  /// Relay-side background load at "100%" as a fraction of total capacity.
  double base_load_factor = 0.50;
  /// 1.0 = 100%, 1.15 = 115%, 1.30 = 130% (paper's load levels).
  double load_scale = 1.0;
  double sim_seconds = 1800;
  int bench_clients = 40;
  /// Client access-link cap per transfer (bits/s).
  double client_cap_bits = 8e6;
  /// Background load wobble (per-second AR(1) sigma) for throughput series.
  double background_noise_sigma = 0.02;
};

struct PerfResult {
  trafficgen::BenchmarkResults bench;
  /// Per-second total relay-forwarded traffic (bits/s), Fig 9c.
  std::vector<double> throughput_series_bits;
};

PerfResult run_performance(const ShadowNet& net,
                           const tor::BandwidthFile& weights,
                           const PerfConfig& config, std::uint64_t seed);

}  // namespace flashflow::shadowsim
