#include "shadowsim/experiment.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>

#include "core/bwauth.h"
#include "core/params.h"
#include "metrics/error_metrics.h"
#include "net/flownet.h"
#include "net/units.h"
#include "sim/simulator.h"
#include "torflow/torflow.h"

namespace flashflow::shadowsim {

namespace {

/// Builds FlashFlow RelayTargets from the shadow network. The relay CPU
/// model is sized so that a 160-socket measurement can drive
/// capacity * contention through the relay — the contention factor models
/// Shadow's shared simulated internet (Fig 8a's error source).
std::vector<core::RelayTarget> make_targets(const ShadowNet& net,
                                            const core::Params& params) {
  std::vector<core::RelayTarget> targets;
  targets.reserve(net.relays.size());
  for (std::size_t i = 0; i < net.relays.size(); ++i) {
    const auto& r = net.relays[i];
    core::RelayTarget t;
    t.model.name = r.fingerprint;
    t.model.nic_up_bits = r.capacity_bits * 1.2;
    t.model.nic_down_bits = r.capacity_bits * 1.2;
    const double reachable = r.capacity_bits * r.contention;
    t.model.cpu.base_bits =
        reachable * (1.0 + t.model.cpu.per_socket_overhead * params.sockets);
    t.model.ratio_r = params.ratio;
    t.model.background_demand_bits = r.capacity_bits * r.utilization;
    t.host = 3 + i;  // shadow_topology: measurers first, then relays
    t.previous_estimate_bits = r.advertised_bits;  // start from §3 estimate
    targets.push_back(std::move(t));
  }
  return targets;
}

std::vector<double> capacities_of(const ShadowNet& net) {
  std::vector<double> caps;
  caps.reserve(net.relays.size());
  for (const auto& r : net.relays) caps.push_back(r.capacity_bits);
  return caps;
}

std::vector<double> weights_of(const tor::BandwidthFile& file) {
  std::vector<double> w;
  w.reserve(file.size());
  for (const auto& e : file) w.push_back(e.weight);
  return w;
}

}  // namespace

MeasurementComparison run_measurement_comparison(const ShadowNet& net,
                                                 std::uint64_t seed) {
  MeasurementComparison out;
  const net::Topology topo = shadow_topology(net);
  core::Params params;

  // FlashFlow: 3 x 1 Gbit/s measurers (§7).
  core::Team team(topo, {0, 1, 2});
  for (std::size_t i = 0; i < 3; ++i) team.set_capacity(i, net::gbit(1));
  core::BWAuth bwauth(topo, params, std::move(team), net::mbit(51), seed);
  const auto targets = make_targets(net, params);
  out.flashflow_file = bwauth.measure_network(targets);

  // TorFlow baseline on the same relays.
  std::vector<torflow::TorFlowRelay> tf_relays;
  tf_relays.reserve(net.relays.size());
  for (const auto& r : net.relays)
    tf_relays.push_back(
        {r.fingerprint, r.capacity_bits, r.advertised_bits, r.utilization});
  torflow::TorFlow torflow({}, seed ^ 0x70F);
  out.torflow_file = torflow.scan(tf_relays);

  // Error metrics against ground truth.
  const auto caps = capacities_of(net);
  std::vector<double> ff_estimates;
  for (const auto& e : out.flashflow_file)
    ff_estimates.push_back(e.capacity_bits);

  for (std::size_t i = 0; i < caps.size(); ++i)
    out.ff_capacity_error.push_back(
        std::abs(1.0 - ff_estimates[i] / caps[i]));
  out.ff_network_capacity_error =
      std::abs(metrics::network_capacity_error(ff_estimates, caps));

  const auto cap_norm = metrics::normalize(caps);
  const auto ff_w = metrics::normalize(weights_of(out.flashflow_file));
  const auto tf_w = metrics::normalize(weights_of(out.torflow_file));
  for (std::size_t i = 0; i < caps.size(); ++i) {
    out.ff_relay_weight_error.push_back(ff_w[i] / cap_norm[i]);
    out.tf_relay_weight_error.push_back(tf_w[i] / cap_norm[i]);
  }
  out.ff_network_weight_error = metrics::network_weight_error(ff_w, cap_norm);
  out.tf_network_weight_error = metrics::network_weight_error(tf_w, cap_norm);
  return out;
}

namespace {

/// Drives one benchmark client's sequential transfer loop on the fluid net.
class BenchClient {
 public:
  BenchClient(sim::Simulator& simu, net::FlowNet& netw,
              const std::vector<net::ResourceId>& relay_resources,
              const std::vector<double>& norm_weights,
              const std::vector<double>& rho, const ShadowNet& net,
              const PerfConfig& config, trafficgen::BenchmarkResults& results,
              sim::Rng rng)
      : simu_(simu), netw_(netw), relay_resources_(relay_resources),
        weights_(norm_weights), rho_(rho), net_(net), config_(config),
        results_(results), rng_(std::move(rng)),
        region_(static_cast<Region>(rng_.uniform_int(0, kRegionCount - 1))) {}

  void start() {
    // Desynchronize clients.
    simu_.schedule_in(sim::from_seconds(rng_.uniform(0.0, 30.0)),
                      [this] { begin_transfer(); });
  }

 private:
  // Per-transfer state shared by the completion callback and the timeout
  // event; `done` guards against the two racing (a timeout firing after a
  // completion, or vice versa).
  struct Transfer {
    net::FlowId flow = 0;
    sim::EventId timeout_event = 0;
    bool done = false;
    trafficgen::TransferRecord record;
    std::vector<net::ResourceId> resources;
  };

  void begin_transfer() {
    using trafficgen::TransferSize;
    const auto size = static_cast<TransferSize>(next_size_);
    next_size_ = (next_size_ + 1) % 3;

    // Weighted 3-hop path.
    std::vector<double> w = weights_;
    std::array<std::size_t, 3> path{};
    for (auto& hop : path) {
      hop = rng_.weighted_index(w);
      w[hop] = 0.0;
    }

    // TTFB: circuit latency plus congestion queueing at each hop.
    const double rtt_sum =
        region_rtt(region_, net_.relays[path[0]].region) +
        region_rtt(net_.relays[path[0]].region,
                   net_.relays[path[1]].region) +
        region_rtt(net_.relays[path[1]].region,
                   net_.relays[path[2]].region) +
        region_rtt(net_.relays[path[2]].region, Region::kNaEast);
    double queue_delay = 0.0;
    for (const auto hop : path) {
      const double rho = rho_[hop];
      queue_delay += std::min(0.05 * rho / std::max(1.0 - rho, 0.005), 10.0);
    }

    auto transfer = std::make_shared<Transfer>();
    transfer->record.size = size;
    transfer->record.start = simu_.now();
    transfer->record.ttfb_s = 2.2 * rtt_sum + queue_delay;
    transfer->resources = {relay_resources_[path[0]],
                           relay_resources_[path[1]],
                           relay_resources_[path[2]]};

    // The timeout clock starts at the request, covering circuit setup and
    // queueing (TTFB) as well as the download itself.
    const auto index = static_cast<int>(size);
    const double limit = trafficgen::kTransferTimeoutS[index];
    if (transfer->record.ttfb_s >= limit) {
      transfer->record.ttlb_s = limit;
      transfer->record.timed_out = true;
      finish(transfer->record);
      return;
    }

    // Bytes begin flowing once the first byte arrives.
    simu_.schedule_in(
        sim::from_seconds(transfer->record.ttfb_s),
        [this, transfer, index] {
          if (transfer->done) return;
          net::FlowNet::FlowSpec spec;
          spec.resources = transfer->resources;
          spec.cap_bits = config_.client_cap_bits;
          spec.volume_bytes = trafficgen::kTransferBytes[index];
          spec.on_complete = [this, transfer](net::FlowId) {
            if (transfer->done) return;
            transfer->done = true;
            simu_.cancel(transfer->timeout_event);
            transfer->record.ttlb_s =
                sim::to_seconds(simu_.now() - transfer->record.start);
            transfer->record.timed_out = false;
            finish(transfer->record);
          };
          transfer->flow = netw_.add_flow(std::move(spec));
        });

    transfer->timeout_event = simu_.schedule_in(
        sim::from_seconds(limit), [this, transfer, limit] {
          if (transfer->done) return;
          transfer->done = true;
          if (transfer->flow != 0) netw_.remove_flow(transfer->flow);
          transfer->record.ttlb_s = limit;
          transfer->record.timed_out = true;
          finish(transfer->record);
        });
  }

  void finish(const trafficgen::TransferRecord& record) {
    results_.records.push_back(record);
    // Torperf cadence: next transfer a minute after the previous start, or
    // shortly after a long transfer finishes.
    const sim::SimTime next =
        std::max(record.start + 60 * sim::kSecond,
                 simu_.now() + 5 * sim::kSecond);
    if (next < sim::from_seconds(config_.sim_seconds))
      simu_.schedule_at(next, [this] { begin_transfer(); });
  }

  sim::Simulator& simu_;
  net::FlowNet& netw_;
  const std::vector<net::ResourceId>& relay_resources_;
  const std::vector<double>& weights_;
  const std::vector<double>& rho_;
  const ShadowNet& net_;
  const PerfConfig& config_;
  trafficgen::BenchmarkResults& results_;
  sim::Rng rng_;
  Region region_;
  int next_size_ = 0;
};

}  // namespace

PerfResult run_performance(const ShadowNet& net,
                           const tor::BandwidthFile& weights,
                           const PerfConfig& config, std::uint64_t seed) {
  PerfResult out;
  const auto norm_weights = metrics::normalize(weights_of(weights));

  // Mean-field background: expected load per relay is weight-proportional.
  const double background_total =
      config.base_load_factor * config.load_scale * net.total_capacity_bits;
  std::vector<double> assigned(net.relays.size());
  std::vector<double> rho(net.relays.size());
  std::vector<double> carried(net.relays.size());  // forwarded background
  for (std::size_t i = 0; i < net.relays.size(); ++i) {
    assigned[i] = background_total * norm_weights[i];
    const double cap = net.relays[i].capacity_bits;
    rho[i] = std::min(assigned[i] / cap, 0.995);
    carried[i] = std::min(assigned[i], cap * 0.995);
  }

  sim::Simulator simu;
  net::FlowNet netw(simu);
  std::vector<net::ResourceId> relay_resources;
  for (std::size_t i = 0; i < net.relays.size(); ++i) {
    const double cap = net.relays[i].capacity_bits;
    // Saturated relays crawl: benchmark cells squeeze through whatever the
    // background stampede leaves over.
    const double avail = std::max(cap - carried[i], cap * 0.002);
    relay_resources.push_back(
        netw.add_resource(net.relays[i].fingerprint, avail));
  }

  sim::Rng rng(seed);
  std::vector<std::unique_ptr<BenchClient>> clients;
  for (int c = 0; c < config.bench_clients; ++c) {
    clients.push_back(std::make_unique<BenchClient>(
        simu, netw, relay_resources, norm_weights, rho, net, config,
        out.bench, rng.fork("bench-" + std::to_string(c))));
    clients.back()->start();
  }

  // Per-second network-throughput sampling with background wobble.
  const double carried_total =
      std::accumulate(carried.begin(), carried.end(), 0.0);
  double wobble = 0.0;
  auto* wobble_ptr = &wobble;
  auto* rng_ptr = &rng;
  auto* netw_ptr = &netw;
  auto* out_ptr = &out;
  const auto resources_copy = relay_resources;
  simu.schedule_every(sim::kSecond, [=]() {
    *wobble_ptr = 0.9 * *wobble_ptr +
                  rng_ptr->normal(0.0, config.background_noise_sigma);
    double bench_bits = 0.0;
    for (const auto r : resources_copy)
      bench_bits += netw_ptr->resource_usage(r);
    out_ptr->throughput_series_bits.push_back(
        carried_total * (1.0 + *wobble_ptr) + bench_bits);
    return true;
  });

  simu.run_until(sim::from_seconds(config.sim_seconds));
  return out;
}

}  // namespace flashflow::shadowsim
