// Empirical cumulative distribution functions.
//
// Used to reproduce the paper's CDF figures (Figs 1, 3, 6, 10, 12, 16) as
// printable series: for a grid of x values, the cumulative fraction of
// samples <= x.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace flashflow::metrics {

class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::span<const double> samples);

  void add(double sample);
  /// Sorts pending samples; called automatically by the queries below.
  void finalize();

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Fraction of samples <= x, in [0, 1].
  double fraction_at_most(double x);
  /// Value at cumulative fraction q in [0, 1] (inverse CDF, interpolated).
  double quantile(double q);
  /// Fraction of samples inside [lo, hi] (both inclusive).
  double fraction_within(double lo, double hi);

  /// Evenly spaced (x, F(x)) series across [min, max] with `points` entries,
  /// for plotting / printing. Requires a non-empty CDF and points >= 2.
  struct Point {
    double x = 0;
    double fraction = 0;
  };
  std::vector<Point> series(int points);

  /// Renders quantiles of interest as a one-line summary, e.g. for benches:
  /// "p5=.. p25=.. p50=.. p75=.. p95=..".
  std::string summary();

 private:
  std::vector<double> samples_;
  bool sorted_ = false;
};

}  // namespace flashflow::metrics
