#include "metrics/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

namespace flashflow::metrics {

namespace {
void require_nonempty(std::span<const double> xs, const char* what) {
  if (xs.empty()) throw std::invalid_argument(std::string(what) + ": empty");
}
}  // namespace

double mean(std::span<const double> xs) {
  require_nonempty(xs, "mean");
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double stdev(std::span<const double> xs) {
  require_nonempty(xs, "stdev");
  const double m = mean(xs);
  double ss = 0.0;
  for (const double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size()));
}

double relative_stdev(std::span<const double> xs) {
  const double m = mean(xs);
  if (m == 0.0) throw std::invalid_argument("relative_stdev: zero mean");
  return stdev(xs) / m;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double percentile(std::span<const double> xs, double q) {
  require_nonempty(xs, "percentile");
  if (q < 0.0 || q > 100.0)
    throw std::invalid_argument("percentile: q out of [0,100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double min_value(std::span<const double> xs) {
  require_nonempty(xs, "min_value");
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  require_nonempty(xs, "max_value");
  return *std::max_element(xs.begin(), xs.end());
}

BoxStats box_stats(std::span<const double> xs) {
  require_nonempty(xs, "box_stats");
  BoxStats b;
  b.p5 = percentile(xs, 5.0);
  b.q1 = percentile(xs, 25.0);
  b.median = percentile(xs, 50.0);
  b.q3 = percentile(xs, 75.0);
  b.p95 = percentile(xs, 95.0);
  b.mean = mean(xs);
  return b;
}

}  // namespace flashflow::metrics
