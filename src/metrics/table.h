// Aligned ASCII table writer used by the bench binaries to print
// paper-vs-measured rows.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace flashflow::metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; pads/truncates to the header width.
  void add_row(std::vector<std::string> cells);

  /// Formats a double with the given precision (helper for call sites).
  static std::string num(double v, int precision = 2);
  /// Formats a percentage (value in [0,1] -> "x.y%").
  static std::string pct(double fraction, int precision = 1);

  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner used to delimit bench output blocks.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace flashflow::metrics
