// Descriptive statistics used throughout the analyses and benches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace flashflow::metrics {

/// Arithmetic mean. Requires a non-empty range.
double mean(std::span<const double> xs);

/// Population standard deviation. Requires a non-empty range.
double stdev(std::span<const double> xs);

/// Relative standard deviation stdev/mean (paper Eq. 7).
/// Requires a non-empty range with non-zero mean.
double relative_stdev(std::span<const double> xs);

/// Median (averaging the middle pair for even sizes). Non-empty range.
double median(std::span<const double> xs);

/// Linear-interpolated percentile; q in [0, 100]. Non-empty range.
double percentile(std::span<const double> xs, double q);

/// Smallest/largest value. Non-empty range.
double min_value(std::span<const double> xs);
double max_value(std::span<const double> xs);

/// Five-number summary used by the paper's boxplots: whiskers at the 5th and
/// 95th percentiles, box at the interquartile range, line at the median,
/// triangle at the mean (Fig. 9 caption).
struct BoxStats {
  double p5 = 0;
  double q1 = 0;
  double median = 0;
  double q3 = 0;
  double p95 = 0;
  double mean = 0;
};
BoxStats box_stats(std::span<const double> xs);

/// Convenience conversions for call sites holding vectors.
inline std::span<const double> as_span(const std::vector<double>& v) {
  return {v.data(), v.size()};
}

}  // namespace flashflow::metrics
