#include "metrics/timeseries.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace flashflow::metrics {

void PerSecondSeries::add(sim::SimTime at, double bytes) {
  const std::int64_t second = at / sim::kSecond;
  if (bins_.empty()) {
    first_second_ = second;
    bins_.push_back(0.0);
  }
  if (second < first_second_)
    throw std::invalid_argument("PerSecondSeries::add: time went backwards");
  const auto idx = static_cast<std::size_t>(second - first_second_);
  if (idx >= bins_.size()) bins_.resize(idx + 1, 0.0);
  bins_[idx] += bytes;
}

std::vector<double> PerSecondSeries::bins() const { return bins_; }

std::vector<double> PerSecondSeries::bins_bits_per_second() const {
  std::vector<double> out = bins_;
  for (double& v : out) v *= 8.0;
  return out;
}

TrailingMax::TrailingMax(std::size_t window) : window_(window) {
  if (window_ == 0) throw std::invalid_argument("TrailingMax: zero window");
}

void TrailingMax::push(double sample) {
  while (!deque_.empty() && deque_.back().second <= sample)
    deque_.pop_back();
  deque_.emplace_back(pushed_, sample);
  ++pushed_;
  // Expire entries outside the trailing window [pushed_ - window_, ...).
  while (pushed_ > window_ && deque_.front().first < pushed_ - window_)
    deque_.pop_front();
}

double TrailingMax::max() const {
  if (deque_.empty()) throw std::logic_error("TrailingMax: no samples");
  return deque_.front().second;
}

RollingWindowStats::RollingWindowStats(std::size_t window) : window_(window) {
  if (window_ == 0)
    throw std::invalid_argument("RollingWindowStats: zero window");
}

void RollingWindowStats::push(double sample) {
  values_.push_back(sample);
  sum_ += sample;
  sum_sq_ += sample * sample;
  if (values_.size() > window_) {
    const double old = values_.front();
    values_.pop_front();
    sum_ -= old;
    sum_sq_ -= old * old;
  }
}

std::size_t RollingWindowStats::count() const { return values_.size(); }

double RollingWindowStats::mean() const {
  if (values_.empty()) throw std::logic_error("RollingWindowStats: empty");
  return sum_ / static_cast<double>(values_.size());
}

double RollingWindowStats::stdev() const {
  const double m = mean();
  const double var =
      std::max(0.0, sum_sq_ / static_cast<double>(values_.size()) - m * m);
  return std::sqrt(var);
}

double RollingWindowStats::relative_stdev() const {
  const double m = mean();
  if (m == 0.0) return 0.0;
  return stdev() / m;
}

SlidingWindowMax::SlidingWindowMax(std::size_t window, std::size_t history)
    : window_(window), history_(history) {
  if (window_ == 0 || history_ == 0)
    throw std::invalid_argument("SlidingWindowMax: zero window or history");
}

void SlidingWindowMax::push(double sample) {
  recent_.push_back(sample);
  recent_sum_ += sample;
  if (recent_.size() > window_) {
    recent_sum_ -= recent_.front();
    recent_.pop_front();
  }
  if (recent_.size() == window_) {
    window_means_.push_back(recent_sum_ / static_cast<double>(window_));
    if (window_means_.size() > history_) window_means_.pop_front();
  }
}

double SlidingWindowMax::max() const {
  if (window_means_.empty()) return 0.0;
  return *std::max_element(window_means_.begin(), window_means_.end());
}

}  // namespace flashflow::metrics
