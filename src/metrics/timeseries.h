// Per-second accumulators and sliding maximum windows.
//
// PerSecondSeries buckets byte counts into whole-second bins, matching how
// FlashFlow measurers and the Tor relay report throughput. SlidingMax
// implements the "maximum sustained 10-second throughput over 5 days"
// computation behind Tor's observed bandwidth.
#pragma once

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace flashflow::metrics {

/// Accumulates byte counts into contiguous one-second bins.
class PerSecondSeries {
 public:
  /// Adds `bytes` observed at absolute simulation time `at`.
  void add(sim::SimTime at, double bytes);

  /// Bin values in bytes/second, from the first bin touched through the last.
  std::vector<double> bins() const;

  /// Bin values converted to bits/second.
  std::vector<double> bins_bits_per_second() const;

  /// First bin index (in whole seconds since sim start); 0 when empty.
  std::int64_t first_second() const { return first_second_; }

  bool empty() const { return bins_.empty(); }

 private:
  std::int64_t first_second_ = 0;
  std::vector<double> bins_;
};

/// Maximum over the trailing `window` samples, O(1) amortized per push
/// (monotonic deque). Used for the paper's C(r,t,p) = max advertised
/// bandwidth over the window preceding t (Eq 1).
class TrailingMax {
 public:
  explicit TrailingMax(std::size_t window);

  void push(double sample);
  /// Max over the last min(window, pushes) samples; requires >= 1 push.
  double max() const;
  std::size_t count() const { return pushed_; }

 private:
  std::size_t window_;
  std::size_t pushed_ = 0;
  // (sample index, value), values strictly decreasing front to back.
  std::deque<std::pair<std::size_t, double>> deque_;
};

/// Rolling mean/stdev over the trailing `window` samples, O(1) per push.
/// Used for the Appendix A relative-standard-deviation analyses (Eq 7).
class RollingWindowStats {
 public:
  explicit RollingWindowStats(std::size_t window);

  void push(double sample);
  std::size_t count() const;  // samples currently in the window
  double mean() const;        // requires count() >= 1
  double stdev() const;       // population stdev; requires count() >= 1
  /// stdev/mean; returns 0 when the mean is 0.
  double relative_stdev() const;

 private:
  std::size_t window_;
  std::deque<double> values_;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

/// Sliding-window maximum of the mean over `window` consecutive samples,
/// with bounded history. Push one sample per time step; max() returns the
/// best window mean seen in the retained history.
class SlidingWindowMax {
 public:
  /// window: samples per window (e.g. 10 for 10-second mean);
  /// history: number of most recent window means retained (e.g. 5 days).
  SlidingWindowMax(std::size_t window, std::size_t history);

  void push(double sample);
  /// Highest mean over any complete window in the retained history; 0 when
  /// no complete window has been seen yet.
  double max() const;

 private:
  std::size_t window_;
  std::size_t history_;
  std::deque<double> recent_;     // last `window_` raw samples
  double recent_sum_ = 0.0;
  std::deque<double> window_means_;  // last `history_` window means
};

}  // namespace flashflow::metrics
