#include "metrics/error_metrics.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace flashflow::metrics {

double relay_capacity_error(double advertised, double true_capacity) {
  if (true_capacity <= 0.0)
    throw std::invalid_argument("relay_capacity_error: capacity <= 0");
  return 1.0 - advertised / true_capacity;
}

double network_capacity_error(std::span<const double> advertised,
                              std::span<const double> true_capacity) {
  if (advertised.size() != true_capacity.size())
    throw std::invalid_argument("network_capacity_error: size mismatch");
  const double sum_a =
      std::accumulate(advertised.begin(), advertised.end(), 0.0);
  const double sum_c =
      std::accumulate(true_capacity.begin(), true_capacity.end(), 0.0);
  if (sum_c <= 0.0)
    throw std::invalid_argument("network_capacity_error: capacity sum <= 0");
  return 1.0 - sum_a / sum_c;
}

std::vector<double> normalize(std::span<const double> values) {
  const double total = std::accumulate(values.begin(), values.end(), 0.0);
  if (total <= 0.0) throw std::invalid_argument("normalize: sum <= 0");
  std::vector<double> out(values.begin(), values.end());
  for (double& v : out) v /= total;
  return out;
}

double relay_weight_error(double normalized_weight,
                          double normalized_capacity) {
  if (normalized_capacity <= 0.0)
    throw std::invalid_argument("relay_weight_error: capacity <= 0");
  return normalized_weight / normalized_capacity;
}

double network_weight_error(std::span<const double> normalized_weights,
                            std::span<const double> normalized_capacities) {
  if (normalized_weights.size() != normalized_capacities.size())
    throw std::invalid_argument("network_weight_error: size mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < normalized_weights.size(); ++i)
    total += std::abs(normalized_weights[i] - normalized_capacities[i]);
  return total / 2.0;
}

double network_weight_error_raw(std::span<const double> weights,
                                std::span<const double> capacities) {
  const auto w = normalize(weights);
  const auto c = normalize(capacities);
  return network_weight_error(w, c);
}

}  // namespace flashflow::metrics
