// The paper's error metrics (Section 3, Equations 1-6).
//
// These operate on snapshots of per-relay advertised bandwidths / capacities
// / consensus weights, exactly as defined in the paper:
//
//   Eq 1: C(r,t,p)   = max advertised bandwidth in the window of length p
//   Eq 2: RCE(r,t,p) = 1 - A(r,t)/C(r,t,p)           (relay capacity error)
//   Eq 3: NCE(t,p)   = 1 - sum A / sum C             (network capacity error)
//   Eq 4: Cbar       = C / sum C                     (normalized capacity)
//   Eq 5: RWE(r,t,p) = W(r,t)/Cbar(r,t,p)            (relay weight error)
//   Eq 6: NWE(t,p)   = (1/2) sum |W - Cbar|          (network weight error;
//                                                     total variation dist.)
#pragma once

#include <span>
#include <vector>

namespace flashflow::metrics {

/// Eq 2. Requires true_capacity > 0.
double relay_capacity_error(double advertised, double true_capacity);

/// Eq 3 over aligned spans. Requires equal sizes, positive capacity sum.
double network_capacity_error(std::span<const double> advertised,
                              std::span<const double> true_capacity);

/// Eq 4: normalizes values to sum to 1. Requires a positive sum.
std::vector<double> normalize(std::span<const double> values);

/// Eq 5 on already-normalized inputs. Requires normalized_capacity > 0.
double relay_weight_error(double normalized_weight,
                          double normalized_capacity);

/// Eq 6 on already-normalized, aligned spans (total variation distance).
double network_weight_error(std::span<const double> normalized_weights,
                            std::span<const double> normalized_capacities);

/// Convenience: Eq 6 from raw (unnormalized) weights and capacities.
double network_weight_error_raw(std::span<const double> weights,
                                std::span<const double> capacities);

}  // namespace flashflow::metrics
