#include "metrics/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace flashflow::metrics {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  const auto print_rule = [&] {
    os << "+";
    for (const std::size_t w : widths) os << std::string(w + 2, '-') << "+";
    os << '\n';
  };

  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

std::string Table::to_string() const {
  std::ostringstream ss;
  print(ss);
  return ss.str();
}

void print_banner(std::ostream& os, const std::string& title) {
  os << '\n' << std::string(72, '=') << '\n'
     << "  " << title << '\n'
     << std::string(72, '=') << '\n';
}

}  // namespace flashflow::metrics
