#include "metrics/cdf.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace flashflow::metrics {

Cdf::Cdf(std::span<const double> samples)
    : samples_(samples.begin(), samples.end()) {}

void Cdf::add(double sample) {
  samples_.push_back(sample);
  sorted_ = false;
}

void Cdf::finalize() {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::fraction_at_most(double x) {
  if (samples_.empty()) throw std::logic_error("Cdf: empty");
  finalize();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Cdf::quantile(double q) {
  if (samples_.empty()) throw std::logic_error("Cdf: empty");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("Cdf::quantile: q");
  finalize();
  if (samples_.size() == 1) return samples_.front();
  const double rank = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

double Cdf::fraction_within(double lo, double hi) {
  if (samples_.empty()) throw std::logic_error("Cdf: empty");
  finalize();
  const auto first = std::lower_bound(samples_.begin(), samples_.end(), lo);
  const auto last = std::upper_bound(samples_.begin(), samples_.end(), hi);
  return static_cast<double>(last - first) /
         static_cast<double>(samples_.size());
}

std::vector<Cdf::Point> Cdf::series(int points) {
  if (samples_.empty()) throw std::logic_error("Cdf: empty");
  if (points < 2) throw std::invalid_argument("Cdf::series: points < 2");
  finalize();
  const double lo = samples_.front();
  const double hi = samples_.back();
  std::vector<Point> out;
  out.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.push_back({x, fraction_at_most(x)});
  }
  return out;
}

std::string Cdf::summary() {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "p5=%.4g p25=%.4g p50=%.4g p75=%.4g p95=%.4g (n=%zu)",
                quantile(0.05), quantile(0.25), quantile(0.50), quantile(0.75),
                quantile(0.95), samples_.size());
  return buf;
}

}  // namespace flashflow::metrics
