#include "analysis/error_analysis.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace flashflow::analysis {

namespace {
template <typename TrackMap, typename MakeTrack>
typename TrackMap::mapped_type& track_for(TrackMap& tracks, std::size_t id,
                                          MakeTrack make) {
  auto it = tracks.find(id);
  if (it == tracks.end()) it = tracks.emplace(id, make()).first;
  return it->second;
}
}  // namespace

// ---------------------------------------------------------------- capacity

CapacityErrorAnalysis::CapacityErrorAnalysis(int sample_stride_hours)
    : stride_(sample_stride_hours) {
  if (stride_ <= 0) throw std::invalid_argument("stride must be positive");
}

void CapacityErrorAnalysis::observe(const Snapshot& snapshot) {
  const bool sample = observed_hours_ % stride_ == 0;
  double sum_adv = 0.0;
  std::array<double, 4> sum_max{};

  for (const auto& relay : snapshot.relays) {
    auto& track = track_for(tracks_, relay.pop_index, [] {
      Track t;
      for (std::size_t w = 0; w < 4; ++w)
        t.max_adv[w] = std::make_unique<metrics::TrailingMax>(
            static_cast<std::size_t>(kWindowHours[w]));
      return t;
    });
    for (std::size_t w = 0; w < 4; ++w)
      track.max_adv[w]->push(relay.advertised_bits);

    sum_adv += relay.advertised_bits;
    for (std::size_t w = 0; w < 4; ++w) {
      const double cap = track.max_adv[w]->max();
      sum_max[w] += cap;
      if (sample && cap > 0.0) {
        track.rce_sum[w] += 1.0 - relay.advertised_bits / cap;
        ++track.rce_count[w];
      }
    }
  }

  for (std::size_t w = 0; w < 4; ++w)
    nce_[w].push_back(sum_max[w] > 0.0 ? 1.0 - sum_adv / sum_max[w] : 0.0);
  ++observed_hours_;
}

std::vector<double> CapacityErrorAnalysis::mean_rce_per_relay(
    Window w) const {
  const auto wi = static_cast<std::size_t>(w);
  std::vector<double> out;
  out.reserve(tracks_.size());
  for (const auto& [id, track] : tracks_) {
    (void)id;
    if (track.rce_count[wi] > 0)
      out.push_back(track.rce_sum[wi] /
                    static_cast<double>(track.rce_count[wi]));
  }
  return out;
}

const std::vector<double>& CapacityErrorAnalysis::nce_series(Window w) const {
  return nce_[static_cast<std::size_t>(w)];
}

// ------------------------------------------------------------------ weight

WeightErrorAnalysis::WeightErrorAnalysis(int sample_stride_hours)
    : stride_(sample_stride_hours) {
  if (stride_ <= 0) throw std::invalid_argument("stride must be positive");
}

void WeightErrorAnalysis::observe(const Snapshot& snapshot) {
  const bool sample = observed_hours_ % stride_ == 0;

  double total_weight = 0.0;
  for (const auto& relay : snapshot.relays)
    total_weight += relay.consensus_weight;
  if (total_weight <= 0.0) {
    ++observed_hours_;
    return;
  }

  // First pass: push maxima, accumulate the normalization for Cbar.
  std::array<double, 4> total_cap{};
  std::vector<std::array<double, 4>> caps(snapshot.relays.size());
  for (std::size_t i = 0; i < snapshot.relays.size(); ++i) {
    const auto& relay = snapshot.relays[i];
    auto& track = track_for(tracks_, relay.pop_index, [] {
      Track t;
      for (std::size_t w = 0; w < 4; ++w)
        t.max_adv[w] = std::make_unique<metrics::TrailingMax>(
            static_cast<std::size_t>(kWindowHours[w]));
      return t;
    });
    for (std::size_t w = 0; w < 4; ++w) {
      track.max_adv[w]->push(relay.advertised_bits);
      caps[i][w] = track.max_adv[w]->max();
      total_cap[w] += caps[i][w];
    }
  }

  // Second pass: RWE per relay, NWE accumulation.
  std::array<double, 4> tv{};
  for (std::size_t i = 0; i < snapshot.relays.size(); ++i) {
    const auto& relay = snapshot.relays[i];
    const double w_norm = relay.consensus_weight / total_weight;
    auto& track = tracks_.at(relay.pop_index);
    for (std::size_t w = 0; w < 4; ++w) {
      if (total_cap[w] <= 0.0) continue;
      const double c_norm = caps[i][w] / total_cap[w];
      tv[w] += std::abs(w_norm - c_norm);
      if (sample && c_norm > 0.0) {
        track.rwe_sum[w] += w_norm / c_norm;
        ++track.rwe_count[w];
      }
    }
  }
  for (std::size_t w = 0; w < 4; ++w) nwe_[w].push_back(tv[w] / 2.0);
  ++observed_hours_;
}

std::vector<double> WeightErrorAnalysis::mean_rwe_per_relay(Window w) const {
  const auto wi = static_cast<std::size_t>(w);
  std::vector<double> out;
  out.reserve(tracks_.size());
  for (const auto& [id, track] : tracks_) {
    (void)id;
    if (track.rwe_count[wi] > 0)
      out.push_back(track.rwe_sum[wi] /
                    static_cast<double>(track.rwe_count[wi]));
  }
  return out;
}

const std::vector<double>& WeightErrorAnalysis::nwe_series(Window w) const {
  return nwe_[static_cast<std::size_t>(w)];
}

// --------------------------------------------------------------- variation

VariationAnalysis::VariationAnalysis(int sample_stride_hours)
    : stride_(sample_stride_hours) {
  if (stride_ <= 0) throw std::invalid_argument("stride must be positive");
}

void VariationAnalysis::observe(const Snapshot& snapshot) {
  const bool sample = observed_hours_ % stride_ == 0;

  double total_weight = 0.0;
  for (const auto& relay : snapshot.relays)
    total_weight += relay.consensus_weight;
  if (total_weight <= 0.0) {
    ++observed_hours_;
    return;
  }

  for (const auto& relay : snapshot.relays) {
    auto& track = track_for(tracks_, relay.pop_index, [] {
      Track t;
      for (std::size_t w = 0; w < 4; ++w) {
        t.adv[w] = std::make_unique<metrics::RollingWindowStats>(
            static_cast<std::size_t>(kWindowHours[w]));
        t.weight[w] = std::make_unique<metrics::RollingWindowStats>(
            static_cast<std::size_t>(kWindowHours[w]));
      }
      return t;
    });
    const double w_norm = relay.consensus_weight / total_weight;
    for (std::size_t w = 0; w < 4; ++w) {
      track.adv[w]->push(relay.advertised_bits);
      track.weight[w]->push(w_norm);
      if (sample && track.adv[w]->count() >= 2) {
        track.adv_rsd_sum[w] += track.adv[w]->relative_stdev();
        track.weight_rsd_sum[w] += track.weight[w]->relative_stdev();
        ++track.count[w];
      }
    }
  }
  ++observed_hours_;
}

std::vector<double> VariationAnalysis::mean_advertised_rsd_per_relay(
    Window w) const {
  const auto wi = static_cast<std::size_t>(w);
  std::vector<double> out;
  for (const auto& [id, track] : tracks_) {
    (void)id;
    if (track.count[wi] > 0)
      out.push_back(track.adv_rsd_sum[wi] /
                    static_cast<double>(track.count[wi]));
  }
  return out;
}

std::vector<double> VariationAnalysis::mean_weight_rsd_per_relay(
    Window w) const {
  const auto wi = static_cast<std::size_t>(w);
  std::vector<double> out;
  for (const auto& [id, track] : tracks_) {
    (void)id;
    if (track.count[wi] > 0)
      out.push_back(track.weight_rsd_sum[wi] /
                    static_cast<double>(track.count[wi]));
  }
  return out;
}

}  // namespace flashflow::analysis
