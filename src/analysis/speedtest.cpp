#include "analysis/speedtest.h"

#include <algorithm>

#include "analysis/archive.h"
#include "analysis/error_analysis.h"
#include "metrics/stats.h"

namespace flashflow::analysis {

SpeedTestResult run_speed_test_experiment(const SpeedTestConfig& config,
                                          std::uint64_t seed) {
  const int total_days = config.warmup_days + 3 + config.cooldown_days;
  auto population =
      generate_population(config.population, total_days, seed);
  SyntheticArchive archive(std::move(population), seed ^ 0xDEADBEEF);

  SpeedTestResult result;
  result.test_start_hour = static_cast<std::int64_t>(config.warmup_days) * 24;
  result.test_end_hour = result.test_start_hour + config.test_duration_hours;
  archive.set_speed_test(result.test_start_hour, result.test_end_hour);

  WeightErrorAnalysis weight_analysis(/*sample_stride_hours=*/6);
  const std::int64_t horizon =
      std::min<std::int64_t>(archive.horizon_hours(),
                             static_cast<std::int64_t>(total_days) * 24);
  for (std::int64_t hour = 0; hour < horizon; ++hour) {
    const Snapshot snap = archive.step_hour();
    double total_adv = 0.0;
    for (const auto& r : snap.relays) total_adv += r.advertised_bits;
    result.capacity_series_bits.push_back(total_adv);
    weight_analysis.observe(snap);
  }
  result.weight_error_series =
      weight_analysis.nwe_series(Window::kMonth);

  // Baseline: mean over the last pre-test day; peak: max afterwards.
  const auto day_before_start =
      static_cast<std::size_t>(std::max<std::int64_t>(
          result.test_start_hour - 24, 0));
  std::vector<double> pre_cap, pre_err;
  for (std::size_t h = day_before_start;
       h < static_cast<std::size_t>(result.test_start_hour); ++h) {
    pre_cap.push_back(result.capacity_series_bits[h]);
    pre_err.push_back(result.weight_error_series[h]);
  }
  result.baseline_capacity_bits = metrics::mean(metrics::as_span(pre_cap));
  result.baseline_weight_error = metrics::mean(metrics::as_span(pre_err));

  for (std::size_t h = static_cast<std::size_t>(result.test_start_hour);
       h < result.capacity_series_bits.size(); ++h) {
    result.peak_capacity_bits =
        std::max(result.peak_capacity_bits, result.capacity_series_bits[h]);
    result.peak_weight_error =
        std::max(result.peak_weight_error, result.weight_error_series[h]);
  }
  return result;
}

}  // namespace flashflow::analysis
