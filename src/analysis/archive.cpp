#include "analysis/archive.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace flashflow::analysis {

namespace {
// Measurement circuits cannot exceed this download speed regardless of the
// relay's capacity (scanner/helper bottlenecks); compresses the TorFlow
// speed ratio on fast relays.
constexpr double kTorFlowSpeedCeilingBits = 50e6;
}  // namespace

SyntheticArchive::SyntheticArchive(std::vector<RelaySpec> population,
                                   std::uint64_t seed)
    : population_(std::move(population)), rng_(seed) {
  join_order_.resize(population_.size());
  for (std::size_t i = 0; i < population_.size(); ++i) join_order_[i] = i;
  std::sort(join_order_.begin(), join_order_.end(),
            [this](std::size_t a, std::size_t b) {
              return population_[a].join_hour < population_[b].join_hour;
            });
  for (const auto& r : population_)
    horizon_hours_ = std::max(horizon_hours_, r.leave_hour);
}

void SyntheticArchive::set_speed_test(std::int64_t start_hour,
                                      std::int64_t end_hour) {
  speed_test_start_ = start_hour;
  speed_test_end_ = end_hour;
}

void SyntheticArchive::activate_joiners() {
  while (next_join_ < join_order_.size() &&
         population_[join_order_[next_join_]].join_hour <= hour_) {
    const std::size_t idx = join_order_[next_join_++];
    if (population_[idx].leave_hour <= hour_) continue;  // zero-length life
    LiveRelay lr(idx, tor::ObservedBandwidth::archive_hourly());
    lr.next_publish_hour = hour_;
    live_.push_back(std::move(lr));
  }
}

void SyntheticArchive::deactivate_leavers() {
  live_.erase(std::remove_if(live_.begin(), live_.end(),
                             [this](const LiveRelay& lr) {
                               return population_[lr.pop_index].leave_hour <=
                                      hour_;
                             }),
              live_.end());
}

Snapshot SyntheticArchive::step_hour() {
  activate_joiners();
  deactivate_leavers();

  const bool speed_test_active =
      hour_ >= speed_test_start_ && hour_ < speed_test_end_;

  Snapshot snap;
  snap.hour = hour_;
  snap.relays.reserve(live_.size());
  for (auto& lr : live_) {
    const RelaySpec& spec = population_[lr.pop_index];

    // Hourly utilization: diurnal + AR(1) deviation + occasional bursts.
    const double hour_of_day = static_cast<double>(hour_ % 24);
    const double diurnal =
        spec.diurnal_amplitude *
        std::sin(2.0 * std::numbers::pi * (hour_of_day - 6.0) / 24.0);
    lr.ar_state = 0.9 * lr.ar_state + rng_.normal(0.0, spec.noise_sigma);
    // Months-timescale demand drift: clients gradually discover (or
    // abandon) a relay, so the utilization level wanders over the year.
    lr.drift_state =
        0.9995 * lr.drift_state + rng_.normal(0.0, spec.drift_sigma);
    if (lr.burst_hours_left <= 0.0 && rng_.chance(spec.burst_prob_per_hour))
      lr.burst_hours_left = rng_.uniform(1.0, 3.0);
    double utilization = std::clamp(
        spec.base_utilization + diurnal + lr.ar_state + lr.drift_state, 0.0,
        1.0);
    if (lr.burst_hours_left > 0.0) {
      utilization = std::max(utilization, rng_.uniform(0.85, 1.0));
      lr.burst_hours_left -= 1.0;
    }

    // Hourly peak throughput sample fed to the observed-bandwidth
    // estimator: short bursts within the hour exceed the hourly mean a
    // little, but an under-utilized relay's peak stays well below capacity.
    const double effective_cap =
        spec.rate_limit_bits > 0.0
            ? std::min(spec.capacity_bits, spec.rate_limit_bits)
            : spec.capacity_bits;
    double peak = std::min(effective_cap, effective_cap * utilization *
                                              rng_.uniform(1.02, 1.15));
    if (speed_test_active) peak = effective_cap * rng_.uniform(0.95, 1.0);
    lr.observed.record(peak);

    // Descriptor publication every 18 hours. Real advertised bandwidths
    // fluctuate well beyond the pure 5-day-max algorithm (Appendix A finds
    // a median per-relay RSD of 32% even within a day); the reporting
    // noise models read/write-history asymmetries and load swings between
    // publications.
    if (hour_ >= lr.next_publish_hour) {
      // Reporting noise reflects load fluctuation between publications;
      // while the speed-test flood pins the 5-day maximum at capacity
      // (and for the 5 days it stays in history), successive descriptors
      // agree much more closely.
      double span = spec.publish_noise_span;
      const bool flood_in_history =
          speed_test_start_ >= 0 && hour_ >= speed_test_start_ &&
          hour_ < speed_test_end_ + 5 * 24;
      if (flood_in_history) span *= 0.25;
      lr.advertised_bits =
          tor::advertised_bandwidth(lr.observed.observed_bits(),
                                    spec.rate_limit_bits) *
          (1.0 - rng_.uniform(0.0, span));
      lr.next_publish_hour = hour_ + 18;
    }

    // TorFlow measurement-noise process: slowly wandering multiplicative
    // noise on the measured download speed.
    lr.ratio_state = std::clamp(
        0.8 * lr.ratio_state + 0.2 * rng_.log_normal(0.0, 0.45), 0.05, 5.0);

    // Consensus weights use a stale advertised value (TorFlow takes days
    // to re-measure the network).
    lr.advertised_history.push_back(lr.advertised_bits);
    if (static_cast<std::int64_t>(lr.advertised_history.size()) >
        weight_lag_hours_ + 1)
      lr.advertised_history.pop_front();
    const double lagged_advertised = lr.advertised_history.front();

    if (lr.advertised_bits > 0.0) {
      SnapshotRelay sr;
      sr.pop_index = lr.pop_index;
      sr.advertised_bits = lr.advertised_bits;
      // Speed measured through the relay: proportional to its bandwidth,
      // times measurement noise, saturating at the measurement circuit's
      // ceiling (scanner and helper-relay bottlenecks keep download speeds
      // from scaling linearly on fast relays). The final TorFlow ratio
      // (speed / mean speed) is applied below once the mean is known.
      sr.consensus_weight = std::min(lagged_advertised * lr.ratio_state,
                                     kTorFlowSpeedCeilingBits);
      sr.true_capacity_bits = effective_cap;
      snap.relays.push_back(sr);
    }
  }

  // TorFlow's weight = advertised * (measured speed / mean measured speed).
  // Fast relays have above-mean speeds (ratio > 1) and slow relays below
  // (ratio < 1), so weight grows ~quadratically in bandwidth — this is why
  // most relays end up under-weighted while a few fast ones absorb the
  // weight mass (Fig 3).
  if (!snap.relays.empty()) {
    double mean_speed = 0.0;
    for (const auto& sr : snap.relays) mean_speed += sr.consensus_weight;
    mean_speed /= static_cast<double>(snap.relays.size());
    if (mean_speed > 0.0) {
      for (auto& sr : snap.relays) {
        const double ratio = sr.consensus_weight / mean_speed;
        sr.consensus_weight = sr.advertised_bits * ratio;
      }
    }
  }
  ++hour_;
  return snap;
}

}  // namespace flashflow::analysis
