// Streaming implementations of the §3 / Appendix A analyses over archive
// snapshots: capacity error (Figs 1-2), weight error (Figs 3-4), and
// variation (Fig 10).
//
// Each analyzer consumes hourly snapshots and maintains O(1)-per-hour
// per-relay state (trailing maxima / rolling stats), matching the paper's
// equations:
//   C(r,t,p)  = max advertised over window p      (Eq 1, TrailingMax)
//   RCE       = 1 - A/C                           (Eq 2)
//   NCE       = 1 - sum A / sum C                 (Eq 3)
//   RWE       = W / Cbar                          (Eq 5)
//   NWE       = (1/2) sum |W - Cbar|              (Eq 6)
//   RSD       = stdev/mean over window            (Eq 7, RollingWindowStats)
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "analysis/archive.h"
#include "metrics/timeseries.h"

namespace flashflow::analysis {

/// The four window lengths used throughout §3, in hours.
enum class Window : std::size_t { kDay = 0, kWeek = 1, kMonth = 2, kYear = 3 };
inline constexpr std::array<std::int64_t, 4> kWindowHours = {24, 168, 720,
                                                             8760};
inline constexpr std::array<const char*, 4> kWindowNames = {"day", "week",
                                                            "month", "year"};

/// Figs 1 & 2: relay and network capacity error.
class CapacityErrorAnalysis {
 public:
  /// `sample_stride_hours` subsamples the error accumulation (the trailing
  /// maxima still see every hour). 1 = paper-exact hourly sampling.
  explicit CapacityErrorAnalysis(int sample_stride_hours = 1);

  void observe(const Snapshot& snapshot);

  /// Fig 1: per-relay mean RCE (fractions in [0,1]) for a window; one
  /// entry per relay that accumulated at least one sample.
  std::vector<double> mean_rce_per_relay(Window w) const;

  /// Fig 2: hourly NCE series for a window.
  const std::vector<double>& nce_series(Window w) const;

 private:
  struct Track {
    std::array<std::unique_ptr<metrics::TrailingMax>, 4> max_adv;
    std::array<double, 4> rce_sum{};
    std::array<std::int64_t, 4> rce_count{};
  };
  int stride_;
  std::int64_t observed_hours_ = 0;
  std::map<std::size_t, Track> tracks_;
  std::array<std::vector<double>, 4> nce_;
};

/// Figs 3 & 4: relay and network weight error against the max-advertised
/// capacity proxy.
class WeightErrorAnalysis {
 public:
  explicit WeightErrorAnalysis(int sample_stride_hours = 1);

  void observe(const Snapshot& snapshot);

  /// Fig 3: per-relay mean RWE (ratios; plot log10).
  std::vector<double> mean_rwe_per_relay(Window w) const;

  /// Fig 4: hourly NWE series.
  const std::vector<double>& nwe_series(Window w) const;

 private:
  struct Track {
    std::array<std::unique_ptr<metrics::TrailingMax>, 4> max_adv;
    std::array<double, 4> rwe_sum{};
    std::array<std::int64_t, 4> rwe_count{};
  };
  int stride_;
  std::int64_t observed_hours_ = 0;
  std::map<std::size_t, Track> tracks_;
  std::array<std::vector<double>, 4> nwe_;
};

/// Fig 10: mean relative standard deviation of advertised bandwidths and of
/// normalized consensus weights, per relay and window.
class VariationAnalysis {
 public:
  explicit VariationAnalysis(int sample_stride_hours = 1);

  void observe(const Snapshot& snapshot);

  std::vector<double> mean_advertised_rsd_per_relay(Window w) const;
  std::vector<double> mean_weight_rsd_per_relay(Window w) const;

 private:
  struct Track {
    std::array<std::unique_ptr<metrics::RollingWindowStats>, 4> adv;
    std::array<std::unique_ptr<metrics::RollingWindowStats>, 4> weight;
    std::array<double, 4> adv_rsd_sum{};
    std::array<double, 4> weight_rsd_sum{};
    std::array<std::int64_t, 4> count{};
  };
  int stride_;
  std::int64_t observed_hours_ = 0;
  std::map<std::size_t, Track> tracks_;
};

}  // namespace flashflow::analysis
