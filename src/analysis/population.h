// Relay population model for the §3 metrics-data analyses.
//
// The paper analyzes 11 years of archived descriptors/consensuses from the
// live Tor network, which we cannot ship. This module generates a synthetic
// population whose relevant properties match what drives the paper's
// results: a heavy-tailed capacity distribution, network growth, relay
// churn, and — critically — *under-utilization with random load
// fluctuation*, which is what makes the observed-bandwidth heuristic
// underestimate capacity (§3.3's hypothesis).
//
// The population is generated at a 5% scale of the live network (a few
// hundred live relays at a time), mirroring the paper's own Shadow scale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/random.h"

namespace flashflow::analysis {

struct RelaySpec {
  std::string fingerprint;
  double capacity_bits = 0;    // fixed true capacity for the relay's life
  double rate_limit_bits = 0;  // operator limit; <= 0 unlimited
  std::int64_t join_hour = 0;
  std::int64_t leave_hour = 0;  // exclusive
  // Utilization process parameters.
  double base_utilization = 0.4;  // long-run mean fraction of capacity used
  double diurnal_amplitude = 0.15;
  double noise_sigma = 0.1;       // AR(1) innovation (hours timescale)
  double burst_prob_per_hour = 0.004;  // chance of a near-capacity burst
  /// Slow (months-timescale) random-walk innovation on the utilization
  /// level; drives the year-window error growth in Figs 1/2.
  double drift_sigma = 0.004;
  /// Span of the per-descriptor reporting noise: advertised is scaled by
  /// 1 - U(0,1)*span. Small relays report noisier values.
  double publish_noise_span = 0.4;
};

struct PopulationParams {
  int initial_relays = 220;
  /// Live-relay count multiplies by this factor per year (Tor grew from
  /// ~1,000 to ~6,500 relays over the analysis window; at 5% scale from
  /// ~50 to ~325).
  double growth_per_year = 1.13;
  /// Fraction of live relays leaving per day (replaced + growth).
  double churn_per_day = 0.005;
  /// Log-normal capacity mixture: most relays are slow, a tail is fast.
  double lognormal_mu = 16.6;     // exp(mu) ~ 16 Mbit/s
  double lognormal_sigma = 1.45;
  double max_capacity_bits = 1.0e9;   // fastest relay ~1 Gbit/s (July 2019)
  double min_capacity_bits = 0.25e6;  // slowest useful relays
  /// Fraction of relays configured with a rate limit below capacity.
  double rate_limited_fraction = 0.12;

  friend bool operator==(const PopulationParams&,
                         const PopulationParams&) = default;
};

/// Generates the full population covering `days` of simulated time.
/// Deterministic in (params, seed).
std::vector<RelaySpec> generate_population(const PopulationParams& params,
                                           int days, std::uint64_t seed);

/// Draws one capacity from the mixture (exposed for shadowsim sampling).
double sample_capacity(const PopulationParams& params, sim::Rng& rng);

/// Draws `count` capacities from the mixture; deterministic in
/// (params, seed). Convenience for scheduling/scenario experiments that
/// need a capacity sample without the churn machinery of
/// generate_population().
std::vector<double> sample_capacities(const PopulationParams& params,
                                      int count, std::uint64_t seed);

}  // namespace flashflow::analysis
