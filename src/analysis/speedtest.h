// The §3.4 relay speed-test experiment (Fig 5).
//
// Floods every live relay to capacity for a test window, which pushes
// relays' observed-bandwidth estimates up toward their true capacities.
// Network capacity estimates (sum of advertised bandwidths) rise by ~50%;
// TorFlow's lagging weights temporarily disagree with the improved
// capacity proxies, so network weight error rises by 5-10% and recovers
// after the weights catch up.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/population.h"

namespace flashflow::analysis {

struct SpeedTestConfig {
  PopulationParams population;
  int warmup_days = 30;          // settle observed-bandwidth estimates
  int test_duration_hours = 51;  // paper: "just over 2 days (51 hours)"
  int cooldown_days = 10;        // watch the decay (5-day history + lag)
};

struct SpeedTestResult {
  /// Hourly sum of advertised bandwidths (the Fig 5 "Capacity" curve).
  std::vector<double> capacity_series_bits;
  /// Hourly network weight error, Eq 6 with the month window.
  std::vector<double> weight_error_series;
  std::int64_t test_start_hour = 0;
  std::int64_t test_end_hour = 0;
  double baseline_capacity_bits = 0;  // mean over the last pre-test day
  double peak_capacity_bits = 0;      // max during/after the test
  double baseline_weight_error = 0;   // mean over the last pre-test day
  double peak_weight_error = 0;       // max during the test window (+lag)
};

SpeedTestResult run_speed_test_experiment(const SpeedTestConfig& config,
                                          std::uint64_t seed);

}  // namespace flashflow::analysis
