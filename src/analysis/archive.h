// Synthetic Tor-metrics archive: hourly consensus/descriptor generation.
//
// Runs the relay population hour by hour: each live relay's utilization
// follows a diurnal + AR(1) + burst process; the relay feeds its hourly
// peak throughput into Tor's observed-bandwidth algorithm (max over 5 days)
// and publishes an advertised bandwidth every 18 hours. A TorFlow-style
// consensus weight (advertised x noisy speed ratio) is produced hourly.
//
// The §3.4 speed-test experiment is reproduced by forcing full-capacity
// throughput samples during a configured window (Fig 5).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "analysis/population.h"
#include "sim/random.h"
#include "tor/observed_bandwidth.h"

namespace flashflow::analysis {

struct SnapshotRelay {
  std::size_t pop_index = 0;       // index into the population vector
  double advertised_bits = 0;      // latest published advertised bandwidth
  double consensus_weight = 0;     // unnormalized TorFlow-style weight
  double true_capacity_bits = 0;
};

struct Snapshot {
  std::int64_t hour = 0;
  std::vector<SnapshotRelay> relays;  // live relays only
};

class SyntheticArchive {
 public:
  SyntheticArchive(std::vector<RelaySpec> population, std::uint64_t seed);

  std::int64_t horizon_hours() const { return horizon_hours_; }
  std::int64_t current_hour() const { return hour_; }
  bool done() const { return hour_ >= horizon_hours_; }

  /// Advances one hour and returns that hour's consensus snapshot.
  Snapshot step_hour();

  /// Schedules the §3.4 speed test: every live relay is flooded to
  /// capacity during [start_hour, end_hour).
  void set_speed_test(std::int64_t start_hour, std::int64_t end_hour);

  /// TorFlow measurement staleness: consensus weights use the advertised
  /// bandwidth from `hours` ago (default 72). This is why Fig 5's weight
  /// error *rises* during the speed test — capacity estimates improve
  /// before the weights catch up.
  void set_weight_lag_hours(std::int64_t hours) { weight_lag_hours_ = hours; }

 private:
  struct LiveRelay {
    LiveRelay(std::size_t index, tor::ObservedBandwidth obs)
        : pop_index(index), observed(std::move(obs)) {}

    std::size_t pop_index = 0;
    tor::ObservedBandwidth observed;
    double ar_state = 0.0;       // AR(1) utilization deviation (hours)
    double drift_state = 0.0;    // slow random walk (months)
    double burst_hours_left = 0.0;
    double advertised_bits = 0.0;
    std::int64_t next_publish_hour = 0;
    double ratio_state = 1.0;    // TorFlow speed-ratio AR process
    std::deque<double> advertised_history;  // for the weight lag
  };

  void activate_joiners();
  void deactivate_leavers();

  std::vector<RelaySpec> population_;
  std::vector<std::size_t> join_order_;  // population indices by join hour
  std::size_t next_join_ = 0;
  std::vector<LiveRelay> live_;
  sim::Rng rng_;
  std::int64_t hour_ = 0;
  std::int64_t horizon_hours_ = 0;
  std::int64_t speed_test_start_ = -1;
  std::int64_t speed_test_end_ = -1;
  std::int64_t weight_lag_hours_ = 120;
};

}  // namespace flashflow::analysis
