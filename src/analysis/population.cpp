#include "analysis/population.h"

#include <algorithm>
#include <cmath>

namespace flashflow::analysis {

double sample_capacity(const PopulationParams& params, sim::Rng& rng) {
  const double cap =
      rng.log_normal(params.lognormal_mu, params.lognormal_sigma);
  return std::clamp(cap, params.min_capacity_bits, params.max_capacity_bits);
}

namespace {
RelaySpec make_relay(const PopulationParams& params, std::uint64_t index,
                     std::int64_t join_hour, std::int64_t horizon_hours,
                     sim::Rng& rng) {
  RelaySpec r;
  r.fingerprint = "relay-" + std::to_string(index);
  r.capacity_bits = sample_capacity(params, rng);
  if (rng.chance(params.rate_limited_fraction))
    r.rate_limit_bits = r.capacity_bits * rng.uniform(0.3, 0.9);
  r.join_hour = join_hour;
  // Lifetime mixture: many relays are stable for months to years (the
  // fingerprints that dominate the paper's per-relay statistics), the rest
  // short-lived (heavy-tailed, weeks). Mean ~380 days.
  const double lifetime_days = rng.chance(0.45)
                                   ? rng.uniform(180.0, 1460.0)
                                   : rng.pareto(6.0, 1.3);
  r.leave_hour = std::min<std::int64_t>(
      horizon_hours,
      join_hour + static_cast<std::int64_t>(lifetime_days * 24.0));
  r.base_utilization = std::clamp(rng.normal(0.42, 0.15), 0.05, 0.85);
  r.diurnal_amplitude = rng.uniform(0.05, 0.20);
  // Narrow enough that the 5-day observed-bandwidth max does NOT reach
  // capacity in ordinary operation (the §3 under-utilization phenomenon).
  r.noise_sigma = rng.uniform(0.02, 0.07);
  r.burst_prob_per_hour = rng.uniform(0.0005, 0.003);
  r.drift_sigma = rng.uniform(0.002, 0.007);
  // Popular (fast) relays see steadier demand, so they report less noise.
  r.publish_noise_span = r.capacity_bits > 100e6 ? rng.uniform(0.1, 0.4)
                                                 : rng.uniform(0.3, 0.9);
  return r;
}
}  // namespace

std::vector<RelaySpec> generate_population(const PopulationParams& params,
                                           int days, std::uint64_t seed) {
  sim::Rng rng(seed);
  const std::int64_t horizon_hours = static_cast<std::int64_t>(days) * 24;
  std::vector<RelaySpec> relays;
  std::uint64_t next_index = 0;

  // Initial cohort.
  for (int i = 0; i < params.initial_relays; ++i)
    relays.push_back(
        make_relay(params, next_index++, 0, horizon_hours, rng));

  // Hour-by-hour arrivals sized to sustain churn plus growth.
  double live_target = params.initial_relays;
  const double hourly_growth =
      std::pow(params.growth_per_year, 1.0 / (365.0 * 24.0));
  double arrival_accumulator = 0.0;
  // Track scheduled departures to size arrivals; approximate live count by
  // target trajectory (exact tracking is unnecessary for population shape).
  for (std::int64_t hour = 1; hour < horizon_hours; ++hour) {
    live_target *= hourly_growth;
    const double departures_per_hour =
        live_target * params.churn_per_day / 24.0;
    arrival_accumulator += departures_per_hour +
                           live_target * (hourly_growth - 1.0);
    while (arrival_accumulator >= 1.0) {
      arrival_accumulator -= 1.0;
      relays.push_back(
          make_relay(params, next_index++, hour, horizon_hours, rng));
    }
  }
  return relays;
}

std::vector<double> sample_capacities(const PopulationParams& params,
                                      int count, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<double> capacities;
  capacities.reserve(static_cast<std::size_t>(std::max(count, 0)));
  for (int i = 0; i < count; ++i)
    capacities.push_back(sample_capacity(params, rng));
  return capacities;
}

}  // namespace flashflow::analysis
