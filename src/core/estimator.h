// Capacity-estimate acceptance and retry logic (§4.2).
//
// A slot's estimate z is accepted only if it is small enough relative to the
// allocated capacity that it could only have come from a true capacity close
// to z:   accept  iff  z < sum(a_i) * (1 - eps1) / m.
// When accepted, the true capacity x satisfies
// z/(1+eps2) < x < z/(1-eps1), i.e. z in ((1-eps1)x, (1+eps2)x).
// Otherwise the relay is re-measured with guess z0' = max(z, 2*z0).
//
// New relays (unseen for a month) start from the 75th-percentile measured
// capacity of the past month.
#pragma once

#include <span>

#include "core/params.h"

namespace flashflow::core {

struct AcceptanceResult {
  bool accepted = false;
  double threshold_bits = 0;  // sum(a_i)(1-eps1)/m
};

/// Evaluates a slot estimate against the §4.2 acceptance condition.
AcceptanceResult evaluate_estimate(double estimate_bits,
                                   std::span<const double> allocations,
                                   const Params& params);

/// Next capacity guess after a failed (too-high) measurement:
/// max(z, 2 * z0) — guarantees the allocated capacity at least doubles.
double next_guess(double estimate_bits, double previous_guess_bits);

/// Prior capacity guess for new relays: the 75th percentile of the given
/// measured capacities (§4.2 "Measuring New Relays"). Requires non-empty.
double new_relay_prior(std::span<const double> measured_capacities);

/// Accuracy interval implied by an accepted estimate: the true capacity
/// lies in (z/(1+eps2), z/(1-eps1)).
struct CapacityInterval {
  double low_bits = 0;
  double high_bits = 0;
};
CapacityInterval implied_interval(double estimate_bits, const Params& params);

}  // namespace flashflow::core
