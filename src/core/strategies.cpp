#include "core/strategies.h"

#include <cmath>
#include <stdexcept>

#include "metrics/stats.h"

namespace flashflow::core {

double median_strategy(std::span<const double> per_second_bits,
                       int seconds) {
  if (seconds < 1 ||
      static_cast<std::size_t>(seconds) > per_second_bits.size())
    throw std::invalid_argument("median_strategy: bad duration");
  return metrics::median(
      per_second_bits.subspan(0, static_cast<std::size_t>(seconds)));
}

double lead_time_strategy(std::span<const double> per_second_bits,
                          int lead_seconds, int duration_seconds) {
  if (lead_seconds < 0 || duration_seconds <= lead_seconds ||
      static_cast<std::size_t>(duration_seconds) > per_second_bits.size())
    throw std::invalid_argument("lead_time_strategy: bad window");
  return metrics::median(per_second_bits.subspan(
      static_cast<std::size_t>(lead_seconds),
      static_cast<std::size_t>(duration_seconds - lead_seconds)));
}

DynamicResult dynamic_strategy(std::span<const double> per_second_bits,
                               int window_seconds, double tolerance) {
  if (window_seconds < 1 || tolerance <= 0.0)
    throw std::invalid_argument("dynamic_strategy: bad parameters");
  DynamicResult result;
  double previous_median = -1.0;
  const auto window = static_cast<std::size_t>(window_seconds);
  for (std::size_t start = 0; start + window <= per_second_bits.size();
       start += window) {
    const double med =
        metrics::median(per_second_bits.subspan(start, window));
    result.estimate_bits = med;
    result.seconds_used = static_cast<int>(start + window);
    if (previous_median > 0.0 &&
        std::abs(med - previous_median) <= tolerance * previous_median) {
      result.converged = true;
      return result;
    }
    previous_median = med;
  }
  return result;
}

}  // namespace flashflow::core
