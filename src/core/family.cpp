#include "core/family.h"

#include <numeric>
#include <stdexcept>

namespace flashflow::core {

FamilyMeasurement measure_family(
    const net::Topology& topo, const Params& params,
    std::span<const SlotRunner::ConcurrentTarget> targets,
    std::span<const double> individual_estimates_bits,
    const FamilyParams& family_params, std::uint64_t seed) {
  if (targets.empty() ||
      targets.size() != individual_estimates_bits.size())
    throw std::invalid_argument("measure_family: bad inputs");

  SlotRunner runner(topo, params, sim::Rng(seed));
  const auto outcomes = runner.run_concurrent(targets);

  FamilyMeasurement result;
  result.member_estimates_bits.reserve(outcomes.size());
  for (const auto& out : outcomes) {
    result.member_estimates_bits.push_back(out.estimate_bits);
    result.combined_bits += out.estimate_bits;
  }

  const double individual_sum =
      std::accumulate(individual_estimates_bits.begin(),
                      individual_estimates_bits.end(), 0.0);
  result.co_located =
      individual_sum > 0.0 &&
      result.combined_bits <
          family_params.co_location_threshold * individual_sum;
  result.per_member_capacity_bits =
      result.co_located
          ? result.combined_bits / static_cast<double>(outcomes.size())
          : 0.0;  // keep individual estimates when not co-located
  return result;
}

}  // namespace flashflow::core
