// Measurer capacity allocation (§4.2).
//
// To measure a relay with capacity guess z0, the BWAuth must allocate
// f * z0 total capacity across its measurers, where f is the excess factor.
// Allocation is greedy: repeatedly assign the measurer with the most
// residual capacity as much as it has (or as much as is still needed).
// Each measurer runs one measuring Tor process per otherwise-idle CPU core
// (at least one), each rate-limited to a_i / k_i, with an even share of the
// team's s sockets.
#pragma once

#include <span>
#include <vector>

#include "core/params.h"

namespace flashflow::core {

struct MeasurerShare {
  std::size_t measurer_index = 0;
  double allocated_bits = 0;  // a_i
  int processes = 0;          // k_i
  int sockets = 0;            // share of the team's s sockets
};

/// Caller-owned scratch for the zero-allocation allocator variants below.
/// Campaign workers run one §4.2 allocation per relay per slot; with a
/// persistent scratch the buffers reach steady-state capacity after the
/// first few slots and the allocator never touches the heap again.
/// Results are identical whether the scratch is fresh or reused.
struct AllocationScratch {
  std::vector<double> alloc;
  std::vector<double> residual;
  std::vector<MeasurerShare> shares;
};

/// Greedily allocates `required_bits` across measurers with the given
/// residual capacities. Returns per-measurer allocations a_i (aligned with
/// `residual_caps`; zero entries mean "not participating"). Throws
/// std::runtime_error if the total residual capacity is insufficient.
std::vector<double> allocate_greedy(std::span<const double> residual_caps,
                                    double required_bits);

/// Scratch-based variant: writes the allocations into `scratch.alloc`
/// (using `scratch.residual` as the greedy working copy) and returns a
/// span over them, valid until the next call with the same scratch.
std::span<const double> allocate_greedy(std::span<const double> residual_caps,
                                        double required_bits,
                                        AllocationScratch& scratch);

/// Expands raw allocations into full shares: process counts (one per core,
/// at least one, only for participating measurers) and socket splits
/// (participants share `params.sockets` evenly, as the paper prescribes
/// s/m sockets per measurer and s/(m k_i) per process).
std::vector<MeasurerShare> make_shares(std::span<const double> allocations,
                                       std::span<const int> measurer_cores,
                                       const Params& params);

/// Scratch-based variant: writes into `scratch.shares` and returns a span
/// over them, valid until the next call with the same scratch.
/// `allocations` may alias `scratch.alloc` (the campaign hot path chains
/// the two scratch calls on one AllocationScratch).
std::span<const MeasurerShare> make_shares(std::span<const double> allocations,
                                           std::span<const int> measurer_cores,
                                           const Params& params,
                                           AllocationScratch& scratch);

}  // namespace flashflow::core
