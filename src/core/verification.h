// Measurement verification (§4.1, §5).
//
// The measurer records each sent cell's plaintext with probability p and
// checks the returned contents. A relay that forges k responses evades
// detection only if none of the k forged cells was recorded:
// Pr[undetected] = (1 - p)^k. These helpers compute that math and simulate
// the sampled check for fluid slots (where cells are not individually
// materialized).
#pragma once

#include <cstdint>

#include "sim/random.h"

namespace flashflow::core {

/// Probability that a relay forging `forged_cells` responses evades
/// detection entirely: (1 - p)^k.
double evasion_probability(double check_probability,
                           std::uint64_t forged_cells);

/// Number of forged cells needed to drive detection probability above the
/// given level: smallest k with 1-(1-p)^k >= detect_probability.
std::uint64_t cells_for_detection(double check_probability,
                                  double detect_probability);

/// Samples whether a forging relay is caught during a slot that carried
/// `total_bytes` of measurement traffic in `cell_size`-byte cells, with
/// spot-check probability p. (A checked forged cell mismatches with
/// overwhelming probability, so detection == "any forged cell checked".)
bool sample_detection(double check_probability, double total_bytes,
                      double cell_size, sim::Rng& rng);

}  // namespace flashflow::core
