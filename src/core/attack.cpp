#include "core/attack.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "metrics/stats.h"
#include "net/units.h"

namespace flashflow::core {

namespace {
double binomial_pmf(int n, int k, double p) {
  // log-space for stability: C(n,k) p^k (1-p)^(n-k)
  double log_c = 0.0;
  for (int i = 1; i <= k; ++i)
    log_c += std::log(static_cast<double>(n - k + i)) -
             std::log(static_cast<double>(i));
  double log_p = 0.0;
  if (k > 0) {
    if (p <= 0.0) return 0.0;
    log_p += k * std::log(p);
  }
  if (n - k > 0) {
    if (p >= 1.0) return 0.0;
    log_p += (n - k) * std::log1p(-p);
  }
  return std::exp(log_c + log_p);
}
}  // namespace

double part_time_failure_probability(int n_bwauths, double q) {
  if (n_bwauths <= 0) throw std::invalid_argument("need >= 1 BWAuth");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("q out of [0,1]");
  // Attack fails when the median lands on a low-capacity measurement: at
  // least ceil((n+1)/2) BWAuths measured during a low slot, each with
  // independent probability 1-q.
  const int needed = (n_bwauths + 2) / 2;  // ceil((n+1)/2)
  double prob = 0.0;
  for (int k = needed; k <= n_bwauths; ++k)
    prob += binomial_pmf(n_bwauths, k, 1.0 - q);
  return prob;
}

double simulate_part_time_attack(int n_bwauths, double q, int trials,
                                 std::uint64_t seed) {
  if (trials <= 0) throw std::invalid_argument("trials <= 0");
  sim::Rng rng(seed);
  int failures = 0;
  std::vector<double> estimates;
  for (int trial = 0; trial < trials; ++trial) {
    estimates.clear();
    for (int b = 0; b < n_bwauths; ++b) {
      // The schedule is secret, so the relay's high-capacity window covers
      // a uniformly random fraction q of each BWAuth's slot choice.
      estimates.push_back(rng.chance(q) ? 1.0 : 0.0);
    }
    const double med =
        metrics::median({estimates.data(), estimates.size()});
    if (med < 1.0) ++failures;
  }
  return static_cast<double>(failures) / trials;
}

InflationResult background_lie_advantage(const net::Topology& topo,
                                         const Params& params,
                                         const RelayTarget& target,
                                         const Team& team,
                                         std::uint64_t seed) {
  InflationResult result;
  BWAuth honest_auth(topo, params, team, net::mbit(51), seed);
  RelayTarget honest = target;
  honest.behavior = TargetBehavior::kHonest;
  result.honest_estimate_bits =
      honest_auth.measure_relay(honest).estimate_bits;

  BWAuth lying_auth(topo, params, team, net::mbit(51), seed);
  RelayTarget lying = target;
  lying.behavior = TargetBehavior::kLieAboutBackground;
  result.lying_estimate_bits = lying_auth.measure_relay(lying).estimate_bits;

  result.advantage = result.honest_estimate_bits > 0.0
                         ? result.lying_estimate_bits /
                               result.honest_estimate_bits
                         : 0.0;
  return result;
}

int sybil_queue_delay_slots(int sybil_count, double sybil_estimate_bits,
                            double benign_estimate_bits,
                            double spare_capacity_per_slot_bits,
                            const Params& params) {
  if (spare_capacity_per_slot_bits <= 0.0)
    throw std::invalid_argument("no spare capacity");
  const double f = params.excess_factor();
  // FCFS: the benign relay waits for all sybils ahead of it.
  double pending = f * sybil_estimate_bits * sybil_count;
  int slot = 0;
  while (true) {
    double room = spare_capacity_per_slot_bits;
    // Sybils drain first (they arrived earlier).
    const double drained = std::min(pending, room);
    pending -= drained;
    room -= drained;
    if (pending <= 0.0 && room >= f * benign_estimate_bits) return slot;
    ++slot;
  }
}

}  // namespace flashflow::core
