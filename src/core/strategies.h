// Measurement-duration strategies (Appendix E.3/E.4).
//
// The deployed strategy takes the median of 30 per-second samples. The
// paper also evaluated and rejected two alternatives:
//   - median with an ignored lead time (skip the first i seconds to dodge
//     TCP slow start — unnecessary, since many parallel sockets saturate
//     immediately, so it just behaves like a shorter simple median);
//   - dynamic duration (stop once the windowed median stabilizes — usually
//     worse than the fixed-length median).
// All three are implemented here so the E.3/E.4 comparison is runnable.
#pragma once

#include <span>

namespace flashflow::core {

/// Simple strategy: median of the first `seconds` samples. Requires
/// 1 <= seconds <= samples.size().
double median_strategy(std::span<const double> per_second_bits, int seconds);

/// Median with ignored lead time: median of samples [lead, duration).
/// Requires 0 <= lead < duration <= samples.size().
double lead_time_strategy(std::span<const double> per_second_bits,
                          int lead_seconds, int duration_seconds);

/// Dynamic duration: samples are viewed in consecutive windows of
/// `window_seconds`; once the median of the newest window changes by less
/// than `tolerance` (relative) from the previous window's, the measurement
/// stops and that window's median is the result. Falls back to the last
/// window if it never stabilizes.
struct DynamicResult {
  double estimate_bits = 0;
  int seconds_used = 0;
  bool converged = false;
};
DynamicResult dynamic_strategy(std::span<const double> per_second_bits,
                               int window_seconds, double tolerance);

}  // namespace flashflow::core
