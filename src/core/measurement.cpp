#include "core/measurement.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/verification.h"
#include "metrics/stats.h"
#include "net/tcp_model.h"
#include "net/units.h"
#include "tor/cell.h"

namespace flashflow::core {

double clamp_background(double reported_y_bits, double x_bits,
                        double ratio_r) {
  if (ratio_r < 0.0 || ratio_r >= 1.0)
    throw std::invalid_argument("clamp_background: bad ratio");
  return std::min(reported_y_bits, x_bits * ratio_r / (1.0 - ratio_r));
}

SlotRunner::SlotRunner(const net::Topology& topo, Params params, sim::Rng rng)
    : topo_(topo), params_(params), rng_(std::move(rng)) {}

double SlotRunner::offered_rate(const MeasurerSlot& m,
                                net::HostId relay_host) const {
  if (m.sockets <= 0 || m.allocated_bits <= 0.0) return 0.0;
  double rtt = topo_.rtt(m.host, relay_host);
  if (rtt <= 0.0) rtt = 0.0005;  // co-located hosts: sub-millisecond path
  const double per_socket = net::tcp_socket_throughput(
      topo_.host(m.host).kernel, rtt, topo_.loaded_loss(m.host, relay_host));
  return std::min(m.allocated_bits, per_socket * m.sockets);
}

SlotOutcome SlotRunner::run(const tor::RelayModel& relay,
                            net::HostId relay_host,
                            std::span<const MeasurerSlot> team,
                            TargetBehavior behavior) {
  ConcurrentTarget target;
  target.relay = &relay;
  target.host = relay_host;
  target.team.assign(team.begin(), team.end());
  target.behavior = behavior;
  return run_concurrent({&target, 1}).front();
}

std::vector<SlotOutcome> SlotRunner::run_concurrent(
    std::span<const ConcurrentTarget> targets) {
  return run_concurrent(targets, scratch_);
}

std::vector<SlotOutcome> SlotRunner::run_concurrent(
    std::span<const ConcurrentTarget> targets, SlotWorkspace& ws) {
  const int t_seconds = params_.slot_seconds;
  const std::size_t n_targets = targets.size();
  const bool have_faults = fault_plan_ != nullptr;

  // Whole-slot timeout: the slot never runs. Series stay empty (shaped
  // per team so downstream consumers can still iterate), every target
  // fails, and rng_ is never touched — the decision is the plan's alone.
  if (have_faults && fault_plan_->slot_timeout(fault_slot_)) {
    std::vector<SlotOutcome> outcomes(n_targets);
    for (std::size_t t = 0; t < n_targets; ++t) {
      outcomes[t].x_by_measurer.resize(targets[t].team.size());
      outcomes[t].quality = 0.0;
      outcomes[t].failed = true;
      outcomes[t].failure = SlotFailure::kTimeout;
    }
    return outcomes;
  }

  // ---------------------------------------------------------- slot setup --
  // Everything invariant across the slot's seconds is computed once here,
  // into workspace buffers that persist across slots; the per-second loop
  // below performs no heap allocation.

  // Member arena layout: target t's measurers occupy
  // [team_offset_[t], team_offset_[t+1]).
  ws.team_offset_.resize(n_targets + 1);
  ws.team_offset_[0] = 0;
  for (std::size_t t = 0; t < n_targets; ++t)
    ws.team_offset_[t + 1] = ws.team_offset_[t] + targets[t].team.size();
  const std::size_t n_members = ws.team_offset_[n_targets];

  // Fault draws, resolved up front from the plan's pure per-slot oracle:
  // when a member's traffic stops (its flow leaves the fair-share
  // contention at that boundary), when the relay drops off, and how much
  // of each member's report the BWAuth will receive. segment_bounds_
  // partitions [0, t) at the distinct crash seconds — the ranges over
  // which the flow set is constant. Without faults none of this runs and
  // the slot executes as a single [0, t) segment.
  ws.segment_bounds_.clear();
  ws.segment_bounds_.push_back(0);
  if (have_faults) {
    ws.member_crash_.resize(n_members);
    ws.report_end_.resize(n_members);
    ws.relay_down_.resize(n_targets);
    for (std::size_t t = 0; t < n_targets; ++t) {
      const ConcurrentTarget& target = targets[t];
      const std::uint64_t relay_hash =
          target.name_hash != 0 ? target.name_hash
                                : sim::hash_tag(target.relay->name);
      const int down = fault_plan_->relay_disconnect_second(
          fault_slot_, relay_hash, t_seconds);
      ws.relay_down_[t] = down >= 0 ? down : t_seconds;
      for (std::size_t i = 0; i < target.team.size(); ++i) {
        const std::size_t m = ws.team_offset_[t] + i;
        const int crash = fault_plan_->measurer_crash_second(
            fault_slot_, target.team[i].host, t_seconds);
        ws.member_crash_[m] = crash >= 0 ? crash : t_seconds;
        // A crashed member's log covers only its live seconds; report
        // faults shorten (or drop) what arrives on top of that.
        ws.report_end_[m] = std::min(
            ws.member_crash_[m],
            fault_plan_->report_seconds(fault_slot_, relay_hash,
                                        target.team[i].host, t_seconds));
        if (crash > 0 && crash < t_seconds)
          ws.segment_bounds_.push_back(crash);
      }
    }
    std::sort(ws.segment_bounds_.begin(), ws.segment_bounds_.end());
    ws.segment_bounds_.erase(std::unique(ws.segment_bounds_.begin(),
                                         ws.segment_bounds_.end()),
                             ws.segment_bounds_.end());
  }
  ws.segment_bounds_.push_back(t_seconds);

  // Noise processes, one per target, plus per-slot condition factors.
  //
  // Relay-side: a slot-long capacity factor plus per-second wobble and
  // shallow congestion episodes — the relay's own weather. Together these
  // drive the run-to-run spread in Fig 6.
  //
  // Path-side: each measurer's *delivery* toward the target carries its
  // own slot-long factor (transit congestion between measurer and relay).
  // This is what the multiplier m buys headroom against: with allocation
  // m*z0, a delivery dip to fraction d still saturates the relay as long
  // as m*d >= 1, which is why m = 2.25 eliminates the low outliers of
  // Fig 15 while m = 1.5 does not.
  //
  // The rng_ call sequence in this loop is load-bearing: it must match the
  // pre-workspace implementation draw for draw so fixed-seed results stay
  // bit-identical (tests/test_golden_determinism.cpp pins this).
  //
  // Each target's noise series comes from its own forked substream, so the
  // whole slot's worth of factors can be drawn here in one batched pass
  // per target (tor::RelayNoise::fill_factors) without perturbing any
  // other stream — the per-second loop then just reads the arena.
  const std::size_t n_seconds = static_cast<std::size_t>(t_seconds);
  ws.slot_factor_.resize(n_targets);
  ws.path_factor_.resize(n_members);
  ws.noise_factor_.resize(n_targets * n_seconds);
  for (std::size_t t = 0; t < n_targets; ++t) {
    const ConcurrentTarget& target = targets[t];
    const std::uint64_t name_hash = target.name_hash != 0
                                        ? target.name_hash
                                        : sim::hash_tag(target.relay->name);
    // Identical substream to forking on relay->name + "/noise": FNV-1a
    // continues from the precomputed name hash.
    tor::RelayNoise noise(tor::RelayNoise::Params{},
                          rng_.fork(sim::hash_tag("/noise", name_hash)));
    noise.fill_factors(
        {ws.noise_factor_.data() + t * n_seconds, n_seconds});
    ws.slot_factor_[t] =
        std::clamp(1.0 + rng_.normal(-0.01, 0.04), 0.85, 1.04);
    for (std::size_t i = 0; i < target.team.size(); ++i) {
      // Occasionally a measurer's transit path has a bad half hour and
      // delivers well under its allocation; most slots see mild weather.
      const double factor =
          rng_.chance(0.12)
              ? rng_.uniform(0.36, 0.70)
              : std::clamp(1.0 + rng_.normal(-0.02, 0.06), 0.75, 1.02);
      ws.path_factor_[ws.team_offset_[t] + i] = factor;
    }
  }

  // Per-second capacity jitter, batched off the slot RNG. The loop below
  // used to draw one normal per (second, target) pair, second-major; a
  // single normal_fill consumes the identical raw-draw sequence (nothing
  // else touches rng_ between setup and verification), so the arena holds
  // bit-identical values at the same (second, target) positions.
  ws.jitter_.resize(n_seconds * n_targets);
  rng_.normal_fill(ws.jitter_);

  // Total sockets pointed at each target (drives the CPU overhead model),
  // and the second-invariant part of the relay's capacity: ground_truth()
  // composes NIC/CPU/rate-limit including the token bucket's quantization
  // shave, none of which changes within a slot.
  ws.sockets_at_target_.assign(n_targets, 0);
  ws.base_capacity_.resize(n_targets);
  for (std::size_t t = 0; t < n_targets; ++t) {
    for (const auto& m : targets[t].team)
      ws.sockets_at_target_[t] += m.sockets;
    ws.base_capacity_[t] =
        targets[t].relay->ground_truth(ws.sockets_at_target_[t]);
  }

  std::vector<SlotOutcome> outcomes(n_targets);
  for (std::size_t t = 0; t < n_targets; ++t) {
    outcomes[t].x_bits.reserve(t_seconds);
    outcomes[t].y_reported_bits.reserve(t_seconds);
    outcomes[t].y_clamped_bits.reserve(t_seconds);
    outcomes[t].z_bits.reserve(t_seconds);
    outcomes[t].x_by_measurer.resize(targets[t].team.size());
    for (auto& series : outcomes[t].x_by_measurer)
      series.reserve(t_seconds);
  }

  // Shared resources: measurer NIC (min of up/down since echo traffic rides
  // both directions at the measured rate) and target-host NIC.
  // Resource layout: [measurer hosts..., target hosts..., per-target relay].
  ws.hosts_.clear();
  const auto host_resource = [&ws](net::HostId h) {
    for (std::size_t i = 0; i < ws.hosts_.size(); ++i)
      if (ws.hosts_[i] == h) return i;
    ws.hosts_.push_back(h);
    return ws.hosts_.size() - 1;
  };
  // First pass to assign indices deterministically.
  for (const auto& target : targets) {
    host_resource(target.host);
    for (const auto& m : target.team) host_resource(m.host);
  }
  const std::size_t relay_resource_base = ws.hosts_.size();

  // Host NIC capacities are slot constants; only the per-target relay
  // resources (relay_resource_base + t) are rewritten each second.
  ws.resources_.resize(relay_resource_base + n_targets);
  for (std::size_t h = 0; h < relay_resource_base; ++h) {
    const auto& host = topo_.host(ws.hosts_[h]);
    ws.resources_[h].capacity =
        std::min(host.nic_up_bits, host.nic_down_bits);
  }

  // Hoisted flow set. A flow's offered rate — the per-socket TCP model on
  // the measurer→relay path (RTT, loaded loss, kernel profile) capped by
  // its allocation, times the slot's path factor — is a slot invariant, so
  // the path resolution and tcp_socket_throughput happen once per
  // (measurer, target) pair per slot, not once per second. Paths come from
  // the topology's bulk fill_paths hook: one virtual call per target per
  // slot (team hosts gathered into a contiguous arena first), keeping the
  // per-second loop free of both allocation and virtual dispatch whatever
  // PathModel backs the topology. flows_ and flow_ids_ are overwritten in
  // place and never shrunk, so each flow's resource-index vector keeps its
  // capacity across slots.
  ws.member_hosts_.resize(n_members);
  ws.path_chars_.resize(n_members);
  const std::uint64_t fill_start = probe_ ? probe_->now() : 0;
  for (std::size_t t = 0; t < n_targets; ++t) {
    for (std::size_t i = 0; i < targets[t].team.size(); ++i)
      ws.member_hosts_[ws.team_offset_[t] + i] = targets[t].team[i].host;
    const std::size_t lo = ws.team_offset_[t];
    const std::size_t len = ws.team_offset_[t + 1] - lo;
    topo_.fill_paths(targets[t].host, {ws.member_hosts_.data() + lo, len},
                     {ws.path_chars_.data() + lo, len});
  }
  if (probe_) probe_->note_fill_paths(probe_->now() - fill_start, n_targets);
  std::size_t n_flows = 0;
  for (std::size_t t = 0; t < n_targets; ++t) {
    const std::size_t target_res = host_resource(targets[t].host);
    for (std::size_t i = 0; i < targets[t].team.size(); ++i) {
      const auto& m = targets[t].team[i];
      // Same operation order as offered_rate(), reading the pre-resolved
      // characteristics (paths are symmetric, so target→member equals the
      // member→target read offered_rate performs).
      double offered = 0.0;
      if (m.sockets > 0 && m.allocated_bits > 0.0) {
        const net::PathCharacteristics& pc =
            ws.path_chars_[ws.team_offset_[t] + i];
        double rtt = pc.rtt_s;
        if (rtt <= 0.0) rtt = 0.0005;  // co-located: sub-millisecond path
        const double per_socket = net::tcp_socket_throughput(
            topo_.host(m.host).kernel, rtt, pc.loaded_loss);
        offered = std::min(m.allocated_bits, per_socket * m.sockets);
      }
      offered *= ws.path_factor_[ws.team_offset_[t] + i];
      if (offered <= 0.0) continue;
      if (n_flows == ws.flows_.size()) {
        ws.flows_.emplace_back();
        ws.flow_ids_.emplace_back();
      }
      net::FairShareFlow& f = ws.flows_[n_flows];
      f.resources.assign(
          {host_resource(m.host), target_res, relay_resource_base + t});
      f.weight = std::max(1, m.sockets);
      f.cap = offered;
      ws.flow_ids_[n_flows] = {t, i};
      ++n_flows;
    }
  }
  // The flow set is a slot invariant: prepare it once so every per-second
  // solve skips validation, flattening and the initial weight sums.
  const std::uint64_t prep_start = probe_ ? probe_->now() : 0;
  ws.solver_.prepare({ws.flows_.data(), n_flows}, ws.resources_.size());
  if (probe_)
    probe_->note_prepare(probe_->now() - prep_start,
                         ws.solver_.prepared_active_flows());

  ws.relay_capacity_.resize(n_targets);
  ws.x_t_.resize(n_targets);
  ws.y_t_.resize(n_targets);
  ws.x_it_.resize(n_members);

  // Segment loop: between crash boundaries the flow set is constant. At
  // each boundary after the first, the crashed members' flows leave the
  // fair-share contention — their caps zero out, which the solver folds
  // away at prepare time, so the re-prepare happens here (outside the hot
  // region, at most a handful of times per faulted slot). The fault-free
  // path has exactly one segment [0, t): the per-second loop below then
  // runs the exact pre-fault code path, byte for byte.
  const std::size_t n_segments = ws.segment_bounds_.size() - 1;
  if (probe_) probe_->note_segments(static_cast<int>(n_segments));
  for (std::size_t seg = 0; seg < n_segments; ++seg) {
    const int seg_begin = ws.segment_bounds_[seg];
    const int seg_end = ws.segment_bounds_[seg + 1];
    if (seg > 0) {
      const std::uint64_t reprep_start = probe_ ? probe_->now() : 0;
      for (std::size_t k = 0; k < n_flows; ++k) {
        const auto [ft, fi] = ws.flow_ids_[k];
        if (ws.member_crash_[ws.team_offset_[ft] + fi] <= seg_begin)
          ws.flows_[k].cap = 0.0;
      }
      ws.solver_.prepare({ws.flows_.data(), n_flows}, ws.resources_.size());
      if (probe_)
        probe_->note_prepare(probe_->now() - reprep_start,
                             ws.solver_.prepared_active_flows());
    }
    // The segment's solve window brackets the FF_HOT region: clock reads
    // stay outside it, and the solve-seconds counter adds the whole range
    // in one step rather than incrementing per iteration.
    const std::uint64_t solve_start = probe_ ? probe_->now() : 0;

  // FF_HOT_BEGIN: per-second slot loop — ffcheck rejects allocation-shaped
  // calls until the matching FF_HOT_END (see src/lint/rules.h).
  // ------------------------------------------------------ per-second loop --
  // All stochastic series were batched into arenas above: this loop is
  // pure arithmetic (no rng_ draws, no libm transcendentals).
  for (int second = seg_begin; second < seg_end; ++second) {
    const std::size_t s = static_cast<std::size_t>(second);
    // Relay-internal capacity this second (CPU, rate limit + burst, noise).
    for (std::size_t t = 0; t < n_targets; ++t) {
      const auto& relay = *targets[t].relay;
      // The first second additionally spends the accumulated token bucket
      // (Fig 7's spike).
      double cap = ws.base_capacity_[t];
      if (relay.rate_limit_bits > 0.0 && second == 0)
        cap += relay.rate_limit_bits * relay.burst_seconds;
      // Noise plus a small absolute jitter that dominates for tiny relays
      // (jitter_[s][t] == the normal(0, 0.15 Mbit) the loop used to draw
      // here, scaled from the batched standard normals).
      cap = cap * ws.slot_factor_[t] * ws.noise_factor_[t * n_seconds + s] +
            net::mbit(0.15) * ws.jitter_[s * n_targets + t];
      ws.relay_capacity_[t] = std::max(cap, 0.0);
      // A disconnected relay forwards nothing from its drop second on.
      if (have_faults && second >= ws.relay_down_[t])
        ws.relay_capacity_[t] = 0.0;
    }

    // The relay reserves the ratio-r background allowance up front (§4.1:
    // it sends as much normal traffic as the maximum ratio allows), then
    // the measurement flows share the rest of the capacity and the NICs.
    for (std::size_t t = 0; t < n_targets; ++t) {
      // A relay lying about its background sends none at all, keeping the
      // capacity for the measurement.
      const double demand =
          targets[t].behavior == TargetBehavior::kLieAboutBackground
              ? 0.0
              : targets[t].relay->background_demand_bits;
      ws.y_t_[t] = std::min(
          demand, targets[t].relay->ratio_r * ws.relay_capacity_[t]);
    }

    for (std::size_t t = 0; t < n_targets; ++t)
      ws.resources_[relay_resource_base + t].capacity =
          std::max(ws.relay_capacity_[t] - ws.y_t_[t], 0.0);

    const auto rates = ws.solver_.solve_prepared(ws.resources_);

    std::fill(ws.x_t_.begin(), ws.x_t_.end(), 0.0);
    std::fill(ws.x_it_.begin(), ws.x_it_.end(), 0.0);
    for (std::size_t k = 0; k < n_flows; ++k) {
      const auto [t, i] = ws.flow_ids_[k];
      ws.x_it_[ws.team_offset_[t] + i] = rates[k];
      ws.x_t_[t] += rates[k];
    }
    // The forwarded background also satisfies the ratio rule against the
    // measurement traffic that actually materialized.
    for (std::size_t t = 0; t < n_targets; ++t) {
      const auto& relay = *targets[t].relay;
      ws.y_t_[t] = std::min(
          ws.y_t_[t], ws.x_t_[t] * relay.ratio_r / (1.0 - relay.ratio_r));
    }

    // Record per-second outcomes (series were reserved at setup: these
    // push_backs never reallocate).
    for (std::size_t t = 0; t < n_targets; ++t) {
      auto& out = outcomes[t];
      const auto& target = targets[t];
      // FFCHECK(HP03): x_bits reserved t_seconds at setup; no realloc.
      out.x_bits.push_back(ws.x_t_[t]);
      for (std::size_t i = 0; i < target.team.size(); ++i)
        // FFCHECK(HP03): each series reserved t_seconds at setup.
        out.x_by_measurer[i].push_back(ws.x_it_[ws.team_offset_[t] + i]);

      double y_real = ws.y_t_[t];
      double y_reported = y_real;
      if (target.behavior == TargetBehavior::kLieAboutBackground) {
        // The liar forwards no background at all (keeping its capacity for
        // the measurement) but reports the maximum plausible amount.
        y_reported = ws.relay_capacity_[t];
      }
      // FFCHECK(HP03): reserved t_seconds at setup; no realloc.
      out.y_reported_bits.push_back(y_reported);
      const double y_clamped =
          clamp_background(y_reported, ws.x_t_[t], params_.ratio);
      // FFCHECK(HP03): reserved t_seconds at setup; no realloc.
      out.y_clamped_bits.push_back(y_clamped);
      // FFCHECK(HP03): reserved t_seconds at setup; no realloc.
      out.z_bits.push_back(ws.x_t_[t] + y_clamped);
    }
  }
  // FF_HOT_END: per-second slot loop
    if (probe_)
      probe_->note_solve(probe_->now() - solve_start,
                         static_cast<std::uint64_t>(seg_end - seg_begin));
  }

  if (have_faults) {
    // Degraded path: the BWAuth only sees what surviving measurers
    // reported; estimates, verification and quality all re-derive from
    // the reduced evidence.
    aggregate_degraded(targets, ws, outcomes);
    return outcomes;
  }

  // Verification + final estimates.
  for (std::size_t t = 0; t < n_targets; ++t) {
    auto& out = outcomes[t];
    if (targets[t].behavior == TargetBehavior::kForgeEchoes) {
      const double total_bytes = net::bytes_from_bits(
          std::accumulate(out.x_bits.begin(), out.x_bits.end(), 0.0));
      out.verification_failed = sample_detection(
          params_.check_probability, total_bytes, tor::kCellSize, rng_);
    }
    if (!out.verification_failed && !out.z_bits.empty())
      out.estimate_bits = metrics::median(metrics::as_span(out.z_bits));
    out.usable_seconds = static_cast<int>(out.z_bits.size());
  }
  return outcomes;
}

void SlotRunner::aggregate_degraded(std::span<const ConcurrentTarget> targets,
                                    SlotWorkspace& ws,
                                    std::vector<SlotOutcome>& outcomes) {
  const int t_seconds = params_.slot_seconds;
  // Cold path (runs once per faulted slot, after the hot loop): a local
  // scratch vector is fine here.
  std::vector<double> z_hat;
  z_hat.reserve(static_cast<std::size_t>(t_seconds));

  for (std::size_t t = 0; t < targets.size(); ++t) {
    SlotOutcome& out = outcomes[t];
    const ConcurrentTarget& target = targets[t];
    const std::size_t off = ws.team_offset_[t];
    const std::size_t team_size = target.team.size();
    const double ratio = params_.ratio;

    double total_alloc = 0.0;
    for (const auto& m : target.team) total_alloc += m.allocated_bits;

    // Per second j the BWAuth holds reports covering allocation A_cov_j
    // (members whose report reaches second j) out of the allocation
    // A_alive_j that was actually sending (members not yet crashed;
    // report_end <= crash by construction, so A_cov <= A_alive). The
    // measured bytes x~_j it can see scale up by A_alive/A_cov — the
    // uncovered-but-alive members pushed traffic the relay absorbed even
    // though their logs are gone. A second is usable when the relay was
    // still up and the covered allocation keeps the §4.2 headroom: teams
    // are provisioned at multiplier m (= 2.25) times the prior, so any
    // surviving fraction >= 1/m still offers enough load to saturate the
    // relay; below that bar the second under-measures and is refused
    // rather than scaled.
    z_hat.clear();
    double reported_bits = 0.0;   // evidence the spot check can cover
    double coverage_sum = 0.0;    // sum of per-second A_cov/A, usable secs
    int usable = 0;
    const int down = ws.relay_down_[t];
    const int recorded =
        std::min(t_seconds, static_cast<int>(out.x_bits.size()));
    for (int j = 0; j < recorded; ++j) {
      double a_alive = 0.0, a_cov = 0.0, x_tilde = 0.0;
      for (std::size_t i = 0; i < team_size; ++i) {
        const std::size_t m = off + i;
        const double a = target.team[i].allocated_bits;
        if (j < ws.member_crash_[m]) a_alive += a;
        if (j < ws.report_end_[m]) {
          a_cov += a;
          x_tilde += out.x_by_measurer[i][static_cast<std::size_t>(j)];
        }
      }
      reported_bits += x_tilde;
      if (j >= down || a_cov <= 0.0 ||
          a_cov < total_alloc / params_.multiplier)
        continue;
      const double x_hat = x_tilde * (a_alive / a_cov);
      const double y_hat = clamp_background(
          out.y_reported_bits[static_cast<std::size_t>(j)], x_hat, ratio);
      z_hat.push_back(x_hat + y_hat);
      // The ratio, not the raw allocation: a fully covered second (a_cov
      // and total_alloc are the same sum, term for term) contributes an
      // exact 1.0, so an untouched relay's quality is exactly 1.
      coverage_sum += a_cov / total_alloc;
      ++usable;
    }

    // Spot checks run over the measurement bytes the BWAuth actually
    // received: a reduced team means fewer checkable cells, so detection
    // probability 1-(1-p)^k re-derives from the surviving report volume
    // (§4.2 with k shrunk accordingly).
    if (target.behavior == TargetBehavior::kForgeEchoes) {
      out.verification_failed =
          sample_detection(params_.check_probability,
                           net::bytes_from_bits(reported_bits),
                           tor::kCellSize, rng_);
    }

    out.usable_seconds = usable;
    out.quality = total_alloc > 0.0 && t_seconds > 0
                      ? coverage_sum / static_cast<double>(t_seconds)
                      : 0.0;
    if (usable < fault_plan_->spec().min_usable_seconds) {
      out.failed = true;
      out.failure = SlotFailure::kInsufficientEvidence;
    } else if (!out.verification_failed) {
      out.estimate_bits = metrics::median(metrics::as_span(z_hat));
    }
  }
}

}  // namespace flashflow::core
