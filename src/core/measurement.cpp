#include "core/measurement.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/verification.h"
#include "metrics/stats.h"
#include "net/fairshare.h"
#include "net/tcp_model.h"
#include "net/units.h"
#include "tor/cell.h"

namespace flashflow::core {

double clamp_background(double reported_y_bits, double x_bits,
                        double ratio_r) {
  if (ratio_r < 0.0 || ratio_r >= 1.0)
    throw std::invalid_argument("clamp_background: bad ratio");
  return std::min(reported_y_bits, x_bits * ratio_r / (1.0 - ratio_r));
}

SlotRunner::SlotRunner(const net::Topology& topo, Params params, sim::Rng rng)
    : topo_(topo), params_(params), rng_(std::move(rng)) {}

double SlotRunner::offered_rate(const MeasurerSlot& m,
                                net::HostId relay_host) const {
  if (m.sockets <= 0 || m.allocated_bits <= 0.0) return 0.0;
  double rtt = topo_.rtt(m.host, relay_host);
  if (rtt <= 0.0) rtt = 0.0005;  // co-located hosts: sub-millisecond path
  const double per_socket = net::tcp_socket_throughput(
      topo_.host(m.host).kernel, rtt, topo_.loaded_loss(m.host, relay_host));
  return std::min(m.allocated_bits, per_socket * m.sockets);
}

SlotOutcome SlotRunner::run(const tor::RelayModel& relay,
                            net::HostId relay_host,
                            std::span<const MeasurerSlot> team,
                            TargetBehavior behavior) {
  ConcurrentTarget target;
  target.relay = relay;
  target.host = relay_host;
  target.team.assign(team.begin(), team.end());
  target.behavior = behavior;
  return run_concurrent({&target, 1}).front();
}

std::vector<SlotOutcome> SlotRunner::run_concurrent(
    std::span<const ConcurrentTarget> targets) {
  const int t_seconds = params_.slot_seconds;
  const std::size_t n_targets = targets.size();

  // Noise processes, one per target, plus per-slot condition factors.
  //
  // Relay-side: a slot-long capacity factor plus per-second wobble and
  // shallow congestion episodes — the relay's own weather. Together these
  // drive the run-to-run spread in Fig 6.
  //
  // Path-side: each measurer's *delivery* toward the target carries its
  // own slot-long factor (transit congestion between measurer and relay).
  // This is what the multiplier m buys headroom against: with allocation
  // m*z0, a delivery dip to fraction d still saturates the relay as long
  // as m*d >= 1, which is why m = 2.25 eliminates the low outliers of
  // Fig 15 while m = 1.5 does not.
  std::vector<tor::RelayNoise> noise;
  std::vector<double> slot_factor;
  std::vector<std::vector<double>> path_factor(n_targets);
  noise.reserve(n_targets);
  for (std::size_t t = 0; t < n_targets; ++t) {
    noise.emplace_back(tor::RelayNoise::Params{},
                       rng_.fork(targets[t].relay.name + "/noise"));
    slot_factor.push_back(
        std::clamp(1.0 + rng_.normal(-0.01, 0.04), 0.85, 1.04));
    path_factor[t].reserve(targets[t].team.size());
    for (std::size_t i = 0; i < targets[t].team.size(); ++i) {
      // Occasionally a measurer's transit path has a bad half hour and
      // delivers well under its allocation; most slots see mild weather.
      const double factor =
          rng_.chance(0.12)
              ? rng_.uniform(0.36, 0.70)
              : std::clamp(1.0 + rng_.normal(-0.02, 0.06), 0.75, 1.02);
      path_factor[t].push_back(factor);
    }
  }

  // Total sockets pointed at each target (drives the CPU overhead model).
  std::vector<int> sockets_at_target(n_targets, 0);
  for (std::size_t t = 0; t < n_targets; ++t)
    for (const auto& m : targets[t].team)
      sockets_at_target[t] += m.sockets;

  std::vector<SlotOutcome> outcomes(n_targets);
  for (std::size_t t = 0; t < n_targets; ++t)
    outcomes[t].x_by_measurer.resize(targets[t].team.size());

  // Shared resources: measurer NIC (min of up/down since echo traffic rides
  // both directions at the measured rate) and target-host NIC.
  // Resource layout: [measurer hosts..., target hosts..., per-target relay].
  std::vector<net::HostId> hosts;  // de-duplicated measurer + target hosts
  const auto host_resource = [&hosts](net::HostId h) {
    for (std::size_t i = 0; i < hosts.size(); ++i)
      if (hosts[i] == h) return i;
    hosts.push_back(h);
    return hosts.size() - 1;
  };
  // First pass to assign indices deterministically.
  for (const auto& target : targets) {
    host_resource(target.host);
    for (const auto& m : target.team) host_resource(m.host);
  }
  const std::size_t relay_resource_base = hosts.size();

  for (int second = 0; second < t_seconds; ++second) {
    // Relay-internal capacity this second (CPU, rate limit + burst, noise).
    std::vector<double> relay_capacity(n_targets);
    for (std::size_t t = 0; t < n_targets; ++t) {
      const auto& relay = targets[t].relay;
      // ground_truth() composes NIC/CPU/rate-limit including the token
      // bucket's quantization shave; the first second additionally spends
      // the accumulated bucket (Fig 7's spike).
      double cap = relay.ground_truth(sockets_at_target[t]);
      if (relay.rate_limit_bits > 0.0 && second == 0)
        cap += relay.rate_limit_bits * relay.burst_seconds;
      // Noise plus a small absolute jitter that dominates for tiny relays.
      cap = cap * slot_factor[t] * noise[t].next_factor() +
            rng_.normal(0.0, net::mbit(0.15));
      relay_capacity[t] = std::max(cap, 0.0);
    }

    // The relay reserves the ratio-r background allowance up front (§4.1:
    // it sends as much normal traffic as the maximum ratio allows), then
    // the measurement flows share the rest of the capacity and the NICs.
    std::vector<double> x_t(n_targets, 0.0), y_t(n_targets, 0.0);
    std::vector<std::vector<double>> x_it(n_targets);
    for (std::size_t t = 0; t < n_targets; ++t) {
      // A relay lying about its background sends none at all, keeping the
      // capacity for the measurement.
      const double demand =
          targets[t].behavior == TargetBehavior::kLieAboutBackground
              ? 0.0
              : targets[t].relay.background_demand_bits;
      y_t[t] =
          std::min(demand, targets[t].relay.ratio_r * relay_capacity[t]);
    }

    std::vector<net::FairShareResource> resources(relay_resource_base +
                                                  n_targets);
    for (std::size_t h = 0; h < hosts.size(); ++h) {
      const auto& host = topo_.host(hosts[h]);
      resources[h].capacity = std::min(host.nic_up_bits, host.nic_down_bits);
    }
    for (std::size_t t = 0; t < n_targets; ++t)
      resources[relay_resource_base + t].capacity =
          std::max(relay_capacity[t] - y_t[t], 0.0);

    std::vector<net::FairShareFlow> flows;
    std::vector<std::pair<std::size_t, std::size_t>> flow_ids;  // (t, i)
    for (std::size_t t = 0; t < n_targets; ++t) {
      for (std::size_t i = 0; i < targets[t].team.size(); ++i) {
        const auto& m = targets[t].team[i];
        const double offered =
            offered_rate(m, targets[t].host) * path_factor[t][i];
        if (offered <= 0.0) continue;
        net::FairShareFlow f;
        f.resources = {host_resource(m.host), host_resource(targets[t].host),
                       relay_resource_base + t};
        f.weight = std::max(1, m.sockets);
        f.cap = offered;
        flows.push_back(std::move(f));
        flow_ids.emplace_back(t, i);
      }
    }
    const auto rates = net::max_min_fair_rates(resources, flows);

    for (std::size_t t = 0; t < n_targets; ++t) {
      x_t[t] = 0.0;
      x_it[t].assign(targets[t].team.size(), 0.0);
    }
    for (std::size_t k = 0; k < flow_ids.size(); ++k) {
      const auto [t, i] = flow_ids[k];
      x_it[t][i] = rates[k];
      x_t[t] += rates[k];
    }
    // The forwarded background also satisfies the ratio rule against the
    // measurement traffic that actually materialized.
    for (std::size_t t = 0; t < n_targets; ++t) {
      const auto& relay = targets[t].relay;
      y_t[t] = std::min(y_t[t],
                        x_t[t] * relay.ratio_r / (1.0 - relay.ratio_r));
    }

    // Record per-second outcomes.
    for (std::size_t t = 0; t < n_targets; ++t) {
      auto& out = outcomes[t];
      const auto& target = targets[t];
      out.x_bits.push_back(x_t[t]);
      for (std::size_t i = 0; i < target.team.size(); ++i)
        out.x_by_measurer[i].push_back(x_it[t][i]);

      double y_real = y_t[t];
      double y_reported = y_real;
      if (target.behavior == TargetBehavior::kLieAboutBackground) {
        // The liar forwards no background at all (keeping its capacity for
        // the measurement) but reports the maximum plausible amount.
        y_reported = relay_capacity[t];
      }
      out.y_reported_bits.push_back(y_reported);
      const double y_clamped =
          clamp_background(y_reported, x_t[t], params_.ratio);
      out.y_clamped_bits.push_back(y_clamped);
      out.z_bits.push_back(x_t[t] + y_clamped);
    }
  }

  // Verification + final estimates.
  for (std::size_t t = 0; t < n_targets; ++t) {
    auto& out = outcomes[t];
    if (targets[t].behavior == TargetBehavior::kForgeEchoes) {
      const double total_bytes = net::bytes_from_bits(
          std::accumulate(out.x_bits.begin(), out.x_bits.end(), 0.0));
      out.verification_failed = sample_detection(
          params_.check_probability, total_bytes, tor::kCellSize, rng_);
    }
    if (!out.verification_failed && !out.z_bits.empty())
      out.estimate_bits = metrics::median(metrics::as_span(out.z_bits));
  }
  return outcomes;
}

}  // namespace flashflow::core
