// FlashFlow protocol parameters with the paper's recommended defaults
// (§6.1, Appendix E).
#pragma once

#include <stdexcept>
#include <string>

#include "sim/time.h"

namespace flashflow::core {

struct Params {
  /// Total measurement sockets across all measurers (Appendix E.1: the
  /// value that maximizes throughput on the slowest host).
  int sockets = 160;
  /// Base capacity multiplier m (Appendix E.2: smallest value that avoids
  /// outliers below 80% of ground truth).
  double multiplier = 2.25;
  /// Measurement slot duration t in seconds (Appendix E.3: the 30-second
  /// median had the tightest accuracy range).
  int slot_seconds = 30;
  /// Error bounds (Appendix E.5): estimates land in ((1-e1)x, (1+e2)x).
  double epsilon1 = 0.20;
  double epsilon2 = 0.05;
  /// Max fraction r of total traffic that may be normal client traffic
  /// during a measurement (§6.2: bounds a liar's advantage to 1/(1-r)).
  double ratio = 0.25;
  /// Cell spot-check probability (§4.1).
  double check_probability = 1e-5;
  /// Measurement period: every relay is measured once per period (§4.3).
  sim::SimDuration period = sim::kDay;

  /// Parameter sets are value types (scenario round-trip tests compare
  /// whole specs).
  friend bool operator==(const Params&, const Params&) = default;

  /// Excess allocation factor f = m (1 + eps2) / (1 - eps1) (§4.2).
  double excess_factor() const {
    return multiplier * (1.0 + epsilon2) / (1.0 - epsilon1);
  }

  /// Upper bound on a lying relay's capacity inflation: 1/(1-r) (§5).
  double max_inflation() const { return 1.0 / (1.0 - ratio); }

  /// Rejects parameter combinations the protocol math cannot support
  /// (epsilon1 or ratio at/above 1 divide by zero in the excess factor and
  /// the background clamp; non-positive sockets/slot/multiplier make every
  /// slot degenerate). Throws std::invalid_argument naming the bad field.
  void validate() const {
    const auto reject = [](const std::string& what) {
      throw std::invalid_argument("Params::validate: " + what);
    };
    if (sockets <= 0) reject("sockets must be positive");
    if (multiplier <= 0.0) reject("multiplier must be positive");
    if (slot_seconds <= 0) reject("slot_seconds must be positive");
    if (epsilon1 < 0.0 || epsilon1 >= 1.0) reject("epsilon1 must be in [0, 1)");
    if (epsilon2 < 0.0) reject("epsilon2 must be non-negative");
    if (ratio < 0.0 || ratio >= 1.0) reject("ratio must be in [0, 1)");
    if (check_probability < 0.0 || check_probability > 1.0)
      reject("check_probability must be in [0, 1]");
    if (period <= 0) reject("period must be positive");
  }
};

}  // namespace flashflow::core
