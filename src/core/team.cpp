#include "core/team.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "metrics/stats.h"
#include "net/flownet.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace flashflow::core {

Team::Team(const net::Topology& topo, std::vector<net::HostId> hosts)
    : topo_(topo) {
  if (hosts.empty()) throw std::invalid_argument("Team: no hosts");
  measurers_.reserve(hosts.size());
  for (const net::HostId h : hosts) measurers_.push_back({h, 0.0});
}

void Team::measure_measurers(std::uint64_t seed) {
  // A team of one has no mesh peers; fall back to its NIC capacity (a
  // self-test against a reflector would measure the same bound).
  if (measurers_.size() == 1) {
    const auto& host = topo_.host(measurers_[0].host);
    measurers_[0].capacity_bits =
        std::min(host.nic_up_bits, host.nic_down_bits);
    return;
  }
  // Concurrent full-mesh bidirectional UDP for 60 seconds on a fluid net.
  sim::Simulator simu;
  net::FlowNet netw(simu);
  std::vector<net::ResourceId> up, down;
  for (const auto& m : measurers_) {
    up.push_back(netw.add_resource(topo_.host(m.host).name + ".up",
                                   topo_.host(m.host).nic_up_bits));
    down.push_back(netw.add_resource(topo_.host(m.host).name + ".down",
                                     topo_.host(m.host).nic_down_bits));
  }
  // flows[i][j]: measurer i sending to measurer j.
  std::vector<std::vector<net::FlowId>> flows(measurers_.size());
  for (std::size_t i = 0; i < measurers_.size(); ++i) {
    for (std::size_t j = 0; j < measurers_.size(); ++j) {
      if (i == j) {
        flows[i].push_back(0);
        continue;
      }
      net::FlowNet::FlowSpec spec;
      spec.resources = {up[i], down[j]};
      spec.record_per_second = true;
      flows[i].push_back(netw.add_flow(std::move(spec)));
    }
  }
  simu.run_until(60 * sim::kSecond);
  netw.sync();

  sim::Rng rng(seed);
  for (std::size_t i = 0; i < measurers_.size(); ++i) {
    // Per-second totals sent by i and received by i.
    std::vector<double> sent(60, 0.0), received(60, 0.0);
    for (std::size_t j = 0; j < measurers_.size(); ++j) {
      if (i == j) continue;
      const auto out_bins = netw.series(flows[i][j]).bins_bits_per_second();
      for (std::size_t s = 0; s < out_bins.size() && s < 60; ++s)
        sent[s] += out_bins[s];
      const auto in_bins = netw.series(flows[j][i]).bins_bits_per_second();
      for (std::size_t s = 0; s < in_bins.size() && s < 60; ++s)
        received[s] += in_bins[s];
    }
    std::vector<double> per_second(60);
    for (std::size_t s = 0; s < 60; ++s) {
      per_second[s] = std::min(sent[s], received[s]) *
                      rng.uniform(1.0 - topo_.host(measurers_[i].host)
                                            .rx_var_udp,
                                  1.0);
    }
    measurers_[i].capacity_bits =
        metrics::median(metrics::as_span(per_second));
  }
}

void Team::set_capacity(std::size_t index, double capacity_bits) {
  if (index >= measurers_.size())
    throw std::out_of_range("Team::set_capacity");
  measurers_[index].capacity_bits = capacity_bits;
}

std::vector<double> Team::capacities() const {
  std::vector<double> out;
  out.reserve(measurers_.size());
  for (const auto& m : measurers_) out.push_back(m.capacity_bits);
  return out;
}

std::vector<int> Team::cores() const {
  std::vector<int> out;
  out.reserve(measurers_.size());
  for (const auto& m : measurers_)
    out.push_back(topo_.host(m.host).cpu_cores);
  return out;
}

double Team::total_capacity() const {
  double total = 0.0;
  for (const auto& m : measurers_) total += m.capacity_bits;
  return total;
}

bool Team::sufficient_for(double relay_capacity_bits,
                          double excess_factor) const {
  return total_capacity() >= excess_factor * relay_capacity_bits;
}

}  // namespace flashflow::core
