#include "core/estimator.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "metrics/stats.h"

namespace flashflow::core {

AcceptanceResult evaluate_estimate(double estimate_bits,
                                   std::span<const double> allocations,
                                   const Params& params) {
  const double total =
      std::accumulate(allocations.begin(), allocations.end(), 0.0);
  AcceptanceResult r;
  r.threshold_bits = total * (1.0 - params.epsilon1) / params.multiplier;
  r.accepted = estimate_bits < r.threshold_bits;
  return r;
}

double next_guess(double estimate_bits, double previous_guess_bits) {
  return std::max(estimate_bits, 2.0 * previous_guess_bits);
}

double new_relay_prior(std::span<const double> measured_capacities) {
  if (measured_capacities.empty())
    throw std::invalid_argument("new_relay_prior: no capacities");
  return metrics::percentile(measured_capacities, 75.0);
}

CapacityInterval implied_interval(double estimate_bits, const Params& params) {
  return {estimate_bits / (1.0 + params.epsilon2),
          estimate_bits / (1.0 - params.epsilon1)};
}

}  // namespace flashflow::core
