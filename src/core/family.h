// Co-located relay (MyFamily / Sybil) handling (§5 "Limitations").
//
// An adversary with several IP addresses on one machine can run multiple
// relays that FlashFlow would measure at *separate* times, each obtaining
// the full machine's capacity. The paper's mitigation: measure declared
// MyFamily sets (or suspected Sybils) *simultaneously*; if they share
// hardware, the simultaneous estimates reveal the shared ceiling, and the
// capacity is averaged over the members of the connected set.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/bwauth.h"

namespace flashflow::core {

struct FamilyMeasurement {
  /// Per-member estimates from the simultaneous measurement.
  std::vector<double> member_estimates_bits;
  /// Sum of the simultaneous estimates: the shared machine's capacity if
  /// co-located, or the sum of independent capacities otherwise.
  double combined_bits = 0;
  /// True when the simultaneous sum is far below the sum of the members'
  /// individual (separate-time) estimates — the §5 co-location signature.
  bool co_located = false;
  /// Capacity value to assign each member: combined/n when co-located
  /// (the averaging mitigation), else the individual estimates stand.
  double per_member_capacity_bits = 0;
};

struct FamilyParams {
  /// Declare co-location when the simultaneous sum is below this fraction
  /// of the sum of individual estimates.
  double co_location_threshold = 0.7;
};

/// Measures a family of relays simultaneously with one SlotRunner pass and
/// compares against their individual estimates.
///
/// `individual_estimates_bits` are the members' existing (separate-time)
/// capacity estimates; `targets` describe the members, which may share a
/// host (true co-location) or not.
FamilyMeasurement measure_family(
    const net::Topology& topo, const Params& params,
    std::span<const SlotRunner::ConcurrentTarget> targets,
    std::span<const double> individual_estimates_bits,
    const FamilyParams& family_params, std::uint64_t seed);

}  // namespace flashflow::core
