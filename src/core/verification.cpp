#include "core/verification.h"

#include <cmath>
#include <stdexcept>

namespace flashflow::core {

double evasion_probability(double check_probability,
                           std::uint64_t forged_cells) {
  if (check_probability < 0.0 || check_probability > 1.0)
    throw std::invalid_argument("evasion_probability: bad p");
  // (1-p)^k computed in log space for numerical stability.
  if (check_probability >= 1.0) return forged_cells == 0 ? 1.0 : 0.0;
  return std::exp(static_cast<double>(forged_cells) *
                  std::log1p(-check_probability));
}

std::uint64_t cells_for_detection(double check_probability,
                                  double detect_probability) {
  if (check_probability <= 0.0 || check_probability >= 1.0)
    throw std::invalid_argument("cells_for_detection: bad p");
  if (detect_probability <= 0.0) return 0;
  if (detect_probability >= 1.0)
    throw std::invalid_argument("cells_for_detection: need < 1");
  const double k =
      std::log1p(-detect_probability) / std::log1p(-check_probability);
  return static_cast<std::uint64_t>(std::ceil(k));
}

bool sample_detection(double check_probability, double total_bytes,
                      double cell_size, sim::Rng& rng) {
  if (cell_size <= 0.0)
    throw std::invalid_argument("sample_detection: bad cell size");
  const auto cells = static_cast<std::uint64_t>(total_bytes / cell_size);
  const double p_evade = evasion_probability(check_probability, cells);
  return !rng.chance(p_evade);
}

}  // namespace flashflow::core
