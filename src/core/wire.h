// Authenticated control protocol between BWAuth, measurers, and targets.
//
// §4.1: the BWAuth creates authenticated connections to each measurer and to
// the target using its public key (distributed in the consensus). It tells
// the target which measurer keys to accept. A relay accepts measurement
// connections from a given BWAuth (and team) at most once per measurement
// period.
//
// Authentication here uses the simulation-grade keyed digest from
// tor/crypto.h: a message is accepted iff its MAC verifies under the
// claimed principal's key.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace flashflow::core {

using KeyId = std::uint64_t;  // stands in for an Ed25519 public key

enum class MessageType : std::uint8_t {
  kMeasureRequest = 1,   // BWAuth -> target: announce measurement + team keys
  kMeasurerDirective,    // BWAuth -> measurer: allocation + socket share
  kPerSecondReport,      // measurer/target -> BWAuth: bytes in second j
  kAbort,                // BWAuth -> all: verification failure, stop early
};

struct ControlMessage {
  MessageType type = MessageType::kMeasureRequest;
  KeyId sender = 0;
  std::int64_t period_index = 0;       // which measurement period
  std::string target_fingerprint;
  std::vector<KeyId> measurer_keys;    // for kMeasureRequest
  double value = 0.0;                  // allocation / byte count
  std::int64_t second = 0;             // for kPerSecondReport
  std::uint64_t mac = 0;
};

/// Signs a message in place with the sender's secret key.
void sign_message(ControlMessage& msg, std::uint64_t secret_key);

/// Verifies the MAC against the sender's secret key (symmetric simulation
/// stand-in for signature verification with the public key).
bool verify_message(const ControlMessage& msg, std::uint64_t secret_key);

/// Relay-side admission control: accepts a measurement request from a given
/// BWAuth at most once per measurement period.
class MeasurementGate {
 public:
  /// Returns true and records the admission if this (BWAuth, period) pair
  /// has not been admitted before; false otherwise.
  bool admit(KeyId bwauth, std::int64_t period_index);

  /// True if a measurer key was authorized by an admitted request.
  bool measurer_authorized(KeyId measurer) const;
  /// Authorizes the measurer keys from an admitted request.
  void authorize_measurers(const std::vector<KeyId>& keys);
  /// Clears measurer authorizations (end of measurement).
  void clear_authorizations();

 private:
  std::set<std::pair<KeyId, std::int64_t>> admitted_;
  std::set<KeyId> authorized_measurers_;
};

}  // namespace flashflow::core
