// Measurement scheduling (§4.3, §7).
//
// A measurement period (24 h) divides into 30-second slots. Each BWAuth
// derives a secret randomized schedule from a shared seed: old relays are
// placed in uniformly random slots with sufficient unallocated capacity
// (each relay consumes f * z0 of the team's capacity); new relays are
// appended first-come first-served into the earliest slot with room.
//
// greedy_pack() implements the §7 efficiency estimate: fill slots in order,
// always taking the largest still-unmeasured relay that fits, yielding the
// minimum measurement time for the whole network.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/params.h"
#include "sim/random.h"

namespace flashflow::core {

struct PackingResult {
  int slots_used = 0;
  /// relay index -> slot index (aligned with the input capacities).
  std::vector<int> relay_slot;
  /// Sum of capacity-estimate requirements (f * cap), bits.
  double total_requirement_bits = 0;
};

/// §7 greedy largest-fit packing. Throws if any single relay needs more
/// than the team capacity.
PackingResult greedy_pack(std::span<const double> capacity_estimates,
                          double team_capacity_bits, const Params& params);

/// Randomized secret schedule for one BWAuth over one period.
class PeriodSchedule {
 public:
  /// `seed` is the period's shared random seed (per §4.3, derived from
  /// Tor's secure-randomness protocol) combined with the BWAuth identity.
  PeriodSchedule(const Params& params, double team_capacity_bits,
                 std::uint64_t seed);

  int slots_in_period() const;

  /// Assigns every old relay a uniformly random feasible slot; returns the
  /// slot per relay. Throws if a relay cannot fit in any slot.
  std::vector<int> schedule_old_relays(
      std::span<const double> capacity_estimates);

  /// FCFS new-relay insertion: earliest slot with room. Returns the slot.
  int schedule_new_relay(double capacity_estimate_bits);

  double slot_load_bits(int slot) const;

 private:
  double requirement(double capacity_estimate_bits) const;

  Params params_;
  double team_capacity_bits_;
  sim::Rng rng_;
  std::vector<double> load_bits_;
};

}  // namespace flashflow::core
