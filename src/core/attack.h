// Adversarial strategies against FlashFlow and the §5 security math.
#pragma once

#include <cstdint>

#include "core/bwauth.h"
#include "core/params.h"

namespace flashflow::core {

/// Analytic failure probability of the part-time-capacity attack: a relay
/// provisions full capacity only during a fraction q of slots; with n
/// BWAuths taking the median, the attack fails when at least ceil((n+1)/2)
/// BWAuths hit a low-capacity slot: sum_{k>=ceil((n+1)/2)} P[B(n,1-q)=k].
double part_time_failure_probability(int n_bwauths, double q);

/// Monte-Carlo estimate of the same quantity: each BWAuth samples an
/// independent uniformly random slot (the schedule is secret), and the
/// median estimate succeeds for the attacker only if it reflects the high
/// capacity. Returns the empirical attack-failure rate.
double simulate_part_time_attack(int n_bwauths, double q, int trials,
                                 std::uint64_t seed);

/// Measures the capacity-inflation advantage of the background-traffic lie
/// (§5): runs honest and lying measurements of the same relay and returns
/// estimate_lying / estimate_honest. Bounded by 1/(1-r).
struct InflationResult {
  double honest_estimate_bits = 0;
  double lying_estimate_bits = 0;
  double advantage = 0;
};
InflationResult background_lie_advantage(const net::Topology& topo,
                                         const Params& params,
                                         const RelayTarget& target,
                                         const Team& team,
                                         std::uint64_t seed);

/// Sybil-flood on the new-relay queue (§5 "it is difficult ... to prevent
/// relays from being measured by flooding"): with `sybil_count` new sybils
/// arriving ahead of one benign new relay, returns the delay (in slots)
/// until the benign relay is measured, given per-slot spare capacity.
int sybil_queue_delay_slots(int sybil_count, double sybil_estimate_bits,
                            double benign_estimate_bits,
                            double spare_capacity_per_slot_bits,
                            const Params& params);

}  // namespace flashflow::core
