#include "core/allocation.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace flashflow::core {

std::vector<double> allocate_greedy(std::span<const double> residual_caps,
                                    double required_bits) {
  if (required_bits < 0.0)
    throw std::invalid_argument("allocate_greedy: negative requirement");
  const double total =
      std::accumulate(residual_caps.begin(), residual_caps.end(), 0.0);
  if (total + 1e-6 < required_bits)
    throw std::runtime_error("allocate_greedy: insufficient team capacity");

  std::vector<double> alloc(residual_caps.size(), 0.0);
  std::vector<double> residual(residual_caps.begin(), residual_caps.end());
  double remaining = required_bits;
  while (remaining > 1e-9) {
    // Measurer with the most residual capacity.
    const auto it = std::max_element(residual.begin(), residual.end());
    const auto idx = static_cast<std::size_t>(it - residual.begin());
    if (*it <= 0.0) break;  // defensive; total was checked above
    const double take = std::min(*it, remaining);
    alloc[idx] += take;
    residual[idx] -= take;
    remaining -= take;
  }
  return alloc;
}

std::vector<MeasurerShare> make_shares(std::span<const double> allocations,
                                       std::span<const int> measurer_cores,
                                       const Params& params) {
  if (allocations.size() != measurer_cores.size())
    throw std::invalid_argument("make_shares: size mismatch");
  std::size_t participants = 0;
  for (const double a : allocations)
    if (a > 0.0) ++participants;

  std::vector<MeasurerShare> shares;
  shares.reserve(allocations.size());
  for (std::size_t i = 0; i < allocations.size(); ++i) {
    MeasurerShare s;
    s.measurer_index = i;
    s.allocated_bits = allocations[i];
    if (allocations[i] > 0.0) {
      s.processes = std::max(1, measurer_cores[i]);
      s.sockets = participants > 0
                      ? static_cast<int>(params.sockets / participants)
                      : 0;
    }
    shares.push_back(s);
  }
  return shares;
}

}  // namespace flashflow::core
