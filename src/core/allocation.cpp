#include "core/allocation.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

namespace flashflow::core {

std::span<const double> allocate_greedy(std::span<const double> residual_caps,
                                        double required_bits,
                                        AllocationScratch& scratch) {
  if (required_bits < 0.0)
    throw std::invalid_argument("allocate_greedy: negative requirement");
  const double total =
      std::accumulate(residual_caps.begin(), residual_caps.end(), 0.0);
  if (total + 1e-6 < required_bits)
    throw std::runtime_error("allocate_greedy: insufficient team capacity");

  scratch.alloc.assign(residual_caps.size(), 0.0);
  scratch.residual.assign(residual_caps.begin(), residual_caps.end());
  std::vector<double>& alloc = scratch.alloc;
  std::vector<double>& residual = scratch.residual;
  double remaining = required_bits;
  while (remaining > 1e-9) {
    // Measurer with the most residual capacity.
    const auto it = std::max_element(residual.begin(), residual.end());
    const auto idx = static_cast<std::size_t>(it - residual.begin());
    if (*it <= 0.0) break;  // defensive; total was checked above
    const double take = std::min(*it, remaining);
    alloc[idx] += take;
    residual[idx] -= take;
    remaining -= take;
  }
  return alloc;
}

std::vector<double> allocate_greedy(std::span<const double> residual_caps,
                                    double required_bits) {
  AllocationScratch scratch;
  allocate_greedy(residual_caps, required_bits, scratch);
  return std::move(scratch.alloc);
}

std::span<const MeasurerShare> make_shares(std::span<const double> allocations,
                                           std::span<const int> measurer_cores,
                                           const Params& params,
                                           AllocationScratch& scratch) {
  if (allocations.size() != measurer_cores.size())
    throw std::invalid_argument("make_shares: size mismatch");
  std::size_t participants = 0;
  for (const double a : allocations)
    if (a > 0.0) ++participants;

  scratch.shares.clear();
  scratch.shares.reserve(allocations.size());
  for (std::size_t i = 0; i < allocations.size(); ++i) {
    MeasurerShare s;
    s.measurer_index = i;
    s.allocated_bits = allocations[i];
    if (allocations[i] > 0.0) {
      s.processes = std::max(1, measurer_cores[i]);
      s.sockets = participants > 0
                      ? static_cast<int>(params.sockets / participants)
                      : 0;
    }
    scratch.shares.push_back(s);
  }
  return scratch.shares;
}

std::vector<MeasurerShare> make_shares(std::span<const double> allocations,
                                       std::span<const int> measurer_cores,
                                       const Params& params) {
  AllocationScratch scratch;
  make_shares(allocations, measurer_cores, params, scratch);
  return std::move(scratch.shares);
}

}  // namespace flashflow::core
