#include "core/dynamic_weights.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace flashflow::core {

tor::BandwidthFile apply_dynamic_adjustments(
    const tor::BandwidthFile& flashflow_file,
    std::span<const DynamicSignal> signals,
    const DynamicWeightParams& params) {
  if (params.min_weight_fraction < 0.0 || params.min_weight_fraction > 1.0 ||
      params.beta < 0.0 || params.beta > 1.0)
    throw std::invalid_argument("apply_dynamic_adjustments: bad params");

  std::map<std::string, double> utilization;
  for (const auto& s : signals)
    utilization[s.fingerprint] = std::clamp(s.utilization, 0.0, 1.0);

  tor::BandwidthFile out = flashflow_file;
  for (auto& entry : out) {
    const auto it = utilization.find(entry.fingerprint);
    if (it == utilization.end()) continue;  // no signal: full weight
    const double factor = std::max(params.min_weight_fraction,
                                   1.0 - params.beta * it->second);
    // Weights derive from the secure capacity and only go down.
    entry.weight = std::min(entry.weight, entry.capacity_bits * factor);
  }
  return out;
}

bool adjustment_is_sound(const tor::BandwidthFile& original,
                         const tor::BandwidthFile& adjusted) {
  if (original.size() != adjusted.size()) return false;
  for (std::size_t i = 0; i < original.size(); ++i) {
    if (original[i].fingerprint != adjusted[i].fingerprint) return false;
    if (adjusted[i].weight > original[i].weight + 1e-9) return false;
    if (adjusted[i].capacity_bits != original[i].capacity_bits) return false;
  }
  return true;
}

}  // namespace flashflow::core
