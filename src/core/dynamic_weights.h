// Secure dynamic weight adjustment (§9 future work).
//
// FlashFlow capacities give each relay a *secure ceiling*. Dynamic,
// possibly self-reported signals (current utilization, CPU load) can then
// adjust load-balancing weights — but only DOWNWARD from the measured
// capacity. A relay lying about its utilization can thus only reduce its
// own weight, never inflate it: "FlashFlow would securely limit the weight
// of any relay while allowing for improved performance via adjustments
// based on insecure dynamic measurements."
#pragma once

#include <span>
#include <vector>

#include "tor/authority.h"

namespace flashflow::core {

struct DynamicSignal {
  std::string fingerprint;
  /// Self-reported fraction of capacity currently consumed, in [0, 1].
  /// Values outside the range are clamped (they cannot help the reporter).
  double utilization = 0.0;
};

struct DynamicWeightParams {
  /// Weight floor as a fraction of the secure capacity weight, so a relay
  /// claiming 100% utilization still receives some traffic (and thus can
  /// be observed recovering).
  double min_weight_fraction = 0.2;
  /// How strongly utilization reduces the weight: w = cap * (1 - beta*u).
  double beta = 0.8;
};

/// Applies dynamic adjustments to a FlashFlow bandwidth file. For each
/// relay, the output weight is
///   capacity * max(min_weight_fraction, 1 - beta * clamp(u, 0, 1)).
/// Relays without a signal keep their full capacity weight. Capacities in
/// the file are never modified (they remain the secure measurement).
tor::BandwidthFile apply_dynamic_adjustments(
    const tor::BandwidthFile& flashflow_file,
    std::span<const DynamicSignal> signals,
    const DynamicWeightParams& params = {});

/// The §9 security property, checkable: no output weight exceeds the
/// secure capacity weight.
bool adjustment_is_sound(const tor::BandwidthFile& original,
                         const tor::BandwidthFile& adjusted);

}  // namespace flashflow::core
