// Measurement slots (§4.1): fluid per-second simulation plus the BWAuth
// aggregation pipeline.
//
// For each second j of a slot, each measuring process pushes measurement
// cells as fast as its rate limit (a_i / k_i) and socket shares allow; the
// target relay forwards measurement and background traffic subject to its
// capacity components and the ratio-r rule. The BWAuth then aggregates:
//
//   x_j = sum_i x_ij                       (measurement bytes, per second)
//   y_j = min(y_reported_j, x_j r/(1-r))   (clamped background)
//   z   = median(x_1+y_1, ..., x_t+y_t)    (capacity estimate)
//
// The relay may lie about y (attack.h) and may forward forged echoes; the
// sampled spot check catches forgeries with probability 1-(1-p)^k.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/params.h"
#include "fault/fault.h"
#include "net/fairshare.h"
#include "net/topology.h"
#include "sim/random.h"
#include "telemetry/telemetry.h"
#include "tor/relay.h"

namespace flashflow::core {

/// One measurer's role in a slot.
struct MeasurerSlot {
  net::HostId host = 0;
  double allocated_bits = 0;  // a_i (BandwidthRate sum over its processes)
  int sockets = 0;            // its share of the team's s sockets
};

/// How the target behaves (security experiments).
enum class TargetBehavior {
  kHonest,
  kLieAboutBackground,  // reports maximal y regardless of real forwarding
  kForgeEchoes,         // skips decryption / fabricates responses
};

/// Why a fault-armed slot produced no usable estimate.
enum class SlotFailure {
  kNone,
  /// Whole-slot timeout (fault::FaultPlan::slot_timeout): nothing ran.
  kTimeout,
  /// Fewer usable seconds than FaultSpec::min_usable_seconds survived the
  /// relay disconnect / crash / report faults.
  kInsufficientEvidence,
};

struct SlotOutcome {
  std::vector<double> x_bits;          // per-second aggregated measurement
  std::vector<double> y_reported_bits; // per-second relay-reported normal
  std::vector<double> y_clamped_bits;  // after the r clamp
  std::vector<double> z_bits;          // x + y_clamped
  std::vector<std::vector<double>> x_by_measurer;  // x_ij
  double estimate_bits = 0;            // median(z), 0 when aborted
  bool verification_failed = false;

  // Fault-aware accounting (arm_faults). On the fault-free path these
  // keep their defaults: a healthy slot has full quality and every second
  // usable.
  /// Evidence quality in [0, 1]: mean reported-allocation coverage of the
  /// slot's usable seconds over the whole slot. 1.0 when nothing failed.
  double quality = 1.0;
  /// Seconds that met the degraded-estimation bar (see measurement.cpp);
  /// equals slot_seconds on the fault-free path.
  int usable_seconds = 0;
  /// True when the slot produced no usable estimate (estimate_bits == 0);
  /// the campaign layer retries / quarantines on this, not on
  /// verification_failed (a security outcome, never retried).
  bool failed = false;
  SlotFailure failure = SlotFailure::kNone;
};

/// Per-second aggregation used by the BWAuth (exposed for unit tests):
/// clamps reported background to x*r/(1-r) and sums.
double clamp_background(double reported_y_bits, double x_bits, double ratio_r);

/// Reusable scratch for SlotRunner::run_concurrent.
///
/// Owns every buffer the slot pipeline needs — flat SoA arrays for the
/// per-target capacities and x/y/z accumulators, a stride-indexed
/// per-(target, measurer) arena (path factors and the per-second x_ij
/// rates), the host→resource index map, the hoisted fair-share flow set,
/// and the fair-share solver's scratch. A workspace is filled during slot
/// setup and then reused across all slot_seconds iterations: the
/// per-second loop performs no heap allocation. Reusing one workspace
/// across many slots (campaign worker threads hold one each) additionally
/// amortizes the setup buffers to steady-state zero growth.
///
/// Results are bit-identical whether a workspace is fresh or reused; it is
/// pure scratch, never carrying state between runs.
class SlotWorkspace {
 public:
  SlotWorkspace() = default;
  SlotWorkspace(const SlotWorkspace&) = delete;
  SlotWorkspace& operator=(const SlotWorkspace&) = delete;
  SlotWorkspace(SlotWorkspace&&) = default;
  SlotWorkspace& operator=(SlotWorkspace&&) = default;

 private:
  friend class SlotRunner;

  // Per-target state (size: n_targets).
  std::vector<double> slot_factor_;
  std::vector<int> sockets_at_target_;
  std::vector<double> base_capacity_;   // ground_truth, hoisted per slot
  std::vector<double> relay_capacity_;  // this second, noise applied
  std::vector<double> x_t_;
  std::vector<double> y_t_;
  /// Arena offsets: target t's members live at [team_offset_[t],
  /// team_offset_[t + 1]) in the per-member arenas below.
  std::vector<std::size_t> team_offset_;

  // Per-(target, measurer) arenas, stride-indexed via team_offset_.
  std::vector<double> path_factor_;
  std::vector<double> x_it_;
  /// Member host ids, gathered per target so the path model's bulk
  /// fill_paths hook gets a contiguous span (one virtual call per target
  /// per slot), and the characteristics it resolves.
  std::vector<net::HostId> member_hosts_;
  std::vector<net::PathCharacteristics> path_chars_;

  // Fault-path arenas, filled at slot setup only when the runner has a
  // fault plan armed (the fault-free path never touches them).
  /// Per member: first second its traffic is gone (slot_seconds = never).
  std::vector<int> member_crash_;
  /// Per member: seconds of its report the BWAuth receives.
  std::vector<int> report_end_;
  /// Per target: first second the relay is unreachable (slot_seconds =
  /// stays up).
  std::vector<int> relay_down_;
  /// Segment boundaries of the per-second loop: distinct crash seconds
  /// splitting the slot into ranges with a constant flow set.
  std::vector<int> segment_bounds_;

  // Stochastic per-second series, generated in batches at slot setup so
  // the per-second loop itself runs transcendental-free (the Box-Muller
  // log/sqrt/sincos calls all happen back to back in the setup fills).
  // noise_factor_ is target-major ([t * slot_seconds + s], each target's
  // series drawn from its own forked substream); jitter_ is second-major
  // ([s * n_targets + t], matching the order the per-second loop used to
  // draw them from the slot RNG one at a time).
  std::vector<double> noise_factor_;
  std::vector<double> jitter_;

  // Shared-resource model, built once per slot.
  std::vector<net::HostId> hosts_;  // de-duplicated measurer + target hosts
  std::vector<net::FairShareResource> resources_;
  /// Hoisted flow set: offered rates, weights and resource triples are
  /// second-invariant (only the relay resource capacities change), so the
  /// flows are built once per slot. flows_/flow_ids_ never shrink — the
  /// live prefix is tracked separately so inner vectors keep their
  /// capacity across slots.
  std::vector<net::FairShareFlow> flows_;
  std::vector<std::pair<std::size_t, std::size_t>> flow_ids_;  // (t, i)
  net::FairShareSolver solver_;
};

/// Runs one measurement slot against a single target.
///
/// The per-measurer offered rate each second is
///   min(a_i, sockets_i * per-socket TCP cap on the loaded path,
///       measurer NIC shares),
/// and the relay model turns offered load into forwarded bytes. `rng` seeds
/// the relay noise process and verification sampling.
class SlotRunner {
 public:
  SlotRunner(const net::Topology& topo, Params params, sim::Rng rng);

  SlotOutcome run(const tor::RelayModel& relay, net::HostId relay_host,
                  std::span<const MeasurerSlot> team,
                  TargetBehavior behavior = TargetBehavior::kHonest);

  /// Targets measured concurrently share measurer NICs and (when co-hosted)
  /// the target host's NIC (Appendix F). Outcomes align with `targets`.
  ///
  /// The relay model is borrowed, not copied: campaign workers build a
  /// target list per slot, and deep-copying every RelayModel (name string,
  /// CPU/scheduler models) per slot was measurable at full-network scale.
  /// The pointed-to model must outlive the run_concurrent call.
  struct ConcurrentTarget {
    const tor::RelayModel* relay = nullptr;
    net::HostId host = 0;
    std::vector<MeasurerSlot> team;
    TargetBehavior behavior = TargetBehavior::kHonest;
    /// Optional precomputed sim::hash_tag(relay->name): lets long-running
    /// callers skip re-hashing the relay name every slot when forking the
    /// per-target noise substream. 0 means "hash on demand". Either path
    /// derives the identical substream seed.
    std::uint64_t name_hash = 0;
  };
  std::vector<SlotOutcome> run_concurrent(
      std::span<const ConcurrentTarget> targets);
  /// Same, but with caller-owned scratch: a campaign worker thread keeps
  /// one SlotWorkspace for its lifetime so steady-state slots allocate
  /// (almost) nothing. The single-argument overload reuses a runner-owned
  /// workspace across calls.
  std::vector<SlotOutcome> run_concurrent(
      std::span<const ConcurrentTarget> targets, SlotWorkspace& ws);

  /// Offered measurement rate from one measurer toward a target host,
  /// before NIC contention (exposed for the Appendix E.1 socket sweep).
  double offered_rate(const MeasurerSlot& m, net::HostId relay_host) const;

  /// Arms deterministic fault injection for subsequent run_concurrent
  /// calls: `slot` keys the plan's per-slot fault draws (the campaign
  /// slot index). The plan is borrowed and must outlive the runner; null
  /// or a disabled plan leaves the fault-free path untouched — its
  /// output stays byte-identical to a runner that never armed faults.
  void arm_faults(const fault::FaultPlan* plan, std::uint64_t slot) {
    fault_plan_ = plan && plan->enabled() ? plan : nullptr;
    fault_slot_ = slot;
  }

  /// Attaches a telemetry probe for subsequent run_concurrent calls
  /// (borrowed; null — the default — skips every instrumentation site).
  /// Timing is observed only outside the FF_HOT per-second loop, and none
  /// of it feeds the outcomes: results are byte-identical either way.
  void set_probe(telemetry::SlotProbe* probe) { probe_ = probe; }

 private:
  /// Degraded BWAuth aggregation over the recorded per-second series:
  /// estimates from the surviving (reported, still-alive) allocation
  /// share, refusing seconds below the §4.2 headroom bar.
  void aggregate_degraded(std::span<const ConcurrentTarget> targets,
                          SlotWorkspace& ws,
                          std::vector<SlotOutcome>& outcomes);

  const net::Topology& topo_;
  Params params_;
  sim::Rng rng_;
  SlotWorkspace scratch_;  // backs the workspace-less run_concurrent
  const fault::FaultPlan* fault_plan_ = nullptr;
  std::uint64_t fault_slot_ = 0;
  telemetry::SlotProbe* probe_ = nullptr;
};

}  // namespace flashflow::core
