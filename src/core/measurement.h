// Measurement slots (§4.1): fluid per-second simulation plus the BWAuth
// aggregation pipeline.
//
// For each second j of a slot, each measuring process pushes measurement
// cells as fast as its rate limit (a_i / k_i) and socket shares allow; the
// target relay forwards measurement and background traffic subject to its
// capacity components and the ratio-r rule. The BWAuth then aggregates:
//
//   x_j = sum_i x_ij                       (measurement bytes, per second)
//   y_j = min(y_reported_j, x_j r/(1-r))   (clamped background)
//   z   = median(x_1+y_1, ..., x_t+y_t)    (capacity estimate)
//
// The relay may lie about y (attack.h) and may forward forged echoes; the
// sampled spot check catches forgeries with probability 1-(1-p)^k.
#pragma once

#include <span>
#include <vector>

#include "core/params.h"
#include "net/topology.h"
#include "sim/random.h"
#include "tor/relay.h"

namespace flashflow::core {

/// One measurer's role in a slot.
struct MeasurerSlot {
  net::HostId host = 0;
  double allocated_bits = 0;  // a_i (BandwidthRate sum over its processes)
  int sockets = 0;            // its share of the team's s sockets
};

/// How the target behaves (security experiments).
enum class TargetBehavior {
  kHonest,
  kLieAboutBackground,  // reports maximal y regardless of real forwarding
  kForgeEchoes,         // skips decryption / fabricates responses
};

struct SlotOutcome {
  std::vector<double> x_bits;          // per-second aggregated measurement
  std::vector<double> y_reported_bits; // per-second relay-reported normal
  std::vector<double> y_clamped_bits;  // after the r clamp
  std::vector<double> z_bits;          // x + y_clamped
  std::vector<std::vector<double>> x_by_measurer;  // x_ij
  double estimate_bits = 0;            // median(z), 0 when aborted
  bool verification_failed = false;
};

/// Per-second aggregation used by the BWAuth (exposed for unit tests):
/// clamps reported background to x*r/(1-r) and sums.
double clamp_background(double reported_y_bits, double x_bits, double ratio_r);

/// Runs one measurement slot against a single target.
///
/// The per-measurer offered rate each second is
///   min(a_i, sockets_i * per-socket TCP cap on the loaded path,
///       measurer NIC shares),
/// and the relay model turns offered load into forwarded bytes. `rng` seeds
/// the relay noise process and verification sampling.
class SlotRunner {
 public:
  SlotRunner(const net::Topology& topo, Params params, sim::Rng rng);

  SlotOutcome run(const tor::RelayModel& relay, net::HostId relay_host,
                  std::span<const MeasurerSlot> team,
                  TargetBehavior behavior = TargetBehavior::kHonest);

  /// Targets measured concurrently share measurer NICs and (when co-hosted)
  /// the target host's NIC (Appendix F). Outcomes align with `targets`.
  struct ConcurrentTarget {
    tor::RelayModel relay;
    net::HostId host = 0;
    std::vector<MeasurerSlot> team;
    TargetBehavior behavior = TargetBehavior::kHonest;
  };
  std::vector<SlotOutcome> run_concurrent(
      std::span<const ConcurrentTarget> targets);

  /// Offered measurement rate from one measurer toward a target host,
  /// before NIC contention (exposed for the Appendix E.1 socket sweep).
  double offered_rate(const MeasurerSlot& m, net::HostId relay_host) const;

 private:
  const net::Topology& topo_;
  Params params_;
  sim::Rng rng_;
};

}  // namespace flashflow::core
