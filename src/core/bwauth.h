// The BWAuth coordinator: ties allocation, slots, estimation and retry into
// relay and whole-network measurement campaigns, producing bandwidth files.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/measurement.h"
#include "core/params.h"
#include "core/team.h"
#include "tor/authority.h"
#include "tor/relay.h"

namespace flashflow::core {

/// A relay as seen by the measurement system.
struct RelayTarget {
  tor::RelayModel model;
  net::HostId host = 0;
  /// Previous capacity estimate z0; 0 marks a new relay (§4.2).
  double previous_estimate_bits = 0;
  TargetBehavior behavior = TargetBehavior::kHonest;
};

class BWAuth {
 public:
  /// `new_relay_prior_bits` is the 75th-percentile capacity used as the
  /// initial guess for new relays (§7 uses 51 Mbit/s from June 2019 data).
  BWAuth(const net::Topology& topo, Params params, Team team,
         double new_relay_prior_bits, std::uint64_t seed);

  struct MeasureResult {
    double estimate_bits = 0;
    int rounds = 0;            // number of slots used (>= 1)
    bool accepted = false;     // §4.2 acceptance condition met
    bool verification_failed = false;
    bool team_saturated = false;  // relay demanded the whole team
    std::vector<SlotOutcome> slots;  // one outcome per round
  };

  /// Measures one relay to acceptance: allocate f*z0, run a slot, accept or
  /// double the guess and retry (capped at `max_rounds`).
  MeasureResult measure_relay(const RelayTarget& target, int max_rounds = 8);

  /// Measures every relay and emits a bandwidth file (capacity == weight).
  tor::BandwidthFile measure_network(std::span<const RelayTarget> targets,
                                     int max_rounds = 8);

  const Team& team() const { return team_; }
  const Params& params() const { return params_; }

 private:
  const net::Topology& topo_;
  Params params_;
  Team team_;
  double new_relay_prior_bits_;
  sim::Rng rng_;
};

}  // namespace flashflow::core
