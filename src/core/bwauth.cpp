#include "core/bwauth.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "core/allocation.h"
#include "core/estimator.h"

namespace flashflow::core {

BWAuth::BWAuth(const net::Topology& topo, Params params, Team team,
               double new_relay_prior_bits, std::uint64_t seed)
    : topo_(topo),
      params_(params),
      team_(std::move(team)),
      new_relay_prior_bits_(new_relay_prior_bits),
      rng_(seed) {}

BWAuth::MeasureResult BWAuth::measure_relay(const RelayTarget& target,
                                            int max_rounds) {
  MeasureResult result;
  const std::vector<double> caps = team_.capacities();
  const std::vector<int> cores = team_.cores();
  const double team_total =
      std::accumulate(caps.begin(), caps.end(), 0.0);
  if (team_total <= 0.0)
    throw std::runtime_error(
        "BWAuth::measure_relay: team has no measured capacity; run "
        "Team::measure_measurers first");

  double guess = target.previous_estimate_bits > 0.0
                     ? target.previous_estimate_bits
                     : new_relay_prior_bits_;

  for (int round = 0; round < max_rounds; ++round) {
    ++result.rounds;
    double required = params_.excess_factor() * guess;
    const bool saturated = required >= team_total;
    if (saturated) required = team_total;

    const auto allocations = allocate_greedy(caps, required);
    const auto shares = make_shares(allocations, cores, params_);

    std::vector<MeasurerSlot> slots;
    for (const auto& s : shares) {
      if (s.allocated_bits <= 0.0) continue;
      MeasurerSlot m;
      m.host = team_.measurers()[s.measurer_index].host;
      m.allocated_bits = s.allocated_bits;
      m.sockets = s.sockets;
      slots.push_back(m);
    }

    SlotRunner runner(topo_, params_, rng_.fork("slot"));
    SlotOutcome outcome =
        runner.run(target.model, target.host, slots, target.behavior);
    const bool failed = outcome.verification_failed;
    const double z = outcome.estimate_bits;
    result.slots.push_back(std::move(outcome));
    if (failed) {
      result.verification_failed = true;
      return result;
    }

    const auto acceptance = evaluate_estimate(z, allocations, params_);
    if (acceptance.accepted || saturated) {
      result.estimate_bits = z;
      result.accepted = acceptance.accepted;
      result.team_saturated = saturated;
      return result;
    }
    guess = next_guess(z, guess);
  }
  // Rounds exhausted: report the last estimate unaccepted.
  if (!result.slots.empty())
    result.estimate_bits = result.slots.back().estimate_bits;
  return result;
}

tor::BandwidthFile BWAuth::measure_network(
    std::span<const RelayTarget> targets, int max_rounds) {
  tor::BandwidthFile file;
  file.reserve(targets.size());
  for (const auto& target : targets) {
    const MeasureResult r = measure_relay(target, max_rounds);
    tor::BandwidthFileEntry entry;
    entry.fingerprint = target.model.name;
    entry.capacity_bits = r.verification_failed ? 0.0 : r.estimate_bits;
    entry.weight = entry.capacity_bits;
    file.push_back(std::move(entry));
  }
  return file;
}

}  // namespace flashflow::core
