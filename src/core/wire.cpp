#include "core/wire.h"

#include <array>
#include <cstring>
#include <span>

#include "tor/crypto.h"

namespace flashflow::core {

namespace {
/// Serializes the authenticated fields into a flat byte buffer.
std::vector<std::uint8_t> message_bytes(const ControlMessage& msg) {
  std::vector<std::uint8_t> out;
  const auto push64 = [&out](std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  out.push_back(static_cast<std::uint8_t>(msg.type));
  push64(msg.sender);
  push64(static_cast<std::uint64_t>(msg.period_index));
  for (const char c : msg.target_fingerprint)
    out.push_back(static_cast<std::uint8_t>(c));
  for (const KeyId k : msg.measurer_keys) push64(k);
  std::uint64_t value_bits = 0;
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  std::memcpy(&value_bits, &msg.value, sizeof value_bits);
  push64(value_bits);
  push64(static_cast<std::uint64_t>(msg.second));
  return out;
}
}  // namespace

void sign_message(ControlMessage& msg, std::uint64_t secret_key) {
  const auto bytes = message_bytes(msg);
  msg.mac = tor::keyed_digest(secret_key, {bytes.data(), bytes.size()});
}

bool verify_message(const ControlMessage& msg, std::uint64_t secret_key) {
  const auto bytes = message_bytes(msg);
  return msg.mac == tor::keyed_digest(secret_key, {bytes.data(), bytes.size()});
}

bool MeasurementGate::admit(KeyId bwauth, std::int64_t period_index) {
  return admitted_.insert({bwauth, period_index}).second;
}

bool MeasurementGate::measurer_authorized(KeyId measurer) const {
  return authorized_measurers_.count(measurer) > 0;
}

void MeasurementGate::authorize_measurers(const std::vector<KeyId>& keys) {
  authorized_measurers_.insert(keys.begin(), keys.end());
}

void MeasurementGate::clear_authorizations() { authorized_measurers_.clear(); }

}  // namespace flashflow::core
