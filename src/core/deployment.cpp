#include "core/deployment.h"

#include <stdexcept>
#include <string>

#include "net/units.h"

namespace flashflow::core {

DeploymentResult run_deployment(const net::Topology& topo,
                                const Params& params,
                                std::span<const net::HostId> team_hosts,
                                std::span<const RelayTarget> targets,
                                int n_bwauths, std::uint64_t shared_seed) {
  if (n_bwauths < 1)
    throw std::invalid_argument("run_deployment: need >= 1 BWAuth");

  DeploymentResult result;
  sim::Rng seed_source(shared_seed);
  for (int b = 0; b < n_bwauths; ++b) {
    // Each BWAuth's randomness is a substream of the shared period seed,
    // tagged by its identity (§4.3).
    sim::Rng bwauth_rng =
        seed_source.fork("bwauth-" + std::to_string(b));
    Team team(topo,
              std::vector<net::HostId>(team_hosts.begin(), team_hosts.end()));
    team.measure_measurers(bwauth_rng());
    BWAuth bwauth(topo, params, std::move(team), net::mbit(51),
                  bwauth_rng());
    result.per_bwauth_files.push_back(bwauth.measure_network(targets));
  }

  result.consensus = tor::build_consensus(
      0, {result.per_bwauth_files.data(), result.per_bwauth_files.size()});

  result.median_capacities_bits.reserve(targets.size());
  for (const auto& target : targets)
    result.median_capacities_bits.push_back(tor::median_capacity(
        {result.per_bwauth_files.data(), result.per_bwauth_files.size()},
        target.model.name));
  return result;
}

}  // namespace flashflow::core
