// Measurement teams and measurer-capacity estimation (§4 "Setup", §4.2
// "Measuring Measurers").
//
// A team is a set of measurer hosts whose summed capacity must be at least
// f times the largest relay capacity. Measurer capacities are estimated
// with a concurrent bidirectional UDP iPerf mesh: every measurer exchanges
// traffic with every other measurer for 60 seconds, and the estimate is the
// median per-second min(sent, received). Only a lower bound is needed — an
// underestimate slows the schedule but cannot bias relay estimates.
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.h"

namespace flashflow::core {

struct Measurer {
  net::HostId host = 0;
  double capacity_bits = 0;  // estimated via the iPerf mesh
};

class Team {
 public:
  Team(const net::Topology& topo, std::vector<net::HostId> hosts);

  /// Runs the 60-second concurrent bidirectional UDP mesh and stores
  /// per-measurer capacity estimates.
  void measure_measurers(std::uint64_t seed);

  /// Overrides a measurer's capacity (lab configs with known limits).
  void set_capacity(std::size_t index, double capacity_bits);

  const std::vector<Measurer>& measurers() const { return measurers_; }
  std::vector<double> capacities() const;
  std::vector<int> cores() const;
  double total_capacity() const;

  /// True if the team can measure a relay of the given capacity with excess
  /// factor f: sum(c_i) >= f * relay_capacity.
  bool sufficient_for(double relay_capacity_bits, double excess_factor) const;

 private:
  const net::Topology& topo_;
  std::vector<Measurer> measurers_;
};

}  // namespace flashflow::core
