#include "core/schedule.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace flashflow::core {

PackingResult greedy_pack(std::span<const double> capacity_estimates,
                          double team_capacity_bits, const Params& params) {
  const double f = params.excess_factor();
  const std::size_t n = capacity_estimates.size();

  // Relays sorted by requirement, largest first.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return capacity_estimates[a] > capacity_estimates[b];
  });

  PackingResult result;
  result.relay_slot.assign(n, -1);
  std::vector<bool> placed(n, false);
  std::size_t remaining = n;
  int slot = 0;
  while (remaining > 0) {
    double room = team_capacity_bits;
    // Largest-fit: scan in descending order for relays that still fit.
    for (const std::size_t r : order) {
      if (placed[r]) continue;
      const double need = f * capacity_estimates[r];
      if (need > team_capacity_bits + 1e-6)
        throw std::runtime_error(
            "greedy_pack: relay exceeds team capacity");
      if (need <= room + 1e-6) {
        result.relay_slot[r] = slot;
        result.total_requirement_bits += need;
        room -= need;
        placed[r] = true;
        --remaining;
      }
    }
    ++slot;
  }
  result.slots_used = slot;
  return result;
}

PeriodSchedule::PeriodSchedule(const Params& params,
                               double team_capacity_bits, std::uint64_t seed)
    : params_(params),
      team_capacity_bits_(team_capacity_bits),
      rng_(seed),
      load_bits_(static_cast<std::size_t>(
                     params.period / (params.slot_seconds * sim::kSecond)),
                 0.0) {
  if (team_capacity_bits_ <= 0.0)
    throw std::invalid_argument("PeriodSchedule: no team capacity");
}

int PeriodSchedule::slots_in_period() const {
  return static_cast<int>(load_bits_.size());
}

double PeriodSchedule::requirement(double capacity_estimate_bits) const {
  return params_.excess_factor() * capacity_estimate_bits;
}

std::vector<int> PeriodSchedule::schedule_old_relays(
    std::span<const double> capacity_estimates) {
  std::vector<int> slots;
  slots.reserve(capacity_estimates.size());
  std::vector<int> feasible;
  for (const double estimate : capacity_estimates) {
    const double need = requirement(estimate);
    feasible.clear();
    for (std::size_t s = 0; s < load_bits_.size(); ++s)
      if (load_bits_[s] + need <= team_capacity_bits_ + 1e-6)
        feasible.push_back(static_cast<int>(s));
    if (feasible.empty())
      throw std::runtime_error(
          "PeriodSchedule: no slot can fit relay; period too short");
    const int pick = feasible[static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(feasible.size()) - 1))];
    load_bits_[static_cast<std::size_t>(pick)] += need;
    slots.push_back(pick);
  }
  return slots;
}

int PeriodSchedule::schedule_new_relay(double capacity_estimate_bits) {
  const double need = requirement(capacity_estimate_bits);
  for (std::size_t s = 0; s < load_bits_.size(); ++s) {
    if (load_bits_[s] + need <= team_capacity_bits_ + 1e-6) {
      load_bits_[s] += need;
      return static_cast<int>(s);
    }
  }
  throw std::runtime_error("PeriodSchedule: period full");
}

double PeriodSchedule::slot_load_bits(int slot) const {
  return load_bits_.at(static_cast<std::size_t>(slot));
}

}  // namespace flashflow::core
