// Multi-BWAuth deployment (§4 "Trust and Diversity", §4.3).
//
// Multiple BWAuths, each with its own measurement team, independently
// measure every relay during a period; each derives its secret randomized
// schedule from the shared seed combined with its identity, and the
// DirAuths place the *median* of the BWAuths' values in the consensus.
// The median is the defense against a minority of compromised BWAuths and
// against relays that provision capacity only part-time.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/bwauth.h"
#include "tor/descriptor.h"

namespace flashflow::core {

struct DeploymentResult {
  /// One bandwidth file per BWAuth, in BWAuth order.
  std::vector<tor::BandwidthFile> per_bwauth_files;
  /// The consensus built from the median across BWAuths.
  tor::Consensus consensus;
  /// Median capacity per relay (aligned with `targets`).
  std::vector<double> median_capacities_bits;
};

/// Runs `n_bwauths` independent measurement campaigns over the same relay
/// set and aggregates them with the DirAuths' median rule. Each BWAuth
/// uses the same team hosts (measurer capacities are re-estimated per
/// BWAuth) but an independent seed substream; `shared_seed` plays the role
/// of Tor's secure-randomness output for the period.
DeploymentResult run_deployment(const net::Topology& topo,
                                const Params& params,
                                std::span<const net::HostId> team_hosts,
                                std::span<const RelayTarget> targets,
                                int n_bwauths, std::uint64_t shared_seed);

}  // namespace flashflow::core
