// Strict whole-token numeric parsing.
//
// The std::stoll/std::stod/atoi family silently accepts trailing garbage
// ("12junk" parses as 12) and surfaces overflow as a generic exception
// that loses the offending input. Every text-input path in this repo —
// the Tor bandwidth-file parser, the scenario-file parser, CLI flags —
// must instead consume the *whole* token or fail naming what was being
// parsed and what was seen, so a corrupted input never silently truncates
// into a plausible value.
//
// All helpers reject: empty input, leading/trailing whitespace or garbage,
// sign prefixes the type cannot hold, values out of range, and (for
// doubles) non-finite results. On failure they throw std::invalid_argument
// with a message of the form
//
//   <what>: expected <type>, got 'text'
//   <what>: <type> out of range: 'text'
//
// where `what` names the field/key/flag the caller was parsing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace flashflow::util {

/// Signed 64-bit integer; accepts an optional leading '-'.
std::int64_t parse_i64(std::string_view text, const std::string& what);

/// Unsigned 64-bit integer; rejects any sign prefix.
std::uint64_t parse_u64(std::string_view text, const std::string& what);

/// Finite double in the usual fixed/scientific forms ("2.25", "1e-5").
double parse_double(std::string_view text, const std::string& what);

/// parse_i64 narrowed to int, with the int range enforced.
int parse_int(std::string_view text, const std::string& what);

/// Exactly "true" or "false".
bool parse_bool(std::string_view text, const std::string& what);

}  // namespace flashflow::util
