// Structural comparison of two flashflow result directories.
//
// The sweep/determinism workflows used to shell out to `cmp`, which can
// only say "bytes differ". diff_result_dirs compares the deterministic
// artifacts a run writes — results.csv, results.jsonl, bandwidth.txt and
// (for fault-armed scenarios) faults.csv —
// line by line and reports, per file, the first differing line along
// with the slot it belongs to, so a broken determinism invariant points
// at the slot to debug rather than at a byte offset.
//
// scenario.yaml is deliberately not compared: sweep cells legitimately
// differ in their expanded specs while their results must not.
#pragma once

#include <string>
#include <vector>

namespace flashflow::util {

/// The first difference found in one result file.
struct FileDiff {
  std::string file;  ///< artifact name, e.g. "results.csv"
  /// 1-based line of the first difference; 0 when the file is missing
  /// from one directory.
  int line = 0;
  /// Slot the differing line belongs to (parsed from the line), or -1
  /// when the file has no slot column (bandwidth.txt) or the line does
  /// not carry one.
  int slot = -1;
  std::string message;  ///< human-readable description of the difference
};

struct DiffResult {
  bool identical = true;
  /// One entry per differing artifact (at most one per file).
  std::vector<FileDiff> differences;
};

/// Compares the result artifacts of two run directories. A file missing
/// from both directories is skipped; missing from exactly one is a
/// difference. Throws std::invalid_argument if either directory does not
/// exist.
DiffResult diff_result_dirs(const std::string& dir_a,
                            const std::string& dir_b);

}  // namespace flashflow::util
