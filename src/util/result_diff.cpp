#include "util/result_diff.h"

#include <array>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace fs = std::filesystem;

namespace flashflow::util {

namespace {

/// Parses a non-negative integer prefix of `s`; -1 if there is none.
int int_prefix(std::string_view s) {
  int value = 0;
  std::size_t i = 0;
  while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
    value = value * 10 + (s[i] - '0');
    ++i;
  }
  return i == 0 ? -1 : value;
}

/// The slot a result line belongs to. CSV rows carry it as the third
/// comma-separated field (header: period,relay,slot,...); JSONL objects
/// as a "slot":N member. -1 when the line has neither (headers,
/// bandwidth-file lines).
int slot_of(const std::string& file, std::string_view line) {
  if (file == "results.csv" || file == "faults.csv") {
    std::size_t field = 0;
    std::size_t start = 0;
    while (field < 2) {
      const std::size_t comma = line.find(',', start);
      if (comma == std::string_view::npos) return -1;
      start = comma + 1;
      ++field;
    }
    return int_prefix(line.substr(start));
  }
  if (file == "results.jsonl") {
    static constexpr std::string_view kKey = "\"slot\":";
    const std::size_t pos = line.find(kKey);
    if (pos == std::string_view::npos) return -1;
    return int_prefix(line.substr(pos + kKey.size()));
  }
  return -1;
}

std::string quoted_for_message(const std::string& line) {
  constexpr std::size_t kMaxShown = 120;
  if (line.size() <= kMaxShown) return "'" + line + "'";
  return "'" + line.substr(0, kMaxShown) + "...'";
}

/// Line-by-line comparison of one artifact in both directories; appends
/// at most one FileDiff.
void diff_file(const fs::path& dir_a, const fs::path& dir_b,
               const std::string& file, DiffResult& result) {
  const fs::path path_a = dir_a / file;
  const fs::path path_b = dir_b / file;
  const bool has_a = fs::exists(path_a);
  const bool has_b = fs::exists(path_b);
  if (!has_a && !has_b) return;
  if (has_a != has_b) {
    result.identical = false;
    result.differences.push_back(
        {file, 0, -1,
         "present only in " + (has_a ? dir_a : dir_b).string()});
    return;
  }

  std::ifstream in_a(path_a);
  std::ifstream in_b(path_b);
  if (!in_a || !in_b)
    throw std::invalid_argument("cannot read " +
                                (in_a ? path_b : path_a).string());

  std::string line_a;
  std::string line_b;
  for (int line = 1;; ++line) {
    const bool more_a = static_cast<bool>(std::getline(in_a, line_a));
    const bool more_b = static_cast<bool>(std::getline(in_b, line_b));
    if (!more_a && !more_b) return;  // identical
    if (more_a != more_b) {
      result.identical = false;
      const std::string longer = (more_a ? dir_a : dir_b).string();
      result.differences.push_back(
          {file, line, slot_of(file, more_a ? line_a : line_b),
           longer + " continues past line " + std::to_string(line - 1) +
               ", the other ends there"});
      return;
    }
    if (line_a != line_b) {
      result.identical = false;
      int slot = slot_of(file, line_a);
      if (slot < 0) slot = slot_of(file, line_b);
      result.differences.push_back(
          {file, line, slot,
           "line " + std::to_string(line) +
               (slot >= 0 ? " (slot " + std::to_string(slot) + ")" : "") +
               ": " + quoted_for_message(line_a) + " vs " +
               quoted_for_message(line_b)});
      return;
    }
  }
}

}  // namespace

DiffResult diff_result_dirs(const std::string& dir_a,
                            const std::string& dir_b) {
  for (const std::string& dir : {dir_a, dir_b})
    if (!fs::is_directory(dir))
      throw std::invalid_argument("not a result directory: " + dir);

  static const std::array<std::string, 4> kArtifacts = {
      "results.csv", "results.jsonl", "bandwidth.txt", "faults.csv"};
  DiffResult result;
  for (const auto& file : kArtifacts)
    diff_file(dir_a, dir_b, file, result);
  return result;
}

}  // namespace flashflow::util
