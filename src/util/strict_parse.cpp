#include "util/strict_parse.h"

#include <charconv>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <system_error>

namespace flashflow::util {

namespace {

[[noreturn]] void fail_format(const std::string& what, const char* type,
                              std::string_view text) {
  throw std::invalid_argument(what + ": expected " + type + ", got '" +
                              std::string(text) + "'");
}

[[noreturn]] void fail_range(const std::string& what, const char* type,
                             std::string_view text) {
  throw std::invalid_argument(what + ": " + type + " out of range: '" +
                              std::string(text) + "'");
}

/// from_chars over the whole token: no leading whitespace, no trailing
/// bytes, strict errc mapping. Returns true on full success; sets
/// `out_of_range` when the text was numeric but overflowed.
template <typename T>
bool whole_token(std::string_view text, T& value, bool& out_of_range) {
  out_of_range = false;
  if (text.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec == std::errc::result_out_of_range) {
    // Only a *fully consumed* numeric token counts as overflow; "1e999x"
    // is garbage, not a range error.
    out_of_range = ptr == text.data() + text.size();
    return false;
  }
  return ec == std::errc() && ptr == text.data() + text.size();
}

}  // namespace

std::int64_t parse_i64(std::string_view text, const std::string& what) {
  std::int64_t value = 0;
  bool overflow = false;
  if (!whole_token(text, value, overflow)) {
    if (overflow) fail_range(what, "integer", text);
    fail_format(what, "an integer", text);
  }
  return value;
}

std::uint64_t parse_u64(std::string_view text, const std::string& what) {
  // from_chars<unsigned> already rejects '-', but be explicit about '+'
  // too: scenario files and bandwidth files never sign unsigned fields.
  if (!text.empty() && (text.front() == '+' || text.front() == '-'))
    fail_format(what, "a non-negative integer", text);
  std::uint64_t value = 0;
  bool overflow = false;
  if (!whole_token(text, value, overflow)) {
    if (overflow) fail_range(what, "integer", text);
    fail_format(what, "a non-negative integer", text);
  }
  return value;
}

double parse_double(std::string_view text, const std::string& what) {
  if (text.empty()) fail_format(what, "a number", text);
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec == std::errc::result_out_of_range &&
      ptr == text.data() + text.size())
    fail_range(what, "number", text);
  if (ec != std::errc() || ptr != text.data() + text.size())
    fail_format(what, "a number", text);
  // from_chars accepts "inf"/"nan" spellings; no field in this project is
  // meaningfully non-finite, so treat them as malformed input.
  if (!std::isfinite(value)) fail_format(what, "a finite number", text);
  return value;
}

int parse_int(std::string_view text, const std::string& what) {
  const std::int64_t value = parse_i64(text, what);
  if (value < std::numeric_limits<int>::min() ||
      value > std::numeric_limits<int>::max())
    fail_range(what, "integer", text);
  return static_cast<int>(value);
}

bool parse_bool(std::string_view text, const std::string& what) {
  if (text == "true") return true;
  if (text == "false") return false;
  fail_format(what, "'true' or 'false'", text);
}

}  // namespace flashflow::util
