#include "util/out_dir.h"

#include <filesystem>
#include <stdexcept>

namespace flashflow::util {

namespace fs = std::filesystem;

bool dir_has_entries(const std::string& path) {
  std::error_code ec;
  if (!fs::is_directory(path, ec)) return false;
  return fs::directory_iterator(path, ec) != fs::directory_iterator() && !ec;
}

void require_empty_dir(const std::string& path, bool force) {
  std::error_code ec;
  const auto status = fs::status(path, ec);
  if (ec || !fs::exists(status)) return;  // created fresh by the writer
  if (!fs::is_directory(status))
    throw std::invalid_argument("output path '" + path +
                                "' exists and is not a directory");
  if (!force && dir_has_entries(path))
    throw std::invalid_argument("output directory '" + path +
                                "' is not empty (pass --force to overwrite)");
}

}  // namespace flashflow::util
