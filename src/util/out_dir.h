// Output-directory clobber guard for the CLI result writers.
//
// `flashflow run`/`sweep` treat a result directory as a reproducible
// artifact of its scenario file; silently overwriting one with a new run
// (possibly degraded, possibly from an edited scenario) would destroy the
// prior artifact without a trace. The guard makes overwriting an explicit
// decision: a non-empty target requires --force.
#pragma once

#include <string>

namespace flashflow::util {

/// True when `path` exists, is a directory, and contains at least one
/// entry.
bool dir_has_entries(const std::string& path);

/// Throws std::invalid_argument when `path` is a non-empty directory and
/// `force` is false ("pass --force to overwrite"), or when `path` exists
/// but is not a directory at all. A missing or empty directory passes, as
/// does any directory when `force` is true.
void require_empty_dir(const std::string& path, bool force);

}  // namespace flashflow::util
