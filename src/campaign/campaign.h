// Full-network measurement campaigns (§4.3, §7).
//
// A campaign measures an entire relay population over one period: the
// scheduler lays the relays out into 30-second slots (either the §7
// greedy largest-fit packing that minimizes total measurement time, or the
// §4.3 secret randomized period schedule), then every slot runs the §4.1
// slot pipeline against its relays with a team allocation computed by the
// §4.2 greedy allocator.
//
// Slots are independent, so the engine executes them on a fixed-size
// thread pool. Each slot forks its own RNG from the period seed
// (sub-seed = period_seed XOR slot index) and writes only its own relays'
// results, which makes a campaign's output bit-identical regardless of the
// thread count — the property every scale experiment on top of this
// subsystem relies on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/measurement.h"
#include "core/params.h"
#include "net/topology.h"
#include "tor/relay.h"

namespace flashflow::campaign {

/// One relay in the measured population.
struct CampaignRelay {
  tor::RelayModel model;
  net::HostId host = 0;
  /// Prior capacity guess z0 for scheduling/allocation (§4.2). <= 0 means
  /// "oracle prior": use the relay's Tor ground truth at the configured
  /// socket count.
  double prior_estimate_bits = 0.0;
  core::TargetBehavior behavior = core::TargetBehavior::kHonest;
};

enum class ScheduleMode {
  /// §7 largest-fit packing: minimum slots, measured back to back.
  kGreedyPack,
  /// §4.3 randomized secret schedule across the whole period.
  kRandomized,
};

struct CampaignConfig {
  core::Params params;
  /// Measurer team (hosts must exist in the topology).
  std::vector<net::HostId> measurer_hosts;
  /// Per-measurer capacity overrides aligned with `measurer_hosts` (lab
  /// configs with known limits). Empty: run the §4.2 iPerf mesh.
  std::vector<double> measurer_capacity_bits;
  ScheduleMode schedule = ScheduleMode::kGreedyPack;
  /// Worker threads for slot execution; <= 0 selects hardware concurrency.
  int threads = 1;
  /// Period seed; every slot derives its sub-seed from this.
  std::uint64_t seed = 1;
};

/// Per-relay campaign outcome, aligned with the input population.
struct RelayEstimate {
  int slot = -1;
  double estimate_bits = 0.0;
  double ground_truth_bits = 0.0;
  /// estimate / ground truth - 1; 0 when the ground truth is 0 or the
  /// relay failed verification.
  double relative_error = 0.0;
  bool verification_failed = false;
};

struct CampaignSummary {
  int relays_measured = 0;
  int verification_failures = 0;
  /// Slots laid out by the scheduler (kRandomized counts the whole period).
  int slots_in_period = 0;
  /// Non-empty slots actually executed.
  int slots_executed = 0;
  /// Simulated measurement time: last occupied slot's end, seconds.
  double simulated_seconds = 0.0;
  /// Real execution time of the campaign engine, seconds.
  double wall_seconds = 0.0;
  /// Error aggregates over relays that passed verification, |z/x - 1|.
  double mean_abs_relative_error = 0.0;
  double median_abs_relative_error = 0.0;
  double max_abs_relative_error = 0.0;
  double total_true_bits = 0.0;
  double total_estimated_bits = 0.0;
};

struct CampaignResult {
  std::vector<RelayEstimate> relays;
  CampaignSummary summary;
};

class CampaignRunner {
 public:
  /// Resolves the team's capacities up front (override or iPerf mesh), so
  /// repeated runs reuse the same measurer estimates.
  CampaignRunner(const net::Topology& topo, CampaignConfig config);

  /// Measures the whole population once. Deterministic in (population,
  /// config, seed); independent of `threads`.
  CampaignResult run(std::span<const CampaignRelay> relays) const;

  const std::vector<double>& measurer_capacities() const {
    return measurer_caps_;
  }
  double team_capacity_bits() const;

 private:
  const net::Topology& topo_;
  CampaignConfig config_;
  std::vector<double> measurer_caps_;
  std::vector<int> measurer_cores_;
};

}  // namespace flashflow::campaign
