// Full-network measurement campaigns (§4.3, §7).
//
// A campaign measures an entire relay population over one period: the
// scheduler lays the relays out into 30-second slots (either the §7
// greedy largest-fit packing that minimizes total measurement time, or the
// §4.3 secret randomized period schedule), then every slot runs the §4.1
// slot pipeline against its relays with a team allocation computed by the
// §4.2 greedy allocator.
//
// Slots are independent, so the engine executes them on a fixed-size
// thread pool. Each slot forks its own RNG from the period seed
// (sub-seed = period_seed XOR slot index) and writes only its own relays'
// results, which makes a campaign's output bit-identical regardless of the
// thread count — the property every scale experiment on top of this
// subsystem relies on.
//
// Results stream: run(relays, sink) delivers each slot's estimates to a
// SlotSink as slots complete. Completed slots are re-ordered so the sink
// always observes increasing slot indices, which makes the streamed byte
// stream (CSV, JSONL, …) — not just the aggregate — independent of the
// thread count. The batch run(relays) overload is a thin wrapper over an
// in-memory aggregating sink (campaign/sink.h).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/measurement.h"
#include "core/params.h"
#include "fault/fault.h"
#include "net/topology.h"
#include "telemetry/telemetry.h"
#include "tor/relay.h"

namespace flashflow::campaign {

/// One relay in the measured population.
struct CampaignRelay {
  tor::RelayModel model;
  net::HostId host = 0;
  /// Prior capacity guess z0 for scheduling/allocation (§4.2). <= 0 means
  /// "oracle prior": use the relay's Tor ground truth at the configured
  /// socket count.
  double prior_estimate_bits = 0.0;
  core::TargetBehavior behavior = core::TargetBehavior::kHonest;
};

enum class ScheduleMode {
  /// §7 largest-fit packing: minimum slots, measured back to back.
  kGreedyPack,
  /// §4.3 randomized secret schedule across the whole period.
  kRandomized,
};

struct CampaignConfig {
  core::Params params;
  /// Measurer team (hosts must exist in the topology).
  std::vector<net::HostId> measurer_hosts;
  /// Per-measurer capacity overrides aligned with `measurer_hosts` (lab
  /// configs with known limits). Empty: run the §4.2 iPerf mesh.
  std::vector<double> measurer_capacity_bits;
  ScheduleMode schedule = ScheduleMode::kGreedyPack;
  /// Worker threads for slot execution; <= 0 selects hardware concurrency.
  int threads = 1;
  /// Contiguous slots a worker lane claims per trip to the shared
  /// dispatch counter; <= 0 picks a size from the slot and lane counts
  /// (ThreadPool::default_shard). Purely a performance knob: results are
  /// bit-identical for every shard size.
  int shard_slots = 0;
  /// Period seed; every slot derives its sub-seed from this.
  std::uint64_t seed = 1;
  /// Attach the full per-second core::SlotOutcome to every streamed
  /// SlotResult (timeline experiments). Off by default: outcomes hold four
  /// per-second series per relay, which adds up over a large population.
  bool record_outcomes = false;
  /// Deterministic fault injection (fault::FaultPlan keyed by `seed`).
  /// All-zero rates (the default) keep every fault path unentered: the
  /// run is byte-identical to a build without the fault layer.
  fault::FaultSpec faults;
  /// Optional telemetry session (borrowed; must outlive the run). Null —
  /// the default — skips every instrumentation site: no clock reads
  /// beyond the two RunStats::wall_seconds endpoints, no shard writes,
  /// and byte-identical results either way (the golden suite pins both).
  /// With Recorder::enable_trace() each streamed SlotResult additionally
  /// carries a telemetry::SlotTrace.
  telemetry::Recorder* telemetry = nullptr;
};

/// Per-relay campaign outcome, aligned with the input population.
struct RelayEstimate {
  int slot = -1;
  double estimate_bits = 0.0;
  double ground_truth_bits = 0.0;
  /// estimate / ground truth - 1; 0 when the ground truth is 0 or the
  /// relay failed verification.
  double relative_error = 0.0;
  bool verification_failed = false;
  /// Evidence quality of the winning attempt (core::SlotOutcome::quality);
  /// 1.0 for a fault-free measurement, < 1.0 when the estimate came from
  /// degraded evidence.
  double quality = 1.0;
  /// Retry round that produced this estimate (0 = first attempt).
  int attempt = 0;
  /// The final attempt produced no usable estimate (estimate_bits == 0).
  /// Distinct from verification_failed, which is a security outcome and is
  /// never retried.
  bool slot_failed = false;
  /// Failed on every attempt up to FaultSpec::max_retries: the relay is
  /// benched until the next period (which starts it fresh).
  bool quarantined = false;

  friend bool operator==(const RelayEstimate&, const RelayEstimate&) = default;
};

/// Deterministic period summary. Wall-clock timing lives in RunStats, not
/// here, so two runs of the same campaign compare equal as whole structs.
struct CampaignSummary {
  /// Relays whose slot actually ran and was delivered — equals the
  /// population size unless the run was cancelled.
  int relays_measured = 0;
  int verification_failures = 0;
  /// Slots laid out by the scheduler (kRandomized counts the whole period).
  int slots_in_period = 0;
  /// Non-empty slots actually executed.
  int slots_executed = 0;
  /// Simulated measurement time: last occupied slot's end, seconds.
  double simulated_seconds = 0.0;
  /// Error aggregates over relays that passed verification, |z/x - 1|.
  double mean_abs_relative_error = 0.0;
  double median_abs_relative_error = 0.0;
  double max_abs_relative_error = 0.0;
  double total_true_bits = 0.0;
  double total_estimated_bits = 0.0;
  /// Fault accounting (all zero on a fault-free run).
  /// Relays whose final attempt still failed (includes the quarantined).
  int relays_failed = 0;
  /// Relays that needed at least one retry (whether or not it succeeded).
  int relays_retried = 0;
  /// Relays that exhausted the retry budget.
  int relays_quarantined = 0;
  /// Relays measured successfully but from degraded evidence (quality < 1).
  int relays_degraded = 0;

  friend bool operator==(const CampaignSummary&,
                         const CampaignSummary&) = default;
};

struct CampaignResult {
  std::vector<RelayEstimate> relays;
  CampaignSummary summary;

  friend bool operator==(const CampaignResult&,
                         const CampaignResult&) = default;
};

/// What a sink learns before the first slot runs.
struct RunPlan {
  int relays = 0;
  int slots_in_period = 0;
  /// Occupied slots that will execute (and be delivered) in the first
  /// round; retry rounds add more deliveries after this.
  int slots_to_execute = 0;
  double team_capacity_bits = 0.0;
  /// Fault injection is armed: sinks that serialize estimates append the
  /// fault columns only in this case, keeping fault-free byte streams
  /// identical to pre-fault builds.
  bool faults_enabled = false;
};

/// One completed slot: the estimates of every relay measured in it.
struct SlotResult {
  int slot = -1;
  /// Indices into the input population, aligned with `estimates`.
  std::vector<std::size_t> relay_indices;
  std::vector<RelayEstimate> estimates;
  /// Full per-second slot outcomes aligned with `relay_indices`; filled
  /// only when CampaignConfig::record_outcomes is set.
  std::vector<core::SlotOutcome> outcomes;
  /// Per-slot execution trace; present only when the run's telemetry
  /// recorder has tracing enabled. Timing/lane/shard fields are
  /// wall-clock- and thread-dependent; everything else is deterministic.
  std::optional<telemetry::SlotTrace> trace;
};

/// Execution timing and progress counters for one streamed run. This is
/// where wall-clock time lives — deliberately outside CampaignSummary so
/// campaign results stay comparable across runs and machines.
struct RunStats {
  int slots_in_period = 0;
  /// Slots delivered to the sink.
  int slots_executed = 0;
  /// Occupied slots skipped because the sink cancelled the run (counted
  /// against everything scheduled, retry rounds included):
  /// slots_executed + slots_skipped == slots scheduled overall.
  int slots_skipped = 0;
  /// Executed slots in which at least one relay's measurement failed.
  int slots_failed = 0;
  /// Retry slots executed (rounds after the first).
  int slots_retried = 0;
  double simulated_seconds = 0.0;
  double wall_seconds = 0.0;
  bool cancelled = false;
};

/// Streaming consumer of campaign results. Delivery is serialized and in
/// increasing slot order within each retry round regardless of the thread
/// count (fault-free runs have exactly one round, hence globally increasing
/// slot order), so anything a sink writes is bit-identical across runs with
/// different `threads`.
class SlotSink {
 public:
  virtual ~SlotSink() = default;

  /// Called once, before any slot executes.
  virtual void begin(const RunPlan& plan) { (void)plan; }

  /// Called once per occupied slot, in increasing slot order.
  virtual void slot_done(const SlotResult& slot) = 0;

  /// Progress/cancellation hook, called after each delivery. Returning
  /// false cancels the remaining slots: workers stop claiming work and no
  /// further slot_done call is made. `slots_total` covers everything
  /// scheduled so far and grows when retry rounds add slots.
  virtual bool on_progress(int slots_done, int slots_total) {
    (void)slots_done;
    (void)slots_total;
    return true;
  }
};

class CampaignRunner {
 public:
  /// Resolves the team's capacities up front (override or iPerf mesh), so
  /// repeated runs reuse the same measurer estimates. Validates
  /// `config.params` (core::Params::validate).
  CampaignRunner(const net::Topology& topo, CampaignConfig config);

  /// Streams the whole population through `sink`, one delivery per
  /// occupied slot. Deterministic in (population, config, seed);
  /// independent of `threads`. Returns timing/progress stats — the only
  /// nondeterministic outputs of a run.
  RunStats run(std::span<const CampaignRelay> relays, SlotSink& sink) const;

  /// Batch convenience: aggregates the stream into a CampaignResult
  /// (campaign/sink.h AggregatingSink). Use the streaming overload to
  /// recover wall-clock timing.
  CampaignResult run(std::span<const CampaignRelay> relays) const;

  const std::vector<double>& measurer_capacities() const {
    return measurer_caps_;
  }
  double team_capacity_bits() const;

 private:
  const net::Topology& topo_;
  CampaignConfig config_;
  std::vector<double> measurer_caps_;
  std::vector<int> measurer_cores_;
};

}  // namespace flashflow::campaign
