#include "campaign/sink.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <ostream>
#include <string>

#include "metrics/stats.h"

namespace flashflow::campaign {
namespace {

// Round-trip double formatting (std::to_chars shortest form): parses back
// exactly, so streamed files are stable and diffable, and allocation-free
// on the per-estimate hot path.
std::string fmt(double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

}  // namespace

SlotReorderBuffer::SlotReorderBuffer(std::size_t count, std::size_t window,
                                     Deliver deliver)
    : count_(count),
      window_(std::max<std::size_t>(window, 1)),
      deliver_(std::move(deliver)),
      ring_(std::min(window_, count_ > 0 ? count_ : std::size_t{1})) {}

bool SlotReorderBuffer::park(std::size_t index, SlotResult&& result) {
  std::unique_lock<std::mutex> lock(mutex_);
  window_open_.wait(lock,
                    [&] { return aborted_ || index < next_ + window_; });
  if (aborted_) return false;
  ring_[index % ring_.size()] = std::move(result);
  if (index != next_) return true;  // a later parker flushes this entry

  // Flush the contiguous ready prefix. The deliver callback runs under
  // the buffer lock: deliveries are serialized and in order no matter how
  // many workers are parking concurrently.
  bool advanced = false;
  while (!aborted_ && next_ < count_) {
    std::optional<SlotResult>& slot = ring_[next_ % ring_.size()];
    if (!slot.has_value()) break;
    // Consume the entry before invoking the callback: if it throws, the
    // slot must not be re-delivered by the next worker entering the loop.
    SlotResult ready = std::move(*slot);
    slot.reset();
    ++next_;
    advanced = true;
    bool keep_going = false;
    try {
      keep_going = deliver_(std::move(ready));
      ++delivered_;
    } catch (...) {
      aborted_ = true;
      window_open_.notify_all();
      throw;
    }
    if (!keep_going) aborted_ = true;
  }
  if (advanced || aborted_) window_open_.notify_all();
  return true;
}

void SlotReorderBuffer::abort() {
  std::lock_guard<std::mutex> lock(mutex_);
  aborted_ = true;
  window_open_.notify_all();
}

std::size_t SlotReorderBuffer::delivered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return delivered_;
}

bool SlotReorderBuffer::aborted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return aborted_;
}

void AggregatingSink::begin(const RunPlan& plan) {
  result_ = CampaignResult{};
  result_.relays.assign(static_cast<std::size_t>(plan.relays),
                        RelayEstimate{});
  result_.summary.slots_in_period = plan.slots_in_period;
}

void AggregatingSink::slot_done(const SlotResult& slot) {
  for (std::size_t i = 0; i < slot.relay_indices.size(); ++i)
    result_.relays[slot.relay_indices[i]] = slot.estimates[i];
}

CampaignResult AggregatingSink::result(const RunStats& stats) && {
  CampaignSummary& summary = result_.summary;
  summary.slots_executed = stats.slots_executed;
  summary.simulated_seconds = stats.simulated_seconds;
  summary.relays_measured = 0;
  std::vector<double> abs_errors;
  abs_errors.reserve(result_.relays.size());
  for (const RelayEstimate& est : result_.relays) {
    // Relays whose slot never ran (the run was cancelled) keep the
    // default slot == -1; they are not measured and must not dilute the
    // error statistics with their zero-initialized entries.
    if (est.slot < 0) continue;
    ++summary.relays_measured;
    if (est.attempt > 0) ++summary.relays_retried;
    if (est.quarantined) ++summary.relays_quarantined;
    if (est.slot_failed) {
      // No usable estimate: keep the zeros out of the error aggregates.
      ++summary.relays_failed;
      continue;
    }
    if (est.verification_failed) {
      ++summary.verification_failures;
      continue;
    }
    if (est.quality < 1.0) ++summary.relays_degraded;
    summary.total_true_bits += est.ground_truth_bits;
    summary.total_estimated_bits += est.estimate_bits;
    abs_errors.push_back(std::fabs(est.relative_error));
  }
  if (!abs_errors.empty()) {
    summary.mean_abs_relative_error =
        metrics::mean(metrics::as_span(abs_errors));
    summary.median_abs_relative_error =
        metrics::median(metrics::as_span(abs_errors));
    summary.max_abs_relative_error =
        *std::max_element(abs_errors.begin(), abs_errors.end());
  }
  return std::move(result_);
}

void CsvSink::begin(const RunPlan& plan) {
  ++period_;
  faults_ = plan.faults_enabled;
  if (!header_written_) {
    out_ << "period,relay,slot,estimate_bits,ground_truth_bits,"
            "relative_error,verification_failed";
    if (faults_) out_ << ",quality,attempt,slot_failed,quarantined";
    out_ << '\n';
    header_written_ = true;
  }
}

void CsvSink::slot_done(const SlotResult& slot) {
  for (std::size_t i = 0; i < slot.relay_indices.size(); ++i) {
    const RelayEstimate& est = slot.estimates[i];
    out_ << period_ << ',' << slot.relay_indices[i] << ',' << est.slot << ','
         << fmt(est.estimate_bits) << ',' << fmt(est.ground_truth_bits) << ','
         << fmt(est.relative_error) << ','
         << (est.verification_failed ? 1 : 0);
    if (faults_)
      out_ << ',' << fmt(est.quality) << ',' << est.attempt << ','
           << (est.slot_failed ? 1 : 0) << ',' << (est.quarantined ? 1 : 0);
    out_ << '\n';
  }
}

void JsonlSink::begin(const RunPlan& plan) {
  ++period_;
  faults_ = plan.faults_enabled;
}

void JsonlSink::slot_done(const SlotResult& slot) {
  for (std::size_t i = 0; i < slot.relay_indices.size(); ++i) {
    const RelayEstimate& est = slot.estimates[i];
    out_ << "{\"period\":" << period_
         << ",\"relay\":" << slot.relay_indices[i] << ",\"slot\":" << est.slot
         << ",\"estimate_bits\":" << fmt(est.estimate_bits)
         << ",\"ground_truth_bits\":" << fmt(est.ground_truth_bits)
         << ",\"relative_error\":" << fmt(est.relative_error)
         << ",\"verification_failed\":"
         << (est.verification_failed ? "true" : "false");
    if (faults_)
      out_ << ",\"quality\":" << fmt(est.quality)
           << ",\"attempt\":" << est.attempt << ",\"slot_failed\":"
           << (est.slot_failed ? "true" : "false") << ",\"quarantined\":"
           << (est.quarantined ? "true" : "false");
    out_ << "}\n";
  }
}

void FaultLedgerSink::begin(const RunPlan&) {
  ++period_;
  if (!header_written_) {
    out_ << "period,relay,slot,attempt,failed,quarantined,quality\n";
    header_written_ = true;
  }
}

void FaultLedgerSink::slot_done(const SlotResult& slot) {
  for (std::size_t i = 0; i < slot.relay_indices.size(); ++i) {
    const RelayEstimate& est = slot.estimates[i];
    if (est.attempt == 0 && !est.slot_failed && !est.quarantined &&
        est.quality >= 1.0)
      continue;
    out_ << period_ << ',' << slot.relay_indices[i] << ',' << est.slot << ','
         << est.attempt << ',' << (est.slot_failed ? 1 : 0) << ','
         << (est.quarantined ? 1 : 0) << ',' << fmt(est.quality) << '\n';
  }
}

}  // namespace flashflow::campaign
