// Standard SlotSinks for the streaming campaign API.
//
// Because CampaignRunner delivers slots serialized and in increasing slot
// order, every sink here produces byte-identical output regardless of the
// worker thread count:
//
//   - AggregatingSink rebuilds the batch CampaignResult in memory (the
//     batch run() overload is implemented on top of it),
//   - CsvSink / JsonlSink stream one row/object per relay estimate to an
//     ostream as the slots finish,
//   - ProgressSink adapts a callback into the progress/cancellation hook
//     and forwards everything else to an optional inner sink.
#pragma once

#include <functional>
#include <iosfwd>
#include <utility>

#include "campaign/campaign.h"

namespace flashflow::campaign {

/// Rebuilds the in-memory CampaignResult from the stream: per-relay
/// estimates aligned with the input population plus the aggregate summary.
class AggregatingSink : public SlotSink {
 public:
  void begin(const RunPlan& plan) override;
  void slot_done(const SlotResult& slot) override;

  /// Finalizes the summary from the collected estimates and the run's
  /// deterministic counters. Call after run() returns.
  CampaignResult result(const RunStats& stats) &&;

 private:
  CampaignResult result_;
};

/// One CSV row per relay estimate:
///   period,relay,slot,estimate_bits,ground_truth_bits,relative_error,
///   verification_failed
/// Doubles are printed round-trip (max_digits10) so files diff cleanly
/// across runs. The header is written once even if the sink is reused
/// across periods (scenario::Experiment streams every period into one
/// sink; `period` counts begin() calls).
class CsvSink : public SlotSink {
 public:
  explicit CsvSink(std::ostream& out) : out_(out) {}
  void begin(const RunPlan& plan) override;
  void slot_done(const SlotResult& slot) override;

 private:
  std::ostream& out_;
  bool header_written_ = false;
  int period_ = -1;
};

/// One JSON object per relay estimate, one per line (JSONL), same fields
/// as CsvSink plus the period index when reused across periods.
class JsonlSink : public SlotSink {
 public:
  explicit JsonlSink(std::ostream& out) : out_(out) {}
  void begin(const RunPlan& plan) override;
  void slot_done(const SlotResult& slot) override;

 private:
  std::ostream& out_;
  int period_ = -1;
};

/// Wraps a progress/cancellation callback, optionally forwarding results
/// to an inner sink. The callback returns false to cancel the run.
class ProgressSink : public SlotSink {
 public:
  using Callback = std::function<bool(int slots_done, int slots_total)>;
  explicit ProgressSink(Callback on_progress, SlotSink* inner = nullptr)
      : callback_(std::move(on_progress)), inner_(inner) {}

  void begin(const RunPlan& plan) override {
    if (inner_) inner_->begin(plan);
  }
  void slot_done(const SlotResult& slot) override {
    if (inner_) inner_->slot_done(slot);
  }
  bool on_progress(int slots_done, int slots_total) override {
    if (inner_ && !inner_->on_progress(slots_done, slots_total)) return false;
    return !callback_ || callback_(slots_done, slots_total);
  }

 private:
  Callback callback_;
  SlotSink* inner_;
};

}  // namespace flashflow::campaign
