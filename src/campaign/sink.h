// Standard SlotSinks for the streaming campaign API.
//
// Because CampaignRunner delivers slots serialized and in increasing slot
// order, every sink here produces byte-identical output regardless of the
// worker thread count:
//
//   - AggregatingSink rebuilds the batch CampaignResult in memory (the
//     batch run() overload is implemented on top of it),
//   - CsvSink / JsonlSink stream one row/object per relay estimate to an
//     ostream as the slots finish,
//   - ProgressSink adapts a callback into the progress/cancellation hook
//     and forwards everything else to an optional inner sink.
//
// SlotReorderBuffer is the delivery mechanism behind that ordering
// guarantee: workers park completed slots in arbitrary order, the buffer
// flushes the contiguous prefix in slot order, and a bounded window keeps
// a straggling early slot from piling the whole period up in memory.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "campaign/campaign.h"

namespace flashflow::campaign {

/// Re-orders out-of-order slot completions into in-order deliveries, with
/// bounded buffering.
///
/// Workers complete indices in arbitrary order, but sinks must observe
/// increasing order. Completed results park here; whichever worker parks
/// the next undelivered index flushes the contiguous ready prefix through
/// the deliver callback (serialized under the buffer lock, so sinks never
/// see concurrent calls). At most `window` undelivered results are held:
/// a worker that finishes an index too far ahead blocks until the window
/// advances, so memory stays O(window · result size) instead of
/// O(period · result size) — which matters when record_outcomes attaches
/// four per-second series to every slot of a 6,419-relay period.
///
/// Deadlock freedom: this relies on each producer lane handing over its
/// indices in strictly increasing order (ThreadPool::parallel_for
/// guarantees it). The lane owning the next undelivered index is then
/// never blocked — that index is always inside the window — and every
/// delivery advances the window and wakes the waiters.
class SlotReorderBuffer {
 public:
  /// Called in increasing index order, exactly once per delivered index.
  /// Return false to cancel: the buffer aborts, parked results are
  /// dropped, and blocked workers unblock.
  using Deliver = std::function<bool(SlotResult&&)>;

  /// Indices in [0, count) may be parked, each exactly once; at most
  /// `window` (clamped to >= 1) undelivered results are held at a time.
  SlotReorderBuffer(std::size_t count, std::size_t window, Deliver deliver);

  /// Parks the result for `index`, blocking while the index is beyond the
  /// bounded window, then flushes the ready prefix. If the deliver
  /// callback throws, the buffer aborts and the exception propagates out
  /// of the flushing park() call. Returns false if the buffer was already
  /// aborted (the result is dropped).
  bool park(std::size_t index, SlotResult&& result);

  /// Drops undelivered results and unblocks parked workers; subsequent
  /// park() calls return false immediately.
  void abort();

  /// Results delivered so far (== count after an uncancelled run).
  std::size_t delivered() const;

  /// True once cancelled by abort(), a deliver exception, or a deliver
  /// callback returning false.
  bool aborted() const;

 private:
  const std::size_t count_;
  const std::size_t window_;
  Deliver deliver_;
  mutable std::mutex mutex_;
  std::condition_variable window_open_;
  /// Ring of the window's parked results, indexed by index % window_.
  std::vector<std::optional<SlotResult>> ring_;
  std::size_t next_ = 0;  // next index to deliver
  std::size_t delivered_ = 0;
  bool aborted_ = false;
};

/// Rebuilds the in-memory CampaignResult from the stream: per-relay
/// estimates aligned with the input population plus the aggregate summary.
class AggregatingSink : public SlotSink {
 public:
  void begin(const RunPlan& plan) override;
  void slot_done(const SlotResult& slot) override;

  /// Finalizes the summary from the collected estimates and the run's
  /// deterministic counters. Call after run() returns.
  CampaignResult result(const RunStats& stats) &&;

 private:
  CampaignResult result_;
};

/// One CSV row per relay estimate:
///   period,relay,slot,estimate_bits,ground_truth_bits,relative_error,
///   verification_failed[,quality,attempt,slot_failed,quarantined]
/// The bracketed fault columns appear only when the run has fault
/// injection armed (RunPlan::faults_enabled): fault-free byte streams are
/// identical to pre-fault builds, which the golden hashes pin.
/// Doubles are printed round-trip (max_digits10) so files diff cleanly
/// across runs. The header is written once even if the sink is reused
/// across periods (scenario::Experiment streams every period into one
/// sink; `period` counts begin() calls).
class CsvSink : public SlotSink {
 public:
  explicit CsvSink(std::ostream& out) : out_(out) {}
  void begin(const RunPlan& plan) override;
  void slot_done(const SlotResult& slot) override;

 private:
  std::ostream& out_;
  bool header_written_ = false;
  bool faults_ = false;
  int period_ = -1;
};

/// One JSON object per relay estimate, one per line (JSONL), same fields
/// as CsvSink plus the period index when reused across periods. As with
/// CsvSink, the fault fields appear only when the run has faults armed.
class JsonlSink : public SlotSink {
 public:
  explicit JsonlSink(std::ostream& out) : out_(out) {}
  void begin(const RunPlan& plan) override;
  void slot_done(const SlotResult& slot) override;

 private:
  std::ostream& out_;
  bool faults_ = false;
  int period_ = -1;
};

/// The fault ledger: one CSV row per relay estimate that a fault actually
/// touched — retried, failed, quarantined, or measured from degraded
/// evidence (quality < 1). Healthy estimates write nothing, so the file
/// stays small and scannable:
///   period,relay,slot,attempt,failed,quarantined,quality
class FaultLedgerSink : public SlotSink {
 public:
  explicit FaultLedgerSink(std::ostream& out) : out_(out) {}
  void begin(const RunPlan& plan) override;
  void slot_done(const SlotResult& slot) override;

 private:
  std::ostream& out_;
  bool header_written_ = false;
  int period_ = -1;
};

/// Wraps a progress/cancellation callback, optionally forwarding results
/// to an inner sink. The callback returns false to cancel the run.
class ProgressSink : public SlotSink {
 public:
  using Callback = std::function<bool(int slots_done, int slots_total)>;
  explicit ProgressSink(Callback on_progress, SlotSink* inner = nullptr)
      : callback_(std::move(on_progress)), inner_(inner) {}

  void begin(const RunPlan& plan) override {
    if (inner_) inner_->begin(plan);
  }
  void slot_done(const SlotResult& slot) override {
    if (inner_) inner_->slot_done(slot);
  }
  bool on_progress(int slots_done, int slots_total) override {
    if (inner_ && !inner_->on_progress(slots_done, slots_total)) return false;
    return !callback_ || callback_(slots_done, slots_total);
  }

 private:
  Callback callback_;
  SlotSink* inner_;
};

}  // namespace flashflow::campaign
