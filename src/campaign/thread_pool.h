// Fixed-size worker pool for the campaign engine.
//
// Campaign slots are embarrassingly parallel: every slot carries its own
// RNG (forked deterministically from the period seed) and writes to a
// disjoint range of the result vector, so the pool needs no result
// plumbing — only bounded workers and completion. parallel_for() hands out
// contiguous index shards through a shared atomic counter, which keeps the
// work/thread assignment irrelevant to the output: determinism comes from
// the per-index seeding, not from the scheduling order. Sharding (instead
// of claiming one index at a time) amortizes the counter contention and
// the per-index cache-line hand-off across real cores; each lane still
// processes its indices in strictly increasing order, which downstream
// consumers (the campaign's bounded reorder buffer) rely on for deadlock
// freedom.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

namespace flashflow::campaign {

class ThreadPool {
 public:
  /// `threads` <= 0 selects the hardware concurrency (at least 1).
  explicit ThreadPool(int threads = 0) {
    if (threads <= 0)
      threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    wake_workers_.notify_all();
    for (auto& w : workers_) w.join();
  }

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task. Tasks must not throw; wrap exception capture into
  /// the task itself (parallel_for does this for its callers).
  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push(std::move(task));
    }
    wake_workers_.notify_one();
  }

  /// Blocks until every submitted task has finished.
  void wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  }

  /// Runs fn(i) for every i in [0, n). Blocks until all indices complete.
  /// Work is claimed in contiguous shards through an atomic counter, so
  /// results must not depend on which worker runs which index. If any
  /// invocation throws, the first captured exception is rethrown here
  /// after the loop drains.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
    parallel_for(n, [&fn](std::size_t, std::size_t i) { fn(i); });
  }

  /// Lane-aware variant: fn(lane, i) with lane in [0, lanes()) identifying
  /// the claiming task slot. Each lane runs on one worker for the duration
  /// of the loop, so callers can keep per-lane scratch (e.g. a reusable
  /// slot workspace) without locking. Results must still not depend on the
  /// lane→index assignment.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn) {
    parallel_for(n, /*shard_size=*/0, fn);
  }

  /// Sharded lane-aware dispatch: each lane claims `shard_size` contiguous
  /// indices per trip to the shared counter (0 picks default_shard). A
  /// shard size of 1 degenerates to the previous index-at-a-time claiming.
  /// Two guarantees callers may rely on, independent of the shard size:
  ///   - every index in [0, n) runs exactly once (unless a prior index
  ///     threw, which stops further claims), and
  ///   - each lane observes its indices in strictly increasing order
  ///     (shards are claimed monotonically and walked front to back).
  void parallel_for(std::size_t n, std::size_t shard_size,
                    const std::function<void(std::size_t, std::size_t)>& fn) {
    if (n == 0) return;
    const std::size_t lane_count = lanes(n);
    if (shard_size == 0) shard_size = default_shard(n, lane_count);
    auto next = std::make_shared<std::atomic<std::size_t>>(0);
    auto failed = std::make_shared<std::atomic<bool>>(false);
    auto first_error = std::make_shared<std::once_flag>();
    auto error = std::make_shared<std::exception_ptr>();
    for (std::size_t lane = 0; lane < lane_count; ++lane) {
      submit([n, shard_size, lane, next, failed, first_error, error, &fn] {
        // Stop claiming new shards (and new indices within the current
        // shard) once any invocation has thrown; in-flight indices still
        // finish.
        for (std::size_t begin = next->fetch_add(shard_size);
             begin < n && !failed->load();
             begin = next->fetch_add(shard_size)) {
          const std::size_t end = std::min(begin + shard_size, n);
          for (std::size_t i = begin; i < end && !failed->load(); ++i) {
            try {
              fn(lane, i);
            } catch (...) {
              std::call_once(*first_error,
                             [&] { *error = std::current_exception(); });
              failed->store(true);
            }
          }
        }
      });
    }
    wait_idle();
    if (*error) std::rethrow_exception(*error);
  }

  /// Number of lanes a parallel_for over n indices will use.
  std::size_t lanes(std::size_t n) const {
    return std::min(n, static_cast<std::size_t>(size()));
  }

  /// Shard size parallel_for picks when the caller passes 0: roughly
  /// eight claims per lane, so the counter hand-off is amortized while the
  /// tail stays balanced, capped at 64 so consumers that buffer a small
  /// multiple of lanes × shard (the campaign's slot-reorder window) stay
  /// bounded even for huge n.
  static std::size_t default_shard(std::size_t n, std::size_t lane_count) {
    if (n == 0 || lane_count == 0) return 1;
    return std::clamp<std::size_t>(n / (8 * lane_count), 1, 64);
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_workers_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ with a drained queue
        task = std::move(queue_.front());
        queue_.pop();
        ++active_;
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        --active_;
      }
      idle_.notify_all();
    }
  }

  std::mutex mutex_;
  std::condition_variable wake_workers_;
  std::condition_variable idle_;
  std::queue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int active_ = 0;
  bool stopping_ = false;
};

}  // namespace flashflow::campaign
