#include "campaign/campaign.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "campaign/thread_pool.h"
#include "core/allocation.h"
#include "core/schedule.h"
#include "core/team.h"
#include "metrics/stats.h"

namespace flashflow::campaign {

CampaignRunner::CampaignRunner(const net::Topology& topo,
                               CampaignConfig config)
    : topo_(topo), config_(std::move(config)) {
  if (config_.measurer_hosts.empty())
    throw std::invalid_argument("CampaignRunner: no measurers");
  if (!config_.measurer_capacity_bits.empty() &&
      config_.measurer_capacity_bits.size() != config_.measurer_hosts.size())
    throw std::invalid_argument(
        "CampaignRunner: capacity overrides misaligned with measurers");

  core::Team team(topo_, config_.measurer_hosts);
  if (config_.measurer_capacity_bits.empty()) {
    team.measure_measurers(config_.seed);
  } else {
    for (std::size_t i = 0; i < config_.measurer_capacity_bits.size(); ++i)
      team.set_capacity(i, config_.measurer_capacity_bits[i]);
  }
  measurer_caps_ = team.capacities();
  measurer_cores_ = team.cores();
}

double CampaignRunner::team_capacity_bits() const {
  return std::accumulate(measurer_caps_.begin(), measurer_caps_.end(), 0.0);
}

CampaignResult CampaignRunner::run(
    std::span<const CampaignRelay> relays) const {
  const auto wall_start = std::chrono::steady_clock::now();
  const core::Params& params = config_.params;

  // Scheduling priors: explicit z0, or the oracle prior.
  std::vector<double> priors;
  priors.reserve(relays.size());
  for (const auto& r : relays) {
    const double prior = r.prior_estimate_bits > 0.0
                             ? r.prior_estimate_bits
                             : r.model.ground_truth(params.sockets);
    if (prior <= 0.0)
      throw std::invalid_argument("CampaignRunner: relay with no capacity");
    priors.push_back(prior);
  }

  // Period layout: relay -> slot.
  CampaignResult result;
  result.relays.assign(relays.size(), RelayEstimate{});
  const double team_capacity = team_capacity_bits();
  std::vector<int> relay_slot;
  if (config_.schedule == ScheduleMode::kGreedyPack) {
    auto packing = core::greedy_pack(priors, team_capacity, params);
    relay_slot = std::move(packing.relay_slot);
    result.summary.slots_in_period = packing.slots_used;
  } else {
    core::PeriodSchedule schedule(
        params, team_capacity,
        config_.seed ^ sim::hash_tag("campaign/schedule"));
    relay_slot = schedule.schedule_old_relays(priors);
    result.summary.slots_in_period = schedule.slots_in_period();
  }

  // Group relays by slot; only occupied slots become work items.
  int last_slot = -1;
  for (const int s : relay_slot) last_slot = std::max(last_slot, s);
  std::vector<std::vector<std::size_t>> slot_relays(
      static_cast<std::size_t>(last_slot + 1));
  for (std::size_t r = 0; r < relay_slot.size(); ++r)
    slot_relays[static_cast<std::size_t>(relay_slot[r])].push_back(r);
  std::vector<std::size_t> occupied;
  for (std::size_t s = 0; s < slot_relays.size(); ++s)
    if (!slot_relays[s].empty()) occupied.push_back(s);

  // Execute the occupied slots on the pool. Each slot task derives its RNG
  // from the period seed and the slot index alone and writes only its own
  // relays' entries, so the outcome is independent of the thread count and
  // of the order in which workers claim slots.
  // The slot domain tag keeps slot 0 (seed ^ 0 == seed) from replaying the
  // exact stream the measurer mesh and the period schedule consumed.
  const std::uint64_t slot_domain =
      config_.seed ^ sim::hash_tag("campaign/slot");
  ThreadPool pool(config_.threads);
  pool.parallel_for(occupied.size(), [&](std::size_t w) {
    const std::size_t slot = occupied[w];
    const std::uint64_t sub_seed =
        slot_domain ^ static_cast<std::uint64_t>(slot);
    core::SlotRunner runner(topo_, params, sim::Rng(sub_seed));

    // §4.2 allocation: each relay in the slot claims f * z0 from the
    // measurers' remaining capacity, largest-residual first.
    std::vector<double> residual = measurer_caps_;
    std::vector<core::SlotRunner::ConcurrentTarget> targets;
    std::vector<int> target_sockets;
    targets.reserve(slot_relays[slot].size());
    for (const std::size_t r : slot_relays[slot]) {
      const auto alloc = core::allocate_greedy(
          residual, params.excess_factor() * priors[r]);
      for (std::size_t i = 0; i < residual.size(); ++i)
        residual[i] -= alloc[i];
      const auto shares =
          core::make_shares(alloc, measurer_cores_, params);
      core::SlotRunner::ConcurrentTarget target;
      target.relay = relays[r].model;
      target.host = relays[r].host;
      target.behavior = relays[r].behavior;
      int sockets = 0;
      for (const auto& share : shares) {
        if (share.allocated_bits <= 0.0) continue;
        target.team.push_back(
            {config_.measurer_hosts[share.measurer_index],
             share.allocated_bits, share.sockets});
        sockets += share.sockets;
      }
      targets.push_back(std::move(target));
      target_sockets.push_back(sockets);
    }

    const auto outcomes = runner.run_concurrent(targets);
    for (std::size_t t = 0; t < outcomes.size(); ++t) {
      const std::size_t r = slot_relays[slot][t];
      RelayEstimate& est = result.relays[r];
      est.slot = static_cast<int>(slot);
      est.estimate_bits = outcomes[t].estimate_bits;
      est.verification_failed = outcomes[t].verification_failed;
      est.ground_truth_bits = relays[r].model.ground_truth(target_sockets[t]);
      if (est.ground_truth_bits > 0.0 && !est.verification_failed)
        est.relative_error =
            est.estimate_bits / est.ground_truth_bits - 1.0;
    }
  });

  // Aggregate the period summary.
  CampaignSummary& summary = result.summary;
  summary.relays_measured = static_cast<int>(relays.size());
  summary.slots_executed = static_cast<int>(occupied.size());
  summary.simulated_seconds =
      static_cast<double>(last_slot + 1) * params.slot_seconds;
  std::vector<double> abs_errors;
  abs_errors.reserve(relays.size());
  for (const RelayEstimate& est : result.relays) {
    if (est.verification_failed) {
      ++summary.verification_failures;
      continue;
    }
    summary.total_true_bits += est.ground_truth_bits;
    summary.total_estimated_bits += est.estimate_bits;
    abs_errors.push_back(std::fabs(est.relative_error));
  }
  if (!abs_errors.empty()) {
    summary.mean_abs_relative_error = metrics::mean(
        metrics::as_span(abs_errors));
    summary.median_abs_relative_error =
        metrics::median(metrics::as_span(abs_errors));
    summary.max_abs_relative_error =
        *std::max_element(abs_errors.begin(), abs_errors.end());
  }
  summary.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return result;
}

}  // namespace flashflow::campaign
