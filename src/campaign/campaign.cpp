#include "campaign/campaign.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "campaign/sink.h"
#include "campaign/thread_pool.h"
#include "core/allocation.h"
#include "core/schedule.h"
#include "core/team.h"

namespace flashflow::campaign {

CampaignRunner::CampaignRunner(const net::Topology& topo,
                               CampaignConfig config)
    : topo_(topo), config_(std::move(config)) {
  config_.params.validate();
  if (config_.measurer_hosts.empty())
    throw std::invalid_argument("CampaignRunner: no measurers");
  if (!config_.measurer_capacity_bits.empty() &&
      config_.measurer_capacity_bits.size() != config_.measurer_hosts.size())
    throw std::invalid_argument(
        "CampaignRunner: capacity overrides misaligned with measurers");

  core::Team team(topo_, config_.measurer_hosts);
  if (config_.measurer_capacity_bits.empty()) {
    team.measure_measurers(config_.seed);
  } else {
    for (std::size_t i = 0; i < config_.measurer_capacity_bits.size(); ++i)
      team.set_capacity(i, config_.measurer_capacity_bits[i]);
  }
  measurer_caps_ = team.capacities();
  measurer_cores_ = team.cores();
}

double CampaignRunner::team_capacity_bits() const {
  return std::accumulate(measurer_caps_.begin(), measurer_caps_.end(), 0.0);
}

RunStats CampaignRunner::run(std::span<const CampaignRelay> relays,
                             SlotSink& sink) const {
  // All wall-clock reads go through the Clock seam (telemetry/clock.cpp
  // holds the library's single suppressed ND03 site); a recorder's clock
  // lets tests drive run timing deterministically.
  telemetry::Recorder* const rec = config_.telemetry;
  const telemetry::Clock& wall_clock =
      rec ? rec->time_source() : telemetry::monotonic_clock();
  const std::uint64_t wall_start = wall_clock.now_micros();
  const core::Params& params = config_.params;

  // Scheduling priors: explicit z0, or the oracle prior.
  std::vector<double> priors;
  priors.reserve(relays.size());
  for (const auto& r : relays) {
    const double prior = r.prior_estimate_bits > 0.0
                             ? r.prior_estimate_bits
                             : r.model.ground_truth(params.sockets);
    if (prior <= 0.0)
      throw std::invalid_argument("CampaignRunner: relay with no capacity");
    priors.push_back(prior);
  }

  // Period layout: relay -> slot. Timed into a local: the recorder's
  // shards are sized at begin_run(), which needs the lane count computed
  // further down, so the observation is deferred until then.
  const std::uint64_t layout_start = rec ? rec->now() : 0;
  RunStats stats;
  const double team_capacity = team_capacity_bits();
  std::vector<int> relay_slot;
  if (config_.schedule == ScheduleMode::kGreedyPack) {
    auto packing = core::greedy_pack(priors, team_capacity, params);
    relay_slot = std::move(packing.relay_slot);
    stats.slots_in_period = packing.slots_used;
  } else {
    core::PeriodSchedule schedule(
        params, team_capacity,
        config_.seed ^ sim::hash_tag("campaign/schedule"));
    relay_slot = schedule.schedule_old_relays(priors);
    stats.slots_in_period = schedule.slots_in_period();
  }

  // Group relays by slot; only occupied slots become work items.
  int last_slot = -1;
  for (const int s : relay_slot) last_slot = std::max(last_slot, s);
  std::vector<std::vector<std::size_t>> slot_relays(
      static_cast<std::size_t>(last_slot + 1));
  for (std::size_t r = 0; r < relay_slot.size(); ++r)
    slot_relays[static_cast<std::size_t>(relay_slot[r])].push_back(r);
  std::vector<std::size_t> occupied;
  for (std::size_t s = 0; s < slot_relays.size(); ++s)
    if (!slot_relays[s].empty()) occupied.push_back(s);

  stats.simulated_seconds =
      static_cast<double>(last_slot + 1) * params.slot_seconds;
  const std::uint64_t layout_micros = rec ? rec->now() - layout_start : 0;

  // Deterministic fault oracle for this period. With all rates zero the
  // plan is inert, no fault path below is entered, and the run is
  // byte-identical to a build without the fault layer.
  const fault::FaultPlan fault_plan(config_.faults, config_.seed);
  const bool faults_on = fault_plan.enabled();

  RunPlan plan;
  plan.relays = static_cast<int>(relays.size());
  plan.slots_in_period = stats.slots_in_period;
  plan.slots_to_execute = static_cast<int>(occupied.size());
  plan.team_capacity_bits = team_capacity;
  plan.faults_enabled = faults_on;
  sink.begin(plan);

  // Relay-name hashes for the per-target noise substreams, computed once
  // per run instead of once per relay per slot (the derived substreams are
  // identical either way — see ConcurrentTarget::name_hash).
  std::vector<std::uint64_t> name_hashes;
  name_hashes.reserve(relays.size());
  for (const auto& r : relays)
    name_hashes.push_back(sim::hash_tag(r.model.name));

  // Each slot task derives its RNG from the period seed and the slot index
  // alone and touches only its own relays, so the outcome is independent
  // of the thread count and of the order in which workers claim slots.
  // The slot domain tag keeps slot 0 (seed ^ 0 == seed) from replaying the
  // exact stream the measurer mesh and the period schedule consumed.
  const std::uint64_t slot_domain =
      config_.seed ^ sim::hash_tag("campaign/slot");
  ThreadPool pool(config_.threads);

  // Sharded dispatch: lanes claim `shard` contiguous slots per trip to
  // the shared counter (amortizing contention), and the reorder window is
  // sized as a small multiple of what the lanes can be working on at
  // once — bounded regardless of the period length.
  const std::size_t lane_count = pool.lanes(occupied.size());
  const std::size_t shard =
      config_.shard_slots > 0
          ? static_cast<std::size_t>(config_.shard_slots)
          : ThreadPool::default_shard(occupied.size(), lane_count);
  const std::size_t window =
      std::max<std::size_t>(4 * lane_count * shard, 2 * lane_count);

  // Work items for the current retry round. Round 0 is the scheduler's
  // layout; later rounds hold only re-queued failures, grouped into fresh
  // slots later in the period.
  struct WorkItem {
    std::size_t slot = 0;
    std::vector<std::size_t> members;
  };
  std::vector<WorkItem> work;
  work.reserve(occupied.size());
  for (const std::size_t s : occupied) work.push_back({s, slot_relays[s]});

  std::atomic<bool> cancelled{false};
  // Mutated only inside the deliver callback, which the buffer serializes
  // under its own lock; read again only after parallel_for has drained.
  int delivered_count = 0;
  // Everything scheduled so far; grows when retry rounds add slots.
  int scheduled_total = static_cast<int>(occupied.size());
  int round = 0;
  int period_end = last_slot + 1;  // slots the period spans, incl. retries

  // Per-lane persistent scratch: each parallel_for lane stays on one
  // worker thread, so its SlotWorkspace and target/allocation buffers are
  // reused (without locking) across every slot the lane claims. Workspaces
  // are pure scratch — results are independent of which lane ran a slot.
  struct WorkerScratch {
    core::SlotWorkspace workspace;
    core::AllocationScratch allocation;
    std::vector<double> residual;
    std::vector<core::SlotRunner::ConcurrentTarget> targets;
    std::vector<int> target_sockets;
    telemetry::SlotProbe probe;
  };
  std::vector<WorkerScratch> scratch(lane_count);
  if (rec) {
    rec->begin_run(lane_count);
    rec->observe_stage(telemetry::Stage::kLayout, layout_micros);
    for (std::size_t l = 0; l < lane_count; ++l)
      scratch[l].probe.arm(rec->time_source(), rec->lane(l), rec->engine());
  }

  // Per-work-item failure lists for the current round: written lock-free
  // by whichever worker ran the item, read only after the round's
  // parallel_for has drained, in deterministic (work, member) order.
  std::vector<std::vector<std::size_t>> failed_of(work.size());

  const auto run_slot = [&](std::size_t lane, std::size_t w,
                            SlotReorderBuffer& reorder) {
    WorkerScratch& ws = scratch[lane];
    // Null when telemetry is off: every site below is skipped and the
    // slot executes the exact pre-telemetry instruction stream.
    telemetry::SlotProbe* const probe = ws.probe.armed() ? &ws.probe : nullptr;
    const std::uint64_t slot_start = probe ? probe->now() : 0;
    if (probe) probe->begin_slot();
    const std::size_t slot = work[w].slot;
    const std::uint64_t sub_seed =
        slot_domain ^ static_cast<std::uint64_t>(slot);
    core::SlotRunner runner(topo_, params, sim::Rng(sub_seed));
    // Inert plans disarm: the runner's fault-free path stays untouched.
    // Retry slots are fresh slot indices, so a retried relay gets fresh
    // fault draws rather than deterministically failing the same way.
    runner.arm_faults(&fault_plan, static_cast<std::uint64_t>(slot));
    runner.set_probe(probe);

    // §4.2 allocation: each relay in the slot claims f * z0 from the
    // measurers' remaining capacity, largest-residual first.
    ws.residual = measurer_caps_;
    const std::vector<std::size_t>& slot_members = work[w].members;
    const std::size_t n_targets = slot_members.size();
    if (ws.targets.size() < n_targets) ws.targets.resize(n_targets);
    ws.target_sockets.assign(n_targets, 0);
    for (std::size_t t = 0; t < n_targets; ++t) {
      const std::size_t r = slot_members[t];
      const auto alloc = core::allocate_greedy(
          ws.residual, params.excess_factor() * priors[r], ws.allocation);
      for (std::size_t i = 0; i < ws.residual.size(); ++i)
        ws.residual[i] -= alloc[i];
      const auto shares =
          core::make_shares(alloc, measurer_cores_, params, ws.allocation);
      // Overwrite the lane's target slot in place: the RelayModel is
      // borrowed from the population and only the team list is rebuilt.
      core::SlotRunner::ConcurrentTarget& target = ws.targets[t];
      target.relay = &relays[r].model;
      target.host = relays[r].host;
      target.behavior = relays[r].behavior;
      target.name_hash = name_hashes[r];
      target.team.clear();
      int sockets = 0;
      for (const auto& share : shares) {
        if (share.allocated_bits <= 0.0) continue;
        target.team.push_back(
            {config_.measurer_hosts[share.measurer_index],
             share.allocated_bits, share.sockets});
        sockets += share.sockets;
      }
      ws.target_sockets[t] = sockets;
    }
    // Dispatch = §4.2 allocation + target build, everything up to here.
    if (probe) probe->timing().dispatch_micros = probe->now() - slot_start;

    auto outcomes = runner.run_concurrent(
        std::span<const core::SlotRunner::ConcurrentTarget>(
            ws.targets.data(), n_targets),
        ws.workspace);
    SlotResult result;
    result.slot = static_cast<int>(slot);
    result.relay_indices = slot_members;
    result.estimates.reserve(outcomes.size());
    for (std::size_t t = 0; t < outcomes.size(); ++t) {
      const std::size_t r = slot_members[t];
      RelayEstimate est;
      est.slot = static_cast<int>(slot);
      est.estimate_bits = outcomes[t].estimate_bits;
      est.verification_failed = outcomes[t].verification_failed;
      est.quality = outcomes[t].quality;
      est.attempt = round;
      est.slot_failed = outcomes[t].failed;
      // This round was the relay's last chance: a failure now benches it.
      est.quarantined =
          outcomes[t].failed && round >= config_.faults.max_retries;
      est.ground_truth_bits =
          relays[r].model.ground_truth(ws.target_sockets[t]);
      if (est.ground_truth_bits > 0.0 && !est.verification_failed &&
          !est.slot_failed)
        est.relative_error =
            est.estimate_bits / est.ground_truth_bits - 1.0;
      result.estimates.push_back(est);
      if (outcomes[t].failed) failed_of[w].push_back(r);
    }
    if (config_.record_outcomes) result.outcomes = std::move(outcomes);

    // The trace snapshot is taken before park(): reorder wait is not a
    // property of the slot's own work and is observed into the stage
    // histogram only.
    if (probe && rec->trace_enabled()) {
      telemetry::SlotTrace trace;
      trace.lane = static_cast<int>(lane);
      trace.shard = static_cast<int>(w / shard);
      trace.segments = probe->segments();
      trace.timing = probe->timing();
      result.trace = trace;
      probe->shard().add(probe->metrics().trace_rows);
    }

    // Park the result; the buffer blocks while w is beyond the bounded
    // window, flushes the ready prefix in slot order, and propagates any
    // sink exception.
    const std::uint64_t park_start = probe ? probe->now() : 0;
    reorder.park(w, std::move(result));
    if (probe) {
      probe->timing().reorder_micros = probe->now() - park_start;
      probe->finish_slot(n_targets);
    }
  };

  // Retry placement bookkeeping, engaged only after a round reports
  // failures: which slots already ran (or were claimed by an earlier
  // retry) and how much re-queued load each spare slot carries.
  std::vector<char> slot_taken;
  std::vector<double> retry_load;

  while (true) {
    const bool retry_round = round > 0;
    const std::uint64_t round_start = rec && retry_round ? rec->now() : 0;
    if (rec && retry_round) rec->serial().add(rec->engine().retry_rounds);
    failed_of.assign(work.size(), {});

    // Delivery: slots complete in any order on the pool, but the sink
    // sees them serialized and in increasing slot order within the round.
    // Workers park finished SlotResults in the bounded reorder buffer;
    // whoever completes the next undelivered slot flushes the contiguous
    // prefix. A sink exception aborts the buffer and propagates through
    // park() into parallel_for's rethrow; a false return from on_progress
    // cancels the remaining slots (and any further retry round).
    SlotReorderBuffer reorder(work.size(), window, [&](SlotResult&& ready) {
      // Deliveries are serialized under the buffer lock, so the serial
      // shard is safe to write here.
      const std::uint64_t sink_start = rec ? rec->now() : 0;
      sink.slot_done(ready);
      if (rec)
        rec->observe_stage(telemetry::Stage::kSinkSerialize,
                           rec->now() - sink_start);
      ++delivered_count;
      if (!sink.on_progress(delivered_count, scheduled_total)) {
        cancelled.store(true);
        return false;
      }
      return true;
    });

    pool.parallel_for(work.size(), shard, [&](std::size_t lane,
                                              std::size_t w) {
      if (cancelled.load()) return;
      // Any exception — from the slot computation or from the sink via
      // park() — must abort the reorder buffer before leaving the worker:
      // peers blocked beyond the bounded window are only woken by delivery
      // progress or an abort, and a slot that dies uncomputed means the
      // delivery cursor could never reach them (parallel_for stops further
      // claims and rethrows the exception after the drain; abort() is
      // idempotent when park() already aborted).
      try {
        run_slot(lane, w, reorder);
      } catch (...) {
        cancelled.store(true);
        reorder.abort();
        throw;
      }
    });

    // The round has drained; count what was actually delivered. Slots
    // computed but never handed to the sink (cancellation raced ahead of
    // them) count as skipped alongside the never-claimed ones.
    const int round_delivered = static_cast<int>(reorder.delivered());
    stats.slots_executed += round_delivered;
    if (retry_round) stats.slots_retried += round_delivered;
    if (rec && retry_round)
      rec->observe_stage(telemetry::Stage::kRetryRound,
                         rec->now() - round_start);
    if (cancelled.load()) break;

    // Collect the round's failures in deterministic (work, member) order.
    // verification_failed is not a fault: a relay that flunked the spot
    // check is never retried (outcome.failed stays false for it).
    std::vector<std::pair<std::size_t, std::size_t>> failures;  // (r, slot)
    for (std::size_t w = 0; w < work.size(); ++w) {
      if (failed_of[w].empty()) continue;
      ++stats.slots_failed;
      for (const std::size_t r : failed_of[w])
        failures.emplace_back(r, work[w].slot);
    }
    if (failures.empty() || round >= config_.faults.max_retries) break;

    if (slot_taken.empty()) {
      const std::size_t horizon = static_cast<std::size_t>(
          std::max(stats.slots_in_period, period_end));
      slot_taken.assign(horizon, 0);
      for (const std::size_t s : occupied) slot_taken[s] = 1;
      retry_load.assign(horizon, 0.0);
    }

    // Re-queue each failure into spare capacity strictly later in the
    // period: the earliest never-used slot after the failed one whose
    // re-queued load still fits the team. Greedy packing derives the
    // period's length from the work, so it may append fresh slots past
    // the end; the randomized schedule's period is fixed-length — a
    // failure that fits nowhere within it stays failed (not quarantined:
    // the retry budget was never spent).
    std::vector<std::pair<std::size_t, std::size_t>> placed;  // (slot, r)
    for (const auto& [r, failed_slot] : failures) {
      const double load = params.excess_factor() * priors[r];
      bool found = false;
      for (std::size_t s = failed_slot + 1; s < slot_taken.size(); ++s) {
        if (slot_taken[s]) continue;
        if (retry_load[s] > 0.0 && retry_load[s] + load > team_capacity)
          continue;
        retry_load[s] += load;
        placed.emplace_back(s, r);
        found = true;
        break;
      }
      if (!found && config_.schedule == ScheduleMode::kGreedyPack) {
        slot_taken.push_back(0);
        retry_load.push_back(load);
        placed.emplace_back(slot_taken.size() - 1, r);
      }
    }
    if (placed.empty()) break;

    std::stable_sort(placed.begin(), placed.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    std::vector<WorkItem> next;
    for (const auto& [s, r] : placed) {
      if (next.empty() || next.back().slot != s)
        next.push_back({s, {}});
      next.back().members.push_back(r);
      period_end = std::max(period_end, static_cast<int>(s) + 1);
    }
    // Consumed: later rounds may not re-queue into an executed slot.
    for (const auto& item : next) slot_taken[item.slot] = 1;
    work = std::move(next);
    scheduled_total += static_cast<int>(work.size());
    ++round;
  }

  stats.cancelled = cancelled.load();
  stats.slots_skipped = scheduled_total - stats.slots_executed;
  stats.slots_in_period = std::max(stats.slots_in_period, period_end);
  stats.simulated_seconds =
      std::max(stats.simulated_seconds,
               static_cast<double>(period_end) * params.slot_seconds);
  // Merge the lane shards (lane-index order, then the serial shard) into
  // the recorder's accumulated totals now that the pool has drained.
  if (rec) rec->end_run();
  stats.wall_seconds =
      static_cast<double>(wall_clock.now_micros() - wall_start) * 1e-6;
  return stats;
}

CampaignResult CampaignRunner::run(
    std::span<const CampaignRelay> relays) const {
  AggregatingSink sink;
  const RunStats stats = run(relays, sink);
  return std::move(sink).result(stats);
}

}  // namespace flashflow::campaign
