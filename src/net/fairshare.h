// Weighted max-min fair rate allocation (progressive filling).
//
// Given resources with capacities and flows that each traverse a set of
// resources, carry a weight, and may have an individual rate cap, computes
// the weighted max-min fair allocation: all flows' rates rise together in
// proportion to their weights until a resource saturates or a flow hits its
// cap; saturated flows freeze, and the rest continue.
//
// This is the standard fluid approximation of TCP bandwidth sharing used by
// flow-level network simulators.
//
// Two entry points:
//   - FairShareSolver::solve(): owns all solver scratch across calls, so
//     per-second simulation loops (core::SlotRunner) allocate nothing after
//     warm-up. Resource saturation is tracked with an epoch counter instead
//     of a per-iteration flag vector.
//   - max_min_fair_rates(): one-shot convenience wrapper over a fresh
//     solver, returning an owned vector.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace flashflow::net {

struct FairShareResource {
  double capacity = 0;  // bits/s; <= 0 means unconstrained
};

struct FairShareFlow {
  std::vector<std::size_t> resources;  // indices into the resource vector
  double weight = 1.0;                 // relative share (e.g. socket count)
  double cap = std::numeric_limits<double>::infinity();  // bits/s
};

/// Progressive-filling solver with reusable scratch. Successive solves are
/// bit-identical to fresh ones (the algorithm never reads stale state), so
/// one solver instance can serve a whole simulation loop.
class FairShareSolver {
 public:
  /// Returns per-flow rates in bits/s. Guarantees:
  ///   - no resource's total allocated rate exceeds its capacity (within
  ///     eps);
  ///   - no flow exceeds its cap;
  ///   - the allocation is weighted max-min fair (no flow's rate can
  ///     increase without decreasing that of a flow with an
  ///     equal-or-smaller rate-to-weight ratio).
  ///
  /// The returned span aliases solver-owned storage and is invalidated by
  /// the next solve() call; copy it out to keep it.
  std::span<const double> solve(std::span<const FairShareResource> resources,
                                std::span<const FairShareFlow> flows);

  /// Preprocesses a flow set for repeated solves against varying resource
  /// capacities (the per-second slot loop: flows are slot invariants, only
  /// relay capacities change). Validates the flows, flattens their
  /// resource lists and precomputes the initial active-weight table.
  /// `num_resources` must equal the size of every resources span later
  /// passed to solve_prepared. The flow data is copied: the span may die
  /// after prepare returns.
  void prepare(std::span<const FairShareFlow> flows,
               std::size_t num_resources);

  /// Solves the prepared flow set; bit-identical to solve(resources,
  /// flows) with the flows passed to prepare(). Same span-invalidation
  /// rule as solve().
  std::span<const double> solve_prepared(
      std::span<const FairShareResource> resources);

  /// Flows still competing after the last prepare() (zero-cap flows are
  /// folded away at prepare time). Telemetry reads this for the
  /// solver/active_flows gauge; 0 before the first prepare.
  std::size_t prepared_active_flows() const { return active_init_.size(); }

 private:
  std::vector<double> rates_;
  std::vector<double> weights_;  // SoA copies of the flow weight/cap
  std::vector<double> caps_;     //   fields for cache-friendly scans
  /// Flow→resource lists flattened into one arena: flow f's resources are
  /// res_index_[res_offset_[f] .. res_offset_[f + 1]), replacing a pointer
  /// chase through each FairShareFlow's vector in the filling iterations.
  std::vector<std::size_t> res_index_;
  std::vector<std::size_t> res_offset_;
  /// Unfrozen flow indices in ascending order; compacted in place as flows
  /// freeze so every filling iteration scans only what is still active.
  std::vector<std::size_t> active_;
  /// prepare() products: the flow set size, the active list and per-
  /// resource weight totals before any filling (zero-cap flows already
  /// subtracted), copied into the working vectors by each solve_prepared.
  /// prepared_ is false until a prepare() run completes, so a validation
  /// throw mid-prepare cannot be followed by a solve over half-built state.
  bool prepared_ = false;
  std::size_t num_flows_ = 0;
  std::size_t num_resources_ = 0;
  std::vector<std::size_t> active_init_;
  std::vector<double> active_weight_base_;
  std::vector<double> remaining_;  // per-resource capacity left
  std::vector<double> active_weight_;
  /// Indices of capacity-constrained resources (finite remaining); the
  /// unconstrained ones can never bind, so iterations skip them entirely.
  std::vector<std::size_t> finite_res_;
  /// Epoch stamp per resource: "saturated this filling iteration" is
  /// saturated_at_[r] == epoch_, replacing the per-iteration flag vector
  /// the one-shot implementation used to allocate. epoch_ only ever
  /// increases, so stale stamps from earlier solves never read as current.
  std::vector<std::uint64_t> saturated_at_;
  std::uint64_t epoch_ = 0;
};

/// One-shot convenience wrapper: solves with a fresh FairShareSolver and
/// copies the rates out. Prefer a reused solver in per-second loops.
std::vector<double> max_min_fair_rates(
    const std::vector<FairShareResource>& resources,
    const std::vector<FairShareFlow>& flows);

}  // namespace flashflow::net
