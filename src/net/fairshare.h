// Weighted max-min fair rate allocation (progressive filling).
//
// Given resources with capacities and flows that each traverse a set of
// resources, carry a weight, and may have an individual rate cap, computes
// the weighted max-min fair allocation: all flows' rates rise together in
// proportion to their weights until a resource saturates or a flow hits its
// cap; saturated flows freeze, and the rest continue.
//
// This is the standard fluid approximation of TCP bandwidth sharing used by
// flow-level network simulators.
#pragma once

#include <limits>
#include <vector>

namespace flashflow::net {

struct FairShareResource {
  double capacity = 0;  // bits/s; <= 0 means unconstrained
};

struct FairShareFlow {
  std::vector<std::size_t> resources;  // indices into the resource vector
  double weight = 1.0;                 // relative share (e.g. socket count)
  double cap = std::numeric_limits<double>::infinity();  // bits/s
};

/// Returns per-flow rates in bits/s. Guarantees:
///   - no resource's total allocated rate exceeds its capacity (within eps);
///   - no flow exceeds its cap;
///   - the allocation is weighted max-min fair (no flow's rate can increase
///     without decreasing that of a flow with an equal-or-smaller
///     rate-to-weight ratio).
std::vector<double> max_min_fair_rates(
    const std::vector<FairShareResource>& resources,
    const std::vector<FairShareFlow>& flows);

}  // namespace flashflow::net
