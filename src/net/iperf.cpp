#include "net/iperf.h"

#include <algorithm>
#include <limits>

#include "metrics/stats.h"
#include "net/flownet.h"
#include "net/tcp_model.h"
#include "net/units.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace flashflow::net {

double IperfReport::median_bits() const {
  if (per_second_bits.empty()) return 0.0;
  return metrics::median(metrics::as_span(per_second_bits));
}

namespace {

/// Builds per-host up/down NIC resources on a fresh FlowNet.
struct NicResources {
  std::vector<ResourceId> up;
  std::vector<ResourceId> down;
};

NicResources make_nics(FlowNet& netw, const Topology& topo) {
  NicResources nics;
  for (HostId h = 0; h < topo.host_count(); ++h) {
    nics.up.push_back(
        netw.add_resource(topo.host(h).name + ".up", topo.host(h).nic_up_bits));
    nics.down.push_back(netw.add_resource(topo.host(h).name + ".down",
                                          topo.host(h).nic_down_bits));
  }
  return nics;
}

/// Applies per-second receive-direction variability: each second's sample is
/// scaled by a factor drawn from [1 - var, 1].
std::vector<double> apply_rx_variability(std::vector<double> samples,
                                         double var, sim::Rng& rng) {
  for (double& s : samples) s *= rng.uniform(1.0 - var, 1.0);
  return samples;
}

}  // namespace

IperfRunner::IperfRunner(const Topology& topo, std::uint64_t seed)
    : topo_(topo), rng_(seed) {}

IperfReport IperfRunner::run_tcp(HostId sender, HostId receiver,
                                 double duration_s, int streams) {
  sim::Simulator simu;
  FlowNet netw(simu);
  const NicResources nics = make_nics(netw, topo_);

  const double socket_cap = tcp_socket_throughput(
      topo_.host(sender).kernel, topo_.rtt(sender, receiver),
      topo_.loss(sender, receiver));
  FlowNet::FlowSpec spec;
  spec.resources = {nics.up[sender], nics.down[receiver]};
  spec.weight = static_cast<double>(streams);
  spec.cap_bits = socket_cap * streams;
  spec.record_per_second = true;
  const FlowId flow = netw.add_flow(std::move(spec));

  simu.run_until(sim::from_seconds(duration_s));
  netw.sync();
  auto samples = netw.series(flow).bins_bits_per_second();
  return {apply_rx_variability(std::move(samples),
                               topo_.host(receiver).rx_var_tcp, rng_)};
}

IperfReport IperfRunner::run_udp(HostId sender, HostId receiver,
                                 double duration_s) {
  sim::Simulator simu;
  FlowNet netw(simu);
  const NicResources nics = make_nics(netw, topo_);

  FlowNet::FlowSpec spec;
  spec.resources = {nics.up[sender], nics.down[receiver]};
  spec.record_per_second = true;
  const FlowId flow = netw.add_flow(std::move(spec));

  simu.run_until(sim::from_seconds(duration_s));
  netw.sync();
  auto samples = netw.series(flow).bins_bits_per_second();
  return {apply_rx_variability(std::move(samples),
                               topo_.host(receiver).rx_var_udp, rng_)};
}

IperfReport IperfRunner::run_bidirectional(HostId a, HostId b,
                                           double duration_s, bool udp) {
  const IperfReport ab =
      udp ? run_udp(a, b, duration_s) : run_tcp(a, b, duration_s);
  const IperfReport ba =
      udp ? run_udp(b, a, duration_s) : run_tcp(b, a, duration_s);
  const std::size_t n =
      std::min(ab.per_second_bits.size(), ba.per_second_bits.size());
  IperfReport out;
  out.per_second_bits.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.per_second_bits.push_back(
        std::min(ab.per_second_bits[i], ba.per_second_bits[i]));
  return out;
}

IperfReport IperfRunner::run_saturate_udp(HostId receiver, double duration_s) {
  sim::Simulator simu;
  FlowNet netw(simu);
  const NicResources nics = make_nics(netw, topo_);

  std::vector<FlowId> flows;
  for (HostId h = 0; h < topo_.host_count(); ++h) {
    if (h == receiver) continue;
    FlowNet::FlowSpec spec;
    spec.resources = {nics.up[h], nics.down[receiver]};
    spec.record_per_second = true;
    flows.push_back(netw.add_flow(std::move(spec)));
  }

  simu.run_until(sim::from_seconds(duration_s));
  netw.sync();

  std::vector<double> sums;
  for (const FlowId f : flows) {
    const auto bins = netw.series(f).bins_bits_per_second();
    if (sums.size() < bins.size()) sums.resize(bins.size(), 0.0);
    for (std::size_t i = 0; i < bins.size(); ++i) sums[i] += bins[i];
  }
  // Saturating many-to-one runs were stable even on flaky hosts (Table 1's
  // measured row vs Table 3's pairwise ranges), so only baseline noise.
  return {apply_rx_variability(std::move(sums), 0.01, rng_)};
}

}  // namespace flashflow::net
