// Host and path model for Internet experiments.
//
// A Topology is a set of named hosts with NIC capacities plus path
// characteristics (RTT and loss rate) answered by a pluggable
// net::PathModel — dense full-mesh matrices by default, or an implicit
// tiered model for topologies too large to materialize all pairs (see
// net/path_model.h). The paper's Table 1 vantage points are provided as
// a factory so every Internet experiment runs on the same configuration.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/path_model.h"
#include "net/tcp_model.h"

namespace flashflow::net {

struct Host {
  std::string name;
  double nic_up_bits = 0;    // upstream NIC capacity, bits/s
  double nic_down_bits = 0;  // downstream NIC capacity, bits/s
  int cpu_cores = 1;
  bool virtual_host = false;
  bool datacenter = true;
  KernelProfile kernel;  // socket buffer configuration
  // Receive-direction throughput variability observed in Appendix B
  // (US-NW's receive path was highly variable). A per-run factor is drawn
  // uniformly from [1 - var, 1].
  double rx_var_tcp = 0.05;
  double rx_var_udp = 0.01;
};

class Topology {
 public:
  Topology();
  Topology(const Topology& other);
  Topology& operator=(const Topology& other);
  Topology(Topology&&) noexcept = default;
  Topology& operator=(Topology&&) noexcept = default;

  /// Installs a path model, replacing the default DensePathModel. Install
  /// before adding hosts so a tiered topology never allocates n x n
  /// matrices; any hosts already added are carried over (tier defaults
  /// apply, previously set dense paths are not).
  void use_path_model(std::unique_ptr<PathModel> model);
  const PathModel& path_model() const { return *model_; }

  /// Adds a host; returns its id.
  HostId add_host(Host host);

  /// Presizes the path model for `n` hosts. With the dense model,
  /// add_host reallocates the three n x n matrices whenever the host
  /// count outgrows them, so building a large topology host-by-host
  /// without reserving is quadratic in memory traffic per insertion;
  /// callers that know the final host count (scenario materialization)
  /// should reserve up front.
  void reserve_hosts(std::size_t n);

  /// Sets symmetric path characteristics between two hosts. Requires the
  /// dense path model (throws std::logic_error otherwise — tiered
  /// topologies describe paths through their tier table instead).
  ///
  /// `loss_rate` is the clean-path loss seen by a lone well-paced stream
  /// (iPerf-style runs); `loaded_loss_rate` is the self-induced congestion
  /// loss each socket sees when many parallel measurement connections push
  /// the path hard (governs the Appendix E.1 socket-sweep shape). Defaults
  /// loaded == clean when omitted.
  void set_path(HostId a, HostId b, double rtt_s, double loss_rate,
                double loaded_loss_rate = -1.0);

  /// Assigns a host to a tier. Requires a TieredPathModel (throws
  /// std::logic_error otherwise).
  void set_host_tier(HostId id, int tier);

  std::size_t host_count() const { return hosts_.size(); }
  const Host& host(HostId id) const;
  /// Mutable host access. Renaming a host through this reference does not
  /// update the name index used by find().
  Host& host(HostId id);
  /// Finds a host id by name (first added wins on duplicates); throws if
  /// absent.
  HostId find(const std::string& name) const;

  double rtt(HostId a, HostId b) const;
  double loss(HostId a, HostId b) const;
  double loaded_loss(HostId a, HostId b) const;

  /// Bulk path resolution for the slot hot path: one virtual call for all
  /// of `from`'s paths to `to` instead of three scalar reads per pair.
  /// out.size() must equal to.size(); ids must be valid.
  void fill_paths(HostId from, std::span<const HostId> to,
                  std::span<PathCharacteristics> out) const;

 private:
  void check_ids(HostId a, HostId b) const;

  std::vector<Host> hosts_;
  std::unique_ptr<PathModel> model_;
  /// name -> id of the first host added under that name.
  // FFCHECK(ND06): point lookups only (find/emplace in topology.cpp);
  // never iterated, so hash order cannot reach results.
  std::unordered_map<std::string, HostId> name_index_;
};

/// Builds the paper's Table 1 vantage points: US-SW (Fremont, CA),
/// US-NW (Santa Rosa, CA), US-E (Washington, DC), IN (Bangalore),
/// NL (Amsterdam). NIC capacities reflect the paper's measured values; the
/// RTT column is Table 1's RTT-to-US-SW with synthesized inter-pair values;
/// loss rates grow with RTT, calibrated so the Appendix E.1 socket sweep
/// reproduces each host's peak location (IN peaks at s=160).
Topology make_table1_hosts();

/// Lab pair used in Appendix C/D: two hosts on a 10 Gbit/s link with
/// 0.13 ms RTT and no loss.
Topology make_lab_pair();

/// Names of the five Table 1 hosts in paper order.
const std::vector<std::string>& table1_host_names();

}  // namespace flashflow::net
