// Host and path model for Internet experiments.
//
// A Topology is a set of named hosts with NIC capacities plus full-mesh
// path characteristics (RTT and loss rate). The paper's Table 1 vantage
// points are provided as a factory so every Internet experiment runs on the
// same configuration.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "net/tcp_model.h"

namespace flashflow::net {

using HostId = std::size_t;

struct Host {
  std::string name;
  double nic_up_bits = 0;    // upstream NIC capacity, bits/s
  double nic_down_bits = 0;  // downstream NIC capacity, bits/s
  int cpu_cores = 1;
  bool virtual_host = false;
  bool datacenter = true;
  KernelProfile kernel;  // socket buffer configuration
  // Receive-direction throughput variability observed in Appendix B
  // (US-NW's receive path was highly variable). A per-run factor is drawn
  // uniformly from [1 - var, 1].
  double rx_var_tcp = 0.05;
  double rx_var_udp = 0.01;
};

class Topology {
 public:
  /// Adds a host; returns its id.
  HostId add_host(Host host);

  /// Presizes the path matrices for `n` hosts. add_host reallocates the
  /// three dense n x n matrices whenever the host count outgrows them, so
  /// building a large topology host-by-host without reserving is
  /// quadratic in memory traffic per insertion; callers that know the
  /// final host count (scenario materialization) should reserve up front.
  void reserve_hosts(std::size_t n);

  /// Sets symmetric path characteristics between two hosts.
  ///
  /// `loss_rate` is the clean-path loss seen by a lone well-paced stream
  /// (iPerf-style runs); `loaded_loss_rate` is the self-induced congestion
  /// loss each socket sees when many parallel measurement connections push
  /// the path hard (governs the Appendix E.1 socket-sweep shape). Defaults
  /// loaded == clean when omitted.
  void set_path(HostId a, HostId b, double rtt_s, double loss_rate,
                double loaded_loss_rate = -1.0);

  std::size_t host_count() const { return hosts_.size(); }
  const Host& host(HostId id) const;
  Host& host(HostId id);
  /// Finds a host id by name; throws if absent.
  HostId find(const std::string& name) const;

  double rtt(HostId a, HostId b) const;
  double loss(HostId a, HostId b) const;
  double loaded_loss(HostId a, HostId b) const;

 private:
  std::size_t index(HostId a, HostId b) const;
  /// Re-lays the matrices out for `dim` hosts, preserving entries.
  void grow_matrices(std::size_t dim);
  std::vector<Host> hosts_;
  /// Allocated matrix dimension (>= host_count); the matrices are row-major
  /// dim_ x dim_ so insertions within a reservation never re-lay them out.
  std::size_t dim_ = 0;
  std::vector<double> rtt_;
  std::vector<double> loss_;
  std::vector<double> loaded_loss_;
};

/// Builds the paper's Table 1 vantage points: US-SW (Fremont, CA),
/// US-NW (Santa Rosa, CA), US-E (Washington, DC), IN (Bangalore),
/// NL (Amsterdam). NIC capacities reflect the paper's measured values; the
/// RTT column is Table 1's RTT-to-US-SW with synthesized inter-pair values;
/// loss rates grow with RTT, calibrated so the Appendix E.1 socket sweep
/// reproduces each host's peak location (IN peaks at s=160).
Topology make_table1_hosts();

/// Lab pair used in Appendix C/D: two hosts on a 10 Gbit/s link with
/// 0.13 ms RTT and no loss.
Topology make_lab_pair();

/// Names of the five Table 1 hosts in paper order.
const std::vector<std::string>& table1_host_names();

}  // namespace flashflow::net
