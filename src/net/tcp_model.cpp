#include "net/tcp_model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "net/units.h"

namespace flashflow::net {

KernelProfile KernelProfile::default_profile() { return KernelProfile{}; }

KernelProfile KernelProfile::tuned_profile() {
  KernelProfile k;
  k.read_buffer_bytes = 64.0 * 1024 * 1024;
  k.write_buffer_bytes = 64.0 * 1024 * 1024;
  return k;
}

double KernelProfile::usable_window_bytes() const {
  return std::min(read_buffer_bytes, write_buffer_bytes);
}

double tcp_socket_throughput(const KernelProfile& kernel, double rtt_s,
                             double loss_rate, const TcpModelParams& params) {
  if (rtt_s <= 0.0)
    throw std::invalid_argument("tcp_socket_throughput: rtt <= 0");
  const double window_cap =
      bits_from_bytes(kernel.usable_window_bytes()) / rtt_s;
  double mathis_cap = std::numeric_limits<double>::infinity();
  if (loss_rate > 0.0) {
    mathis_cap = bits_from_bytes(params.mss_bytes) * params.mathis_constant /
                 (rtt_s * std::sqrt(loss_rate));
  }
  const double unconstrained_cap =
      params.peak_rate_bits / (1.0 + rtt_s / params.rtt_penalty_scale_s);
  return std::min({window_cap, mathis_cap, unconstrained_cap});
}

double tcp_aggregate_cap(const KernelProfile& kernel, double rtt_s,
                         double loss_rate, int sockets,
                         const TcpModelParams& params) {
  if (sockets <= 0) return 0.0;
  return static_cast<double>(sockets) *
         tcp_socket_throughput(kernel, rtt_s, loss_rate, params);
}

}  // namespace flashflow::net
