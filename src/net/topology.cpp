#include "net/topology.h"

#include <stdexcept>
#include <utility>

#include "net/units.h"

namespace flashflow::net {

Topology::Topology() : model_(std::make_unique<DensePathModel>()) {}

Topology::Topology(const Topology& other)
    : hosts_(other.hosts_),
      model_(other.model_->clone()),
      name_index_(other.name_index_) {}

Topology& Topology::operator=(const Topology& other) {
  if (this == &other) return *this;
  hosts_ = other.hosts_;
  model_ = other.model_->clone();
  name_index_ = other.name_index_;
  return *this;
}

void Topology::use_path_model(std::unique_ptr<PathModel> model) {
  if (!model)
    throw std::invalid_argument("Topology::use_path_model: null model");
  model_ = std::move(model);
  model_->resize_hosts(hosts_.size());
}

HostId Topology::add_host(Host host) {
  const HostId id = hosts_.size();
  // emplace keeps the first id registered under a name, matching the
  // first-match semantics find() has always had.
  name_index_.emplace(host.name, id);
  hosts_.push_back(std::move(host));
  model_->resize_hosts(hosts_.size());
  return id;
}

void Topology::reserve_hosts(std::size_t n) {
  hosts_.reserve(n);
  name_index_.reserve(n);
  model_->reserve_hosts(n);
}

void Topology::set_path(HostId a, HostId b, double rtt_s, double loss_rate,
                        double loaded_loss_rate) {
  check_ids(a, b);
  if (rtt_s < 0.0 || loss_rate < 0.0 || loss_rate >= 1.0)
    throw std::invalid_argument("Topology::set_path: bad parameters");
  if (loaded_loss_rate < 0.0) loaded_loss_rate = loss_rate;
  auto* dense = dynamic_cast<DensePathModel*>(model_.get());
  if (!dense)
    throw std::logic_error(
        "Topology::set_path: requires the dense path model (tiered "
        "topologies describe paths through their tier table)");
  dense->set_path(a, b, rtt_s, loss_rate, loaded_loss_rate);
}

void Topology::set_host_tier(HostId id, int tier) {
  if (id >= hosts_.size()) throw std::out_of_range("Topology: bad host id");
  auto* tiered = dynamic_cast<TieredPathModel*>(model_.get());
  if (!tiered)
    throw std::logic_error(
        "Topology::set_host_tier: requires a tiered path model");
  tiered->set_host_tier(id, tier);
}

const Host& Topology::host(HostId id) const {
  if (id >= hosts_.size()) throw std::out_of_range("Topology::host");
  return hosts_[id];
}

Host& Topology::host(HostId id) {
  if (id >= hosts_.size()) throw std::out_of_range("Topology::host");
  return hosts_[id];
}

HostId Topology::find(const std::string& name) const {
  const auto it = name_index_.find(name);
  if (it == name_index_.end())
    throw std::invalid_argument("Topology::find: no host named " + name);
  return it->second;
}

double Topology::rtt(HostId a, HostId b) const {
  check_ids(a, b);
  return model_->rtt(a, b);
}

double Topology::loss(HostId a, HostId b) const {
  check_ids(a, b);
  return model_->loss(a, b);
}

double Topology::loaded_loss(HostId a, HostId b) const {
  check_ids(a, b);
  return model_->loaded_loss(a, b);
}

void Topology::fill_paths(HostId from, std::span<const HostId> to,
                          std::span<PathCharacteristics> out) const {
  model_->fill_paths(from, to, out);
}

void Topology::check_ids(HostId a, HostId b) const {
  if (a >= hosts_.size() || b >= hosts_.size())
    throw std::out_of_range("Topology: bad host id");
}

const std::vector<std::string>& table1_host_names() {
  static const std::vector<std::string> names = {"US-SW", "US-NW", "US-E",
                                                 "IN", "NL"};
  return names;
}

Topology make_table1_hosts() {
  Topology topo;

  // NIC capacities are set so that saturating UDP measurements reproduce
  // Table 1's "BW (measured)" row: 954 / 946 / 941 / 1076 / 1611 Mbit/s.
  Host us_sw_h{.name = "US-SW", .nic_up_bits = mbit(954),
               .nic_down_bits = mbit(954), .cpu_cores = 8,
               .virtual_host = false, .datacenter = true,
               .kernel = KernelProfile::default_profile()};
  Host us_nw_h{.name = "US-NW", .nic_up_bits = mbit(946),
               .nic_down_bits = mbit(946), .cpu_cores = 8,
               .virtual_host = true, .datacenter = true,
               .kernel = KernelProfile::default_profile()};
  // Appendix B: US-NW's receive direction was highly variable
  // (TCP 176-787 Mbit/s, UDP 740-945 Mbit/s).
  us_nw_h.rx_var_tcp = 0.78;
  us_nw_h.rx_var_udp = 0.22;
  Host us_e_h{.name = "US-E", .nic_up_bits = mbit(941),
              .nic_down_bits = mbit(941), .cpu_cores = 12,
              .virtual_host = false, .datacenter = false,
              .kernel = KernelProfile::default_profile()};
  Host in_h{.name = "IN", .nic_up_bits = mbit(1076),
            .nic_down_bits = mbit(1076), .cpu_cores = 2,
            .virtual_host = true, .datacenter = true,
            .kernel = KernelProfile::default_profile()};
  in_h.rx_var_tcp = 0.17;
  Host nl_h{.name = "NL", .nic_up_bits = mbit(1611),
            .nic_down_bits = mbit(1611), .cpu_cores = 2,
            .virtual_host = true, .datacenter = true,
            .kernel = KernelProfile::default_profile()};

  const HostId us_sw = topo.add_host(us_sw_h);
  const HostId us_nw = topo.add_host(us_nw_h);
  const HostId us_e = topo.add_host(us_e_h);
  const HostId in = topo.add_host(in_h);
  const HostId nl = topo.add_host(nl_h);

  // Table 1 RTTs to US-SW. Clean loss is near zero (iPerf runs reach close
  // to line rate); loaded loss is calibrated so the Appendix E.1 socket
  // sweep reproduces each host's peak location (IN peaks at s=160).
  topo.set_path(us_sw, us_nw, 0.040, 1.0e-6, 6.0e-5);
  topo.set_path(us_sw, us_e, 0.062, 1.0e-6, 6.0e-5);
  topo.set_path(us_sw, in, 0.210, 2.0e-6, 1.6e-4);
  topo.set_path(us_sw, nl, 0.137, 1.0e-6, 1.0e-4);

  // Inter-pair paths (not in Table 1): synthesized from geography.
  topo.set_path(us_nw, us_e, 0.070, 1.0e-6, 6.0e-5);
  topo.set_path(us_nw, in, 0.230, 2.0e-6, 1.7e-4);
  topo.set_path(us_nw, nl, 0.150, 1.0e-6, 1.1e-4);
  topo.set_path(us_e, in, 0.200, 2.0e-6, 1.6e-4);
  topo.set_path(us_e, nl, 0.090, 1.0e-6, 8.0e-5);
  topo.set_path(in, nl, 0.130, 2.0e-6, 1.0e-4);

  return topo;
}

Topology make_lab_pair() {
  Topology topo;
  const HostId target = topo.add_host(
      {.name = "lab-target", .nic_up_bits = gbit(10),
       .nic_down_bits = gbit(10), .cpu_cores = 56, .virtual_host = false,
       .datacenter = true, .kernel = KernelProfile::default_profile()});
  const HostId client = topo.add_host(
      {.name = "lab-client", .nic_up_bits = gbit(10),
       .nic_down_bits = gbit(10), .cpu_cores = 56, .virtual_host = false,
       .datacenter = true, .kernel = KernelProfile::default_profile()});
  topo.set_path(target, client, 0.00013, 0.0);
  return topo;
}

}  // namespace flashflow::net
