#include "net/topology.h"

#include <stdexcept>

#include "net/units.h"

namespace flashflow::net {

HostId Topology::add_host(Host host) {
  const HostId id = hosts_.size();
  hosts_.push_back(std::move(host));
  // Geometric growth keeps unreserved host-by-host construction linear in
  // matrix traffic overall instead of re-laying three n x n matrices out
  // on every insertion.
  if (hosts_.size() > dim_)
    grow_matrices(std::max(hosts_.size(), dim_ * 2));
  return id;
}

void Topology::reserve_hosts(std::size_t n) {
  if (n > dim_) grow_matrices(n);
}

void Topology::grow_matrices(std::size_t dim) {
  const std::size_t old_dim = dim_;
  const auto grow = [dim, old_dim](std::vector<double>& m) {
    std::vector<double> next(dim * dim, 0.0);
    for (std::size_t a = 0; a < old_dim; ++a)
      for (std::size_t b = 0; b < old_dim; ++b)
        next[a * dim + b] = m[a * old_dim + b];
    m = std::move(next);
  };
  grow(rtt_);
  grow(loss_);
  grow(loaded_loss_);
  dim_ = dim;
}

void Topology::set_path(HostId a, HostId b, double rtt_s, double loss_rate,
                        double loaded_loss_rate) {
  if (rtt_s < 0.0 || loss_rate < 0.0 || loss_rate >= 1.0)
    throw std::invalid_argument("Topology::set_path: bad parameters");
  if (loaded_loss_rate < 0.0) loaded_loss_rate = loss_rate;
  rtt_[index(a, b)] = rtt_s;
  rtt_[index(b, a)] = rtt_s;
  loss_[index(a, b)] = loss_rate;
  loss_[index(b, a)] = loss_rate;
  loaded_loss_[index(a, b)] = loaded_loss_rate;
  loaded_loss_[index(b, a)] = loaded_loss_rate;
}

const Host& Topology::host(HostId id) const {
  if (id >= hosts_.size()) throw std::out_of_range("Topology::host");
  return hosts_[id];
}

Host& Topology::host(HostId id) {
  if (id >= hosts_.size()) throw std::out_of_range("Topology::host");
  return hosts_[id];
}

HostId Topology::find(const std::string& name) const {
  for (HostId id = 0; id < hosts_.size(); ++id)
    if (hosts_[id].name == name) return id;
  throw std::invalid_argument("Topology::find: no host named " + name);
}

double Topology::rtt(HostId a, HostId b) const { return rtt_[index(a, b)]; }

double Topology::loss(HostId a, HostId b) const { return loss_[index(a, b)]; }

double Topology::loaded_loss(HostId a, HostId b) const {
  return loaded_loss_[index(a, b)];
}

std::size_t Topology::index(HostId a, HostId b) const {
  if (a >= hosts_.size() || b >= hosts_.size())
    throw std::out_of_range("Topology: bad host id");
  return a * dim_ + b;
}

const std::vector<std::string>& table1_host_names() {
  static const std::vector<std::string> names = {"US-SW", "US-NW", "US-E",
                                                 "IN", "NL"};
  return names;
}

Topology make_table1_hosts() {
  Topology topo;

  // NIC capacities are set so that saturating UDP measurements reproduce
  // Table 1's "BW (measured)" row: 954 / 946 / 941 / 1076 / 1611 Mbit/s.
  Host us_sw_h{.name = "US-SW", .nic_up_bits = mbit(954),
               .nic_down_bits = mbit(954), .cpu_cores = 8,
               .virtual_host = false, .datacenter = true,
               .kernel = KernelProfile::default_profile()};
  Host us_nw_h{.name = "US-NW", .nic_up_bits = mbit(946),
               .nic_down_bits = mbit(946), .cpu_cores = 8,
               .virtual_host = true, .datacenter = true,
               .kernel = KernelProfile::default_profile()};
  // Appendix B: US-NW's receive direction was highly variable
  // (TCP 176-787 Mbit/s, UDP 740-945 Mbit/s).
  us_nw_h.rx_var_tcp = 0.78;
  us_nw_h.rx_var_udp = 0.22;
  Host us_e_h{.name = "US-E", .nic_up_bits = mbit(941),
              .nic_down_bits = mbit(941), .cpu_cores = 12,
              .virtual_host = false, .datacenter = false,
              .kernel = KernelProfile::default_profile()};
  Host in_h{.name = "IN", .nic_up_bits = mbit(1076),
            .nic_down_bits = mbit(1076), .cpu_cores = 2,
            .virtual_host = true, .datacenter = true,
            .kernel = KernelProfile::default_profile()};
  in_h.rx_var_tcp = 0.17;
  Host nl_h{.name = "NL", .nic_up_bits = mbit(1611),
            .nic_down_bits = mbit(1611), .cpu_cores = 2,
            .virtual_host = true, .datacenter = true,
            .kernel = KernelProfile::default_profile()};

  const HostId us_sw = topo.add_host(us_sw_h);
  const HostId us_nw = topo.add_host(us_nw_h);
  const HostId us_e = topo.add_host(us_e_h);
  const HostId in = topo.add_host(in_h);
  const HostId nl = topo.add_host(nl_h);

  // Table 1 RTTs to US-SW. Clean loss is near zero (iPerf runs reach close
  // to line rate); loaded loss is calibrated so the Appendix E.1 socket
  // sweep reproduces each host's peak location (IN peaks at s=160).
  topo.set_path(us_sw, us_nw, 0.040, 1.0e-6, 6.0e-5);
  topo.set_path(us_sw, us_e, 0.062, 1.0e-6, 6.0e-5);
  topo.set_path(us_sw, in, 0.210, 2.0e-6, 1.6e-4);
  topo.set_path(us_sw, nl, 0.137, 1.0e-6, 1.0e-4);

  // Inter-pair paths (not in Table 1): synthesized from geography.
  topo.set_path(us_nw, us_e, 0.070, 1.0e-6, 6.0e-5);
  topo.set_path(us_nw, in, 0.230, 2.0e-6, 1.7e-4);
  topo.set_path(us_nw, nl, 0.150, 1.0e-6, 1.1e-4);
  topo.set_path(us_e, in, 0.200, 2.0e-6, 1.6e-4);
  topo.set_path(us_e, nl, 0.090, 1.0e-6, 8.0e-5);
  topo.set_path(in, nl, 0.130, 2.0e-6, 1.0e-4);

  return topo;
}

Topology make_lab_pair() {
  Topology topo;
  const HostId target = topo.add_host(
      {.name = "lab-target", .nic_up_bits = gbit(10),
       .nic_down_bits = gbit(10), .cpu_cores = 56, .virtual_host = false,
       .datacenter = true, .kernel = KernelProfile::default_profile()});
  const HostId client = topo.add_host(
      {.name = "lab-client", .nic_up_bits = gbit(10),
       .nic_down_bits = gbit(10), .cpu_cores = 56, .virtual_host = false,
       .datacenter = true, .kernel = KernelProfile::default_profile()});
  topo.set_path(target, client, 0.00013, 0.0);
  return topo;
}

}  // namespace flashflow::net
