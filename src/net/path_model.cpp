#include "net/path_model.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "sim/random.h"

namespace flashflow::net {

void PathModel::fill_paths(HostId from, std::span<const HostId> to,
                           std::span<PathCharacteristics> out) const {
  for (std::size_t i = 0; i < to.size(); ++i) {
    out[i].rtt_s = rtt(from, to[i]);
    out[i].loss = loss(from, to[i]);
    out[i].loaded_loss = loaded_loss(from, to[i]);
  }
}

// --------------------------------------------------------- DensePathModel ---

std::unique_ptr<PathModel> DensePathModel::clone() const {
  return std::make_unique<DensePathModel>(*this);
}

void DensePathModel::resize_hosts(std::size_t count) {
  hosts_ = count;
  // Geometric growth keeps unreserved host-by-host construction linear in
  // matrix traffic overall instead of re-laying three n x n matrices out
  // on every insertion.
  if (count > dim_) grow_matrices(std::max(count, dim_ * 2));
}

void DensePathModel::reserve_hosts(std::size_t count) {
  if (count > dim_) grow_matrices(count);
}

void DensePathModel::grow_matrices(std::size_t dim) {
  const std::size_t old_dim = dim_;
  const auto grow = [dim, old_dim](std::vector<double>& m) {
    std::vector<double> next(dim * dim, 0.0);
    for (std::size_t a = 0; a < old_dim; ++a)
      for (std::size_t b = 0; b < old_dim; ++b)
        next[a * dim + b] = m[a * old_dim + b];
    m = std::move(next);
  };
  grow(rtt_);
  grow(loss_);
  grow(loaded_loss_);
  dim_ = dim;
}

void DensePathModel::set_path(HostId a, HostId b, double rtt_s,
                              double loss_rate, double loaded_loss_rate) {
  rtt_[index(a, b)] = rtt_s;
  rtt_[index(b, a)] = rtt_s;
  loss_[index(a, b)] = loss_rate;
  loss_[index(b, a)] = loss_rate;
  loaded_loss_[index(a, b)] = loaded_loss_rate;
  loaded_loss_[index(b, a)] = loaded_loss_rate;
}

double DensePathModel::rtt(HostId a, HostId b) const {
  return rtt_[index(a, b)];
}

double DensePathModel::loss(HostId a, HostId b) const {
  return loss_[index(a, b)];
}

double DensePathModel::loaded_loss(HostId a, HostId b) const {
  return loaded_loss_[index(a, b)];
}

void DensePathModel::fill_paths(HostId from, std::span<const HostId> to,
                                std::span<PathCharacteristics> out) const {
  // Row pointers instead of three virtual reads per pair.
  const double* rtt_row = rtt_.data() + from * dim_;
  const double* loss_row = loss_.data() + from * dim_;
  const double* loaded_row = loaded_loss_.data() + from * dim_;
  for (std::size_t i = 0; i < to.size(); ++i) {
    out[i].rtt_s = rtt_row[to[i]];
    out[i].loss = loss_row[to[i]];
    out[i].loaded_loss = loaded_row[to[i]];
  }
}

// -------------------------------------------------------- TieredPathModel ---

TieredPathModel::TieredPathModel(TieredPathParams params)
    : params_(std::move(params)) {
  if (params_.tiers < 1)
    throw std::invalid_argument("TieredPathModel: tiers must be >= 1");
  const std::size_t tiers = static_cast<std::size_t>(params_.tiers);
  const std::size_t triangle = tiers * (tiers + 1) / 2;
  if (!params_.tier_rtt_s.empty() && params_.tier_rtt_s.size() != triangle)
    throw std::invalid_argument(
        "TieredPathModel: tier_rtt_s needs tiers*(tiers+1)/2 = " +
        std::to_string(triangle) + " entries (upper triangle incl. "
        "diagonal), got " + std::to_string(params_.tier_rtt_s.size()));
  for (const double rtt : params_.tier_rtt_s)
    if (rtt < 0.0)
      throw std::invalid_argument("TieredPathModel: tier RTTs must be >= 0");
  if (params_.loss < 0.0 || params_.loss >= 1.0 ||
      params_.loaded_loss < 0.0 || params_.loaded_loss >= 1.0)
    throw std::invalid_argument(
        "TieredPathModel: loss rates must be in [0, 1)");
  if (params_.rtt_jitter < 0.0 || params_.rtt_jitter >= 1.0)
    throw std::invalid_argument(
        "TieredPathModel: rtt_jitter must be in [0, 1)");

  // Expand the upper triangle into a dense tiers x tiers table so pair
  // resolution is one multiply-add away from the answer.
  rtt_table_.assign(tiers * tiers, 0.05);
  if (!params_.tier_rtt_s.empty()) {
    std::size_t k = 0;
    for (std::size_t a = 0; a < tiers; ++a) {
      for (std::size_t b = a; b < tiers; ++b, ++k) {
        rtt_table_[a * tiers + b] = params_.tier_rtt_s[k];
        rtt_table_[b * tiers + a] = params_.tier_rtt_s[k];
      }
    }
  }
}

std::unique_ptr<PathModel> TieredPathModel::clone() const {
  return std::make_unique<TieredPathModel>(*this);
}

void TieredPathModel::resize_hosts(std::size_t count) {
  const std::size_t old = host_tier_.size();
  host_tier_.resize(count);
  for (std::size_t h = old; h < count; ++h)
    host_tier_[h] = static_cast<std::int32_t>(
        h % static_cast<std::size_t>(params_.tiers));
}

void TieredPathModel::set_host_tier(HostId host, int tier) {
  if (host >= host_tier_.size())
    throw std::out_of_range("TieredPathModel::set_host_tier: bad host id");
  if (tier < 0 || tier >= params_.tiers)
    throw std::invalid_argument(
        "TieredPathModel::set_host_tier: tier out of range");
  host_tier_[host] = tier;
}

int TieredPathModel::host_tier(HostId host) const {
  if (host >= host_tier_.size())
    throw std::out_of_range("TieredPathModel::host_tier: bad host id");
  return host_tier_[host];
}

double TieredPathModel::tier_rtt(int ta, int tb) const {
  return rtt_table_[static_cast<std::size_t>(ta) *
                        static_cast<std::size_t>(params_.tiers) +
                    static_cast<std::size_t>(tb)];
}

double TieredPathModel::pair_factor(HostId a, HostId b) const {
  if (params_.rtt_jitter <= 0.0) return 1.0;
  // Pure function of (seed, min, max): the pair ids are mixed into a
  // domain-separated seed (sim::hash_tag) and pushed through one
  // SplitMix64 step. No state is carried between queries, so the value a
  // pair resolves to cannot depend on what was queried before it.
  const std::uint64_t lo = std::min(a, b);
  const std::uint64_t hi = std::max(a, b);
  std::uint64_t state = params_.seed ^ sim::hash_tag("net/tiered-path");
  state ^= (lo + 1) * 0x9E3779B97F4A7C15ULL;
  state ^= (hi + 1) * 0xC2B2AE3D27D4EB4FULL;
  const std::uint64_t bits = sim::splitmix64(state);
  // 53 uniform bits -> u in [-1, 1).
  const double u = 2.0 * static_cast<double>(bits >> 11) * 0x1.0p-53 - 1.0;
  return 1.0 + params_.rtt_jitter * u;
}

double TieredPathModel::rtt(HostId a, HostId b) const {
  if (a == b) return 0.0;  // co-located, like an unset dense diagonal
  const double base = tier_rtt(host_tier_[a], host_tier_[b]);
  if (params_.rtt_jitter <= 0.0) return base;  // exact table value
  return base * pair_factor(a, b);
}

double TieredPathModel::loss(HostId a, HostId b) const {
  return a == b ? 0.0 : params_.loss;
}

double TieredPathModel::loaded_loss(HostId a, HostId b) const {
  return a == b ? 0.0 : params_.loaded_loss;
}

// FF_HOT_BEGIN: bulk path resolution — one call per (target, slot) from
// the slot hot path; must stay pure table reads plus the stateless
// per-pair jitter hash (ffcheck guards the region).
void TieredPathModel::fill_paths(HostId from, std::span<const HostId> to,
                                 std::span<PathCharacteristics> out) const {
  const std::int32_t from_tier = host_tier_[from];
  for (std::size_t i = 0; i < to.size(); ++i) {
    const HostId b = to[i];
    if (b == from) {
      out[i] = PathCharacteristics{};
      continue;
    }
    const double base = tier_rtt(from_tier, host_tier_[b]);
    out[i].rtt_s =
        params_.rtt_jitter <= 0.0 ? base : base * pair_factor(from, b);
    out[i].loss = params_.loss;
    out[i].loaded_loss = params_.loaded_loss;
  }
}
// FF_HOT_END: bulk path resolution

}  // namespace flashflow::net
