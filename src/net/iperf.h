// iPerf-like network measurement app on the fluid substrate.
//
// Reproduces the paper's host-capacity estimation methodology (§6.1 and
// Appendix B): pairwise bidirectional TCP/UDP runs summarized as the median
// of per-second min(sent, received), and the many-to-one saturating UDP run
// whose median per-second sum is the "BW (measured)" row of Table 1.
//
// FlashFlow's team uses the same UDP mesh to estimate measurer capacity
// (§4.2 "Measuring Measurers").
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.h"
#include "sim/random.h"

namespace flashflow::net {

struct IperfReport {
  /// Summarized per-second throughput samples, bits/s.
  std::vector<double> per_second_bits;
  /// Median of the per-second samples; 0 when empty.
  double median_bits() const;
};

/// Runs iPerf-style measurements over a Topology. Each run builds a fresh
/// fluid network; the RNG seed makes the injected receive-direction
/// variability reproducible.
class IperfRunner {
 public:
  IperfRunner(const Topology& topo, std::uint64_t seed);

  /// One-direction TCP run with `streams` parallel sockets.
  IperfReport run_tcp(HostId sender, HostId receiver, double duration_s,
                      int streams = 1);
  /// One-direction UDP run (NIC-limited; no congestion-window cap).
  IperfReport run_udp(HostId sender, HostId receiver, double duration_s);

  /// Bidirectional run; per-second samples are min(sent, received) as in
  /// Appendix B. `udp` selects the transport.
  IperfReport run_bidirectional(HostId a, HostId b, double duration_s,
                                bool udp);

  /// All other hosts send UDP to `receiver` concurrently; samples are the
  /// per-second sums (Table 1 "BW (measured)" methodology).
  IperfReport run_saturate_udp(HostId receiver, double duration_s);

 private:
  const Topology& topo_;
  sim::Rng rng_;
};

}  // namespace flashflow::net
