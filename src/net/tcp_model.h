// Steady-state TCP socket throughput model.
//
// A single TCP socket's achievable rate on a path is limited by:
//   1. the socket-buffer / bandwidth-delay product: window / RTT, where the
//      window is bounded by the kernel's socket buffer limits (Appendix D);
//   2. random loss, via the Mathis throughput bound MSS*C/(RTT*sqrt(p));
//   3. a mild utilization penalty growing with RTT, standing in for the
//      slower window convergence on long paths that the paper observes in
//      Fig. 12 (tuned-kernel throughput still decreases with RTT even when
//      buffers are not the binding constraint).
//
// Linux defaults on the paper's hosts were 4 MiB read / 6 MiB write buffer
// maxima; their "tuned" configuration raises both to 64 MiB.
#pragma once

namespace flashflow::net {

/// Kernel socket-buffer configuration (Appendix D).
struct KernelProfile {
  double read_buffer_bytes = 4.0 * 1024 * 1024;
  double write_buffer_bytes = 6.0 * 1024 * 1024;

  static KernelProfile default_profile();
  static KernelProfile tuned_profile();

  /// Usable end-to-end window: limited by the smaller buffer side.
  double usable_window_bytes() const;
};

struct TcpModelParams {
  double mss_bytes = 1500.0;
  double mathis_constant = 1.22;  // sqrt(3/2)
  /// Peak single-socket rate of the stack on a zero-RTT path (bits/s).
  double peak_rate_bits = 2e9;
  /// Long-fat-pipe inefficiency: when the socket is NOT window-limited,
  /// its achievable rate is peak/(1 + rtt/scale) — loss recovery and ACK
  /// clocking degrade with RTT (Fig 12's tuned-kernel curve). Window-
  /// limited flows run at exactly window/RTT (ACK clocking is stable).
  double rtt_penalty_scale_s = 0.15;
};

/// Steady throughput (bits/s) of one TCP socket on a path with the given
/// round-trip time and loss rate. loss_rate == 0 disables the Mathis term.
/// Requires rtt_s > 0.
double tcp_socket_throughput(const KernelProfile& kernel, double rtt_s,
                             double loss_rate,
                             const TcpModelParams& params = {});

/// Aggregate cap of n parallel sockets (bits/s): parallel sockets multiply
/// the per-socket limit; contention for shared links is handled separately
/// by the max-min fair allocator.
double tcp_aggregate_cap(const KernelProfile& kernel, double rtt_s,
                         double loss_rate, int sockets,
                         const TcpModelParams& params = {});

}  // namespace flashflow::net
