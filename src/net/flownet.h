// FlowNet: a continuous fluid-flow network simulation.
//
// Flows traverse capacitated resources (NIC directions, relay CPUs, token
// buckets, ...). Rates follow the weighted max-min fair allocation and stay
// constant between flow-set changes, so byte accrual is piecewise linear and
// exact. Finite-volume flows fire a completion callback at the precise time
// their volume drains; rates are recomputed whenever the flow set or a
// capacity changes.
//
// This is the substrate under every throughput experiment in the repo: the
// iPerf meshes (Tables 1/3), the FlashFlow measurement slots (Figs 6/7,
// 14-16, Table 4), and the Shadow-style load-balancing simulations (Fig 9).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "metrics/timeseries.h"
#include "net/fairshare.h"
#include "sim/simulator.h"

namespace flashflow::net {

using ResourceId = std::size_t;
using FlowId = std::uint64_t;

class FlowNet {
 public:
  explicit FlowNet(sim::Simulator& simulator);

  // --- resources ---
  /// Adds a capacitated resource; capacity in bits/s (<= 0: unconstrained).
  ResourceId add_resource(std::string name, double capacity_bits);
  /// Changes a resource's capacity; takes effect immediately.
  void set_capacity(ResourceId id, double capacity_bits);
  double capacity(ResourceId id) const;
  const std::string& resource_name(ResourceId id) const;
  /// Currently allocated rate through a resource (bits/s).
  double resource_usage(ResourceId id);

  // --- flows ---
  struct FlowSpec {
    std::vector<ResourceId> resources;
    double weight = 1.0;  // relative fair-share weight (e.g. socket count)
    double cap_bits = std::numeric_limits<double>::infinity();
    /// Bytes to transfer; negative means unbounded (runs until removed).
    double volume_bytes = -1.0;
    /// Invoked (once) when a finite volume completes. The callback runs
    /// after rates have been recomputed and may add/remove flows.
    std::function<void(FlowId)> on_complete;
    /// Record a per-second byte series for this flow (measurement reports).
    bool record_per_second = false;
  };

  FlowId add_flow(FlowSpec spec);
  /// Removes a live flow. Statistics remain queryable afterwards.
  void remove_flow(FlowId id);
  bool is_live(FlowId id) const;

  /// Current fair-share rate (bits/s); 0 for finished/removed flows.
  double rate(FlowId id);
  /// Total bytes transferred so far (live or retired flows).
  double bytes_transferred(FlowId id);
  /// Remaining volume for finite flows; infinity for unbounded ones.
  double remaining_bytes(FlowId id);
  /// Per-second byte series (requires record_per_second at creation).
  const metrics::PerSecondSeries& series(FlowId id);

  /// Brings accrual up to the simulator's current time. Called implicitly
  /// by every mutation and query; exposed for tests.
  void sync();

  std::size_t live_flow_count() const { return flows_.size(); }

 private:
  struct FlowState {
    FlowSpec spec;
    double rate_bits = 0.0;
    double transferred_bytes = 0.0;
    double remaining_bytes = std::numeric_limits<double>::infinity();
    metrics::PerSecondSeries series;
  };

  void advance_to(sim::SimTime t);
  void recompute_rates();
  void schedule_completion_tick();
  /// Accrues `rate` bits/s into a series between two times, splitting
  /// across one-second bins.
  static void accrue_series(metrics::PerSecondSeries& series,
                            sim::SimTime from, sim::SimTime to,
                            double rate_bits);

  sim::Simulator& sim_;
  std::vector<FairShareResource> resources_;
  std::vector<std::string> resource_names_;
  std::map<FlowId, FlowState> flows_;     // ordered: deterministic iteration
  std::map<FlowId, FlowState> retired_;   // finished/removed flows
  FlowId next_flow_id_ = 1;
  sim::SimTime last_time_ = 0;
  std::optional<sim::EventId> completion_event_;
  bool advancing_ = false;
};

}  // namespace flashflow::net
