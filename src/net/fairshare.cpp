#include "net/fairshare.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace flashflow::net {

std::vector<double> max_min_fair_rates(
    const std::vector<FairShareResource>& resources,
    const std::vector<FairShareFlow>& flows) {
  const std::size_t num_flows = flows.size();
  const std::size_t num_resources = resources.size();

  std::vector<double> rates(num_flows, 0.0);
  std::vector<bool> frozen(num_flows, false);
  std::vector<double> remaining(num_resources);
  for (std::size_t r = 0; r < num_resources; ++r) {
    remaining[r] = resources[r].capacity > 0
                       ? resources[r].capacity
                       : std::numeric_limits<double>::infinity();
  }
  // Weight of active flows at each resource.
  std::vector<double> active_weight(num_resources, 0.0);
  for (std::size_t f = 0; f < num_flows; ++f) {
    if (flows[f].weight <= 0.0)
      throw std::invalid_argument("max_min_fair_rates: non-positive weight");
    for (const std::size_t r : flows[f].resources) {
      if (r >= num_resources)
        throw std::out_of_range("max_min_fair_rates: bad resource index");
      active_weight[r] += flows[f].weight;
    }
  }

  std::size_t active_flows = num_flows;
  // Flows with an immediate zero cap freeze straight away.
  for (std::size_t f = 0; f < num_flows; ++f) {
    if (flows[f].cap <= 0.0) {
      frozen[f] = true;
      --active_flows;
      for (const std::size_t r : flows[f].resources)
        active_weight[r] -= flows[f].weight;
    }
  }

  constexpr double kEps = 1e-9;
  while (active_flows > 0) {
    // Largest uniform per-weight increment before a resource saturates or a
    // flow reaches its cap.
    double step = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < num_resources; ++r) {
      if (active_weight[r] > kEps && std::isfinite(remaining[r]))
        step = std::min(step, remaining[r] / active_weight[r]);
    }
    for (std::size_t f = 0; f < num_flows; ++f) {
      if (!frozen[f] && std::isfinite(flows[f].cap))
        step = std::min(step, (flows[f].cap - rates[f]) / flows[f].weight);
    }
    if (!std::isfinite(step)) {
      // No binding constraint: remaining flows are unconstrained. Assign an
      // effectively unbounded rate; callers treat it as "not the bottleneck".
      for (std::size_t f = 0; f < num_flows; ++f)
        if (!frozen[f]) rates[f] = std::numeric_limits<double>::infinity();
      break;
    }
    step = std::max(step, 0.0);

    // Advance all active flows by step * weight.
    for (std::size_t f = 0; f < num_flows; ++f)
      if (!frozen[f]) rates[f] += step * flows[f].weight;
    for (std::size_t r = 0; r < num_resources; ++r)
      if (std::isfinite(remaining[r])) remaining[r] -= step * active_weight[r];

    // Freeze flows at saturated resources or at their caps.
    std::vector<bool> saturated(num_resources, false);
    for (std::size_t r = 0; r < num_resources; ++r)
      if (std::isfinite(remaining[r]) && remaining[r] <= kEps &&
          active_weight[r] > kEps)
        saturated[r] = true;

    bool any_frozen = false;
    for (std::size_t f = 0; f < num_flows; ++f) {
      if (frozen[f]) continue;
      bool freeze = rates[f] >= flows[f].cap - kEps;
      if (!freeze)
        for (const std::size_t r : flows[f].resources)
          if (saturated[r]) {
            freeze = true;
            break;
          }
      if (freeze) {
        frozen[f] = true;
        --active_flows;
        any_frozen = true;
        for (const std::size_t r : flows[f].resources)
          active_weight[r] -= flows[f].weight;
      }
    }
    if (!any_frozen) {
      // Numerical safety: freeze the flow closest to a constraint so the
      // loop always terminates.
      std::size_t best = num_flows;
      for (std::size_t f = 0; f < num_flows; ++f)
        if (!frozen[f]) {
          best = f;
          break;
        }
      if (best == num_flows) break;
      frozen[best] = true;
      --active_flows;
      for (const std::size_t r : flows[best].resources)
        active_weight[r] -= flows[best].weight;
    }
  }
  return rates;
}

}  // namespace flashflow::net
