#include "net/fairshare.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace flashflow::net {

// Progressive filling over index lists: `active_` holds the unfrozen flows
// (ascending, compacted in place as flows freeze), `finite_res_` the
// capacity-constrained resources, and `res_index_`/`res_offset_` a flat
// copy of the flow→resource lists, so each filling iteration runs four
// tight passes over state that can still bind. The arithmetic — which
// values are summed, subtracted and min'd, and in which order — is
// identical to the obvious scan-everything formulation, so allocations are
// bit-identical to it (tests/test_golden_determinism.cpp relies on this).

void FairShareSolver::prepare(std::span<const FairShareFlow> flows,
                              std::size_t num_resources) {
  // Invalidate first: a validation throw below must not leave a half-built
  // flow set that a later solve_prepared would index out of bounds.
  prepared_ = false;
  num_flows_ = flows.size();
  num_resources_ = num_resources;
  weights_.resize(num_flows_);
  caps_.resize(num_flows_);
  res_offset_.resize(num_flows_ + 1);
  res_index_.clear();
  // Weight of active flows at each resource. Summed over every flow in
  // index order (zero-cap flows are subtracted back out below, not
  // skipped): floating-point addition order is part of the contract.
  active_weight_base_.assign(num_resources, 0.0);
  res_offset_[0] = 0;
  for (std::size_t f = 0; f < num_flows_; ++f) {
    if (flows[f].weight <= 0.0)
      throw std::invalid_argument("max_min_fair_rates: non-positive weight");
    weights_[f] = flows[f].weight;
    caps_[f] = flows[f].cap;
    for (const std::size_t r : flows[f].resources) {
      if (r >= num_resources)
        throw std::out_of_range("max_min_fair_rates: bad resource index");
      res_index_.push_back(r);
      active_weight_base_[r] += flows[f].weight;
    }
    res_offset_[f + 1] = res_index_.size();
  }
  // Flows with an immediate zero cap freeze straight away; fold both their
  // exclusion and their weight removal into the prepared baseline.
  active_init_.clear();
  for (std::size_t f = 0; f < num_flows_; ++f) {
    if (caps_[f] <= 0.0) {
      for (std::size_t k = res_offset_[f]; k < res_offset_[f + 1]; ++k)
        active_weight_base_[res_index_[k]] -= weights_[f];
    } else {
      active_init_.push_back(f);
    }
  }
  // Saturation stamps never reset: only a stamp written during the current
  // iteration (== epoch_) counts, so growing the vector with zeroes is the
  // only maintenance reuse needs.
  if (saturated_at_.size() < num_resources)
    saturated_at_.resize(num_resources, 0);
  prepared_ = true;
}

// FF_HOT_BEGIN: per-second fair-share re-solve — runs once per simulated
// second per slot; every working vector below is pooled scratch whose
// capacity persists across solves (ffcheck guards the region).
std::span<const double> FairShareSolver::solve_prepared(
    std::span<const FairShareResource> resources) {
  if (!prepared_)
    throw std::logic_error(
        "FairShareSolver: solve_prepared without a successful prepare");
  if (resources.size() != num_resources_)
    throw std::invalid_argument(
        "FairShareSolver: resources size changed since prepare");

  rates_.assign(num_flows_, 0.0);
  remaining_.resize(num_resources_);
  finite_res_.clear();
  for (std::size_t r = 0; r < num_resources_; ++r) {
    remaining_[r] = resources[r].capacity > 0
                        ? resources[r].capacity
                        : std::numeric_limits<double>::infinity();
    // FFCHECK(HP03): finite_res_ is pooled scratch; its capacity reaches
    // num_resources_ on the first solve and persists, so steady-state
    // re-solves never allocate here.
    if (std::isfinite(remaining_[r])) finite_res_.push_back(r);
  }
  active_weight_.assign(active_weight_base_.begin(),
                        active_weight_base_.end());
  active_.assign(active_init_.begin(), active_init_.end());

  constexpr double kEps = 1e-9;
  while (!active_.empty()) {
    // Pass 1+2: largest uniform per-weight increment before a resource
    // saturates or a flow reaches its cap.
    double step = std::numeric_limits<double>::infinity();
    for (const std::size_t r : finite_res_) {
      if (active_weight_[r] > kEps)
        step = std::min(step, remaining_[r] / active_weight_[r]);
    }
    for (const std::size_t f : active_) {
      if (std::isfinite(caps_[f]))
        step = std::min(step, (caps_[f] - rates_[f]) / weights_[f]);
    }
    if (!std::isfinite(step)) {
      // No binding constraint: remaining flows are unconstrained. Assign an
      // effectively unbounded rate; callers treat it as "not the bottleneck".
      for (const std::size_t f : active_)
        rates_[f] = std::numeric_limits<double>::infinity();
      break;
    }
    step = std::max(step, 0.0);

    // Pass 3: drain resources and stamp the ones this step saturated.
    ++epoch_;
    for (const std::size_t r : finite_res_) {
      remaining_[r] -= step * active_weight_[r];
      if (remaining_[r] <= kEps && active_weight_[r] > kEps)
        saturated_at_[r] = epoch_;
    }

    // Pass 4: advance every active flow, freeze those at saturated
    // resources or at their caps, compacting the active list in place
    // (ascending order preserved).
    std::size_t kept = 0;
    for (const std::size_t f : active_) {
      rates_[f] += step * weights_[f];
      bool freeze = rates_[f] >= caps_[f] - kEps;
      if (!freeze)
        for (std::size_t k = res_offset_[f]; k < res_offset_[f + 1]; ++k)
          if (saturated_at_[res_index_[k]] == epoch_) {
            freeze = true;
            break;
          }
      if (freeze) {
        for (std::size_t k = res_offset_[f]; k < res_offset_[f + 1]; ++k)
          active_weight_[res_index_[k]] -= weights_[f];
      } else {
        active_[kept++] = f;
      }
    }
    if (kept < active_.size()) {
      active_.resize(kept);
      continue;
    }
    // Numerical safety: freeze the flow closest to a constraint (the
    // lowest-indexed active one) so the loop always terminates.
    const std::size_t best = active_.front();
    for (std::size_t k = res_offset_[best]; k < res_offset_[best + 1]; ++k)
      active_weight_[res_index_[k]] -= weights_[best];
    active_.erase(active_.begin());
  }
  return {rates_.data(), num_flows_};
}
// FF_HOT_END: per-second fair-share re-solve

std::span<const double> FairShareSolver::solve(
    std::span<const FairShareResource> resources,
    std::span<const FairShareFlow> flows) {
  prepare(flows, resources.size());
  return solve_prepared(resources);
}

std::vector<double> max_min_fair_rates(
    const std::vector<FairShareResource>& resources,
    const std::vector<FairShareFlow>& flows) {
  FairShareSolver solver;
  const auto rates = solver.solve(resources, flows);
  return {rates.begin(), rates.end()};
}

}  // namespace flashflow::net
