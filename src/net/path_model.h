// Pluggable path-characteristics models (the n x n memory-wall seam).
//
// A PathModel answers "what does the path between hosts a and b look
// like?" — RTT, clean loss, loaded loss — without dictating how the
// answer is stored. Two implementations:
//
//   DensePathModel   three explicit n x n matrices, exactly the storage
//                    the Topology class always had. Byte-exact for every
//                    existing experiment, O(N^2) memory: ~987 MiB of peak
//                    RSS at the paper's 6,419 relays, ~60 GB at a 50k
//                    "future Tor". Right for Table-1/lab topologies and
//                    anything whose paths are individually measured.
//
//   TieredPathModel  implicit per-pair resolution the way Shadow models
//                    its network: each host belongs to a small tier
//                    (region/cluster), paths are a tier x tier
//                    characteristic table plus optional deterministic
//                    per-pair RTT jitter derived from the pair ids and a
//                    seed. O(N + T^2) memory, so a 50k-relay topology
//                    costs kilobytes instead of tens of gigabytes.
//
// Both models resolve a pair in O(1) and are queried through the same
// virtual interface; the slot hot path amortizes the virtual dispatch
// with the bulk fill_paths() hook (one call per target per slot).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace flashflow::net {

using HostId = std::size_t;

/// One resolved path: what the measurement pipeline needs to model a TCP
/// stream between two hosts.
struct PathCharacteristics {
  double rtt_s = 0.0;
  double loss = 0.0;
  double loaded_loss = 0.0;
};

/// Path-characteristics interface. Implementations must be symmetric
/// (path(a, b) == path(b, a)) and return all-zero characteristics for
/// a == b (the pipeline treats rtt <= 0 as "co-located").
class PathModel {
 public:
  virtual ~PathModel() = default;

  /// Deep copy (Topology is a value type and is copied with its model).
  virtual std::unique_ptr<PathModel> clone() const = 0;

  /// Grows the model to cover hosts [0, count). Called by Topology on
  /// every add_host; models size any per-host state here.
  virtual void resize_hosts(std::size_t count) = 0;
  /// Presizes for `count` hosts (dense: lays the matrices out once).
  virtual void reserve_hosts(std::size_t /*count*/) {}

  virtual double rtt(HostId a, HostId b) const = 0;
  virtual double loss(HostId a, HostId b) const = 0;
  virtual double loaded_loss(HostId a, HostId b) const = 0;

  /// Bulk hook for the slot hot path: resolves the paths from `from` to
  /// every host in `to` into `out` (out.size() must equal to.size()).
  /// One virtual call per (target, slot) instead of three per pair; the
  /// default loops over the scalar getters, implementations can do
  /// better (DensePathModel walks its rows directly).
  virtual void fill_paths(HostId from, std::span<const HostId> to,
                          std::span<PathCharacteristics> out) const;
};

/// Today's storage: three dense n x n matrices, row-major over an
/// allocated dimension >= the host count so insertions within a
/// reservation never re-lay them out.
class DensePathModel final : public PathModel {
 public:
  std::unique_ptr<PathModel> clone() const override;
  void resize_hosts(std::size_t count) override;
  void reserve_hosts(std::size_t count) override;

  /// Sets symmetric path characteristics (Topology::set_path's storage).
  void set_path(HostId a, HostId b, double rtt_s, double loss_rate,
                double loaded_loss_rate);

  double rtt(HostId a, HostId b) const override;
  double loss(HostId a, HostId b) const override;
  double loaded_loss(HostId a, HostId b) const override;
  void fill_paths(HostId from, std::span<const HostId> to,
                  std::span<PathCharacteristics> out) const override;

 private:
  std::size_t index(HostId a, HostId b) const { return a * dim_ + b; }
  /// Re-lays the matrices out for `dim` hosts, preserving entries.
  void grow_matrices(std::size_t dim);

  std::size_t hosts_ = 0;
  /// Allocated matrix dimension (>= hosts_).
  std::size_t dim_ = 0;
  std::vector<double> rtt_;
  std::vector<double> loss_;
  std::vector<double> loaded_loss_;
};

/// Parameters of a tiered (sparse/implicit) path model.
struct TieredPathParams {
  /// Number of tiers (clusters/regions); hosts default to tier id % tiers.
  int tiers = 1;
  /// Upper-triangle (including the diagonal) of the tier x tier RTT table
  /// in seconds, row-major: [ (0,0), (0,1), ..., (0,T-1), (1,1), ... ].
  /// Size tiers*(tiers+1)/2. Empty means 0.05 s for every pair (the flat
  /// synthetic-mesh default).
  std::vector<double> tier_rtt_s;
  /// Clean and loaded loss, shared across tiers (the synthetic/shadow
  /// meshes use network-wide constants).
  double loss = 1.0e-6;
  double loaded_loss = 5.0e-5;
  /// Deterministic per-pair RTT jitter: the pair's RTT is scaled by
  /// 1 + rtt_jitter * u with u in [-1, 1) derived from (seed, lo, hi).
  /// 0 disables jitter entirely — pairs then read the exact table value,
  /// bit-identical to a dense model built from the same table.
  double rtt_jitter = 0.0;
  /// Seed of the per-pair jitter stream.
  std::uint64_t seed = 0;

  friend bool operator==(const TieredPathParams&,
                         const TieredPathParams&) = default;
};

/// Shadow-style implicit model: per-host tier assignments plus a small
/// tier x tier characteristic table, pairs resolved on demand.
///
/// Pair resolution is a pure function of (seed, min(a,b), max(a,b)), so
/// values are independent of query order and identical across instances
/// built from the same parameters — the property the golden determinism
/// suite needs from an on-demand model.
class TieredPathModel final : public PathModel {
 public:
  /// Validates params (throws std::invalid_argument): tiers >= 1, RTT
  /// table empty or triangle-sized with non-negative entries, losses in
  /// [0, 1), jitter in [0, 1).
  explicit TieredPathModel(TieredPathParams params);

  std::unique_ptr<PathModel> clone() const override;
  /// New hosts join tier (id % tiers) until set_host_tier says otherwise.
  void resize_hosts(std::size_t count) override;

  /// Overrides a host's tier assignment (shadow regions).
  void set_host_tier(HostId host, int tier);
  int host_tier(HostId host) const;

  const TieredPathParams& params() const { return params_; }

  double rtt(HostId a, HostId b) const override;
  double loss(HostId a, HostId b) const override;
  double loaded_loss(HostId a, HostId b) const override;
  void fill_paths(HostId from, std::span<const HostId> to,
                  std::span<PathCharacteristics> out) const override;

 private:
  double tier_rtt(int ta, int tb) const;
  /// The deterministic per-pair RTT multiplier (1.0 when jitter is 0).
  double pair_factor(HostId a, HostId b) const;

  TieredPathParams params_;
  /// Dense tiers x tiers RTT table expanded from the triangle.
  std::vector<double> rtt_table_;
  std::vector<std::int32_t> host_tier_;
};

}  // namespace flashflow::net
