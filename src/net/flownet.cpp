#include "net/flownet.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "net/units.h"

namespace flashflow::net {

namespace {
// Stand-in for "unconstrained" so arithmetic stays finite.
constexpr double kHugeRate = 1e15;  // bits/s
// A flow is complete once less than one byte remains: sub-byte residues
// are rounding artifacts of the microsecond clock, and chasing them would
// spin the completion scheduler at a single timestamp.
constexpr double kByteEps = 1.0;
}  // namespace

FlowNet::FlowNet(sim::Simulator& simulator) : sim_(simulator) {}

ResourceId FlowNet::add_resource(std::string name, double capacity_bits) {
  resources_.push_back({capacity_bits});
  resource_names_.push_back(std::move(name));
  return resources_.size() - 1;
}

void FlowNet::set_capacity(ResourceId id, double capacity_bits) {
  if (id >= resources_.size()) throw std::out_of_range("FlowNet resource");
  sync();
  resources_[id].capacity = capacity_bits;
  recompute_rates();
}

double FlowNet::capacity(ResourceId id) const {
  if (id >= resources_.size()) throw std::out_of_range("FlowNet resource");
  return resources_[id].capacity;
}

const std::string& FlowNet::resource_name(ResourceId id) const {
  if (id >= resource_names_.size())
    throw std::out_of_range("FlowNet resource");
  return resource_names_[id];
}

double FlowNet::resource_usage(ResourceId id) {
  if (id >= resources_.size()) throw std::out_of_range("FlowNet resource");
  sync();
  double used = 0.0;
  for (const auto& [fid, flow] : flows_) {
    (void)fid;
    if (std::find(flow.spec.resources.begin(), flow.spec.resources.end(),
                  id) != flow.spec.resources.end())
      used += flow.rate_bits;
  }
  return used;
}

FlowId FlowNet::add_flow(FlowSpec spec) {
  for (const ResourceId r : spec.resources)
    if (r >= resources_.size())
      throw std::out_of_range("FlowNet::add_flow: bad resource id");
  if (spec.weight <= 0.0)
    throw std::invalid_argument("FlowNet::add_flow: non-positive weight");
  sync();
  const FlowId id = next_flow_id_++;
  FlowState state;
  state.remaining_bytes = spec.volume_bytes >= 0.0
                              ? spec.volume_bytes
                              : std::numeric_limits<double>::infinity();
  state.spec = std::move(spec);
  flows_.emplace(id, std::move(state));
  recompute_rates();
  return id;
}

void FlowNet::remove_flow(FlowId id) {
  sync();
  const auto it = flows_.find(id);
  if (it == flows_.end()) return;  // already completed/removed
  retired_.emplace(id, std::move(it->second));
  flows_.erase(it);
  recompute_rates();
}

bool FlowNet::is_live(FlowId id) const { return flows_.count(id) > 0; }

double FlowNet::rate(FlowId id) {
  sync();
  const auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate_bits;
}

double FlowNet::bytes_transferred(FlowId id) {
  sync();
  if (const auto it = flows_.find(id); it != flows_.end())
    return it->second.transferred_bytes;
  if (const auto it = retired_.find(id); it != retired_.end())
    return it->second.transferred_bytes;
  throw std::invalid_argument("FlowNet::bytes_transferred: unknown flow");
}

double FlowNet::remaining_bytes(FlowId id) {
  sync();
  if (const auto it = flows_.find(id); it != flows_.end())
    return it->second.remaining_bytes;
  if (const auto it = retired_.find(id); it != retired_.end())
    return it->second.remaining_bytes;
  throw std::invalid_argument("FlowNet::remaining_bytes: unknown flow");
}

const metrics::PerSecondSeries& FlowNet::series(FlowId id) {
  sync();
  if (const auto it = flows_.find(id); it != flows_.end())
    return it->second.series;
  if (const auto it = retired_.find(id); it != retired_.end())
    return it->second.series;
  throw std::invalid_argument("FlowNet::series: unknown flow");
}

void FlowNet::sync() { advance_to(sim_.now()); }

void FlowNet::accrue_series(metrics::PerSecondSeries& series,
                            sim::SimTime from, sim::SimTime to,
                            double rate_bits) {
  // Split the constant-rate interval at one-second boundaries so each bin
  // receives exactly the bytes transferred during that second.
  sim::SimTime cursor = from;
  while (cursor < to) {
    const sim::SimTime next_boundary =
        (cursor / sim::kSecond + 1) * sim::kSecond;
    const sim::SimTime chunk_end = std::min(next_boundary, to);
    const double seconds = sim::to_seconds(chunk_end - cursor);
    series.add(cursor, bytes_from_bits(rate_bits) * seconds);
    cursor = chunk_end;
  }
}

void FlowNet::advance_to(sim::SimTime t) {
  if (advancing_ || t <= last_time_) return;
  advancing_ = true;
  std::vector<std::pair<FlowId, std::function<void(FlowId)>>> callbacks;

  while (last_time_ < t) {
    // Earliest completion among finite flows at current rates.
    sim::SimTime next_completion = t;
    for (const auto& [id, flow] : flows_) {
      (void)id;
      if (!std::isfinite(flow.remaining_bytes) || flow.rate_bits <= 0.0)
        continue;
      const double secs =
          bits_from_bytes(flow.remaining_bytes) / flow.rate_bits;
      // Strictly in the future so each loop iteration makes progress even
      // when the remaining time rounds to zero microseconds.
      const sim::SimTime when =
          last_time_ +
          std::max<sim::SimDuration>(sim::from_seconds(secs), 1);
      next_completion = std::min(next_completion, when);
    }

    const sim::SimTime step_end = std::min(t, next_completion);
    const double dt = sim::to_seconds(step_end - last_time_);
    if (dt > 0.0) {
      for (auto& [id, flow] : flows_) {
        (void)id;
        const double bytes = bytes_from_bits(flow.rate_bits) * dt;
        const double delivered = std::min(bytes, flow.remaining_bytes);
        flow.transferred_bytes += delivered;
        if (std::isfinite(flow.remaining_bytes))
          flow.remaining_bytes =
              std::max(0.0, flow.remaining_bytes - delivered);
        if (flow.spec.record_per_second && delivered > 0.0) {
          // Record at the actual delivered rate over the interval.
          const double eff_rate = bits_from_bytes(delivered) / dt;
          accrue_series(flow.series, last_time_, step_end, eff_rate);
        }
      }
    }
    last_time_ = step_end;

    // Retire flows whose volume drained.
    bool any_completed = false;
    for (auto it = flows_.begin(); it != flows_.end();) {
      if (std::isfinite(it->second.remaining_bytes) &&
          it->second.remaining_bytes <= kByteEps) {
        if (it->second.spec.on_complete)
          callbacks.emplace_back(it->first, it->second.spec.on_complete);
        retired_.emplace(it->first, std::move(it->second));
        it = flows_.erase(it);
        any_completed = true;
      } else {
        ++it;
      }
    }
    // Completed flows free capacity for the rest of the interval.
    if (any_completed) recompute_rates();
  }

  advancing_ = false;
  if (!callbacks.empty()) {
    for (auto& [id, cb] : callbacks) cb(id);
  }
}

void FlowNet::recompute_rates() {
  std::vector<FairShareFlow> specs;
  specs.reserve(flows_.size());
  std::vector<FlowId> order;
  order.reserve(flows_.size());
  for (const auto& [id, flow] : flows_) {
    FairShareFlow f;
    f.resources = flow.spec.resources;
    f.weight = flow.spec.weight;
    f.cap = flow.spec.cap_bits;
    specs.push_back(std::move(f));
    order.push_back(id);
  }
  const std::vector<double> rates = max_min_fair_rates(resources_, specs);
  for (std::size_t i = 0; i < order.size(); ++i) {
    double r = rates[i];
    if (!std::isfinite(r)) r = kHugeRate;
    flows_[order[i]].rate_bits = r;
  }
  schedule_completion_tick();
}

void FlowNet::schedule_completion_tick() {
  if (completion_event_) {
    sim_.cancel(*completion_event_);
    completion_event_.reset();
  }
  sim::SimTime earliest = std::numeric_limits<sim::SimTime>::max();
  for (const auto& [id, flow] : flows_) {
    (void)id;
    if (!std::isfinite(flow.remaining_bytes) || flow.rate_bits <= 0.0)
      continue;
    const double secs = bits_from_bytes(flow.remaining_bytes) / flow.rate_bits;
    const sim::SimTime when =
        last_time_ + std::max<sim::SimDuration>(sim::from_seconds(secs), 1);
    earliest = std::min(earliest, when);
  }
  if (earliest != std::numeric_limits<sim::SimTime>::max()) {
    completion_event_ =
        sim_.schedule_at(std::max(earliest, sim_.now()), [this] {
          completion_event_.reset();
          sync();
          schedule_completion_tick();
        });
  }
}

}  // namespace flashflow::net
