// Bandwidth and data-size unit helpers.
//
// Conventions used across the project:
//   - rates are double bits/second
//   - data volumes are double bytes
// Helpers construct values from human units so call sites read like the
// paper ("250 Mbit/s", "5 MiB").
#pragma once

namespace flashflow::net {

inline constexpr double kBitsPerByte = 8.0;

// --- rates (bits/second) ---
constexpr double kbit(double v) { return v * 1e3; }
constexpr double mbit(double v) { return v * 1e6; }
constexpr double gbit(double v) { return v * 1e9; }

constexpr double to_mbit(double bits_per_sec) { return bits_per_sec / 1e6; }
constexpr double to_gbit(double bits_per_sec) { return bits_per_sec / 1e9; }

// --- volumes (bytes) ---
constexpr double kib(double v) { return v * 1024.0; }
constexpr double mib(double v) { return v * 1024.0 * 1024.0; }
constexpr double gib(double v) { return v * 1024.0 * 1024.0 * 1024.0; }

constexpr double bytes_from_bits(double bits) { return bits / kBitsPerByte; }
constexpr double bits_from_bytes(double bytes) { return bytes * kBitsPerByte; }

}  // namespace flashflow::net
