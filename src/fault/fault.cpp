#include "fault/fault.h"

#include <stdexcept>
#include <string>

namespace flashflow::fault {

namespace {

void reject(const std::string& what) {
  throw std::invalid_argument("FaultSpec: " + what);
}

}  // namespace

void FaultSpec::validate() const {
  const auto bad_rate = [](double r) { return r < 0.0 || r > 1.0; };
  if (bad_rate(measurer_crash)) reject("measurer_crash must be in [0, 1]");
  if (bad_rate(relay_disconnect))
    reject("relay_disconnect must be in [0, 1]");
  if (bad_rate(report_drop)) reject("report_drop must be in [0, 1]");
  if (bad_rate(report_truncate)) reject("report_truncate must be in [0, 1]");
  if (bad_rate(slot_timeout)) reject("slot_timeout must be in [0, 1]");
  if (max_retries < 0) reject("max_retries must be >= 0");
  if (min_usable_seconds < 1) reject("min_usable_seconds must be >= 1");
}

FaultPlan::FaultPlan(const FaultSpec& spec, std::uint64_t campaign_seed)
    : spec_(spec), seed_(campaign_seed ^ sim::hash_tag("fault/plan")) {
  spec_.validate();
}

sim::Rng FaultPlan::query_rng(std::uint64_t domain, std::uint64_t slot,
                              std::uint64_t entity_a,
                              std::uint64_t entity_b) const {
  // SplitMix64 between each ingredient so small integers (slot indices,
  // host ids) land on well-separated streams; the final step seeds the
  // query's private generator. Pure in the inputs: queries commute and
  // replay identically from any thread.
  std::uint64_t state = seed_ ^ domain;
  sim::splitmix64(state);
  state ^= slot;
  sim::splitmix64(state);
  state ^= entity_a;
  sim::splitmix64(state);
  state ^= entity_b;
  return sim::Rng(sim::splitmix64(state));
}

bool FaultPlan::slot_timeout(std::uint64_t slot) const {
  if (spec_.slot_timeout <= 0.0) return false;
  sim::Rng rng = query_rng(sim::hash_tag("fault/timeout"), slot, 0, 0);
  return rng.chance(spec_.slot_timeout);
}

int FaultPlan::relay_disconnect_second(std::uint64_t slot,
                                       std::uint64_t relay_hash,
                                       int slot_seconds) const {
  if (spec_.relay_disconnect <= 0.0 || slot_seconds < 2) return -1;
  sim::Rng rng = query_rng(sim::hash_tag("fault/relay"), slot, relay_hash, 0);
  if (!rng.chance(spec_.relay_disconnect)) return -1;
  return static_cast<int>(rng.uniform_int(1, slot_seconds - 1));
}

int FaultPlan::measurer_crash_second(std::uint64_t slot,
                                     std::uint64_t measurer_host,
                                     int slot_seconds) const {
  if (spec_.measurer_crash <= 0.0 || slot_seconds < 2) return -1;
  sim::Rng rng =
      query_rng(sim::hash_tag("fault/measurer"), slot, measurer_host, 0);
  if (!rng.chance(spec_.measurer_crash)) return -1;
  return static_cast<int>(rng.uniform_int(1, slot_seconds - 1));
}

int FaultPlan::report_seconds(std::uint64_t slot, std::uint64_t relay_hash,
                              std::uint64_t measurer_host,
                              int slot_seconds) const {
  if (spec_.report_drop <= 0.0 && spec_.report_truncate <= 0.0)
    return slot_seconds;
  sim::Rng rng =
      query_rng(sim::hash_tag("fault/report"), slot, relay_hash,
                measurer_host);
  // Two sequential trials, always both drawn so the truncation draw does
  // not depend on whether dropping is enabled.
  const bool dropped = rng.chance(spec_.report_drop);
  const bool truncated = rng.chance(spec_.report_truncate);
  if (dropped) return 0;
  if (truncated && slot_seconds >= 2)
    return static_cast<int>(rng.uniform_int(1, slot_seconds - 1));
  return slot_seconds;
}

}  // namespace flashflow::fault
