// Deterministic fault injection for measurement campaigns.
//
// A real FlashFlow deployment loses measurer machines mid-slot, watches
// relays disconnect while being measured, and receives partial or no
// per-second reports — none of which the perfect-world slot pipeline
// modeled. FaultPlan injects those failures reproducibly: every fault
// occurrence is a pure function of (campaign seed, slot, entity), derived
// through the same domain-separated sub-seed scheme the campaign engine
// uses (sim::hash_tag tags under "fault/"), so faulted runs stay
// byte-identical across worker thread counts and shard sizes, and a
// failing slot can be replayed in isolation from its coordinates alone.
//
// The plan only *decides* faults; the physical and accounting
// consequences live where the affected state lives: core::SlotRunner
// (traffic stops, capacity vanishes, reports go missing) and
// campaign::CampaignRunner (retry, quarantine). With every rate at zero
// the plan is inert and the engine's fault paths are never entered.
#pragma once

#include <cstdint>

#include "sim/random.h"

namespace flashflow::fault {

/// Fault rates and degradation policy for one campaign. All rates are
/// per-trial probabilities in [0, 1]; the trial granularity is named per
/// field. Value type: scenario files round-trip it (operator==).
struct FaultSpec {
  /// Per (slot, measurer host): the measurer dies mid-slot — its traffic
  /// toward every target stops at the crash second, though its per-second
  /// log up to the crash still reaches the BWAuth (the report channel is
  /// faulted separately below).
  double measurer_crash = 0.0;
  /// Per (slot, relay): the target drops off the network mid-slot;
  /// seconds from the disconnect on carry no usable evidence.
  double relay_disconnect = 0.0;
  /// Per (slot, relay, measurer): the measurer's report never arrives.
  double report_drop = 0.0;
  /// Per (slot, relay, measurer): the report is cut short after a random
  /// number of seconds.
  double report_truncate = 0.0;
  /// Per slot: the whole slot times out; nothing in it is measured.
  double slot_timeout = 0.0;

  /// Retry budget per relay: a relay whose slot failed is re-queued into
  /// spare capacity later in the period at most this many times, then
  /// quarantined.
  int max_retries = 2;
  /// Seconds of usable evidence below which a slot's estimate is refused
  /// (core::SlotFailure::kInsufficientEvidence).
  int min_usable_seconds = 5;

  /// True when any fault can actually occur. Policy knobs alone
  /// (max_retries, min_usable_seconds) do not enable the fault paths.
  bool enabled() const {
    return measurer_crash > 0.0 || relay_disconnect > 0.0 ||
           report_drop > 0.0 || report_truncate > 0.0 || slot_timeout > 0.0;
  }

  /// Throws std::invalid_argument naming the bad field.
  void validate() const;

  friend bool operator==(const FaultSpec&, const FaultSpec&) = default;
};

/// Deterministic fault oracle for one campaign (one period seed).
///
/// Every query is stateless and pure: it derives a fresh substream from
/// (plan seed, domain tag, slot, entity) and never touches shared state,
/// so queries may run concurrently from any worker in any order. Period
/// separation comes for free — campaigns already run under per-period
/// seeds (scenario::period_seed) — and retry slots get fresh draws
/// because they run under fresh slot indices.
class FaultPlan {
 public:
  /// An inert plan: every query reports "no fault".
  FaultPlan() = default;

  FaultPlan(const FaultSpec& spec, std::uint64_t campaign_seed);

  const FaultSpec& spec() const { return spec_; }
  bool enabled() const { return spec_.enabled(); }

  /// Whole-slot timeout: the slot never runs, every target in it fails.
  bool slot_timeout(std::uint64_t slot) const;

  /// First second the relay is unreachable, in [1, slot_seconds);
  /// -1 when it stays up. `relay_hash` is sim::hash_tag(relay name) —
  /// the same identity hash the noise substreams fork on.
  int relay_disconnect_second(std::uint64_t slot, std::uint64_t relay_hash,
                              int slot_seconds) const;

  /// First second the measurer's traffic is gone (all targets it serves),
  /// in [1, slot_seconds); -1 when it stays up.
  int measurer_crash_second(std::uint64_t slot, std::uint64_t measurer_host,
                            int slot_seconds) const;

  /// Seconds of the (relay, measurer) per-second report that reach the
  /// BWAuth: slot_seconds = complete, 0 = dropped, k in (0, slot_seconds)
  /// = truncated after k seconds.
  int report_seconds(std::uint64_t slot, std::uint64_t relay_hash,
                     std::uint64_t measurer_host, int slot_seconds) const;

 private:
  /// Fresh substream for one (domain, slot, entity-pair) query.
  sim::Rng query_rng(std::uint64_t domain, std::uint64_t slot,
                     std::uint64_t entity_a, std::uint64_t entity_b) const;

  FaultSpec spec_;
  std::uint64_t seed_ = 0;
};

}  // namespace flashflow::fault
